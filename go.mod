module voodoo

go 1.22
