// voodoo-lint runs the repo's contract analyzers (internal/lint) over Go
// packages. It speaks the `go vet -vettool` unit-checker protocol without
// depending on golang.org/x/tools, so it builds with the standard library
// alone:
//
//	go build -o bin/voodoo-lint ./cmd/voodoo-lint
//	go vet -vettool=bin/voodoo-lint ./...
//
// Invoked directly with package patterns it re-executes itself through
// `go vet`, so `voodoo-lint ./...` works from a checkout:
//
//	voodoo-lint ./...
//
// Protocol notes: `-V=full` prints a stable version string the go command
// uses as a cache key; `-flags` declares the (empty) analyzer flag set;
// `@file` names a JSON vet config describing one package to analyze.
// Diagnostics go to stderr as file:line:col lines and exit status 2, which
// `go vet` surfaces per package.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"

	"voodoo/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			// The go command hashes this line into its action cache; it must
			// be stable and must not look like a devel version.
			fmt.Println("voodoo-lint version 1")
			return 0
		case "-flags", "--flags":
			// No analyzer flags: an empty JSON flag set.
			fmt.Println("[]")
			return 0
		}
	}
	// The go command passes the path to the JSON vet config as the sole
	// argument (x/tools' unitchecker also accepts it @-prefixed).
	if len(args) == 1 && (strings.HasPrefix(args[0], "@") || strings.HasSuffix(args[0], ".cfg")) {
		return vet(strings.TrimPrefix(args[0], "@"))
	}
	return standalone(args)
}

// vetConfig is the subset of the go command's vet configuration file the
// checker needs (the full schema is defined by cmd/go and x/tools'
// unitchecker; unknown fields are ignored).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func vet(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "voodoo-lint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "voodoo-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command requires the facts file to exist even though these
	// analyzers produce no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "voodoo-lint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "voodoo-lint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// Imports resolve through the export data the go command already
	// compiled, mapped via ImportMap (vendoring/test variants) and
	// PackageFile (path → .a/.x file).
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := newInfo()
	tconf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	if strings.HasPrefix(cfg.GoVersion, "go") {
		tconf.GoVersion = cfg.GoVersion
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "voodoo-lint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := lint.Run(fset, files, pkg, info, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "voodoo-lint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Msg)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// standalone re-invokes the binary through `go vet -vettool`, which handles
// package loading, export data and caching; patterns default to ./...
func standalone(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "voodoo-lint: %v\n", err)
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "voodoo-lint: %v\n", err)
		return 1
	}
	return 0
}
