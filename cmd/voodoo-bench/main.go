// Command voodoo-bench regenerates the paper's evaluation (§5): every
// figure of the microbenchmark study and the TPC-H comparisons, plus the
// design-choice ablations.
//
// Usage:
//
//	voodoo-bench [-n N] [-sf SF] [-seed S] [-o out.txt] [fig1|fig12|fig13|fig14|fig15|fig16|ablations|all]
//	voodoo-bench ci [-ci-out BENCH_ci.json] [-baseline BENCH_baseline.json] [-write-baseline]
//
// Times are simulated from the device cost models (see DESIGN.md §2);
// workloads really execute and results are verified en route.
//
// The ci subcommand runs the short smoke subset at a fixed small
// configuration, writes its medians to -ci-out, and exits non-zero if any
// median regressed more than 25% against the committed baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"voodoo/internal/bench"
	"voodoo/internal/diag"
	"voodoo/internal/exec"
	"voodoo/internal/metrics"
	"voodoo/internal/telemetry"
	"voodoo/internal/verify"
)

func main() {
	n := flag.Int("n", 1<<20, "microbenchmark element count")
	sf := flag.Float64("sf", 0.05, "TPC-H scale factor")
	seed := flag.Int64("seed", 42, "data generator seed")
	out := flag.String("o", "", "also write the report to this file")
	ciOut := flag.String("ci-out", "BENCH_ci.json", "ci: write the smoke report here")
	baseline := flag.String("baseline", "BENCH_baseline.json", "ci: committed baseline to compare against")
	writeBaseline := flag.Bool("write-baseline", false, "ci: rewrite the baseline instead of comparing")
	diagAddr := flag.String("diag-addr", "", "serve /metrics, pprof and expvar on this address while the benchmarks run (e.g. localhost:6060)")
	noSpecialize := flag.Bool("no-specialize", false, "disable fragment specialization for every benchmark run (per-element interpreter only)")
	logLevel := flag.String("log-level", "off", "structured-log threshold on stderr: debug, info, warn, error or off")
	doVerify := flag.Bool("verify", false, "statically verify programs and compiled plans before execution (voodoo_verify_failures_total counts rejections)")
	flag.Parse()

	if *doVerify {
		verify.SetEnabled(true)
	}
	if *noSpecialize {
		exec.SetSpecializeDefault(false)
	}
	if err := telemetry.InstallJSON(os.Stderr, *logLevel); err != nil {
		fatal(err)
	}
	if *diagAddr != "" {
		ds, err := diag.Serve(*diagAddr, metrics.Default, nil, nil, nil)
		if err != nil {
			fatal(err)
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "voodoo-bench: diagnostics on http://%s\n", ds.Addr)
	}

	cfg := bench.Config{N: *n, SF: *sf, Seed: *seed}
	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"all"}
	}
	if targets[0] == "ci" {
		// Re-parse so the ci flags may follow the subcommand
		// (flag.Parse stops at the first positional argument).
		if err := flag.CommandLine.Parse(targets[1:]); err != nil {
			fatal(err)
		}
		if err := runCI(*ciOut, *baseline, *writeBaseline); err != nil {
			fatal(err)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintf(w, "voodoo-bench: N=%d SF=%g seed=%d\n\n", *n, *sf, *seed)
	for _, t := range targets {
		start := time.Now()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		if err := run(w, t, cfg); err != nil {
			fatal(err)
		}
		runtime.ReadMemStats(&after)
		fmt.Fprintf(w, "[%s regenerated in %.1fs, %d allocs, %.1f MB allocated]\n\n",
			t, time.Since(start).Seconds(),
			after.Mallocs-before.Mallocs, float64(after.TotalAlloc-before.TotalAlloc)/1e6)
	}
}

func run(w io.Writer, target string, cfg bench.Config) error {
	all := target == "all"
	any := false
	if all || target == "fig1" {
		any = true
		fig, err := bench.Fig1(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, fig.Render())
	}
	if all || target == "fig12" {
		any = true
		tbl, err := bench.Fig12(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, tbl.Render())
	}
	if all || target == "fig13" {
		any = true
		tbl, err := bench.Fig13(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, tbl.Render())
	}
	if all || target == "fig14" {
		any = true
		nat, err := bench.Fig14Native(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, nat.Render())
		figs, err := bench.Fig14(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, figs["fig14b"].Render())
		fmt.Fprintln(w, figs["fig14c"].Render())
	}
	if all || target == "fig15" {
		any = true
		nat, err := bench.Fig15Native(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, nat.Render())
		figs, err := bench.Fig15(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, figs["fig15b"].Render())
		fmt.Fprintln(w, figs["fig15c"].Render())
	}
	if all || target == "fig16" {
		any = true
		nat, err := bench.Fig16Native(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, nat.Render())
		figs, err := bench.Fig16(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, figs["fig16b"].Render())
		fmt.Fprintln(w, figs["fig16c"].Render())
	}
	if all || target == "ablations" {
		any = true
		as, err := bench.Ablations(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, bench.RenderAblations(as))
	}
	if !any {
		return fmt.Errorf("unknown target %q (want fig1, fig12, fig13, fig14, fig15, fig16, ablations or all)", target)
	}
	return nil
}

// runCI executes the bench smoke, persists the report, and gates on the
// committed baseline.
func runCI(outPath, basePath string, writeBaseline bool) error {
	start := time.Now()
	rep, err := bench.CISmoke()
	if err != nil {
		return err
	}
	// The scaling and specialization checks measure real wall clock, so
	// their figures stay out of the committed (deterministic) baseline;
	// they soft-gate below like the allocation counters.
	var scalingWarns []string
	if !writeBaseline {
		scalingWarns = bench.ScalingCheck(rep)
		scalingWarns = append(scalingWarns, bench.SpecializeCheck(rep)...)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if writeBaseline {
		fmt.Printf("ci: baseline rewritten to %s (%d benchmarks, %.1fs)\n",
			basePath, len(rep.Medians), time.Since(start).Seconds())
		return os.WriteFile(basePath, data, 0o644)
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	raw, err := os.ReadFile(basePath)
	if err != nil {
		return fmt.Errorf("no baseline (run `voodoo-bench ci -write-baseline` and commit %s): %w", basePath, err)
	}
	var base bench.CIReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", basePath, err)
	}
	violations := bench.CompareCI(rep, &base, 0.25)
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "ci: REGRESSION:", v)
	}
	// Allocation counters and the parallel-scaling check gate softly: a
	// warning flags the problem but GC wobble or a loaded runner never
	// breaks the build.
	for _, v := range bench.CompareCIAllocs(rep, &base, 0.25) {
		fmt.Fprintln(os.Stderr, "ci: WARNING:", v)
	}
	for _, v := range scalingWarns {
		fmt.Fprintln(os.Stderr, "ci: WARNING:", v)
	}
	if len(violations) > 0 {
		return fmt.Errorf("%d benchmark medians regressed beyond tolerance", len(violations))
	}
	fmt.Printf("ci: %d benchmark medians within 25%% of baseline (%.1fs, report: %s)\n",
		len(rep.Medians), time.Since(start).Seconds(), outPath)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "voodoo-bench:", err)
	os.Exit(1)
}
