// Command voodoo-bench regenerates the paper's evaluation (§5): every
// figure of the microbenchmark study and the TPC-H comparisons, plus the
// design-choice ablations.
//
// Usage:
//
//	voodoo-bench [-n N] [-sf SF] [-seed S] [-o out.txt] [fig1|fig12|fig13|fig14|fig15|fig16|ablations|all]
//
// Times are simulated from the device cost models (see DESIGN.md §2);
// workloads really execute and results are verified en route.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"voodoo/internal/bench"
)

func main() {
	n := flag.Int("n", 1<<20, "microbenchmark element count")
	sf := flag.Float64("sf", 0.05, "TPC-H scale factor")
	seed := flag.Int64("seed", 42, "data generator seed")
	out := flag.String("o", "", "also write the report to this file")
	flag.Parse()

	cfg := bench.Config{N: *n, SF: *sf, Seed: *seed}
	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"all"}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintf(w, "voodoo-bench: N=%d SF=%g seed=%d\n\n", *n, *sf, *seed)
	for _, t := range targets {
		start := time.Now()
		if err := run(w, t, cfg); err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "[%s regenerated in %.1fs]\n\n", t, time.Since(start).Seconds())
	}
}

func run(w io.Writer, target string, cfg bench.Config) error {
	all := target == "all"
	any := false
	if all || target == "fig1" {
		any = true
		fig, err := bench.Fig1(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, fig.Render())
	}
	if all || target == "fig12" {
		any = true
		tbl, err := bench.Fig12(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, tbl.Render())
	}
	if all || target == "fig13" {
		any = true
		tbl, err := bench.Fig13(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, tbl.Render())
	}
	if all || target == "fig14" {
		any = true
		nat, err := bench.Fig14Native(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, nat.Render())
		figs, err := bench.Fig14(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, figs["fig14b"].Render())
		fmt.Fprintln(w, figs["fig14c"].Render())
	}
	if all || target == "fig15" {
		any = true
		nat, err := bench.Fig15Native(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, nat.Render())
		figs, err := bench.Fig15(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, figs["fig15b"].Render())
		fmt.Fprintln(w, figs["fig15c"].Render())
	}
	if all || target == "fig16" {
		any = true
		nat, err := bench.Fig16Native(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, nat.Render())
		figs, err := bench.Fig16(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, figs["fig16b"].Render())
		fmt.Fprintln(w, figs["fig16c"].Render())
	}
	if all || target == "ablations" {
		any = true
		as, err := bench.Ablations(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, bench.RenderAblations(as))
	}
	if !any {
		return fmt.Errorf("unknown target %q (want fig1, fig12, fig13, fig14, fig15, fig16, ablations or all)", target)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "voodoo-bench:", err)
	os.Exit(1)
}
