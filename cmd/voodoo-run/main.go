// Command voodoo-run executes a SQL query through the Voodoo stack against
// a TPC-H catalog (generated on the fly or loaded from disk) and prints the
// result — optionally together with the generated kernel listing and the
// OpenCL C source the paper's backend would ship.
//
// Usage:
//
//	voodoo-run [-sf SF] [-data DIR] [-backend compiled|interp|bulk]
//	           [-predicate] [-show-kernel] [-show-opencl]
//	           [-explain] [-explain-analyze] [-trace out.json]
//	           [-diag-addr ADDR] [-q N] 'SELECT ...'
//
// Examples:
//
//	voodoo-run 'SELECT l_returnflag, COUNT(*) AS n FROM lineitem GROUP BY l_returnflag'
//	voodoo-run -q 6                # run TPC-H query 6
//	voodoo-run -explain 'SELECT SUM(l_extendedprice) AS rev FROM lineitem WHERE l_quantity < 24'
//	voodoo-run -explain-analyze -q 6
//	voodoo-run -trace q6.json -q 6
//	voodoo-run -show-opencl 'SELECT SUM(l_extendedprice*l_discount) AS rev FROM lineitem WHERE l_quantity < 24'
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"voodoo/internal/compile"
	"voodoo/internal/core"
	"voodoo/internal/diag"
	"voodoo/internal/exec"
	"voodoo/internal/metrics"
	"voodoo/internal/opencl"
	"voodoo/internal/rel"
	"voodoo/internal/sql"
	"voodoo/internal/storage"
	"voodoo/internal/telemetry"
	"voodoo/internal/tpch"
	"voodoo/internal/trace"
	"voodoo/internal/verify"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor for the generated catalog")
	data := flag.String("data", "", "load the catalog from this directory instead of generating")
	backend := flag.String("backend", "compiled", "compiled, interp or bulk")
	predicate := flag.Bool("predicate", false, "compile selections branch-free (predication)")
	showKernel := flag.Bool("show-kernel", false, "print the kernel fragment listing")
	showCL := flag.Bool("show-opencl", false, "print the generated OpenCL C")
	qnum := flag.Int("q", 0, "run this TPC-H query number instead of a SQL string")
	progFile := flag.String("prog", "", "run a textual Voodoo program (paper SSA notation) from this file")
	timeout := flag.Duration("timeout", 0, "per-query wall-clock budget (e.g. 500ms; 0 = unlimited)")
	morsel := flag.Int("morsel", 0, "scheduling granularity of parallel fragments in work items (0 = default)")
	noSpecialize := flag.Bool("no-specialize", false, "disable fragment specialization (batch primitives and fused fast paths); run every fragment through the per-element interpreter")
	maxMem := flag.String("max-mem", "", "per-query buffer allocation budget (e.g. 64m, 1g; empty = unlimited)")
	explain := flag.Bool("explain", false, "print the static execution plan (TPC-H -q queries still execute, to drive multi-phase lowering)")
	analyze := flag.Bool("explain-analyze", false, "run the query and print the plan with measured per-step times, items and bytes")
	traceOut := flag.String("trace", "", "run the query and write its execution trace as JSON to this file")
	diagAddr := flag.String("diag-addr", "", "serve /metrics, pprof and expvar on this address for the process lifetime (e.g. localhost:6060)")
	logLevel := flag.String("log-level", "off", "structured-log threshold on stderr: debug, info, warn, error or off")
	doVerify := flag.Bool("verify", false, "statically verify programs and compiled plans before execution (voodoo_verify_failures_total counts rejections)")
	flag.Parse()

	if *doVerify {
		verify.SetEnabled(true)
	}
	if err := telemetry.InstallJSON(os.Stderr, *logLevel); err != nil {
		fatal(err)
	}
	if *diagAddr != "" {
		ds, err := diag.Serve(*diagAddr, metrics.Default, nil, nil, nil)
		if err != nil {
			fatal(err)
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "voodoo-run: diagnostics on http://%s\n", ds.Addr)
	}

	var limits exec.Limits
	if *maxMem != "" {
		n, err := parseSize(*maxMem)
		if err != nil {
			fatal(err)
		}
		limits.MaxBytes = n
	}
	if *timeout > 0 {
		limits.Deadline = time.Now().Add(*timeout)
	}
	ctx := context.Background()

	var cat *storage.Catalog
	var err error
	if *data != "" {
		cat, err = storage.Load(*data)
	} else {
		cat = tpch.Generate(tpch.Config{SF: *sf, Seed: 42})
	}
	if err != nil {
		fatal(err)
	}

	e := &rel.Engine{Cat: cat}
	switch *backend {
	case "compiled":
		e.Backend = rel.Compiled
	case "interp":
		e.Backend = rel.Interpreted
	case "bulk":
		e.Backend = rel.BulkCompiled
	default:
		fatal(fmt.Errorf("unknown backend %q", *backend))
	}
	e.Opt = compile.Options{Predication: *predicate}
	e.Limits = limits
	e.MorselSize = *morsel
	e.NoSpecialize = *noSpecialize

	if *progFile != "" {
		src, err := os.ReadFile(*progFile)
		if err != nil {
			fatal(err)
		}
		prog, err := core.Parse(string(src))
		if err != nil {
			fatal(err)
		}
		plan, err := compile.Compile(prog, cat, e.Opt)
		if err != nil {
			fatal(err)
		}
		if *showKernel {
			fmt.Println("-- kernel fragments:")
			fmt.Println(plan.Kernel())
		}
		if *showCL {
			fmt.Println("-- generated OpenCL C:")
			fmt.Println(opencl.Generate(plan.Kernel()))
		}
		if *explain {
			fmt.Print(plan.Explain())
			return
		}
		plan.Limits = limits
		start := time.Now()
		var res *compile.Result
		if *analyze || *traceOut != "" {
			var tr *trace.Trace
			res, tr, err = plan.RunTracedContext(ctx)
			if err != nil {
				fatal(err)
			}
			tr.Query = *progFile
			if *analyze {
				fmt.Print(tr.String())
			}
			writeTraces(*traceOut, []*trace.Trace{tr})
		} else if res, err = plan.RunContext(ctx); err != nil {
			fatal(err)
		}
		if !*analyze {
			fmt.Printf("-- %d root value(s) (%.1f ms wall)\n", len(res.Values), msSince(start))
			for ref, v := range res.Values {
				fmt.Printf("%s =\n%s", prog.Stmts[ref].Label, v)
			}
		}
		return
	}

	if *qnum > 0 {
		qf, err := tpch.Query(*qnum)
		if err != nil {
			fatal(err)
		}
		if *explain {
			e.PlanSink = func(p *compile.Plan) { fmt.Print(p.Explain()) }
		}
		var traces []*trace.Trace
		if *analyze || *traceOut != "" {
			e.TraceSink = func(t *trace.Trace) {
				t.Query = fmt.Sprintf("TPC-H Q%d", *qnum)
				traces = append(traces, t)
			}
		}
		start := time.Now()
		res, _, err := qf(e)
		if err != nil {
			fatal(err)
		}
		if *analyze {
			for _, t := range traces {
				fmt.Print(t.String())
			}
		}
		writeTraces(*traceOut, traces)
		if !*analyze && !*explain {
			fmt.Printf("-- TPC-H Q%d (%.1f ms wall)\n%s", *qnum, msSince(start), res)
		}
		return
	}

	src := strings.Join(flag.Args(), " ")
	if strings.TrimSpace(src) == "" {
		fatal(fmt.Errorf("no query given (pass a SQL string or -q N)"))
	}
	stmt, err := sql.Parse(src)
	if err != nil {
		fatal(err)
	}
	q, err := sql.Plan(stmt, cat)
	if err != nil {
		fatal(err)
	}

	if *showKernel || *showCL {
		// Compile once more standalone to show the artifacts.
		prog, err := lowerForDisplay(e, q)
		if err != nil {
			fatal(err)
		}
		plan, err := compile.Compile(prog, cat, e.Opt)
		if err != nil {
			fatal(err)
		}
		if *showKernel {
			fmt.Println("-- kernel fragments:")
			fmt.Println(plan.Kernel())
		}
		if *showCL {
			fmt.Println("-- generated OpenCL C:")
			fmt.Println(opencl.Generate(plan.Kernel()))
		}
	}

	q.Name = src
	if *explain {
		prog, err := rel.Lower(q, cat)
		if err != nil {
			fatal(err)
		}
		if e.Backend == rel.Interpreted {
			fmt.Println("-- interpreted backend: one bulk step per statement")
			fmt.Print(prog)
		} else {
			plan, err := e.Plan(prog)
			if err != nil {
				fatal(err)
			}
			fmt.Print(plan.Explain())
		}
		return
	}

	start := time.Now()
	var res *rel.Result
	if *analyze || *traceOut != "" {
		var traces []*trace.Trace
		res, traces, err = e.RunTraced(ctx, q)
		if err != nil {
			fatal(err)
		}
		if *analyze {
			for _, t := range traces {
				fmt.Print(t.String())
			}
		}
		writeTraces(*traceOut, traces)
		if *analyze {
			return
		}
	} else if res, _, err = e.RunContext(ctx, q); err != nil {
		fatal(err)
	}
	fmt.Printf("-- %d rows (%.1f ms wall)\n%s", len(res.Rows), msSince(start), renderDecoded(res))
}

// writeTraces writes the collected traces as JSON: one object for a single
// trace, an array for multi-phase queries.
func writeTraces(path string, traces []*trace.Trace) {
	if path == "" || len(traces) == 0 {
		return
	}
	var data []byte
	var err error
	if len(traces) == 1 {
		data, err = traces[0].JSON()
	} else {
		data, err = json.MarshalIndent(traces, "", "  ")
	}
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "voodoo-run: wrote trace to %s\n", path)
}

// lowerForDisplay exposes the Voodoo program of a query via the engine's
// public lowering (rel.Lower).
func lowerForDisplay(e *rel.Engine, q rel.Query) (*core.Program, error) {
	return rel.Lower(q, e.Cat)
}

// renderDecoded renders the result with dictionary columns decoded.
func renderDecoded(res *rel.Result) string {
	var sb strings.Builder
	for _, c := range res.Cols {
		fmt.Fprintf(&sb, "%-20s", c)
	}
	sb.WriteString("\n")
	for _, row := range res.Rows {
		for _, c := range res.Cols {
			if s := res.Decode(c, row[c]); s != fmt.Sprintf("%g", row[c]) {
				fmt.Fprintf(&sb, "%-20s", s)
			} else {
				fmt.Fprintf(&sb, "%-20.4f", row[c])
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Microseconds()) / 1000 }

// parseSize parses a byte count with an optional k/m/g suffix (powers of
// 1024): "512", "64m", "1g".
func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch strings.ToLower(s[len(s)-1:]) {
	case "k":
		mult, s = 1<<10, s[:len(s)-1]
	case "m":
		mult, s = 1<<20, s[:len(s)-1]
	case "g":
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q (want e.g. 512, 64m, 1g)", s)
	}
	return n * mult, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "voodoo-run:", err)
	os.Exit(1)
}
