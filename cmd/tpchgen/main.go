// Command tpchgen generates a TPC-H catalog (see internal/tpch for the
// documented deviations from dbgen) and persists it in the binary column
// format under a directory, ready for voodoo-run -data.
//
// Usage:
//
//	tpchgen [-sf SF] [-seed S] -o DIR
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"voodoo/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.1, "scale factor (1.0 ≈ 6M lineitems)")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("o", "tpch-data", "output directory")
	flag.Parse()

	start := time.Now()
	cat := tpch.Generate(tpch.Config{SF: *sf, Seed: *seed})
	fmt.Printf("generated SF %g in %.1fs\n", *sf, time.Since(start).Seconds())
	for _, name := range cat.Tables() {
		t := cat.Table(name)
		fmt.Printf("  %-10s %10d rows\n", name, t.N)
	}
	if err := cat.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "tpchgen:", err)
		os.Exit(1)
	}
	fmt.Printf("saved to %s\n", *out)
}
