// Command voodoo-trace pretty-prints and filters the JSONL query-event
// log that voodoo-serve writes with -events. It is the offline half of
// the correlated-telemetry story: grab a query id from a response
// header, a log record or the slow-query ring, and voodoo-trace shows
// what the daemon retained about it.
//
// Usage:
//
//	voodoo-trace [-f events.jsonl] [-query-id ID] [-kind KIND]
//	             [-min-wall DUR] [-errors] [-n N] [-json] [-sql]
//
// With no -f the log is read from stdin, so it composes:
//
//	voodoo-trace -f events.jsonl -errors
//	voodoo-trace -f events.jsonl -query-id 4bf92f3577b34da6a3ce929d0e0e4736 -sql
//	tail -f events.jsonl | voodoo-trace -min-wall 250ms
//	voodoo-trace -f events.jsonl -json -kind shed-memory | jq .sql
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"voodoo/internal/telemetry"
)

func main() {
	file := flag.String("f", "", "read the JSONL event log from this file (empty = stdin)")
	queryID := flag.String("query-id", "", "only events with this query id (prefix match, so the short form from a log line works)")
	kind := flag.String("kind", "", "only events with this error kind (e.g. parse, canceled, shed-memory)")
	minWall := flag.Duration("min-wall", 0, "only events at or above this wall time")
	errorsOnly := flag.Bool("errors", false, "only failed queries (status >= 400)")
	limit := flag.Int("n", 0, "stop after printing N events (0 = all)")
	rawJSON := flag.Bool("json", false, "emit the matching raw JSONL lines instead of the table")
	showSQL := flag.Bool("sql", false, "print each event's full SQL on its own line")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	var printed, malformed int
	for sc.Scan() {
		line := sc.Bytes()
		if len(strings.TrimSpace(string(line))) == 0 {
			continue
		}
		var ev telemetry.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			malformed++
			continue
		}
		if !match(&ev, *queryID, *kind, *minWall, *errorsOnly) {
			continue
		}
		if *rawJSON {
			fmt.Printf("%s\n", line)
		} else {
			fmt.Println(render(&ev))
			if *showSQL && ev.SQL != "" {
				fmt.Printf("    %s\n", ev.SQL)
			}
		}
		printed++
		if *limit > 0 && printed >= *limit {
			break
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if malformed > 0 {
		fmt.Fprintf(os.Stderr, "voodoo-trace: skipped %d malformed line(s)\n", malformed)
	}
}

func match(ev *telemetry.Event, queryID, kind string, minWall time.Duration, errorsOnly bool) bool {
	switch {
	case queryID != "" && !strings.HasPrefix(ev.QueryID, queryID):
		return false
	case kind != "" && ev.Kind != kind:
		return false
	case ev.WallNS < minWall.Nanoseconds():
		return false
	case errorsOnly && ev.Status < 400:
		return false
	}
	return true
}

// render lays out one event as a scannable line: when, who, outcome,
// where the time went, then what (SQL, truncated — -sql prints it all).
func render(ev *telemetry.Event) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  %-8.8s  %3d %-9s %8s",
		ev.Time.Format("15:04:05.000"), ev.QueryID, ev.Status,
		sampledLabel(ev), dur(ev.WallNS))
	if ev.QueueNS > 0 {
		fmt.Fprintf(&sb, "  queue=%s", dur(ev.QueueNS))
	}
	if ev.ExecNS > 0 {
		fmt.Fprintf(&sb, "  exec=%s", dur(ev.ExecNS))
	}
	if ev.CompileNS > 0 {
		fmt.Fprintf(&sb, "  compile=%s", dur(ev.CompileNS))
	}
	if ev.Cached {
		sb.WriteString("  cached")
	}
	if ev.Rows > 0 {
		fmt.Fprintf(&sb, "  rows=%d", ev.Rows)
	}
	if ev.Error != "" {
		fmt.Fprintf(&sb, "  %s: %s", orDefault(ev.Kind, "error"), ev.Error)
	} else if sql := compactSQL(ev.SQL); sql != "" {
		sb.WriteString("  ")
		sb.WriteString(sql)
	}
	return sb.String()
}

// sampledLabel shows why the event was retained; the bracket marks the
// always-kept reasons apart from the random sample.
func sampledLabel(ev *telemetry.Event) string {
	if ev.Sampled == "" || ev.Sampled == "random" {
		return "sampled"
	}
	return "[" + ev.Sampled + "]"
}

func compactSQL(sql string) string {
	sql = strings.Join(strings.Fields(sql), " ")
	if len(sql) > 60 {
		sql = sql[:57] + "..."
	}
	return sql
}

func dur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	}
	return fmt.Sprintf("%dµs", d.Microseconds())
}

func orDefault(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "voodoo-trace:", err)
	os.Exit(1)
}
