// Command voodoo-serve is the long-running Voodoo query daemon: it loads
// (or generates) a TPC-H catalog once, then serves SQL over HTTP with
// the exec resource governor's limits applied per request and the full
// diagnostics surface mounted — Prometheus /metrics, pprof, expvar, and
// the live /queries registry with per-step progress and cancellation.
//
// Usage:
//
//	voodoo-serve [-addr :8080] [-diag-addr ADDR]
//	             [-sf SF] [-data DIR] [-backend compiled|interp|bulk] [-predicate]
//	             [-timeout 30s] [-max-mem 1g] [-max-extent N] [-max-heap 4g]
//	             [-concurrency N] [-morsel N] [-slow N] [-plan-cache N] [-no-pool]
//	             [-no-specialize]
//	             [-drain-timeout 10s]
//	             [-log-level info] [-events FILE] [-event-sample 0.01]
//	             [-slow-threshold 1s] [-slo query=500ms:0.99] [-spans N]
//
// Telemetry: every query gets one id (the inbound W3C traceparent's
// trace id when present, minted otherwise) that appears in the
// response headers, the structured stderr log, the JSONL event log
// (-events; sampled by -event-sample with errors/shed/slow always
// kept), the /debug/spans trees, and the slow-query ring. -slo sets
// per-route latency objectives whose error-budget burn shows up in
// /healthz and the voodoo_slo_* metrics. Inspect an event log with
// voodoo-trace.
//
// Lifecycle signals:
//
//	SIGTERM/SIGINT  graceful shutdown: stop accepting, drain in-flight
//	                queries up to -drain-timeout, then cancel survivors
//	                through the context plumbing and exit.
//	SIGHUP          hot catalog reload: the -data directory (or a fresh
//	                generation) is loaded off to the side and swapped in
//	                atomically; in-flight queries finish on the catalog
//	                they started with.
//
// A catalog directory with corrupt table files starts the daemon in
// degraded mode: the damaged tables are quarantined (listed in /healthz),
// queries touching them answer 503, and the rest serve normally.
//
// Examples:
//
//	voodoo-serve -sf 0.1 &
//	curl -s localhost:8080/query -d 'SELECT l_returnflag, COUNT(*) AS n FROM lineitem GROUP BY l_returnflag'
//	curl -s 'localhost:8080/query?q=6'
//	curl -s localhost:8080/queries
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics | grep voodoo_
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"voodoo/internal/compile"
	"voodoo/internal/diag"
	"voodoo/internal/exec"
	"voodoo/internal/metrics"
	"voodoo/internal/rel"
	"voodoo/internal/serve"
	"voodoo/internal/storage"
	"voodoo/internal/telemetry"
	"voodoo/internal/telemetry/slo"
	"voodoo/internal/tpch"
	"voodoo/internal/verify"
)

func main() {
	addr := flag.String("addr", ":8080", "serve SQL and diagnostics on this address")
	diagAddr := flag.String("diag-addr", "", "additionally serve the diagnostics endpoints on this address (e.g. localhost:6060)")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor for the generated catalog")
	data := flag.String("data", "", "load the catalog from this directory instead of generating")
	backend := flag.String("backend", "compiled", "compiled, interp or bulk")
	predicate := flag.Bool("predicate", false, "compile selections branch-free (predication)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request wall-clock budget, queue wait included (0 = unlimited)")
	maxMem := flag.String("max-mem", "", "per-request buffer allocation budget (e.g. 64m, 1g; empty = unlimited)")
	maxExtent := flag.Int("max-extent", 0, "per-request fragment extent cap (0 = unlimited)")
	concurrency := flag.Int("concurrency", 0, "max queries executing at once (0 = GOMAXPROCS); excess requests queue")
	morsel := flag.Int("morsel", 0, "scheduling granularity of parallel fragments in work items (0 = default)")
	noSpecialize := flag.Bool("no-specialize", false, "disable fragment specialization (batch primitives and fused fast paths); run every fragment through the per-element interpreter")
	slowN := flag.Int("slow", 16, "retain full traces of the N slowest queries")
	planCache := flag.Int("plan-cache", 0, "compiled-plan cache capacity in entries (0 = 256, negative disables)")
	noPool := flag.Bool("no-pool", false, "disable the kernel-buffer pool (each query allocates fresh)")
	maxHeap := flag.String("max-heap", "", "live-heap watermark above which new queries are shed with 503 (e.g. 4g; empty = disabled)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long a SIGTERM drain waits for in-flight queries before cancelling them")
	logLevel := flag.String("log-level", "info", "structured-log threshold on stderr: debug, info, warn, error or off")
	eventsPath := flag.String("events", "", "append sampled JSONL query events to this file (empty = disabled)")
	eventSample := flag.Float64("event-sample", telemetry.DefaultSampleRate, "retention probability for ordinary query events (errors, shed and slow queries are always kept)")
	slowThreshold := flag.Duration("slow-threshold", time.Second, "always retain events for queries at or above this wall time (0 = off)")
	sloSpec := flag.String("slo", "query=500ms:0.99", "latency objectives, route=latency:target[,...] (empty disables SLO tracking)")
	spanRetain := flag.Int("spans", 0, "retain span trees of the N most recent queries for /debug/spans (0 = 64, negative disables)")
	doVerify := flag.Bool("verify", false, "statically verify programs and compiled plans before execution (voodoo_verify_failures_total counts rejections)")
	flag.Parse()

	if *doVerify {
		verify.SetEnabled(true)
	}
	if err := telemetry.InstallJSON(os.Stderr, *logLevel); err != nil {
		fatal(err)
	}
	slos, err := slo.Parse(*sloSpec)
	if err != nil {
		fatal(err)
	}
	var events *telemetry.EventLog
	if *eventsPath != "" {
		f, err := os.OpenFile(*eventsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		events = telemetry.NewEventLog(telemetry.EventLogConfig{
			W: f, SampleRate: *eventSample, SlowThreshold: *slowThreshold,
		})
	}

	var limits exec.Limits
	if *maxMem != "" {
		n, err := parseSize(*maxMem)
		if err != nil {
			fatal(err)
		}
		limits.MaxBytes = n
	}
	limits.MaxExtent = *maxExtent
	var highWater int64
	if *maxHeap != "" {
		n, err := parseSize(*maxHeap)
		if err != nil {
			fatal(err)
		}
		highWater = n
	}

	cat := loadCatalog(*data, *sf)

	s := serve.New(serve.Config{
		Cat:           cat,
		Backend:       backendFor(*backend),
		Opt:           compile.Options{Predication: *predicate},
		Limits:        limits,
		Timeout:       *timeout,
		MaxConcurrent: *concurrency,
		MorselSize:    *morsel,
		NoSpecialize:  *noSpecialize,
		SlowQueries:   *slowN,
		PlanCache:     *planCache,
		NoPool:        *noPool,
		MemHighWater:  highWater,
		Events:        events,
		SpanRetain:    *spanRetain,
		SLO:           slos,
	})

	if *diagAddr != "" {
		ds, err := diag.Serve(*diagAddr, metrics.Default, s.QueryRegistry(), s.SpanStore(), s.Health)
		if err != nil {
			fatal(err)
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "voodoo-serve: diagnostics on http://%s\n", ds.Addr)
	}

	// Bind explicitly so the resolved address (":0" listeners included)
	// is printed — scripts and the signal-handling smoke test parse it.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: s.Mux()}
	go func() {
		fmt.Fprintf(os.Stderr, "voodoo-serve: listening on %s\n", ln.Addr())
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}()

	// SIGHUP reloads the catalog off to the side and swaps it in without
	// dropping a single in-flight query.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			start := time.Now()
			next := loadCatalog(*data, *sf)
			s.SwapCatalog(next)
			fmt.Fprintf(os.Stderr, "voodoo-serve: catalog reloaded in %.1fs (%s)\n",
				time.Since(start).Seconds(), catalogSummary(next))
		}
	}()

	// Serve until interrupted, then drain: stop admitting (healthz flips
	// to draining so load balancers eject us), let in-flight queries
	// finish up to -drain-timeout, then cancel the stragglers through the
	// context plumbing.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "voodoo-serve: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	s.StartDraining()
	if err := s.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "voodoo-serve:", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		srv.Close()
	}
	// The emitters are quiet now: drain the event-log buffer to disk so
	// the shutdown loses no accepted event.
	if err := events.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "voodoo-serve: event log:", err)
	}
	// Last: stop the shared morsel pool so the process exits with no
	// scheduler goroutines behind it.
	exec.QuiesceScheduler()
	fmt.Fprintln(os.Stderr, "voodoo-serve: shutdown complete")
}

// loadCatalog loads -data in degraded mode (quarantining corrupt tables
// rather than refusing to start) or generates a fresh TPC-H catalog.
func loadCatalog(data string, sf float64) *storage.Catalog {
	start := time.Now()
	var cat *storage.Catalog
	if data != "" {
		var err error
		cat, err = storage.LoadDegraded(data)
		if err != nil {
			fatal(err)
		}
		for _, name := range cat.Quarantined() {
			fmt.Fprintf(os.Stderr, "voodoo-serve: QUARANTINED %s: %v\n", name, cat.QuarantineErr(name))
		}
		if q := cat.Quarantined(); len(q) > 0 {
			fmt.Fprintf(os.Stderr, "voodoo-serve: starting DEGRADED: %d of %d tables quarantined\n",
				len(q), len(q)+len(cat.Tables()))
		}
	} else {
		cat = tpch.Generate(tpch.Config{SF: sf, Seed: 42})
	}
	fmt.Fprintf(os.Stderr, "voodoo-serve: catalog ready in %.1fs (%s)\n",
		time.Since(start).Seconds(), catalogSummary(cat))
	return cat
}

func backendFor(name string) rel.Backend {
	switch name {
	case "compiled":
		return rel.Compiled
	case "interp":
		return rel.Interpreted
	case "bulk":
		return rel.BulkCompiled
	}
	fatal(fmt.Errorf("unknown backend %q", name))
	panic("unreachable")
}

func catalogSummary(cat *storage.Catalog) string {
	var parts []string
	for _, name := range cat.Tables() {
		parts = append(parts, fmt.Sprintf("%s:%d", name, cat.Table(name).N))
	}
	return strings.Join(parts, " ")
}

// parseSize parses a byte count with an optional k/m/g suffix (powers of
// 1024): "512", "64m", "1g".
func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch strings.ToLower(s[len(s)-1:]) {
	case "k":
		mult, s = 1<<10, s[:len(s)-1]
	case "m":
		mult, s = 1<<20, s[:len(s)-1]
	case "g":
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q (want e.g. 512, 64m, 1g)", s)
	}
	return n * mult, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "voodoo-serve:", err)
	os.Exit(1)
}
