// Command voodoo-serve is the long-running Voodoo query daemon: it loads
// (or generates) a TPC-H catalog once, then serves SQL over HTTP with
// the exec resource governor's limits applied per request and the full
// diagnostics surface mounted — Prometheus /metrics, pprof, expvar, and
// the live /queries registry with per-step progress and cancellation.
//
// Usage:
//
//	voodoo-serve [-addr :8080] [-diag-addr ADDR]
//	             [-sf SF] [-data DIR] [-backend compiled|interp|bulk] [-predicate]
//	             [-timeout 30s] [-max-mem 1g] [-max-extent N]
//	             [-concurrency N] [-slow N] [-plan-cache N] [-no-pool]
//
// Examples:
//
//	voodoo-serve -sf 0.1 &
//	curl -s localhost:8080/query -d 'SELECT l_returnflag, COUNT(*) AS n FROM lineitem GROUP BY l_returnflag'
//	curl -s 'localhost:8080/query?q=6'
//	curl -s localhost:8080/queries
//	curl -s localhost:8080/metrics | grep voodoo_
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"voodoo/internal/compile"
	"voodoo/internal/diag"
	"voodoo/internal/exec"
	"voodoo/internal/metrics"
	"voodoo/internal/rel"
	"voodoo/internal/serve"
	"voodoo/internal/storage"
	"voodoo/internal/tpch"
)

func main() {
	addr := flag.String("addr", ":8080", "serve SQL and diagnostics on this address")
	diagAddr := flag.String("diag-addr", "", "additionally serve the diagnostics endpoints on this address (e.g. localhost:6060)")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor for the generated catalog")
	data := flag.String("data", "", "load the catalog from this directory instead of generating")
	backend := flag.String("backend", "compiled", "compiled, interp or bulk")
	predicate := flag.Bool("predicate", false, "compile selections branch-free (predication)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request wall-clock budget, queue wait included (0 = unlimited)")
	maxMem := flag.String("max-mem", "", "per-request buffer allocation budget (e.g. 64m, 1g; empty = unlimited)")
	maxExtent := flag.Int("max-extent", 0, "per-request fragment extent cap (0 = unlimited)")
	concurrency := flag.Int("concurrency", 0, "max queries executing at once (0 = GOMAXPROCS); excess requests queue")
	slowN := flag.Int("slow", 16, "retain full traces of the N slowest queries")
	planCache := flag.Int("plan-cache", 0, "compiled-plan cache capacity in entries (0 = 256, negative disables)")
	noPool := flag.Bool("no-pool", false, "disable the kernel-buffer pool (each query allocates fresh)")
	flag.Parse()

	var limits exec.Limits
	if *maxMem != "" {
		n, err := parseSize(*maxMem)
		if err != nil {
			fatal(err)
		}
		limits.MaxBytes = n
	}
	limits.MaxExtent = *maxExtent

	start := time.Now()
	var cat *storage.Catalog
	var err error
	if *data != "" {
		cat, err = storage.Load(*data)
	} else {
		cat = tpch.Generate(tpch.Config{SF: *sf, Seed: 42})
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "voodoo-serve: catalog ready in %.1fs (%s)\n",
		time.Since(start).Seconds(), catalogSummary(cat))

	s := serve.New(serve.Config{
		Cat:           cat,
		Backend:       backendFor(*backend),
		Opt:           compile.Options{Predication: *predicate},
		Limits:        limits,
		Timeout:       *timeout,
		MaxConcurrent: *concurrency,
		SlowQueries:   *slowN,
		PlanCache:     *planCache,
		NoPool:        *noPool,
	})

	if *diagAddr != "" {
		ds, err := diag.Serve(*diagAddr, metrics.Default, s.QueryRegistry())
		if err != nil {
			fatal(err)
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "voodoo-serve: diagnostics on http://%s\n", ds.Addr)
	}

	srv := &http.Server{Addr: *addr, Handler: s.Mux()}
	go func() {
		fmt.Fprintf(os.Stderr, "voodoo-serve: listening on %s\n", *addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}()

	// Serve until interrupted, then drain in-flight requests briefly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "voodoo-serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		srv.Close()
	}
}

func backendFor(name string) rel.Backend {
	switch name {
	case "compiled":
		return rel.Compiled
	case "interp":
		return rel.Interpreted
	case "bulk":
		return rel.BulkCompiled
	}
	fatal(fmt.Errorf("unknown backend %q", name))
	panic("unreachable")
}

func catalogSummary(cat *storage.Catalog) string {
	var parts []string
	for _, name := range cat.Tables() {
		parts = append(parts, fmt.Sprintf("%s:%d", name, cat.Table(name).N))
	}
	return strings.Join(parts, " ")
}

// parseSize parses a byte count with an optional k/m/g suffix (powers of
// 1024): "512", "64m", "1g".
func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch strings.ToLower(s[len(s)-1:]) {
	case "k":
		mult, s = 1<<10, s[:len(s)-1]
	case "m":
		mult, s = 1<<20, s[:len(s)-1]
	case "g":
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q (want e.g. 512, 64m, 1g)", s)
	}
	return n * mult, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "voodoo-serve:", err)
	os.Exit(1)
}
