// Package voodoo's root benchmarks regenerate every table and figure of
// the paper's evaluation (one testing.B benchmark per figure) and measure
// the raw machinery (kernel execution, backend comparison) in wall-clock
// time. Run with:
//
//	go test -bench=. -benchmem
//
// The Benchmark*Figure benches report the simulated times of a selected
// data point alongside (metric "sim_ms"); see EXPERIMENTS.md for the full
// regenerated tables.
package voodoo

import (
	"testing"

	"voodoo/internal/bench"
	"voodoo/internal/compile"
	"voodoo/internal/core"
	"voodoo/internal/interp"
	"voodoo/internal/rel"
	"voodoo/internal/tpch"
	"voodoo/internal/vector"
)

// benchCfg is deliberately small so `go test -bench .` stays responsive;
// cmd/voodoo-bench runs the full-size sweep.
var benchCfg = bench.Config{N: 1 << 16, SF: 0.005, Seed: 42}

// BenchmarkFig1 regenerates Figure 1 (branching vs branch-free selection).
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig1(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(fig.SeriesByName("Single Thread Branch").At(0.5)*1000, "sim_ms_branch@50")
			b.ReportMetric(fig.SeriesByName("Single Thread No Branch").At(0.5)*1000, "sim_ms_nobranch@50")
		}
	}
}

// BenchmarkFig12 regenerates Figure 12 (TPC-H on GPU, Voodoo vs Ocelot).
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := bench.Fig12(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(tbl.Time(1, "Voodoo"), "sim_ms_q1_voodoo")
			b.ReportMetric(tbl.Time(1, "Ocelot"), "sim_ms_q1_ocelot")
		}
	}
}

// BenchmarkFig13 regenerates Figure 13 (TPC-H on CPU, HyPer vs Voodoo vs
// Ocelot).
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := bench.Fig13(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(tbl.Time(6, "Voodoo"), "sim_ms_q6_voodoo")
			b.ReportMetric(tbl.Time(6, "HyPeR"), "sim_ms_q6_hyper")
		}
	}
}

// BenchmarkFig14 regenerates Figure 14 (JIT layout transformation, all
// three sub-figures).
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig14Native(benchCfg); err != nil {
			b.Fatal(err)
		}
		figs, err := bench.Fig14(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(figs["fig14b"].SeriesByName("Layout Transform").At(2)*1000, "sim_ms_transform@128MB")
		}
	}
}

// BenchmarkFig15 regenerates Figure 15 (selection strategies, all three
// sub-figures).
func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig15Native(benchCfg); err != nil {
			b.Fatal(err)
		}
		figs, err := bench.Fig15(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(figs["fig15b"].SeriesByName("Vectorized (BF)").At(0.5)*1000, "sim_ms_vectorized@50")
		}
	}
}

// BenchmarkFig16 regenerates Figure 16 (selective FK joins, all three
// sub-figures).
func BenchmarkFig16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig16Native(benchCfg); err != nil {
			b.Fatal(err)
		}
		figs, err := bench.Fig16(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(figs["fig16b"].SeriesByName("Predicated Lookups").At(0.5)*1000, "sim_ms_predlookup@50")
		}
	}
}

// BenchmarkAblations regenerates the design-choice ablation table.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Ablations(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Raw machinery wall-clock benches -------------------------------------

func selectionStorage(n int) interp.MemStorage {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i%1000) / 1000
	}
	return interp.MemStorage{"input": vector.New(n).Set("val", vector.NewFloat(vals))}
}

func selectionProgram(n int) *core.Program {
	b := core.NewBuilder()
	in := b.Load("input")
	pred := b.Less(in, "", b.ConstantF(0.5), "")
	ids := b.Range(in)
	fold := b.Project("fold", b.Divide(ids, b.Constant(int64(n/64))), "")
	pf := b.Zip("p", pred, "", "fold", fold, "fold")
	sel := b.FoldSelect(pf, "fold", "p")
	g := b.Gather(in, sel, "")
	b.FoldSum(g, "", "")
	return b.Program()
}

// BenchmarkCompiledSelection measures compiled kernel execution wall time.
func BenchmarkCompiledSelection(b *testing.B) {
	n := 1 << 18
	st := selectionStorage(n)
	plan, err := compile.Compile(selectionProgram(n), st, compile.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(n) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpretedSelection measures the bulk interpreter on the same
// program (the backend gap of paper §3.2).
func BenchmarkInterpretedSelection(b *testing.B) {
	n := 1 << 16 // the interpreter is the slow reference; keep it small
	st := selectionStorage(n)
	prog := selectionProgram(n)
	b.SetBytes(int64(n) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := interp.Run(prog, st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompile measures query-compilation latency (algebra → kernel).
func BenchmarkCompile(b *testing.B) {
	n := 1 << 12
	st := selectionStorage(n)
	prog := selectionProgram(n)
	for i := 0; i < b.N; i++ {
		if _, err := compile.Compile(prog, st, compile.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTPCH measures end-to-end wall time per query on the compiled
// backend.
func BenchmarkTPCH(b *testing.B) {
	cat := tpch.Generate(tpch.Config{SF: benchCfg.SF, Seed: benchCfg.Seed})
	for _, num := range []int{1, 5, 6, 19} {
		qf, err := tpch.Query(num)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(map[int]string{1: "Q1", 5: "Q5", 6: "Q6", 19: "Q19"}[num], func(b *testing.B) {
			e := &rel.Engine{Cat: cat, Backend: rel.Compiled}
			for i := 0; i < b.N; i++ {
				if _, _, err := qf(e); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
