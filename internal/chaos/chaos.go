// Package chaos is an in-process fault-injection harness for the query
// daemon. Storm stands up a real serve.Server over HTTP, captures golden
// results for a fixed query mix, then hammers the daemon with concurrent
// clients while faultinject randomly fails allocations, panics inside
// kernel loops, and injects slowness — and the clients themselves
// randomly cancel requests and disconnect mid-read, while a background
// goroutine hot-swaps the catalog. When the storm subsides the daemon is
// drained and the report carries the serving invariants:
//
//   - every 200 response produced during the storm is bit-identical
//     (cols + rows) to its pre-storm golden — faults may fail a query,
//     they must never corrupt one;
//   - no query is stuck in the registry after the drain;
//   - no pooled arena leaked across the storm;
//   - no morsel-pool worker goroutine or published job survives the
//     post-drain scheduler quiesce;
//   - the JSONL event log loses nothing to the drain: every event it
//     accepted during the storm is written by the time Close returns,
//     with backpressure absorbed by the drop counter, never by blocking.
//
// Hooks are process-global, so callers running under `go test` should
// hold the faultinject test lock (faultinject.With with empty Hooks)
// before invoking Storm; Storm installs and clears its own hooks via Set.
package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"voodoo/internal/compile"
	"voodoo/internal/exec"
	"voodoo/internal/faultinject"
	"voodoo/internal/metrics"
	"voodoo/internal/serve"
	"voodoo/internal/storage"
	"voodoo/internal/telemetry"
)

// Config shapes one storm.
type Config struct {
	// Cat and ReloadCat are two catalogs holding identical data (e.g. two
	// tpch.Generate calls with the same seed). The reloader swaps between
	// them so results stay comparable to the goldens across reloads.
	// ReloadCat may be nil to disable reloads.
	Cat, ReloadCat *storage.Catalog

	Duration time.Duration // storm length (default 2s)
	Clients  int           // concurrent client goroutines (default 12)
	Seed     int64         // deterministic client/fault schedules

	// Fault probabilities in percent, applied per injection site.
	AllocFailPct int // chance an allocation is refused (default 3)
	PanicPct     int // chance a kernel loop panics (default 1)
	SlowPct      int // chance a kernel loop stalls briefly (default 5)

	// Client misbehavior probabilities in percent, per request.
	CancelPct     int // request sent with an already-ticking cancel (default 15)
	DisconnectPct int // connection torn down mid-response (default 10)

	ReloadEvery time.Duration // catalog swap cadence (default 200ms)

	Queries []string // query mix (default: a small TPC-H lineitem mix)
}

// Report is what a storm leaves behind.
type Report struct {
	Requests    int // total requests issued
	OK          int // 200 responses (each compared against its golden)
	Failed      int // non-200 responses (shed, injected faults, timeouts)
	ClientAbort int // requests the client itself cancelled or tore down
	Reloads     int // catalog swaps performed mid-storm

	Mismatches   []string // golden violations: query + diff summary
	StuckQueries int      // registry entries alive after the drain
	LeakedArenas int64    // pooled arenas still live after the drain
	// LeakedWorkers counts morsel-pool goroutines still alive after the
	// post-drain scheduler quiesce; StuckJobs counts fragments still
	// published to the pool. Both must be zero after a clean drain.
	LeakedWorkers int
	StuckJobs     int

	// Event-log accounting after the drain. Accepted events must all be
	// written once Close returns (flush-on-quiesce); LostEvents is the
	// difference and must be zero. EventsDropped counts buffer
	// backpressure — a tolerated degradation, not a violation.
	EventsAccepted int64
	EventsWritten  int64
	EventsDropped  int64
	LostEvents     int64
}

// Err flattens invariant violations into one error, nil when the storm
// held every invariant.
func (r *Report) Err() error {
	var probs []string
	if n := len(r.Mismatches); n > 0 {
		probs = append(probs, fmt.Sprintf("%d corrupted results (first: %s)", n, r.Mismatches[0]))
	}
	if r.StuckQueries > 0 {
		probs = append(probs, fmt.Sprintf("%d queries stuck in the registry", r.StuckQueries))
	}
	if r.LeakedArenas > 0 {
		probs = append(probs, fmt.Sprintf("%d leaked arenas", r.LeakedArenas))
	}
	if r.LeakedWorkers > 0 {
		probs = append(probs, fmt.Sprintf("%d leaked scheduler workers", r.LeakedWorkers))
	}
	if r.StuckJobs > 0 {
		probs = append(probs, fmt.Sprintf("%d jobs stuck in the scheduler", r.StuckJobs))
	}
	if r.LostEvents > 0 {
		probs = append(probs, fmt.Sprintf("%d accepted events lost by the drain", r.LostEvents))
	}
	if len(probs) == 0 {
		return nil
	}
	return fmt.Errorf("chaos: %s", strings.Join(probs, "; "))
}

var defaultQueries = []string{
	`SELECT l_returnflag, COUNT(*) AS n, SUM(l_quantity) AS q
	   FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag`,
	`SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem
	   WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
	     AND l_discount BETWEEN 0.0499 AND 0.0701 AND l_quantity < 24`,
	`SELECT COUNT(*) AS n FROM lineitem WHERE l_shipmode IN ('AIR', 'RAIL')`,
	`SELECT o_orderpriority, COUNT(*) AS n FROM orders GROUP BY o_orderpriority ORDER BY o_orderpriority`,
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Duration <= 0 {
		out.Duration = 2 * time.Second
	}
	if out.Clients <= 0 {
		out.Clients = 12
	}
	if out.AllocFailPct == 0 {
		out.AllocFailPct = 3
	}
	if out.PanicPct == 0 {
		out.PanicPct = 1
	}
	if out.SlowPct == 0 {
		out.SlowPct = 5
	}
	if out.CancelPct == 0 {
		out.CancelPct = 15
	}
	if out.DisconnectPct == 0 {
		out.DisconnectPct = 10
	}
	if out.ReloadEvery <= 0 {
		out.ReloadEvery = 200 * time.Millisecond
	}
	if len(out.Queries) == 0 {
		out.Queries = defaultQueries
	}
	return out
}

// lockedRand is a mutex-guarded rand for the process-global fault hooks,
// which fire from many worker goroutines at once.
type lockedRand struct {
	mu sync.Mutex
	r  *rand.Rand
}

func (l *lockedRand) pct() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Intn(100)
}

// golden is the comparable slice of a query response: columns and rows,
// stats excluded (timings vary run to run).
type golden struct {
	Cols []string         `json:"cols"`
	Rows []map[string]any `json:"rows"`
}

func canonical(body []byte) (string, error) {
	var g golden
	if err := json.Unmarshal(body, &g); err != nil {
		return "", err
	}
	b, err := json.Marshal(g)
	return string(b), err
}

// Storm runs one chaos storm and reports the invariants. The error return
// covers harness failures (golden capture, drain); invariant violations
// live in the Report (see Report.Err).
func Storm(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Cat == nil {
		return nil, fmt.Errorf("chaos: Config.Cat is required")
	}

	// The storm gets its own metrics registry (repeated storms would
	// otherwise pile func metrics onto metrics.Default) and a
	// retain-everything event log, so the drain can assert the sink's
	// no-loss contract under real concurrent load.
	reg := metrics.NewRegistry()
	events := telemetry.NewEventLog(telemetry.EventLogConfig{
		W: io.Discard, SampleRate: 1, Registry: reg,
	})
	s := serve.New(serve.Config{
		Cat: cfg.Cat,
		// Four workers per fragment regardless of GOMAXPROCS, so the storm
		// exercises the shared morsel pool (publish/claim/abort under
		// faults) even on single-CPU CI runners.
		Opt:           compile.Options{Workers: 4},
		MaxConcurrent: 8,
		Timeout:       10 * time.Second,
		Registry:      reg,
		Events:        events,
	})
	srv := httptest.NewServer(s.Mux())
	defer srv.Close()

	// Golden capture: every query once, faults off.
	goldens := make([]string, len(cfg.Queries))
	for i, q := range cfg.Queries {
		resp, err := http.Post(srv.URL+"/query", "text/plain", strings.NewReader(q))
		if err != nil {
			return nil, fmt.Errorf("chaos: golden capture: %w", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			return nil, fmt.Errorf("chaos: golden capture of query %d: status %d: %s", i, resp.StatusCode, body)
		}
		if goldens[i], err = canonical(body); err != nil {
			return nil, fmt.Errorf("chaos: golden capture of query %d: %w", i, err)
		}
	}

	// The fault hooks. Installed for the storm only; the drain below runs
	// fault-free so in-flight work can unwind.
	hookRand := &lockedRand{r: rand.New(rand.NewSource(cfg.Seed))}
	faultinject.Set(faultinject.Hooks{
		Alloc: func(bytes int64) error {
			if hookRand.pct() < cfg.AllocFailPct {
				return fmt.Errorf("chaos: injected allocation failure (%d bytes)", bytes)
			}
			return nil
		},
		Item: func(frag string, gid int) {
			p := hookRand.pct()
			if p < cfg.PanicPct {
				panic(fmt.Sprintf("chaos: injected panic in %s at item %d", frag, gid))
			}
			if p < cfg.PanicPct+cfg.SlowPct {
				time.Sleep(200 * time.Microsecond)
			}
		},
	})

	var (
		rep   Report
		repMu sync.Mutex
		wg    sync.WaitGroup
	)
	stop := make(chan struct{})
	time.AfterFunc(cfg.Duration, func() { close(stop) })

	// Catalog reloader: swap between the two identical-data catalogs so
	// every golden stays valid across reloads.
	if cfg.ReloadCat != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cats := [2]*storage.Catalog{cfg.ReloadCat, cfg.Cat}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-time.After(cfg.ReloadEvery):
					s.SwapCatalog(cats[i%2])
					repMu.Lock()
					rep.Reloads++
					repMu.Unlock()
				}
			}
		}()
	}

	client := &http.Client{}
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id) + 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				qi := rng.Intn(len(cfg.Queries))
				ctx, cancel := context.WithCancel(context.Background())
				aborting := false
				switch p := rng.Intn(100); {
				case p < cfg.CancelPct:
					// Cancel somewhere between "before admission" and
					// "mid-execution".
					aborting = true
					time.AfterFunc(time.Duration(rng.Intn(3000))*time.Microsecond, cancel)
				case p < cfg.CancelPct+cfg.DisconnectPct:
					// Disconnect: same cancellation, but after the request
					// has very likely been written — tears the connection
					// down under the handler.
					aborting = true
					time.AfterFunc(time.Duration(500+rng.Intn(5000))*time.Microsecond, cancel)
				}

				req, _ := http.NewRequestWithContext(ctx, "POST", srv.URL+"/query", strings.NewReader(cfg.Queries[qi]))
				resp, err := client.Do(req)
				var outcome func(r *Report)
				if err != nil {
					outcome = func(r *Report) { r.ClientAbort++ }
				} else {
					body, rerr := io.ReadAll(resp.Body)
					resp.Body.Close()
					switch {
					case rerr != nil:
						outcome = func(r *Report) { r.ClientAbort++ }
					case resp.StatusCode != 200:
						outcome = func(r *Report) { r.Failed++ }
					default:
						got, cerr := canonical(body)
						if cerr != nil || got != goldens[qi] {
							// A mid-read cancel can truncate a 200 body;
							// only a complete, parseable body that differs
							// is corruption.
							if cerr != nil && aborting {
								outcome = func(r *Report) { r.ClientAbort++ }
							} else {
								m := fmt.Sprintf("query %d: got %.120s want %.120s", qi, got, goldens[qi])
								outcome = func(r *Report) { r.Mismatches = append(r.Mismatches, m) }
							}
						} else {
							outcome = func(r *Report) { r.OK++ }
						}
					}
				}
				cancel()
				repMu.Lock()
				rep.Requests++
				outcome(&rep)
				repMu.Unlock()
			}
		}(c)
	}

	wg.Wait()
	// Faults off before the drain: whatever is still in flight finishes
	// or cancels on clean plumbing.
	faultinject.Clear()

	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.StartDraining()
	if err := s.Shutdown(drainCtx); err != nil {
		return &rep, fmt.Errorf("chaos: drain: %w", err)
	}
	rep.StuckQueries = s.QueryRegistry().ActiveCount()
	rep.LeakedArenas = s.PoolStats().LiveArenas
	// The handlers have quiesced: close the event log and hold it to the
	// no-loss contract — everything accepted is on the writer.
	if err := events.Close(); err != nil {
		return &rep, fmt.Errorf("chaos: event log close: %w", err)
	}
	rep.EventsAccepted = events.Accepted()
	rep.EventsWritten = events.Written()
	rep.EventsDropped = events.Dropped()
	rep.LostEvents = rep.EventsAccepted - rep.EventsWritten
	// The drained daemon must leave the shared morsel pool empty: quiesce
	// it (as voodoo-serve does last in its SIGTERM path) and assert no
	// worker goroutine or published job survives.
	exec.QuiesceScheduler()
	sst := exec.SchedulerStats()
	rep.LeakedWorkers = sst.Workers
	rep.StuckJobs = sst.ActiveJobs
	return &rep, nil
}
