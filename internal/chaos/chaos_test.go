package chaos

import (
	"bytes"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"voodoo/internal/faultinject"
	"voodoo/internal/metrics"
	"voodoo/internal/telemetry"
	"voodoo/internal/tpch"
)

// TestChaosStorm runs the full storm: concurrent clients, injected
// allocation failures / panics / slowness, client cancellations and
// disconnects, and periodic hot catalog reloads — then drains and checks
// the invariants: no corrupted 200 responses, no stuck registry entries,
// no leaked pool arenas.
//
// CI runs this under -race with VOODOO_CHAOS_DURATION to size the storm;
// locally it defaults to a 2s storm.
func TestChaosStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos storm skipped in -short mode")
	}
	dur := 2 * time.Second
	if env := os.Getenv("VOODOO_CHAOS_DURATION"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("bad VOODOO_CHAOS_DURATION %q: %v", env, err)
		}
		dur = d
	}

	// Storm manages its own hooks via Set/Clear; holding the faultinject
	// test lock keeps other hook-setting tests out for the duration.
	faultinject.With(t, faultinject.Hooks{})

	gen := tpch.Config{SF: 0.01, Seed: 42}
	rep, err := Storm(Config{
		Cat:       tpch.Generate(gen),
		ReloadCat: tpch.Generate(gen),
		Duration:  dur,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("storm: %d requests (%d ok, %d failed, %d client-aborted), %d reloads",
		rep.Requests, rep.OK, rep.Failed, rep.ClientAbort, rep.Reloads)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("storm issued no requests")
	}
	// CI sizes the storm and pins a request floor so the invariants were
	// actually exercised at scale, not vacuously on a handful of queries.
	if env := os.Getenv("VOODOO_CHAOS_MIN_REQUESTS"); env != "" {
		min, err := strconv.Atoi(env)
		if err != nil {
			t.Fatalf("bad VOODOO_CHAOS_MIN_REQUESTS %q: %v", env, err)
		}
		if rep.Requests < min {
			t.Errorf("storm issued %d requests, want >= %d", rep.Requests, min)
		}
	}
	if rep.OK == 0 {
		t.Error("no request survived the storm — fault rates drowned the signal")
	}
	if rep.Failed == 0 && rep.ClientAbort == 0 {
		t.Error("no request failed or aborted — the storm injected nothing")
	}
	// The event log ran at sample rate 1, so the storm must have pushed
	// events through it (Err already asserted none were lost).
	if rep.EventsAccepted == 0 {
		t.Error("storm produced no query events — the telemetry sink was not exercised")
	}
	t.Logf("events: %d accepted, %d written, %d dropped",
		rep.EventsAccepted, rep.EventsWritten, rep.EventsDropped)
}

// blockableWriter lets the backpressure test wedge the event-log writer
// goroutine mid-write and release it later.
type blockableWriter struct {
	gate chan struct{}
	n    atomic.Int64
}

func (w *blockableWriter) Write(p []byte) (int, error) {
	<-w.gate
	w.n.Add(int64(bytes.Count(p, []byte("\n"))))
	return len(p), nil
}

// TestEventLogBackpressure wedges the sink's writer behind a blocked
// io.Writer and hammers Emit: the serving path must never block — the
// overflow lands in the drop counter — and once the writer is released,
// Close still delivers every accepted event.
func TestEventLogBackpressure(t *testing.T) {
	w := &blockableWriter{gate: make(chan struct{})}
	l := telemetry.NewEventLog(telemetry.EventLogConfig{
		W: w, Buffer: 8, SampleRate: 1, Registry: metrics.NewRegistry(),
	})

	// 4 emitters × 64 events against a buffer of 8 and a wedged writer.
	const emitters, perEmitter = 4, 64
	start := time.Now()
	var wg sync.WaitGroup
	for e := 0; e < emitters; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			for i := 0; i < perEmitter; i++ {
				l.Emit(telemetry.Event{QueryID: "q", Status: 200, WallNS: 1})
			}
		}(e)
	}
	wg.Wait()
	if blocked := time.Since(start); blocked > 5*time.Second {
		t.Errorf("emitters took %v against a wedged writer — Emit blocked", blocked)
	}

	total := l.Accepted() + l.Dropped()
	if total != emitters*perEmitter {
		t.Errorf("accounting leak: accepted %d + dropped %d != emitted %d",
			l.Accepted(), l.Dropped(), emitters*perEmitter)
	}
	if l.Dropped() == 0 {
		t.Error("no drops despite a wedged writer and a full buffer")
	}

	// Release the writer: Close must deliver everything accepted.
	close(w.gate)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if l.Written() != l.Accepted() {
		t.Errorf("drain lost events: accepted %d, written %d", l.Accepted(), l.Written())
	}
	if got := w.n.Load(); got != l.Written() {
		t.Errorf("writer saw %d lines, sink counted %d", got, l.Written())
	}
}
