package chaos

import (
	"os"
	"strconv"
	"testing"
	"time"

	"voodoo/internal/faultinject"
	"voodoo/internal/tpch"
)

// TestChaosStorm runs the full storm: concurrent clients, injected
// allocation failures / panics / slowness, client cancellations and
// disconnects, and periodic hot catalog reloads — then drains and checks
// the invariants: no corrupted 200 responses, no stuck registry entries,
// no leaked pool arenas.
//
// CI runs this under -race with VOODOO_CHAOS_DURATION to size the storm;
// locally it defaults to a 2s storm.
func TestChaosStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos storm skipped in -short mode")
	}
	dur := 2 * time.Second
	if env := os.Getenv("VOODOO_CHAOS_DURATION"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("bad VOODOO_CHAOS_DURATION %q: %v", env, err)
		}
		dur = d
	}

	// Storm manages its own hooks via Set/Clear; holding the faultinject
	// test lock keeps other hook-setting tests out for the duration.
	faultinject.With(t, faultinject.Hooks{})

	gen := tpch.Config{SF: 0.01, Seed: 42}
	rep, err := Storm(Config{
		Cat:       tpch.Generate(gen),
		ReloadCat: tpch.Generate(gen),
		Duration:  dur,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("storm: %d requests (%d ok, %d failed, %d client-aborted), %d reloads",
		rep.Requests, rep.OK, rep.Failed, rep.ClientAbort, rep.Reloads)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("storm issued no requests")
	}
	// CI sizes the storm and pins a request floor so the invariants were
	// actually exercised at scale, not vacuously on a handful of queries.
	if env := os.Getenv("VOODOO_CHAOS_MIN_REQUESTS"); env != "" {
		min, err := strconv.Atoi(env)
		if err != nil {
			t.Fatalf("bad VOODOO_CHAOS_MIN_REQUESTS %q: %v", env, err)
		}
		if rep.Requests < min {
			t.Errorf("storm issued %d requests, want >= %d", rep.Requests, min)
		}
	}
	if rep.OK == 0 {
		t.Error("no request survived the storm — fault rates drowned the signal")
	}
	if rep.Failed == 0 && rep.ClientAbort == 0 {
		t.Error("no request failed or aborted — the storm injected nothing")
	}
}
