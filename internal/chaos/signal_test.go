package chaos

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"voodoo/internal/telemetry"
)

// TestSignalDrain is the signal-handling smoke test: it builds the real
// voodoo-serve binary, starts it on an ephemeral port, SIGTERMs it while
// queries are in flight, and asserts a clean drain — exit code 0, the
// drain banner on stderr, and every in-flight request answered (success
// or an orderly shed), never a torn connection.
func TestSignalDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test skipped in -short mode")
	}

	bin := filepath.Join(t.TempDir(), "voodoo-serve")
	if out, err := exec.Command("go", "build", "-o", bin, "voodoo/cmd/voodoo-serve").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// -concurrency 1 guarantees a queue, so a burst of clients leaves
	// requests both executing and queued when the signal lands. The
	// retain-everything event log lets the test assert the drain flushed
	// one complete JSONL record per request.
	eventsPath := filepath.Join(t.TempDir(), "events.jsonl")
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-sf", "0.01", "-concurrency", "1", "-drain-timeout", "10s",
		"-events", eventsPath, "-event-sample", "1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon prints its resolved address; everything after the
	// listen banner is collected for the drain assertions.
	var tail bytes.Buffer
	addrCh := make(chan string, 1)
	stderrDone := make(chan struct{})
	go func() {
		defer close(stderrDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
			tail.WriteString(line + "\n")
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never announced its address; stderr so far:\n%s", tail.String())
	}
	base := "http://" + addr

	const q = `SELECT l_returnflag, COUNT(*) AS n, SUM(l_quantity) AS q
	             FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag`
	// One warm-up confirms the daemon serves before the storm of clients.
	resp, err := http.Post(base+"/query", "text/plain", strings.NewReader(q))
	if err != nil {
		t.Fatalf("warm-up query: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("warm-up query: status %d", resp.StatusCode)
	}

	// Launch a burst, give it a moment to be mid-flight, then SIGTERM.
	var wg sync.WaitGroup
	results := make(chan error, 8)
	for i := 0; i < cap(results); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(base+"/query", "text/plain", strings.NewReader(q))
			if err != nil {
				results <- fmt.Errorf("torn connection: %w", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 && resp.StatusCode != 503 {
				results <- fmt.Errorf("unexpected status %d", resp.StatusCode)
				return
			}
			results <- nil
		}()
	}
	time.Sleep(20 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Errorf("in-flight request during drain: %v", err)
		}
	}

	// Drain stderr to EOF before reaping: cmd.Wait closes the pipe, which
	// would race the scanner out of the final banner lines.
	select {
	case <-stderrDone:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never closed stderr after SIGTERM; stderr so far:\n%s", tail.String())
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited uncleanly: %v\nstderr:\n%s", err, tail.String())
	}
	out := tail.String()
	if !strings.Contains(out, "draining") {
		t.Errorf("stderr missing drain banner:\n%s", out)
	}
	if !strings.Contains(out, "shutdown complete") {
		t.Errorf("stderr missing shutdown banner:\n%s", out)
	}

	// The SIGTERM drain must leave a complete event log behind: one
	// parseable JSONL record per request (warm-up + burst, successes and
	// sheds alike at sample rate 1), no torn final line.
	evData, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatalf("event log after drain: %v", err)
	}
	var events int
	for _, line := range strings.Split(strings.TrimRight(string(evData), "\n"), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var ev telemetry.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Errorf("torn or malformed event line %q: %v", line, err)
			continue
		}
		if len(ev.QueryID) != 32 {
			t.Errorf("event missing its query id: %s", line)
		}
		events++
	}
	if want := 1 + cap(results); events != want {
		t.Errorf("event log has %d records after the drain, want %d\n%s", events, want, evData)
	}
}
