package bench

import (
	"fmt"

	"voodoo/internal/compile"
	"voodoo/internal/core"
	"voodoo/internal/device"
	"voodoo/internal/interp"
	"voodoo/internal/vector"
)

// fig14Workloads are the three lookup patterns: sequential positions,
// random into a cache-resident table (the paper's "Random 4MB") and random
// into a DRAM-resident table ("Random 128MB"). Sizing is cache-relative —
// tables and the model's cache tiers scale together with cfg.N — so the
// L3-resident vs DRAM-resident contrast that drives the figure holds at
// every configuration size.
type fig14Workload struct {
	name string
	x    float64
	seq  bool
	big  bool
}

var fig14Workloads = []fig14Workload{
	{"Sequential", 0, true, false},
	{"Random 4MB", 1, false, false},
	{"Random 128MB", 2, false, true},
}

// fig14Variant identifies the three implementations.
type fig14Variant uint8

const (
	layoutSingleLoop fig14Variant = iota
	layoutSeparateLoops
	layoutTransform
)

var fig14VariantNames = []string{"Single Loop", "Separate Loops", "Layout Transform"}

// fig14Program builds the two-column positional lookup in the given
// variant.
func fig14Program(v fig14Variant, runLen int) *core.Program {
	b := core.NewBuilder()
	pos := b.Load("pos")
	t1 := b.Load("c1")
	t2 := b.Load("c2")
	switch v {
	case layoutSingleLoop:
		g := b.Gather(b.Zip("c1", t1, "", "c2", t2, ""), pos, "")
		sum := b.Arith(core.OpAdd, "s", g, "c1", g, "c2")
		hierSum(b, sum, "s", runLen)
	case layoutSeparateLoops:
		g1 := b.Gather(t1, pos, "")
		s1 := hierSum(b, g1, "", runLen)
		g2 := b.Gather(t2, pos, "")
		s2 := hierSum(b, g2, "", runLen)
		b.Add(s1, s2)
	case layoutTransform:
		// Interleave the columns row-wise: row[2i] = c1[i], row[2i+1] = c2[i].
		ids2 := b.RangeN(0, 2*progTableLen, 1)
		half := b.Project("h", b.Divide(ids2, b.Constant(2)), "")
		odd := b.Modulo(ids2, b.Constant(2))
		g1 := b.Gather(t1, half, "h")
		g2 := b.Gather(t2, half, "h")
		evenPart := b.Arith(core.OpMultiply, "v", g1, "",
			b.Subtract(b.Constant(1), odd), "")
		oddPart := b.Arith(core.OpMultiply, "v", g2, "", odd, "")
		rowVals := b.Add(evenPart, oddPart)
		foldM := b.Project("fold", b.Divide(b.Range(rowVals), b.Constant(int64(runLen))), "")
		row := b.Materialize(rowVals, foldM, "fold")
		// Lookups: both fields of row p are adjacent.
		p2 := b.Multiply(b.Project("p", pos, ""), b.Constant(2))
		posEven := b.Upsert(pos, "pe", p2, "")
		posOdd := b.Upsert(pos, "po", b.Add(p2, b.Constant(1)), "")
		v1 := b.Gather(row, posEven, "pe")
		v2 := b.Gather(row, posOdd, "po")
		sum := b.Add(v1, v2)
		hierSum(b, sum, "", runLen)
	}
	return b.Program()
}

// progTableLen is threaded through fig14Program via a package variable to
// keep the builder free of context plumbing; Fig14 sets it per workload.
var progTableLen int

// Fig14 regenerates Figure 14 (b and c): just-in-time layout
// transformation on the Voodoo backend for CPU and GPU.
func Fig14(cfg Config) (map[string]*Figure, error) {
	n := cfg.n()
	out := map[string]*Figure{}
	for _, d := range []struct {
		key    string
		model  *device.Model
		runLen int
	}{
		{"fig14b", fig14CPU(cfg), n},
		{"fig14c", fig14GPU(cfg), max(64, n/4096)},
	} {
		fig := &Figure{Name: d.key,
			Title:  "JIT layout transformation (Voodoo on " + d.model.Name + "); x: 0=Sequential 1=Random4MB 2=Random128MB (cache-relative sizes)",
			XLabel: "workload", YLabel: "time [s]"}
		series := make([]Series, len(fig14VariantNames))
		for i, name := range fig14VariantNames {
			series[i] = Series{Name: name}
		}
		for _, w := range fig14Workloads {
			tableLen := fig14TableLen(cfg, w)
			st, err := fig14Storage(cfg, w, tableLen, n)
			if err != nil {
				return nil, err
			}
			progTableLen = tableLen
			for vi := range fig14VariantNames {
				prog := fig14Program(fig14Variant(vi), d.runLen)
				t, err := priced(prog, st, compile.Options{}, d.model)
				if err != nil {
					return nil, fmt.Errorf("%s %s %s: %w", d.key, fig14VariantNames[vi], w.name, err)
				}
				series[vi].Points = append(series[vi].Points, Point{X: w.x, T: t})
			}
		}
		fig.Series = series
		out[d.key] = fig
	}
	return out, nil
}

// fig14TableLen sizes the target columns relative to the lookup count: the
// small table's two columns together slightly exceed half the scaled L3,
// the large table's exceed it several times over.
func fig14TableLen(cfg Config, w fig14Workload) int {
	n := cfg.n()
	if w.big {
		return max(n, 64)
	}
	return max(n/4, 64)
}

// fig14CPU returns the single-thread CPU model with cache tiers scaled to
// the configuration (L3 sits between the small and the large working set).
func fig14CPU(cfg Config) *device.Model {
	m := device.CPU(1)
	l3 := int64(3 * cfg.n())
	m.Tiers = []device.Tier{
		{Size: max(l3/256, 512), Latency: m.Tiers[0].Latency},
		{Size: max(l3/32, 4096), Latency: m.Tiers[1].Latency},
		{Size: l3, Latency: m.Tiers[2].Latency},
		{Size: 1 << 62, Latency: m.Tiers[3].Latency},
	}
	return m
}

// fig14GPU scales the GPU's small L2 the same way (even the small table
// exceeds it — the paper's "lack of large per-core caches").
func fig14GPU(cfg Config) *device.Model {
	m := device.GPU()
	m.Tiers = []device.Tier{
		{Size: max(int64(cfg.n()/2), 512), Latency: m.Tiers[0].Latency},
		{Size: 1 << 62, Latency: m.Tiers[1].Latency},
	}
	return m
}

func fig14Storage(cfg Config, w fig14Workload, tableLen, n int) (interp.MemStorage, error) {
	var pos []int64
	if w.seq {
		pos = make([]int64, n)
		for i := range pos {
			pos[i] = int64(i % tableLen)
		}
	} else {
		pos = uniformInts(n, int64(tableLen), cfg.Seed+14)
	}
	return interp.MemStorage{
		"pos": vector.New(n).Set("p", vector.NewInt(pos)),
		"c1":  vector.New(tableLen).Set("v", vector.NewFloat(uniformFloats(tableLen, cfg.Seed+41))),
		"c2":  vector.New(tableLen).Set("v", vector.NewFloat(uniformFloats(tableLen, cfg.Seed+42))),
	}, nil
}

// Fig14Native regenerates Figure 14a: hand-written loops priced on the
// single-thread CPU model.
func Fig14Native(cfg Config) (*Figure, error) {
	n := cfg.n()
	model := fig14CPU(cfg)
	fig := &Figure{Name: "fig14a",
		Title:  "JIT layout transformation (implemented in C); x: 0=Sequential 1=Random4MB 2=Random128MB (cache-relative sizes)",
		XLabel: "workload", YLabel: "time [s]"}
	series := make([]Series, len(fig14VariantNames))
	for i, name := range fig14VariantNames {
		series[i] = Series{Name: name}
	}
	for _, w := range fig14Workloads {
		tableLen := fig14TableLen(cfg, w)
		var pos []int64
		if w.seq {
			pos = make([]int64, n)
			for i := range pos {
				pos[i] = int64(i % tableLen)
			}
		} else {
			pos = uniformInts(n, int64(tableLen), cfg.Seed+14)
		}
		c1 := uniformFloats(tableLen, cfg.Seed+41)
		c2 := uniformFloats(tableLen, cfg.Seed+42)
		runs := []func() (float64, *nativeStats){
			func() (float64, *nativeStats) { return nativeLayoutSingleLoop(pos, c1, c2) },
			func() (float64, *nativeStats) { return nativeLayoutSeparateLoops(pos, c1, c2) },
			func() (float64, *nativeStats) { return nativeLayoutTransform(pos, c1, c2) },
		}
		for vi, run := range runs {
			_, ns := run()
			series[vi].Points = append(series[vi].Points, Point{X: w.x, T: model.Time(ns.stats())})
		}
	}
	fig.Series = series
	return fig, nil
}
