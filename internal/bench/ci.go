package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
)

// CIConfig is the fixed configuration of the CI bench smoke. It is
// deliberately small — the smoke guards the cost-model outputs and the
// plan shapes, not absolute hardware speed, and the simulated times are
// deterministic at any size — and deliberately constant: a baseline is
// only comparable to a run of the same configuration.
var CIConfig = Config{N: 1 << 14, SF: 0.005, Seed: 42}

// CIReport is the artifact of one CI smoke run (BENCH_ci.json): the
// configuration it ran at and, per benchmark series, the median simulated
// time in seconds. Times come from the device cost models, so on a given
// source tree the report is bit-deterministic; a diff against the
// committed baseline means a code change moved a figure.
type CIReport struct {
	N       int                `json:"n"`
	SF      float64            `json:"sf"`
	Seed    int64              `json:"seed"`
	Medians map[string]float64 `json:"medians"`
}

// CISmoke runs the short benchmark subset: the selection study (Figure
// 1), TPC-H on the CPU model (Figure 13), selective aggregation (Figure
// 15), the FK join (Figure 16), and the design-choice ablations.
func CISmoke() (*CIReport, error) {
	cfg := CIConfig
	rep := &CIReport{N: cfg.N, SF: cfg.SF, Seed: cfg.Seed, Medians: map[string]float64{}}

	err := rep.measured("fig1", func() error {
		f1, err := Fig1(cfg)
		if err != nil {
			return err
		}
		rep.addFigure(f1)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("fig1: %w", err)
	}

	err = rep.measured("fig13", func() error {
		f13, err := Fig13(cfg)
		if err != nil {
			return err
		}
		for _, e := range f13.Engines {
			var ts []float64
			for _, r := range f13.Rows {
				if v, ok := r.Times[e]; ok {
					ts = append(ts, v/1000) // ms → s, like every other metric
				}
			}
			rep.Medians["fig13/"+e] = median(ts)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("fig13: %w", err)
	}

	err = rep.measured("fig15", func() error {
		f15, err := Fig15(cfg)
		if err != nil {
			return err
		}
		for _, key := range []string{"fig15b", "fig15c"} {
			rep.addFigure(f15[key])
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("fig15: %w", err)
	}

	err = rep.measured("fig16", func() error {
		f16, err := Fig16(cfg)
		if err != nil {
			return err
		}
		for _, key := range []string{"fig16b", "fig16c"} {
			rep.addFigure(f16[key])
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("fig16: %w", err)
	}

	err = rep.measured("ablations", func() error {
		as, err := Ablations(cfg)
		if err != nil {
			return err
		}
		for _, a := range as {
			rep.Medians["ablation/"+a.Name+"/on"] = a.OnTime
			rep.Medians["ablation/"+a.Name+"/off"] = a.OffTime
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ablations: %w", err)
	}
	return rep, nil
}

// measured runs one figure regeneration and records -benchmem-style
// counters under "<name>/allocs_per_op" and "<name>/bytes_per_op", where
// one op is the full regeneration of that figure. The counters live in
// the same medians block as the simulated times so they persist into
// BENCH_*.json, but CompareCI only warns on them (see CompareCIAllocs):
// allocation counts wobble with GC scheduling in a way simulated times
// never do.
func (r *CIReport) measured(name string, fn func() error) error {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := fn(); err != nil {
		return err
	}
	runtime.ReadMemStats(&after)
	r.Medians[name+"/allocs_per_op"] = float64(after.Mallocs - before.Mallocs)
	r.Medians[name+"/bytes_per_op"] = float64(after.TotalAlloc - before.TotalAlloc)
	return nil
}

// isAllocKey reports whether a medians key is a -benchmem counter rather
// than a simulated time.
func isAllocKey(name string) bool {
	return strings.HasSuffix(name, "/allocs_per_op") || strings.HasSuffix(name, "/bytes_per_op")
}

func (r *CIReport) addFigure(f *Figure) {
	for _, s := range f.Series {
		ts := make([]float64, len(s.Points))
		for i, p := range s.Points {
			ts[i] = p.T
		}
		r.Medians[f.Name+"/"+s.Name] = median(ts)
	}
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// CompareCI checks a smoke run against the committed baseline and returns
// one violation string per benchmark whose median regressed by more than
// tol (fractional, e.g. 0.25). Improvements never fail — they show up
// when the baseline is refreshed. Sub-microsecond medians are skipped:
// at that scale a single cache-line crossing is a large fraction.
func CompareCI(cur, base *CIReport, tol float64) []string {
	var out []string
	if cur.N != base.N || cur.SF != base.SF || cur.Seed != base.Seed {
		return []string{fmt.Sprintf(
			"configuration mismatch: run N=%d SF=%g seed=%d, baseline N=%d SF=%g seed=%d — regenerate the baseline",
			cur.N, cur.SF, cur.Seed, base.N, base.SF, base.Seed)}
	}
	names := make([]string, 0, len(base.Medians))
	for name := range base.Medians {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if isAllocKey(name) {
			continue // soft-gated by CompareCIAllocs
		}
		if strings.HasPrefix(name, "scaling/") {
			continue // real wall clock, soft-gated by ScalingCheck
		}
		if strings.HasPrefix(name, "specialize/") {
			continue // real wall clock, soft-gated by SpecializeCheck
		}
		bv := base.Medians[name]
		cv, ok := cur.Medians[name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: present in baseline, missing from this run", name))
			continue
		}
		if bv < 1e-6 {
			continue
		}
		if cv > bv*(1+tol) {
			out = append(out, fmt.Sprintf("%s: %.6fs → %.6fs (%+.0f%%, tolerance %.0f%%)",
				name, bv, cv, 100*(cv-bv)/bv, 100*tol))
		}
	}
	return out
}

// CompareCIAllocs checks the -benchmem counters against the baseline and
// returns one warning per counter that grew beyond tol. Warnings, never
// failures: allocation counts move with GC scheduling, map growth timing
// and legitimate pooling changes, so the gate is advisory until a human
// regenerates the baseline. A baseline with no alloc counters at all (one
// predating pooled benchmarks) yields a single pointer to regenerate it.
func CompareCIAllocs(cur, base *CIReport, tol float64) []string {
	var out []string
	names := make([]string, 0, len(base.Medians))
	hasAllocBaseline := false
	for name := range base.Medians {
		if isAllocKey(name) {
			hasAllocBaseline = true
			names = append(names, name)
		}
	}
	if !hasAllocBaseline {
		return []string{"baseline has no allocs/op counters — run `voodoo-bench ci -write-baseline` and commit it to start gating allocations"}
	}
	sort.Strings(names)
	for _, name := range names {
		bv := base.Medians[name]
		cv, ok := cur.Medians[name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: present in baseline, missing from this run", name))
			continue
		}
		if bv < 1 {
			continue
		}
		if cv > bv*(1+tol) {
			out = append(out, fmt.Sprintf("%s: %.0f → %.0f (%+.0f%%, tolerance %.0f%%)",
				name, bv, cv, 100*(cv-bv)/bv, 100*tol))
		}
	}
	return out
}
