package bench

import (
	"fmt"
	"sort"
)

// CIConfig is the fixed configuration of the CI bench smoke. It is
// deliberately small — the smoke guards the cost-model outputs and the
// plan shapes, not absolute hardware speed, and the simulated times are
// deterministic at any size — and deliberately constant: a baseline is
// only comparable to a run of the same configuration.
var CIConfig = Config{N: 1 << 14, SF: 0.005, Seed: 42}

// CIReport is the artifact of one CI smoke run (BENCH_ci.json): the
// configuration it ran at and, per benchmark series, the median simulated
// time in seconds. Times come from the device cost models, so on a given
// source tree the report is bit-deterministic; a diff against the
// committed baseline means a code change moved a figure.
type CIReport struct {
	N       int                `json:"n"`
	SF      float64            `json:"sf"`
	Seed    int64              `json:"seed"`
	Medians map[string]float64 `json:"medians"`
}

// CISmoke runs the short benchmark subset: the selection study (Figure
// 1), TPC-H on the CPU model (Figure 13), selective aggregation (Figure
// 15), the FK join (Figure 16), and the design-choice ablations.
func CISmoke() (*CIReport, error) {
	cfg := CIConfig
	rep := &CIReport{N: cfg.N, SF: cfg.SF, Seed: cfg.Seed, Medians: map[string]float64{}}

	f1, err := Fig1(cfg)
	if err != nil {
		return nil, fmt.Errorf("fig1: %w", err)
	}
	rep.addFigure(f1)

	f13, err := Fig13(cfg)
	if err != nil {
		return nil, fmt.Errorf("fig13: %w", err)
	}
	for _, e := range f13.Engines {
		var ts []float64
		for _, r := range f13.Rows {
			if v, ok := r.Times[e]; ok {
				ts = append(ts, v/1000) // ms → s, like every other metric
			}
		}
		rep.Medians["fig13/"+e] = median(ts)
	}

	f15, err := Fig15(cfg)
	if err != nil {
		return nil, fmt.Errorf("fig15: %w", err)
	}
	f16, err := Fig16(cfg)
	if err != nil {
		return nil, fmt.Errorf("fig16: %w", err)
	}
	for _, key := range []string{"fig15b", "fig15c"} {
		rep.addFigure(f15[key])
	}
	for _, key := range []string{"fig16b", "fig16c"} {
		rep.addFigure(f16[key])
	}

	as, err := Ablations(cfg)
	if err != nil {
		return nil, fmt.Errorf("ablations: %w", err)
	}
	for _, a := range as {
		rep.Medians["ablation/"+a.Name+"/on"] = a.OnTime
		rep.Medians["ablation/"+a.Name+"/off"] = a.OffTime
	}
	return rep, nil
}

func (r *CIReport) addFigure(f *Figure) {
	for _, s := range f.Series {
		ts := make([]float64, len(s.Points))
		for i, p := range s.Points {
			ts[i] = p.T
		}
		r.Medians[f.Name+"/"+s.Name] = median(ts)
	}
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// CompareCI checks a smoke run against the committed baseline and returns
// one violation string per benchmark whose median regressed by more than
// tol (fractional, e.g. 0.25). Improvements never fail — they show up
// when the baseline is refreshed. Sub-microsecond medians are skipped:
// at that scale a single cache-line crossing is a large fraction.
func CompareCI(cur, base *CIReport, tol float64) []string {
	var out []string
	if cur.N != base.N || cur.SF != base.SF || cur.Seed != base.Seed {
		return []string{fmt.Sprintf(
			"configuration mismatch: run N=%d SF=%g seed=%d, baseline N=%d SF=%g seed=%d — regenerate the baseline",
			cur.N, cur.SF, cur.Seed, base.N, base.SF, base.Seed)}
	}
	names := make([]string, 0, len(base.Medians))
	for name := range base.Medians {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bv := base.Medians[name]
		cv, ok := cur.Medians[name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: present in baseline, missing from this run", name))
			continue
		}
		if bv < 1e-6 {
			continue
		}
		if cv > bv*(1+tol) {
			out = append(out, fmt.Sprintf("%s: %.6fs → %.6fs (%+.0f%%, tolerance %.0f%%)",
				name, bv, cv, 100*(cv-bv)/bv, 100*tol))
		}
	}
	return out
}
