// Package bench regenerates every figure of the paper's evaluation (§5):
// the selection study (Figure 1), TPC-H on GPU and CPU against the Ocelot
// and HyPer baselines (Figures 12 and 13), just-in-time layout
// transformation (Figure 14), selective aggregation (Figure 15) and
// branch-free foreign-key joins (Figure 16) — plus ablations of the design
// choices DESIGN.md calls out.
//
// Workloads execute natively (results are verified), and reported times
// come from the device cost models (package device); see DESIGN.md §2 for
// why this substitution preserves each figure's shape.
package bench

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"voodoo/internal/compile"
	"voodoo/internal/core"
	"voodoo/internal/device"
	"voodoo/internal/exec"
	"voodoo/internal/interp"
	"voodoo/internal/vector"
)

// Config scales the experiments.
type Config struct {
	// N is the element count for the microbenchmarks (default 1<<22).
	N int
	// SF is the TPC-H scale factor (default 0.05).
	SF float64
	// Seed drives all synthetic data.
	Seed int64
}

func (c Config) n() int {
	if c.N > 0 {
		return c.N
	}
	return 1 << 22
}

func (c Config) sf() float64 {
	if c.SF > 0 {
		return c.SF
	}
	return 0.05
}

// Point is one measurement: X is the swept parameter (often selectivity),
// T the simulated time in seconds.
type Point struct {
	X float64
	T float64
}

// Series is one line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is a regenerated evaluation figure.
type Figure struct {
	Name   string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Render prints the figure as an aligned text table (x in rows, one column
// per series).
func (f *Figure) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", f.Name, f.Title)
	fmt.Fprintf(&sb, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "%-22s", s.Name)
	}
	sb.WriteString("\n")
	if len(f.Series) == 0 {
		return sb.String()
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(&sb, "%-12.4g", f.Series[0].Points[i].X)
		for _, s := range f.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&sb, "%-22.6f", s.Points[i].T)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// SeriesByName returns the named series.
func (f *Figure) SeriesByName(name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

// At returns the measurement closest to x.
func (s *Series) At(x float64) float64 {
	best, bd := 0.0, 1e300
	for _, p := range s.Points {
		d := p.X - x
		if d < 0 {
			d = -d
		}
		if d < bd {
			bd, best = d, p.T
		}
	}
	return best
}

// defaultSelectivities is the sweep used by Figures 1 and 15 (fractions).
var defaultSelectivities = []float64{0.0001, 0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}

// fig16Selectivities is the linear sweep of Figure 16 (percent axis).
var fig16Selectivities = []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// uniformFloats returns n uniform values in [0, 1).
func uniformFloats(n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()
	}
	return out
}

// uniformInts returns n uniform values in [0, m).
func uniformInts(n int, m int64, seed int64) []int64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		out[i] = r.Int63n(m)
	}
	return out
}

// runProgram compiles and executes a program with stats collection and
// returns the stats plus the root values (for verification).
func runProgram(p *core.Program, st interp.Storage, opt compile.Options) (*exec.Stats, map[core.Ref]*vector.Vector, error) {
	plan, err := compile.Compile(p, st, opt)
	if err != nil {
		return nil, nil, err
	}
	plan.CollectStats = true
	res, err := plan.Run()
	if err != nil {
		return nil, nil, err
	}
	return &res.Stats, res.Values, nil
}

// benchPool recycles kernel buffers across the thousands of measurement
// runs a figure regeneration performs. Only priced draws on it: its
// values are never inspected, so the working memory can be released the
// moment the stats are extracted.
var benchPool = vector.NewPool(0)

// priced runs a program and prices it on a device model.
func priced(p *core.Program, st interp.Storage, opt compile.Options, m *device.Model) (float64, error) {
	plan, err := compile.Compile(p, st, opt)
	if err != nil {
		return 0, err
	}
	res, err := plan.RunWith(context.Background(), compile.RunOpts{Pool: benchPool, CollectStats: true})
	if err != nil {
		return 0, err
	}
	t := m.Time(&res.Stats)
	res.Release()
	return t, nil
}
