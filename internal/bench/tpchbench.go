package bench

import (
	"fmt"
	"strings"
	"sync"

	"voodoo/internal/baseline/hyper"
	"voodoo/internal/baseline/ocelot"
	"voodoo/internal/device"
	"voodoo/internal/rel"
	"voodoo/internal/storage"
	"voodoo/internal/tpch"
)

// TPCHRow is one query's times across engines (milliseconds), as in
// Figures 12 and 13.
type TPCHRow struct {
	Query int
	Times map[string]float64 // engine name → ms
}

// TPCHTable is a regenerated TPC-H comparison.
type TPCHTable struct {
	Name    string
	Title   string
	Engines []string
	Rows    []TPCHRow
}

// Render prints the table.
func (t *TPCHTable) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.Name, t.Title)
	fmt.Fprintf(&sb, "%-6s", "query")
	for _, e := range t.Engines {
		fmt.Fprintf(&sb, "%-12s", e)
	}
	sb.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "q%-5d", r.Query)
		for _, e := range t.Engines {
			if v, ok := r.Times[e]; ok {
				fmt.Fprintf(&sb, "%-12.2f", v)
			} else {
				fmt.Fprintf(&sb, "%-12s", "-")
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Time returns one cell of the table.
func (t *TPCHTable) Time(query int, engine string) float64 {
	for _, r := range t.Rows {
		if r.Query == query {
			return r.Times[engine]
		}
	}
	return 0
}

var (
	tpchCatalogs   = map[string]*storage.Catalog{}
	tpchCatalogsMu sync.Mutex
)

// tpchCatalog caches generated catalogs per configuration (generation
// dominates small benchmark runs otherwise).
func tpchCatalog(cfg Config) *storage.Catalog {
	key := fmt.Sprintf("%g/%d", cfg.sf(), cfg.Seed)
	tpchCatalogsMu.Lock()
	defer tpchCatalogsMu.Unlock()
	if c, ok := tpchCatalogs[key]; ok {
		return c
	}
	c := tpch.Generate(tpch.Config{SF: cfg.sf(), Seed: cfg.Seed})
	tpchCatalogs[key] = c
	return c
}

// Fig13 regenerates Figure 13: TPC-H on the CPU — HyPer vs Voodoo vs
// Ocelot, all priced on the 8-thread CPU model.
func Fig13(cfg Config) (*TPCHTable, error) {
	cat := tpchCatalog(cfg)
	cpu := device.CPU(8)
	table := &TPCHTable{Name: "fig13",
		Title:   fmt.Sprintf("TPC-H on CPU (SF %g, times in ms, %s model)", cfg.sf(), cpu.Name),
		Engines: []string{"HyPeR", "Voodoo", "Ocelot"}}
	for _, num := range tpch.QueryNumbers {
		qf, err := tpch.Query(num)
		if err != nil {
			return nil, err
		}
		row := TPCHRow{Query: num, Times: map[string]float64{}}

		_, hstats, err := qf(&hyper.Engine{Cat: cat})
		if err != nil {
			return nil, fmt.Errorf("q%d hyper: %w", num, err)
		}
		row.Times["HyPeR"] = cpu.Time(hstats) * 1000

		_, vstats, err := qf(&rel.Engine{Cat: cat, Backend: rel.Compiled, CollectStats: true})
		if err != nil {
			return nil, fmt.Errorf("q%d voodoo: %w", num, err)
		}
		row.Times["Voodoo"] = cpu.Time(vstats) * 1000

		_, ostats, err := qf(ocelot.New(cat))
		if err != nil {
			return nil, fmt.Errorf("q%d ocelot: %w", num, err)
		}
		row.Times["Ocelot"] = cpu.Time(ostats) * 1000

		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

// Fig12 regenerates Figure 12: TPC-H on the GPU — Voodoo vs Ocelot on the
// queries Ocelot supports, priced on the GPU model.
func Fig12(cfg Config) (*TPCHTable, error) {
	cat := tpchCatalog(cfg)
	gpu := device.GPU()
	table := &TPCHTable{Name: "fig12",
		Title:   fmt.Sprintf("TPC-H on GPU (SF %g, times in ms, %s model)", cfg.sf(), gpu.Name),
		Engines: []string{"Voodoo", "Ocelot"}}
	for _, num := range tpch.GPUQueryNumbers {
		qf, err := tpch.Query(num)
		if err != nil {
			return nil, err
		}
		row := TPCHRow{Query: num, Times: map[string]float64{}}

		_, vstats, err := qf(&rel.Engine{Cat: cat, Backend: rel.Compiled, CollectStats: true})
		if err != nil {
			return nil, fmt.Errorf("q%d voodoo: %w", num, err)
		}
		row.Times["Voodoo"] = gpu.Time(vstats) * 1000

		_, ostats, err := qf(ocelot.New(cat))
		if err != nil {
			return nil, fmt.Errorf("q%d ocelot: %w", num, err)
		}
		row.Times["Ocelot"] = gpu.Time(ostats) * 1000

		table.Rows = append(table.Rows, row)
	}
	return table, nil
}
