package bench

import (
	"fmt"

	"voodoo/internal/compile"
	"voodoo/internal/core"
	"voodoo/internal/device"
	"voodoo/internal/interp"
	"voodoo/internal/vector"
)

// selectionCopyProgram is Figure 1's workload: copy the values below the
// threshold into the output. The control vector's run length sets the
// degree of parallelism; the Predication option picks the branching or the
// cursor-arithmetic implementation.
func selectionCopyProgram(threshold float64, runLen int) *core.Program {
	b := core.NewBuilder()
	in := b.Load("input")
	thresh := b.ConstantF(threshold)
	pred := b.Less(in, "", thresh, "")
	ids := b.Range(in)
	fold := b.Project("fold", b.Divide(ids, b.Constant(int64(runLen))), "")
	pf := b.Zip("p", pred, "", "fold", fold, "fold")
	sel := b.FoldSelect(pf, "fold", "p")
	b.Gather(in, sel, "")
	return b.Program()
}

// Fig1 regenerates Figure 1: branching vs branch-free selection across
// selectivities on one CPU thread, all CPU threads, and the GPU.
func Fig1(cfg Config) (*Figure, error) {
	n := cfg.n()
	data := uniformFloats(n, cfg.Seed+1)
	st := interp.MemStorage{"input": vector.New(n).Set("val", vector.NewFloat(data))}

	devs := []struct {
		name   string
		model  *device.Model
		runLen int
	}{
		{"Single Thread", device.CPU(1), n},
		{"Multithread", device.CPU(8), (n + 7) / 8},
		{"GPU", device.GPU(), max(64, n/4096)},
	}
	fig := &Figure{Name: "fig1", Title: "Branching vs branch-free selection",
		XLabel: "selectivity", YLabel: "time [s]"}
	for _, d := range devs {
		for _, pred := range []bool{true, false} {
			label := d.name + " Branch"
			if !pred {
				label = d.name + " No Branch"
			}
			s := Series{Name: label}
			for _, sel := range defaultSelectivities {
				prog := selectionCopyProgram(sel, d.runLen)
				t, err := priced(prog, st, compile.Options{Predication: !pred}, d.model)
				if err != nil {
					return nil, fmt.Errorf("fig1 %s sel=%g: %w", label, sel, err)
				}
				s.Points = append(s.Points, Point{X: sel, T: t})
			}
			fig.Series = append(fig.Series, s)
		}
	}
	return fig, nil
}
