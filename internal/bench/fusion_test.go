package bench

import (
	"context"
	"testing"

	"voodoo/internal/compile"
	"voodoo/internal/core"
	"voodoo/internal/interp"
	"voodoo/internal/trace"
	"voodoo/internal/vector"
)

// fusionN is the fixed input size for the fusion-invariant tests. The
// pinned byte counts below are derived from it: buffers are sized by the
// plan shape, not the data, so the numbers are exact.
const fusionN = 4096

func fusionStorage(tb testing.TB) interp.MemStorage {
	tb.Helper()
	return interp.MemStorage{"facts": vector.New(fusionN).
		Set("v1", vector.NewFloat(uniformFloats(fusionN, 61))).
		Set("v2", vector.NewFloat(uniformFloats(fusionN, 62)))}
}

func tracedRun(t *testing.T, prog *core.Program, st interp.Storage, opt compile.Options) *trace.Trace {
	t.Helper()
	plan, err := compile.Compile(prog, st, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	_, tr, err := plan.RunTracedContext(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return tr
}

// pin is the set of trace totals a fusion test locks down.
type pin struct {
	fragments int
	bulkSteps int
	matBytes  int64
	foldRuns  int64
	scatters  int64
}

func checkPin(t *testing.T, name string, tr *trace.Trace, want pin) {
	t.Helper()
	if tr.Fragments != want.fragments {
		t.Errorf("%s: %d fragments, want %d — a fusion boundary moved", name, tr.Fragments, want.fragments)
	}
	if tr.BulkSteps != want.bulkSteps {
		t.Errorf("%s: %d bulk steps, want %d", name, tr.BulkSteps, want.bulkSteps)
	}
	if tr.MaterializedBytes != want.matBytes {
		t.Errorf("%s: materialized %d bytes, want %d — an intermediate (de)materialized", name, tr.MaterializedBytes, want.matBytes)
	}
	if tr.FoldRuns != want.foldRuns {
		t.Errorf("%s: %d fold runs, want %d", name, tr.FoldRuns, want.foldRuns)
	}
	if tr.ScatterItems != want.scatters {
		t.Errorf("%s: %d scatter items, want %d", name, tr.ScatterItems, want.scatters)
	}
}

// TestFig15FusionInvariants pins the plan shape of the three Figure 15
// selection strategies at n=4096, runLen=64. The paper's claim is
// structural — branch-free differs from branching by exactly one
// materialized full-size position buffer, and the vectorized variant
// fuses the whole pipeline into a single fragment — so the trace totals
// are exact constants:
//
//   - branching: 2 fragments; 4096·8 B padded select positions +
//     64·(8+1) B fold partials + (8+1) B global sum = 33353 B.
//   - branch-free: 3 fragments; the same plus the 4096·(8+1) B
//     materialized position buffer = 70217 B.
//   - vectorized: 1 fragment; positions stay run-local, only the padded
//     select buffer and the global sum reach memory = 32777 B.
//
// A change to fusion, empty-slot suppression, or buffer layout moves
// these numbers and must update them consciously.
func TestFig15FusionInvariants(t *testing.T) {
	st := fusionStorage(t)
	cases := []struct {
		name    string
		variant fig15Variant
		opt     compile.Options
		want    pin
	}{
		{"branching", variantBranching, compile.Options{},
			pin{fragments: 2, matBytes: 33353, foldRuns: 64}},
		{"branch-free", variantBranchFree, compile.Options{Predication: true},
			pin{fragments: 3, matBytes: 70217, foldRuns: 65}},
		{"vectorized", variantVectorized, compile.Options{Predication: true},
			pin{fragments: 1, matBytes: 32777, foldRuns: 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := tracedRun(t, fig15Program(0.5, 64, c.variant), st, c.opt)
			checkPin(t, c.name, tr, c.want)

			// Buffer sizes are plan-shaped, not data-shaped: a different
			// selectivity must materialize exactly the same bytes.
			tr2 := tracedRun(t, fig15Program(0.1, 64, c.variant), st, c.opt)
			if tr2.MaterializedBytes != tr.MaterializedBytes {
				t.Errorf("materialized bytes depend on selectivity: %d at 0.5, %d at 0.1",
					tr.MaterializedBytes, tr2.MaterializedBytes)
			}
		})
	}

	// The paper's "single additional operator" claim, as bytes: the only
	// difference between branch-free and branching is the full-size
	// position buffer (8 data + 1 validity byte per slot).
	br := tracedRun(t, fig15Program(0.5, 64, variantBranching), st, compile.Options{})
	bf := tracedRun(t, fig15Program(0.5, 64, variantBranchFree), st, compile.Options{Predication: true})
	if delta := bf.MaterializedBytes - br.MaterializedBytes; delta != int64(fusionN*9) {
		t.Errorf("branch-free materializes %d extra bytes over branching, want exactly %d (the position buffer)",
			delta, fusionN*9)
	}
}

// TestFig16FusionInvariants pins the plan shape of the three Figure 16
// FK-join strategies at n=4096, runLen=64. All three fuse to two
// fragments with identical seam traffic — the strategies differ in
// instruction mix (branching vs masked lookups), not in materialization,
// which is exactly why Figure 16 is a compute experiment.
func TestFig16FusionInvariants(t *testing.T) {
	m := 2 * fusionN
	st := interp.MemStorage{
		"fact": vector.New(fusionN).
			Set("fk", vector.NewInt(uniformInts(fusionN, int64(m), 26))).
			Set("v", vector.NewFloat(uniformFloats(fusionN, 27))),
		"target": vector.New(m).Set("tv", vector.NewFloat(uniformFloats(m, 28))),
	}
	cases := []struct {
		name    string
		variant fig16Variant
		want    pin
	}{
		{"branching", fkBranching, pin{fragments: 2, matBytes: 33353, foldRuns: 64}},
		{"predicated-aggregation", fkPredicatedAggregation, pin{fragments: 2, matBytes: 33353, foldRuns: 65}},
		{"predicated-lookups", fkPredicatedLookups, pin{fragments: 2, matBytes: 33353, foldRuns: 65}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := tracedRun(t, fig16Program(0.5, 64, c.variant), st, compile.Options{})
			checkPin(t, c.name, tr, c.want)
		})
	}
}

// TestVirtualScatterInvariants pins the Figure 4 lane-aggregation plan
// (the virtual-scatter ablation): compiled, the data-controlled scatter
// dissolves into index arithmetic — zero elements moved, one step flagged
// virtual, 3 fragments, ~33 KB of seam traffic. Forced bulk, the same
// program moves all 4096 elements through a materialized scatter and
// pushes 458 KB through memory. The ratio is the mechanism's value; the
// exact numbers keep it honest.
func TestVirtualScatterInvariants(t *testing.T) {
	st := fusionStorage(t)
	prog := func() *core.Program {
		b := core.NewBuilder()
		input := b.Load("facts")
		ids := b.Range(input)
		lanes := b.Project("partition", b.Modulo(ids, b.Constant(8)), "")
		withPart := b.Zip("val", input, "v2", "partition", lanes, "partition")
		positions := b.Partition("pos", lanes, "partition", b.RangeN(0, 8, 1), "")
		posVec := b.Upsert(withPart, "pos", positions, "pos")
		scattered := b.Scatter(withPart, input, "", posVec, "pos")
		p := b.FoldSum(scattered, "partition", "val")
		b.GlobalSum(p, "")
		return b.Program()
	}

	fused := tracedRun(t, prog(), st, compile.Options{})
	checkPin(t, "fused", fused, pin{fragments: 3, matBytes: 32913, foldRuns: 9, scatters: 0})
	virtual := 0
	for _, s := range fused.Steps {
		if s.Virtual {
			virtual++
		}
	}
	if virtual != 1 {
		t.Errorf("fused plan has %d virtual-scatter steps, want 1", virtual)
	}

	bulk := tracedRun(t, prog(), st, compile.Options{ForceBulk: true})
	checkPin(t, "bulk", bulk, pin{bulkSteps: 11, matBytes: 458824, foldRuns: 2, scatters: fusionN})
}

// TestEmptySlotSuppressionInvariants pins the hierarchical-sum ablation:
// compiled, fold outputs stay compact (one slot per run) and the whole
// query materializes ~33 KB; forced bulk pads every fold output to full
// size and materializes 262 KB — the difference is exactly the
// suppressed ε padding.
func TestEmptySlotSuppressionInvariants(t *testing.T) {
	st := fusionStorage(t)
	prog := func() *core.Program {
		b := core.NewBuilder()
		input := b.Load("facts")
		ids := b.Range(input)
		fold := b.Project("fold", b.Divide(ids, b.Constant(1024)), "")
		withFold := b.Zip("val", input, "v2", "fold", fold, "fold")
		p := b.FoldSum(withFold, "fold", "val")
		b.GlobalSum(p, "")
		return b.Program()
	}

	fused := tracedRun(t, prog(), st, compile.Options{})
	checkPin(t, "fused", fused, pin{fragments: 2, matBytes: 32813, foldRuns: 5})

	bulk := tracedRun(t, prog(), st, compile.Options{ForceBulk: true})
	checkPin(t, "bulk", bulk, pin{bulkSteps: 7, matBytes: 262152, foldRuns: 2})

	if bulk.MaterializedBytes <= 4*fused.MaterializedBytes {
		t.Errorf("bulk traffic %d B is not ≫ fused %d B — suppression stopped paying off",
			bulk.MaterializedBytes, fused.MaterializedBytes)
	}
}
