package bench

import (
	"fmt"
	"math"
	"time"

	"voodoo/internal/exec"
	"voodoo/internal/kernel"
	"voodoo/internal/vector"
)

// specializeWarnAt is the minimum interpreter / specialized wall-clock
// speedup the dispatch check expects on the canonical selection fragment
// before warning. The specialization layer exists to eliminate per-element
// dispatch, so anything under 1.5x means the batch compiler regressed into
// re-dispatching per element.
const specializeWarnAt = 1.5

// specializeSelectKernel builds the canonical branching selection in the
// exact shape the fused select matcher recognizes: load → compare-against-
// constant → guard → store, sequential, one iteration per work item.
func specializeSelectKernel(n int) *kernel.Kernel {
	k := &kernel.Kernel{}
	in := k.AddBuf(kernel.BufDecl{Name: "in", Kind: vector.Int, Size: n, Input: true})
	out := k.AddBuf(kernel.BufDecl{Name: "out", Kind: vector.Int, Size: n})
	rc, r0, r1 := kernel.FirstFree, kernel.FirstFree+1, kernel.FirstFree+2
	k.Frags = append(k.Frags, &kernel.Fragment{
		Name: "spec_select", Extent: n, Intent: 1, N: n,
		Loops: []kernel.Loop{{Body: []kernel.Instr{
			{Op: kernel.IConstI, Dst: rc, Imm: int64(n / 2)},
			{Op: kernel.ILoad, Dst: r0, A: kernel.RegIdx, Buf: in, Seq: true},
			{Op: kernel.IBin, BOp: kernel.BGt, Dst: r1, A: r0, B: rc},
			{Op: kernel.IGuard, A: r1},
			{Op: kernel.IStore, A: kernel.RegIdx, B: r0, Buf: out, Seq: true},
		}}},
	})
	return k
}

// specializeFoldKernel builds the canonical global FoldSum in the shape
// the fused fold matcher recognizes: Pre seeds the accumulator, the
// intent-bounded loop accumulates in[idx], Post stores at gid.
func specializeFoldKernel(n int) *kernel.Kernel {
	k := &kernel.Kernel{}
	in := k.AddBuf(kernel.BufDecl{Name: "in", Kind: vector.Int, Size: n, Input: true})
	out := k.AddBuf(kernel.BufDecl{Name: "out", Kind: vector.Int, Size: 1})
	acc, v := kernel.FirstFree, kernel.FirstFree+1
	k.Frags = append(k.Frags, &kernel.Fragment{
		Name: "spec_fold", Extent: 1, Intent: n, N: n,
		Pre: []kernel.Instr{{Op: kernel.IConstI, Dst: acc, Imm: 0}},
		Loops: []kernel.Loop{{Body: []kernel.Instr{
			{Op: kernel.ILoad, Dst: v, A: kernel.RegIdx, Buf: in, Seq: true},
			{Op: kernel.IBin, BOp: kernel.BAdd, Dst: acc, A: acc, B: v},
		}}},
		Post: []kernel.Instr{{Op: kernel.IStore, A: kernel.RegGID, B: acc, Buf: out, Seq: true}},
	})
	return k
}

// specializeMeasure runs the kernel single-worker under the given
// specialization mode and returns the best-of-3 wall time in seconds.
func specializeMeasure(k *kernel.Kernel, vals []int64, mode exec.SpecMode) (float64, error) {
	best := math.Inf(1)
	for rep := 0; rep < 3; rep++ {
		env := exec.NewEnv(k)
		if err := env.Bind(k, "in", &exec.Buffer{Kind: vector.Int, I: vals}); err != nil {
			return 0, err
		}
		start := time.Now()
		if err := exec.RunPar(k, env, exec.Par{Workers: 1, Spec: mode}, nil); err != nil {
			return 0, err
		}
		if d := time.Since(start).Seconds(); d < best {
			best = d
		}
	}
	return best, nil
}

// SpecializeCheck measures the dispatch overhead the specialization layer
// removes: the canonical selection and fold fragments run single-worker
// through the per-element interpreter, the batch primitives, and the fused
// fast path. The measured times land in rep.Medians under "specialize/"
// keys (skipped by CompareCI — real wall clock, not the deterministic
// simulated medians) and the returned warnings are advisory, exactly like
// ScalingCheck: a specialized selection that is not at least 1.5x faster
// than the interpreter means the batch compiler lost its batching.
func SpecializeCheck(rep *CIReport) []string {
	const n = 1 << 21
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	type row struct {
		name string
		k    *kernel.Kernel
	}
	var warns []string
	for _, r := range []row{
		{"select", specializeSelectKernel(n)},
		{"fold", specializeFoldKernel(n)},
	} {
		interp, err := specializeMeasure(r.k, vals, exec.SpecializeOff)
		if err != nil {
			return append(warns, fmt.Sprintf("specialize check failed: %v", err))
		}
		batch, err := specializeMeasure(r.k, vals, exec.SpecializeBatchOnly)
		if err != nil {
			return append(warns, fmt.Sprintf("specialize check failed: %v", err))
		}
		fused, err := specializeMeasure(r.k, vals, exec.SpecializeAuto)
		if err != nil {
			return append(warns, fmt.Sprintf("specialize check failed: %v", err))
		}
		rep.Medians["specialize/"+r.name+"_interp"] = interp
		rep.Medians["specialize/"+r.name+"_batch"] = batch
		rep.Medians["specialize/"+r.name+"_fused"] = fused
		rep.Medians["specialize/"+r.name+"_speedup"] = interp / fused
		// The fold fragment has no batch form (its accumulator carries
		// across iterations), so BatchOnly falls back to the interpreter
		// there; only the selection gates the batch path.
		if r.name == "select" && interp/batch < specializeWarnAt {
			warns = append(warns, fmt.Sprintf(
				"batch specialization %.2fx on %s (interp %.4fs vs batch %.4fs), want >= %.1fx — the batch compiler may be re-dispatching per element",
				interp/batch, r.name, interp, batch, specializeWarnAt))
		}
		if interp/fused < specializeWarnAt {
			warns = append(warns, fmt.Sprintf(
				"fused specialization %.2fx on %s (interp %.4fs vs fused %.4fs), want >= %.1fx — the fused fast path lost its fusion",
				interp/fused, r.name, interp, fused, specializeWarnAt))
		}
	}
	return warns
}
