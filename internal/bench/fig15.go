package bench

import (
	"fmt"

	"voodoo/internal/compile"
	"voodoo/internal/core"
	"voodoo/internal/device"
	"voodoo/internal/interp"
	"voodoo/internal/vector"
)

// fig15Variant identifies the three selection strategies of Figure 15.
type fig15Variant uint8

const (
	variantBranching fig15Variant = iota
	variantBranchFree
	variantVectorized
)

// vectorChunk is the cache-sized chunk of the vectorized variant (32 KiB of
// positions — L1/L2 resident on the CPU, beyond the fast scratch size on
// the GPU, which is the paper's porting failure).
const vectorChunk = 4096

// fig15Program builds "select sum(v2) from facts where v1 between 0 and
// $sel" in the given variant. The only structural difference between
// branch-free and vectorized is where the intermediate position list lives
// — exactly the paper's "single additional operator" claim: branch-free
// materializes it (full-size buffer), vectorized keeps it run-local with a
// cache-sized control vector.
func fig15Program(sel float64, runLen int, v fig15Variant) *core.Program {
	b := core.NewBuilder()
	in := b.Load("facts")
	pred := b.And(
		b.GreaterEqual(b.Project("v", in, "v1"), "", b.ConstantF(0), ""),
		b.GreaterEqual(b.ConstantF(sel), "", b.Project("v", in, "v1"), ""),
	)
	if v == variantVectorized {
		runLen = vectorChunk
	}
	ids := b.Range(in)
	fold := b.Project("fold", b.Divide(ids, b.Constant(int64(runLen))), "")
	pf := b.Zip("p", pred, "", "fold", fold, "fold")
	selPos := b.FoldSelect(pf, "fold", "p")
	if v == variantBranchFree {
		// Materialize the full-size position buffer, chunked by the same
		// control vector, then aggregate the gathered values
		// hierarchically under the same parallelism.
		selPos = b.Materialize(selPos, pf, "fold")
		g := b.Gather(b.Project("v2", in, "v2"), selPos, "")
		gz := b.Zip("v2", g, "", "fold", fold, "fold")
		p := b.FoldSum(gz, "fold", "v2")
		b.GlobalSum(p, "")
		return b.Program()
	}
	g := b.Gather(b.Project("v2", in, "v2"), selPos, "")
	b.FoldSum(g, "", "")
	return b.Program()
}

// Fig15 regenerates Figure 15 (b and c): the three selection strategies on
// the Voodoo backend, priced for CPU and GPU. The companion Fig15Native
// produces sub-figure (a).
func Fig15(cfg Config) (map[string]*Figure, error) {
	n := cfg.n()
	st := interp.MemStorage{"facts": vector.New(n).
		Set("v1", vector.NewFloat(uniformFloats(n, cfg.Seed+15))).
		Set("v2", vector.NewFloat(uniformFloats(n, cfg.Seed+16)))}

	out := map[string]*Figure{}
	for _, d := range []struct {
		key    string
		model  *device.Model
		runLen int
	}{
		{"fig15b", device.CPU(1), n},
		{"fig15c", device.GPU(), max(64, n/4096)},
	} {
		fig := &Figure{Name: d.key,
			Title:  "select sum(v2) where v1 between (Voodoo on " + d.model.Name + ")",
			XLabel: "selectivity", YLabel: "time [s]"}
		for _, v := range []struct {
			name    string
			variant fig15Variant
			pred    bool
		}{
			{"Branching", variantBranching, false},
			{"Branch-Free", variantBranchFree, true},
			{"Vectorized (BF)", variantVectorized, true},
		} {
			s := Series{Name: v.name}
			for _, sel := range defaultSelectivities {
				prog := fig15Program(sel, d.runLen, v.variant)
				t, err := priced(prog, st, compile.Options{Predication: v.pred}, d.model)
				if err != nil {
					return nil, fmt.Errorf("%s %s sel=%g: %w", d.key, v.name, sel, err)
				}
				s.Points = append(s.Points, Point{X: sel, T: t})
			}
			fig.Series = append(fig.Series, s)
		}
		out[d.key] = fig
	}
	return out, nil
}

// Fig15Native regenerates Figure 15a: the same three strategies as
// hand-written loops ("implemented in C"), event-counted and priced on the
// single-thread CPU model.
func Fig15Native(cfg Config) (*Figure, error) {
	n := cfg.n()
	v1 := uniformFloats(n, cfg.Seed+15)
	v2 := uniformFloats(n, cfg.Seed+16)
	m := device.CPU(1)

	fig := &Figure{Name: "fig15a",
		Title:  "select sum(v2) where v1 between (implemented in C)",
		XLabel: "selectivity", YLabel: "time [s]"}
	for _, v := range []struct {
		name string
		run  func(sel float64) (float64, *nativeStats)
	}{
		{"Branching", func(sel float64) (float64, *nativeStats) {
			return nativeSelectSumBranching(v1, v2, sel)
		}},
		{"Branch-Free", func(sel float64) (float64, *nativeStats) {
			return nativeSelectSumBranchFree(v1, v2, sel)
		}},
		{"Vectorized (BF)", func(sel float64) (float64, *nativeStats) {
			return nativeSelectSumVectorized(v1, v2, sel, vectorChunk)
		}},
	} {
		s := Series{Name: v.name}
		for _, sel := range defaultSelectivities {
			sum, ns := v.run(sel)
			_ = sum
			s.Points = append(s.Points, Point{X: sel, T: m.Time(ns.stats())})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
