package bench

import (
	"strings"
	"testing"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{3}, 3},
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := median(c.in); got != c.want {
			t.Errorf("median(%v) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestCompareCI(t *testing.T) {
	base := &CIReport{N: 16384, SF: 0.005, Seed: 42, Medians: map[string]float64{
		"a": 0.001, "b": 0.002, "tiny": 1e-8, "gone": 0.003,
	}}

	// Identical run: clean.
	if v := CompareCI(base, base, 0.25); len(v) != 0 {
		t.Fatalf("self-comparison reports violations: %v", v)
	}

	cur := &CIReport{N: 16384, SF: 0.005, Seed: 42, Medians: map[string]float64{
		"a":    0.00126, // +26%: regression
		"b":    0.0024,  // +20%: within tolerance
		"tiny": 1,       // huge relative jump, but below the floor in the baseline
	}}
	v := CompareCI(cur, base, 0.25)
	if len(v) != 2 {
		t.Fatalf("want 2 violations (a regressed, gone missing), got %d: %v", len(v), v)
	}
	if !strings.HasPrefix(v[0], "a:") || !strings.HasPrefix(v[1], "gone:") {
		t.Errorf("unexpected violations: %v", v)
	}

	// An improvement never fails.
	fast := &CIReport{N: 16384, SF: 0.005, Seed: 42, Medians: map[string]float64{
		"a": 0.0001, "b": 0.0001, "tiny": 1e-9, "gone": 0.0001,
	}}
	if v := CompareCI(fast, base, 0.25); len(v) != 0 {
		t.Errorf("improvement reported as violation: %v", v)
	}

	// A configuration mismatch is a single hard violation.
	other := &CIReport{N: 32768, SF: 0.005, Seed: 42, Medians: base.Medians}
	if v := CompareCI(other, base, 0.25); len(v) != 1 || !strings.Contains(v[0], "configuration mismatch") {
		t.Errorf("want configuration-mismatch violation, got %v", v)
	}
}

// TestCISmokeDeterministic pins the CI gate's premise: on one source
// tree, two smoke runs produce bit-identical medians (times are priced by
// the cost models, not measured), so any baseline diff is a code change.
func TestCISmokeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full smoke twice")
	}
	a, err := CISmoke()
	if err != nil {
		t.Fatal(err)
	}
	b, err := CISmoke()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Medians) == 0 {
		t.Fatal("smoke produced no medians")
	}
	if v := CompareCI(b, a, 0); len(v) != 0 {
		t.Fatalf("smoke is nondeterministic: %v", v)
	}
	allocKeys := 0
	for name, av := range a.Medians {
		if isAllocKey(name) {
			// The -benchmem counters are genuinely run-to-run noisy (GC
			// scheduling, map growth timing) — that is why CompareCI
			// soft-gates them. Here just pin that they exist and are
			// loosely stable: a 2x swing would mean broken measurement,
			// not GC wobble.
			allocKeys++
			if bv := b.Medians[name]; av > 0 && (bv > 2*av || av > 2*bv) {
				t.Errorf("%s: %g vs %g across runs (beyond measurement wobble)", name, av, bv)
			}
			continue
		}
		if b.Medians[name] != av {
			t.Errorf("%s: %g vs %g across runs", name, av, b.Medians[name])
		}
	}
	if allocKeys != 10 { // 5 figures x {allocs,bytes}
		t.Errorf("want 10 allocs/op counters in the report, got %d", allocKeys)
	}
}
