package bench

import (
	"voodoo/internal/exec"
)

// nativeStats counts events for the hand-written ("implemented in C")
// microbenchmark variants with the same conventions as the kernel executor,
// so the device models price native loops and Voodoo kernels identically.
type nativeStats struct {
	frags []exec.FragStats
	rings map[int]*lineRing
}

// lineRing mirrors the executor's recently-touched-lines LRU with stream
// detection (see exec.lineRing).
type lineRing struct {
	lines    [8]int64
	pos      int
	n        int
	lastLine int64
}

func (r *lineRing) touch(line int64) int {
	kind := 2
	if r.n > 0 && line == r.lastLine+1 {
		kind = 1
	}
	for i := 0; i < r.n; i++ {
		if r.lines[i] == line {
			kind = 0
			break
		}
	}
	if kind != 0 {
		r.lines[r.pos] = line
		r.pos = (r.pos + 1) % len(r.lines)
		if r.n < len(r.lines) {
			r.n++
		}
	}
	r.lastLine = line
	return kind
}

// frag opens a new counted loop (one fragment).
func (ns *nativeStats) frag(name string, extent int) *exec.FragStats {
	ns.frags = append(ns.frags, exec.FragStats{Name: "native:" + name, Extent: extent})
	ns.rings = map[int]*lineRing{}
	return &ns.frags[len(ns.frags)-1]
}

func (ns *nativeStats) cur() *exec.FragStats { return &ns.frags[len(ns.frags)-1] }

// rand records a data-dependent access into buffer buf (identified by an
// arbitrary id) of the given total size, applying the near-access
// heuristic.
func (ns *nativeStats) rand(buf int, idx int64, bufBytes int64) {
	fs := ns.cur()
	r := ns.rings[buf]
	if r == nil {
		r = &lineRing{}
		ns.rings[buf] = r
	}
	switch r.touch(idx >> 3) {
	case 0:
		fs.NearAccesses++
		return
	case 1:
		fs.SeqBytes += 64
		fs.NearAccesses++
		return
	}
	fs.RandAccesses++
	if fs.RandByBuf == nil {
		fs.RandByBuf = map[int]exec.RandCount{}
	}
	e := fs.RandByBuf[buf]
	e.Bytes = bufBytes
	e.Count++
	fs.RandByBuf[buf] = e
}

func (ns *nativeStats) stats() *exec.Stats { return &exec.Stats{Frags: ns.frags} }

// ---- Figure 15: selection strategies -------------------------------------

// nativeSelectSumBranching: if (v1 <= sel) sum += v2.
func nativeSelectSumBranching(v1, v2 []float64, sel float64) (float64, *nativeStats) {
	ns := &nativeStats{}
	fs := ns.frag("branching", 1)
	var sum float64
	for i := range v1 {
		fs.Items++
		fs.SeqBytes += 8
		fs.FloatOps += 2 // between: two comparisons
		fs.Guards++
		if v1[i] < 0 || v1[i] > sel {
			continue
		}
		fs.GuardsPass++
		fs.SeqBytes += 8
		fs.FloatOps++
		sum += v2[i]
	}
	return sum, ns
}

// nativeSelectSumBranchFree: cursor-arithmetic position list (full-size
// buffer), then a second loop over the qualifying positions.
func nativeSelectSumBranchFree(v1, v2 []float64, sel float64) (float64, *nativeStats) {
	ns := &nativeStats{}
	fs := ns.frag("branchfree", 1)
	pos := make([]int64, len(v1))
	cursor := 0
	for i := range v1 {
		fs.Items++
		fs.SeqBytes += 8 + 8 // read v1, write position (unconditionally)
		fs.FloatOps += 2
		fs.IntOps += 2 // predicate to 0/1, cursor advance
		pos[cursor] = int64(i)
		if v1[i] >= 0 && v1[i] <= sel {
			cursor++
		}
	}
	fs2 := ns.frag("branchfree-pass2", 1)
	var sum float64
	for j := 0; j < cursor; j++ {
		fs2.Items++
		fs2.SeqBytes += 8 // read position
		ns.rand(1, pos[j], int64(len(v2))*8)
		fs2.FloatOps++
		sum += v2[pos[j]]
	}
	return sum, ns
}

// nativeSelectSumVectorized: the same cursor arithmetic, chunked into
// cache-sized position buffers processed immediately.
func nativeSelectSumVectorized(v1, v2 []float64, sel float64, chunk int) (float64, *nativeStats) {
	ns := &nativeStats{}
	fs := ns.frag("vectorized", (len(v1)+chunk-1)/chunk)
	fs.LocalBytes = int64(chunk) * 8
	buf := make([]int64, chunk)
	var sum float64
	for base := 0; base < len(v1); base += chunk {
		end := min(base+chunk, len(v1))
		cursor := 0
		for i := base; i < end; i++ {
			fs.Items++
			fs.SeqBytes += 8
			fs.FloatOps += 2
			fs.IntOps += 2
			fs.LocalOps++ // position write stays cache resident
			buf[cursor] = int64(i)
			if v1[i] >= 0 && v1[i] <= sel {
				cursor++
			}
		}
		for j := 0; j < cursor; j++ {
			fs.LocalOps++
			ns.rand(1, buf[j], int64(len(v2))*8)
			fs.FloatOps++
			sum += v2[buf[j]]
		}
	}
	return sum, ns
}

// ---- Figure 16: selective foreign-key joins -------------------------------

// nativeFKBranching: if (v < sel) sum += target[fk].
func nativeFKBranching(v []float64, fk []int64, target []float64, sel float64) (float64, *nativeStats) {
	ns := &nativeStats{}
	fs := ns.frag("fk-branching", 1)
	var sum float64
	for i := range v {
		fs.Items++
		fs.SeqBytes += 8
		fs.FloatOps++
		fs.Guards++
		if v[i] >= sel {
			continue
		}
		fs.GuardsPass++
		fs.SeqBytes += 8 // read fk
		ns.rand(1, fk[i], int64(len(target))*8)
		fs.FloatOps++
		sum += target[fk[i]]
	}
	return sum, ns
}

// nativeFKPredicatedAggregation: unconditional lookups, predicated sum.
func nativeFKPredicatedAggregation(v []float64, fk []int64, target []float64, sel float64) (float64, *nativeStats) {
	ns := &nativeStats{}
	fs := ns.frag("fk-predagg", 1)
	var sum float64
	for i := range v {
		fs.Items++
		fs.SeqBytes += 16 // v and fk
		fs.FloatOps += 3  // compare, multiply, add
		ns.rand(1, fk[i], int64(len(target))*8)
		p := 0.0
		if v[i] < sel {
			p = 1
		}
		sum += target[fk[i]] * p
	}
	return sum, ns
}

// nativeFKPredicatedLookups: the paper's novel variant — multiply the
// position by the predicate so misses hit the hot line at position zero.
func nativeFKPredicatedLookups(v []float64, fk []int64, target []float64, sel float64) (float64, *nativeStats) {
	ns := &nativeStats{}
	fs := ns.frag("fk-predlookup", 1)
	var sum float64
	for i := range v {
		fs.Items++
		fs.SeqBytes += 16
		fs.FloatOps += 2 // compare, final predication multiply
		fs.IntOps += 2   // position multiply and cast (integer ALU, the GPU's weakness)
		p := int64(0)
		if v[i] < sel {
			p = 1
		}
		pos := fk[i] * p
		ns.rand(1, pos, int64(len(target))*8)
		fs.FloatOps++
		sum += target[pos] * float64(p)
	}
	return sum, ns
}

// ---- Figure 14: layout transformation ------------------------------------

// nativeLayoutSingleLoop: one pass resolving both columns.
func nativeLayoutSingleLoop(pos []int64, c1, c2 []float64) (float64, *nativeStats) {
	ns := &nativeStats{}
	fs := ns.frag("layout-single", 1)
	var sum float64
	for i := range pos {
		fs.Items++
		fs.SeqBytes += 8
		ns.rand(1, pos[i], int64(len(c1))*8)
		ns.rand(2, pos[i], int64(len(c2))*8)
		fs.FloatOps += 2
		sum += c1[pos[i]] + c2[pos[i]]
	}
	return sum, ns
}

// nativeLayoutSeparateLoops: one pass per column (halved working set).
func nativeLayoutSeparateLoops(pos []int64, c1, c2 []float64) (float64, *nativeStats) {
	ns := &nativeStats{}
	var sum float64
	fs := ns.frag("layout-separate-1", 1)
	for i := range pos {
		fs.Items++
		fs.SeqBytes += 8
		ns.rand(1, pos[i], int64(len(c1))*8)
		fs.FloatOps++
		sum += c1[pos[i]]
	}
	fs2 := ns.frag("layout-separate-2", 1)
	for i := range pos {
		fs2.Items++
		fs2.SeqBytes += 8
		ns.rand(2, pos[i], int64(len(c2))*8)
		fs2.FloatOps++
		sum += c2[pos[i]]
	}
	return sum, ns
}

// nativeLayoutTransform: interleave the columns row-wise first, then one
// pass with colocated fields (the second field is a near access).
func nativeLayoutTransform(pos []int64, c1, c2 []float64) (float64, *nativeStats) {
	ns := &nativeStats{}
	fs := ns.frag("layout-transform", 1)
	row := make([]float64, 2*len(c1))
	for i := range c1 {
		fs.Items++
		fs.SeqBytes += 2*8 + 2*8 // read both columns, write both fields
		row[2*i] = c1[i]
		row[2*i+1] = c2[i]
	}
	fs2 := ns.frag("layout-transform-lookup", 1)
	var sum float64
	for i := range pos {
		fs2.Items++
		fs2.SeqBytes += 8
		fs2.IntOps += 2 // 2*p and 2*p+1
		ns.rand(1, 2*pos[i], int64(len(row))*8)
		ns.rand(1, 2*pos[i]+1, int64(len(row))*8) // colocated: near
		fs2.FloatOps += 2
		sum += row[2*pos[i]] + row[2*pos[i]+1]
	}
	return sum, ns
}
