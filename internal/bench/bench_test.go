package bench

import (
	"strings"
	"testing"
)

// testCfg keeps test runs fast; shapes must already hold at this scale.
var testCfg = Config{N: 1 << 16, SF: 0.002, Seed: 42}

func TestFig1Shapes(t *testing.T) {
	fig, err := Fig1(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 6 {
		t.Fatalf("series = %d, want 6", len(fig.Series))
	}
	// Single-thread CPU: branch-free beats branching at mid selectivity.
	stb := fig.SeriesByName("Single Thread Branch")
	stn := fig.SeriesByName("Single Thread No Branch")
	if stb == nil || stn == nil {
		t.Fatal("missing single-thread series")
	}
	if !(stn.At(0.5) < stb.At(0.5)) {
		t.Errorf("at 50%% the branch-free variant should win: branch=%g nobranch=%g",
			stb.At(0.5), stn.At(0.5))
	}
	// Branching has the bell shape: worst near 50%.
	if !(stb.At(0.5) > stb.At(0.0001) && stb.At(0.5) > stb.At(1.0)) {
		t.Errorf("branching should peak at 50%%: %g %g %g",
			stb.At(0.0001), stb.At(0.5), stb.At(1.0))
	}
	// On the GPU the branching variant is never significantly worse.
	gb := fig.SeriesByName("GPU Branch")
	gn := fig.SeriesByName("GPU No Branch")
	for _, x := range []float64{0.0001, 0.01, 0.5, 1.0} {
		if gb.At(x) > 1.5*gn.At(x) {
			t.Errorf("GPU branching significantly worse at %g: %g vs %g", x, gb.At(x), gn.At(x))
		}
	}
	// Multithread beats single thread.
	if !(fig.SeriesByName("Multithread Branch").At(0.5) < stb.At(0.5)) {
		t.Error("multithreading should speed the branching variant up")
	}
	t.Log("\n" + fig.Render())
}

func TestFig15Shapes(t *testing.T) {
	figs, err := Fig15(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	cpu := figs["fig15b"]
	br := cpu.SeriesByName("Branching")
	bf := cpu.SeriesByName("Branch-Free")
	vec := cpu.SeriesByName("Vectorized (BF)")
	// CPU: branching bell curve; vectorized beats branch-free; vectorized
	// beats branching above ~1%.
	if !(br.At(0.5) > br.At(0.0001)) {
		t.Error("CPU branching should peak mid-selectivity")
	}
	if !(vec.At(0.5) < bf.At(0.5)) {
		t.Errorf("vectorized should beat branch-free: %g vs %g", vec.At(0.5), bf.At(0.5))
	}
	if !(vec.At(0.5) < br.At(0.5)) {
		t.Errorf("vectorized should beat branching at 50%%: %g vs %g", vec.At(0.5), br.At(0.5))
	}
	// GPU: vectorized ports badly — it should not win there.
	gpu := figs["fig15c"]
	gbr := gpu.SeriesByName("Branching")
	gvec := gpu.SeriesByName("Vectorized (BF)")
	if gvec.At(0.5) < gbr.At(0.5) {
		t.Errorf("vectorized should not win on the GPU: %g vs %g", gvec.At(0.5), gbr.At(0.5))
	}
	t.Log("\n" + cpu.Render() + "\n" + gpu.Render())
}

func TestFig15NativeMatchesVoodoo(t *testing.T) {
	nat, err := Fig15Native(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	figs, err := Fig15(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	vd := figs["fig15b"]
	// The paper's claim: Voodoo "virtually identical" to C. Allow a
	// factor ~2.5 (the kernels carry some extra bookkeeping ops).
	for _, name := range []string{"Branching", "Branch-Free", "Vectorized (BF)"} {
		nv := nat.SeriesByName(name).At(0.5)
		vv := vd.SeriesByName(name).At(0.5)
		ratio := vv / nv
		if ratio < 0.3 || ratio > 3.0 {
			t.Errorf("%s: voodoo %g vs native %g (ratio %g)", name, vv, nv, ratio)
		}
	}
	t.Log("\n" + nat.Render())
}

func TestFig16Shapes(t *testing.T) {
	figs, err := Fig16(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	cpu := figs["fig16b"]
	br := cpu.SeriesByName("Branching")
	pa := cpu.SeriesByName("Predicated Aggregation")
	pl := cpu.SeriesByName("Predicated Lookups")
	// CPU: branching bell; predicated aggregation flat and expensive;
	// predicated lookups beat it and win mid-range.
	if !(br.At(0.5) > br.At(0.05)) {
		t.Error("CPU branching should rise toward 50%")
	}
	if !(pl.At(0.3) < pa.At(0.3)) {
		t.Errorf("predicated lookups should beat predicated aggregation: %g vs %g",
			pl.At(0.3), pa.At(0.3))
	}
	if !(pl.At(0.5) < br.At(0.5)) {
		t.Errorf("predicated lookups should win mid-range on CPU: %g vs %g",
			pl.At(0.5), br.At(0.5))
	}
	// GPU: branching best over most of the space (integer weakness).
	gpu := figs["fig16c"]
	gbr := gpu.SeriesByName("Branching")
	gpl := gpu.SeriesByName("Predicated Lookups")
	if !(gbr.At(0.3) < gpl.At(0.3)) {
		t.Errorf("GPU branching should beat predicated lookups mid-range: %g vs %g",
			gbr.At(0.3), gpl.At(0.3))
	}
	t.Log("\n" + cpu.Render() + "\n" + gpu.Render())
}

func TestFig16NativeShapes(t *testing.T) {
	fig, err := Fig16Native(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	pl := fig.SeriesByName("Predicated Lookups")
	pa := fig.SeriesByName("Predicated Aggregation")
	if !(pl.At(0.2) < pa.At(0.2)) {
		t.Error("native predicated lookups should beat predicated aggregation")
	}
	t.Log("\n" + fig.Render())
}

func TestFig14Shapes(t *testing.T) {
	figs, err := Fig14(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	cpu := figs["fig14b"]
	single := cpu.SeriesByName("Single Loop")
	separate := cpu.SeriesByName("Separate Loops")
	transform := cpu.SeriesByName("Layout Transform")
	// Sequential: single loop best.
	if !(single.At(0) <= separate.At(0) && single.At(0) <= transform.At(0)) {
		t.Errorf("sequential: single loop should win: %g %g %g",
			single.At(0), separate.At(0), transform.At(0))
	}
	// Random large: layout transform best.
	if !(transform.At(2) < single.At(2)) {
		t.Errorf("random 128MB: transform should beat single loop: %g vs %g",
			transform.At(2), single.At(2))
	}
	// GPU: transform at least as good as separate loops everywhere.
	gpu := figs["fig14c"]
	gt := gpu.SeriesByName("Layout Transform")
	gs := gpu.SeriesByName("Separate Loops")
	for _, x := range []float64{1, 2} {
		if gt.At(x) > 1.3*gs.At(x) {
			t.Errorf("GPU transform should not lose to separate loops at %g: %g vs %g",
				x, gt.At(x), gs.At(x))
		}
	}
	t.Log("\n" + cpu.Render() + "\n" + gpu.Render())
}

func TestFig14NativeShapes(t *testing.T) {
	fig, err := Fig14Native(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := fig.SeriesByName("Layout Transform")
	sl := fig.SeriesByName("Single Loop")
	if !(tr.At(2) < sl.At(2)) {
		t.Error("native: transform should win at 128MB")
	}
	t.Log("\n" + fig.Render())
}

func TestFig13Shapes(t *testing.T) {
	table, err := Fig13(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 14 {
		t.Fatalf("rows = %d, want 14", len(table.Rows))
	}
	// Ocelot (bulk) pays for materialization on the CPU: it must be the
	// slowest engine on every query.
	for _, q := range []int{1, 4, 5, 6, 12, 19} {
		o := table.Time(q, "Ocelot")
		v := table.Time(q, "Voodoo")
		if !(o > 2*v) {
			t.Errorf("q%d: Ocelot (%g) should be well behind Voodoo (%g) on CPU", q, o, v)
		}
	}
	// Voodoo wins the lookup-heavy queries against HyPer (metadata joins
	// vs hash tables with collision handling) and stays comparable
	// elsewhere — the paper's "performance is comparable to HyPeR's".
	for _, q := range []int{9, 19} {
		h := table.Time(q, "HyPeR")
		v := table.Time(q, "Voodoo")
		if !(v < h) {
			t.Errorf("q%d: Voodoo (%g) should beat HyPeR (%g)", q, v, h)
		}
	}
	// The paper reports HyPeR ahead on some queries (q1's wide grouped
	// aggregation, order-by queries) and Voodoo ahead on others; require
	// the same order of magnitude everywhere.
	for _, r := range table.Rows {
		if v, h := r.Times["Voodoo"], r.Times["HyPeR"]; v > 8*h {
			t.Errorf("q%d: Voodoo (%g) should stay comparable to HyPeR (%g)", r.Query, v, h)
		}
	}
	t.Log("\n" + table.Render())
}

func TestFig12Shapes(t *testing.T) {
	table, err := Fig12(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(table.Rows))
	}
	// On the GPU, bandwidth forgives Ocelot: its penalty vs Voodoo must
	// shrink substantially compared with the CPU.
	cpuT, err := Fig13(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	q := 1
	gpuRatio := table.Time(q, "Ocelot") / table.Time(q, "Voodoo")
	cpuRatio := cpuT.Time(q, "Ocelot") / cpuT.Time(q, "Voodoo")
	if !(gpuRatio < cpuRatio) {
		t.Errorf("q1: GPU should forgive Ocelot's materialization: gpu ratio %g vs cpu ratio %g",
			gpuRatio, cpuRatio)
	}
	t.Log("\n" + table.Render())
}

func TestAblations(t *testing.T) {
	as, err := Ablations(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 4 {
		t.Fatalf("ablations = %d, want 4", len(as))
	}
	for _, a := range as {
		switch a.Name {
		case "operator fusion", "virtual scatter", "empty-slot suppression":
			if !(a.OnTime < a.OffTime) {
				t.Errorf("%s: mechanism on (%g) should beat off (%g)", a.Name, a.OnTime, a.OffTime)
			}
			if !(a.OnBytes < a.OffBytes) {
				t.Errorf("%s: mechanism on should move fewer bytes (%d vs %d)",
					a.Name, a.OnBytes, a.OffBytes)
			}
		case "predication @50%":
			if !(a.OnTime < a.OffTime) {
				t.Errorf("predication at 50%% should win: %g vs %g", a.OnTime, a.OffTime)
			}
		}
	}
	t.Log("\n" + RenderAblations(as))
}

func TestFigureRender(t *testing.T) {
	fig := &Figure{Name: "x", Title: "t", XLabel: "sel",
		Series: []Series{{Name: "a", Points: []Point{{X: 1, T: 2}}}}}
	out := fig.Render()
	if !strings.Contains(out, "a") || !strings.Contains(out, "2.0") {
		t.Errorf("render missing content:\n%s", out)
	}
}
