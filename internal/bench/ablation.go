package bench

import (
	"fmt"
	"strings"

	"voodoo/internal/compile"
	"voodoo/internal/core"
	"voodoo/internal/device"
	"voodoo/internal/exec"
	"voodoo/internal/interp"
	"voodoo/internal/vector"
)

// Ablation is one design-choice experiment: the same program with a
// mechanism on and off.
type Ablation struct {
	Name     string
	Detail   string
	OnTime   float64 // seconds, CPU model
	OffTime  float64
	OnBytes  int64 // materialized memory traffic
	OffBytes int64
}

// Render prints the ablation results.
func RenderAblations(as []Ablation) string {
	var sb strings.Builder
	sb.WriteString("== ablations: design choices of DESIGN.md §5 ==\n")
	fmt.Fprintf(&sb, "%-24s %-12s %-12s %-14s %-14s %s\n",
		"mechanism", "on [s]", "off [s]", "on [bytes]", "off [bytes]", "detail")
	for _, a := range as {
		fmt.Fprintf(&sb, "%-24s %-12.6f %-12.6f %-14d %-14d %s\n",
			a.Name, a.OnTime, a.OffTime, a.OnBytes, a.OffBytes, a.Detail)
	}
	return sb.String()
}

func totalSeqBytes(st *exec.Stats) int64 {
	var b int64
	for _, f := range st.Frags {
		b += f.SeqBytes
	}
	return b
}

// Ablations measures the design choices: operator fusion, predication,
// virtual scatter, and empty-slot suppression.
func Ablations(cfg Config) ([]Ablation, error) {
	n := cfg.n()
	cpu := device.CPU(1)
	st := interp.MemStorage{"facts": vector.New(n).
		Set("v1", vector.NewFloat(uniformFloats(n, cfg.Seed+61))).
		Set("v2", vector.NewFloat(uniformFloats(n, cfg.Seed+62)))}
	var out []Ablation

	// Fusion: the fused selection pipeline vs bulk (Ocelot-style)
	// execution of the identical program.
	{
		prog := fig15Program(0.1, n, variantBranching)
		onStats, _, err := runProgram(prog, st, compile.Options{})
		if err != nil {
			return nil, err
		}
		offStats, _, err := runProgram(fig15Program(0.1, n, variantBranching), st,
			compile.Options{ForceBulk: true})
		if err != nil {
			return nil, err
		}
		out = append(out, Ablation{
			Name:   "operator fusion",
			Detail: "fused select+gather+sum vs bulk materialization of every operator",
			OnTime: cpu.Time(onStats), OffTime: cpu.Time(offStats),
			OnBytes: totalSeqBytes(onStats), OffBytes: totalSeqBytes(offStats),
		})
	}

	// Predication at the worst-case selectivity (50%): branch-free on vs
	// branching off.
	{
		on, err := priced(fig15Program(0.5, n, variantVectorized), st,
			compile.Options{Predication: true}, cpu)
		if err != nil {
			return nil, err
		}
		off, err := priced(fig15Program(0.5, n, variantBranching), st,
			compile.Options{}, cpu)
		if err != nil {
			return nil, err
		}
		out = append(out, Ablation{
			Name:   "predication @50%",
			Detail: "cursor arithmetic vs data-dependent branch at peak misprediction",
			OnTime: on, OffTime: off,
		})
	}

	// Virtual scatter: the Figure 4 SIMD aggregation compiled (the
	// scatter dissolves into strided index arithmetic) vs bulk (the
	// scatter materializes).
	{
		prog := func() *core.Program {
			b := core.NewBuilder()
			input := b.Load("facts")
			ids := b.Range(input)
			lanes := b.Project("partition", b.Modulo(ids, b.Constant(8)), "")
			withPart := b.Zip("val", input, "v2", "partition", lanes, "partition")
			positions := b.Partition("pos", lanes, "partition", b.RangeN(0, 8, 1), "")
			posVec := b.Upsert(withPart, "pos", positions, "pos")
			scattered := b.Scatter(withPart, input, "", posVec, "pos")
			p := b.FoldSum(scattered, "partition", "val")
			b.GlobalSum(p, "")
			return b.Program()
		}
		onStats, _, err := runProgram(prog(), st, compile.Options{})
		if err != nil {
			return nil, err
		}
		offStats, _, err := runProgram(prog(), st, compile.Options{ForceBulk: true})
		if err != nil {
			return nil, err
		}
		out = append(out, Ablation{
			Name:   "virtual scatter",
			Detail: "Figure 4 lane aggregation: index arithmetic vs materialized scatter",
			OnTime: cpu.Time(onStats), OffTime: cpu.Time(offStats),
			OnBytes: totalSeqBytes(onStats), OffBytes: totalSeqBytes(offStats),
		})
	}

	// Empty-slot suppression: the compiled hierarchical aggregation keeps
	// one slot per run; bulk execution pads every fold output to full
	// size. The traffic difference is the suppressed padding.
	{
		prog := func() *core.Program {
			b := core.NewBuilder()
			input := b.Load("facts")
			ids := b.Range(input)
			fold := b.Project("fold", b.Divide(ids, b.Constant(1024)), "")
			withFold := b.Zip("val", input, "v2", "fold", fold, "fold")
			p := b.FoldSum(withFold, "fold", "val")
			b.GlobalSum(p, "")
			return b.Program()
		}
		onStats, _, err := runProgram(prog(), st, compile.Options{})
		if err != nil {
			return nil, err
		}
		offStats, _, err := runProgram(prog(), st, compile.Options{ForceBulk: true})
		if err != nil {
			return nil, err
		}
		out = append(out, Ablation{
			Name:   "empty-slot suppression",
			Detail: "hierarchical sum: compact fold outputs vs padded bulk vectors",
			OnTime: cpu.Time(onStats), OffTime: cpu.Time(offStats),
			OnBytes: totalSeqBytes(onStats), OffBytes: totalSeqBytes(offStats),
		})
	}
	return out, nil
}
