package bench

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"voodoo/internal/exec"
	"voodoo/internal/kernel"
	"voodoo/internal/vector"
)

// scalingWarnAt is the minimum 1-worker / GOMAXPROCS-workers wall-clock
// speedup the scaling check expects before warning. Deliberately modest:
// the check guards against the executor *losing* its parallelism (a
// serialized scheduler, a global lock on the hot path), not against
// imperfect scaling on a loaded CI runner.
const scalingWarnAt = 1.3

// scalingKernel builds one wide CPU-bound fragment: n work items of a
// few dependent integer ops each, heavy enough that wall time is compute,
// not scheduling.
func scalingKernel(n int) *kernel.Kernel {
	k := &kernel.Kernel{}
	in := k.AddBuf(kernel.BufDecl{Name: "in", Kind: vector.Int, Size: n, Input: true})
	out := k.AddBuf(kernel.BufDecl{Name: "out", Kind: vector.Int, Size: n})
	r0, r1 := kernel.FirstFree, kernel.FirstFree+1
	body := []kernel.Instr{
		{Op: kernel.ILoad, Dst: r0, A: kernel.RegIdx, Buf: in, Seq: true},
	}
	// A short dependent chain per item so the fragment is ALU-bound.
	for i := 0; i < 8; i++ {
		body = append(body,
			kernel.Instr{Op: kernel.IBin, BOp: kernel.BAdd, Dst: r1, A: r0, B: r0},
			kernel.Instr{Op: kernel.IBin, BOp: kernel.BMul, Dst: r0, A: r1, B: r1},
		)
	}
	body = append(body, kernel.Instr{Op: kernel.IStore, A: kernel.RegIdx, B: r0, Buf: out, Seq: true})
	k.Frags = append(k.Frags, &kernel.Fragment{
		Name: "scaling", Extent: n, Intent: 1, N: n,
		Loops: []kernel.Loop{{Body: body}},
	})
	return k
}

// ScalingCheck measures the executor's real wall-clock scaling: one
// CPU-bound fragment run with 1 worker and with GOMAXPROCS workers
// through the morsel scheduler. The measured times land in rep.Medians
// under "scaling/" keys (skipped by CompareCI — wall clock is not
// deterministic like the simulated medians) and the returned warnings are
// advisory, exactly like CompareCIAllocs. On a single-CPU machine there
// is nothing to scale and the check is skipped.
func ScalingCheck(rep *CIReport) []string {
	procs := runtime.GOMAXPROCS(0)
	if procs < 2 {
		return nil
	}
	const n = 1 << 21
	k := scalingKernel(n)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	measure := func(workers int) (float64, error) {
		best := math.Inf(1)
		for rep := 0; rep < 3; rep++ {
			env := exec.NewEnv(k)
			if err := env.Bind(k, "in", &exec.Buffer{Kind: vector.Int, I: vals}); err != nil {
				return 0, err
			}
			start := time.Now()
			if err := exec.Run(k, env, workers, nil); err != nil {
				return 0, err
			}
			if d := time.Since(start).Seconds(); d < best {
				best = d
			}
		}
		return best, nil
	}
	t1, err := measure(1)
	if err != nil {
		return []string{fmt.Sprintf("scaling check failed: %v", err)}
	}
	tn, err := measure(procs)
	if err != nil {
		return []string{fmt.Sprintf("scaling check failed: %v", err)}
	}
	rep.Medians["scaling/workers_1"] = t1
	rep.Medians[fmt.Sprintf("scaling/workers_%d", procs)] = tn
	speedup := t1 / tn
	rep.Medians["scaling/speedup"] = speedup
	if speedup < scalingWarnAt {
		return []string{fmt.Sprintf(
			"parallel scaling %.2fx (1 worker %.4fs vs %d workers %.4fs), want >= %.1fx — the executor may have lost its parallelism",
			speedup, t1, procs, tn, scalingWarnAt)}
	}
	return nil
}
