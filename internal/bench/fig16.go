package bench

import (
	"fmt"

	"voodoo/internal/compile"
	"voodoo/internal/core"
	"voodoo/internal/device"
	"voodoo/internal/interp"
	"voodoo/internal/vector"
)

// fig16Variant identifies the three FK-join strategies of Figure 16.
type fig16Variant uint8

const (
	fkBranching fig16Variant = iota
	fkPredicatedAggregation
	fkPredicatedLookups
)

// fig16Program builds "select sum(target.v) from fact, target where
// fact.fk = target.pk and fact.v < $sel" in the given variant.
func fig16Program(sel float64, runLen int, v fig16Variant) *core.Program {
	b := core.NewBuilder()
	fact := b.Load("fact")
	target := b.Load("target")
	pred := b.Less(b.Project("v", fact, "v"), "", b.ConstantF(sel), "")

	switch v {
	case fkBranching:
		// Scan, select, then look up and aggregate only qualifying rows —
		// the whole chain fuses into one guarded loop.
		ids := b.Range(fact)
		fold := b.Project("fold", b.Divide(ids, b.Constant(int64(runLen))), "")
		pf := b.Zip("p", pred, "", "fold", fold, "fold")
		selPos := b.FoldSelect(pf, "fold", "p")
		fkSel := b.Gather(fact, selPos, "")
		tv := b.Gather(target, fkSel, "fk")
		b.FoldSum(tv, "", "")
	case fkPredicatedAggregation:
		// Unconditional lookups; the predicate masks the aggregation.
		tv := b.Gather(target, fact, "fk")
		masked := b.Arith(core.OpMultiply, "m", tv, "", pred, "")
		hierSum(b, masked, "m", runLen)
	case fkPredicatedLookups:
		// Multiply the position by the predicate: misses hit the hot
		// line at position zero (extra integer arithmetic).
		pos := b.Multiply(b.Project("fk", fact, "fk"), pred)
		factP := b.Upsert(fact, "pk", pos, "")
		tv := b.Gather(target, factP, "pk")
		masked := b.Arith(core.OpMultiply, "m", tv, "", pred, "")
		hierSum(b, masked, "m", runLen)
	}
	return b.Program()
}

// hierSum folds a value vector hierarchically: per-run partials under a
// generated control vector, then a global reduction.
func hierSum(b *core.Builder, v core.Ref, kp string, runLen int) core.Ref {
	ids := b.Range(v)
	fold := b.Project("fold", b.Divide(ids, b.Constant(int64(runLen))), "")
	withFold := b.Zip("x", v, kp, "fold", fold, "fold")
	p := b.FoldSum(withFold, "fold", "x")
	return b.GlobalSum(p, "")
}

// fig16CPU scales the CPU cache tiers to the configuration so the target
// table (2N rows) is DRAM-resident — the regime where the hot-line trick
// of Predicated Lookups matters (the paper's "single, large target table").
func fig16CPU(cfg Config) *device.Model {
	m := device.CPU(1)
	l3 := int64(4 * cfg.n())
	m.Tiers = []device.Tier{
		{Size: max(l3/256, 512), Latency: m.Tiers[0].Latency},
		{Size: max(l3/32, 4096), Latency: m.Tiers[1].Latency},
		{Size: l3, Latency: m.Tiers[2].Latency},
		{Size: 1 << 62, Latency: m.Tiers[3].Latency},
	}
	return m
}

// fig16GPU scales the GPU L2 the same way.
func fig16GPU(cfg Config) *device.Model {
	m := device.GPU()
	m.Tiers = []device.Tier{
		{Size: max(int64(cfg.n()/2), 512), Latency: m.Tiers[0].Latency},
		{Size: 1 << 62, Latency: m.Tiers[1].Latency},
	}
	return m
}

// Fig16 regenerates Figure 16 (b and c): the selective FK join on the
// Voodoo backend, priced for CPU and GPU.
func Fig16(cfg Config) (map[string]*Figure, error) {
	n := cfg.n()
	m := 2 * n // the "single, large target table"
	st := interp.MemStorage{
		"fact": vector.New(n).
			Set("fk", vector.NewInt(uniformInts(n, int64(m), cfg.Seed+26))).
			Set("v", vector.NewFloat(uniformFloats(n, cfg.Seed+27))),
		"target": vector.New(m).Set("tv", vector.NewFloat(uniformFloats(m, cfg.Seed+28))),
	}

	out := map[string]*Figure{}
	for _, d := range []struct {
		key    string
		model  *device.Model
		runLen int
	}{
		{"fig16b", fig16CPU(cfg), n},
		{"fig16c", fig16GPU(cfg), max(64, n/4096)},
	} {
		fig := &Figure{Name: d.key,
			Title:  "selective FK join (Voodoo on " + d.model.Name + ")",
			XLabel: "selectivity", YLabel: "time [s]"}
		for _, v := range []struct {
			name    string
			variant fig16Variant
		}{
			{"Branching", fkBranching},
			{"Predicated Aggregation", fkPredicatedAggregation},
			{"Predicated Lookups", fkPredicatedLookups},
		} {
			s := Series{Name: v.name}
			for _, sel := range fig16Selectivities {
				prog := fig16Program(sel, d.runLen, v.variant)
				t, err := priced(prog, st, compile.Options{}, d.model)
				if err != nil {
					return nil, fmt.Errorf("%s %s sel=%g: %w", d.key, v.name, sel, err)
				}
				s.Points = append(s.Points, Point{X: sel, T: t})
			}
			fig.Series = append(fig.Series, s)
		}
		out[d.key] = fig
	}
	return out, nil
}

// Fig16Native regenerates Figure 16a: the same strategies as hand-written
// loops priced on the single-thread CPU model.
func Fig16Native(cfg Config) (*Figure, error) {
	n := cfg.n()
	m := 2 * n
	fk := uniformInts(n, int64(m), cfg.Seed+26)
	v := uniformFloats(n, cfg.Seed+27)
	target := uniformFloats(m, cfg.Seed+28)
	model := fig16CPU(cfg)

	fig := &Figure{Name: "fig16a",
		Title:  "selective FK join (implemented in C)",
		XLabel: "selectivity", YLabel: "time [s]"}
	for _, impl := range []struct {
		name string
		run  func(sel float64) (float64, *nativeStats)
	}{
		{"Branching", func(sel float64) (float64, *nativeStats) {
			return nativeFKBranching(v, fk, target, sel)
		}},
		{"Predicated Aggregation", func(sel float64) (float64, *nativeStats) {
			return nativeFKPredicatedAggregation(v, fk, target, sel)
		}},
		{"Predicated Lookups", func(sel float64) (float64, *nativeStats) {
			return nativeFKPredicatedLookups(v, fk, target, sel)
		}},
	} {
		s := Series{Name: impl.name}
		for _, sel := range fig16Selectivities {
			_, ns := impl.run(sel)
			s.Points = append(s.Points, Point{X: sel, T: model.Time(ns.stats())})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
