package storage

import (
	"path/filepath"
	"testing"

	"voodoo/internal/vector"
)

func sample() *Table {
	t := NewTable("orders")
	t.AddInt("okey", []int64{10, 20, 30, 40})
	t.AddFloat("total", []float64{1.5, 2.5, 0.5, 9})
	t.AddString("status", []string{"O", "F", "O", "P"})
	return t
}

func TestStats(t *testing.T) {
	tb := sample()
	st, ok := tb.Stats("okey")
	if !ok || st.MinI != 10 || st.MaxI != 40 {
		t.Fatalf("okey stats = %+v, %v", st, ok)
	}
	st, _ = tb.Stats("total")
	if st.MinF != 0.5 || st.MaxF != 9 {
		t.Fatalf("total stats = %+v", st)
	}
}

func TestDictionaryEncoding(t *testing.T) {
	tb := sample()
	d, ok := tb.Def("status")
	if !ok || len(d.Dict) != 3 {
		t.Fatalf("dict = %v", d.Dict)
	}
	// Sorted dictionary: F < O < P.
	if d.Dict[0] != "F" || d.Dict[1] != "O" || d.Dict[2] != "P" {
		t.Fatalf("dict should be sorted: %v", d.Dict)
	}
	code, ok := tb.Code("status", "O")
	if !ok || code != 1 {
		t.Fatalf("Code(O) = %d, %v", code, ok)
	}
	if _, ok := tb.Code("status", "Z"); ok {
		t.Fatal("Code(Z) should not exist")
	}
	if got := tb.Decode("status", tb.Col("status").Int(3)); got != "P" {
		t.Fatalf("row 3 status = %q, want P", got)
	}
	if lb := tb.CodeLowerBound("status", "G"); lb != 1 {
		t.Fatalf("lower bound of G = %d, want 1 (O)", lb)
	}
}

func TestCatalogLoadVector(t *testing.T) {
	c := NewCatalog().Add(sample())
	v, err := c.LoadVector("orders")
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 4 || v.Col("okey") == nil || v.Col("status") == nil {
		t.Fatalf("bad table vector: %v", v.Names())
	}
	single, err := c.LoadVector("orders.total")
	if err != nil {
		t.Fatal(err)
	}
	if single.Len() != 4 || single.Col("total").Float(3) != 9 {
		t.Fatalf("bad column vector")
	}
	if _, err := c.LoadVector("nope"); err == nil {
		t.Fatal("expected error for unknown vector")
	}
}

func TestCatalogPersistVector(t *testing.T) {
	c := NewCatalog()
	v := vector.New(2).Set("x", vector.NewInt([]int64{1, 2}))
	if err := c.PersistVector("tmp", v); err != nil {
		t.Fatal(err)
	}
	got, err := c.LoadVector("tmp")
	if err != nil || !got.Equal(v) {
		t.Fatalf("persisted vector round trip failed: %v", err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := NewCatalog().Add(sample())
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	tb := back.Table("orders")
	if tb == nil {
		t.Fatal("orders table missing after reload")
	}
	orig := sample()
	if !tb.Vector().Equal(orig.Vector()) {
		t.Fatal("data changed across save/load")
	}
	d, _ := tb.Def("status")
	if len(d.Dict) != 3 || d.Dict[2] != "P" {
		t.Fatalf("dictionary lost: %v", d.Dict)
	}
	st, ok := tb.Stats("okey")
	if !ok || st.MaxI != 40 {
		t.Fatalf("stats lost: %+v", st)
	}
}

func TestLoadTableBadMagic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.vdb")
	if err := writeFile(path, []byte("NOTMAGIC")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTable(path); err == nil {
		t.Fatal("expected bad magic error")
	}
}

func TestColumnLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb := NewTable("t")
	tb.AddInt("a", []int64{1, 2})
	tb.AddInt("b", []int64{1})
}

func writeFile(path string, data []byte) error {
	return osWriteFile(path, data)
}
