// Package storage is the reproduction's stand-in for MonetDB's storage
// layer (paper §4, "Loading"): a column-oriented catalog with
// dictionary-encoded strings, per-column min/max metadata, and a binary
// on-disk format. The Voodoo engine loads columns straight out of the
// catalog, and the relational frontend exploits the metadata — exactly as
// the paper "aggressively exploits available metadata (min, max,
// FK-constraints)".
//
// NULL values follow MonetDB's scheme of reserved values: a column may
// declare a sentinel that reads as NULL (TPC-H does not need it, but the
// scheme is available).
package storage

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"voodoo/internal/telemetry"
	"voodoo/internal/vector"
)

// ColumnDef describes one column of a table.
type ColumnDef struct {
	Name string
	Kind vector.Kind
	// Dict holds the sorted dictionary for string columns (the column
	// data is the code sequence). Nil for plain numeric columns.
	Dict []string
	// HasNull marks the MonetDB-style reserved NULL value.
	HasNull bool
	Null    int64
}

// Stats is per-column metadata the frontend exploits for identity hashing
// and table sizing.
type Stats struct {
	MinI, MaxI int64
	MinF, MaxF float64
}

// Table is a named collection of equal-length columns.
type Table struct {
	Name string
	N    int

	defs  []ColumnDef
	cols  map[string]*vector.Column
	stats map[string]Stats
}

// NewTable creates an empty table.
func NewTable(name string) *Table {
	return &Table{Name: name, cols: map[string]*vector.Column{}, stats: map[string]Stats{}}
}

// Defs returns the column definitions in schema order.
func (t *Table) Defs() []ColumnDef { return t.defs }

// Col returns the named column, or nil.
func (t *Table) Col(name string) *vector.Column { return t.cols[name] }

// Def returns the definition of the named column.
func (t *Table) Def(name string) (ColumnDef, bool) {
	for _, d := range t.defs {
		if d.Name == name {
			return d, true
		}
	}
	return ColumnDef{}, false
}

// Stats returns the min/max metadata of the named column.
func (t *Table) Stats(name string) (Stats, bool) {
	s, ok := t.stats[name]
	return s, ok
}

// AddInt adds an integer column, computing its metadata. The slice is
// adopted.
func (t *Table) AddInt(name string, vals []int64) *Table {
	t.setLen(len(vals), name)
	st := Stats{}
	for i, v := range vals {
		if i == 0 || v < st.MinI {
			st.MinI = v
		}
		if i == 0 || v > st.MaxI {
			st.MaxI = v
		}
	}
	t.defs = append(t.defs, ColumnDef{Name: name, Kind: vector.Int})
	t.cols[name] = vector.NewInt(vals)
	t.stats[name] = st
	return t
}

// AddFloat adds a float column, computing its metadata.
func (t *Table) AddFloat(name string, vals []float64) *Table {
	t.setLen(len(vals), name)
	st := Stats{}
	for i, v := range vals {
		if i == 0 || v < st.MinF {
			st.MinF = v
		}
		if i == 0 || v > st.MaxF {
			st.MaxF = v
		}
	}
	t.defs = append(t.defs, ColumnDef{Name: name, Kind: vector.Float})
	t.cols[name] = vector.NewFloat(vals)
	t.stats[name] = st
	return t
}

// AddString adds a string column with dictionary encoding: the dictionary
// is sorted so code order equals lexicographic order and range predicates
// can compare codes directly.
func (t *Table) AddString(name string, vals []string) *Table {
	t.setLen(len(vals), name)
	uniq := map[string]bool{}
	for _, v := range vals {
		uniq[v] = true
	}
	dict := make([]string, 0, len(uniq))
	for v := range uniq {
		dict = append(dict, v)
	}
	sort.Strings(dict)
	code := make(map[string]int64, len(dict))
	for i, v := range dict {
		code[v] = int64(i)
	}
	codes := make([]int64, len(vals))
	for i, v := range vals {
		codes[i] = code[v]
	}
	t.defs = append(t.defs, ColumnDef{Name: name, Kind: vector.Int, Dict: dict})
	t.cols[name] = vector.NewInt(codes)
	t.stats[name] = Stats{MinI: 0, MaxI: int64(len(dict) - 1)}
	return t
}

// Code returns the dictionary code for value in the named string column;
// ok is false when the value does not occur (callers typically then use a
// code outside the domain, preserving predicate semantics).
func (t *Table) Code(col, value string) (int64, bool) {
	d, ok := t.Def(col)
	if !ok || d.Dict == nil {
		return 0, false
	}
	i := sort.SearchStrings(d.Dict, value)
	if i < len(d.Dict) && d.Dict[i] == value {
		return int64(i), true
	}
	return int64(i), false
}

// CodeLowerBound returns the smallest code whose string is >= value.
func (t *Table) CodeLowerBound(col, value string) int64 {
	d, _ := t.Def(col)
	return int64(sort.SearchStrings(d.Dict, value))
}

// Decode maps a dictionary code back to its string.
func (t *Table) Decode(col string, code int64) string {
	d, ok := t.Def(col)
	if !ok || d.Dict == nil || code < 0 || code >= int64(len(d.Dict)) {
		return ""
	}
	return d.Dict[code]
}

func (t *Table) setLen(n int, col string) {
	if len(t.defs) == 0 {
		t.N = n
		return
	}
	if n != t.N {
		// Invariant violation: the Add* builder API is only called with
		// equal-length columns by construction (generators, tests, and
		// LoadTable, which reads every column at the header's row count).
		// A mismatch is a programming error, not an input error.
		panic(fmt.Sprintf("storage: column %q has %d rows, table %q has %d", col, n, t.Name, t.N))
	}
}

// Vector assembles the table as a structured vector (one attribute per
// column, shared storage).
func (t *Table) Vector() *vector.Vector {
	v := vector.New(t.N)
	for _, d := range t.defs {
		v.Set(d.Name, t.cols[d.Name])
	}
	return v
}

// Catalog is a set of tables that also implements the Voodoo backends'
// Storage interface.
type Catalog struct {
	tables map[string]*Table
	extra  map[string]*vector.Vector // vectors persisted by programs
	// quarantined names tables whose files failed integrity checks at
	// load time: the table is absent from tables, but the catalog
	// remembers why so the frontends can fail such queries fast with the
	// typed corruption error instead of a generic "no table".
	quarantined map[string]*CorruptError
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: map[string]*Table{}, extra: map[string]*vector.Vector{}}
}

// Quarantine records that the named table's file failed integrity
// verification and is unavailable. Quarantined tables are invisible to
// Table but reported by Quarantined and QuarantineErr.
func (c *Catalog) Quarantine(name string, err *CorruptError) *Catalog {
	if c.quarantined == nil {
		c.quarantined = map[string]*CorruptError{}
	}
	c.quarantined[name] = err
	return c
}

// QuarantineErr returns the corruption error that quarantined the named
// table, or nil when the table is healthy (or simply unknown).
func (c *Catalog) QuarantineErr(name string) *CorruptError { return c.quarantined[name] }

// Quarantined returns the quarantined table names in sorted order.
func (c *Catalog) Quarantined() []string {
	var names []string
	for n := range c.quarantined {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Add registers a table.
func (c *Catalog) Add(t *Table) *Catalog {
	c.tables[t.Name] = t
	return c
}

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *Table { return c.tables[name] }

// Tables returns the table names in sorted order.
func (c *Catalog) Tables() []string {
	var names []string
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LoadVector implements the backend Storage interface: "table" loads all
// columns, "table.col" a single one.
func (c *Catalog) LoadVector(name string) (*vector.Vector, error) {
	if v, ok := c.extra[name]; ok {
		return v, nil
	}
	if t, ok := c.tables[name]; ok {
		return t.Vector(), nil
	}
	for tn, t := range c.tables {
		prefix := tn + "."
		if len(name) > len(prefix) && name[:len(prefix)] == prefix {
			col := t.Col(name[len(prefix):])
			if col != nil {
				return vector.New(t.N).Set(name[len(prefix):], col), nil
			}
		}
	}
	return nil, fmt.Errorf("storage: no vector %q", name)
}

// PersistVector implements the backend Storage interface.
func (c *Catalog) PersistVector(name string, v *vector.Vector) error {
	c.extra[name] = v
	return nil
}

// rangeExact bounds the magnitude below which float64 represents every
// int64 exactly; ranges beyond it are withheld from the compiler rather
// than reported with rounding.
const rangeExact = 1 << 52

// ColumnRange implements the compiling backend's optional zone-map
// interface (compile.StatsProvider): the inclusive raw-value range of
// column col in the vector named vec (same naming as LoadVector — either
// a table, or "table.col" for a single-column vector). Dictionary columns
// report their code range; in-band null sentinels are included, so the
// range covers every value a load can observe. ok is false for vectors
// persisted by programs (no statistics) and for ranges float64 cannot
// hold exactly.
func (c *Catalog) ColumnRange(vec, col string) (lo, hi float64, ok bool) {
	t := c.tables[vec]
	if t == nil {
		// "table.col" names a single-column vector whose one column keeps
		// the bare column name.
		for tn, tt := range c.tables {
			if vec == tn+"."+col {
				t = tt
				break
			}
		}
	}
	if t == nil {
		return 0, 0, false
	}
	st, ok := t.Stats(col)
	if !ok {
		return 0, 0, false
	}
	d, _ := t.Def(col)
	if d.Kind == vector.Float {
		return st.MinF, st.MaxF, st.MinF <= st.MaxF
	}
	if st.MinI >= rangeExact || st.MinI <= -rangeExact ||
		st.MaxI >= rangeExact || st.MaxI <= -rangeExact {
		return 0, 0, false
	}
	return float64(st.MinI), float64(st.MaxI), true
}

// ---- Binary persistence -------------------------------------------------

// The on-disk format is versioned through the magic string. VOODOO02
// appends a CRC32C (Castagnoli) checksum after every column's payload
// (name, kind, dictionary and data), so bit rot and truncation are
// detected at load time instead of surfacing as wrong query answers.
// VOODOO01 files (no checksums) are no longer readable; regenerate them
// with tpchgen.
const (
	magic   = "VOODOO02"
	magicV1 = "VOODOO01"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptError reports a table file whose content failed validation:
// truncation, an unsupported format version, an implausible header, or a
// checksum mismatch. Path is always set; Column and Offset narrow the
// damage down when the failure is inside a column payload.
type CorruptError struct {
	Path   string
	Column string // the column being read when corruption was found ("" = header)
	Offset int64  // byte offset of the corrupt region's start
	Reason string
	Err    error // underlying I/O error, when one triggered the failure
}

func (e *CorruptError) Error() string {
	msg := fmt.Sprintf("storage: corrupt table file %s", e.Path)
	if e.Column != "" {
		msg += fmt.Sprintf(", column %q", e.Column)
	}
	msg += fmt.Sprintf(" at offset %d: %s", e.Offset, e.Reason)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *CorruptError) Unwrap() error { return e.Err }

// Save writes the catalog's tables under dir, one file per table.
func (c *Catalog) Save(dir string) error {
	start := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range c.Tables() {
		if err := c.tables[name].Save(filepath.Join(dir, name+".vdb")); err != nil {
			return fmt.Errorf("storage: saving %s: %w", name, err)
		}
	}
	if lg := telemetry.Default(); lg.Enabled(context.Background(), slog.LevelInfo) {
		lg.LogAttrs(context.Background(), slog.LevelInfo, "storage: catalog saved",
			slog.String("dir", dir),
			slog.Int("tables", len(c.Tables())),
			slog.Duration("wall", time.Since(start)))
	}
	return nil
}

// Load reads every *.vdb table under dir, failing on the first corrupt
// file. One-shot tools want this strict behavior; a daemon that should
// keep serving the healthy remainder uses LoadDegraded instead.
func Load(dir string) (*Catalog, error) {
	c, err := LoadDegraded(dir)
	if err != nil {
		return nil, err
	}
	for _, name := range c.Quarantined() {
		return nil, c.QuarantineErr(name)
	}
	return c, nil
}

// LoadDegraded reads every *.vdb table under dir, quarantining (instead
// of failing on) tables whose files are corrupt or truncated. The error
// is non-nil only for environmental failures (unreadable directory,
// permission errors); integrity failures land in Catalog.Quarantined so
// a daemon can start in degraded mode and keep serving healthy tables.
func LoadDegraded(dir string) (*Catalog, error) {
	start := time.Now()
	lg := telemetry.Default()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	c := NewCatalog()
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".vdb" {
			continue
		}
		t, err := LoadTable(filepath.Join(dir, e.Name()))
		if err != nil {
			var ce *CorruptError
			if errors.As(err, &ce) {
				// The table name inside the file may be unreadable; fall
				// back to the file's base name.
				name := strings.TrimSuffix(e.Name(), ".vdb")
				c.Quarantine(name, ce)
				if lg.Enabled(context.Background(), slog.LevelWarn) {
					lg.LogAttrs(context.Background(), slog.LevelWarn,
						"storage: table quarantined",
						slog.String("table", name), slog.String("error", ce.Error()))
				}
				continue
			}
			return nil, fmt.Errorf("storage: loading %s: %w", e.Name(), err)
		}
		c.Add(t)
	}
	if lg.Enabled(context.Background(), slog.LevelInfo) {
		lg.LogAttrs(context.Background(), slog.LevelInfo, "storage: catalog loaded",
			slog.String("dir", dir),
			slog.Int("tables", len(c.Tables())),
			slog.Int("quarantined", len(c.Quarantined())),
			slog.Duration("wall", time.Since(start)))
	}
	return c, nil
}

// Save writes the table in the binary column format.
func (t *Table) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	if _, err := w.WriteString(magic); err != nil {
		return err
	}
	if err := writeString(w, t.Name); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int64(t.N)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int64(len(t.defs))); err != nil {
		return err
	}
	for _, d := range t.defs {
		// The column payload streams through the CRC as it is written;
		// the sum lands right after the payload so readers can verify
		// column-by-column without a second pass.
		h := crc32.New(castagnoli)
		cw := io.MultiWriter(w, h)
		if err := writeString(cw, d.Name); err != nil {
			return err
		}
		if err := binary.Write(cw, binary.LittleEndian, uint8(d.Kind)); err != nil {
			return err
		}
		if err := binary.Write(cw, binary.LittleEndian, int64(len(d.Dict))); err != nil {
			return err
		}
		for _, s := range d.Dict {
			if err := writeString(cw, s); err != nil {
				return err
			}
		}
		col := t.cols[d.Name]
		if d.Kind == vector.Int {
			if err := binary.Write(cw, binary.LittleEndian, col.Ints()); err != nil {
				return err
			}
		} else {
			if err := binary.Write(cw, binary.LittleEndian, col.Floats()); err != nil {
				return err
			}
		}
		if err := binary.Write(w, binary.LittleEndian, h.Sum32()); err != nil {
			return err
		}
	}
	return w.Flush()
}

// countingReader tracks how many bytes have been consumed, so corruption
// reports can name the offset of the damage.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// LoadTable reads a table from the binary column format, verifying the
// format version and every column's CRC32C checksum. Malformed content —
// truncation, bad magic, an unsupported version, implausible headers, or
// a checksum mismatch — is reported as a *CorruptError naming the file,
// column and offset; no partially-read table ever escapes.
func LoadTable(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr := &countingReader{r: bufio.NewReaderSize(f, 1<<20)}
	corrupt := func(column string, offset int64, reason string, cause error) error {
		if cause == io.EOF || cause == io.ErrUnexpectedEOF {
			reason, cause = "truncated: "+reason, nil
		}
		return &CorruptError{Path: path, Column: column, Offset: offset, Reason: reason, Err: cause}
	}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(cr, head); err != nil {
		return nil, corrupt("", 0, "reading magic", err)
	}
	switch string(head) {
	case magic:
	case magicV1:
		return nil, corrupt("", 0, fmt.Sprintf("unsupported format version %q (current is %q; regenerate with tpchgen)", magicV1, magic), nil)
	default:
		return nil, corrupt("", 0, fmt.Sprintf("bad magic %q (not a voodoo table file)", head), nil)
	}
	name, err := readString(cr)
	if err != nil {
		return nil, corrupt("", cr.n, "reading table name", err)
	}
	var n, ncols int64
	if err := binary.Read(cr, binary.LittleEndian, &n); err != nil {
		return nil, corrupt("", cr.n, "reading row count", err)
	}
	if err := binary.Read(cr, binary.LittleEndian, &ncols); err != nil {
		return nil, corrupt("", cr.n, "reading column count", err)
	}
	// A corrupt or hostile header must not drive allocation: every row
	// costs at least 8 bytes per column in the file, so bound the claimed
	// shape by the actual file size before allocating anything.
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if n < 0 || ncols <= 0 || ncols > 1<<16 || n > fi.Size()/8+1 {
		return nil, corrupt("", 0, fmt.Sprintf("implausible table shape: %d rows x %d columns in a %d-byte file", n, ncols, fi.Size()), nil)
	}
	t := NewTable(name)
	for i := int64(0); i < ncols; i++ {
		colStart := cr.n
		h := crc32.New(castagnoli)
		tr := io.TeeReader(cr, h)
		cname, err := readString(tr)
		if err != nil {
			return nil, corrupt("", cr.n, fmt.Sprintf("reading name of column %d", i), err)
		}
		var kind uint8
		if err := binary.Read(tr, binary.LittleEndian, &kind); err != nil {
			return nil, corrupt(cname, cr.n, "reading column kind", err)
		}
		if k := vector.Kind(kind); k != vector.Int && k != vector.Float {
			return nil, corrupt(cname, colStart, fmt.Sprintf("unknown column kind %d", kind), nil)
		}
		var dictLen int64
		if err := binary.Read(tr, binary.LittleEndian, &dictLen); err != nil {
			return nil, corrupt(cname, cr.n, "reading dictionary length", err)
		}
		if dictLen < 0 || dictLen > fi.Size() {
			return nil, corrupt(cname, colStart, fmt.Sprintf("implausible dictionary length %d", dictLen), nil)
		}
		dict := make([]string, dictLen)
		for j := range dict {
			if dict[j], err = readString(tr); err != nil {
				return nil, corrupt(cname, cr.n, fmt.Sprintf("reading dictionary entry %d", j), err)
			}
		}
		var ints []int64
		var floats []float64
		if vector.Kind(kind) == vector.Int {
			ints = make([]int64, n)
			err = binary.Read(tr, binary.LittleEndian, ints)
		} else {
			floats = make([]float64, n)
			err = binary.Read(tr, binary.LittleEndian, floats)
		}
		if err != nil {
			return nil, corrupt(cname, cr.n, "reading column data", err)
		}
		var want uint32
		if err := binary.Read(cr, binary.LittleEndian, &want); err != nil {
			return nil, corrupt(cname, cr.n, "reading column checksum", err)
		}
		if got := h.Sum32(); got != want {
			return nil, corrupt(cname, colStart, fmt.Sprintf("checksum mismatch: file says %08x, payload hashes to %08x", want, got), nil)
		}
		if ints != nil {
			t.AddInt(cname, ints)
		} else {
			t.AddFloat(cname, floats)
		}
		if dictLen > 0 {
			t.defs[len(t.defs)-1].Dict = dict
		}
	}
	return t, nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, int32(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func readString(r io.Reader) (string, error) {
	var n int32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n < 0 || n > 1<<20 {
		return "", fmt.Errorf("bad string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// osWriteFile is a tiny indirection for tests.
func osWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
