package storage

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// saveSample writes the sample table to a fresh file and returns its path
// and raw bytes, the raw material for the corruption corpus.
func saveSample(t *testing.T) (string, []byte) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "orders.vdb")
	if err := sample().Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

// TestLoadTableCorruptionCorpus is the table-driven error-path corpus for
// LoadTable: every malformed input must yield a typed *CorruptError (never
// a panic, never a silently wrong table), and no partial table may leak
// out alongside the error.
func TestLoadTableCorruptionCorpus(t *testing.T) {
	_, good := saveSample(t)

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string // substring expected in the error text
		wantCol string // expected CorruptError.Column ("" = header)
	}{
		{"zero-length", func(b []byte) []byte { return nil }, "truncated", ""},
		{"truncated-magic", func(b []byte) []byte { return b[:4] }, "truncated", ""},
		{"truncated-header", func(b []byte) []byte { return b[:len(magic)+2] }, "truncated", ""},
		{"truncated-mid-column", func(b []byte) []byte { return b[:len(b)/2] }, "truncated", ""},
		{"truncated-last-checksum", func(b []byte) []byte { return b[:len(b)-2] }, "checksum", "status"},
		{"wrong-version", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			copy(out, magicV1)
			return out
		}, "unsupported format version", ""},
		{"bad-magic", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			copy(out, "GARBAGE!")
			return out
		}, "bad magic", ""},
		{"bit-flip-in-data", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(out)-24] ^= 0x40 // inside the last column's payload
			return out
		}, "checksum mismatch", "status"},
		{"bit-flip-in-first-column", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(magic)+30] ^= 0x01 // inside okey's payload
			return out
		}, "checksum mismatch", ""}, // column name may itself be the flipped byte's victim
		{"implausible-row-count", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			// The row count sits after magic + name (int32 len + "orders").
			off := len(magic) + 4 + len("orders")
			binary.LittleEndian.PutUint64(out[off:], 1<<40)
			return out
		}, "implausible table shape", ""},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "bad.vdb")
			if err := os.WriteFile(path, tc.mutate(append([]byte(nil), good...)), 0o644); err != nil {
				t.Fatal(err)
			}
			tb, err := LoadTable(path)
			if err == nil {
				t.Fatalf("LoadTable accepted corrupt input")
			}
			if tb != nil {
				t.Fatalf("partial table leaked alongside error %v", err)
			}
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("error is %T, want *CorruptError: %v", err, err)
			}
			if ce.Path != path {
				t.Errorf("CorruptError.Path = %q, want %q", ce.Path, path)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
			if tc.wantCol != "" && ce.Column != tc.wantCol {
				t.Errorf("CorruptError.Column = %q, want %q", ce.Column, tc.wantCol)
			}
		})
	}
}

// TestLoadDegradedQuarantines: a directory with one corrupt and one
// healthy table loads in degraded mode — the healthy table serves, the
// corrupt one is quarantined with its typed error, and the strict Load
// refuses the whole directory.
func TestLoadDegradedQuarantines(t *testing.T) {
	dir := t.TempDir()
	if err := NewCatalog().Add(sample()).Save(dir); err != nil {
		t.Fatal(err)
	}
	other := NewTable("customer").AddInt("ckey", []int64{1, 2, 3})
	if err := other.Save(filepath.Join(dir, "customer.vdb")); err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the orders file's data region.
	path := filepath.Join(dir, "orders.vdb")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-16] ^= 0x08
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	c, err := LoadDegraded(dir)
	if err != nil {
		t.Fatalf("LoadDegraded failed outright: %v", err)
	}
	if c.Table("customer") == nil {
		t.Fatal("healthy table missing from degraded catalog")
	}
	if c.Table("orders") != nil {
		t.Fatal("corrupt table visible in degraded catalog")
	}
	if q := c.Quarantined(); len(q) != 1 || q[0] != "orders" {
		t.Fatalf("Quarantined() = %v, want [orders]", q)
	}
	if qe := c.QuarantineErr("orders"); qe == nil || !strings.Contains(qe.Error(), "checksum mismatch") {
		t.Fatalf("QuarantineErr(orders) = %v", qe)
	}

	if _, err := Load(dir); err == nil {
		t.Fatal("strict Load accepted a directory with a corrupt table")
	} else {
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("strict Load error is %T, want *CorruptError", err)
		}
	}
}
