package verify

import (
	"strings"

	"voodoo/internal/core"
	"voodoo/internal/vector"
)

// Storage is the read side of a persistent store, used by the algebra
// verifier to resolve Load schemas. interp.Storage and the storage
// catalogs satisfy it. A nil Storage degrades gracefully: Loads produce
// unknown schemas and every check that would need one is skipped.
type Storage interface {
	LoadVector(name string) (*vector.Vector, error)
}

// colInfo is the static model of one attribute column: scalar kind and
// whether every slot certainly holds a value. kindKnown=false means the
// kind could not be derived; validity defaults to "maybe empty".
type colInfo struct {
	kind      vector.Kind
	kindKnown bool
	allValid  bool
}

// vecInfo is the static model of one statement's vector value: its length
// and attribute schema. known=false poisons every derived property so one
// unknown never cascades into unsound diagnostics downstream.
type vecInfo struct {
	known bool
	n     int
	names []string
	cols  map[string]colInfo
}

var unknownVec = vecInfo{}

func knownCol(kind vector.Kind, allValid bool) colInfo {
	return colInfo{kind: kind, kindKnown: true, allValid: allValid}
}

func newVec(n int) vecInfo {
	return vecInfo{known: true, n: n, cols: map[string]colInfo{}}
}

func (v *vecInfo) set(name string, c colInfo) {
	if _, ok := v.cols[name]; !ok {
		v.names = append(v.names, name)
	}
	v.cols[name] = c
}

// fromVector models a concrete stored vector.
func fromVector(v *vector.Vector) vecInfo {
	out := newVec(v.Len())
	for _, name := range v.Names() {
		c := v.Col(name)
		out.set(name, knownCol(c.Kind(), c.AllValid()))
	}
	return out
}

// subtree mirrors vector.Subtree: the exact attribute, or every attribute
// under the "kp." prefix with relative names.
func (v *vecInfo) subtree(kp string) (rel []string, cols []colInfo, ok bool) {
	if c, exists := v.cols[kp]; exists {
		return []string{""}, []colInfo{c}, true
	}
	prefix := kp + "."
	for _, n := range v.names {
		if strings.HasPrefix(n, prefix) {
			rel = append(rel, n[len(prefix):])
			cols = append(cols, v.cols[n])
		}
	}
	return rel, cols, len(rel) > 0
}

// pv is the algebra-level verification state: the per-statement value
// models plus a persistence overlay so Load sees what an earlier Persist
// wrote.
type pv struct {
	st        Storage
	vals      []vecInfo
	persisted map[string]vecInfo
	diags     []Diagnostic
}

// Program verifies a core program at the algebra level. st resolves Load
// schemas (nil disables storage-dependent checks). Every Error-level
// diagnostic is sound: the reference interpreter rejects the program.
func Program(p *core.Program, st Storage) []Diagnostic {
	v := &pv{st: st, vals: make([]vecInfo, len(p.Stmts)), persisted: map[string]vecInfo{}}
	for i := range p.Stmts {
		s := &p.Stmts[i]
		if !v.structural(i, s) {
			v.vals[i] = unknownVec
			continue
		}
		v.vals[i] = v.derive(i, s)
	}
	return v.diags
}

func (v *pv) errorf(id int, rule, format string, args ...any) {
	v.diags = errorf(v.diags, StmtPos(id), rule, format, args...)
}

// kpNeed is the number of keypath slots the interpreter indexes per
// operator; a shorter Kp slice panics inside the evaluator.
func kpNeed(op core.Op) int {
	switch {
	case op.IsArith():
		return 2
	case op == core.OpZip, op == core.OpUpsert, op == core.OpGather, op == core.OpPartition:
		return 2
	case op == core.OpScatter:
		return 3
	case op == core.OpProject:
		return 1
	case op.IsFold():
		return 1
	}
	return 0
}

// outNeed is the number of output attribute names the evaluator indexes.
// Zip and Cross additionally require exactly two (core.Validate's rule).
func outNeed(op core.Op) int {
	switch {
	case op == core.OpZip, op == core.OpCross:
		return 2
	case op == core.OpConstant, op == core.OpRange, op == core.OpProject,
		op == core.OpUpsert, op == core.OpPartition:
		return 1
	case op.IsArith(), op.IsFold():
		return 1
	}
	return 0
}

// structural checks one statement's shape-independent well-formedness,
// mirroring core.Validate plus the index bounds the evaluator assumes.
// It reports whether the statement is structurally sound.
func (v *pv) structural(i int, s *core.Stmt) bool {
	arity, known := core.Arity(s.Op)
	if !known {
		v.errorf(i, RuleUnknownOp, "unknown op %v", s.Op)
		return false
	}
	ok := true
	if arity >= 0 && len(s.Args) != arity {
		v.errorf(i, RuleArity, "%s: want %d args, have %d", s.Op, arity, len(s.Args))
		ok = false
	}
	if s.Op == core.OpRange {
		if len(s.Args) > 1 {
			v.errorf(i, RuleArity, "Range: at most one vector argument")
			ok = false
		}
		if len(s.Args) == 0 && s.Size <= 0 {
			v.errorf(i, RuleRangeSize, "Range: literal size must be positive")
			ok = false
		}
	}
	for _, a := range s.Args {
		if a < 0 || int(a) >= i {
			v.errorf(i, RuleDanglingRef, "%s: arg ref %d is not an earlier statement", s.Op, a)
			ok = false
		}
	}
	if (s.Op == core.OpLoad || s.Op == core.OpPersist) && s.Name == "" {
		v.errorf(i, RuleMissingName, "%s: missing storage name", s.Op)
		ok = false
	}
	if need := outNeed(s.Op); len(s.Out) < need {
		v.errorf(i, RuleOutCount, "%s: want %d output name(s), have %d", s.Op, need, len(s.Out))
		ok = false
	}
	if (s.Op == core.OpZip || s.Op == core.OpCross) && len(s.Out) != 2 {
		v.errorf(i, RuleOutCount, "%s: want exactly 2 output names, have %d", s.Op, len(s.Out))
		ok = false
	}
	if need := kpNeed(s.Op); len(s.Kp) < need {
		v.errorf(i, RuleKpCount, "%s: want %d keypath(s), have %d", s.Op, need, len(s.Kp))
		ok = false
	}
	return ok
}

// col mirrors evaluator.col: resolve operand arg's keypath to one
// attribute. The bool reports whether the column model is usable; a
// resolution that certainly fails at run time is diagnosed.
func (v *pv) col(i int, s *core.Stmt, arg int) (colInfo, bool) {
	src := v.vals[s.Args[arg]]
	if !src.known {
		return colInfo{}, false
	}
	kp := s.Kp[arg]
	if kp == "" {
		if len(src.names) != 1 {
			v.errorf(i, RuleSingleAttr,
				"%s: operand %d needs a single attribute, has %v", s.Op, arg, src.names)
			return colInfo{}, false
		}
		return src.cols[src.names[0]], true
	}
	c, ok := src.cols[kp]
	if !ok {
		v.errorf(i, RuleUnknownAttr,
			"%s: operand %d has no attribute %q (have %v)", s.Op, arg, kp, src.names)
		return colInfo{}, false
	}
	return c, true
}

// copySubtree mirrors interp's copySubtree into the model.
func (v *pv) copySubtree(dst *vecInfo, out string, src vecInfo, kp string, i int, s *core.Stmt) {
	if kp == "" {
		if len(src.names) == 1 {
			dst.set(out, src.cols[src.names[0]])
			return
		}
		for _, name := range src.names {
			dst.set(out+"."+name, src.cols[name])
		}
		return
	}
	rel, cols, ok := src.subtree(kp)
	if !ok {
		v.errorf(i, RuleUnknownAttr, "%s: no attribute %q (have %v)", s.Op, kp, src.names)
		return
	}
	for j, r := range rel {
		name := out
		if r != "" {
			name = out + "." + r
		}
		dst.set(name, cols[j])
	}
}

// intIndexed diagnoses a column that the evaluator reads through Int():
// a materialized float column panics there. guarded means the read sits
// behind a Valid(i) check, in which case only a certainly-valid column is
// a certain failure.
func (v *pv) intIndexed(i int, s *core.Stmt, c colInfo, n int, guarded bool, what string) {
	if !c.kindKnown || c.kind != vector.Float || n <= 0 {
		return
	}
	if guarded && !c.allValid {
		return
	}
	v.errorf(i, RuleFloatIndex, "%s: %s must be integer-kind, is float", s.Op, what)
}

// derive computes statement i's value model, mirroring evaluator.eval and
// diagnosing every failure the interpreter is certain to hit.
func (v *pv) derive(i int, s *core.Stmt) vecInfo {
	arg := func(j int) vecInfo { return v.vals[s.Args[j]] }
	switch s.Op {
	case core.OpLoad:
		if info, ok := v.persisted[s.Name]; ok {
			return info
		}
		if v.st == nil {
			return unknownVec
		}
		vec, err := v.st.LoadVector(s.Name)
		if err != nil {
			v.errorf(i, RuleMissingVec, "Load: %v", err)
			return unknownVec
		}
		return fromVector(vec)
	case core.OpPersist:
		v.persisted[s.Name] = arg(0)
		return arg(0)
	case core.OpConstant:
		out := newVec(1)
		kind := vector.Int
		if s.IsFloat {
			kind = vector.Float
		}
		out.set(s.Out[0], knownCol(kind, true))
		return out
	case core.OpRange:
		n := s.Size
		if len(s.Args) == 1 {
			if !arg(0).known {
				return unknownVec
			}
			n = arg(0).n
		}
		out := newVec(n)
		out.set(s.Out[0], knownCol(vector.Int, true))
		return out
	case core.OpCross:
		if !arg(0).known || !arg(1).known {
			return unknownVec
		}
		out := newVec(arg(0).n * arg(1).n)
		out.set(s.Out[0], knownCol(vector.Int, true))
		out.set(s.Out[1], knownCol(vector.Int, true))
		return out
	case core.OpZip:
		v1, v2 := arg(0), arg(1)
		if !v1.known || !v2.known {
			return unknownVec
		}
		out := newVec(min(v1.n, v2.n))
		v.copySubtree(&out, s.Out[0], v1, s.Kp[0], i, s)
		v.copySubtree(&out, s.Out[1], v2, s.Kp[1], i, s)
		return out
	case core.OpProject:
		if !arg(0).known {
			return unknownVec
		}
		out := newVec(arg(0).n)
		v.copySubtree(&out, s.Out[0], arg(0), s.Kp[0], i, s)
		return out
	case core.OpUpsert:
		v1 := arg(0)
		src, ok := v.col(i, s, 1)
		if !v1.known || !ok {
			return unknownVec
		}
		srcN := arg(1).n
		out := newVec(v1.n)
		for _, name := range v1.names {
			out.set(name, v1.cols[name])
		}
		switch {
		case srcN == v1.n:
			out.set(s.Out[0], src)
		case srcN == 1:
			// One-slot broadcast; both broadcast paths yield dense columns.
			out.set(s.Out[0], colInfo{kind: src.kind, kindKnown: src.kindKnown, allValid: true})
		default:
			v.errorf(i, RuleUpsertLen,
				"Upsert: attribute length %d does not match vector length %d", srcN, v1.n)
			return unknownVec
		}
		return out
	case core.OpGather:
		v1 := arg(0)
		pos, ok := v.col(i, s, 1)
		if ok {
			v.intIndexed(i, s, pos, arg(1).n, true, "position attribute")
		}
		if !v1.known || !arg(1).known {
			return unknownVec
		}
		out := newVec(arg(1).n)
		for _, name := range v1.names {
			c := v1.cols[name]
			// Out-of-bounds and ε positions produce empty slots.
			out.set(name, colInfo{kind: c.kind, kindKnown: c.kindKnown})
		}
		return out
	case core.OpScatter:
		v1 := arg(0)
		pos, ok := v.col(i, s, 2)
		if ok && v1.known {
			srcValid := len(v1.names) > 0
			for _, name := range v1.names {
				srcValid = srcValid && v1.cols[name].allValid
			}
			v.intIndexed(i, s, pos, v1.n, !srcValid || !pos.allValid, "position attribute")
		}
		if v1.known && arg(2).known && arg(2).n < v1.n {
			v.errorf(i, RuleScatterLen, "Scatter: %d positions for %d values", arg(2).n, v1.n)
		}
		if !v1.known || !arg(1).known {
			return unknownVec
		}
		out := newVec(arg(1).n)
		for _, name := range v1.names {
			c := v1.cols[name]
			out.set(name, colInfo{kind: c.kind, kindKnown: c.kindKnown})
		}
		return out
	case core.OpMaterialize, core.OpBreak:
		return arg(0)
	case core.OpPartition:
		vals, okV := v.col(i, s, 0)
		pivots, okP := v.col(i, s, 1)
		if okV && arg(0).known {
			v.intIndexed(i, s, vals, arg(0).n, false, "value attribute")
		}
		if okP && arg(1).known {
			v.intIndexed(i, s, pivots, arg(1).n, false, "pivot attribute")
		}
		if !arg(0).known {
			return unknownVec
		}
		out := newVec(arg(0).n)
		out.set(s.Out[0], knownCol(vector.Int, true))
		return out
	case core.OpFoldSelect, core.OpFoldSum, core.OpFoldMin, core.OpFoldMax, core.OpFoldScan:
		return v.deriveFold(i, s)
	default:
		if s.Op.IsArith() {
			return v.deriveArith(i, s)
		}
		// structural() accepted the op, so the table knows it; reaching
		// here means the evaluator does not.
		v.errorf(i, RuleUnknownOp, "unsupported op %v", s.Op)
		return unknownVec
	}
}

func (v *pv) deriveFold(i int, s *core.Stmt) vecInfo {
	src := v.vals[s.Args[0]]
	if !src.known {
		return unknownVec
	}
	var val colInfo
	if s.FoldVal == "" {
		if len(src.names) != 1 {
			v.errorf(i, RuleSingleAttr,
				"%s: needs a single value attribute, has %v", s.Op, src.names)
			return unknownVec
		}
		val = src.cols[src.names[0]]
	} else {
		var ok bool
		val, ok = src.cols[s.FoldVal]
		if !ok {
			v.errorf(i, RuleFoldValue,
				"%s: no value attribute %q (have %v)", s.Op, s.FoldVal, src.names)
			return unknownVec
		}
	}
	if kp := s.Kp[0]; kp != "" {
		ctrl, ok := src.cols[kp]
		if !ok {
			v.errorf(i, RuleUnknownAttr,
				"%s: no fold attribute %q (have %v)", s.Op, kp, src.names)
		} else if src.n >= 2 {
			// Run decomposition reads the control attribute through Int()
			// without a validity guard.
			v.intIndexed(i, s, ctrl, src.n, false, "fold control attribute")
		}
	}
	if s.Op == core.OpFoldSelect {
		// The selection predicate is read through Int() behind Valid().
		v.intIndexed(i, s, val, src.n, true, "selection attribute")
	}
	out := newVec(src.n)
	kind := val.kind
	known := val.kindKnown
	if s.Op == core.OpFoldSelect {
		kind, known = vector.Int, true
	}
	// Fold outputs are run-aligned and ε-padded: never certainly dense.
	out.set(s.Out[0], colInfo{kind: kind, kindKnown: known})
	return out
}

func (v *pv) deriveArith(i int, s *core.Stmt) vecInfo {
	a, okA := v.col(i, s, 0)
	b, okB := v.col(i, s, 1)
	if !okA || !okB {
		return unknownVec
	}
	if a.kindKnown && b.kindKnown {
		isFloat := a.kind == vector.Float || b.kind == vector.Float
		switch s.Op {
		case core.OpModulo, core.OpBitShift, core.OpLogicalAnd, core.OpLogicalOr:
			if isFloat {
				v.errorf(i, RuleIntOpFloat, "%s: requires integer operands", s.Op)
				return unknownVec
			}
		}
	}
	if !v.vals[s.Args[0]].known || !v.vals[s.Args[1]].known {
		return unknownVec
	}
	n1, n2 := v.vals[s.Args[0]].n, v.vals[s.Args[1]].n
	n := min(n1, n2)
	if n1 == 1 {
		n = n2
	} else if n2 == 1 {
		n = n1
	}
	out := newVec(n)
	if !a.kindKnown || !b.kindKnown {
		out.set(s.Out[0], colInfo{allValid: false})
		return out
	}
	isFloat := a.kind == vector.Float || b.kind == vector.Float
	kind := vector.Int
	if isFloat && !(s.Op == core.OpGreater || s.Op == core.OpEquals) {
		kind = vector.Float
	}
	out.set(s.Out[0], knownCol(kind, a.allValid && b.allValid))
	return out
}
