package verify_test

import (
	"context"
	"errors"
	"testing"

	"voodoo/internal/core"
	"voodoo/internal/exec"
	"voodoo/internal/interp"
	"voodoo/internal/vector"
	"voodoo/internal/verify"
)

// FuzzVerifyThenRun fuzzes the verifier ↔ interpreter contract with
// byte-decoded programs:
//
//   - a program the verifier passes must never panic the interpreter
//     (data-dependent rejections are fine; a recovered *exec.PanicError is
//     a guaranteed crash the verifier should have predicted);
//   - a program the verifier rejects must be rejected by the interpreter
//     too (algebra-level Error diagnostics are sound);
//   - every diagnostic carries a rule ID, a message, and a statement
//     position inside the program.
//
// The decoder deliberately produces ill-formed programs — wrong arity,
// dangling refs, bogus keypaths, missing vectors — so both the accept and
// reject paths stay exercised.

type byteReader struct {
	data []byte
	i    int
}

func (r *byteReader) next() byte {
	if r.i >= len(r.data) {
		return 0
	}
	b := r.data[r.i]
	r.i++
	return b
}

var fuzzOps = []core.Op{
	core.OpLoad, core.OpPersist, core.OpConstant, core.OpRange, core.OpCross,
	core.OpAdd, core.OpSubtract, core.OpMultiply, core.OpDivide, core.OpModulo,
	core.OpBitShift, core.OpLogicalAnd, core.OpLogicalOr, core.OpGreater, core.OpEquals,
	core.OpZip, core.OpProject, core.OpUpsert, core.OpGather, core.OpScatter,
	core.OpMaterialize, core.OpBreak, core.OpPartition,
	core.OpFoldSelect, core.OpFoldSum, core.OpFoldMin, core.OpFoldMax, core.OpFoldScan,
}

var fuzzKps = []string{"", "v", "x", "pos", "g"}
var fuzzNames = []string{"t", "u", "nope"}

// decodeProgram maps an arbitrary byte string onto a bounded core program.
// Sizes are kept small (≤ 13 statements, Range ≤ 7, ≤ 2 Cross products) so
// every decoded program interprets in microseconds.
func decodeProgram(data []byte) *core.Program {
	r := &byteReader{data: data}
	n := 1 + int(r.next())%13
	p := &core.Program{}
	crosses := 0
	for i := 0; i < n; i++ {
		op := fuzzOps[int(r.next())%len(fuzzOps)]
		if op == core.OpCross {
			crosses++
			if crosses > 2 {
				op = core.OpAdd
			}
		}
		s := core.Stmt{ID: core.Ref(i), Op: op}
		nargs, ok := core.Arity(op)
		if !ok || nargs < 0 {
			nargs = int(r.next()) % 3
		}
		if r.next()%16 == 0 {
			// Occasionally corrupt the arity so VA002 stays exercised.
			nargs = int(r.next()) % 4
		}
		for a := 0; a < nargs; a++ {
			// -1 and i are both invalid refs; 0..i-1 are valid.
			s.Args = append(s.Args, core.Ref(int(r.next())%(i+2)-1))
		}
		for range s.Args {
			s.Kp = append(s.Kp, fuzzKps[int(r.next())%len(fuzzKps)])
		}
		if op.IsFold() {
			s.FoldVal = fuzzKps[int(r.next())%len(fuzzKps)]
		}
		switch op {
		case core.OpLoad, core.OpPersist:
			s.Name = fuzzNames[int(r.next())%len(fuzzNames)]
		case core.OpConstant:
			s.IntVal = int64(int8(r.next()))
			if r.next()%2 == 0 {
				s.IsFloat = true
				s.FloatVal = float64(int8(r.next())) / 2
			}
		case core.OpRange:
			s.Size = int(r.next())%9 - 1 // -1..7: non-positive sizes hit VA004
			s.Step = int64(r.next())%3 - 1
			s.IntVal = int64(int8(r.next()))
		}
		nout := 1
		if op == core.OpZip || op == core.OpCross || r.next()%16 == 0 {
			nout = int(r.next()) % 3
		}
		for o := 0; o < nout; o++ {
			s.Out = append(s.Out, fuzzKps[int(r.next())%len(fuzzKps)])
		}
		p.Stmts = append(p.Stmts, s)
	}
	return p
}

// fuzzStorage is rebuilt per iteration: Persist mutates it.
func fuzzStorage() interp.MemStorage {
	return interp.MemStorage{
		"t": vector.New(6).Set("v", vector.NewInt([]int64{3, 1, 4, 1, 5, 9})),
		"u": vector.New(4).Set("x", vector.NewFloat([]float64{0.5, -1, 2, 7})),
	}
}

func FuzzVerifyThenRun(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{3, 0, 0, 1, 5, 1, 0, 0, 2})
	f.Add([]byte("voodoo vector algebra"))
	f.Add([]byte{7, 23, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte{13, 255, 254, 253, 3, 3, 3, 19, 19, 19, 27, 27, 27, 0, 0, 0, 128, 64, 32, 16})
	for seed := byte(0); seed < 32; seed++ {
		f.Add([]byte{seed, byte(seed * 7), byte(seed * 13), byte(seed * 29), byte(seed * 31),
			byte(seed * 37), byte(seed * 41), byte(seed * 43), byte(seed * 47), byte(seed * 53)})
	}
	ctx := context.Background()
	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeProgram(data)
		st := fuzzStorage()
		diags := verify.Program(p, st)
		for _, d := range diags {
			if d.Rule == "" {
				t.Fatalf("diagnostic without rule ID: %v\nprogram:\n%s", d, p)
			}
			if d.Msg == "" {
				t.Fatalf("diagnostic without message: %v\nprogram:\n%s", d, p)
			}
			if d.Pos.Stmt < 0 || d.Pos.Stmt >= len(p.Stmts) {
				t.Fatalf("diagnostic position %v outside program of %d statements: %v", d.Pos, len(p.Stmts), d)
			}
		}
		_, err := interp.RunContext(ctx, p, st)
		if verify.HasErrors(diags) && err == nil {
			t.Fatalf("program executes cleanly despite verifier errors\ndiagnostics: %v\nprogram:\n%s", diags, p)
		}
		if len(diags) == 0 && err != nil {
			var pe *exec.PanicError
			if errors.As(err, &pe) {
				t.Fatalf("verified program panicked the interpreter: %v\nprogram:\n%s", err, p)
			}
		}
	})
}
