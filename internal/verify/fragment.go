// Fragment-level verification: register def-before-use with the executor's
// special-register contexts, buffer declaration consistency, loop-bound and
// geometry sanity, and an affine-index lattice that audits the compiler's
// sequential-vs-random access classification. The same analysis computes
// BatchFacts — the eligibility facts package exec's batch specializer
// consumes, making the verifier the single source of truth for
// specialization decisions.
package verify

import (
	"fmt"
	"sort"

	"voodoo/internal/kernel"
	"voodoo/internal/vector"
)

// fpos builds a fragment-scoped position.
func fpos(frag, section string, idx int) Pos {
	return Pos{Stmt: -1, Frag: frag, Section: section, Index: idx}
}

// Kernel verifies a whole compiled kernel: buffer declarations plus every
// fragment against those declarations.
func Kernel(k *kernel.Kernel) []Diagnostic {
	var diags []Diagnostic
	for i, b := range k.Bufs {
		if b.Size < 0 {
			diags = errorf(diags, NoPos, RuleBufDecl, "buf %d (%s): negative size %d", i, b.Name, b.Size)
		}
		if b.Name == "" {
			diags = errorf(diags, NoPos, RuleBufDecl, "buf %d: empty name", i)
		}
	}
	for _, f := range k.Frags {
		diags = append(diags, Fragment(f, k.Bufs)...)
	}
	return diags
}

// Fragment verifies one fragment. bufs supplies the kernel's buffer
// declarations; pass nil to skip declaration-dependent rules (VF003-VF005).
//
// The def-before-use analysis models the executor's register contract
// exactly: the register file persists across work items within a worker, so
// a read with no prior definition observes a sibling item's leftovers and
// makes results depend on morsel boundaries. Special registers are defined
// contextually — RegGID from the work-item prologue on, RegIV/RegIdx once
// the first loop has started, RegJ only inside the post-loop body. Reads
// inside a loop body may see definitions from any point of the same body
// (loop-carried values are deterministic within one work item).
func Fragment(f *kernel.Fragment, bufs []kernel.BufDecl) []Diagnostic {
	v := &fragVerifier{f: f, bufs: bufs,
		defI:   map[kernel.Reg]bool{},
		defF:   map[kernel.Reg]bool{},
		cls:    map[kernel.Reg]affClass{},
		loads:  map[int]bool{},
		stores: map[int]bool{},
	}
	v.geometry()

	// RegGID is set before anything else runs. Affinity classes for all
	// specials are affine-in-the-index by construction.
	v.defI[kernel.RegGID] = true
	for _, r := range []kernel.Reg{kernel.RegGID, kernel.RegIV, kernel.RegIdx, kernel.RegJ} {
		v.cls[r] = affAffine
	}

	v.section("pre", f.Pre, false)
	for li, l := range f.Loops {
		name := fmt.Sprintf("loop%d", li)
		v.loopBound(name, l)
		// RegIV and RegIdx are (re)assigned by the loop machinery before
		// the body executes, and keep their last value afterwards.
		v.defI[kernel.RegIV], v.defI[kernel.RegIdx] = true, true
		v.section(name, l.Body, true)
	}
	v.section("post", f.Post, false)
	if len(f.PostLoopBody) > 0 {
		if f.Locals <= 0 {
			v.diags = errorf(v.diags, fpos(f.Name, "postloop", -1), RuleLocals,
				"post-loop body with no locals (Locals=%d): body never runs", f.Locals)
		}
		v.defI[kernel.RegJ] = true
		v.section("postloop", f.PostLoopBody, true)
	}

	// VF010: a fragment that both loads and stores the same buffer has an
	// instruction-order hazard the batch specializer must (and does)
	// reject; flag it for human attention even on the interpreted path.
	var overlap []int
	for b := range v.stores {
		if v.loads[b] {
			overlap = append(overlap, b)
		}
	}
	sort.Ints(overlap)
	for _, b := range overlap {
		v.diags = warnf(v.diags, fpos(f.Name, "", -1), RuleRWOverlap,
			"buffer %d is both loaded and stored in this fragment", b)
	}
	return v.diags
}

// affClass is the affine-index lattice used to audit Seq markings:
// affConst (statically constant) < affAffine (affine in the work-item
// index) < affOther (data-dependent).
type affClass uint8

const (
	affConst affClass = iota
	affAffine
	affOther
)

type fragVerifier struct {
	f     *kernel.Fragment
	bufs  []kernel.BufDecl
	diags []Diagnostic

	defI, defF map[kernel.Reg]bool
	cls        map[kernel.Reg]affClass

	loads, stores map[int]bool
}

func (v *fragVerifier) class(r kernel.Reg) affClass {
	if r < 0 {
		return affOther
	}
	if c, ok := v.cls[r]; ok {
		return c
	}
	// Never-defined registers read as zero or leftovers; either way the
	// value is not affine in the index. Def-before-use reports the real
	// problem separately.
	return affOther
}

// geometry checks the fragment's index-space parameters (VF008, VF006).
func (v *fragVerifier) geometry() {
	f := v.f
	pos := fpos(f.Name, "", -1)
	if f.Extent < 0 || f.Intent < 0 || f.N < 0 {
		v.diags = errorf(v.diags, pos, RuleGeometry,
			"negative geometry: extent=%d intent=%d n=%d", f.Extent, f.Intent, f.N)
	}
	if f.Locals < 0 {
		v.diags = errorf(v.diags, pos, RuleLocals, "negative locals %d", f.Locals)
	}
	// N guards idx < N; an N beyond the index space means the tail is
	// silently never reached. Only checkable when no loop iterates past
	// Intent (a longer static bound extends the blocked index space).
	if f.Extent > 0 && f.Intent > 0 && f.N > f.Extent*f.Intent {
		extended := false
		for _, l := range f.Loops {
			bound := l.Bound
			if bound <= 0 {
				bound = f.Intent
			}
			if bound > f.Intent {
				extended = true
			}
		}
		if !extended {
			v.diags = errorf(v.diags, pos, RuleGeometry,
				"n=%d exceeds the index space extent*intent=%d", f.N, f.Extent*f.Intent)
		}
	}
}

// loopBound checks one loop's bound fields (VF007). Dynamic bound registers
// are read once per work item before the first iteration, so they must be
// integer-defined by the preceding sections.
func (v *fragVerifier) loopBound(name string, l kernel.Loop) {
	pos := fpos(v.f.Name, name, -1)
	if l.Bound < 0 {
		v.diags = errorf(v.diags, pos, RuleLoopBound, "negative loop bound %d", l.Bound)
	}
	if l.BoundReg > 0 && l.BoundReg < kernel.FirstFree {
		v.diags = errorf(v.diags, pos, RuleLoopBound,
			"dynamic bound register r%d is a reserved special", l.BoundReg)
	} else if l.BoundReg >= kernel.FirstFree && !v.defI[l.BoundReg] {
		v.diags = errorf(v.diags, pos, RuleLoopBound,
			"dynamic bound register r%d read before any definition", l.BoundReg)
	}
}

// section runs the def-before-use and structural checks over one
// instruction sequence, then the affinity passes with Seq auditing.
// loopBody marks sections that repeat per iteration, where a read may see a
// definition from a later instruction of the previous iteration.
func (v *fragVerifier) section(name string, body []kernel.Instr, loopBody bool) {
	if len(body) == 0 {
		return
	}
	f := v.f

	// Loop-carried definitions: anything defined somewhere in this body is
	// visible to every read of the body from the second iteration on, and
	// deterministic for the first (the executor zero-fills fresh register
	// files and the compiler's shapes define before first read anyway —
	// strictness here belongs to the batch specializer, see BatchFacts).
	bodyDefI := map[kernel.Reg]bool{}
	bodyDefF := map[kernel.Reg]bool{}
	if loopBody {
		for _, in := range body {
			if r, flt, ok := in.Def(); ok && r >= 0 {
				if flt {
					bodyDefF[r] = true
				} else {
					bodyDefI[r] = true
				}
			}
		}
	}

	for i, in := range body {
		pos := fpos(f.Name, name, i)
		if in.Op > kernel.IStoreLoc {
			v.diags = errorf(v.diags, pos, RuleBadInstr, "unknown opcode %d", in.Op)
			continue
		}
		for _, u := range in.Uses() {
			if u.R < 0 {
				v.diags = errorf(v.diags, pos, RuleBadInstr,
					"%s reads negative register r%d", in, u.R)
				continue
			}
			defined := false
			if u.Float {
				defined = v.defF[u.R] || bodyDefF[u.R]
			} else {
				defined = v.defI[u.R] || bodyDefI[u.R]
			}
			if !defined {
				v.diags = errorf(v.diags, pos, RuleUseBeforeDef,
					"%s reads r%d before any definition", in, u.R)
			}
		}

		switch in.Op {
		case kernel.ILoad, kernel.ILoadValid, kernel.IStore:
			if in.Op == kernel.IStore {
				v.stores[in.Buf] = true
			} else {
				v.loads[in.Buf] = true
			}
			if v.bufs != nil {
				if in.Buf < 0 || in.Buf >= len(v.bufs) {
					v.diags = errorf(v.diags, pos, RuleBufRange,
						"%s references buf %d outside the kernel's %d declarations", in, in.Buf, len(v.bufs))
					break
				}
				decl := v.bufs[in.Buf]
				if in.Op != kernel.ILoadValid && (decl.Kind == vector.Float) != in.Float {
					v.diags = errorf(v.diags, pos, RuleKindMismatch,
						"%s float=%v disagrees with buf %d (%s) declared %s", in, in.Float, in.Buf, decl.Name, decl.Kind)
				}
				if in.Op == kernel.IStore && in.C > 0 && !decl.Valid {
					v.diags = errorf(v.diags, pos, RuleStoreValid,
						"conditional-validity store into buf %d (%s) which has no validity mask", in.Buf, decl.Name)
				}
			}
		case kernel.ILoadLoc, kernel.IStoreLoc:
			if f.Locals <= 0 {
				v.diags = errorf(v.diags, pos, RuleLocals,
					"%s in a fragment with no scratch array (Locals=%d)", in, f.Locals)
			}
		}

		if r, flt, ok := in.Def(); ok {
			if r < kernel.FirstFree {
				v.diags = errorf(v.diags, pos, RuleSpecialWrite,
					"%s writes reserved register r%d", in, r)
			}
			if r >= 0 {
				if flt {
					v.defF[r] = true
				} else {
					v.defI[r] = true
				}
			}
		}
	}

	// Affinity: propagate index classes to a practical fixpoint (loop
	// bodies feed their own next iteration, so run a few extra passes),
	// emitting VF009 on the final pass only.
	passes := 1
	if loopBody {
		passes = 4
	}
	for p := 0; p < passes; p++ {
		final := p == passes-1
		for i, in := range body {
			if final && in.Seq {
				switch in.Op {
				case kernel.ILoad, kernel.ILoadValid, kernel.IStore:
					if v.class(in.A) == affOther {
						v.diags = errorf(v.diags, fpos(f.Name, name, i), RuleSeqClass,
							"%s is marked sequential but its index r%d is not affine in the work-item index", in, in.A)
					}
				}
			}
			v.applyClass(in)
		}
	}
}

// applyClass updates the affinity class of the register in defines, if any.
func (v *fragVerifier) applyClass(in kernel.Instr) {
	r, flt, ok := in.Def()
	if !ok || flt || r < 0 {
		return
	}
	var c affClass
	switch in.Op {
	case kernel.IConstI:
		c = affConst
	case kernel.IMov:
		c = v.class(in.A)
	case kernel.IBin:
		a, b := v.class(in.A), v.class(in.B)
		switch in.BOp {
		case kernel.BAdd, kernel.BSub:
			c = max(a, b)
			if c > affAffine {
				c = affOther
			}
		case kernel.BMul:
			switch {
			case a == affConst && b == affConst:
				c = affConst
			case a == affConst && b == affAffine, a == affAffine && b == affConst:
				c = affAffine
			default:
				c = affOther
			}
		default:
			if a == affConst && b == affConst {
				c = affConst
			} else {
				c = affOther
			}
		}
	default:
		// Selects, loads, casts from float, scratch reads: data-dependent.
		c = affOther
	}
	v.cls[r] = c
}

// ---------------------------------------------------------------------------
// Batch specialization facts

// Facts are the fragment eligibility facts the executor's batch specializer
// consumes (exec.compileBatch). They mirror the specializer's historical
// eligibility rules exactly; the pinning test in package exec asserts the
// decisions are unchanged over the difftest corpus.
type Facts struct {
	// BatchEligible reports whether the fragment can run as batch
	// primitives: loop-bodies-only, one iteration per work item, straight
	// whitelisted instructions, strict per-body def-before-use, and
	// single-store/load-disjoint buffer access.
	BatchEligible bool
	// Reason explains ineligibility ("" when eligible).
	Reason string
	// Countable marks every memory access sequential, making batch event
	// counts order-independent and therefore exact.
	Countable bool
	// IntRegs/FltRegs list the registers needing a column in each file,
	// ascending; NRegs bounds both index spaces.
	IntRegs []kernel.Reg
	FltRegs []kernel.Reg
	NRegs   int
}

// ineligible builds the not-eligible result.
func ineligible(reason string) Facts { return Facts{Reason: reason} }

// BatchFacts computes the batch-specialization eligibility facts for one
// fragment. The rules are conservative: a rejected fragment simply
// interprets.
func BatchFacts(f *kernel.Fragment) Facts {
	// Whole-lane execution must reduce to the loop bodies: any per-item
	// prologue/epilogue or scratch array needs element-major order.
	if f.Locals != 0 || len(f.Pre) != 0 || len(f.Post) != 0 || len(f.PostLoopBody) != 0 {
		return ineligible("per-item prologue, epilogue or scratch array")
	}
	if len(f.Loops) == 0 {
		return ineligible("no loops")
	}
	// Each loop must run exactly one iteration with idx == gid, so a batch
	// of consecutive gids is a batch of consecutive idxs.
	if f.Intent != 1 && !f.Strided {
		return ineligible("blocked index mapping with intent != 1")
	}
	for _, l := range f.Loops {
		if l.BoundReg > 0 {
			return ineligible("dynamic loop bound")
		}
		bound := l.Bound
		if bound <= 0 {
			bound = f.Intent
		}
		if bound != 1 {
			return ineligible("loop iterates more than once per work item")
		}
	}
	countable := true
	usedI := map[kernel.Reg]bool{kernel.RegGID: true, kernel.RegIV: true, kernel.RegIdx: true}
	usedF := map[kernel.Reg]bool{}
	loaded := map[int]bool{}
	stored := map[int]bool{}
	for _, l := range f.Loops {
		// Registers may not carry values across work items: the
		// interpreter's register file persists across gids, so a read
		// before a definition (within this loop body) would observe a
		// sibling item's leftovers and diverge. Specials are defined by
		// the batch prologue.
		defI := map[kernel.Reg]bool{kernel.RegGID: true, kernel.RegIV: true, kernel.RegIdx: true}
		defF := map[kernel.Reg]bool{}
		for _, in := range l.Body {
			switch in.Op {
			case kernel.IConstI, kernel.IConstF, kernel.IMov, kernel.IBin, kernel.ISel,
				kernel.ILoad, kernel.ILoadValid, kernel.IStore, kernel.IGuard,
				kernel.ICastIF, kernel.ICastFI:
			default:
				return ineligible("opcode outside the batch vocabulary") // locals and unknown opcodes stay interpreted
			}
			for _, u := range in.Uses() {
				if u.R < 0 {
					return ineligible("negative register operand")
				}
				if u.Float {
					if !defF[u.R] {
						return ineligible("register value carried across work items")
					}
				} else if !defI[u.R] {
					return ineligible("register value carried across work items")
				}
			}
			switch in.Op {
			case kernel.ILoad, kernel.ILoadValid:
				if stored[in.Buf] {
					return ineligible("load after store of the same buffer")
				}
				loaded[in.Buf] = true
				if !in.Seq {
					countable = false
				}
			case kernel.IStore:
				if stored[in.Buf] || loaded[in.Buf] {
					return ineligible("store overlaps an earlier access of the same buffer")
				}
				stored[in.Buf] = true
				if !in.Seq {
					countable = false
				}
			}
			if r, flt, ok := in.Def(); ok {
				if r < kernel.FirstFree {
					return ineligible("writes a special register")
				}
				if flt {
					defF[r], usedF[r] = true, true
				} else {
					defI[r], usedI[r] = true, true
				}
			}
		}
	}
	fa := Facts{BatchEligible: true, Countable: countable}
	for r := range usedI {
		fa.IntRegs = append(fa.IntRegs, r)
		if int(r)+1 > fa.NRegs {
			fa.NRegs = int(r) + 1
		}
	}
	for r := range usedF {
		fa.FltRegs = append(fa.FltRegs, r)
		if int(r)+1 > fa.NRegs {
			fa.NRegs = int(r) + 1
		}
	}
	sort.Slice(fa.IntRegs, func(i, j int) bool { return fa.IntRegs[i] < fa.IntRegs[j] })
	sort.Slice(fa.FltRegs, func(i, j int) bool { return fa.FltRegs[i] < fa.FltRegs[j] })
	return fa
}
