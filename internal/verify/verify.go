// Package verify is the static verification layer of the Voodoo stack: a
// three-level IR verifier in the style of compiler IR verifiers.
//
//   - Algebra level (Program): well-formedness of core programs — operator
//     arity, dangling references, and a full shape/schema derivation that
//     mirrors the interpreter's Table 2 semantics (attribute sets, lengths,
//     scalar kinds, control-vector validity). Error-level diagnostics are
//     sound: a program carrying one is guaranteed to be rejected by the
//     reference interpreter, which is what lets difftest use the verifier
//     as its front line.
//   - Plan level (package compile's (*Plan).Verify): post-lowering checks
//     on compiled plans — step inputs resolved, schema consistency across
//     fragment boundaries, virtual-scatter resolution, zone-map pruned-step
//     output validity.
//   - Fragment level (Fragment/Kernel): register def-before-use, buffer
//     kind consistency, loop-bound sanity, and sequential-vs-random access
//     classification. The same pass computes Facts — the single source of
//     truth the executor's batch specializer consumes for eligibility.
//
// Verification runs unconditionally in compile/interp test builds (their
// TestMain calls SetEnabled) and behind -verify on the daemons.
package verify

import (
	"fmt"
	"sync/atomic"

	"voodoo/internal/metrics"
)

// Level classifies a diagnostic.
type Level int

const (
	// Error marks a contract violation. At the algebra level an Error is
	// sound: the reference interpreter is guaranteed to reject the
	// program. At the plan and fragment levels an Error means the
	// compiler emitted something that violates the executor's contract.
	Error Level = iota
	// Warn marks a suspicious construct that does not certainly fail.
	Warn
)

// String implements fmt.Stringer.
func (l Level) String() string {
	if l == Error {
		return "error"
	}
	return "warn"
}

// Pos locates a diagnostic inside the verified artifact. Exactly one of
// the location families is populated: Stmt >= 0 for algebra-level
// diagnostics, Frag != "" for fragment-level ones (Section/Index narrow to
// one instruction), Step != "" for plan-level ones.
type Pos struct {
	Stmt    int    // SSA statement id, -1 when not statement-scoped
	Step    string // plan step name ("" when not step-scoped)
	Frag    string // fragment name ("" when not fragment-scoped)
	Section string // "pre", "loop0", "loop1", ..., "post", "postloop"
	Index   int    // instruction index within Section, -1 when whole-section
}

// NoPos is the zero location for artifact-wide diagnostics.
var NoPos = Pos{Stmt: -1, Index: -1}

// StmtPos locates statement id.
func StmtPos(id int) Pos { return Pos{Stmt: id, Index: -1} }

// String renders the position compactly ("stmt 3", "frag sel_2/loop0[4]").
func (p Pos) String() string {
	switch {
	case p.Stmt >= 0:
		return fmt.Sprintf("stmt %d", p.Stmt)
	case p.Frag != "" && p.Section != "" && p.Index >= 0:
		return fmt.Sprintf("frag %s/%s[%d]", p.Frag, p.Section, p.Index)
	case p.Frag != "" && p.Section != "":
		return fmt.Sprintf("frag %s/%s", p.Frag, p.Section)
	case p.Frag != "":
		return "frag " + p.Frag
	case p.Step != "":
		return "step " + p.Step
	}
	return "program"
}

// Diagnostic is one verification finding: a rule identifier (see the
// catalogue in DESIGN.md §16), a position inside the verified artifact,
// and a human-readable message.
type Diagnostic struct {
	Level Level
	Pos   Pos
	Rule  string
	Msg   string
}

// String implements fmt.Stringer.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s: %s", d.Level, d.Rule, d.Pos, d.Msg)
}

// Rule identifiers. Stable: tests pin mutations to rule ids and DESIGN.md
// §16 catalogues them.
const (
	// Algebra level.
	RuleUnknownOp   = "VA001" // operator not in the Table 2 vocabulary
	RuleArity       = "VA002" // wrong number of vector arguments
	RuleDanglingRef = "VA003" // argument ref out of range or not an earlier stmt
	RuleRangeSize   = "VA004" // Range literal size must be positive
	RuleMissingName = "VA005" // Load/Persist without a storage name
	RuleOutCount    = "VA006" // wrong number of output attribute names
	RuleKpCount     = "VA007" // fewer keypaths than consumed operands
	RuleUnknownAttr = "VA008" // keypath resolves to no attribute
	RuleSingleAttr  = "VA009" // empty keypath on a multi-attribute operand
	RuleIntOpFloat  = "VA010" // integer-only operator applied to float operands
	RuleUpsertLen   = "VA011" // Upsert attribute length mismatch
	RuleScatterLen  = "VA012" // fewer Scatter positions than values
	RuleMissingVec  = "VA013" // Load of a vector absent from storage
	RuleFloatIndex  = "VA014" // float-kind column used where integers are read
	RuleFoldValue   = "VA015" // fold value attribute unresolvable

	// Fragment level.
	RuleUseBeforeDef = "VF001" // register read before any definition
	RuleSpecialWrite = "VF002" // instruction writes a reserved register
	RuleBufRange     = "VF003" // buffer index outside the kernel declarations
	RuleKindMismatch = "VF004" // load/store float flag disagrees with the declaration
	RuleStoreValid   = "VF005" // conditional-validity store into a maskless buffer
	RuleLocals       = "VF006" // scratch access in a fragment without locals
	RuleLoopBound    = "VF007" // negative bound or invalid bound register
	RuleGeometry     = "VF008" // negative extent/intent or N beyond the index space
	RuleSeqClass     = "VF009" // sequential access through a non-affine index
	RuleRWOverlap    = "VF010" // fragment loads and stores the same buffer
	RuleBadInstr     = "VF011" // unknown opcode or negative operand register

	// Kernel level.
	RuleBufDecl = "VK001" // buffer declaration with negative size or empty name

	// Plan level (reported by (*compile.Plan).Verify).
	RuleInputUnbound  = "VP001" // input buffer read before it is bound or produced
	RulePlanBufRange  = "VP002" // plan step references a buffer outside the kernel
	RulePlanSchema    = "VP003" // bulk step attribute/buffer arity mismatch
	RulePrunedOutput  = "VP004" // pruned-step output buffer cannot represent ε
	RuleVirtualStore  = "VP005" // virtual (dissolved-scatter) fragment stores randomly
	RuleScatterSeq    = "VP006" // real scatter fragment without a random store
	RuleUseBeforeProd = "VP007" // buffer read before any producing step
)

// HasErrors reports whether any diagnostic is Error-level.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Level == Error {
			return true
		}
	}
	return false
}

// enabled gates verification in the compile and interp hot paths: tests
// switch it on in TestMain, daemons behind their -verify flag.
var enabled atomic.Bool

// SetEnabled switches verification in the compile/interp paths on or off
// and returns the previous setting.
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// Enabled reports whether verification is switched on.
func Enabled() bool { return enabled.Load() }

// FailuresTotal counts verification failures observed on enforcement
// paths (compile-time plan verification and the interpreter cross-check).
// Exported to /metrics as voodoo_verify_failures_total.
var FailuresTotal = metrics.NewCounter("voodoo_verify_failures_total",
	"Verification failures detected on -verify enforcement paths (plan verification and interpreter cross-checks).")

// errorf appends an Error diagnostic.
func errorf(diags []Diagnostic, pos Pos, rule, format string, args ...any) []Diagnostic {
	return append(diags, Diagnostic{Level: Error, Pos: pos, Rule: rule, Msg: fmt.Sprintf(format, args...)})
}

// warnf appends a Warn diagnostic.
func warnf(diags []Diagnostic, pos Pos, rule, format string, args ...any) []Diagnostic {
	return append(diags, Diagnostic{Level: Warn, Pos: pos, Rule: rule, Msg: fmt.Sprintf(format, args...)})
}
