package device

import (
	"math"
	"testing"

	"voodoo/internal/exec"
)

func TestLatencyTiers(t *testing.T) {
	m := CPU(1)
	if m.latency(16*kb) >= m.latency(1*mb) {
		t.Error("L1-resident access should be cheaper than L3-resident")
	}
	if m.latency(4*mb) >= m.latency(128*mb) {
		t.Error("L3-resident access should be cheaper than DRAM")
	}
}

func TestBranchPenaltyBellCurve(t *testing.T) {
	m := CPU(1)
	frag := func(pass int64) *exec.FragStats {
		return &exec.FragStats{Extent: 1, Items: 1000, Guards: 1000, GuardsPass: pass}
	}
	t10 := m.FragTime(frag(100))
	t50 := m.FragTime(frag(500))
	t90 := m.FragTime(frag(900))
	if !(t50 > t10 && t50 > t90) {
		t.Errorf("branch cost should peak at 50%%: t10=%g t50=%g t90=%g", t10, t50, t90)
	}
}

func TestGPUNoBranchPenaltyButDivergence(t *testing.T) {
	g := GPU()
	// With divergence, a guarded fragment where only 10% pass should cost
	// about as much as one where 90% pass (lanes burn either way): the
	// static body cost dominates the executed-op count.
	lo := &exec.FragStats{Extent: 4096, Items: 100000, Guards: 100000, GuardsPass: 10000,
		IntOps: 50000, StaticIntOps: 5}
	hi := &exec.FragStats{Extent: 4096, Items: 100000, Guards: 100000, GuardsPass: 90000,
		IntOps: 450000, StaticIntOps: 5}
	tl, th := g.FragTime(lo), g.FragTime(hi)
	ratio := tl / th
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("divergent guard costs should be roughly flat: lo=%g hi=%g", tl, th)
	}
}

func TestGPUIntegerWeakness(t *testing.T) {
	g := GPU()
	ints := &exec.FragStats{Extent: 1 << 20, IntOps: 1 << 30}
	floats := &exec.FragStats{Extent: 1 << 20, FloatOps: 1 << 30}
	if g.FragTime(ints) <= g.FragTime(floats) {
		t.Error("GPU integer ops should be slower than float ops")
	}
	c := CPU(8)
	ci := c.FragTime(ints)
	cf := c.FragTime(floats)
	if math.Abs(ci-cf)/cf > 0.01 {
		t.Error("CPU int and float throughput should match in this model")
	}
}

func TestSequentialFragmentHurtsGPUMore(t *testing.T) {
	work := &exec.FragStats{Extent: 1, Items: 1 << 20, IntOps: 1 << 22}
	g, c := GPU(), CPU(1)
	if g.FragTime(work) <= c.FragTime(work) {
		t.Error("a sequential fragment should run slower on the GPU than on a CPU core")
	}
	parallel := &exec.FragStats{Extent: 1 << 20, Items: 1 << 20, FloatOps: 1 << 22}
	if g.FragTime(parallel) >= c.FragTime(parallel) {
		t.Error("a massively parallel float fragment should be faster on the GPU")
	}
}

func TestBandwidthAdvantage(t *testing.T) {
	// Pure streaming traffic: the GPU's 300GB/s should beat the CPU.
	stream := &exec.FragStats{Extent: 1 << 20, SeqBytes: 10 << 30}
	if GPU().FragTime(stream) >= CPU(8).FragTime(stream) {
		t.Error("GPU streaming should outpace CPU streaming")
	}
}

func TestRandomAccessHiddenByParallelism(t *testing.T) {
	g := GPU()
	rand := func(extent int) *exec.FragStats {
		return &exec.FragStats{Extent: extent,
			RandByBuf: map[int]exec.RandCount{0: {Bytes: 512 * mb, Count: 1 << 20}}}
	}
	if g.FragTime(rand(1<<20)) >= g.FragTime(rand(1)) {
		t.Error("parallel random accesses should be cheaper than serial ones on the GPU")
	}
}

func TestOversizedLocalsSpill(t *testing.T) {
	c := CPU(1)
	small := &exec.FragStats{Extent: 1, LocalOps: 1 << 20, LocalBytes: 32 * kb}
	big := &exec.FragStats{Extent: 1, LocalOps: 1 << 20, LocalBytes: 512 * mb}
	if c.FragTime(big) <= c.FragTime(small) {
		t.Error("oversized scratch arrays should cost memory traffic")
	}
}

func TestTimeSumsFragments(t *testing.T) {
	m := CPU(4)
	st := &exec.Stats{Frags: []exec.FragStats{
		{Extent: 4, IntOps: 1000},
		{Extent: 1, IntOps: 1000},
	}}
	want := m.FragTime(&st.Frags[0]) + m.FragTime(&st.Frags[1])
	if got := m.Time(st); math.Abs(got-want) > 1e-12 {
		t.Errorf("Time = %g, want %g", got, want)
	}
	if m.Explain(st) == "" {
		t.Error("Explain should render a breakdown")
	}
}
