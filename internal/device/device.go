// Package device provides parametric hardware cost models that convert
// kernel execution event counts (exec.Stats) into simulated times.
//
// The reproduction substitutes these models for the paper's physical
// testbed (a 4-core Skylake Xeon E3-1270v5 and a GeForce GTX TITAN X),
// which this host does not have. The models encode exactly the asymmetries
// the paper's evaluation explains its results with:
//
//   - CPUs speculate: data-dependent branches pay a misprediction penalty
//     that peaks at 50% selectivity (Figure 1's bell curve); GPUs do not
//     speculate but execute divergent SIMT iterations at full-body cost.
//   - CPUs have large per-core caches, so random accesses are priced by
//     working-set size against a cache-tier table (Figure 14's 4MB vs
//     128MB crossover); GPUs have tiny caches but hide memory latency with
//     massive outstanding-request parallelism — if the fragment offers
//     enough parallel work items.
//   - GPU global memory bandwidth (~300 GB/s) dwarfs the CPU's (~34 GB/s),
//     which is what forgives Ocelot-style full materialization on the GPU
//     (Figure 12 vs Figure 13).
//   - GPUs sacrifice integer throughput for float throughput (Figure 16's
//     Predicated Lookups penalty).
//
// Times are deterministic functions of the counted events, so every figure
// regenerates bit-identically.
package device

import (
	"fmt"
	"math"

	"voodoo/internal/exec"
)

// Tier prices random accesses whose working set fits within Size bytes.
type Tier struct {
	Size    int64
	Latency float64 // seconds per dependent access
}

// Model is a parametric device. All rates are per second.
type Model struct {
	Name string

	// Units × Lanes is the number of concurrently executing work items.
	Units int
	Lanes int

	IntOpRate   float64 // scalar integer ops per lane
	FloatOpRate float64 // scalar float ops per lane

	SeqBandwidth float64 // sequential/coalesced bytes per second (shared)
	Tiers        []Tier  // ascending by Size; the last tier prices DRAM
	// MaxOutstanding caps memory-level parallelism: how many random
	// accesses the device keeps in flight across all units.
	MaxOutstanding int

	// Speculative CPUs pay BranchPenalty per mispredicted guard;
	// DivergeOnGuard SIMT devices instead pay the full loop body for
	// guard-failed iterations.
	Speculative    bool
	BranchPenalty  float64
	DivergeOnGuard bool

	// LocalBytesFast is the per-work-item scratch size that stays
	// register/cache resident; larger scratch arrays spill to memory.
	LocalBytesFast int64

	LaunchOverhead float64 // per fragment (kernel launch / barrier)
}

// latency returns the per-access cost for a random working set of the given
// size.
func (m *Model) latency(size int64) float64 {
	for _, t := range m.Tiers {
		if size <= t.Size {
			return t.Latency
		}
	}
	if len(m.Tiers) == 0 {
		return 0
	}
	return m.Tiers[len(m.Tiers)-1].Latency
}

// FragTime prices a single fragment execution.
func (m *Model) FragTime(fs *exec.FragStats) float64 {
	par := float64(min(max(fs.Extent, 1), m.Units*m.Lanes))

	intOps, floatOps := float64(fs.IntOps), float64(fs.FloatOps)
	if m.DivergeOnGuard && fs.Guards > 0 && fs.Items > 0 {
		// SIMT divergence: a warp pays the full loop body for every
		// iteration whether or not the guard passed (the failed lanes
		// idle but occupy the warp). Memory traffic is not inflated —
		// masked lanes issue no loads.
		intOps = math.Max(intOps, float64(fs.Items)*float64(fs.StaticIntOps))
		floatOps = math.Max(floatOps, float64(fs.Items)*float64(fs.StaticFloatOps))
	}
	ops := intOps/m.IntOpRate + floatOps/m.FloatOpRate
	// Scratch accesses run at integer-ALU speed while the scratch array
	// stays cache resident.
	ops += float64(fs.LocalOps) / m.IntOpRate
	opTime := ops / par

	seqBytes := float64(fs.SeqBytes)
	if fs.LocalBytes > m.LocalBytesFast {
		// Oversized scratch arrays spill: every scratch access becomes
		// memory traffic.
		seqBytes += float64(fs.LocalOps) * 8
	}
	seqTime := seqBytes / m.SeqBandwidth

	// Far random accesses are priced against the fragment's total random
	// working set (interleaving two 4MB columns pressures the cache like
	// one 8MB one — the Figure 14 effect); near accesses stay at L1.
	randTime := 0.0
	mlp := math.Min(par*4, float64(m.MaxOutstanding))
	if mlp < 1 {
		mlp = 1
	}
	var ws int64
	var farAccesses int64
	for _, e := range fs.RandByBuf {
		ws += e.Bytes
		farAccesses += e.Count
	}
	randTime += float64(farAccesses) * m.latency(ws) / mlp
	if len(m.Tiers) > 0 {
		randTime += float64(fs.NearAccesses) * m.Tiers[0].Latency / mlp
	}

	branchTime := 0.0
	if m.Speculative && fs.Guards > 0 {
		p := float64(fs.GuardsPass) / float64(fs.Guards)
		// A two-level predictor mispredicts at roughly 2p(1-p) on
		// independent outcomes: worst at 50% selectivity.
		branchTime = float64(fs.Guards) * 2 * p * (1 - p) * m.BranchPenalty
	}

	return opTime + seqTime + randTime + branchTime + m.LaunchOverhead
}

// Time prices a whole run.
func (m *Model) Time(st *exec.Stats) float64 {
	total := 0.0
	for i := range st.Frags {
		total += m.FragTime(&st.Frags[i])
	}
	return total
}

// Explain renders a per-fragment cost breakdown, useful when tuning.
func (m *Model) Explain(st *exec.Stats) string {
	out := ""
	for i := range st.Frags {
		fs := &st.Frags[i]
		out += fmt.Sprintf("%-20s extent=%-8d items=%-10d t=%.6fs\n",
			fs.Name, fs.Extent, fs.Items, m.FragTime(fs))
	}
	out += fmt.Sprintf("%-20s total t=%.6fs\n", "TOTAL", m.Time(st))
	return out
}

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
)

// CPU returns the paper's CPU testbed model (Intel Xeon E3-1270v5,
// Skylake, 3.6 GHz) restricted to the given number of hardware threads.
// The OpenCL CPU backend vectorizes, so each core contributes a few SIMD
// lanes.
func CPU(threads int) *Model {
	return &Model{
		Name:  fmt.Sprintf("skylake-%dt", threads),
		Units: threads,
		Lanes: 4, // AVX2: four 64-bit lanes

		// Superscalar: ~3 scalar ops retire per cycle at 3.6 GHz, which
		// is what makes selection kernels branch- and memory-bound.
		IntOpRate:   10.8e9,
		FloatOpRate: 10.8e9,

		// A single thread streams ~14 GB/s; the socket saturates at 34.
		SeqBandwidth: math.Min(34e9, 14e9*float64(threads)),
		Tiers: []Tier{
			{Size: 32 * kb, Latency: 1.2e-9},  // L1
			{Size: 256 * kb, Latency: 3.5e-9}, // L2
			{Size: 8 * mb, Latency: 12e-9},    // L3
			{Size: math.MaxInt64, Latency: 82e-9},
		},
		MaxOutstanding: 10 * threads,

		Speculative:   true,
		BranchPenalty: 14.0 / 3.6e9, // ~14 cycles at 3.6 GHz

		LocalBytesFast: 256 * kb,
		LaunchOverhead: 2e-6,
	}
}

// GPU returns the paper's GPU testbed model (GeForce GTX TITAN X,
// Maxwell): no speculation, tiny caches hidden by massive memory-level
// parallelism, 300 GB/s of bandwidth, and integer throughput sacrificed
// for float throughput.
func GPU() *Model {
	return &Model{
		Name:  "titan-x",
		Units: 24, // SMs
		Lanes: 128,

		IntOpRate:   0.35e9, // weak integer ALUs (paper §5.3)
		FloatOpRate: 1.1e9,

		SeqBandwidth: 300e9,
		Tiers: []Tier{
			{Size: 2 * mb, Latency: 8e-9}, // L2
			{Size: math.MaxInt64, Latency: 350e-9},
		},
		MaxOutstanding: 8192,

		Speculative:    false,
		DivergeOnGuard: true,

		LocalBytesFast: 8 * kb, // shared-memory sized scratch
		LaunchOverhead: 8e-6,
	}
}
