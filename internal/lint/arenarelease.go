package lint

import (
	"go/ast"
)

// ArenaRelease checks the pooled-memory ownership contract: a value
// acquired from NewArena, RunPooledContext or RunTracedPooledContext owns
// pool memory and must be released in the function that acquired it — via
// a (possibly deferred) Release call — unless ownership visibly escapes
// (the value is returned, stored, or passed along). Leaked arenas are only
// caught dynamically today, by the pool's live-arena accounting.
var ArenaRelease = &Analyzer{
	Name: "arenarelease",
	Doc:  "pooled arenas/results must be Released or escape the acquiring function",
	Run:  runArenaRelease,
}

// arenaAcquirers maps callee names to the index of the returned value that
// owns pool memory.
var arenaAcquirers = map[string]int{
	"NewArena":               0,
	"RunPooledContext":       0,
	"RunTracedPooledContext": 0,
}

func runArenaRelease(p *Pass) error {
	for _, f := range p.Files {
		if p.isTestFile(f) {
			continue
		}
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Rhs) != 1 {
				return true
			}
			call, ok := assign.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			idx, tracked := arenaAcquirers[name]
			if !tracked || idx >= len(assign.Lhs) {
				return true
			}
			owner, ok := assign.Lhs[idx].(*ast.Ident)
			if !ok || owner.Name == "_" {
				return true
			}
			body := enclosingFunc(parents, assign)
			if body == nil {
				return true
			}
			if !releasedOrEscapes(p, parents, body, owner) {
				p.Reportf(owner.Pos(), "%s from %s is never Released and does not escape this function", owner.Name, name)
			}
			return true
		})
	}
	return nil
}

func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// enclosingFunc walks up the parent chain to the body of the innermost
// function declaration or literal containing n.
func enclosingFunc(parents map[ast.Node]ast.Node, n ast.Node) *ast.BlockStmt {
	for cur := n; cur != nil; cur = parents[cur] {
		switch fn := cur.(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// releasedOrEscapes scans the function body for uses of the owner object.
// A use as the receiver of a Release call discharges the obligation; a use
// as a plain value (returned, assigned on, passed as an argument, compared)
// transfers ownership out of sight and is accepted conservatively. Field
// and method access alone does neither.
func releasedOrEscapes(p *Pass, parents map[ast.Node]ast.Node, body *ast.BlockStmt, owner *ast.Ident) bool {
	obj := p.Info.Defs[owner]
	if obj == nil {
		obj = p.Info.Uses[owner]
	}
	if obj == nil {
		return true // unresolvable: stay silent
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id == owner || p.Info.Uses[id] != obj {
			return true
		}
		sel, isSel := parents[id].(*ast.SelectorExpr)
		if !isSel {
			// A bare use: return, argument, assignment, comparison —
			// ownership escapes.
			found = true
			return false
		}
		if sel.Sel.Name == "Release" {
			if call, ok := parents[sel].(*ast.CallExpr); ok && call.Fun == sel {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
