package lint

import (
	"go/ast"
	"go/types"
)

// NoPrintln bans fmt.Print/Printf/Println and their log twins in internal
// packages: daemon output must flow through internal/telemetry so it stays
// structured, leveled, and exportable. This replaces the old grep-based CI
// step — resolving the callee through go/types means strings and comments
// can no longer false-positive, and a dot- or renamed import can no longer
// slip through.
var NoPrintln = &Analyzer{
	Name: "noprintln",
	Doc:  "disallow fmt.Print*/log.Print* in internal packages; use internal/telemetry",
	Run:  runNoPrintln,
}

var bannedPrint = map[string]bool{"Print": true, "Printf": true, "Println": true}

func runNoPrintln(p *Pass) error {
	if !p.internalPackage() {
		return nil
	}
	for _, f := range p.Files {
		if p.isTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !bannedPrint[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "fmt", "log":
				p.Reportf(call.Pos(), "%s.%s writes to the process streams; use internal/telemetry",
					pn.Imported().Path(), sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
