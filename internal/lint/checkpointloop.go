package lint

import (
	"go/ast"
	"strings"
)

// CheckpointLoop enforces the cancellation discipline of the execution
// engine: a loop that drives work — morsel claim loops, the per-item
// fragment interpreter, the statement evaluator — must contain a
// checkpoint call so a canceled context or a sibling worker's failure can
// stop it. The contract is scoped to internal/exec and internal/interp,
// where every such loop already follows the tick/claim idiom.
var CheckpointLoop = &Analyzer{
	Name: "checkpointloop",
	Doc:  "work loops in exec/interp must contain a cancellation checkpoint (tick/tickN/claim/ctx.Err)",
	Run:  runCheckpointLoop,
}

// workCalls name the methods that execute fragment or statement work.
var workCalls = map[string]bool{
	"run": true, "runInterp": true, "runBatch": true, "runMorsels": true, "eval": true,
}

// checkpointCalls name the accepted cancellation checkpoints. claim checks
// the job's abort flag before handing out a ticket; tick/tickN poll the
// context and the shared stop flag; Err is the direct ctx.Err() poll; Load
// covers hand-rolled atomic stop-flag checks.
var checkpointCalls = map[string]bool{
	"tick": true, "tickN": true, "claim": true, "Err": true, "Load": true,
}

func runCheckpointLoop(p *Pass) error {
	path := p.Pkg.Path()
	if !strings.HasSuffix(path, "internal/exec") && !strings.HasSuffix(path, "internal/interp") {
		return nil
	}
	for _, f := range p.Files {
		if p.isTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			if !containsCall(body, workCalls) {
				return true
			}
			if !containsCall(body, checkpointCalls) {
				p.Reportf(n.Pos(), "work loop has no cancellation checkpoint (tick/tickN/claim/ctx.Err)")
			}
			return true
		})
	}
	return nil
}

func containsCall(body *ast.BlockStmt, names map[string]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if names[calleeName(call)] {
			found = true
			return false
		}
		return true
	})
	return found
}
