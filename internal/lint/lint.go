// Package lint is a small, dependency-free analysis framework in the style
// of go/analysis, carrying the repo-specific contract analyzers that
// cmd/voodoo-lint exposes to `go vet -vettool`:
//
//	noprintln       fmt.Print*/log.Print* banned across internal/
//	arenarelease    pooled arenas and results must be released
//	checkpointloop  work loops must contain a cancellation checkpoint
//	atomicptr       sync/atomic fields accessed only through their methods
//
// A finding can be suppressed with a line comment
//
//	//lint:ignore <analyzer> <reason>
//
// placed either on the flagged line or on the line directly above it.
// The stdlib-only design (go/ast + go/types, no x/tools) is what lets the
// linter build and run in environments without network access.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named contract check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass hands an analyzer one type-checked package.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	ignores  map[string]map[int][]string // filename → line → suppressed analyzer names
	report   func(Diagnostic)
}

// Diagnostic is a single finding, positioned for file:line:col printing.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Msg      string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Msg, d.Analyzer)
}

// Reportf records a finding unless an ignore directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(position) {
		return
	}
	p.report(Diagnostic{Pos: position, Analyzer: p.analyzer.Name, Msg: fmt.Sprintf(format, args...)})
}

func (p *Pass) suppressed(pos token.Position) bool {
	lines := p.ignores[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == p.analyzer.Name || name == "*" {
				return true
			}
		}
	}
	return false
}

// Analyzers returns every contract analyzer, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{NoPrintln, ArenaRelease, CheckpointLoop, AtomicPtr}
}

// Run executes the analyzers over one type-checked package and returns the
// findings sorted by position.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	ignores := buildIgnores(fset, files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset: fset, Files: files, Pkg: pkg, Info: info,
			analyzer: a, ignores: ignores,
			report: func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}

// buildIgnores maps //lint:ignore directives to (file, line) so Reportf can
// honor them. The directive names one analyzer (or * for all); anything
// after the name is the required human reason.
func buildIgnores(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	ignores := map[string]map[int][]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				name, _, _ := strings.Cut(strings.TrimSpace(text), " ")
				if name == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				if ignores[pos.Filename] == nil {
					ignores[pos.Filename] = map[int][]string{}
				}
				ignores[pos.Filename][pos.Line] = append(ignores[pos.Filename][pos.Line], name)
			}
		}
	}
	return ignores
}

// isTestFile reports whether the file the node belongs to is a _test.go
// file; the contract analyzers skip those (examples print, leak tests leak).
func (p *Pass) isTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// internalPackage reports whether the package under analysis lives inside
// the repo's internal/ tree (the scope of the style contracts).
func (p *Pass) internalPackage() bool {
	path := p.Pkg.Path()
	return strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/")
}

// parentMap records the immediate parent of every node in a file, letting
// analyzers classify how an expression is used.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
