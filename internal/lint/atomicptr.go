package lint

import (
	"go/ast"
	"go/types"
)

// AtomicPtr guards the atomic-field discipline: a struct field of a
// sync/atomic type (atomic.Value, atomic.Bool, atomic.Pointer[T], ...) is a
// synchronization point and must only be touched through its Load/Store/...
// methods or by taking its address. Reading it as a plain value copies the
// unexported state non-atomically, and reassigning it tears concurrent
// updates — both are data races the race detector only catches when the
// interleaving actually happens.
var AtomicPtr = &Analyzer{
	Name: "atomicptr",
	Doc:  "sync/atomic fields must be accessed via their methods or by address, never copied or reassigned",
	Run:  runAtomicPtr,
}

func runAtomicPtr(p *Pass) error {
	for _, f := range p.Files {
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := p.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal || !isAtomicType(s.Type()) {
				return true
			}
			switch parent := parents[sel].(type) {
			case *ast.SelectorExpr:
				// f.spec.Store(x): method access through the field.
				return true
			case *ast.UnaryExpr:
				if parent.Op.String() == "&" {
					return true
				}
			case *ast.AssignStmt:
				for _, lhs := range parent.Lhs {
					if lhs == sel {
						p.Reportf(sel.Pos(), "reassigning atomic field %s tears concurrent updates; use its Store method", sel.Sel.Name)
						return true
					}
				}
			}
			p.Reportf(sel.Pos(), "copying atomic field %s reads it non-atomically; use its Load method or take its address", sel.Sel.Name)
			return true
		})
	}
	return nil
}

// isAtomicType reports whether t is a named (non-pointer) type declared in
// sync/atomic, including instantiated generics like atomic.Pointer[T].
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}
