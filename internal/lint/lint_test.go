package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// analyze type-checks one synthetic file as package pkgpath and runs the
// given analyzers over it.
func analyze(t *testing.T, pkgpath, src string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(pkgpath, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	diags, err := Run(fset, []*ast.File{f}, pkg, info, analyzers)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return diags
}

func wantFindings(t *testing.T, diags []Diagnostic, want ...string) {
	t.Helper()
	if len(diags) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%v", len(diags), len(want), diags)
	}
	for i, frag := range want {
		if !strings.Contains(diags[i].Msg, frag) {
			t.Errorf("finding %d = %q, want it to mention %q", i, diags[i].Msg, frag)
		}
	}
}

func TestNoPrintln(t *testing.T) {
	src := `package fake

import (
	"fmt"
	flog "log"
)

func output() {
	fmt.Println("boom")
	flog.Printf("renamed import %d", 1)
	_ = fmt.Sprintf("formatting is fine")
	//lint:ignore noprintln the one sanctioned print
	fmt.Print("suppressed")
}
`
	diags := analyze(t, "voodoo/internal/fake", src, []*Analyzer{NoPrintln})
	wantFindings(t, diags, "fmt.Println", "log.Printf")
}

func TestNoPrintlnOutsideInternal(t *testing.T) {
	src := `package main

import "fmt"

func main() { fmt.Println("CLIs may print") }
`
	diags := analyze(t, "voodoo/cmd/fake", src, []*Analyzer{NoPrintln})
	wantFindings(t, diags)
}

const arenaDecls = `
type Arena struct{}

func (a *Arena) Release()        {}
func (a *Arena) Ints(n int) []int64 { return nil }

type Pool struct{}

func (p *Pool) NewArena() *Arena { return &Arena{} }
`

func TestArenaReleaseLeak(t *testing.T) {
	src := `package fake
` + arenaDecls + `
func leak(p *Pool) []int64 {
	a := p.NewArena()
	return a.Ints(4)
}
`
	diags := analyze(t, "voodoo/internal/fake", src, []*Analyzer{ArenaRelease})
	wantFindings(t, diags, "never Released")
}

func TestArenaReleaseClean(t *testing.T) {
	src := `package fake
` + arenaDecls + `
func deferred(p *Pool) []int64 {
	a := p.NewArena()
	defer a.Release()
	return a.Ints(4)
}

func escapes(p *Pool) *Arena {
	a := p.NewArena()
	return a
}

func direct(p *Pool) {
	a := p.NewArena()
	a.Release()
}
`
	diags := analyze(t, "voodoo/internal/fake", src, []*Analyzer{ArenaRelease})
	wantFindings(t, diags)
}

func TestCheckpointLoop(t *testing.T) {
	src := `package exec

type worker struct{}

func (w *worker) run(lo, hi int) error { return nil }
func (w *worker) tick(gid int) error   { return nil }

func unchecked(w *worker, n int) error {
	for i := 0; i < n; i++ {
		if err := w.run(i, i+1); err != nil {
			return err
		}
	}
	return nil
}

func checked(w *worker, n int) error {
	for i := 0; i < n; i++ {
		if err := w.tick(i); err != nil {
			return err
		}
		if err := w.run(i, i+1); err != nil {
			return err
		}
	}
	return nil
}
`
	diags := analyze(t, "voodoo/internal/exec", src, []*Analyzer{CheckpointLoop})
	wantFindings(t, diags, "no cancellation checkpoint")
}

func TestCheckpointLoopOutOfScope(t *testing.T) {
	src := `package fake

type worker struct{}

func (w *worker) run(lo, hi int) error { return nil }

func unchecked(w *worker, n int) {
	for i := 0; i < n; i++ {
		_ = w.run(i, i+1)
	}
}
`
	diags := analyze(t, "voodoo/internal/fake", src, []*Analyzer{CheckpointLoop})
	wantFindings(t, diags)
}

func TestAtomicPtr(t *testing.T) {
	src := `package fake

import "sync/atomic"

type frag struct {
	spec atomic.Value
	flag atomic.Bool
}

func misuse(f *frag, g *frag) {
	_ = f.spec          // copy: non-atomic read
	f.spec = g.spec     // reassign (and a copy on the right)
}

func fine(f *frag) {
	f.spec.Store(1)
	_ = f.flag.Load()
	p := &f.spec
	_ = p
	//lint:ignore atomicptr single-threaded setup
	_ = f.spec
}
`
	diags := analyze(t, "voodoo/internal/fake", src, []*Analyzer{AtomicPtr})
	wantFindings(t, diags, "copying atomic field", "reassigning atomic field", "copying atomic field")
}
