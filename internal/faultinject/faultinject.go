// Package faultinject lets tests inject failures into the execution
// engine without build tags: allocation errors at buffer-allocation time,
// panics or artificial slowness inside fragment loops, and per-fragment
// observation points. Production code always runs with every hook unset;
// the only cost it pays is one atomic load at each instrumentation site,
// and the hot per-item path in the executor amortizes even that behind its
// cancellation-check counter.
//
// Hooks are process-global (the executor has no per-query hook plumbing),
// so tests that set them must Clear them when done and must not run in
// parallel with other hook-setting tests.
package faultinject

import (
	"sync"
	"sync/atomic"
)

// Hooks is the set of injection points the executor consults.
type Hooks struct {
	// Alloc runs before each query-local buffer allocation is charged.
	// Returning a non-nil error makes the allocation fail with it.
	Alloc func(bytes int64) error
	// FragmentStart runs once per fragment execution, before any worker
	// starts. Panics raised here are recovered into *exec.PanicError.
	FragmentStart func(frag string)
	// Item runs inside fragment loops at the executor's cancellation-check
	// cadence (not every work item), with the fragment name and the work
	// item id the worker is on. Panic to simulate a kernel bug mid-loop;
	// sleep to simulate slowness.
	Item func(frag string, gid int)
	// MorselClaim runs each time a scheduler participant claims a morsel
	// of a parallel fragment, before the morsel's work items execute.
	// Panics raised here are recovered into *exec.PanicError exactly like
	// in-loop panics.
	MorselClaim func(frag string, morsel int)
}

var (
	enabled atomic.Bool
	mu      sync.RWMutex
	hooks   Hooks
)

// Set installs h, replacing any previous hooks.
func Set(h Hooks) {
	mu.Lock()
	hooks = h
	mu.Unlock()
	enabled.Store(h.Alloc != nil || h.FragmentStart != nil || h.Item != nil || h.MorselClaim != nil)
}

// Clear removes all hooks.
func Clear() { Set(Hooks{}) }

// Enabled reports whether any hook is installed. Instrumentation sites on
// hot paths gate on this before taking the read lock.
func Enabled() bool { return enabled.Load() }

// Alloc invokes the allocation hook, if any.
func Alloc(bytes int64) error {
	if !enabled.Load() {
		return nil
	}
	mu.RLock()
	h := hooks.Alloc
	mu.RUnlock()
	if h == nil {
		return nil
	}
	return h(bytes)
}

// FragmentStart invokes the fragment-start hook, if any.
func FragmentStart(frag string) {
	if !enabled.Load() {
		return
	}
	mu.RLock()
	h := hooks.FragmentStart
	mu.RUnlock()
	if h != nil {
		h(frag)
	}
}

// Item invokes the in-loop hook, if any.
func Item(frag string, gid int) {
	if !enabled.Load() {
		return
	}
	mu.RLock()
	h := hooks.Item
	mu.RUnlock()
	if h != nil {
		h(frag, gid)
	}
}

// MorselClaim invokes the morsel-claim hook, if any.
func MorselClaim(frag string, morsel int) {
	if !enabled.Load() {
		return
	}
	mu.RLock()
	h := hooks.MorselClaim
	mu.RUnlock()
	if h != nil {
		h(frag, morsel)
	}
}
