package faultinject

import "sync"

// TB is the slice of *testing.T that With needs. Declaring it here (rather
// than importing package testing) keeps the testing runtime out of
// production binaries that link faultinject through the executor.
type TB interface {
	Helper()
	Cleanup(func())
}

// testMu serializes hook-setting tests: hooks are process-global, so two
// tests installing hooks concurrently would corrupt each other's faults.
var testMu sync.Mutex

// With installs h for the duration of the test, serializing against every
// other With caller and clearing the hooks via t.Cleanup — the safe way
// for tests to inject faults:
//
//	faultinject.With(t, faultinject.Hooks{Alloc: failEveryOther})
//
// With blocks until any other test holding the hooks finishes, so tests
// using it may run with t.Parallel without stepping on each other. A test
// that needs to *change* hooks mid-flight calls With once and then plain
// Set for the follow-up installs (the lock is already held).
func With(t TB, h Hooks) {
	t.Helper()
	testMu.Lock()
	Set(h)
	t.Cleanup(func() {
		Clear()
		testMu.Unlock()
	})
}
