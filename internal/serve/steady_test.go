package serve

import (
	"context"
	"fmt"
	"testing"

	"voodoo/internal/compile"
	"voodoo/internal/metrics"
	"voodoo/internal/rel"
	"voodoo/internal/sql"
	"voodoo/internal/vector"
)

const steadySQL = `SELECT l_returnflag, COUNT(*) AS n, SUM(l_quantity) AS q
  FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag`

// TestPlanCacheHit pins the acceptance criterion of the plan cache: the
// second identical request skips parse+plan entirely (compile_ns == 0,
// cached: true) and returns the same rows, and a whitespace variant of
// the SQL shares the cache entry.
func TestPlanCacheHit(t *testing.T) {
	srv := newTestServer(t, Config{})

	code, first, body := postQuery(t, srv.URL, steadySQL)
	if code != 200 {
		t.Fatalf("first request: status %d: %s", code, body)
	}
	if first.Stats.Cached {
		t.Fatalf("first request reported cached=true")
	}
	if first.Stats.CompileNS <= 0 {
		t.Fatalf("first request reported compile_ns=%d, want > 0", first.Stats.CompileNS)
	}

	code, second, body := postQuery(t, srv.URL, steadySQL)
	if code != 200 {
		t.Fatalf("second request: status %d: %s", code, body)
	}
	if !second.Stats.Cached {
		t.Fatalf("second identical request not served from the plan cache: %s", body)
	}
	if second.Stats.CompileNS != 0 {
		t.Fatalf("cache hit reported compile_ns=%d, want 0", second.Stats.CompileNS)
	}
	if len(second.Rows) != len(first.Rows) || fmt.Sprint(second.Rows) != fmt.Sprint(first.Rows) {
		t.Fatalf("cached run diverges:\nfirst:  %v\nsecond: %v", first.Rows, second.Rows)
	}

	// A formatting variant of the same query shares the entry.
	variant := "SELECT   l_returnflag,\n COUNT(*) AS n, SUM(l_quantity) AS q FROM lineitem\tGROUP BY l_returnflag ORDER BY l_returnflag"
	code, third, body := postQuery(t, srv.URL, variant)
	if code != 200 {
		t.Fatalf("variant request: status %d: %s", code, body)
	}
	if !third.Stats.Cached {
		t.Fatalf("whitespace variant missed the cache: %s", body)
	}
}

// TestPlanCacheLRU exercises the cache data structure directly: eviction
// order, recency refresh, and the disabled (nil) cache.
func TestPlanCacheLRU(t *testing.T) {
	reg := metrics.NewRegistry()
	c := newPlanCache(2, reg)
	prA, prB, prC := &rel.Prepared{}, &rel.Prepared{}, &rel.Prepared{}

	c.put(testCat, "a", prA)
	c.put(testCat, "b", prB)
	if _, ok := c.get(testCat, "a"); !ok {
		t.Fatal("a missing after insert")
	}
	// a was just used, so inserting c must evict b.
	c.put(testCat, "c", prC)
	if _, ok := c.get(testCat, "b"); ok {
		t.Fatal("b survived eviction; LRU order ignores recency")
	}
	if got, ok := c.get(testCat, "a"); !ok || got != prA {
		t.Fatal("a lost or swapped")
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.len())
	}
	// A different catalog pointer is a different key space.
	if _, ok := c.get(nil, "a"); ok {
		t.Fatal("catalog identity ignored in the cache key")
	}

	var disabled *planCache
	if _, ok := disabled.get(testCat, "a"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	disabled.put(testCat, "a", prA) // must not panic
	if disabled.len() != 0 {
		t.Fatal("disabled cache has entries")
	}
}

// TestSteadyStateAllocDrop is the tentpole's acceptance test: a repeated
// query on the warm path (cached prepared plan + pooled buffers) must
// allocate at least 80% less than the cold path (parse, plan, compile,
// run on the heap — what every request paid before this change), with
// bit-identical rows.
func TestSteadyStateAllocDrop(t *testing.T) {
	ctx := context.Background()
	// Single-threaded execution: parallel workers allocate on their own
	// goroutines at unpredictable points, which would blur allocs/op.
	opt := compile.Options{Workers: 1}

	cold := func() *rel.Result {
		stmt, err := sql.Parse(steadySQL)
		if err != nil {
			t.Fatal(err)
		}
		q, err := sql.Plan(stmt, testCat)
		if err != nil {
			t.Fatal(err)
		}
		e := &rel.Engine{Cat: testCat, Opt: opt}
		res, _, err := e.RunContext(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	pool := vector.NewPool(0)
	warmEngine := &rel.Engine{Cat: testCat, Opt: opt, Pool: pool}
	stmt, err := sql.Parse(steadySQL)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sql.Plan(stmt, testCat)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := warmEngine.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	warm := func() *rel.Result {
		res, _, err := warmEngine.RunPrepared(ctx, pr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Bit-identical results first (and this warms the pool's free lists).
	want, got := cold(), warm()
	if fmt.Sprint(want.Rows) != fmt.Sprint(got.Rows) {
		t.Fatalf("pooled steady-state rows diverge:\ncold: %v\nwarm: %v", want.Rows, got.Rows)
	}

	coldAllocs := testing.AllocsPerRun(5, func() { cold() })
	warmAllocs := testing.AllocsPerRun(5, func() { warm() })
	t.Logf("cold %.0f allocs/op, warm %.0f allocs/op (%.1f%% drop)",
		coldAllocs, warmAllocs, 100*(1-warmAllocs/coldAllocs))
	if warmAllocs > coldAllocs/5 {
		t.Errorf("steady state allocates %.0f/op vs %.0f/op cold — less than the required 80%% drop",
			warmAllocs, coldAllocs)
	}
}

// BenchmarkSteadyStateQuery is the repeated-query benchmark of the issue:
// same SQL, warm plan cache, pooled buffers. Run with -benchmem.
func BenchmarkSteadyStateQuery(b *testing.B) {
	ctx := context.Background()
	pool := vector.NewPool(0)
	e := &rel.Engine{Cat: testCat, Opt: compile.Options{Workers: 1}, Pool: pool}
	stmt, err := sql.Parse(steadySQL)
	if err != nil {
		b.Fatal(err)
	}
	q, err := sql.Plan(stmt, testCat)
	if err != nil {
		b.Fatal(err)
	}
	pr, err := e.Prepare(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.RunPrepared(ctx, pr); err != nil {
			b.Fatal(err)
		}
	}
}
