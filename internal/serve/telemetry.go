package serve

import (
	"context"
	"log/slog"
	"net/http"
	"time"

	"voodoo/internal/telemetry"
	"voodoo/internal/trace"
)

// queryTelemetry is one request's telemetry identity and timings. It is
// created before the first admission gate so even refused requests carry
// a query id, and finish fans the completed record out to every sink —
// event log, span store, SLO tracker, structured log — exactly once.
type queryTelemetry struct {
	s   *Server
	qid telemetry.QueryID
	sql string

	arrived  time.Time
	deadline time.Duration // remaining budget at arrival (0 = none)

	queueWait  time.Duration
	planLookup time.Duration
	compile    time.Duration
	exec       time.Duration
	cached     bool
	rows       int

	done bool
}

// beginTelemetry resolves the request's identity: an inbound W3C
// traceparent is adopted (same trace id, caller's span as parent), any
// other request gets a freshly minted id. Both the traceparent and the
// bare query id echo on the response before any body is written, so a
// client can always correlate its request with the server's telemetry.
func (s *Server) beginTelemetry(w http.ResponseWriter, r *http.Request) *queryTelemetry {
	qid, ok := telemetry.ParseTraceparent(r.Header.Get("traceparent"))
	if !ok {
		qid = telemetry.MintQueryID()
	}
	h := w.Header()
	h.Set("Traceparent", qid.Traceparent())
	h.Set("X-Voodoo-Query-Id", qid.String())
	return &queryTelemetry{s: s, qid: qid, arrived: time.Now()}
}

// context threads the query id — and, when the process logger is live, a
// logger pre-bound to it — into ctx for the engine layers. The Enabled
// guard keeps the disabled path allocation-free.
func (qt *queryTelemetry) context(ctx context.Context) context.Context {
	ctx = telemetry.WithQueryID(ctx, qt.qid)
	if lg := telemetry.Default(); lg.Enabled(ctx, slog.LevelError) {
		ctx = telemetry.WithLogger(ctx, lg.With("query_id", qt.qid.String()))
	}
	return ctx
}

// finish records the request's outcome everywhere it is observable:
// the SLO budget, the JSONL event log (which applies its own sampling),
// the span store, and the process log. kind is the error-kind label
// ("" on success); err may be nil.
func (qt *queryTelemetry) finish(status int, kind string, err error, traces []*trace.Trace) {
	if qt.done {
		return
	}
	qt.done = true
	s := qt.s
	wall := time.Since(qt.arrived)

	// Only server-side failures burn error budget at any latency; client
	// errors and cancellations count as good when they return in time.
	s.slos.Observe("query", wall, status >= 500)

	e := telemetry.Event{
		Time: qt.arrived, QueryID: qt.qid.String(), SQL: qt.sql,
		Status: status, Kind: kind,
		WallNS: wall.Nanoseconds(), QueueNS: qt.queueWait.Nanoseconds(),
		PlanLookupNS: qt.planLookup.Nanoseconds(), CompileNS: qt.compile.Nanoseconds(),
		ExecNS: qt.exec.Nanoseconds(), Rows: qt.rows, Cached: qt.cached,
		DeadlineNS: qt.deadline.Nanoseconds(),
	}
	if err != nil {
		e.Error = err.Error()
	}
	s.events.Emit(e)

	if s.spans != nil {
		m := telemetry.QueryMeta{
			ID: qt.qid, SQL: qt.sql, Start: qt.arrived, End: qt.arrived.Add(wall),
			QueueWait: qt.queueWait, PlanLookup: qt.planLookup,
			Compile: qt.compile, Cached: qt.cached,
		}
		if err != nil {
			m.Status = kind + ": " + err.Error()
		}
		s.spans.Put(telemetry.BuildSpans(m, traces))
	}

	lg := telemetry.Default()
	lvl := slog.LevelInfo
	if status >= 500 {
		lvl = slog.LevelWarn
	}
	if lg.Enabled(context.Background(), lvl) {
		attrs := []slog.Attr{
			slog.String("query_id", qt.qid.String()),
			slog.Int("status", status),
			slog.Duration("wall", wall),
			slog.Duration("queue_wait", qt.queueWait),
			slog.Int("rows", qt.rows),
			slog.Bool("cached_plan", qt.cached),
		}
		if qt.sql != "" {
			attrs = append(attrs, slog.String("sql", qt.sql))
		}
		if kind != "" {
			attrs = append(attrs, slog.String("kind", kind))
		}
		if err != nil {
			attrs = append(attrs, slog.String("error", err.Error()))
		}
		lg.LogAttrs(context.Background(), lvl, "query", attrs...)
	}
}
