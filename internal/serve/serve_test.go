package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"voodoo/internal/diag"
	"voodoo/internal/exec"
	"voodoo/internal/faultinject"
	"voodoo/internal/metrics"
	"voodoo/internal/tpch"
)

var testCat = tpch.Generate(tpch.Config{SF: 0.01, Seed: 42})

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	cfg.Cat = testCat
	if cfg.Registry == nil {
		cfg.Registry = metrics.Default
	}
	srv := httptest.NewServer(New(cfg).Mux())
	t.Cleanup(srv.Close)
	return srv
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func postQuery(t *testing.T, base, sqlText string) (int, queryResponse, string) {
	t.Helper()
	resp, err := http.Post(base+"/query", "text/plain", strings.NewReader(sqlText))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var qr queryResponse
	if resp.StatusCode == 200 {
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatalf("bad response JSON: %v\n%s", err, body)
		}
	}
	return resp.StatusCode, qr, string(body)
}

// TestServeConcurrentQueries is the acceptance scenario: concurrent
// TPC-H SQL traffic through the daemon, then a /metrics scrape showing
// the instrumentation moved.
func TestServeConcurrentQueries(t *testing.T) {
	srv := newTestServer(t, Config{MaxConcurrent: 2, Timeout: 30 * time.Second})

	queries := []string{
		`SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem
		   WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
		     AND l_discount BETWEEN 0.0499 AND 0.0701 AND l_quantity < 24`,
		`SELECT l_returnflag, COUNT(*) AS n, SUM(l_quantity) AS q
		   FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag`,
		`SELECT COUNT(*) AS n FROM lineitem WHERE l_shipmode IN ('AIR', 'RAIL')`,
	}
	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan string, len(queries)*rounds)
	for r := 0; r < rounds; r++ {
		for _, q := range queries {
			wg.Add(1)
			go func(q string) {
				defer wg.Done()
				code, qr, body := postQuery(t, srv.URL, q)
				if code != 200 {
					errs <- fmt.Sprintf("status %d: %s", code, body)
					return
				}
				if len(qr.Rows) == 0 || qr.Stats.ExecNS <= 0 {
					errs <- fmt.Sprintf("empty result or missing stats: %s", body)
				}
			}(q)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// A prebuilt TPC-H query by number, including dictionary decoding.
	code, qr, body := postQuery(t, srv.URL, "")
	if code != 400 {
		t.Errorf("empty query: status %d, want 400: %s", code, body)
	}
	code, _ = getBody(t, srv.URL+"/query?q=6")
	if code != 200 {
		t.Errorf("TPC-H q=6: status %d", code)
	}
	code, bodyStr := getBody(t, srv.URL+"/query?sql="+
		"SELECT+l_returnflag,+COUNT(*)+AS+n+FROM+lineitem+GROUP+BY+l_returnflag")
	if code != 200 || !strings.Contains(bodyStr, `"l_returnflag": "A"`) {
		t.Errorf("dictionary column not decoded (status %d): %.300s", code, bodyStr)
	}
	_ = qr

	// The scrape: exposition format with the end-to-end instrumentation.
	code, m := getBody(t, srv.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE voodoo_queries_total counter",
		"# TYPE voodoo_http_requests_total counter",
		`voodoo_http_requests_total{code="200"}`,
		"# TYPE voodoo_http_queue_seconds histogram",
		"voodoo_http_queue_seconds_bucket{le=\"+Inf\"}",
		"# TYPE voodoo_sql_compile_seconds histogram",
		"# TYPE voodoo_query_exec_seconds histogram",
		"# TYPE voodoo_query_wall_seconds histogram",
		"# TYPE voodoo_rows_returned_total counter",
		"# TYPE voodoo_active_queries gauge",
		"# TYPE voodoo_resource_exhausted_total counter",
		`voodoo_resource_exhausted_total{kind="bytes"}`,
		"# TYPE go_goroutines gauge",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServeLiveProgressAndCancel holds a query mid-fragment with a fault
// injection hook, watches it appear in /queries with live per-step
// progress, cancels it through the HTTP action, and finds it in the slow
// ring with its error. Must not run in parallel: faultinject hooks are
// process-global.
func TestServeLiveProgressAndCancel(t *testing.T) {
	srv := newTestServer(t, Config{MaxConcurrent: 2, Timeout: 30 * time.Second, SlowQueries: 4})

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	faultinject.With(t, faultinject.Hooks{Item: func(frag string, gid int) {
		once.Do(func() { close(entered) })
		<-release
	}})

	done := make(chan struct {
		code int
		body string
	}, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/query", "text/plain",
			strings.NewReader(`SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity < 50`))
		if err != nil {
			done <- struct {
				code int
				body string
			}{0, err.Error()}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		done <- struct {
			code int
			body string
		}{resp.StatusCode, string(b)}
	}()

	<-entered // the query is now blocked inside a fragment loop

	// The live view must show the in-flight query with progress: steps
	// already completed (input binds) and a current step name.
	var active []diag.QueryInfo
	deadlineAt := time.Now().Add(5 * time.Second)
	for {
		_, body := getBody(t, srv.URL+"/queries")
		var resp struct {
			Active []diag.QueryInfo `json:"active"`
		}
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatalf("bad /queries JSON: %v", err)
		}
		if len(resp.Active) == 1 && resp.Active[0].StepsDone > 0 {
			active = resp.Active
			break
		}
		if time.Now().After(deadlineAt) {
			t.Fatalf("in-flight query never showed progress: %s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	aq := active[0]
	if !strings.Contains(aq.SQL, "COUNT(*)") || aq.LastStep == "" || aq.ElapsedNS <= 0 {
		t.Errorf("bad live entry: %+v", aq)
	}

	// Cancel via the advertised action, then let the workers resume so
	// they hit their next cancellation checkpoint.
	resp, err := http.Post(srv.URL+fmt.Sprintf("/queries/cancel?id=%d", aq.ID), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	close(release)

	r := <-done
	if r.code != StatusClientClosedRequest {
		t.Fatalf("cancelled query: status %d, want %d: %s", r.code, StatusClientClosedRequest, r.body)
	}
	if !strings.Contains(r.body, `"kind": "canceled"`) {
		t.Errorf("error kind not canceled: %s", r.body)
	}

	// Gone from the active view, retained in the slow ring with its error
	// and full trace.
	_, body := getBody(t, srv.URL+"/queries")
	var after struct {
		Active []diag.QueryInfo `json:"active"`
		Slow   []diag.SlowQuery `json:"slow"`
	}
	if err := json.Unmarshal([]byte(body), &after); err != nil {
		t.Fatal(err)
	}
	if len(after.Active) != 0 {
		t.Errorf("cancelled query still active: %s", body)
	}
	foundSlow := false
	for _, sq := range after.Slow {
		if sq.ID == aq.ID && sq.Error != "" {
			foundSlow = true
		}
	}
	if !foundSlow {
		t.Errorf("cancelled query not in slow ring: %s", body)
	}
}

// TestServeGovernorLimits: a request over the memory budget fails with
// 429 and moves the by-kind degradation counter.
func TestServeGovernorLimits(t *testing.T) {
	reg := metrics.Default
	before := readExhausted(t, reg, `kind="bytes"`)
	srv := newTestServer(t, Config{Limits: exec.Limits{MaxBytes: 1024}, Timeout: 10 * time.Second})
	code, _, body := postQuery(t, srv.URL, `SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity < 50`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", code, body)
	}
	if !strings.Contains(body, `"kind": "resource"`) {
		t.Errorf("error kind not resource: %s", body)
	}
	if after := readExhausted(t, reg, `kind="bytes"`); after <= before {
		t.Errorf("voodoo_resource_exhausted_total{kind=bytes} did not move: %g -> %g", before, after)
	}
}

// readExhausted scrapes reg for the voodoo_resource_exhausted_total
// sample with the given label.
func readExhausted(t *testing.T, reg *metrics.Registry, label string) float64 {
	t.Helper()
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, "voodoo_resource_exhausted_total{"+label+"}") {
			var v float64
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &v)
			return v
		}
	}
	return 0
}

// TestServeIndex: the root page documents the surface.
func TestServeIndex(t *testing.T) {
	srv := newTestServer(t, Config{})
	code, body := getBody(t, srv.URL+"/")
	if code != 200 || !strings.Contains(body, "POST /query") {
		t.Errorf("index page wrong (status %d): %.200s", code, body)
	}
	if code, _ := getBody(t, srv.URL+"/nope"); code != 404 {
		t.Errorf("unknown path: status %d, want 404", code)
	}
}
