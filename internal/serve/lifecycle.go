package serve

import (
	"context"
	"fmt"
	"time"

	"voodoo/internal/diag"
	"voodoo/internal/metrics"
	"voodoo/internal/storage"
	"voodoo/internal/vector"
)

// This file is the server's lifecycle: the catalog it serves can be
// swapped atomically while queries run (SIGHUP hot reload), the process
// can drain gracefully (SIGTERM), and /healthz reports where in that life
// the server is — ready, degraded (some tables quarantined by storage
// integrity checks), or draining.

// Catalog returns the catalog currently being served. It changes across
// SwapCatalog calls; each request pins the pointer it loaded for its
// whole lifetime, so a swap never mixes two catalogs inside one query.
func (s *Server) Catalog() *storage.Catalog { return s.cat.Load() }

// SwapCatalog atomically replaces the served catalog — the hot-reload
// path. In-flight queries finish against the catalog they started with;
// new requests see the replacement immediately. Plan-cache entries
// prepared against the replaced catalog are evicted eagerly (they could
// never hit again, but would otherwise pin the old catalog's column
// storage until LRU pressure cleared them), and the reload counter moves.
func (s *Server) SwapCatalog(cat *storage.Catalog) {
	if cat == nil {
		return
	}
	old := s.cat.Swap(cat)
	if old == cat {
		return
	}
	s.cache.evictCatalog(old)
	s.mReloads.Inc()
}

// StartDraining flips the server into its terminal draining state: new
// queries are refused with 503 + Retry-After, and /healthz answers 503
// "draining" so load balancers stop routing here. In-flight queries are
// unaffected. Draining is one-way; call it when shutdown has begun.
func (s *Server) StartDraining() { s.draining.Store(true) }

// Draining reports whether StartDraining has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the server: it stops admitting queries, waits for the
// in-flight ones to finish, and — if ctx expires first — cancels them
// through the per-request context plumbing and waits (bounded) for the
// cancellations to unwind. A nil return means the server is idle.
func (s *Server) Shutdown(ctx context.Context) error {
	s.StartDraining()
	if s.awaitIdle(ctx) == nil {
		return nil
	}
	// The polite wait expired: cancel every in-flight query at its next
	// cooperative checkpoint and give the unwinding a moment.
	s.baseCancel()
	forceCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.awaitIdle(forceCtx); err != nil {
		return fmt.Errorf("serve: %d queries still in flight after forced cancellation", s.inflight.Load())
	}
	return nil
}

// awaitIdle polls until no request is anywhere inside handleQuery.
func (s *Server) awaitIdle(ctx context.Context) error {
	for {
		if s.inflight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Health snapshots the server's lifecycle state for /healthz, including
// the binary's build identity and — when objectives are configured — the
// per-route error-budget state.
func (s *Server) Health() diag.Health {
	cat := s.cat.Load()
	h := diag.Health{
		State: "ready", ActiveQueries: s.qreg.ActiveCount(),
		Build: metrics.Build(), SLO: s.slos.Snapshot(),
	}
	for _, name := range cat.Quarantined() {
		h.State = "degraded"
		h.Quarantined = append(h.Quarantined, diag.QuarantinedTable{
			Table: name, Error: cat.QuarantineErr(name).Error(),
		})
	}
	if s.draining.Load() {
		h.State = "draining"
	}
	return h
}

// PoolStats snapshots the server's buffer pool (zero when pooling is
// disabled). The chaos harness gates on LiveArenas == 0 after a drain.
func (s *Server) PoolStats() vector.PoolStats {
	if s.pool == nil {
		return vector.PoolStats{}
	}
	return s.pool.Stats()
}
