package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"voodoo/internal/faultinject"
	"voodoo/internal/storage"
	"voodoo/internal/tpch"
)

// newLifecycleServer builds a Server plus its httptest frontend, exposing
// the *Server for white-box lifecycle poking.
func newLifecycleServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Cat == nil {
		cfg.Cat = testCat
	}
	s := New(cfg)
	srv := httptest.NewServer(s.Mux())
	t.Cleanup(srv.Close)
	return s, srv
}

// TestCatalogReloadEvictsPlanCache is the regression test for stale
// plan-cache entries surviving a hot reload: before the fix they lingered
// until LRU pressure, pinning the replaced catalog's memory.
func TestCatalogReloadEvictsPlanCache(t *testing.T) {
	s, srv := newLifecycleServer(t, Config{})

	code, first, body := postQuery(t, srv.URL, steadySQL)
	if code != 200 {
		t.Fatalf("first request: status %d: %s", code, body)
	}
	if s.cache.len() != 1 {
		t.Fatalf("cache holds %d plans, want 1", s.cache.len())
	}

	// Hot reload: same data (same generator seed), new catalog identity.
	next := tpch.Generate(tpch.Config{SF: 0.01, Seed: 42})
	s.SwapCatalog(next)

	if s.cache.len() != 0 {
		t.Fatalf("stale plan-cache entries survived the reload: %d", s.cache.len())
	}
	if got := s.Catalog(); got != next {
		t.Fatalf("Catalog() did not swap")
	}

	// The same SQL recompiles against the new catalog and still answers
	// identically (same seed ⇒ same data).
	code, second, body := postQuery(t, srv.URL, steadySQL)
	if code != 200 {
		t.Fatalf("post-reload request: status %d: %s", code, body)
	}
	if second.Stats.Cached {
		t.Fatalf("post-reload request claims a cache hit against the old catalog")
	}
	if len(second.Rows) != len(first.Rows) {
		t.Fatalf("rows changed across reload of identical data: %d vs %d", len(second.Rows), len(first.Rows))
	}
	// Swapping the same catalog again is a no-op (no reload counted).
	s.SwapCatalog(next)

	// And a second identical request hits the fresh entry.
	code, third, _ := postQuery(t, srv.URL, steadySQL)
	if code != 200 || !third.Stats.Cached {
		t.Fatalf("cache did not rebuild after reload (status %d, cached %v)", code, third.Stats.Cached)
	}
}

// TestDrainingRefusesNewQueries: after StartDraining, new queries answer
// 503 shed-draining with a Retry-After, and /healthz flips to 503
// "draining".
func TestDrainingRefusesNewQueries(t *testing.T) {
	s, srv := newLifecycleServer(t, Config{})
	s.StartDraining()

	resp, err := http.Post(srv.URL+"/query", "text/plain", strings.NewReader(steadySQL))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server answered %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("shed response missing Retry-After")
	}

	code, body := getBody(t, srv.URL+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"state": "draining"`) {
		t.Errorf("healthz while draining: status %d body %s", code, body)
	}
}

// TestShutdownCancelsStuckQueries: a Shutdown whose polite wait expires
// cancels in-flight queries through the base context and still drains.
func TestShutdownCancelsStuckQueries(t *testing.T) {
	s, srv := newLifecycleServer(t, Config{MaxConcurrent: 2})

	entered := make(chan struct{})
	release := make(chan struct{})
	var enterOnce, releaseOnce sync.Once
	faultinject.With(t, faultinject.Hooks{Item: func(frag string, gid int) {
		enterOnce.Do(func() { close(entered) })
		select {
		case <-release:
		case <-time.After(10 * time.Second):
		}
	}})
	defer releaseOnce.Do(func() { close(release) })

	done := make(chan int, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/query", "text/plain",
			strings.NewReader(`SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity < 50`))
		if err != nil {
			done <- 0
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	<-entered

	// The hook keeps the worker pinned through the whole polite window, so
	// Shutdown must escalate to the forced cancel. Only once the base
	// context is down do we let the hook return — the worker then hits its
	// next checkpoint, sees the cancelled context, and aborts.
	go func() {
		<-s.baseCtx.Done()
		releaseOnce.Do(func() { close(release) })
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := <-done; got == 200 {
		t.Fatalf("cancelled query reported success")
	}
	if n := s.QueryRegistry().ActiveCount(); n != 0 {
		t.Fatalf("%d queries still in the registry after drain", n)
	}
	if live := s.PoolStats().LiveArenas; live != 0 {
		t.Fatalf("%d arenas leaked across the drain", live)
	}
}

// TestMemoryPressureSheds: above the heap watermark, queries are refused
// with 503 + Retry-After and the shed counter moves.
func TestMemoryPressureSheds(t *testing.T) {
	s, srv := newLifecycleServer(t, Config{MemHighWater: 1})
	heap := int64(0)
	s.memShed.sample = func() int64 { return heap }

	code, _, _ := postQuery(t, srv.URL, steadySQL)
	if code != 200 {
		t.Fatalf("below watermark: status %d", code)
	}

	heap = 2
	s.memShed.lastAt.Store(0) // expire the cached sample
	resp, err := http.Post(srv.URL+"/query", "text/plain", strings.NewReader(steadySQL))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("above watermark: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("memory shed missing Retry-After")
	}

	heap = 0
	s.memShed.lastAt.Store(0)
	if code, _, _ := postQuery(t, srv.URL, steadySQL); code != 200 {
		t.Fatalf("after pressure receded: status %d", code)
	}
}

// TestDeadlineAwareAdmission: when the expected queue wait already
// exceeds the request's deadline budget and no slot is free, the request
// is refused immediately instead of queueing to certain death.
func TestDeadlineAwareAdmission(t *testing.T) {
	s, srv := newLifecycleServer(t, Config{MaxConcurrent: 1, Timeout: 2 * time.Second})

	// Occupy the only slot and make the queue look hopeless.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	s.queueEWMA.Store(int64(time.Hour))

	start := time.Now()
	resp, err := http.Post(srv.URL+"/query", "text/plain", strings.NewReader(steadySQL))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("doomed request: status %d, want 503", resp.StatusCode)
	}
	// An immediate refusal, not a 2s queue timeout.
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("doomed request queued for %v before refusal", elapsed)
	}

	// With a free slot the same hopeless estimate still admits.
	<-s.sem
	code, _, _ := postQuery(t, srv.URL, steadySQL)
	s.sem <- struct{}{} // restore for the deferred drain
	if code != 200 {
		t.Fatalf("free slot with stale estimate: status %d", code)
	}
}

// TestDegradedModeServesHealthyTables: a catalog with a quarantined table
// serves the healthy remainder, reports degraded health, and fails
// queries touching the quarantined table fast with 503.
func TestDegradedModeServesHealthyTables(t *testing.T) {
	cat := tpch.Generate(tpch.Config{SF: 0.01, Seed: 42})
	cat.Quarantine("orders_gone", &storage.CorruptError{
		Path: "orders_gone.vdb", Column: "okey", Offset: 128, Reason: "checksum mismatch",
	})
	_, srv := newLifecycleServer(t, Config{Cat: cat})

	code, body := getBody(t, srv.URL+"/healthz")
	if code != 200 || !strings.Contains(body, `"state": "degraded"`) || !strings.Contains(body, "orders_gone") {
		t.Errorf("degraded healthz: status %d body %s", code, body)
	}

	// Healthy tables serve normally.
	if code, _, body := postQuery(t, srv.URL, steadySQL); code != 200 {
		t.Fatalf("healthy table in degraded mode: status %d: %s", code, body)
	}

	// Queries touching the quarantined table fail fast with the typed 503.
	resp, err := http.Post(srv.URL+"/query", "text/plain",
		strings.NewReader(`SELECT COUNT(*) AS n FROM orders_gone`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("quarantined table query: status %d, want 503", resp.StatusCode)
	}
}
