package serve

import (
	"sync/atomic"
	"time"

	"voodoo/internal/metrics"
)

// Load shedding: two admission gates that refuse work the process could
// only fail at, both answering 503 with a Retry-After so well-behaved
// clients back off instead of hammering a struggling daemon.
//
//   - Memory pressure: above a configured live-heap watermark every new
//     query is shed. The governor already bounds a single query's
//     allocations; the watermark bounds their sum — queries are refused
//     before they can push the process toward the OOM killer.
//   - Doomed deadlines: admission keeps an exponentially-weighted moving
//     average of measured queue waits. A request whose remaining deadline
//     budget is smaller than the current expected wait is refused
//     immediately (unless a slot happens to be free right now) — queueing
//     it would burn a semaphore turn on work guaranteed to time out.

// memShedder samples the live heap at most once per samplePeriod and
// compares it against the high watermark. Sampling is cheap (~hundreds of
// nanoseconds) but not free, so concurrent requests share one cached
// reading.
type memShedder struct {
	high    int64
	sample  func() int64 // overridable in tests
	lastAt  atomic.Int64 // unix nanos of the cached sample
	lastVal atomic.Int64
}

const memSamplePeriod = 100 * time.Millisecond

func newMemShedder(highWater int64) *memShedder {
	if highWater <= 0 {
		return nil
	}
	return &memShedder{
		high:   highWater,
		sample: func() int64 { return int64(metrics.RuntimeSample("/memory/classes/heap/objects:bytes")) },
	}
}

// over reports whether the live heap exceeds the watermark. Nil-safe
// (shedding disabled).
func (m *memShedder) over() bool {
	if m == nil {
		return false
	}
	now := time.Now().UnixNano()
	last := m.lastAt.Load()
	if now-last > int64(memSamplePeriod) && m.lastAt.CompareAndSwap(last, now) {
		m.lastVal.Store(m.sample())
	}
	return m.lastVal.Load() > m.high
}

// noteQueueWait folds one measured admission wait into the EWMA the
// deadline gate consults. Racing updates may drop a sample; the estimate
// is advisory, so that is fine.
func (s *Server) noteQueueWait(wait time.Duration) {
	old := s.queueEWMA.Load()
	if old == 0 {
		s.queueEWMA.Store(int64(wait))
		return
	}
	s.queueEWMA.Store((3*old + int64(wait)) / 4)
}

// expectedQueueWait is the current queue-wait estimate.
func (s *Server) expectedQueueWait() time.Duration {
	return time.Duration(s.queueEWMA.Load())
}
