package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"voodoo/internal/metrics"
	"voodoo/internal/telemetry"
	"voodoo/internal/telemetry/slo"
)

// syncBuffer is a locked bytes.Buffer standing in for the event-log
// file.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestQueryIDCorrelation is the end-to-end correlation walk: a request
// arrives with a W3C traceparent, and the same query id must appear in
// the response headers and stats, the JSONL event log, the /debug/spans
// tree (with the caller's span as the root's parent), and the
// slow-query ring entry.
func TestQueryIDCorrelation(t *testing.T) {
	const (
		traceID    = "4bf92f3577b34da6a3ce929d0e0e4736"
		parentSpan = "00f067aa0ba902b7"
	)
	var buf syncBuffer
	events := telemetry.NewEventLog(telemetry.EventLogConfig{
		W: &buf, SampleRate: 1.0, Registry: testRegistry(t),
	})
	s := New(Config{
		Cat: testCat, Timeout: 30 * time.Second,
		Registry: testRegistry(t), Events: events,
		SLO: []slo.Objective{{Route: "query", Latency: 10 * time.Second, Target: 0.99}},
	})
	srv := httptest.NewServer(s.Mux())
	defer srv.Close()

	req, _ := http.NewRequest("POST", srv.URL+"/query",
		strings.NewReader("SELECT COUNT(*) AS n FROM lineitem"))
	req.Header.Set("traceparent", "00-"+traceID+"-"+parentSpan+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	// 1. Response headers echo the identity: the inbound trace id is
	// kept, the server's own span replaces the caller's.
	if got := resp.Header.Get("X-Voodoo-Query-Id"); got != traceID {
		t.Errorf("X-Voodoo-Query-Id = %q, want %q", got, traceID)
	}
	tp := resp.Header.Get("Traceparent")
	if !strings.HasPrefix(tp, "00-"+traceID+"-") || strings.Contains(tp, parentSpan) {
		t.Errorf("response traceparent %q should keep trace id %s with a fresh span", tp, traceID)
	}

	// 2. The response stats carry the same id.
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("bad response: %v", err)
	}
	if qr.Stats.QueryID != traceID {
		t.Errorf("stats.query_id = %q, want %q", qr.Stats.QueryID, traceID)
	}

	// 3. The JSONL event log has the event (rate 1.0) under the same id.
	if err := events.Close(); err != nil {
		t.Fatal(err)
	}
	var ev telemetry.Event
	if err := json.Unmarshal([]byte(strings.SplitN(buf.String(), "\n", 2)[0]), &ev); err != nil {
		t.Fatalf("bad event line: %v\n%s", err, buf.String())
	}
	if ev.QueryID != traceID || ev.Status != 200 || ev.WallNS <= 0 || ev.Rows != 1 {
		t.Errorf("event not correlated: %+v", ev)
	}
	if ev.DeadlineNS <= 0 {
		t.Errorf("event missing the deadline budget: %+v", ev)
	}

	// 4. /debug/spans returns the span tree: root span parented on the
	// caller's span, with admission/plan/exec children under it.
	code, spansBody := getBody(t, srv.URL+"/debug/spans?query_id="+traceID)
	if code != 200 {
		t.Fatalf("/debug/spans status %d: %s", code, spansBody)
	}
	var qs telemetry.QuerySpans
	if err := json.Unmarshal([]byte(spansBody), &qs); err != nil {
		t.Fatal(err)
	}
	if qs.QueryID != traceID || len(qs.Spans) < 2 {
		t.Fatalf("span tree incomplete: %s", spansBody)
	}
	root := qs.Spans[0]
	if root.Name != "query" || root.TraceID != traceID || root.ParentSpanID != parentSpan {
		t.Errorf("root span not linked to the caller: %+v", root)
	}
	var sawExec bool
	for _, sp := range qs.Spans[1:] {
		if sp.ParentSpanID == "" {
			t.Errorf("orphan span %+v", sp)
		}
		if sp.Name == "exec" {
			sawExec = true
		}
	}
	if !sawExec {
		t.Errorf("no exec phase span in %s", spansBody)
	}

	// 5. The slow-query ring entry carries the id and the admission
	// numbers.
	slow := s.QueryRegistry().Slow()
	if len(slow) == 0 {
		t.Fatal("no slow-ring entry")
	}
	if slow[0].QueryID != traceID {
		t.Errorf("slow ring query_id = %q, want %q", slow[0].QueryID, traceID)
	}
	if slow[0].DeadlineNS <= 0 {
		t.Errorf("slow ring missing deadline budget: %+v", slow[0])
	}

	// 6. /healthz reports build identity and the SLO budget.
	code, hz := getBody(t, srv.URL+"/healthz")
	if code != 200 {
		t.Fatalf("/healthz status %d", code)
	}
	if !strings.Contains(hz, `"go_version"`) || !strings.Contains(hz, `"burn_rate"`) {
		t.Errorf("/healthz missing build or SLO state: %s", hz)
	}
	if !strings.Contains(hz, `"window_good": 1`) {
		t.Errorf("/healthz SLO did not observe the query: %s", hz)
	}
}

// TestMintedQueryID: a request without a traceparent gets a minted id
// that still correlates across the sinks.
func TestMintedQueryID(t *testing.T) {
	s := New(Config{Cat: testCat, Registry: testRegistry(t)})
	srv := httptest.NewServer(s.Mux())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/query", "text/plain",
		strings.NewReader("SELECT COUNT(*) AS n FROM lineitem"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	id := resp.Header.Get("X-Voodoo-Query-Id")
	if len(id) != 32 || id == strings.Repeat("0", 32) {
		t.Fatalf("minted id %q not a 32-hex trace id", id)
	}
	if code, _ := getBody(t, srv.URL+"/debug/spans?query_id="+id); code != 200 {
		t.Errorf("/debug/spans lookup by minted id: status %d", code)
	}
	if slow := s.QueryRegistry().Slow(); len(slow) == 0 || slow[0].QueryID != id {
		t.Errorf("slow ring id mismatch")
	}
}

// TestUnsampledNoWrite: with sampling off, a successful query leaves no
// JSONL write behind — the sink counts it as sampled out and the buffer
// stays empty.
func TestUnsampledNoWrite(t *testing.T) {
	var buf syncBuffer
	events := telemetry.NewEventLog(telemetry.EventLogConfig{
		W: &buf, SampleRate: 0, Registry: testRegistry(t),
	})
	s := New(Config{Cat: testCat, Registry: testRegistry(t), Events: events})
	srv := httptest.NewServer(s.Mux())
	defer srv.Close()

	if code, _, body := postQuery(t, srv.URL, "SELECT COUNT(*) AS n FROM lineitem"); code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	if err := events.Close(); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "" {
		t.Errorf("unsampled query wrote an event: %s", got)
	}
	if events.SampledOut() != 1 || events.Accepted() != 0 {
		t.Errorf("sampling accounting off: sampledOut=%d accepted=%d",
			events.SampledOut(), events.Accepted())
	}

	// An error is retained regardless of the rate.
	if code, _, _ := postQuery(t, srv.URL, "SELECT bogus FROM nope"); code == 200 {
		t.Fatal("bogus query succeeded")
	}
}

// testRegistry returns a fresh private registry per call so telemetry
// tests don't collide on metric names in metrics.Default.
func testRegistry(t *testing.T) *metrics.Registry {
	t.Helper()
	return metrics.NewRegistry()
}
