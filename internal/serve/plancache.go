package serve

import (
	"container/list"
	"strings"
	"sync"

	"voodoo/internal/metrics"
	"voodoo/internal/rel"
	"voodoo/internal/storage"
)

// planCache is an LRU of prepared queries keyed by (catalog identity,
// normalized SQL). A cache hit hands back a *rel.Prepared to run directly,
// skipping parse, planning and compilation entirely. Prepared plans are
// immutable after Prepare — every run-varying input travels through
// compile.RunOpts — so one entry is safe to hand to any number of
// concurrent requests.
//
// Keying on the *storage.Catalog pointer means a reloaded catalog gets a
// cold cache rather than stale plans: plans capture catalog column slices
// at compile time, so identity is exactly the right notion of "same data".
type planCache struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // of *cacheEntry; front = most recently used
	byKey map[cacheKey]*list.Element

	hits      *metrics.Counter
	misses    *metrics.Counter
	evictions *metrics.Counter
}

type cacheKey struct {
	cat *storage.Catalog
	sql string
}

type cacheEntry struct {
	key cacheKey
	pr  *rel.Prepared
}

// newPlanCache builds a cache holding up to capacity plans and registers
// its counters with reg. A capacity <= 0 returns nil (caching disabled;
// all methods are nil-safe misses).
func newPlanCache(capacity int, reg *metrics.Registry) *planCache {
	if capacity <= 0 {
		return nil
	}
	return &planCache{
		cap:   capacity,
		lru:   list.New(),
		byKey: make(map[cacheKey]*list.Element, capacity),
		hits: reg.Counter("voodoo_plan_cache_hits_total",
			"Queries served from the compiled-plan cache (parse+plan skipped)."),
		misses: reg.Counter("voodoo_plan_cache_misses_total",
			"Queries that had to parse, plan and compile."),
		evictions: reg.Counter("voodoo_plan_cache_evictions_total",
			"Plans evicted from the cache by LRU pressure."),
	}
}

// normalizeSQL collapses whitespace so formatting variants of one query
// share a cache entry. The SQL dialect here has no string literals, so
// whitespace folding cannot change meaning.
func normalizeSQL(src string) string {
	return strings.Join(strings.Fields(src), " ")
}

// get returns the cached plan for (cat, normalized sql), marking it most
// recently used. The second result reports a hit; misses are counted.
func (c *planCache) get(cat *storage.Catalog, sql string) (*rel.Prepared, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[cacheKey{cat, sql}]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).pr, true
}

// put inserts a freshly prepared plan, evicting the least recently used
// entry when full. Re-inserting an existing key refreshes its recency.
func (c *planCache) put(cat *storage.Catalog, sql string, pr *rel.Prepared) {
	if c == nil {
		return
	}
	key := cacheKey{cat, sql}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).pr = pr
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(&cacheEntry{key: key, pr: pr})
	if c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
}

// evictCatalog drops every entry prepared against cat and returns how
// many were dropped. Called on hot catalog reload: entries keyed by the
// replaced catalog can never hit again (lookups use the new pointer), but
// without explicit eviction they would linger until LRU pressure pushed
// them out — pinning the old catalog's column storage in memory the whole
// time.
func (c *planCache) evictCatalog(cat *storage.Catalog) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*cacheEntry)
		if e.key.cat == cat {
			c.lru.Remove(el)
			delete(c.byKey, e.key)
			c.evictions.Inc()
			n++
		}
	}
	return n
}

// len reports the number of cached plans.
func (c *planCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
