// Package serve is the long-running query daemon behind cmd/voodoo-serve:
// TPC-H tables are loaded once, SQL arrives over HTTP, and every request
// runs through the relational engine under the exec resource governor's
// per-request Limits, instrumented end to end — queue wait under the
// admission semaphore, SQL parse+plan time, execution time, rows
// returned — with each in-flight query registered in the diagnostics
// query registry (live per-step progress, cancel action) and every
// finished query competing for the slow-query ring.
//
// The HTTP surface:
//
//	POST /query            SQL in the request body
//	GET  /query?sql=...    SQL in the query string
//	GET  /query?q=N        prebuilt TPC-H query N
//	GET  /                 usage text
//
// plus the full diagnostics mux (see package diag): /metrics,
// /debug/pprof/*, /debug/vars, /healthz, /queries, /queries/slow,
// /queries/cancel.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"voodoo/internal/compile"
	"voodoo/internal/diag"
	"voodoo/internal/exec"
	"voodoo/internal/metrics"
	"voodoo/internal/rel"
	"voodoo/internal/sql"
	"voodoo/internal/storage"
	"voodoo/internal/telemetry"
	"voodoo/internal/telemetry/slo"
	"voodoo/internal/tpch"
	"voodoo/internal/trace"
	"voodoo/internal/vector"
)

// Config configures a query server.
type Config struct {
	// Cat is the loaded catalog every query runs against.
	Cat *storage.Catalog
	// Backend and Opt configure the engine (default: compiled).
	Backend rel.Backend
	Opt     compile.Options
	// Limits is the per-request resource governor template. Its Deadline
	// field is ignored; Timeout below is applied per request instead.
	Limits exec.Limits
	// Timeout bounds each request's wall clock, queue wait included
	// (0 = unlimited).
	Timeout time.Duration
	// MaxConcurrent bounds the queries executing at once; excess requests
	// queue (and their wait is measured). 0 = GOMAXPROCS.
	MaxConcurrent int
	// MorselSize overrides the scheduling granularity of parallel
	// fragments in work items (0 = exec.DefaultMorsel).
	MorselSize int
	// NoSpecialize disables fragment specialization, forcing every
	// fragment through the per-element interpreter.
	NoSpecialize bool
	// SlowQueries is the slow-query ring capacity (0 = 16).
	SlowQueries int
	// PlanCache is the compiled-plan cache capacity in entries
	// (0 = 256; negative disables caching).
	PlanCache int
	// NoPool disables the kernel-buffer pool; every query then allocates
	// fresh working memory and leaves it to the garbage collector.
	NoPool bool
	// MemHighWater is the live-heap watermark in bytes above which new
	// queries are shed with 503 + Retry-After (0 = shedding disabled).
	MemHighWater int64
	// Registry receives the server's metrics (nil = metrics.Default).
	Registry *metrics.Registry
	// Events is the JSONL query-event log (nil = no event log). The
	// server emits; the owner closes.
	Events *telemetry.EventLog
	// SpanRetain is the span-store capacity in span trees (0 = 64;
	// negative disables /debug/spans).
	SpanRetain int
	// SLO is the latency objectives the server tracks per route
	// (empty = no SLO tracking). /query traffic observes under route
	// "query".
	SLO []slo.Objective
}

// Server executes SQL over HTTP against one catalog.
type Server struct {
	cfg   Config
	reg   *metrics.Registry
	qreg  *diag.QueryRegistry
	sem   chan struct{}
	cache *planCache
	pool  *vector.Pool

	// cat is the served catalog; SwapCatalog replaces it atomically for
	// hot reloads, so every request loads it exactly once.
	cat atomic.Pointer[storage.Catalog]
	// draining marks the terminal shutting-down state (see lifecycle.go).
	draining atomic.Bool
	// inflight counts requests anywhere inside handleQuery; Shutdown
	// waits for it to reach zero.
	inflight atomic.Int64
	// baseCtx cancels every in-flight query when a drain runs out of
	// patience; each request's context derives from it.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	// queueEWMA is the moving average of measured admission waits in
	// nanoseconds, feeding the deadline-aware admission gate (shed.go).
	queueEWMA atomic.Int64
	memShed   *memShedder

	// events, spans and slos are the telemetry sinks: the JSONL event
	// log (owned by the caller), the span-tree ring behind /debug/spans,
	// and the per-route error budgets surfaced on /healthz. All nil-safe.
	events *telemetry.EventLog
	spans  *telemetry.SpanStore
	slos   *slo.Tracker

	mQueue   *metrics.Histogram
	mCompile *metrics.Histogram
	mExec    *metrics.Histogram
	mReqs    *metrics.CounterVec
	mRows    *metrics.Counter
	mShed    *metrics.CounterVec
	mReloads *metrics.Counter
}

// New builds a Server and registers its metrics.
func New(cfg Config) *Server {
	if cfg.Registry == nil {
		cfg.Registry = metrics.Default
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.PlanCache == 0 {
		cfg.PlanCache = 256
	}
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Registry,
		qreg:    diag.NewQueryRegistry(cfg.SlowQueries),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		cache:   newPlanCache(cfg.PlanCache, cfg.Registry),
		memShed: newMemShedder(cfg.MemHighWater),

		mQueue: cfg.Registry.Histogram("voodoo_http_queue_seconds",
			"Time requests wait for an execution slot under the admission semaphore.", nil),
		mCompile: cfg.Registry.Histogram("voodoo_sql_compile_seconds",
			"Time to parse and plan the request's SQL.", nil),
		mExec: cfg.Registry.Histogram("voodoo_query_exec_seconds",
			"Time to execute a request's query (lowering, compilation and run).", nil),
		mReqs: cfg.Registry.CounterVec("voodoo_http_requests_total",
			"Query requests served, by HTTP status code.", "code"),
		mRows: cfg.Registry.Counter("voodoo_rows_returned_total",
			"Result rows returned to HTTP clients."),
		mShed: cfg.Registry.CounterVec("voodoo_load_shed_total",
			"Queries refused at admission, by reason (draining, memory, deadline).", "reason"),
		mReloads: cfg.Registry.Counter("voodoo_catalog_reloads_total",
			"Hot catalog reloads applied via SwapCatalog."),
	}
	s.cat.Store(cfg.Cat)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	if !cfg.NoPool {
		s.pool = vector.NewPool(0)
	}
	s.events = cfg.Events
	if cfg.SpanRetain >= 0 {
		s.spans = telemetry.NewSpanStore(cfg.SpanRetain)
	}
	if len(cfg.SLO) > 0 {
		s.slos = slo.New(cfg.Registry, 0, cfg.SLO...)
	}
	cfg.Registry.GaugeFunc("voodoo_active_queries",
		"Queries currently executing or unwinding.",
		func() float64 { return float64(s.qreg.ActiveCount()) })
	return s
}

// QueryRegistry exposes the live query registry (the diagnostics mux and
// tests share it).
func (s *Server) QueryRegistry() *diag.QueryRegistry { return s.qreg }

// SpanStore exposes the retained span trees (nil when disabled) — the
// daemon hands it to a standalone diagnostics listener.
func (s *Server) SpanStore() *telemetry.SpanStore { return s.spans }

// Mux returns the server's full HTTP surface: the query endpoints
// mounted over the diagnostics mux.
func (s *Server) Mux() *http.ServeMux {
	mux := diag.NewMux(s.reg, s.qreg, s.spans, s.Health)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/{$}", s.handleIndex)
	return mux
}

func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `voodoo-serve: SQL over HTTP against a TPC-H catalog

  POST /query            SQL in the request body
  GET  /query?sql=...    SQL in the query string
  GET  /query?q=6        prebuilt TPC-H query 6

  GET  /metrics          Prometheus metrics
  GET  /queries          in-flight queries (live progress) + slow-query summaries
  GET  /queries/slow     slowest queries with full traces
  POST /queries/cancel?id=N
  GET  /debug/pprof/     profiling
  GET  /debug/vars       expvar
  GET  /healthz          liveness
`)
}

// queryResponse is the JSON result of one /query request.
type queryResponse struct {
	Cols  []string         `json:"cols"`
	Rows  []map[string]any `json:"rows"`
	Stats queryStats       `json:"stats"`
}

// queryStats is the per-request instrumentation echoed to the client;
// the same numbers feed the server's histograms. PlanLookupNS is the
// plan-cache lookup; CompileNS is parse+plan+compile and is ~0 when
// Cached (the plan came from the cache).
type queryStats struct {
	// QueryID is the telemetry correlation id, also echoed in the
	// Traceparent / X-Voodoo-Query-Id response headers.
	QueryID      string `json:"query_id"`
	QueueNS      int64  `json:"queue_ns"`
	PlanLookupNS int64  `json:"plan_lookup_ns"`
	CompileNS    int64  `json:"compile_ns"`
	ExecNS       int64  `json:"exec_ns"`
	Rows         int    `json:"rows"`
	Cached       bool   `json:"cached"`
}

type queryError struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	// Identity first: every request — including the ones the admission
	// gates refuse — gets a query id, echoed on the response and carried
	// by every record the request leaves behind.
	qt := s.beginTelemetry(w, r)
	fail := func(code int, kind string, err error) {
		qt.finish(code, kind, err, nil)
		s.fail(w, code, kind, err)
	}
	shed := func(reason string, err error) {
		s.mShed.With(reason).Inc()
		w.Header().Set("Retry-After", "1")
		fail(http.StatusServiceUnavailable, "shed-"+reason, err)
	}

	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		fail(http.StatusMethodNotAllowed, "method", fmt.Errorf("use GET or POST"))
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	// Admission gate 1: a draining server refuses new work outright.
	if s.draining.Load() {
		shed("draining", fmt.Errorf("server is draining for shutdown"))
		return
	}
	// Admission gate 2: above the live-heap watermark every new query is
	// shed — the process is closer to the OOM killer than to spare
	// capacity, and refusals are the only load it can still take.
	if s.memShed.over() {
		shed("memory", fmt.Errorf("server heap above the load-shedding watermark"))
		return
	}

	arrived := qt.arrived
	// Every request derives from baseCtx so a forced drain can cancel all
	// in-flight queries at once, and from the client connection so a
	// disconnect cancels just this one.
	ctx, cancelReq := context.WithCancel(r.Context())
	defer cancelReq()
	stopAfter := context.AfterFunc(s.baseCtx, cancelReq)
	defer stopAfter()
	var deadline time.Time
	if s.cfg.Timeout > 0 {
		deadline = arrived.Add(s.cfg.Timeout)
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	if dl, ok := ctx.Deadline(); ok {
		qt.deadline = dl.Sub(arrived)
	}
	ctx = qt.context(ctx)

	src, qnum, err := s.requestQuery(r)
	if err != nil {
		fail(http.StatusBadRequest, "parse", err)
		return
	}
	qt.sql = src

	// Admission gate 3: a request whose remaining deadline budget is
	// already smaller than the measured queue wait is doomed — unless a
	// slot is free right now, refuse it instead of queueing it to die.
	admitted := false
	if dl, ok := ctx.Deadline(); ok {
		if est := s.expectedQueueWait(); est > 0 && time.Until(dl) < est {
			select {
			case s.sem <- struct{}{}:
				admitted = true
			default:
				shed("deadline", fmt.Errorf(
					"deadline budget %v is below the expected queue wait %v",
					time.Until(dl).Round(time.Millisecond), est.Round(time.Millisecond)))
				return
			}
		}
	}
	// Admission: wait for an execution slot; the wait is the queue-time
	// histogram and counts against the request deadline.
	if !admitted {
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			fail(http.StatusServiceUnavailable, "queue",
				fmt.Errorf("timed out waiting for an execution slot: %w", ctx.Err()))
			return
		}
	}
	defer func() { <-s.sem }()
	queueWait := time.Since(arrived)
	s.mQueue.Observe(queueWait.Seconds())
	s.noteQueueWait(queueWait)
	qt.queueWait = queueWait

	// The catalog pointer is pinned here for the whole request: a
	// concurrent SwapCatalog must never mix two catalogs in one query.
	cat := s.cat.Load()

	// The engine is per-request (it carries the request context, trace
	// sink and deadline below) but shares the server-wide buffer pool, so
	// working memory recycles across requests.
	e := &rel.Engine{
		Cat: cat, Backend: s.cfg.Backend, Opt: s.cfg.Opt,
		Limits:       s.cfg.Limits,
		Pool:         s.pool,
		MorselSize:   s.cfg.MorselSize,
		NoSpecialize: s.cfg.NoSpecialize,
	}
	e.Limits.Deadline = deadline

	// Resolve the query kind first: prebuilt TPC-H queries never touch
	// the SQL frontend, and SQL goes through the plan cache — a hit
	// skips parse, planning and compilation entirely.
	var qf tpch.QueryFunc
	var pr *rel.Prepared
	var cached bool
	var lookupDur, compileDur time.Duration
	failPlan := func(err error) {
		var ce *storage.CorruptError
		if errors.As(err, &ce) {
			fail(http.StatusServiceUnavailable, "quarantined", err)
			return
		}
		fail(http.StatusBadRequest, "plan", err)
	}
	if qnum > 0 {
		if qf, err = tpch.Query(qnum); err != nil {
			fail(http.StatusBadRequest, "parse", err)
			return
		}
		src = fmt.Sprintf("TPC-H Q%d", qnum)
		qt.sql = src
	} else {
		norm := normalizeSQL(src)
		lookupStart := time.Now()
		pr, cached = s.cache.get(cat, norm)
		lookupDur = time.Since(lookupStart)
		if !cached {
			compileStart := time.Now()
			stmt, perr := sql.Parse(src)
			if perr != nil {
				fail(http.StatusBadRequest, "parse", perr)
				return
			}
			var q rel.Query
			if q, err = sql.Plan(stmt, cat); err != nil {
				failPlan(err)
				return
			}
			q.Name = src
			if pr, err = e.Prepare(q); err != nil {
				failPlan(err)
				return
			}
			compileDur = time.Since(compileStart)
			s.cache.put(cat, norm, pr)
		}
	}
	s.mCompile.Observe(compileDur.Seconds())
	qt.planLookup, qt.compile, qt.cached = lookupDur, compileDur, cached

	// Execute under a cancellable context registered for the /queries
	// cancel action, with completed trace steps streaming into the
	// registry entry as live progress.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	aq := s.qreg.Begin(src, qt.qid.String(), cancel)
	aq.SetPlanTiming(lookupDur.Nanoseconds(), compileDur.Nanoseconds(), cached)
	aq.SetAdmission(queueWait.Nanoseconds(), qt.deadline.Nanoseconds())
	ctx = trace.WithObserver(ctx, aq.Observe)

	var traces []*trace.Trace
	e.BaseContext = ctx
	e.TraceSink = func(t *trace.Trace) { traces = append(traces, t) }

	execStart := time.Now()
	var res *rel.Result
	if qf != nil {
		res, _, err = qf(e)
	} else {
		res, _, err = e.RunPrepared(ctx, pr)
	}
	execDur := time.Since(execStart)
	s.qreg.Finish(aq, traces, err)
	s.mExec.Observe(execDur.Seconds())
	qt.exec = execDur

	if err != nil {
		code, kind := statusFor(err)
		qt.finish(code, kind, err, traces)
		s.fail(w, code, kind, err)
		return
	}

	resp := queryResponse{Cols: res.Cols, Rows: make([]map[string]any, 0, len(res.Rows))}
	for _, row := range res.Rows {
		out := make(map[string]any, len(row))
		for _, c := range res.Cols {
			v := row[c]
			// Dictionary-encoded columns decode back to their strings.
			if str := res.Decode(c, v); str != fmt.Sprintf("%g", v) {
				out[c] = str
			} else {
				out[c] = v
			}
		}
		resp.Rows = append(resp.Rows, out)
	}
	resp.Stats = queryStats{
		QueryID: qt.qid.String(),
		QueueNS: queueWait.Nanoseconds(), PlanLookupNS: lookupDur.Nanoseconds(),
		CompileNS: compileDur.Nanoseconds(), ExecNS: execDur.Nanoseconds(),
		Rows: len(resp.Rows), Cached: cached,
	}
	qt.rows = len(resp.Rows)
	qt.finish(http.StatusOK, "", nil, traces)
	s.mRows.Add(int64(len(resp.Rows)))
	s.count(http.StatusOK)
	writeJSON(w, http.StatusOK, resp)
}

// requestQuery extracts the SQL text or TPC-H query number from the
// request.
func (s *Server) requestQuery(r *http.Request) (src string, qnum int, err error) {
	if qs := r.URL.Query().Get("q"); qs != "" {
		n, err := strconv.Atoi(qs)
		if err != nil || n <= 0 {
			return "", 0, fmt.Errorf("malformed TPC-H query number %q", qs)
		}
		return "", n, nil
	}
	src = r.URL.Query().Get("sql")
	if src == "" && r.Body != nil {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			return "", 0, fmt.Errorf("reading request body: %w", err)
		}
		src = string(body)
	}
	if strings.TrimSpace(src) == "" {
		return "", 0, fmt.Errorf("no query given (POST a SQL body, or pass ?sql= or ?q=N)")
	}
	return src, 0, nil
}

// StatusClientClosedRequest is nginx's non-standard 499: the query was
// cancelled (by the client going away or by the /queries/cancel action)
// rather than failing.
const StatusClientClosedRequest = 499

// statusFor maps an execution error to an HTTP status and a kind label.
func statusFor(err error) (int, string) {
	switch {
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest, "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, exec.ErrResourceExhausted):
		return http.StatusTooManyRequests, "resource"
	default:
		var ce *storage.CorruptError
		if errors.As(err, &ce) {
			return http.StatusServiceUnavailable, "quarantined"
		}
		var pe *exec.PanicError
		if errors.As(err, &pe) {
			return http.StatusInternalServerError, "panic"
		}
		return http.StatusInternalServerError, "internal"
	}
}

func (s *Server) fail(w http.ResponseWriter, code int, kind string, err error) {
	s.count(code)
	writeJSON(w, code, queryError{Error: err.Error(), Kind: kind})
}

func (s *Server) count(code int) { s.mReqs.With(strconv.Itoa(code)).Inc() }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best effort to a dead client
}
