package core

import (
	"strings"
	"testing"
)

func TestBuilderFigure3Shape(t *testing.T) {
	b := NewBuilder()
	input := b.Label(b.Load("input"), "input")
	ids := b.Label(b.Range(input), "ids")
	partitionSize := b.Label(b.Constant(1024), "partitionSize")
	partitionIDs := b.Label(b.Divide(ids, partitionSize), "partitionIDs")
	_ = partitionIDs
	p := b.Program()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	s := p.String()
	for _, want := range []string{
		`input := Load("input")`,
		"ids := Range(from=0, input)",
		"partitionSize := Constant(1024)",
		"partitionIDs := Divide(ids, partitionSize)",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("program text missing %q:\n%s", want, s)
		}
	}
}

func TestValidateRejectsForwardRef(t *testing.T) {
	var p Program
	p.Add(Stmt{Op: OpProject, Args: []Ref{5}, Kp: []string{""}, Out: []string{"x"}})
	if err := p.Validate(); err == nil {
		t.Fatal("expected forward-reference error")
	}
}

func TestValidateRejectsWrongArity(t *testing.T) {
	var p Program
	p.Add(Stmt{Op: OpAdd, Args: []Ref{}, Out: []string{"x"}})
	if err := p.Validate(); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestValidateRejectsMissingLoadName(t *testing.T) {
	var p Program
	p.Add(Stmt{Op: OpLoad})
	if err := p.Validate(); err == nil {
		t.Fatal("expected missing-name error")
	}
}

func TestValidateRejectsRangeWithoutSize(t *testing.T) {
	var p Program
	p.Add(Stmt{Op: OpRange, Out: []string{"v"}})
	if err := p.Validate(); err == nil {
		t.Fatal("expected range-size error")
	}
}

func TestRoots(t *testing.T) {
	b := NewBuilder()
	in := b.Load("t")
	x := b.Add(in, in)
	y := b.Multiply(x, x)
	_ = y
	roots := b.Program().Roots()
	if len(roots) != 1 || roots[0] != y {
		t.Fatalf("Roots = %v, want [%d]", roots, y)
	}
}

func TestUses(t *testing.T) {
	b := NewBuilder()
	in := b.Load("t")
	x := b.Add(in, in)
	_ = b.Multiply(x, in)
	uses := b.Program().Uses()
	if len(uses[in]) != 3 { // twice by Add, once by Multiply
		t.Fatalf("uses of load = %v, want 3 entries", uses[in])
	}
	if len(uses[x]) != 1 {
		t.Fatalf("uses of add = %v, want 1 entry", uses[x])
	}
}

func TestOpClassification(t *testing.T) {
	if !OpAdd.IsArith() || OpZip.IsArith() {
		t.Error("IsArith misclassifies")
	}
	if !OpFoldSum.IsFold() || OpScatter.IsFold() {
		t.Error("IsFold misclassifies")
	}
	if !OpRange.IsShape() || OpGather.IsShape() {
		t.Error("IsShape misclassifies")
	}
}

func TestArithPanicsOnNonArithOp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder()
	in := b.Load("t")
	b.Arith(OpZip, "x", in, "", in, "")
}

func TestOpString(t *testing.T) {
	if OpFoldSelect.String() != "FoldSelect" {
		t.Errorf("OpFoldSelect.String() = %q", OpFoldSelect.String())
	}
	if !strings.HasPrefix(Op(200).String(), "Op(") {
		t.Errorf("unknown op should stringify as Op(n)")
	}
}
