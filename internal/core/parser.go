package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a Voodoo program in the paper's SSA notation — the same
// notation Program.String renders, so programs round-trip:
//
//	input := Load("input")
//	ids := Range(from=0, input)
//	partitionSize := Constant(1024)
//	partitionIDs := Divide(ids, partitionSize)
//	pSum := FoldSum(inputWPart.partition, .val)
//
// Lines are one statement each; '#' and '//' start comments. Operands are
// earlier statement names, optionally with a keypath (name.kp). A bare
// keypath (.kp) names a fold's value attribute; out=.kp names outputs;
// from=, step= and size= are Range literals.
func Parse(src string) (*Program, error) {
	p := &Program{}
	labels := map[string]Ref{}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		stmt, label, err := parseLine(line, labels)
		if err != nil {
			return nil, fmt.Errorf("core: line %d: %w", lineNo+1, err)
		}
		ref := p.Add(stmt)
		p.Stmts[ref].Label = label
		if _, dup := labels[label]; dup {
			return nil, fmt.Errorf("core: line %d: duplicate name %q", lineNo+1, label)
		}
		labels[label] = ref
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// opByName maps the paper's operator names to ops (including the comparison
// and logical spellings of Table 2).
var opByName = map[string]Op{
	"Load": OpLoad, "Persist": OpPersist, "Constant": OpConstant,
	"Range": OpRange, "Cross": OpCross,
	"Add": OpAdd, "Subtract": OpSubtract, "Multiply": OpMultiply,
	"Divide": OpDivide, "Modulo": OpModulo, "BitShift": OpBitShift,
	"LogicalAnd": OpLogicalAnd, "LogicalOr": OpLogicalOr,
	"Greater": OpGreater, "Equals": OpEquals,
	"Zip": OpZip, "Project": OpProject, "Upsert": OpUpsert,
	"Gather": OpGather, "Scatter": OpScatter,
	"Materialize": OpMaterialize, "Break": OpBreak, "Partition": OpPartition,
	"FoldSelect": OpFoldSelect, "FoldSum": OpFoldSum, "FoldMin": OpFoldMin,
	"FoldMax": OpFoldMax, "FoldScan": OpFoldScan,
}

func parseLine(line string, labels map[string]Ref) (Stmt, string, error) {
	var s Stmt
	name, rest, ok := strings.Cut(line, ":=")
	if !ok {
		return s, "", fmt.Errorf("expected 'name := Op(...)'")
	}
	label := strings.TrimSpace(name)
	if label == "" || strings.ContainsAny(label, " \t.(") {
		return s, "", fmt.Errorf("bad statement name %q", label)
	}
	rest = strings.TrimSpace(rest)
	open := strings.Index(rest, "(")
	if open < 0 || !strings.HasSuffix(rest, ")") {
		return s, "", fmt.Errorf("expected an operator application")
	}
	opName := strings.TrimSpace(rest[:open])
	op, ok := opByName[opName]
	if !ok {
		return s, "", fmt.Errorf("unknown operator %q", opName)
	}
	s.Op = op

	args, err := splitArgs(rest[open+1 : len(rest)-1])
	if err != nil {
		return s, "", err
	}
	for _, a := range args {
		if err := applyArg(&s, a, labels); err != nil {
			return s, "", err
		}
	}
	// Default output names where the builder would supply them.
	if len(s.Out) == 0 && op != OpLoad && op != OpPersist &&
		op != OpGather && op != OpScatter && op != OpMaterialize && op != OpBreak {
		s.Out = []string{DefaultOut}
	}
	if op == OpRange && s.Step == 0 {
		s.Step = 1
	}
	return s, label, nil
}

// splitArgs splits a comma-separated argument list (no nesting in this
// notation).
func splitArgs(s string) ([]string, error) {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out, nil
}

func applyArg(s *Stmt, a string, labels map[string]Ref) error {
	switch {
	case strings.HasPrefix(a, `"`):
		// A quoted name: Load/Persist target.
		v, err := strconv.Unquote(a)
		if err != nil {
			return fmt.Errorf("bad string %s", a)
		}
		s.Name = v
	case strings.HasPrefix(a, "out=."):
		s.Out = append(s.Out, a[len("out=."):])
	case strings.HasPrefix(a, "from="):
		v, err := strconv.ParseInt(a[len("from="):], 10, 64)
		if err != nil {
			return fmt.Errorf("bad from= value %q", a)
		}
		s.IntVal = v
	case strings.HasPrefix(a, "step="):
		v, err := strconv.ParseInt(a[len("step="):], 10, 64)
		if err != nil {
			return fmt.Errorf("bad step= value %q", a)
		}
		s.Step = v
	case strings.HasPrefix(a, "size="):
		v, err := strconv.Atoi(a[len("size="):])
		if err != nil {
			return fmt.Errorf("bad size= value %q", a)
		}
		s.Size = v
	case strings.HasPrefix(a, "."):
		// A bare keypath: the fold's value attribute.
		if !s.Op.IsFold() {
			return fmt.Errorf("bare keypath %q outside a fold", a)
		}
		s.FoldVal = a[1:]
	case isNumber(a):
		if s.Op != OpConstant {
			return fmt.Errorf("numeric literal %q outside Constant", a)
		}
		if i, err := strconv.ParseInt(a, 10, 64); err == nil {
			s.IntVal = i
		} else {
			f, err := strconv.ParseFloat(a, 64)
			if err != nil {
				return fmt.Errorf("bad number %q", a)
			}
			s.FloatVal, s.IsFloat = f, true
		}
	default:
		// A statement reference, optionally with a keypath.
		ref, kp := a, ""
		if i := strings.Index(a, "."); i >= 0 {
			ref, kp = a[:i], a[i+1:]
		}
		r, ok := labels[ref]
		if !ok {
			return fmt.Errorf("unknown statement %q", ref)
		}
		s.Args = append(s.Args, r)
		s.Kp = append(s.Kp, kp)
	}
	return nil
}

func isNumber(a string) bool {
	if a == "" {
		return false
	}
	c := a[0]
	return c == '-' || (c >= '0' && c <= '9')
}
