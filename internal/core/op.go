// Package core implements the Voodoo vector algebra (paper §2): a minimal,
// declarative, deterministic set of vector operators over structured
// vectors, assembled into SSA-form programs whose dataflow forms a DAG.
//
// Programs say only how outputs depend on inputs — never how they are
// computed. Backends (package interp, and package compile with its
// executors) choose the execution strategy; the degree of parallelism of
// fold operations is controlled declaratively through control vectors
// (package vector's RunMeta).
package core

import "fmt"

// Op identifies a Voodoo operator (paper Table 2).
type Op uint8

const (
	// OpInvalid is the zero Op; it never appears in valid programs.
	OpInvalid Op = iota

	// Maintenance operations (manipulate persistent state).

	// OpLoad loads the vector identified by Name from persistent storage.
	OpLoad
	// OpPersist makes Args[0] available from persistent storage under Name.
	OpPersist

	// Shape operations (create vectors from sizes, not values).

	// OpConstant produces a one-slot vector holding IntVal (or FloatVal
	// when IsFloat). One-slot vectors broadcast in data-parallel ops.
	OpConstant
	// OpRange produces ids From, From+Step, ... with the length of
	// Args[0] (or the literal Size when there is no argument).
	OpRange
	// OpCross produces the cross product of the positions of Args[0] and
	// Args[1], as attributes Out[0] and Out[1].
	OpCross

	// Data-parallel operations (aligned element-wise; one-slot broadcasts).

	OpAdd
	OpSubtract
	OpMultiply
	OpDivide
	OpModulo
	OpBitShift
	OpLogicalAnd
	OpLogicalOr
	OpGreater
	OpEquals
	// OpZip creates a new vector with subtree Args[0].Kp[0] as Out[0] and
	// Args[1].Kp[1] as Out[1].
	OpZip
	// OpProject creates a new vector with subtree Args[0].Kp[0] as Out[0].
	OpProject
	// OpUpsert copies Args[0] and replaces or inserts attribute Out[0]
	// with Args[1].Kp[1].
	OpUpsert
	// OpGather creates a vector of the size of Args[1], resolving the
	// positions Args[1].Kp[1] in Args[0]. Out-of-bounds positions produce
	// empty slots.
	OpGather
	// OpScatter places each item of Args[0] at position Args[2].Kp[2] in
	// a fresh vector of the size of Args[1]. Later writes win within a
	// value-run of Args[1].Kp[1]; runs have no mutual order guarantee.
	OpScatter
	// OpMaterialize forces Args[0] into memory, chunked according to the
	// runs of Args[1].Kp[1] (X100-style processing).
	OpMaterialize
	// OpBreak breaks Args[0] into segments according to the runs in
	// Args[1].Kp[1]. It is a pure tuning hint with identity semantics.
	OpBreak
	// OpPartition generates (as Out[0]) the scatter position vector that
	// partitions Args[0].Kp[0] according to the sorted pivots
	// Args[1].Kp[1]. The output size is the size of Args[0].
	OpPartition

	// Fold operations (controlled folding, paper §2.2). Kp[0] names the
	// fold/control attribute of Args[0]; an empty Kp[0] means a single
	// global run. Kp[1] names the folded value attribute.

	// OpFoldSelect emits (aligned to run starts, ε-padded) the positions
	// of slots whose selection attribute is non-zero.
	OpFoldSelect
	OpFoldSum
	OpFoldMin
	OpFoldMax
	// OpFoldScan prefix-sums the value attribute; a new run restarts the
	// running sum. Unlike the other folds it fills every slot.
	OpFoldScan
)

// opInfo carries static per-operator metadata used for validation and
// printing.
type opInfo struct {
	name  string
	arity int // number of vector arguments; -1 = 1 or 2 (OpRange)
}

var opTable = map[Op]opInfo{
	OpLoad:        {"Load", 0},
	OpPersist:     {"Persist", 1},
	OpConstant:    {"Constant", 0},
	OpRange:       {"Range", -1},
	OpCross:       {"Cross", 2},
	OpAdd:         {"Add", 2},
	OpSubtract:    {"Subtract", 2},
	OpMultiply:    {"Multiply", 2},
	OpDivide:      {"Divide", 2},
	OpModulo:      {"Modulo", 2},
	OpBitShift:    {"BitShift", 2},
	OpLogicalAnd:  {"LogicalAnd", 2},
	OpLogicalOr:   {"LogicalOr", 2},
	OpGreater:     {"Greater", 2},
	OpEquals:      {"Equals", 2},
	OpZip:         {"Zip", 2},
	OpProject:     {"Project", 1},
	OpUpsert:      {"Upsert", 2},
	OpGather:      {"Gather", 2},
	OpScatter:     {"Scatter", 3},
	OpMaterialize: {"Materialize", 2},
	OpBreak:       {"Break", 2},
	OpPartition:   {"Partition", 2},
	OpFoldSelect:  {"FoldSelect", 1},
	OpFoldSum:     {"FoldSum", 1},
	OpFoldMin:     {"FoldMin", 1},
	OpFoldMax:     {"FoldMax", 1},
	OpFoldScan:    {"FoldScan", 1},
}

// Arity returns the number of vector arguments the operator consumes
// (-1 means "1 or 2", used by OpRange) and whether the operator is known.
// It exposes the same metadata Validate uses, so external verifiers stay
// in lockstep with the algebra's own well-formedness rules.
func Arity(o Op) (int, bool) {
	info, ok := opTable[o]
	return info.arity, ok
}

// String returns the operator's name as used in the paper.
func (o Op) String() string {
	if info, ok := opTable[o]; ok {
		return info.name
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsArith reports whether the operator is a binary arithmetic, logical or
// comparison operation.
func (o Op) IsArith() bool {
	switch o {
	case OpAdd, OpSubtract, OpMultiply, OpDivide, OpModulo, OpBitShift,
		OpLogicalAnd, OpLogicalOr, OpGreater, OpEquals:
		return true
	}
	return false
}

// IsFold reports whether the operator is a controlled fold.
func (o Op) IsFold() bool {
	switch o {
	case OpFoldSelect, OpFoldSum, OpFoldMin, OpFoldMax, OpFoldScan:
		return true
	}
	return false
}

// IsShape reports whether the operator creates vectors from sizes alone.
func (o Op) IsShape() bool {
	return o == OpConstant || o == OpRange || o == OpCross
}
