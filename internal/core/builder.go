package core

// Builder assembles Voodoo programs with an API mirroring the paper's SSA
// notation (Figure 3). All methods append one statement (macros may append a
// few) and return its Ref.
//
// Keypath conventions: the empty keypath "" designates the operand's single
// attribute (for vectors with exactly one) and, as a fold control attribute,
// "a single global run". Unless stated otherwise, value-producing operators
// name their output attribute "val".
type Builder struct {
	p Program
}

// DefaultOut is the attribute name given to the result of value-producing
// operators.
const DefaultOut = "val"

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder { return &Builder{} }

// Program finalizes and returns the built program.
func (b *Builder) Program() *Program { return &b.p }

// Label attaches a diagnostic SSA name to statement r and returns r.
func (b *Builder) Label(r Ref, name string) Ref {
	b.p.Stmts[r].Label = name
	return r
}

// Load loads the persistent vector stored under name.
func (b *Builder) Load(name string) Ref {
	return b.p.Add(Stmt{Op: OpLoad, Name: name})
}

// Persist stores v under name in persistent storage.
func (b *Builder) Persist(name string, v Ref) Ref {
	return b.p.Add(Stmt{Op: OpPersist, Name: name, Args: []Ref{v}, Kp: []string{""}})
}

// Constant produces a one-slot integer vector; one-slot vectors broadcast in
// data-parallel operations.
func (b *Builder) Constant(v int64) Ref {
	return b.p.Add(Stmt{Op: OpConstant, IntVal: v, Out: []string{DefaultOut}})
}

// ConstantF produces a one-slot float vector.
func (b *Builder) ConstantF(v float64) Ref {
	return b.p.Add(Stmt{Op: OpConstant, FloatVal: v, IsFloat: true, Out: []string{DefaultOut}})
}

// Range produces ids 0,1,2,... with the length of v.
func (b *Builder) Range(v Ref) Ref { return b.RangeOf(0, v, 1) }

// RangeOf produces from, from+step, ... with the length of v.
func (b *Builder) RangeOf(from int64, v Ref, step int64) Ref {
	return b.p.Add(Stmt{Op: OpRange, IntVal: from, Step: step,
		Args: []Ref{v}, Kp: []string{""}, Out: []string{DefaultOut}})
}

// RangeN produces from, from+step, ... with literal length n.
func (b *Builder) RangeN(from int64, n int, step int64) Ref {
	return b.p.Add(Stmt{Op: OpRange, IntVal: from, Step: step, Size: n, Out: []string{DefaultOut}})
}

// Cross produces the cross product of the positions of v1 and v2 as
// attributes out1 and out2.
func (b *Builder) Cross(out1 string, v1 Ref, out2 string, v2 Ref) Ref {
	return b.p.Add(Stmt{Op: OpCross, Args: []Ref{v1, v2}, Kp: []string{"", ""}, Out: []string{out1, out2}})
}

// Arith applies the binary operator op to a.akp and c.ckp, producing
// attribute out. One-slot operands broadcast.
func (b *Builder) Arith(op Op, out string, a Ref, akp string, c Ref, ckp string) Ref {
	if !op.IsArith() {
		// Invariant violation: the builder is a programmatic API; callers
		// pass Op constants, never user input (core.Parse maps operator
		// names through opByName and rejects unknown ones with an error).
		panic("core: Arith requires an arithmetic/logical/comparison op")
	}
	return b.p.Add(Stmt{Op: op, Args: []Ref{a, c}, Kp: []string{akp, ckp}, Out: []string{out}})
}

// The binary convenience wrappers operate on single-attribute operands.

func (b *Builder) Add(a, c Ref) Ref      { return b.Arith(OpAdd, DefaultOut, a, "", c, "") }
func (b *Builder) Subtract(a, c Ref) Ref { return b.Arith(OpSubtract, DefaultOut, a, "", c, "") }
func (b *Builder) Multiply(a, c Ref) Ref { return b.Arith(OpMultiply, DefaultOut, a, "", c, "") }
func (b *Builder) Divide(a, c Ref) Ref   { return b.Arith(OpDivide, DefaultOut, a, "", c, "") }
func (b *Builder) Modulo(a, c Ref) Ref   { return b.Arith(OpModulo, DefaultOut, a, "", c, "") }
func (b *Builder) BitShift(a, c Ref) Ref { return b.Arith(OpBitShift, DefaultOut, a, "", c, "") }
func (b *Builder) And(a, c Ref) Ref      { return b.Arith(OpLogicalAnd, DefaultOut, a, "", c, "") }
func (b *Builder) Or(a, c Ref) Ref       { return b.Arith(OpLogicalOr, DefaultOut, a, "", c, "") }
func (b *Builder) Greater(a, c Ref) Ref  { return b.Arith(OpGreater, DefaultOut, a, "", c, "") }
func (b *Builder) Equals(a, c Ref) Ref   { return b.Arith(OpEquals, DefaultOut, a, "", c, "") }

// GreaterEqual is a macro: a >= c  ≡  (a > c) OR (a == c).
func (b *Builder) GreaterEqual(a Ref, akp string, c Ref, ckp string) Ref {
	gt := b.Arith(OpGreater, DefaultOut, a, akp, c, ckp)
	eq := b.Arith(OpEquals, DefaultOut, a, akp, c, ckp)
	return b.Or(gt, eq)
}

// Less is a macro: a < c  ≡  c > a.
func (b *Builder) Less(a Ref, akp string, c Ref, ckp string) Ref {
	return b.Arith(OpGreater, DefaultOut, c, ckp, a, akp)
}

// Zip creates a new vector with subtree v1.kp1 as out1 and v2.kp2 as out2.
func (b *Builder) Zip(out1 string, v1 Ref, kp1, out2 string, v2 Ref, kp2 string) Ref {
	return b.p.Add(Stmt{Op: OpZip, Args: []Ref{v1, v2}, Kp: []string{kp1, kp2}, Out: []string{out1, out2}})
}

// Project creates a new vector with subtree v.kp as out.
func (b *Builder) Project(out string, v Ref, kp string) Ref {
	return b.p.Add(Stmt{Op: OpProject, Args: []Ref{v}, Kp: []string{kp}, Out: []string{out}})
}

// Upsert copies v1 and replaces or inserts attribute out with v2.kp
// (one-slot v2 broadcasts).
func (b *Builder) Upsert(v1 Ref, out string, v2 Ref, kp string) Ref {
	return b.p.Add(Stmt{Op: OpUpsert, Args: []Ref{v1, v2}, Kp: []string{"", kp}, Out: []string{out}})
}

// Gather creates a vector of the size of v2 by resolving positions v2.pos in
// v1. Out-of-bounds positions produce empty slots.
func (b *Builder) Gather(v1, v2 Ref, pos string) Ref {
	return b.p.Add(Stmt{Op: OpGather, Args: []Ref{v1, v2}, Kp: []string{"", pos}})
}

// Scatter creates a vector of the size of v2, placing each item of v1 at
// position v3.pos. Writes are ordered within value-runs of v2.runKp.
func (b *Builder) Scatter(v1, v2 Ref, runKp string, v3 Ref, pos string) Ref {
	return b.p.Add(Stmt{Op: OpScatter, Args: []Ref{v1, v2, v3}, Kp: []string{"", runKp, pos}})
}

// Materialize forces v1 into memory, chunked according to the runs of
// v2.runKp.
func (b *Builder) Materialize(v1, v2 Ref, runKp string) Ref {
	return b.p.Add(Stmt{Op: OpMaterialize, Args: []Ref{v1, v2}, Kp: []string{"", runKp}})
}

// Break breaks v1 into segments according to the runs in v2.kp. It is a pure
// tuning hint: semantically the identity, but a pipeline breaker for
// compiling backends.
func (b *Builder) Break(v1, v2 Ref, kp string) Ref {
	return b.p.Add(Stmt{Op: OpBreak, Args: []Ref{v1, v2}, Kp: []string{"", kp}})
}

// Partition generates (as attribute out) the stable scatter position vector
// that partitions v1.vkp according to the sorted pivot list v2.pivotKp.
func (b *Builder) Partition(out string, v1 Ref, vkp string, v2 Ref, pivotKp string) Ref {
	return b.p.Add(Stmt{Op: OpPartition, Args: []Ref{v1, v2}, Kp: []string{vkp, pivotKp}, Out: []string{out}})
}

// fold appends a controlled fold. foldKp "" means one global run.
func (b *Builder) fold(op Op, out string, v Ref, foldKp, valKp string) Ref {
	return b.p.Add(Stmt{Op: op, Args: []Ref{v}, Kp: []string{foldKp}, FoldVal: valKp, Out: []string{out}})
}

// FoldSelect emits, per run of v.foldKp, the positions of slots whose
// selection attribute selKp is non-zero, aligned to run starts, ε-padded.
func (b *Builder) FoldSelect(v Ref, foldKp, selKp string) Ref {
	return b.fold(OpFoldSelect, DefaultOut, v, foldKp, selKp)
}

// FoldSum sums v.valKp per run of v.foldKp (paper Figure 7).
func (b *Builder) FoldSum(v Ref, foldKp, valKp string) Ref {
	return b.fold(OpFoldSum, DefaultOut, v, foldKp, valKp)
}

// FoldMin computes the per-run minimum of v.valKp.
func (b *Builder) FoldMin(v Ref, foldKp, valKp string) Ref {
	return b.fold(OpFoldMin, DefaultOut, v, foldKp, valKp)
}

// FoldMax computes the per-run maximum of v.valKp.
func (b *Builder) FoldMax(v Ref, foldKp, valKp string) Ref {
	return b.fold(OpFoldMax, DefaultOut, v, foldKp, valKp)
}

// FoldScan prefix-sums v.valKp; each new run of v.foldKp restarts the sum.
func (b *Builder) FoldScan(v Ref, foldKp, valKp string) Ref {
	return b.fold(OpFoldScan, DefaultOut, v, foldKp, valKp)
}

// FoldCount is the paper's macro on top of FoldSum (§3.1.3): it counts the
// slots of each run by summing a constant-one attribute.
func (b *Builder) FoldCount(v Ref, foldKp string) Ref {
	one := b.Constant(1)
	withOne := b.Upsert(v, "__one", one, "")
	return b.FoldSum(withOne, foldKp, "__one")
}

// GlobalSum is a convenience for a fully sequential global aggregation.
func (b *Builder) GlobalSum(v Ref, valKp string) Ref {
	return b.FoldSum(v, "", valKp)
}
