package core

import (
	"strings"
	"testing"
)

// figure3Text is the paper's Figure 3 in the textual notation.
const figure3Text = `
# Figure 3: Multithreaded Hierarchical Aggregation in Voodoo
input := Load("input")            // single column: val
ids := Range(from=0, input)
partitionSize := Constant(1024)
divided := Divide(ids, partitionSize)
partitionIDs := Project(divided, out=.partition)
inputWPart := Zip(input.val, partitionIDs.partition, out=.val, out=.partition)
pSum := FoldSum(inputWPart.partition, .val)
totalSum := FoldSum(pSum)
`

func TestParseFigure3(t *testing.T) {
	p, err := Parse(figure3Text)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stmts) != 8 {
		t.Fatalf("stmts = %d, want 8", len(p.Stmts))
	}
	if p.Stmts[0].Op != OpLoad || p.Stmts[0].Name != "input" {
		t.Fatalf("stmt 0 = %+v", p.Stmts[0])
	}
	fold := p.Stmts[6]
	if fold.Op != OpFoldSum || fold.Kp[0] != "partition" || fold.FoldVal != "val" {
		t.Fatalf("fold stmt = %+v", fold)
	}
	global := p.Stmts[7]
	if global.Kp[0] != "" || global.FoldVal != "" {
		t.Fatalf("global fold stmt = %+v", global)
	}
}

// TestParseRoundTrip: Parse(p.String()) reproduces the program.
func TestParseRoundTrip(t *testing.T) {
	b := NewBuilder()
	in := b.Label(b.Load("t"), "in")
	ids := b.Label(b.Range(in), "ids")
	fold := b.Label(b.Project("fold", b.Label(b.Divide(ids, b.Label(b.Constant(16), "c16")), "div"), ""), "fold")
	z := b.Label(b.Zip("v", in, "", "fold", fold, "fold"), "z")
	sel := b.Label(b.FoldSelect(z, "fold", "v"), "sel")
	g := b.Label(b.Gather(in, sel, ""), "g")
	b.Label(b.FoldSum(g, "", ""), "total")
	orig := b.Program()

	back, err := Parse(orig.String())
	if err != nil {
		t.Fatalf("reparse failed: %v\ntext:\n%s", err, orig.String())
	}
	if len(back.Stmts) != len(orig.Stmts) {
		t.Fatalf("stmt count %d vs %d", len(back.Stmts), len(orig.Stmts))
	}
	for i := range orig.Stmts {
		o, n := orig.Stmts[i], back.Stmts[i]
		if o.Op != n.Op || o.Name != n.Name || o.FoldVal != n.FoldVal ||
			o.IntVal != n.IntVal || o.Step != n.Step || len(o.Args) != len(n.Args) {
			t.Fatalf("stmt %d differs:\n%+v\n%+v", i, o, n)
		}
		for j := range o.Args {
			if o.Args[j] != n.Args[j] || o.Kp[j] != n.Kp[j] {
				t.Fatalf("stmt %d arg %d differs", i, j)
			}
		}
	}
}

func TestParseScatterAndPartition(t *testing.T) {
	src := `
in := Load("t")
ids := Range(from=0, in)
lanes := Constant(4)
mod := Modulo(ids, lanes)
part := Project(mod, out=.lane)
pivots := Range(from=0, size=4)
pos := Partition(part.lane, pivots, out=.pos)
withPos := Upsert(in, pos.pos, out=.pos)
sc := Scatter(in, in, withPos.pos)
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sc := p.Stmts[len(p.Stmts)-1]
	if sc.Op != OpScatter || len(sc.Args) != 3 || sc.Kp[2] != "pos" {
		t.Fatalf("scatter stmt = %+v", sc)
	}
	rng := p.Stmts[5]
	if rng.Size != 4 || rng.Step != 1 {
		t.Fatalf("literal range = %+v", rng)
	}
}

func TestParseConstantFloat(t *testing.T) {
	p, err := Parse(`c := Constant(2.5)`)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Stmts[0].IsFloat || p.Stmts[0].FloatVal != 2.5 {
		t.Fatalf("float constant = %+v", p.Stmts[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"x Load()":                           "expected 'name",
		"x := Frobnicate(y)":                 "unknown operator",
		"x := Load(42)":                      "numeric literal",
		"x := Add(nope, nope)":               "unknown statement",
		"a := Load(\"t\")\na := Load(\"t\")": "duplicate name",
		"x := Add(.v)":                       "bare keypath",
		"x := Load":                          "operator application",
		"my name := Load(\"t\")":             "bad statement name",
		"x := Range(from=z, size=2)":         "bad from=",
	}
	for src, wantSub := range cases {
		_, err := Parse(src)
		if err == nil {
			t.Errorf("expected error for %q", src)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%q: error %q does not contain %q", src, err, wantSub)
		}
	}
}
