package core

import (
	"fmt"
	"strings"
)

// Ref identifies a statement within a Program; it is the statement's index.
type Ref int

// NoRef marks an absent optional operand.
const NoRef Ref = -1

// Stmt is a single SSA statement: the application of one operator to the
// results of earlier statements.
type Stmt struct {
	ID   Ref
	Op   Op
	Args []Ref // operand statement refs, in Table 2 order

	// Kp holds one keypath per operand (same indexing as Args); empty
	// strings mean "the operand's single/whole payload". For folds,
	// Kp[0] is the fold control attribute and FoldVal the aggregated
	// value attribute.
	Kp      []string
	FoldVal string

	// Out names the produced attribute(s). Most operators produce one.
	Out []string

	// Literal operands.
	Name     string  // Load / Persist target
	IntVal   int64   // Constant value; Range from
	FloatVal float64 // Constant float value
	IsFloat  bool    // Constant is float-typed
	Step     int64   // Range step
	Size     int     // Range literal size (when no vector argument)

	// Label is an optional SSA name for diagnostics and printing.
	Label string
}

// Program is an SSA-form Voodoo program: a statement list whose dataflow
// forms a DAG. Statements only reference earlier statements.
type Program struct {
	Stmts []Stmt
}

// Add appends a statement, assigning its ID. It returns the new Ref.
func (p *Program) Add(s Stmt) Ref {
	s.ID = Ref(len(p.Stmts))
	p.Stmts = append(p.Stmts, s)
	return s.ID
}

// Stmt returns the statement identified by r.
func (p *Program) Stmt(r Ref) *Stmt { return &p.Stmts[r] }

// Roots returns the refs of statements whose result no other statement
// consumes. Backends evaluate programs for their roots (and Persist side
// effects).
func (p *Program) Roots() []Ref {
	used := make([]bool, len(p.Stmts))
	for _, s := range p.Stmts {
		for _, a := range s.Args {
			if a >= 0 {
				used[a] = true
			}
		}
	}
	var roots []Ref
	for i, s := range p.Stmts {
		if !used[i] || s.Op == OpPersist {
			if s.Op != OpPersist || !used[i] {
				roots = append(roots, Ref(i))
			}
		}
	}
	return roots
}

// Uses returns, for every statement, the refs of the statements that consume
// its result.
func (p *Program) Uses() [][]Ref {
	uses := make([][]Ref, len(p.Stmts))
	for _, s := range p.Stmts {
		for _, a := range s.Args {
			if a >= 0 {
				uses[a] = append(uses[a], s.ID)
			}
		}
	}
	return uses
}

// Validate checks structural well-formedness: argument arity, forward-only
// references and required literals. Semantic (schema) errors surface at
// evaluation time, when sizes and attribute sets are known.
func (p *Program) Validate() error {
	for i, s := range p.Stmts {
		info, ok := opTable[s.Op]
		if !ok {
			return fmt.Errorf("stmt %d: unknown op %v", i, s.Op)
		}
		if info.arity >= 0 && len(s.Args) != info.arity {
			return fmt.Errorf("stmt %d (%s): want %d args, have %d", i, s.Op, info.arity, len(s.Args))
		}
		if s.Op == OpRange && len(s.Args) > 1 {
			return fmt.Errorf("stmt %d (Range): at most one vector argument", i)
		}
		if s.Op == OpRange && len(s.Args) == 0 && s.Size <= 0 {
			return fmt.Errorf("stmt %d (Range): literal size must be positive", i)
		}
		for _, a := range s.Args {
			if a < 0 || int(a) >= i {
				return fmt.Errorf("stmt %d (%s): arg ref %d out of range", i, s.Op, a)
			}
		}
		if (s.Op == OpLoad || s.Op == OpPersist) && s.Name == "" {
			return fmt.Errorf("stmt %d (%s): missing name", i, s.Op)
		}
		if s.Op == OpZip && len(s.Out) != 2 {
			return fmt.Errorf("stmt %d (Zip): want 2 output names, have %d", i, len(s.Out))
		}
		if s.Op == OpCross && len(s.Out) != 2 {
			return fmt.Errorf("stmt %d (Cross): want 2 output names, have %d", i, len(s.Out))
		}
	}
	return nil
}

// label returns the diagnostic name of statement r.
func (p *Program) label(r Ref) string {
	if r < 0 {
		return "_"
	}
	if l := p.Stmts[r].Label; l != "" {
		return l
	}
	return fmt.Sprintf("v%d", r)
}

// String renders the program in the paper's SSA notation (compare Figure 3).
func (p *Program) String() string {
	var sb strings.Builder
	for i, s := range p.Stmts {
		fmt.Fprintf(&sb, "%s := %s(", p.label(Ref(i)), s.Op)
		var parts []string
		switch s.Op {
		case OpLoad, OpPersist:
			parts = append(parts, fmt.Sprintf("%q", s.Name))
		case OpConstant:
			if s.IsFloat {
				parts = append(parts, fmt.Sprintf("%g", s.FloatVal))
			} else {
				parts = append(parts, fmt.Sprintf("%d", s.IntVal))
			}
		case OpRange:
			parts = append(parts, fmt.Sprintf("from=%d", s.IntVal))
			if len(s.Args) == 0 {
				parts = append(parts, fmt.Sprintf("size=%d", s.Size))
			}
			if s.Step != 1 {
				parts = append(parts, fmt.Sprintf("step=%d", s.Step))
			}
		}
		for j, a := range s.Args {
			ref := p.label(a)
			if j < len(s.Kp) && s.Kp[j] != "" {
				ref += "." + s.Kp[j]
			}
			parts = append(parts, ref)
		}
		if s.FoldVal != "" {
			parts = append(parts, "."+s.FoldVal)
		}
		for _, o := range s.Out {
			if o == "val" && len(s.Out) == 1 {
				continue // default output name: omit for readability
			}
			parts = append(parts, "out=."+o)
		}
		sb.WriteString(strings.Join(parts, ", "))
		sb.WriteString(")\n")
	}
	return sb.String()
}
