package core

import "testing"

// FuzzParse asserts that no textual Voodoo program (the -prog input of
// cmd/voodoo-run) can panic the SSA parser or Validate: every outcome is
// either a validated program or a returned error.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`input := Load("input")
ids := Range(from=0, input)
partitionSize := Constant(1024)
partitionIDs := Divide(ids, partitionSize)`,
		`a := Range(from=0, size=10)
b := Range(from=0, size=10, step=2)
c := Add(a, b)
d := FoldSum(c, .val)`,
		`x := Constant(3.25)
y := Constant(-7)`,
		`t := Load("t")
z := Zip(v, t, val, w, t, val)
p := Project(out, z.v, out=.o)`,
		`g := Load("t")
s := FoldSelect(g.pred, .pred)
h := Gather(g, s)`,
		"# comment only\n// another",
		"x := Cross(x)",
		"x := Range()",
		`x := Load("")`,
		"x := Unknown(1)",
		":= Add(a, b)",
		"x := Add(a, b", // unbalanced
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return // bound parse cost, not panic-safety
		}
		prog, err := Parse(src)
		if err == nil && prog == nil {
			t.Fatalf("Parse(%q) returned neither program nor error", src)
		}
	})
}
