package sql

import (
	"fmt"
	"time"

	"voodoo/internal/rel"
	"voodoo/internal/storage"
)

// Plan binds a parsed statement to a catalog and produces the relational
// query: joins become metadata index joins, string literals resolve to
// dictionary codes, and non-aggregate select items must be group keys.
func Plan(stmt *SelectStmt, cat *storage.Catalog) (rel.Query, error) {
	pl := &planner{stmt: stmt, cat: cat, colTable: map[string]string{}}
	return pl.plan()
}

type planner struct {
	stmt *SelectStmt
	cat  *storage.Catalog
	// colTable maps a column name to its table.
	colTable map[string]string
	tables   []string
	// needed accumulates the columns each table must expose.
	needed map[string]map[string]bool
}

func (pl *planner) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s", fmt.Sprintf(format, args...))
}

func (pl *planner) plan() (rel.Query, error) {
	var q rel.Query
	// Register tables and their columns.
	pl.tables = append([]string{pl.stmt.From}, tableNames(pl.stmt.Joins)...)
	pl.needed = map[string]map[string]bool{}
	for _, t := range pl.tables {
		tb := pl.cat.Table(t)
		if tb == nil {
			// A quarantined table propagates its typed corruption error so
			// the serving layer can answer 503 (data unavailable) instead
			// of 400 (bad query).
			if qe := pl.cat.QuarantineErr(t); qe != nil {
				return q, fmt.Errorf("sql: table %q is quarantined: %w", t, qe)
			}
			return q, pl.errf("no table %q", t)
		}
		pl.needed[t] = map[string]bool{}
		for _, d := range tb.Defs() {
			if prev, dup := pl.colTable[d.Name]; dup && prev != t {
				return q, pl.errf("ambiguous column %q (in %s and %s)", d.Name, prev, t)
			}
			pl.colTable[d.Name] = t
		}
	}

	// Collect column requirements.
	for _, it := range pl.stmt.Items {
		if it.E != nil {
			if err := pl.noteCols(it.E); err != nil {
				return q, err
			}
		}
	}
	if pl.stmt.Where != nil {
		if err := pl.noteCols(pl.stmt.Where); err != nil {
			return q, err
		}
	}
	for _, k := range pl.stmt.GroupBy {
		if err := pl.noteCols(ColRef{Name: k}); err != nil {
			return q, err
		}
	}
	for _, j := range pl.stmt.Joins {
		if err := pl.noteCols(ColRef{Name: j.L}); err != nil {
			return q, err
		}
		if err := pl.noteCols(ColRef{Name: j.R}); err != nil {
			return q, err
		}
	}

	// A query referencing no columns at all (SELECT COUNT(*) FROM t with
	// no WHERE) still needs one column scanned: COUNT(*) lowers to an
	// ε-aware sum anchored on a base column, and a zero-column scan has
	// nothing to size its fragments by.
	if len(pl.needed[pl.stmt.From]) == 0 {
		if defs := pl.cat.Table(pl.stmt.From).Defs(); len(defs) > 0 {
			pl.needed[pl.stmt.From][defs[0].Name] = true
		}
	}

	// Probe stream: the FROM table; each JOIN adds an index join whose
	// build side is the joined table.
	var root rel.Node = rel.Scan{Table: pl.stmt.From, Cols: keys(pl.needed[pl.stmt.From])}

	// Predicate pushdown: conjuncts that reference only the probe table
	// filter before the joins.
	var pushed, rest []Expr
	splitConjuncts(pl.stmt.Where, func(e Expr) {
		if pl.onlyTable(e, pl.stmt.From) {
			pushed = append(pushed, e)
		} else {
			rest = append(rest, e)
		}
	})
	if len(pushed) > 0 {
		pred, err := pl.convert(conjoin(pushed))
		if err != nil {
			return q, err
		}
		root = rel.Filter{In: root, Pred: pred}
	}

	for _, j := range pl.stmt.Joins {
		probeCol, buildCol := j.L, j.R
		if pl.colTable[probeCol] == j.Table {
			probeCol, buildCol = buildCol, probeCol
		}
		if pl.colTable[buildCol] != j.Table {
			return q, pl.errf("join condition %s = %s does not reference %s", j.L, j.R, j.Table)
		}
		var cols []string
		for _, c := range keys(pl.needed[j.Table]) {
			if c != buildCol {
				cols = append(cols, c)
			}
		}
		buildCols := append([]string{buildCol}, cols...)
		root = rel.IndexJoin{
			Probe:    root,
			ProbeKey: probeCol,
			Build:    rel.Scan{Table: j.Table, Cols: buildCols},
			BuildKey: buildCol,
			Cols:     cols,
		}
	}
	if len(rest) > 0 {
		pred, err := pl.convert(conjoin(rest))
		if err != nil {
			return q, err
		}
		root = rel.Filter{In: root, Pred: pred}
	}

	// Aggregation.
	var aggs []rel.AggSpec
	outNames := map[string]bool{}
	for i, it := range pl.stmt.Items {
		if it.Agg == "" {
			c, ok := it.E.(ColRef)
			if !ok {
				return q, pl.errf("non-aggregate select items must be plain group columns")
			}
			if !contains(pl.stmt.GroupBy, c.Name) {
				return q, pl.errf("column %q must appear in GROUP BY", c.Name)
			}
			continue
		}
		as := it.Alias
		if as == "" {
			as = fmt.Sprintf("agg%d", i)
		}
		outNames[as] = true
		var fn rel.AggFunc
		switch it.Agg {
		case "SUM":
			fn = rel.Sum
		case "COUNT":
			fn = rel.Count
		case "AVG":
			fn = rel.Avg
		case "MIN":
			fn = rel.Min
		case "MAX":
			fn = rel.Max
		}
		var e rel.Expr
		if it.E != nil {
			var err error
			e, err = pl.convert(it.E)
			if err != nil {
				return q, err
			}
		}
		aggs = append(aggs, rel.AggSpec{Func: fn, E: e, As: as})
	}
	if len(aggs) == 0 {
		return q, pl.errf("the select list needs at least one aggregate " +
			"(plain projections would materialize the full result, which the paper's evaluation avoids)")
	}
	q.Root = rel.GroupAgg{In: root, Keys: pl.stmt.GroupBy, Aggs: aggs}

	// HAVING evaluates over the result rows (output aliases and group
	// keys), as the paper keeps aggregate predicates outside the algebra.
	if pl.stmt.Having != nil {
		pred, err := pl.havingFn(pl.stmt.Having, outNames)
		if err != nil {
			return q, err
		}
		q.Having = pred
	}

	// ORDER BY / LIMIT run on the assembled result (paper §5.2 drops them
	// inside the algebra).
	if len(pl.stmt.OrderBy) > 0 {
		items := pl.stmt.OrderBy
		for _, o := range items {
			if !outNames[o.Col] && !contains(pl.stmt.GroupBy, o.Col) {
				return q, pl.errf("ORDER BY column %q is not in the output", o.Col)
			}
		}
		q.OrderBy = func(a, b rel.Row) bool {
			for _, o := range items {
				av, bv := a[o.Col], b[o.Col]
				if av == bv {
					continue
				}
				if o.Desc {
					return av > bv
				}
				return av < bv
			}
			return false
		}
	}
	q.Limit = pl.stmt.Limit
	return q, nil
}

func tableNames(js []JoinClause) []string {
	var out []string
	for _, j := range js {
		out = append(out, j.Table)
	}
	return out
}

func keys(m map[string]bool) []string {
	var out []string
	// Deterministic order: walk the table schema later; here insertion
	// order is lost, so sort.
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// noteCols records which tables must provide which columns.
func (pl *planner) noteCols(e Expr) error {
	switch x := e.(type) {
	case ColRef:
		t, ok := pl.colTable[x.Name]
		if !ok {
			return pl.errf("unknown column %q", x.Name)
		}
		pl.needed[t][x.Name] = true
	case BinEx:
		if err := pl.noteCols(x.L); err != nil {
			return err
		}
		return pl.noteCols(x.R)
	case NotEx:
		return pl.noteCols(x.E)
	case BetweenEx:
		if err := pl.noteCols(x.E); err != nil {
			return err
		}
		if err := pl.noteCols(x.Lo); err != nil {
			return err
		}
		return pl.noteCols(x.Hi)
	case InEx:
		if err := pl.noteCols(x.E); err != nil {
			return err
		}
		for _, v := range x.Vs {
			if err := pl.noteCols(v); err != nil {
				return err
			}
		}
	}
	return nil
}

// onlyTable reports whether every column in e belongs to table t.
func (pl *planner) onlyTable(e Expr, t string) bool {
	ok := true
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case ColRef:
			if pl.colTable[x.Name] != t {
				ok = false
			}
		case BinEx:
			walk(x.L)
			walk(x.R)
		case NotEx:
			walk(x.E)
		case BetweenEx:
			walk(x.E)
			walk(x.Lo)
			walk(x.Hi)
		case InEx:
			walk(x.E)
			for _, v := range x.Vs {
				walk(v)
			}
		}
	}
	walk(e)
	return ok
}

// splitConjuncts decomposes a top-level AND tree.
func splitConjuncts(e Expr, emit func(Expr)) {
	if e == nil {
		return
	}
	if b, ok := e.(BinEx); ok && b.Op == "AND" {
		splitConjuncts(b.L, emit)
		splitConjuncts(b.R, emit)
		return
	}
	emit(e)
}

func conjoin(es []Expr) Expr {
	out := es[0]
	for _, e := range es[1:] {
		out = BinEx{Op: "AND", L: out, R: e}
	}
	return out
}

// convert rewrites a SQL expression into a rel expression, resolving
// string literals against the dictionary of the column they compare with
// and DATE literals into day numbers.
func (pl *planner) convert(e Expr) (rel.Expr, error) {
	switch x := e.(type) {
	case ColRef:
		return rel.Col{Name: x.Name}, nil
	case NumLit:
		if x.IsInt {
			return rel.IntLit{V: x.I}, nil
		}
		return rel.FloatLit{V: x.F}, nil
	case DateLit:
		d, err := parseDate(x.S)
		if err != nil {
			return nil, err
		}
		return rel.IntLit{V: d}, nil
	case StrLit:
		return nil, pl.errf("string literal %q outside a comparison with a dictionary column", x.S)
	case NotEx:
		inner, err := pl.convert(x.E)
		if err != nil {
			return nil, err
		}
		return rel.Not{E: inner}, nil
	case BetweenEx:
		ve, err := pl.convert(x.E)
		if err != nil {
			return nil, err
		}
		lo, err := pl.convertAgainst(x.Lo, x.E)
		if err != nil {
			return nil, err
		}
		hi, err := pl.convertAgainst(x.Hi, x.E)
		if err != nil {
			return nil, err
		}
		return rel.Between{E: ve, Lo: lo, Hi: hi}, nil
	case InEx:
		ve, err := pl.convert(x.E)
		if err != nil {
			return nil, err
		}
		var vs []int64
		for _, v := range x.Vs {
			re, err := pl.convertAgainst(v, x.E)
			if err != nil {
				return nil, err
			}
			iv, ok := re.(rel.IntLit)
			if !ok {
				return nil, pl.errf("IN lists must hold integer, date or string literals")
			}
			vs = append(vs, iv.V)
		}
		return rel.InList{E: ve, Vs: vs}, nil
	case BinEx:
		l, err := pl.convertAgainst(x.L, x.R)
		if err != nil {
			return nil, err
		}
		r, err := pl.convertAgainst(x.R, x.L)
		if err != nil {
			return nil, err
		}
		op, ok := binOps[x.Op]
		if !ok {
			return nil, pl.errf("unknown operator %q", x.Op)
		}
		return rel.Bin{Op: op, L: l, R: r}, nil
	}
	return nil, pl.errf("unsupported expression %T", e)
}

var binOps = map[string]rel.BinOp{
	"+": rel.Add, "-": rel.Sub, "*": rel.Mul, "/": rel.Div, "%": rel.Mod,
	"=": rel.Eq, "<>": rel.Ne, "!=": rel.Ne,
	"<": rel.Lt, "<=": rel.Le, ">": rel.Gt, ">=": rel.Ge,
	"AND": rel.And, "OR": rel.Or,
}

// convertAgainst converts e, resolving string literals via the dictionary
// of the column on the other side of the comparison.
func (pl *planner) convertAgainst(e, other Expr) (rel.Expr, error) {
	s, ok := e.(StrLit)
	if !ok {
		return pl.convert(e)
	}
	col, ok := other.(ColRef)
	if !ok {
		return nil, pl.errf("string literal %q must compare with a column", s.S)
	}
	t := pl.cat.Table(pl.colTable[col.Name])
	if d, ok := t.Def(col.Name); !ok || d.Dict == nil {
		return nil, pl.errf("column %q is not a string column; cannot compare with %q", col.Name, s.S)
	}
	code, found := t.Code(col.Name, s.S)
	if !found {
		// An absent value matches nothing; -1 is outside every
		// dictionary's domain.
		return rel.IntLit{V: -1}, nil
	}
	return rel.IntLit{V: code}, nil
}

// havingFn compiles a HAVING expression into a row predicate over output
// columns.
func (pl *planner) havingFn(e Expr, outNames map[string]bool) (func(rel.Row) bool, error) {
	eval, err := pl.rowExpr(e, outNames)
	if err != nil {
		return nil, err
	}
	return func(r rel.Row) bool { return eval(r) != 0 }, nil
}

func (pl *planner) rowExpr(e Expr, outNames map[string]bool) (func(rel.Row) float64, error) {
	switch x := e.(type) {
	case ColRef:
		if !outNames[x.Name] && !contains(pl.stmt.GroupBy, x.Name) {
			return nil, pl.errf("HAVING column %q is not in the output", x.Name)
		}
		name := x.Name
		return func(r rel.Row) float64 { return r[name] }, nil
	case NumLit:
		v := x.F
		if x.IsInt {
			v = float64(x.I)
		}
		return func(rel.Row) float64 { return v }, nil
	case DateLit:
		d, err := parseDate(x.S)
		if err != nil {
			return nil, err
		}
		return func(rel.Row) float64 { return float64(d) }, nil
	case NotEx:
		inner, err := pl.rowExpr(x.E, outNames)
		if err != nil {
			return nil, err
		}
		return func(r rel.Row) float64 {
			if inner(r) == 0 {
				return 1
			}
			return 0
		}, nil
	case BetweenEx:
		v, err := pl.rowExpr(x.E, outNames)
		if err != nil {
			return nil, err
		}
		lo, err := pl.rowExpr(x.Lo, outNames)
		if err != nil {
			return nil, err
		}
		hi, err := pl.rowExpr(x.Hi, outNames)
		if err != nil {
			return nil, err
		}
		return func(r rel.Row) float64 {
			if w := v(r); w >= lo(r) && w <= hi(r) {
				return 1
			}
			return 0
		}, nil
	case BinEx:
		l, err := pl.rowExpr(x.L, outNames)
		if err != nil {
			return nil, err
		}
		rr, err := pl.rowExpr(x.R, outNames)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(r rel.Row) float64 {
			a, b := l(r), rr(r)
			switch op {
			case "+":
				return a + b
			case "-":
				return a - b
			case "*":
				return a * b
			case "/":
				if b == 0 {
					return 0
				}
				return a / b
			case "=":
				return b2f(a == b)
			case "<>", "!=":
				return b2f(a != b)
			case "<":
				return b2f(a < b)
			case "<=":
				return b2f(a <= b)
			case ">":
				return b2f(a > b)
			case ">=":
				return b2f(a >= b)
			case "AND":
				return b2f(a != 0 && b != 0)
			case "OR":
				return b2f(a != 0 || b != 0)
			}
			return 0
		}, nil
	}
	return nil, pl.errf("unsupported HAVING expression %T", e)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func parseDate(s string) (int64, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("sql: bad date %q", s)
	}
	base := time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)
	return int64(t.Sub(base).Hours() / 24), nil
}
