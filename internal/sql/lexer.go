// Package sql is the textual frontend: a lexer, parser and planner for the
// SQL subset the examples and the voodoo-run tool accept. It plays the role
// MonetDB's SQL layer plays in the paper (§4, "Queries"): parsing and
// straightforward planning; all execution strategy lives below, in the
// Voodoo algebra.
//
// Supported grammar:
//
//	SELECT item [, item]*
//	FROM table [JOIN table ON col = col]*
//	[WHERE predicate]
//	[GROUP BY col [, col]*]
//	[HAVING predicate-over-outputs]
//	[ORDER BY name [DESC] [, ...]]
//	[LIMIT n]
//
// where item is an expression, an aggregate (SUM/COUNT/AVG/MIN/MAX), or
// either with an AS alias; predicates support AND/OR/NOT, comparisons,
// BETWEEN ... AND ..., IN (...), numeric literals, string literals
// (resolved against dictionary-encoded columns) and DATE 'YYYY-MM-DD'
// literals.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp // punctuation and operators
	tokKeyword
)

type token struct {
	kind tokKind
	text string // keywords upper-cased, identifiers lower-cased
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true,
	"ORDER":  true, "LIMIT": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "BETWEEN": true, "IN": true, "JOIN": true, "ON": true,
	"SUM": true, "COUNT": true, "AVG": true, "MIN": true, "MAX": true,
	"DESC": true, "ASC": true, "DATE": true, "INTERVAL": true,
}

// lex tokenizes the input.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := rune(src[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			j := i + 1
			for j < len(src) && src[j] != '\'' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("sql: unterminated string at %d", i)
			}
			toks = append(toks, token{kind: tokString, text: src[i+1 : j], pos: i})
			i = j + 1
		case unicode.IsDigit(c) || (c == '.' && i+1 < len(src) && unicode.IsDigit(rune(src[i+1]))):
			j := i
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: src[i:j], pos: i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			word := src[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: i})
			} else {
				toks = append(toks, token{kind: tokIdent, text: strings.ToLower(word), pos: i})
			}
			i = j
		default:
			// Multi-char operators first.
			for _, op := range []string{"<=", ">=", "<>", "!="} {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, token{kind: tokOp, text: op, pos: i})
					i += len(op)
					goto next
				}
			}
			switch c {
			case '(', ')', ',', '*', '+', '-', '/', '<', '>', '=', '.', '%':
				toks = append(toks, token{kind: tokOp, text: string(c), pos: i})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at %d", c, i)
			}
		}
	next:
	}
	toks = append(toks, token{kind: tokEOF, pos: len(src)})
	return toks, nil
}
