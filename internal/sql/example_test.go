package sql_test

import (
	"fmt"

	"voodoo/internal/rel"
	"voodoo/internal/sql"
	"voodoo/internal/storage"
)

// Example parses a SQL query, plans it against a catalog, and executes it
// on the Voodoo compiling backend.
func Example() {
	sales := storage.NewTable("sales")
	sales.AddInt("region", []int64{0, 1, 0, 1, 0})
	sales.AddFloat("amount", []float64{10, 20, 30, 40, 50})
	sales.AddString("channel", []string{"web", "store", "web", "web", "store"})
	cat := storage.NewCatalog().Add(sales)

	stmt, err := sql.Parse(`
		SELECT region, SUM(amount) AS total, COUNT(*) AS n
		FROM sales
		WHERE channel = 'web'
		GROUP BY region
		ORDER BY region`)
	if err != nil {
		panic(err)
	}
	q, err := sql.Plan(stmt, cat)
	if err != nil {
		panic(err)
	}
	res, _, err := (&rel.Engine{Cat: cat, Backend: rel.Compiled}).Run(q)
	if err != nil {
		panic(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("region=%g total=%g n=%g\n", row["region"], row["total"], row["n"])
	}
	// Output:
	// region=0 total=40 n=2
	// region=1 total=40 n=1
}
