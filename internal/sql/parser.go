package sql

import (
	"fmt"
	"strconv"
)

// ---- AST ----------------------------------------------------------------

// Expr is a parsed scalar expression (unresolved: string literals and
// column references bind to the catalog during planning).
type Expr interface{ isSQLExpr() }

// ColRef references a column by (lower-cased) name.
type ColRef struct{ Name string }

// NumLit is a numeric literal.
type NumLit struct {
	I     int64
	F     float64
	IsInt bool
}

// StrLit is a string literal (resolved against a dictionary at planning).
type StrLit struct{ S string }

// DateLit is DATE 'YYYY-MM-DD' (resolved to day numbers at planning).
type DateLit struct{ S string }

// BinEx is a binary expression; Op is the SQL spelling (+ - * / % = <> < <=
// > >= AND OR).
type BinEx struct {
	Op   string
	L, R Expr
}

// NotEx negates a boolean expression.
type NotEx struct{ E Expr }

// BetweenEx is e BETWEEN lo AND hi.
type BetweenEx struct{ E, Lo, Hi Expr }

// InEx is e IN (v, ...).
type InEx struct {
	E  Expr
	Vs []Expr
}

func (ColRef) isSQLExpr()    {}
func (NumLit) isSQLExpr()    {}
func (StrLit) isSQLExpr()    {}
func (DateLit) isSQLExpr()   {}
func (BinEx) isSQLExpr()     {}
func (NotEx) isSQLExpr()     {}
func (BetweenEx) isSQLExpr() {}
func (InEx) isSQLExpr()      {}

// SelectItem is one output column.
type SelectItem struct {
	Agg   string // "", "SUM", "COUNT", "AVG", "MIN", "MAX"
	E     Expr   // nil for COUNT(*)
	Alias string
}

// JoinClause is JOIN table ON left = right.
type JoinClause struct {
	Table string
	L, R  string // column names; sides resolved during planning
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Col  string
	Desc bool
}

// SelectStmt is a parsed query.
type SelectStmt struct {
	Items   []SelectItem
	From    string
	Joins   []JoinClause
	Where   Expr
	GroupBy []string
	Having  Expr
	OrderBy []OrderItem
	Limit   int
}

// ---- Parser ---------------------------------------------------------------

type parser struct {
	toks []token
	i    int
}

// Parse parses one SELECT statement.
func Parse(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input")
	}
	return stmt, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, text string) (token, error) {
	if !p.at(k, text) {
		return token{}, p.errf("expected %q, found %q", text, p.cur().text)
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: position %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	for {
		item, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	stmt.From = t.text
	for p.accept(tokKeyword, "JOIN") {
		jt, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		l, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		r, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Table: jt.text, L: l.text, R: r.text})
	}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, c.text)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		h, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			o := OrderItem{Col: c.text}
			if p.accept(tokKeyword, "DESC") {
				o.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, o)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(n.text)
		if err != nil || v < 0 {
			return nil, p.errf("bad limit %q", n.text)
		}
		stmt.Limit = v
	}
	return stmt, nil
}

var aggNames = map[string]bool{"SUM": true, "COUNT": true, "AVG": true, "MIN": true, "MAX": true}

func (p *parser) parseItem() (SelectItem, error) {
	var item SelectItem
	if p.cur().kind == tokKeyword && aggNames[p.cur().text] {
		item.Agg = p.next().text
		if _, err := p.expect(tokOp, "("); err != nil {
			return item, err
		}
		if item.Agg == "COUNT" && p.accept(tokOp, "*") {
			// COUNT(*): no expression.
		} else {
			e, err := p.parseAdd()
			if err != nil {
				return item, err
			}
			item.E = e
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return item, err
		}
	} else {
		e, err := p.parseAdd()
		if err != nil {
			return item, err
		}
		item.E = e
	}
	if p.accept(tokKeyword, "AS") {
		a, err := p.expect(tokIdent, "")
		if err != nil {
			return item, err
		}
		item.Alias = a.text
	}
	return item, nil
}

// Precedence: OR < AND < NOT < comparison/BETWEEN/IN < add < mul < unary.

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = BinEx{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = BinEx{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return NotEx{E: e}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "BETWEEN") {
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return BetweenEx{E: l, Lo: lo, Hi: hi}, nil
	}
	if p.accept(tokKeyword, "IN") {
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		var vs []Expr
		for {
			v, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			vs = append(vs, v)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return InEx{E: l, Vs: vs}, nil
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.accept(tokOp, op) {
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return BinEx{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokOp, "+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = BinEx{Op: "+", L: l, R: r}
		case p.accept(tokOp, "-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = BinEx{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokOp, "*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = BinEx{Op: "*", L: l, R: r}
		case p.accept(tokOp, "/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = BinEx{Op: "/", L: l, R: r}
		case p.accept(tokOp, "%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = BinEx{Op: "%", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokOp, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return BinEx{Op: "-", L: NumLit{IsInt: true}, R: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		if i, err := strconv.ParseInt(t.text, 10, 64); err == nil {
			return NumLit{I: i, IsInt: true}, nil
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return NumLit{F: f}, nil
	case t.kind == tokString:
		p.next()
		return StrLit{S: t.text}, nil
	case t.kind == tokKeyword && t.text == "DATE":
		p.next()
		s, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		return DateLit{S: s.text}, nil
	case t.kind == tokIdent:
		p.next()
		return ColRef{Name: t.text}, nil
	case t.kind == tokOp && t.text == "(":
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}
