package sql

import (
	"math"
	"strings"
	"testing"

	"voodoo/internal/rel"
	"voodoo/internal/tpch"
)

var cat = tpch.Generate(tpch.Config{SF: 0.002, Seed: 42})

func run(t *testing.T, src string) *rel.Result {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	q, err := Plan(stmt, cat)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	e := &rel.Engine{Cat: cat, Backend: rel.Compiled}
	res, _, err := e.Run(q)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT sum(x) FROM t WHERE a >= 1.5 AND b = 'hi'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	if toks[0].text != "SELECT" || toks[1].text != "SUM" {
		t.Fatalf("keyword casing wrong: %v %v", toks[0], toks[1])
	}
	if toks[3].text != "x" || toks[3].kind != tokIdent {
		t.Fatalf("ident wrong: %v", toks[3])
	}
	found := false
	for _, tk := range toks {
		if tk.kind == tokString && tk.text == "hi" {
			found = true
		}
	}
	if !found {
		t.Fatal("string literal not lexed")
	}
	_ = kinds
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("select 'unterminated"); err == nil {
		t.Error("expected unterminated string error")
	}
	if _, err := lex("select #"); err == nil {
		t.Error("expected bad character error")
	}
}

func TestParseShape(t *testing.T) {
	stmt, err := Parse(`SELECT l_shipmode, COUNT(*) AS n
		FROM lineitem JOIN orders ON l_orderkey = o_orderkey
		WHERE l_shipdate >= DATE '1994-01-01' AND l_quantity BETWEEN 1 AND 10
		GROUP BY l_shipmode ORDER BY n DESC LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.From != "lineitem" || len(stmt.Joins) != 1 || stmt.Joins[0].Table != "orders" {
		t.Fatalf("bad from/joins: %+v", stmt)
	}
	if len(stmt.GroupBy) != 1 || stmt.Limit != 3 || !stmt.OrderBy[0].Desc {
		t.Fatalf("bad tail clauses: %+v", stmt)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"SELECT FROM t",
		"SELECT sum(x FROM t",
		"SELECT sum(x) t",
		"SELECT sum(x) FROM t WHERE",
		"SELECT sum(x) FROM t LIMIT x",
		"SELECT sum(x) FROM t extra",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

// TestQ6EquivalentSQL runs the SQL form of TPC-H Q6 and compares it with
// the hand-built plan.
func TestQ6EquivalentSQL(t *testing.T) {
	res := run(t, `SELECT SUM(l_extendedprice * l_discount) AS revenue
		FROM lineitem
		WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
		  AND l_discount BETWEEN 0.0499 AND 0.0701 AND l_quantity < 24`)
	want, _, err := tpch.Q6(&rel.Engine{Cat: cat, Backend: rel.Compiled})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Rows[0]["revenue"]-want.Rows[0]["revenue"]) > 1e-6 {
		t.Fatalf("sql %g vs plan %g", res.Rows[0]["revenue"], want.Rows[0]["revenue"])
	}
}

func TestGroupByWithStrings(t *testing.T) {
	res := run(t, `SELECT l_returnflag, COUNT(*) AS n, SUM(l_quantity) AS q
		FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (A, N, R)", len(res.Rows))
	}
	li := cat.Table("lineitem")
	var wantN [3]float64
	for i := 0; i < li.N; i++ {
		wantN[li.Col("l_returnflag").Int(i)]++
	}
	for i, r := range res.Rows {
		if r["n"] != wantN[i] {
			t.Errorf("flag %d count = %g, want %g", i, r["n"], wantN[i])
		}
	}
	if res.Decode("l_returnflag", res.Rows[0]["l_returnflag"]) != "A" {
		t.Errorf("first flag should decode to A")
	}
}

func TestStringPredicateAndJoin(t *testing.T) {
	res := run(t, `SELECT COUNT(*) AS n FROM lineitem
		JOIN orders ON l_orderkey = o_orderkey
		WHERE l_returnflag = 'R' AND o_orderpriority = '1-URGENT'`)
	li := cat.Table("lineitem")
	ord := cat.Table("orders")
	rCode, _ := li.Code("l_returnflag", "R")
	uCode, _ := ord.Code("o_orderpriority", "1-URGENT")
	prio := map[int64]int64{}
	for i := 0; i < ord.N; i++ {
		prio[ord.Col("o_orderkey").Int(i)] = ord.Col("o_orderpriority").Int(i)
	}
	var want float64
	for i := 0; i < li.N; i++ {
		if li.Col("l_returnflag").Int(i) == rCode &&
			prio[li.Col("l_orderkey").Int(i)] == uCode {
			want++
		}
	}
	if res.Rows[0]["n"] != want {
		t.Fatalf("count = %g, want %g", res.Rows[0]["n"], want)
	}
}

func TestInListAndOr(t *testing.T) {
	res := run(t, `SELECT COUNT(*) AS n FROM lineitem
		WHERE l_shipmode IN ('AIR', 'RAIL') OR l_quantity > 49`)
	li := cat.Table("lineitem")
	air, _ := li.Code("l_shipmode", "AIR")
	rail, _ := li.Code("l_shipmode", "RAIL")
	var want float64
	for i := 0; i < li.N; i++ {
		m := li.Col("l_shipmode").Int(i)
		if m == air || m == rail || li.Col("l_quantity").Int(i) > 49 {
			want++
		}
	}
	if res.Rows[0]["n"] != want {
		t.Fatalf("count = %g, want %g", res.Rows[0]["n"], want)
	}
}

func TestUnknownStringMatchesNothing(t *testing.T) {
	res := run(t, `SELECT COUNT(*) AS n FROM lineitem WHERE l_shipmode = 'WARP DRIVE'`)
	if res.Rows[0]["n"] != 0 {
		t.Fatalf("count = %g, want 0", res.Rows[0]["n"])
	}
}

func TestPlanErrors(t *testing.T) {
	for src, wantSub := range map[string]string{
		`SELECT SUM(x) AS s FROM nope`:                                 "no table",
		`SELECT SUM(nope) AS s FROM lineitem`:                          "unknown column",
		`SELECT l_quantity FROM lineitem`:                              "GROUP BY",
		`SELECT l_quantity, COUNT(*) AS n FROM lineitem`:               "GROUP BY",
		`SELECT COUNT(*) AS n FROM lineitem ORDER BY nope`:             "not in the output",
		`SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity = 'five'`: "", // any error
	} {
		stmt, err := Parse(src)
		if err != nil {
			continue
		}
		_, err = Plan(stmt, cat)
		if err == nil {
			t.Errorf("expected plan error for %q", src)
			continue
		}
		if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%q: error %q does not mention %q", src, err, wantSub)
		}
	}
}

func TestAvgMinMax(t *testing.T) {
	res := run(t, `SELECT AVG(l_quantity) AS a, MIN(l_quantity) AS lo, MAX(l_quantity) AS hi
		FROM lineitem`)
	li := cat.Table("lineitem")
	var sum, lo, hi float64
	lo, hi = 1e18, -1e18
	for i := 0; i < li.N; i++ {
		q := float64(li.Col("l_quantity").Int(i))
		sum += q
		lo = math.Min(lo, q)
		hi = math.Max(hi, q)
	}
	r := res.Rows[0]
	if math.Abs(r["a"]-sum/float64(li.N)) > 1e-9 || r["lo"] != lo || r["hi"] != hi {
		t.Fatalf("avg/min/max wrong: %v (want avg %g lo %g hi %g)", r, sum/float64(li.N), lo, hi)
	}
}

func TestHavingClause(t *testing.T) {
	res := run(t, `SELECT l_returnflag, COUNT(*) AS n FROM lineitem
		GROUP BY l_returnflag HAVING n > 10000 ORDER BY n DESC`)
	li := cat.Table("lineitem")
	counts := map[int64]float64{}
	for i := 0; i < li.N; i++ {
		counts[li.Col("l_returnflag").Int(i)]++
	}
	want := 0
	for _, c := range counts {
		if c > 10000 {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	for _, r := range res.Rows {
		if r["n"] <= 10000 {
			t.Errorf("having violated: %v", r)
		}
	}
}

func TestHavingErrors(t *testing.T) {
	stmt, err := Parse(`SELECT COUNT(*) AS n FROM lineitem HAVING nope > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Plan(stmt, cat); err == nil {
		t.Fatal("expected error for unknown having column")
	}
}

// TestBareCountStar is the regression test for SELECT COUNT(*) with no
// WHERE and no other column reference: the scan used to come out with
// zero columns and the lowerer crashed looking for a count anchor.
func TestBareCountStar(t *testing.T) {
	res := run(t, "SELECT COUNT(*) AS n FROM orders")
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(res.Rows))
	}
	want := float64(cat.Table("orders").N)
	if got := res.Rows[0]["n"]; got != want {
		t.Fatalf("COUNT(*) = %v, want %v", got, want)
	}
}
