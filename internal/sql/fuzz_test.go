package sql

import (
	"strings"
	"testing"
)

// FuzzParse asserts that no SQL input can panic the lexer or parser: every
// outcome is either a parsed statement or a returned error. (The planner
// is fuzzed transitively by parsed statements that reach TPC-H names.)
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT l_returnflag, COUNT(*) AS n FROM lineitem GROUP BY l_returnflag",
		"SELECT SUM(l_extendedprice*l_discount) AS rev FROM lineitem WHERE l_quantity < 24",
		"SELECT a FROM t WHERE x >= 10 AND y < 3.5 OR z = 'str''quoted'",
		"SELECT MIN(a), MAX(b), AVG(c) FROM t GROUP BY d, e ORDER BY 1 DESC LIMIT 10",
		"select * from t where d >= date '1994-01-01' and d < date '1995-01-01'",
		"SELECT a + b * (c - d) / e FROM t",
		"SELECT COUNT(*) FROM a, b WHERE a.x = b.y",
		"",
		"SELECT",
		"SELECT 'unterminated",
		"SELECT ((((((",
		"\x00\xff SELECT \xef\xbf\xbd",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return // bound parse cost, not panic-safety
		}
		stmt, err := Parse(src)
		if err == nil && stmt == nil {
			t.Fatalf("Parse(%q) returned neither statement nor error", src)
		}
		_ = strings.TrimSpace(src)
	})
}
