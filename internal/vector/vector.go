// Package vector implements Voodoo's data model: Structured Vectors.
//
// A Structured Vector is an ordered collection of fixed-size data items, all
// conforming to the same schema (paper §2.1). Items may nest other items;
// attributes are addressed with dotted Keypaths such as ".input.value".
// Internally a vector is stored columnar: one Column per leaf keypath.
//
// Columns come in two physical flavors:
//
//   - materialized: a typed Go slice (int64 or float64) plus an optional
//     validity mask distinguishing "empty" slots (the paper's ε padding);
//   - generated: a control vector described only by run metadata
//     (from, step, cap) with v[i] = (from + floor(i*step)) mod cap.
//
// Generated columns are never stored; they exist so that frontends can
// declaratively control the parallelism of fold operations (paper §2.2,
// "Controlled Folding") and so that backends can derive loop structure from
// the metadata instead of data (paper §3.1, "Maintaining Run Metadata").
//
// # Error handling
//
// Accessors in this package panic on misuse (wrong-kind access, unknown
// attribute, out-of-range slice): these are internal invariant violations
// — the callers are the interpreter and compiler, which type-check
// operands before touching columns — not conditions reachable from user
// input. Query execution layers (interp.RunContext, compile
// Plan.RunContext, exec workers) recover such panics into
// *exec.PanicError, so a latent bug here fails one query, not the
// process.
package vector

import (
	"fmt"
	"sort"
	"strings"
)

// Kind enumerates the scalar types of the Voodoo data model. The algebra is
// deliberately minimal: 64-bit integers (also used for booleans, positions,
// dates and dictionary-encoded strings) and 64-bit floats.
type Kind uint8

const (
	// Int is a 64-bit signed integer attribute.
	Int Kind = iota
	// Float is a 64-bit IEEE-754 attribute.
	Float
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Float:
		return "float"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// RunMeta is the descriptive metadata the compiler keeps about generated
// (control) attributes: v[i] = (From + floor(i*Step)) mod Cap, matching the
// equation in paper §3.1, with the step held exactly as the rational
// StepNum/StepDen (float steps would violate the Divide law for factors
// like 3 through rounding). Cap == 0 means "no modulo"; a zero-valued
// StepDen reads as 1 so the zero RunMeta is the constant zero vector.
//
// The metadata is closed under the operations the paper uses to tune
// parallelism: dividing by a constant x multiplies StepDen by x; a modulo
// by x sets Cap to x.
type RunMeta struct {
	From    int64
	StepNum int64
	StepDen int64
	Cap     int64
}

// Step constructs the metadata for a Range with integral step.
func Step(from, step int64) RunMeta {
	return RunMeta{From: from, StepNum: step, StepDen: 1}
}

func (m RunMeta) den() int64 {
	if m.StepDen <= 0 {
		return 1
	}
	return m.StepDen
}

// Den returns the normalized step denominator (a zero StepDen reads as 1).
func (m RunMeta) Den() int64 { return m.den() }

// IntegralStep reports whether the step equals exactly the integer s.
func (m RunMeta) IntegralStep(s int64) bool {
	return m.StepNum == s*m.den()
}

// Value evaluates the generated attribute at position i.
func (m RunMeta) Value(i int) int64 {
	prod := int64(i) * m.StepNum
	q := prod / m.den()
	if prod < 0 && prod%m.den() != 0 {
		q-- // floor, not truncation, for negative steps
	}
	v := m.From + q
	if m.Cap > 0 {
		v %= m.Cap
		if v < 0 {
			v += m.Cap
		}
	}
	return v
}

// Divide returns the metadata of this control vector integer-divided by x.
// Dividing is how frontends create blocked partitions (runs of length x).
func (m RunMeta) Divide(x int64) (RunMeta, bool) {
	if x <= 0 || m.Cap > 0 {
		// A division after a modulo is no longer expressible as
		// (from, step, cap); callers must materialize. (Negative
		// divisors would flip floor direction.)
		return RunMeta{}, false
	}
	if m.From%x != 0 {
		// floor((from + floor(i*s))/x) folds into the step only when
		// from is a multiple of x; typical control vectors start at 0.
		return RunMeta{}, false
	}
	out := RunMeta{From: m.From / x, StepNum: m.StepNum, StepDen: m.den() * x}
	return out.reduced(), true
}

// Modulo returns the metadata of this control vector modulo x. Taking a
// modulo is how frontends create strided (SIMD-lane style) partitions.
func (m RunMeta) Modulo(x int64) (RunMeta, bool) {
	if x <= 0 {
		return RunMeta{}, false
	}
	if m.Cap > 0 && m.Cap%x != 0 {
		return RunMeta{}, false
	}
	return RunMeta{From: m.From % x, StepNum: m.StepNum, StepDen: m.den(), Cap: x}, true
}

// reduced cancels the gcd of the step fraction (overflow hygiene).
func (m RunMeta) reduced() RunMeta {
	a, b := m.StepNum, m.den()
	if a < 0 {
		a = -a
	}
	for b != 0 {
		a, b = b, a%b
	}
	if a > 1 {
		m.StepNum /= a
		m.StepDen = m.den() / a
	} else {
		m.StepDen = m.den()
	}
	return m
}

// IsConstant reports whether every position evaluates to the same value.
func (m RunMeta) IsConstant() bool {
	return m.StepNum == 0 || m.Cap == 1
}

// RunLength returns the length of the value runs this metadata describes and
// whether that length is uniform and statically known. A Range with step 1
// has runs of length 1; Divide by x yields runs of length x.
func (m RunMeta) RunLength() (int, bool) {
	if m.IsConstant() {
		return 0, false // a single unbounded run
	}
	num, den := m.StepNum, m.den()
	if num < 0 {
		return 0, false
	}
	if num >= den {
		// The value advances every step (by num/den ≥ 1): uniform runs
		// of one exactly when the increment is integral.
		if num%den == 0 {
			return 1, true
		}
		return 0, false
	}
	if den%num != 0 {
		return 0, false // non-uniform run lengths
	}
	return int(den / num), true
}

// Column is a single attribute of a structured vector.
type Column struct {
	kind Kind
	n    int

	// Exactly one of the following storage layouts is active.
	ints   []int64
	floats []float64
	gen    *RunMeta

	// valid marks non-empty slots; nil means "all slots filled". Empty
	// slots (the paper's ε) arise from scatters that skip positions and
	// from fold padding.
	valid []bool
}

// NewInt returns a materialized integer column backed by vals. The slice is
// adopted, not copied.
func NewInt(vals []int64) *Column {
	return &Column{kind: Int, n: len(vals), ints: vals}
}

// NewFloat returns a materialized float column backed by vals. The slice is
// adopted, not copied.
func NewFloat(vals []float64) *Column {
	return &Column{kind: Float, n: len(vals), floats: vals}
}

// NewIntWithValid returns a materialized integer column adopting both the
// value slice and the validity mask (nil valid = all slots filled). The
// mask uses the same representation SetEmpty maintains, so adopting an
// executor buffer's mask is equivalent to replaying its empty slots.
func NewIntWithValid(vals []int64, valid []bool) *Column {
	return &Column{kind: Int, n: len(vals), ints: vals, valid: valid}
}

// NewFloatWithValid is NewIntWithValid for float columns.
func NewFloatWithValid(vals []float64, valid []bool) *Column {
	return &Column{kind: Float, n: len(vals), floats: vals, valid: valid}
}

// NewGenerated returns a control-vector column of length n described by
// meta. Generated columns are integer-typed and occupy no storage.
func NewGenerated(n int, meta RunMeta) *Column {
	m := meta
	return &Column{kind: Int, n: n, gen: &m}
}

// NewConst returns a constant integer column of length n.
func NewConst(n int, v int64) *Column {
	return NewGenerated(n, RunMeta{From: v, StepDen: 1})
}

// NewEmptyInt returns an integer column of length n with every slot empty.
func NewEmptyInt(n int) *Column {
	c := &Column{kind: Int, n: n, ints: make([]int64, n), valid: make([]bool, n)}
	return c
}

// NewEmptyFloat returns a float column of length n with every slot empty.
func NewEmptyFloat(n int) *Column {
	return &Column{kind: Float, n: n, floats: make([]float64, n), valid: make([]bool, n)}
}

// Kind returns the scalar type of the column.
func (c *Column) Kind() Kind { return c.kind }

// Len returns the number of slots, including empty ones.
func (c *Column) Len() int { return c.n }

// Generated returns the run metadata and true if the column is a generated
// control vector.
func (c *Column) Generated() (RunMeta, bool) {
	if c.gen != nil {
		return *c.gen, true
	}
	return RunMeta{}, false
}

// Int returns the integer value at i. It panics if the column is
// float-typed; empty slots read as 0.
func (c *Column) Int(i int) int64 {
	if c.gen != nil {
		return c.gen.Value(i)
	}
	if c.kind != Int {
		panic("vector: Int() on float column")
	}
	return c.ints[i]
}

// Float returns the float value at i, converting integer (and generated)
// columns. Empty slots read as 0.
func (c *Column) Float(i int) float64 {
	if c.gen != nil {
		return float64(c.gen.Value(i))
	}
	if c.kind == Float {
		return c.floats[i]
	}
	return float64(c.ints[i])
}

// Valid reports whether slot i holds a value (true) or is empty ε (false).
func (c *Column) Valid(i int) bool {
	if c.valid == nil {
		return true
	}
	return c.valid[i]
}

// AllValid reports whether the column has no empty slots.
func (c *Column) AllValid() bool {
	if c.valid == nil {
		return true
	}
	for _, v := range c.valid {
		if !v {
			return false
		}
	}
	return true
}

// SetInt stores v at slot i and marks it filled.
func (c *Column) SetInt(i int, v int64) {
	if c.kind != Int || c.gen != nil {
		panic("vector: SetInt on non-materialized-int column")
	}
	c.ints[i] = v
	if c.valid != nil {
		c.valid[i] = true
	}
}

// SetFloat stores v at slot i and marks it filled.
func (c *Column) SetFloat(i int, v float64) {
	if c.kind != Float || c.gen != nil {
		panic("vector: SetFloat on non-materialized-float column")
	}
	c.floats[i] = v
	if c.valid != nil {
		c.valid[i] = true
	}
}

// SetEmpty marks slot i as empty (ε).
func (c *Column) SetEmpty(i int) {
	if c.gen != nil {
		panic("vector: SetEmpty on generated column")
	}
	if c.valid == nil {
		c.valid = make([]bool, c.n)
		for j := range c.valid {
			c.valid[j] = true
		}
	}
	c.valid[i] = false
}

// Ints returns the backing integer slice, materializing generated columns.
// The result must be treated as read-only for generated columns.
func (c *Column) Ints() []int64 {
	if c.gen != nil {
		out := make([]int64, c.n)
		for i := range out {
			out[i] = c.gen.Value(i)
		}
		return out
	}
	if c.kind != Int {
		panic("vector: Ints() on float column")
	}
	return c.ints
}

// Floats returns the backing float slice. It panics on integer columns.
func (c *Column) Floats() []float64 {
	if c.kind != Float {
		panic("vector: Floats() on int column")
	}
	return c.floats
}

// Materialize returns a materialized copy of the column (generated columns
// are expanded; materialized columns are deep-copied).
func (c *Column) Materialize() *Column {
	out := &Column{kind: c.kind, n: c.n}
	switch {
	case c.gen != nil:
		out.ints = make([]int64, c.n)
		for i := range out.ints {
			out.ints[i] = c.gen.Value(i)
		}
	case c.kind == Int:
		out.ints = append([]int64(nil), c.ints...)
	default:
		out.floats = append([]float64(nil), c.floats...)
	}
	if c.valid != nil {
		out.valid = append([]bool(nil), c.valid...)
	}
	return out
}

// Slice returns a materialized copy of rows [lo, hi).
func (c *Column) Slice(lo, hi int) *Column {
	if lo < 0 || hi > c.n || lo > hi {
		panic(fmt.Sprintf("vector: slice [%d,%d) out of range 0..%d", lo, hi, c.n))
	}
	out := &Column{kind: c.kind, n: hi - lo}
	switch {
	case c.gen != nil:
		out.ints = make([]int64, hi-lo)
		for i := range out.ints {
			out.ints[i] = c.gen.Value(lo + i)
		}
	case c.kind == Int:
		out.ints = append([]int64(nil), c.ints[lo:hi]...)
	default:
		out.floats = append([]float64(nil), c.floats[lo:hi]...)
	}
	if c.valid != nil {
		out.valid = append([]bool(nil), c.valid[lo:hi]...)
	}
	return out
}

// Equal reports whether the two columns have identical length, kind,
// validity and values.
func (c *Column) Equal(o *Column) bool {
	if c.n != o.n || c.kind != o.kind {
		return false
	}
	for i := 0; i < c.n; i++ {
		if c.Valid(i) != o.Valid(i) {
			return false
		}
		if !c.Valid(i) {
			continue
		}
		if c.kind == Int {
			if c.Int(i) != o.Int(i) {
				return false
			}
		} else if c.Float(i) != o.Float(i) {
			return false
		}
	}
	return true
}

// Vector is a structured vector: a fixed number of slots, each holding one
// structured item. Attributes are stored columnar and addressed by flattened
// dotted keypaths.
type Vector struct {
	n     int
	names []string // attribute keypaths in schema order
	cols  map[string]*Column
}

// New returns an empty structured vector with n slots and no attributes.
func New(n int) *Vector {
	return &Vector{n: n, cols: map[string]*Column{}}
}

// Len returns the number of slots.
func (v *Vector) Len() int { return v.n }

// Names returns the attribute keypaths in schema order. The returned slice
// must not be modified.
func (v *Vector) Names() []string { return v.names }

// Set adds or replaces the attribute at keypath kp. The column length must
// match the vector length.
func (v *Vector) Set(kp string, c *Column) *Vector {
	if c.Len() != v.n {
		panic(fmt.Sprintf("vector: attribute %q has length %d, vector has %d", kp, c.Len(), v.n))
	}
	if _, ok := v.cols[kp]; !ok {
		v.names = append(v.names, kp)
	}
	v.cols[kp] = c
	return v
}

// Col returns the column at exactly keypath kp, or nil.
func (v *Vector) Col(kp string) *Column { return v.cols[kp] }

// MustCol returns the column at keypath kp and panics with a descriptive
// error if it does not exist.
func (v *Vector) MustCol(kp string) *Column {
	c := v.cols[kp]
	if c == nil {
		panic(fmt.Sprintf("vector: no attribute %q (have %v)", kp, v.names))
	}
	return c
}

// Subtree returns the attributes designated by keypath kp: either the single
// column named kp, or — when kp names a nested struct — all columns under
// the prefix "kp.". Returned names are relative to kp ("" for the exact
// match). The boolean is false when kp matches nothing.
func (v *Vector) Subtree(kp string) (names []string, cols []*Column, ok bool) {
	if c := v.cols[kp]; c != nil {
		return []string{""}, []*Column{c}, true
	}
	prefix := kp + "."
	for _, n := range v.names {
		if strings.HasPrefix(n, prefix) {
			names = append(names, n[len(prefix):])
			cols = append(cols, v.cols[n])
		}
	}
	return names, cols, len(names) > 0
}

// SingleCol returns the only attribute of a single-attribute vector. It is a
// convenience for operators that conceptually take "a vector of values".
func (v *Vector) SingleCol() *Column {
	if len(v.names) != 1 {
		panic(fmt.Sprintf("vector: expected a single attribute, have %v", v.names))
	}
	return v.cols[v.names[0]]
}

// FirstName returns the first attribute keypath of the vector.
func (v *Vector) FirstName() string {
	if len(v.names) == 0 {
		panic("vector: no attributes")
	}
	return v.names[0]
}

// Clone returns a shallow copy of the vector (columns shared).
func (v *Vector) Clone() *Vector {
	out := &Vector{n: v.n, names: append([]string(nil), v.names...), cols: map[string]*Column{}}
	for k, c := range v.cols {
		out.cols[k] = c
	}
	return out
}

// Equal reports whether two vectors have the same schema (ignoring attribute
// order) and identical data.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n || len(v.names) != len(o.names) {
		return false
	}
	a := append([]string(nil), v.names...)
	b := append([]string(nil), o.names...)
	sort.Strings(a)
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	for _, name := range a {
		if !v.cols[name].Equal(o.cols[name]) {
			return false
		}
	}
	return true
}

// String renders a small human-readable table, useful in tests and examples.
func (v *Vector) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "vector[%d]{", v.n)
	for i, name := range v.names {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("." + name)
	}
	sb.WriteString("}\n")
	limit := v.n
	const maxRows = 16
	if limit > maxRows {
		limit = maxRows
	}
	for i := 0; i < limit; i++ {
		for j, name := range v.names {
			if j > 0 {
				sb.WriteString("\t")
			}
			c := v.cols[name]
			switch {
			case !c.Valid(i):
				sb.WriteString("ε")
			case c.Kind() == Int:
				fmt.Fprintf(&sb, "%d", c.Int(i))
			default:
				fmt.Fprintf(&sb, "%g", c.Float(i))
			}
		}
		sb.WriteString("\n")
	}
	if limit < v.n {
		fmt.Fprintf(&sb, "... (%d more)\n", v.n-limit)
	}
	return sb.String()
}
