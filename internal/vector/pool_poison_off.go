//go:build !voodoo_poison

package vector

// poisonOnRelease is off in normal builds: release leaves buffer contents
// in place (they are zeroed on the next Get anyway). Build with
// -tags voodoo_poison to overwrite released buffers with sentinels and
// surface use-after-release as divergence.
const poisonOnRelease = false

// PoisonInt matches the voodoo_poison build's sentinel so tests can
// reference it under either tag.
const PoisonInt int64 = -0x5555555555555556

func poisonInts([]int64)     {}
func poisonFloats([]float64) {}
func poisonBools([]bool)     {}
