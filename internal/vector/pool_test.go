package vector

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestSizeClassRounding(t *testing.T) {
	cases := []struct {
		n       int
		class   int
		rounded int
	}{
		{-1, -1, -1}, {0, -1, 0}, {1, 0, 64}, {64, 0, 64}, {65, 1, 128},
		{128, 1, 128}, {1000, 4, 1024}, {1024, 4, 1024}, {1025, 5, 2048},
		{64 << 20, numClasses - 1, 64 << 20}, {64<<20 + 1, -1, 64<<20 + 1},
	}
	for _, c := range cases {
		class, rounded := sizeClass(c.n)
		if class != c.class || rounded != c.rounded {
			t.Errorf("sizeClass(%d) = (%d, %d), want (%d, %d)", c.n, class, rounded, c.class, c.rounded)
		}
	}
}

// FuzzSizeClass pins the rounding invariants: a pooled class always
// covers the request with a power-of-two capacity no more than 2x the
// request, and the class index is stable under re-rounding (so a slice
// released by capacity lands back in the class it was issued from).
func FuzzSizeClass(f *testing.F) {
	for _, n := range []int{-5, 0, 1, 63, 64, 65, 4096, 1 << 20, 64 << 20, 1 << 30} {
		f.Add(n)
	}
	f.Fuzz(func(t *testing.T, n int) {
		class, rounded := sizeClass(n)
		if n <= 0 {
			if class != -1 {
				t.Fatalf("sizeClass(%d): non-positive request got class %d", n, class)
			}
			return
		}
		if class == -1 {
			if n <= minClassElems<<(numClasses-1) {
				t.Fatalf("sizeClass(%d): in-range request not pooled", n)
			}
			if rounded != n {
				t.Fatalf("sizeClass(%d): unpooled request rounded to %d", n, rounded)
			}
			return
		}
		if class < 0 || class >= numClasses {
			t.Fatalf("sizeClass(%d): class %d out of range", n, class)
		}
		if rounded != minClassElems<<class {
			t.Fatalf("sizeClass(%d): class %d has capacity %d, want %d", n, class, rounded, minClassElems<<class)
		}
		if rounded < n {
			t.Fatalf("sizeClass(%d): capacity %d does not cover the request", n, rounded)
		}
		if rounded&(rounded-1) != 0 {
			t.Fatalf("sizeClass(%d): capacity %d is not a power of two", n, rounded)
		}
		if n > minClassElems && rounded >= 2*n {
			t.Fatalf("sizeClass(%d): capacity %d wastes more than 2x", n, rounded)
		}
		c2, r2 := sizeClass(rounded)
		if c2 != class || r2 != rounded {
			t.Fatalf("sizeClass(%d) = (%d,%d) but sizeClass(%d) = (%d,%d): release would change class",
				n, class, rounded, rounded, c2, r2)
		}
	})
}

// TestPoolLeak is the CI leak gate (run with -count=5): every byte an
// arena acquires is either recycled into a free list or intentionally
// dropped, the retained footprint never exceeds the budget, and a
// get/release cycle at steady state is fully served from the free lists.
func TestPoolLeak(t *testing.T) {
	p := NewPool(1 << 20)
	r := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		a := p.NewArena()
		for j := 0; j < 20; j++ {
			n := 1 + r.Intn(4096)
			switch j % 3 {
			case 0:
				s := a.Ints(n)
				if len(s) != n {
					t.Fatalf("Ints(%d) has length %d", n, len(s))
				}
				for _, v := range s {
					if v != 0 {
						t.Fatalf("Ints(%d): pooled slice not zeroed", n)
					}
				}
			case 1:
				s := a.Floats(n)
				for _, v := range s {
					if v != 0 {
						t.Fatalf("Floats(%d): pooled slice not zeroed", n)
					}
				}
			default:
				s := a.Bools(n)
				for _, v := range s {
					if v {
						t.Fatalf("Bools(%d): pooled slice not zeroed", n)
					}
				}
			}
		}
		a.Release()
		a.Release() // idempotent
		if st := p.Stats(); st.RetainedBytes > 1<<20 {
			t.Fatalf("round %d: retained %d bytes exceeds the 1MiB budget", round, st.RetainedBytes)
		}
	}
	st := p.Stats()
	if st.Hits == 0 {
		t.Fatalf("no pool hits after 50 identical rounds: %+v", st)
	}
	if st.RecycledBytes == 0 {
		t.Fatalf("no bytes recycled: %+v", st)
	}
	// Steady state: a repeat of the same shapes must be ~all hits.
	before := p.Stats()
	a := p.NewArena()
	r2 := rand.New(rand.NewSource(7))
	for j := 0; j < 20; j++ {
		n := 1 + r2.Intn(4096)
		switch j % 3 {
		case 0:
			a.Ints(n)
		case 1:
			a.Floats(n)
		default:
			a.Bools(n)
		}
	}
	a.Release()
	after := p.Stats()
	if after.Misses != before.Misses {
		t.Fatalf("steady-state round missed the pool %d times", after.Misses-before.Misses)
	}
}

func TestArenaNilFallsBackToHeap(t *testing.T) {
	var a *Arena
	if got := a.Ints(5); len(got) != 5 {
		t.Fatalf("nil arena Ints(5) has length %d", len(got))
	}
	if got := a.Floats(3); len(got) != 3 {
		t.Fatalf("nil arena Floats(3) has length %d", len(got))
	}
	if c := a.EmptyInt(4); c.Len() != 4 || c.Valid(0) {
		t.Fatalf("nil arena EmptyInt(4) broken: len=%d valid0=%v", c.Len(), c.Valid(0))
	}
	a.Release() // must not panic
	var p *Pool
	if ar := p.NewArena(); ar != nil {
		t.Fatalf("nil pool produced a non-nil arena")
	}
}

func TestArenaMaterialize(t *testing.T) {
	p := NewPool(0)
	a := p.NewArena()
	gen := NewGenerated(100, Step(3, 2))
	m := a.Materialize(gen)
	for i := 0; i < 100; i++ {
		if m.Int(i) != gen.Int(i) {
			t.Fatalf("materialized generated column diverges at %d: %d vs %d", i, m.Int(i), gen.Int(i))
		}
	}
	src := NewEmptyFloat(10)
	src.SetFloat(3, 1.5)
	cp := a.Materialize(src)
	if !cp.Equal(src) {
		t.Fatalf("materialized copy diverges from source")
	}
	cp.SetFloat(4, 9) // must not write through to src
	if src.Valid(4) {
		t.Fatalf("arena materialize aliases its source")
	}
	a.Release()
}

// TestArenaConcurrentIsolation runs under -race in CI: queries on
// concurrent arenas over one shared pool must never observe each other's
// buffers. Each worker fills its slices with a worker-unique value,
// yields, and verifies; a buffer leaking across arenas (double-tracked,
// or handed out before release) is a data race and a value mismatch.
func TestArenaConcurrentIsolation(t *testing.T) {
	p := NewPool(0)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mark := int64(w + 1)
			for round := 0; round < 200; round++ {
				a := p.NewArena()
				ss := make([][]int64, 4)
				for i := range ss {
					ss[i] = a.Ints(256 + 64*i)
					for j := range ss[i] {
						ss[i][j] = mark
					}
				}
				for i := range ss {
					for j := range ss[i] {
						if ss[i][j] != mark {
							errs <- fmt.Errorf("arena isolation violated: worker %d round %d slice %d[%d] = %d",
								w, round, i, j, ss[i][j])
							return
						}
					}
				}
				a.Release()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
