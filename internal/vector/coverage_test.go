package vector

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	if Int.String() != "int" || Float.String() != "float" {
		t.Error("kind names wrong")
	}
	if !strings.HasPrefix(Kind(7).String(), "kind(") {
		t.Error("unknown kind should stringify as kind(n)")
	}
}

func TestRunMetaIsConstant(t *testing.T) {
	if !(RunMeta{From: 3}).IsConstant() {
		t.Error("step 0 is constant")
	}
	if !(RunMeta{StepNum: 1, StepDen: 1, Cap: 1}).IsConstant() {
		t.Error("cap 1 is constant")
	}
	if Step(0, 1).IsConstant() {
		t.Error("identity is not constant")
	}
}

func TestNewConstAndEmptyFloat(t *testing.T) {
	c := NewConst(5, 42)
	for i := 0; i < 5; i++ {
		if c.Int(i) != 42 {
			t.Fatalf("const slot %d = %d", i, c.Int(i))
		}
	}
	f := NewEmptyFloat(3)
	if f.Valid(0) || f.Kind() != Float {
		t.Fatal("empty float column should start invalid")
	}
	f.SetFloat(1, 2.5)
	if !f.Valid(1) || f.Float(1) != 2.5 {
		t.Fatal("SetFloat failed")
	}
}

func TestColumnAccessorPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	fcol := NewFloat([]float64{1})
	icol := NewInt([]int64{1})
	gen := NewConst(2, 1)
	expectPanic("Int on float", func() { fcol.Int(0) })
	expectPanic("Ints on float", func() { fcol.Ints() })
	expectPanic("Floats on int", func() { icol.Floats() })
	expectPanic("SetInt on float", func() { fcol.SetInt(0, 1) })
	expectPanic("SetFloat on int", func() { icol.SetFloat(0, 1) })
	expectPanic("SetInt on generated", func() { gen.SetInt(0, 1) })
	expectPanic("SetEmpty on generated", func() { gen.SetEmpty(0) })
	expectPanic("slice out of range", func() { icol.Slice(0, 5) })
}

func TestGeneratedColumnAccess(t *testing.T) {
	g := NewGenerated(6, Step(2, 1))
	if g.Int(3) != 5 || g.Float(3) != 5 {
		t.Fatal("generated access wrong")
	}
	ints := g.Ints() // materializing copy
	if len(ints) != 6 || ints[5] != 7 {
		t.Fatal("Ints() of generated wrong")
	}
	if m, ok := g.Generated(); !ok || m.From != 2 {
		t.Fatal("Generated() lost metadata")
	}
	if _, ok := NewInt([]int64{1}).Generated(); ok {
		t.Fatal("materialized column is not generated")
	}
}

func TestFloatSliceAndMaterialize(t *testing.T) {
	f := NewFloat([]float64{1, 2, 3, 4})
	f.SetEmpty(2)
	s := f.Slice(1, 4)
	if s.Float(0) != 2 || s.Valid(1) || s.Float(2) != 4 {
		t.Fatal("float slice wrong")
	}
	m := f.Materialize()
	if !m.Equal(f) {
		t.Fatal("materialize changed data")
	}
}

func TestColumnEqualMismatchedKinds(t *testing.T) {
	if NewInt([]int64{1}).Equal(NewFloat([]float64{1})) {
		t.Error("different kinds should not be equal")
	}
	if NewInt([]int64{1}).Equal(NewInt([]int64{1, 2})) {
		t.Error("different lengths should not be equal")
	}
	a := NewInt([]int64{1, 2})
	b := NewInt([]int64{1, 2})
	b.SetEmpty(1)
	if a.Equal(b) {
		t.Error("different validity should not be equal")
	}
	fa := NewFloat([]float64{1, 2})
	fb := NewFloat([]float64{1, 3})
	if fa.Equal(fb) {
		t.Error("different float values should not be equal")
	}
}

func TestVectorStringRendering(t *testing.T) {
	v := New(20)
	ints := NewEmptyInt(20)
	ints.SetInt(0, 7)
	v.Set("a", ints)
	v.Set("b", NewFloat(make([]float64, 20)))
	s := v.String()
	if !strings.Contains(s, "vector[20]{.a, .b}") {
		t.Errorf("header missing:\n%s", s)
	}
	if !strings.Contains(s, "ε") {
		t.Errorf("empty slots should render as ε:\n%s", s)
	}
	if !strings.Contains(s, "more)") {
		t.Errorf("long vectors should truncate:\n%s", s)
	}
}

func TestVectorHelpers(t *testing.T) {
	v := New(2).Set("x", NewConst(2, 1))
	if v.FirstName() != "x" {
		t.Error("FirstName wrong")
	}
	if v.MustCol("x") == nil {
		t.Error("MustCol failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCol on missing should panic")
		}
	}()
	v.MustCol("nope")
}

func TestSingleColPanicsOnMulti(t *testing.T) {
	v := New(1).Set("a", NewConst(1, 1)).Set("b", NewConst(1, 2))
	defer func() {
		if recover() == nil {
			t.Error("SingleCol on multi-attribute vector should panic")
		}
	}()
	v.SingleCol()
}

func TestCloneSharesColumns(t *testing.T) {
	v := New(2).Set("x", NewInt([]int64{1, 2}))
	c := v.Clone()
	c.Set("y", NewConst(2, 9))
	if v.Col("y") != nil {
		t.Error("clone should not mutate the original's schema")
	}
	if c.Col("x") != v.Col("x") {
		t.Error("clone should share column storage")
	}
}

func TestVectorEqualNegativeCases(t *testing.T) {
	a := New(1).Set("x", NewConst(1, 1))
	b := New(2).Set("x", NewConst(2, 1))
	if a.Equal(b) {
		t.Error("different lengths")
	}
	c := New(1).Set("y", NewConst(1, 1))
	if a.Equal(c) {
		t.Error("different schemas")
	}
}
