package vector

import (
	"sync"
	"sync/atomic"

	"voodoo/internal/metrics"
)

// Pool hit/miss visibility: steady-state serving should show hits
// dominating misses once the size classes are warm; recycled bytes is the
// allocation traffic the garbage collector never sees.
var (
	poolHits = metrics.NewCounter("voodoo_pool_hits_total",
		"Buffer requests satisfied from a vector.Pool free list.")
	poolMisses = metrics.NewCounter("voodoo_pool_misses_total",
		"Buffer requests that fell through a vector.Pool to the Go allocator.")
	poolRecycled = metrics.NewCounter("voodoo_pool_recycled_bytes_total",
		"Bytes returned to vector.Pool free lists by arena releases.")
)

// Size classes are powers of two from minClassElems elements up; requests
// above the largest class fall through to the Go allocator (they are rare
// and would pin too much memory in the free lists).
const (
	minClassElems = 64
	numClasses    = 21 // 64 .. 64<<20 (64Mi) elements
)

// sizeClass maps a requested element count to its size class and the
// rounded (power-of-two) capacity of that class. Class -1 means "not
// pooled": zero, negative, and beyond-largest-class counts.
func sizeClass(n int) (class, rounded int) {
	if n <= 0 {
		return -1, n
	}
	size := minClassElems
	for c := 0; c < numClasses; c++ {
		if n <= size {
			return c, size
		}
		size <<= 1
	}
	return -1, n
}

// Pool is a size-classed recycler for the backing slices behind
// materialized Columns and kernel buffers: []int64, []float64 and []bool
// validity masks. Slices are handed out through per-query Arenas and come
// back in bulk when the arena is released at end-of-run, so the steady
// state of a serving process recycles buffers instead of allocating.
//
// A Pool is safe for concurrent use by any number of arenas. Slices
// returned by a pool are zeroed, so pooled allocation is observationally
// identical to make().
type Pool struct {
	mu     sync.Mutex
	ints   [numClasses][][]int64
	floats [numClasses][][]float64
	bools  [numClasses][][]bool

	// retained is the byte footprint of the free lists; releases beyond
	// maxRetained are dropped for the garbage collector instead.
	retained    int64
	maxRetained int64

	hits, misses, recycled atomic.Int64
	// live counts arenas handed out by NewArena that have not been
	// released yet. A serving process that has drained all queries must
	// read zero here; anything else is a leak (a query path that dropped
	// its arena without Release), which the chaos harness gates on.
	live atomic.Int64
}

// DefaultMaxRetained bounds a pool's idle free-list footprint (1 GiB)
// when NewPool is given no explicit budget.
const DefaultMaxRetained = 1 << 30

// NewPool returns a pool that retains at most maxRetainedBytes across its
// free lists (0 = DefaultMaxRetained).
func NewPool(maxRetainedBytes int64) *Pool {
	if maxRetainedBytes <= 0 {
		maxRetainedBytes = DefaultMaxRetained
	}
	return &Pool{maxRetained: maxRetainedBytes}
}

// PoolStats is a point-in-time snapshot of a pool's traffic.
type PoolStats struct {
	Hits          int64 // requests served from a free list
	Misses        int64 // requests that hit the Go allocator
	RecycledBytes int64 // bytes accepted back by Release
	RetainedBytes int64 // current free-list footprint
	LiveArenas    int64 // arenas handed out and not yet released
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	retained := p.retained
	p.mu.Unlock()
	return PoolStats{
		Hits:          p.hits.Load(),
		Misses:        p.misses.Load(),
		RecycledBytes: p.recycled.Load(),
		RetainedBytes: retained,
		LiveArenas:    p.live.Load(),
	}
}

// NewArena returns a fresh arena drawing from the pool. A nil pool
// returns a nil arena, which is valid and allocates straight from the Go
// heap — callers thread *Arena unconditionally and pay nothing when
// pooling is off.
func (p *Pool) NewArena() *Arena {
	if p == nil {
		return nil
	}
	p.live.Add(1)
	return &Arena{pool: p}
}

func (p *Pool) getInts(n int) []int64 {
	c, rounded := sizeClass(n)
	if c < 0 {
		p.misses.Add(1)
		poolMisses.Inc()
		return make([]int64, n)
	}
	var s []int64
	p.mu.Lock()
	if l := p.ints[c]; len(l) > 0 {
		s, p.ints[c] = l[len(l)-1], l[:len(l)-1]
		p.retained -= int64(rounded) * 8
	}
	p.mu.Unlock()
	if s == nil {
		p.misses.Add(1)
		poolMisses.Inc()
		return make([]int64, rounded)[:n]
	}
	p.hits.Add(1)
	poolHits.Inc()
	clear(s)
	return s[:n]
}

func (p *Pool) getFloats(n int) []float64 {
	c, rounded := sizeClass(n)
	if c < 0 {
		p.misses.Add(1)
		poolMisses.Inc()
		return make([]float64, n)
	}
	var s []float64
	p.mu.Lock()
	if l := p.floats[c]; len(l) > 0 {
		s, p.floats[c] = l[len(l)-1], l[:len(l)-1]
		p.retained -= int64(rounded) * 8
	}
	p.mu.Unlock()
	if s == nil {
		p.misses.Add(1)
		poolMisses.Inc()
		return make([]float64, rounded)[:n]
	}
	p.hits.Add(1)
	poolHits.Inc()
	clear(s)
	return s[:n]
}

func (p *Pool) getBools(n int) []bool {
	c, rounded := sizeClass(n)
	if c < 0 {
		p.misses.Add(1)
		poolMisses.Inc()
		return make([]bool, n)
	}
	var s []bool
	p.mu.Lock()
	if l := p.bools[c]; len(l) > 0 {
		s, p.bools[c] = l[len(l)-1], l[:len(l)-1]
		p.retained -= int64(rounded)
	}
	p.mu.Unlock()
	if s == nil {
		p.misses.Add(1)
		poolMisses.Inc()
		return make([]bool, rounded)[:n]
	}
	p.hits.Add(1)
	poolHits.Inc()
	clear(s)
	return s[:n]
}

// Arena tracks the pooled slices of one query run. Exactly one goroutine
// may allocate from an arena (all plan-level allocation happens on the
// plan goroutine; kernel workers only write into already-allocated
// buffers), and Release must not be called before every consumer of the
// run's results is done with them. A nil *Arena is valid and falls back
// to plain make(), so unpooled callers need no branches.
type Arena struct {
	pool   *Pool
	ints   [][]int64
	floats [][]float64
	bools  [][]bool
}

// Ints returns a zeroed []int64 of length n owned by the arena.
func (a *Arena) Ints(n int) []int64 {
	if a == nil {
		return make([]int64, n)
	}
	s := a.pool.getInts(n)
	a.ints = append(a.ints, s)
	return s
}

// Floats returns a zeroed []float64 of length n owned by the arena.
func (a *Arena) Floats(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	s := a.pool.getFloats(n)
	a.floats = append(a.floats, s)
	return s
}

// Bools returns a zeroed []bool of length n owned by the arena.
func (a *Arena) Bools(n int) []bool {
	if a == nil {
		return make([]bool, n)
	}
	s := a.pool.getBools(n)
	a.bools = append(a.bools, s)
	return s
}

// EmptyInt is NewEmptyInt drawing from the arena: an integer column of
// length n with every slot empty.
func (a *Arena) EmptyInt(n int) *Column {
	if a == nil {
		return NewEmptyInt(n)
	}
	return &Column{kind: Int, n: n, ints: a.Ints(n), valid: a.Bools(n)}
}

// EmptyFloat is NewEmptyFloat drawing from the arena.
func (a *Arena) EmptyFloat(n int) *Column {
	if a == nil {
		return NewEmptyFloat(n)
	}
	return &Column{kind: Float, n: n, floats: a.Floats(n), valid: a.Bools(n)}
}

// Materialize is Column.Materialize drawing from the arena: generated
// columns are expanded and materialized columns deep-copied into
// arena-owned storage.
func (a *Arena) Materialize(c *Column) *Column {
	if a == nil {
		return c.Materialize()
	}
	out := &Column{kind: c.kind, n: c.n}
	switch {
	case c.gen != nil:
		out.ints = a.Ints(c.n)
		for i := range out.ints {
			out.ints[i] = c.gen.Value(i)
		}
	case c.kind == Int:
		out.ints = a.Ints(c.n)
		copy(out.ints, c.ints)
	default:
		out.floats = a.Floats(c.n)
		copy(out.floats, c.floats)
	}
	if c.valid != nil {
		out.valid = a.Bools(c.n)
		copy(out.valid, c.valid)
	}
	return out
}

// Release returns every slice the arena handed out to the pool's free
// lists. After Release, any Column or Buffer backed by the arena is
// invalid: its storage will be zeroed and handed to another query.
// Release is idempotent and nil-safe.
func (a *Arena) Release() {
	if a == nil || a.pool == nil {
		return
	}
	p := a.pool
	var recycled int64
	p.mu.Lock()
	for _, s := range a.ints {
		s = s[:cap(s)]
		c, rounded := sizeClass(cap(s))
		if c < 0 || cap(s) != rounded {
			continue // not a pooled shape; let the GC have it
		}
		bytes := int64(rounded) * 8
		if p.retained+bytes > p.maxRetained {
			continue
		}
		if poisonOnRelease {
			poisonInts(s)
		}
		p.ints[c] = append(p.ints[c], s)
		p.retained += bytes
		recycled += bytes
	}
	for _, s := range a.floats {
		s = s[:cap(s)]
		c, rounded := sizeClass(cap(s))
		if c < 0 || cap(s) != rounded {
			continue
		}
		bytes := int64(rounded) * 8
		if p.retained+bytes > p.maxRetained {
			continue
		}
		if poisonOnRelease {
			poisonFloats(s)
		}
		p.floats[c] = append(p.floats[c], s)
		p.retained += bytes
		recycled += bytes
	}
	for _, s := range a.bools {
		s = s[:cap(s)]
		c, rounded := sizeClass(cap(s))
		if c < 0 || cap(s) != rounded {
			continue
		}
		bytes := int64(rounded)
		if p.retained+bytes > p.maxRetained {
			continue
		}
		if poisonOnRelease {
			poisonBools(s)
		}
		p.bools[c] = append(p.bools[c], s)
		p.retained += bytes
		recycled += bytes
	}
	p.mu.Unlock()
	p.recycled.Add(recycled)
	poolRecycled.Add(recycled)
	p.live.Add(-1)
	a.ints, a.floats, a.bools = nil, nil, nil
	a.pool = nil
}

// UnpooledCopy deep-copies v into fresh heap-backed columns. Values that
// escape a pooled run — vectors persisted to storage — must be copied out
// of the arena before it is released.
func UnpooledCopy(v *Vector) *Vector {
	out := New(v.n)
	for _, name := range v.names {
		out.Set(name, v.cols[name].Materialize())
	}
	return out
}
