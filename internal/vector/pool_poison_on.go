//go:build voodoo_poison

package vector

import "math"

// poisonOnRelease makes Arena.Release overwrite every returned slice with
// sentinel garbage before it reaches a free list. Any consumer still
// reading a released buffer then sees values no real query produces —
// the difftest pooled combo and the concurrent isolation test run under
// this tag to turn silent use-after-release into loud divergence.
const poisonOnRelease = true

// PoisonInt is the sentinel released integer slots are filled with
// (0xAAAA... as a signed value; tests assert against it).
const PoisonInt int64 = -0x5555555555555556

func poisonInts(s []int64) {
	for i := range s {
		s[i] = PoisonInt
	}
}

func poisonFloats(s []float64) {
	nan := math.NaN()
	for i := range s {
		s[i] = nan
	}
}

func poisonBools(s []bool) {
	// All-true is the poison for validity masks: a released mask read as
	// "every slot valid" exposes the poisoned values next to it instead
	// of hiding them behind ε.
	for i := range s {
		s[i] = true
	}
}
