package vector

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunMetaValue(t *testing.T) {
	tests := []struct {
		name string
		m    RunMeta
		want []int64
	}{
		{"identity", Step(0, 1), []int64{0, 1, 2, 3, 4, 5}},
		{"from", Step(10, 1), []int64{10, 11, 12, 13, 14, 15}},
		{"divide4", RunMeta{StepNum: 1, StepDen: 4}, []int64{0, 0, 0, 0, 1, 1}},
		{"divide3", RunMeta{StepNum: 1, StepDen: 3}, []int64{0, 0, 0, 1, 1, 1}},
		{"mod2", RunMeta{StepNum: 1, StepDen: 1, Cap: 2}, []int64{0, 1, 0, 1, 0, 1}},
		{"mod3from1", RunMeta{From: 1, StepNum: 1, StepDen: 1, Cap: 3}, []int64{1, 2, 0, 1, 2, 0}},
		{"const", RunMeta{From: 7}, []int64{7, 7, 7, 7, 7, 7}},
		{"step2", Step(0, 2), []int64{0, 2, 4, 6, 8, 10}},
		{"negstep", Step(0, -2), []int64{0, -2, -4, -6, -8, -10}},
		{"negfraction", RunMeta{StepNum: -1, StepDen: 2}, []int64{0, -1, -1, -2, -2, -3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for i, want := range tt.want {
				if got := tt.m.Value(i); got != want {
					t.Errorf("%v.Value(%d) = %d, want %d", tt.m, i, got, want)
				}
			}
		})
	}
}

// TestRunMetaDivideLaw checks the paper's §3.1 law: dividing a control
// vector by x is equivalent to dividing its step by x.
func TestRunMetaDivideLaw(t *testing.T) {
	f := func(step uint8, x uint8, i uint16) bool {
		s := int64(step%16) + 1
		d := int64(x%16) + 1
		m := Step(0, s)
		dm, ok := m.Divide(d)
		if !ok {
			return false
		}
		return dm.Value(int(i)) == m.Value(int(i))/d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRunMetaModuloLaw checks: taking a control vector modulo x is
// equivalent to setting its cap to x.
func TestRunMetaModuloLaw(t *testing.T) {
	f := func(x uint8, i uint16) bool {
		d := int64(x%16) + 1
		m := Step(0, 1)
		mm, ok := m.Modulo(d)
		if !ok {
			return false
		}
		return mm.Value(int(i)) == m.Value(int(i))%d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRunMetaDivideAfterModulo(t *testing.T) {
	m := RunMeta{StepNum: 1, StepDen: 1, Cap: 4}
	if _, ok := m.Divide(2); ok {
		t.Error("Divide after Modulo should not be expressible in metadata")
	}
}

func TestRunMetaModuloOfModulo(t *testing.T) {
	m := RunMeta{StepNum: 1, StepDen: 1, Cap: 8}
	if mm, ok := m.Modulo(4); !ok || mm.Cap != 4 {
		t.Errorf("modulo 4 of cap-8 vector should be expressible, got %v %v", mm, ok)
	}
	if _, ok := m.Modulo(3); ok {
		t.Error("modulo 3 of cap-8 vector is not expressible in metadata")
	}
}

func TestRunLength(t *testing.T) {
	tests := []struct {
		m      RunMeta
		want   int
		wantOK bool
	}{
		{Step(0, 1), 1, true},
		{RunMeta{StepNum: 1, StepDen: 4}, 4, true},
		{RunMeta{StepNum: 1, StepDen: 1024}, 1024, true},
		{RunMeta{StepNum: 1, StepDen: 3}, 3, true},   // exactness floats cannot give
		{RunMeta{}, 0, false},                        // constant: one unbounded run
		{Step(0, 2), 1, true},                        // step > 1 still has runs of 1
		{RunMeta{StepNum: 3, StepDen: 10}, 0, false}, // non-uniform run lengths
		{RunMeta{StepNum: 3, StepDen: 2}, 0, false},  // non-integral increments
	}
	for _, tt := range tests {
		got, ok := tt.m.RunLength()
		if got != tt.want || ok != tt.wantOK {
			t.Errorf("%+v.RunLength() = %d,%v want %d,%v", tt.m, got, ok, tt.want, tt.wantOK)
		}
	}
}

func TestColumnEmptySlots(t *testing.T) {
	c := NewEmptyInt(4)
	if c.Valid(0) {
		t.Fatal("fresh empty column should have no valid slots")
	}
	c.SetInt(2, 42)
	if !c.Valid(2) || c.Int(2) != 42 {
		t.Fatalf("slot 2 = (%v, %d), want (true, 42)", c.Valid(2), c.Int(2))
	}
	if c.Valid(1) {
		t.Fatal("slot 1 should still be empty")
	}
	c.SetEmpty(2)
	if c.Valid(2) {
		t.Fatal("SetEmpty should clear the slot")
	}
}

func TestColumnSetEmptyOnFullColumn(t *testing.T) {
	c := NewInt([]int64{1, 2, 3})
	if !c.AllValid() {
		t.Fatal("materialized column should be all-valid")
	}
	c.SetEmpty(1)
	if c.Valid(1) || !c.Valid(0) || !c.Valid(2) {
		t.Fatal("SetEmpty(1) should empty only slot 1")
	}
	if c.AllValid() {
		t.Fatal("AllValid after SetEmpty")
	}
}

func TestGeneratedColumnMaterialize(t *testing.T) {
	g := NewGenerated(10, RunMeta{From: 5, StepNum: 1, StepDen: 2, Cap: 4})
	m := g.Materialize()
	if !g.Equal(m) {
		t.Fatalf("materialized generated column differs:\n%v\n%v", g.Ints(), m.Ints())
	}
	if _, ok := m.Generated(); ok {
		t.Fatal("materialized column should not report as generated")
	}
}

func TestColumnSlice(t *testing.T) {
	c := NewInt([]int64{0, 1, 2, 3, 4})
	c.SetEmpty(3)
	s := c.Slice(2, 5)
	if s.Len() != 3 || s.Int(0) != 2 || s.Valid(1) || s.Int(2) != 4 {
		t.Fatalf("bad slice: %v", s)
	}
}

func TestVectorSubtree(t *testing.T) {
	v := New(3)
	v.Set("a", NewConst(3, 1))
	v.Set("in.x", NewConst(3, 2))
	v.Set("in.y", NewConst(3, 3))

	names, cols, ok := v.Subtree("a")
	if !ok || len(names) != 1 || names[0] != "" || cols[0].Int(0) != 1 {
		t.Fatalf("Subtree(a) = %v, %v, %v", names, cols, ok)
	}
	names, _, ok = v.Subtree("in")
	if !ok || len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Fatalf("Subtree(in) = %v, %v", names, ok)
	}
	if _, _, ok := v.Subtree("nope"); ok {
		t.Fatal("Subtree(nope) should not match")
	}
}

func TestVectorEqualIgnoresAttributeOrder(t *testing.T) {
	a := New(2).Set("x", NewConst(2, 1)).Set("y", NewConst(2, 2))
	b := New(2).Set("y", NewConst(2, 2)).Set("x", NewConst(2, 1))
	if !a.Equal(b) {
		t.Fatal("vectors with same attrs in different order should be equal")
	}
	c := New(2).Set("x", NewConst(2, 1)).Set("y", NewConst(2, 3))
	if a.Equal(c) {
		t.Fatal("vectors with different values should not be equal")
	}
}

func TestVectorSetLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	New(3).Set("x", NewConst(4, 0))
}

func TestColumnEqualGeneratedVsMaterialized(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		m := RunMeta{From: r.Int63n(100), StepNum: r.Int63n(8), StepDen: 1 + r.Int63n(4), Cap: r.Int63n(5)}
		n := r.Intn(64) + 1
		g := NewGenerated(n, m)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = m.Value(i)
		}
		if !g.Equal(NewInt(vals)) {
			t.Fatalf("generated %+v != explicit values", m)
		}
	}
}
