// Package ocelot is the reproduction's Ocelot baseline (paper Table 1 and
// §5.2): a hardware-oblivious bulk processor in the MonetDB style. Every
// operator fully materializes its (column-wise) intermediate result — the
// design decision whose cost the GPU's memory bandwidth hides (Figure 12)
// and the CPU's exposes (Figure 13).
//
// The engine is the Voodoo stack with operator fusion disabled
// (compile.Options.ForceBulk), which is precisely the bulk-processing
// execution model: identical semantics, materialization at every step.
package ocelot

import (
	"voodoo/internal/rel"
	"voodoo/internal/storage"
)

// New returns an Ocelot-style engine over the catalog.
func New(cat *storage.Catalog) *rel.Engine {
	return &rel.Engine{
		Cat:          cat,
		Backend:      rel.BulkCompiled,
		CollectStats: true,
	}
}
