package ocelot

import (
	"testing"

	"voodoo/internal/device"
	"voodoo/internal/rel"
	"voodoo/internal/tpch"
)

// TestBulkCostsMoreThanFused verifies the engine's defining property: the
// same query moves far more memory (full materialization) than the fused
// Voodoo backend — the cost the paper attributes to Ocelot on the CPU.
func TestBulkCostsMoreThanFused(t *testing.T) {
	cat := tpch.Generate(tpch.Config{SF: 0.002, Seed: 42})
	qf, err := tpch.Query(6)
	if err != nil {
		t.Fatal(err)
	}
	e := New(cat)
	ores, ostats, err := qf(e)
	if err != nil {
		t.Fatal(err)
	}
	vres, vstats, err := qf(&rel.Engine{Cat: cat, Backend: rel.Compiled, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ores.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(ores.Rows))
	}
	if d := ores.Rows[0]["revenue"] - vres.Rows[0]["revenue"]; d > 1e-6 || d < -1e-6 {
		t.Fatalf("results differ: %v vs %v", ores.Rows, vres.Rows)
	}
	var obytes, vbytes int64
	for _, f := range ostats.Frags {
		obytes += f.SeqBytes
	}
	for _, f := range vstats.Frags {
		vbytes += f.SeqBytes
	}
	if obytes < 3*vbytes {
		t.Errorf("bulk should move much more memory: %d vs %d bytes", obytes, vbytes)
	}
	cpu := device.CPU(8)
	if !(cpu.Time(ostats) > cpu.Time(vstats)) {
		t.Error("bulk should be slower on the CPU model")
	}
	// On the GPU, bandwidth shrinks the gap (paper Figure 12 vs 13).
	gpu := device.GPU()
	cpuRatio := cpu.Time(ostats) / cpu.Time(vstats)
	gpuRatio := gpu.Time(ostats) / gpu.Time(vstats)
	if !(gpuRatio < cpuRatio) {
		t.Errorf("GPU should forgive materialization: gpu ratio %g vs cpu ratio %g", gpuRatio, cpuRatio)
	}
}
