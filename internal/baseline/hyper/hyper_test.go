package hyper

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"voodoo/internal/rel"
	"voodoo/internal/tpch"
)

var cat = tpch.Generate(tpch.Config{SF: 0.002, Seed: 42})

// TestTPCHAgreesWithVoodoo cross-checks every evaluated query between the
// HyPer baseline and the Voodoo compiled engine — two independent
// implementations of the same plans.
func TestTPCHAgreesWithVoodoo(t *testing.T) {
	for _, num := range tpch.QueryNumbers {
		num := num
		t.Run(fmt.Sprintf("q%d", num), func(t *testing.T) {
			qf, err := tpch.Query(num)
			if err != nil {
				t.Fatal(err)
			}
			hres, hstats, err := qf(&Engine{Cat: cat})
			if err != nil {
				t.Fatalf("hyper: %v", err)
			}
			vres, _, err := qf(&rel.Engine{Cat: cat, Backend: rel.Compiled})
			if err != nil {
				t.Fatalf("voodoo: %v", err)
			}
			compareResults(t, num, hres, vres)
			if hstats == nil || len(hstats.Frags) == 0 {
				t.Error("hyper should report pipeline stats")
			}
		})
	}
}

// compareResults matches rows after canonical sorting (ordering clauses may
// break ties differently between engines).
func compareResults(t *testing.T, num int, a, b *rel.Result) {
	t.Helper()
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("q%d: %d rows vs %d rows", num, len(a.Rows), len(b.Rows))
	}
	cols := a.Cols
	canon := func(rows []rel.Row) []rel.Row {
		out := append([]rel.Row{}, rows...)
		sort.SliceStable(out, func(i, j int) bool {
			for _, c := range cols {
				if out[i][c] != out[j][c] {
					return out[i][c] < out[j][c]
				}
			}
			return false
		})
		return out
	}
	ra, rb := canon(a.Rows), canon(b.Rows)
	for i := range ra {
		for _, c := range cols {
			av, bv := ra[i][c], rb[i][c]
			tol := 1e-6 * math.Max(1, math.Abs(av))
			if math.Abs(av-bv) > tol {
				t.Fatalf("q%d row %d col %s: hyper %g vs voodoo %g", num, i, c, av, bv)
			}
		}
	}
}

// TestTopKHeap checks the priority-queue top-k path directly.
func TestTopKHeap(t *testing.T) {
	qf, _ := tpch.Query(10)
	res, _, err := qf(&Engine{Cat: cat})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) > 20 {
		t.Fatalf("limit 20 violated: %d rows", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i]["revenue"] > res.Rows[i-1]["revenue"]+1e-9 {
			t.Fatalf("rows not in revenue order at %d", i)
		}
	}
}

func TestPipelineStatsShape(t *testing.T) {
	qf, _ := tpch.Query(5)
	_, st, err := qf(&Engine{Cat: cat})
	if err != nil {
		t.Fatal(err)
	}
	var randAccesses, items int64
	for _, fs := range st.Frags {
		randAccesses += fs.RandAccesses
		items += fs.Items
	}
	if randAccesses == 0 {
		t.Error("hash joins should count random accesses")
	}
	if items == 0 {
		t.Error("scans should count items")
	}
}

func TestErrorOnBadPlan(t *testing.T) {
	e := &Engine{Cat: cat}
	_, _, err := e.Run(rel.Query{Root: rel.Scan{Table: "lineitem", Cols: []string{"l_quantity"}}})
	if err == nil {
		t.Fatal("expected error for non-aggregate root")
	}
	_, _, err = e.Run(rel.Query{Root: rel.GroupAgg{
		In:   rel.Scan{Table: "nope", Cols: []string{"x"}},
		Aggs: []rel.AggSpec{{Func: rel.Count, As: "n"}},
	}})
	if err == nil {
		t.Fatal("expected error for unknown table")
	}
}
