// Package hyper is the reproduction's HyPer baseline (paper Table 1 and
// §5.2): a pipelined, tuple-at-a-time query engine in the style of
// compiled LLVM plans. Operator chains run fused until a pipeline breaker
// (hash-join build, group-by); joins and aggregations use real hash tables
// with collision handling — HyPer does not exploit min/max metadata the way
// the Voodoo frontend does, which is exactly the difference the paper
// credits for Voodoo's wins on lookup-heavy queries.
//
// The engine counts the same event classes as the Voodoo executor
// (ALU ops, sequential and random memory traffic, data-dependent branches),
// so the device cost models price both systems identically. HyPer is
// CPU-only, per the paper.
package hyper

import (
	"container/heap"
	"fmt"
	"sort"

	"voodoo/internal/exec"
	"voodoo/internal/rel"
	"voodoo/internal/storage"
)

// Engine executes rel plans tuple-at-a-time.
type Engine struct {
	Cat *storage.Catalog
	// Morsels is the number of parallel work units pipelines expose
	// (morsel-driven parallelism). 0 means 256.
	Morsels int
}

// Catalog implements rel.Runner.
func (e *Engine) Catalog() *storage.Catalog { return e.Cat }

// Run implements rel.Runner.
func (e *Engine) Run(q rel.Query) (res *rel.Result, stats *exec.Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			if he, ok := r.(hyperErr); ok {
				res, stats, err = nil, nil, he.err
				return
			}
			panic(r)
		}
	}()
	ex := &executor{cat: e.Cat, morsels: e.Morsels, stats: &exec.Stats{}}
	if ex.morsels <= 0 {
		ex.morsels = 256
	}
	root, ok := q.Root.(rel.GroupAgg)
	if !ok {
		return nil, nil, fmt.Errorf("hyper: the plan root must be a GroupAgg")
	}
	result := ex.runGroupAgg(root, q)
	return result, ex.stats, nil
}

type hyperErr struct{ err error }

func errf(format string, args ...any) {
	panic(hyperErr{fmt.Errorf("hyper: "+format, args...)})
}

// relation is a streaming row source with a fixed schema.
type relation struct {
	schema []string
	// each produces rows into sink; a pipeline runs rows from one scan to
	// one breaker.
	each func(sink func(row []float64))
}

func (r *relation) colIdx(name string) int {
	for i, c := range r.schema {
		if c == name {
			return i
		}
	}
	errf("no column %q (have %v)", name, r.schema)
	return -1
}

// executor runs one query.
type executor struct {
	cat     *storage.Catalog
	morsels int
	stats   *exec.Stats
	cur     *exec.FragStats // the pipeline being counted
	nTables int             // hash-table id counter for working-set entries
}

// newTable allocates a stable working-set id for one hash table.
func (ex *executor) newTable() int {
	ex.nTables++
	return ex.nTables
}

// noteRand charges n far random accesses against hash table id of the
// given size.
func noteRand(fs *exec.FragStats, id int, bytes, n int64) {
	if fs.RandByBuf == nil {
		fs.RandByBuf = map[int]exec.RandCount{}
	}
	e := fs.RandByBuf[id]
	e.Bytes = bytes
	e.Count += n
	fs.RandByBuf[id] = e
}

// pipeline opens a new counted pipeline (fragment) and returns its stats.
func (ex *executor) pipeline(name string, rows int) *exec.FragStats {
	ex.stats.Frags = append(ex.stats.Frags, exec.FragStats{
		Name:   "hyper:" + name,
		Extent: min(ex.morsels, max(rows, 1)),
		Intent: rows/ex.morsels + 1,
	})
	ex.cur = &ex.stats.Frags[len(ex.stats.Frags)-1]
	return ex.cur
}

// compileNode builds the streaming pipeline for a plan subtree. Building a
// node may fully run nested pipelines (join builds).
func (ex *executor) compileNode(n rel.Node) *relation {
	switch x := n.(type) {
	case rel.Scan:
		return ex.compileScan(x)
	case rel.Filter:
		in := ex.compileNode(x.In)
		pred := ex.compileExpr(in, x.Pred)
		return &relation{schema: in.schema, each: func(sink func([]float64)) {
			in.each(func(row []float64) {
				ex.cur.Guards++
				if pred(row) == 0 {
					return
				}
				ex.cur.GuardsPass++
				sink(row)
			})
		}}
	case rel.Map:
		in := ex.compileNode(x.In)
		schema := append(append([]string{}, in.schema...), nil...)
		var fns []func([]float64) float64
		for _, ne := range x.Outs {
			fns = append(fns, ex.compileExpr(in, ne.E))
			schema = append(schema, ne.Name)
		}
		return &relation{schema: schema, each: func(sink func([]float64)) {
			in.each(func(row []float64) {
				out := make([]float64, len(schema))
				copy(out, row)
				for i, f := range fns {
					out[len(in.schema)+i] = f(row)
				}
				ex.cur.FloatOps += int64(len(fns))
				sink(out)
			})
		}}
	case rel.IndexJoin:
		return ex.compileJoin(x)
	case rel.GroupAgg:
		errf("nested aggregation is not supported")
	}
	errf("unknown node %T", n)
	return nil
}

func (ex *executor) compileScan(s rel.Scan) *relation {
	t := ex.cat.Table(s.Table)
	if t == nil {
		errf("no table %q", s.Table)
	}
	var getters []func(i int) float64
	for _, c := range s.Cols {
		col := t.Col(c)
		if col == nil {
			errf("table %s has no column %q", s.Table, c)
		}
		getters = append(getters, col.Float)
	}
	n := t.N
	ncols := len(s.Cols)
	return &relation{schema: append([]string{}, s.Cols...), each: func(sink func([]float64)) {
		fs := ex.cur // the pipeline currently running
		fs.Items += int64(n)
		fs.SeqBytes += int64(n) * int64(ncols) * 8
		row := make([]float64, ncols)
		for i := 0; i < n; i++ {
			for j, g := range getters {
				row[j] = g(i)
			}
			sink(row)
		}
	}}
}

// compileJoin runs the build side as its own pipeline into a Go hash table,
// then streams the probe side through it.
func (ex *executor) compileJoin(j rel.IndexJoin) *relation {
	build := ex.compileNode(j.Build)
	bkey := build.colIdx(j.BuildKey)
	var bcols []int
	for _, c := range j.Cols {
		bcols = append(bcols, build.colIdx(c))
	}

	// Build pipeline (a breaker): materialize the hash table.
	fs := ex.pipeline("build:"+j.BuildKey, 0)
	ht := map[int64][]float64{}
	build.each(func(row []float64) {
		vals := make([]float64, len(bcols))
		for i, c := range bcols {
			vals[i] = row[c]
		}
		ht[int64(row[bkey])] = vals
		// A hash insert costs hashing plus a random write.
		fs.IntOps += 4
		fs.RandAccesses++
	})
	tableBytes := int64(len(ht))*8*int64(1+len(bcols)) + int64(len(ht))*16
	tableID := ex.newTable()
	noteRand(fs, tableID, tableBytes, int64(len(ht)))

	probe := ex.compileNode(j.Probe)
	pkey := probe.colIdx(j.ProbeKey)
	schema := append([]string{}, probe.schema...)
	if !j.Semi {
		schema = append(schema, j.Cols...)
	}
	return &relation{schema: schema, each: func(sink func([]float64)) {
		probe.each(func(row []float64) {
			pfs := ex.cur
			// Hash probe: hash computation plus a random read into the
			// table, with collision-handling overhead.
			pfs.IntOps += 4
			noteRand(pfs, tableID, tableBytes, 1)
			vals, ok := ht[int64(row[pkey])]
			pfs.Guards++
			if !ok {
				return
			}
			pfs.GuardsPass++
			if j.Semi {
				sink(row)
				return
			}
			out := make([]float64, len(schema))
			copy(out, row)
			copy(out[len(probe.schema):], vals)
			sink(out)
		})
	}}
}

// compileExpr builds a row-function for a scalar expression. Event counts
// charge the pipeline running at call time.
func (ex *executor) compileExpr(in *relation, e rel.Expr) func([]float64) float64 {
	switch x := e.(type) {
	case rel.Col:
		i := in.colIdx(x.Name)
		return func(r []float64) float64 { return r[i] }
	case rel.IntLit:
		v := float64(x.V)
		return func([]float64) float64 { return v }
	case rel.FloatLit:
		return func([]float64) float64 { return x.V }
	case rel.Not:
		f := ex.compileExpr(in, x.E)
		return func(r []float64) float64 {
			if f(r) == 0 {
				return 1
			}
			return 0
		}
	case rel.InList:
		f := ex.compileExpr(in, x.E)
		set := map[float64]bool{}
		for _, v := range x.Vs {
			set[float64(v)] = true
		}
		n := int64(len(x.Vs))
		return func(r []float64) float64 {
			ex.cur.IntOps += n
			if set[f(r)] {
				return 1
			}
			return 0
		}
	case rel.Between:
		f := ex.compileExpr(in, x.E)
		lo := ex.compileExpr(in, x.Lo)
		hi := ex.compileExpr(in, x.Hi)
		return func(r []float64) float64 {
			ex.cur.IntOps += 2
			v := f(r)
			if v >= lo(r) && v <= hi(r) {
				return 1
			}
			return 0
		}
	case rel.Bin:
		l := ex.compileExpr(in, x.L)
		rr := ex.compileExpr(in, x.R)
		op := x.Op
		return func(r []float64) float64 {
			ex.cur.FloatOps++
			a, b := l(r), rr(r)
			switch op {
			case rel.Add:
				return a + b
			case rel.Sub:
				return a - b
			case rel.Mul:
				return a * b
			case rel.Div:
				if b == 0 {
					return 0
				}
				return a / b
			case rel.Mod:
				m := int64(a) % int64(b)
				if m < 0 {
					m += int64(b)
				}
				return float64(m)
			case rel.Eq:
				return b2f(a == b)
			case rel.Ne:
				return b2f(a != b)
			case rel.Lt:
				return b2f(a < b)
			case rel.Le:
				return b2f(a <= b)
			case rel.Gt:
				return b2f(a > b)
			case rel.Ge:
				return b2f(a >= b)
			case rel.And:
				return b2f(a != 0 && b != 0)
			case rel.Or:
				return b2f(a != 0 || b != 0)
			}
			errf("unknown binop %d", op)
			return 0
		}
	}
	errf("unknown expr %T", e)
	return nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// aggState accumulates one group.
type aggState struct {
	key  []float64
	sums []float64
	cnts []float64
	mins []float64
	maxs []float64
	n    float64
}

// runGroupAgg is the final pipeline: hash aggregation (or plain
// accumulators for a global aggregate), then having/top-k.
func (ex *executor) runGroupAgg(g rel.GroupAgg, q rel.Query) *rel.Result {
	in := ex.compileNode(g.In)
	fs := ex.pipeline("agg", 0)

	var keyIdx []int
	for _, k := range g.Keys {
		keyIdx = append(keyIdx, in.colIdx(k))
	}
	var aggFns []func([]float64) float64
	for _, a := range g.Aggs {
		if a.E != nil {
			aggFns = append(aggFns, ex.compileExpr(in, a.E))
		} else {
			aggFns = append(aggFns, nil)
		}
	}

	groups := map[[4]int64]*aggState{}
	update := func(st *aggState, row []float64) {
		st.n++
		for i, a := range g.Aggs {
			var v float64
			if aggFns[i] != nil {
				v = aggFns[i](row)
			}
			switch a.Func {
			case rel.Sum, rel.Avg:
				st.sums[i] += v
				st.cnts[i]++
			case rel.Count:
				st.sums[i]++
			case rel.Min:
				if st.cnts[i] == 0 || v < st.mins[i] {
					st.mins[i] = v
				}
				st.cnts[i]++
			case rel.Max:
				if st.cnts[i] == 0 || v > st.maxs[i] {
					st.maxs[i] = v
				}
				st.cnts[i]++
			}
		}
		fs.FloatOps += int64(len(g.Aggs))
	}

	in.each(func(row []float64) {
		var key [4]int64
		for i, k := range keyIdx {
			key[i] = int64(row[k])
		}
		st := groups[key]
		if st == nil {
			st = &aggState{
				key:  make([]float64, len(keyIdx)),
				sums: make([]float64, len(g.Aggs)),
				cnts: make([]float64, len(g.Aggs)),
				mins: make([]float64, len(g.Aggs)),
				maxs: make([]float64, len(g.Aggs)),
			}
			for i, k := range keyIdx {
				st.key[i] = row[k]
			}
			groups[key] = st
		}
		// Hash aggregation: hash + random access into the group table.
		fs.IntOps += 4
		fs.RandAccesses++
		update(st, row)
	})
	tableBytes := int64(len(groups)) * int64(8*(4+3*len(g.Aggs))+32)
	noteRand(fs, ex.newTable(), max(tableBytes, 64), fs.RandAccesses)

	// Assemble.
	res := &rel.Result{}
	res.Cols = append(res.Cols, g.Keys...)
	for _, a := range g.Aggs {
		res.Cols = append(res.Cols, a.As)
	}
	if len(g.Keys) == 0 && len(groups) == 0 {
		groups[[4]int64{}] = &aggState{
			key:  nil,
			sums: make([]float64, len(g.Aggs)),
			cnts: make([]float64, len(g.Aggs)),
			mins: make([]float64, len(g.Aggs)),
			maxs: make([]float64, len(g.Aggs)),
		}
	}
	for _, st := range groups {
		row := rel.Row{}
		for i, k := range g.Keys {
			row[k] = st.key[i]
		}
		for i, a := range g.Aggs {
			switch a.Func {
			case rel.Sum, rel.Count:
				row[a.As] = st.sums[i]
			case rel.Avg:
				if st.cnts[i] > 0 {
					row[a.As] = st.sums[i] / st.cnts[i]
				}
			case rel.Min:
				row[a.As] = st.mins[i]
			case rel.Max:
				row[a.As] = st.maxs[i]
			}
		}
		if q.Having != nil && !q.Having(row) {
			continue
		}
		res.Rows = append(res.Rows, row)
	}

	// HyPer evaluates order-by/limit with a priority queue (paper §5.2):
	// top-k via a bounded heap, otherwise a full sort.
	if q.OrderBy != nil && q.Limit > 0 && q.Limit < len(res.Rows) {
		h := &rowHeap{less: q.OrderBy}
		for _, r := range res.Rows {
			fs.IntOps += 8 // heap maintenance ~ log k comparisons
			heap.Push(h, r)
			if h.Len() > q.Limit {
				heap.Pop(h)
			}
		}
		sorted := make([]rel.Row, h.Len())
		for i := len(sorted) - 1; i >= 0; i-- {
			sorted[i] = heap.Pop(h).(rel.Row)
		}
		res.Rows = sorted
	} else if q.OrderBy != nil {
		sort.SliceStable(res.Rows, func(i, j int) bool { return q.OrderBy(res.Rows[i], res.Rows[j]) })
		if q.Limit > 0 && len(res.Rows) > q.Limit {
			res.Rows = res.Rows[:q.Limit]
		}
	}
	return res
}

// rowHeap keeps the worst of the current top-k at the top.
type rowHeap struct {
	rows []rel.Row
	less func(a, b rel.Row) bool
}

func (h *rowHeap) Len() int           { return len(h.rows) }
func (h *rowHeap) Less(i, j int) bool { return h.less(h.rows[j], h.rows[i]) }
func (h *rowHeap) Swap(i, j int)      { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }
func (h *rowHeap) Push(x any)         { h.rows = append(h.rows, x.(rel.Row)) }
func (h *rowHeap) Pop() any {
	x := h.rows[len(h.rows)-1]
	h.rows = h.rows[:len(h.rows)-1]
	return x
}
