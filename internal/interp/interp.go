// Package interp is the Voodoo interpreter backend (paper §3.2): a classic
// bulk processor that materializes every intermediate vector. It is not
// built for speed; it is the semantic reference that the compiling backend
// and the relational frontend are differentially tested against, and every
// intermediate is inspectable.
package interp

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"time"

	"voodoo/internal/core"
	"voodoo/internal/exec"
	"voodoo/internal/trace"
	"voodoo/internal/vector"
	"voodoo/internal/verify"
)

// Storage provides the persistent vectors that Load reads and Persist
// writes.
type Storage interface {
	// LoadVector returns the vector stored under name.
	LoadVector(name string) (*vector.Vector, error)
	// PersistVector stores v under name.
	PersistVector(name string, v *vector.Vector) error
}

// MemStorage is an in-memory Storage, convenient for tests and examples.
type MemStorage map[string]*vector.Vector

// LoadVector implements Storage.
func (m MemStorage) LoadVector(name string) (*vector.Vector, error) {
	v, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("interp: no persistent vector %q", name)
	}
	return v, nil
}

// PersistVector implements Storage.
func (m MemStorage) PersistVector(name string, v *vector.Vector) error {
	m[name] = v
	return nil
}

// Result holds the evaluated value of every statement of a program.
type Result struct {
	Values []*vector.Vector

	// arena owns the pooled storage behind Values when the run was pooled
	// (RunPooledContext); nil otherwise.
	arena *vector.Arena
}

// Value returns the vector computed for statement r.
func (r *Result) Value(ref core.Ref) *vector.Vector { return r.Values[ref] }

// Release recycles the pooled storage behind a pooled run's values. The
// result's vectors are invalid afterwards; Values is nilled so stale reads
// fail loudly instead of observing another query's data. Safe on nil
// results and results from unpooled runs, and idempotent.
func (r *Result) Release() {
	if r == nil || r.arena == nil {
		return
	}
	r.arena.Release()
	r.arena = nil
	r.Values = nil
}

type evalErr struct{ err error }

func errf(format string, args ...any) {
	panic(evalErr{fmt.Errorf("interp: "+format, args...)})
}

// Run evaluates the program against st and returns every statement's value.
func Run(p *core.Program, st Storage) (res *Result, err error) {
	return RunContext(context.Background(), p, st)
}

// RunArena is Run drawing every intermediate from a caller-owned arena.
// The caller keeps ownership: the result's vectors alias arena storage and
// live exactly until the caller releases the arena. A nil arena degrades
// to plain heap allocation. This is the entry the compiling backend's bulk
// steps use, since their outputs are adopted into kernel buffers that must
// survive to the end of the surrounding plan run.
func RunArena(p *core.Program, st Storage, ar *vector.Arena) (*Result, error) {
	res, _, err := runContext(context.Background(), p, st, nil, ar)
	return res, err
}

// RunPooledContext is RunContext drawing every intermediate from an arena
// of pool. The arena is attached to the result: the caller must call
// Result.Release once done with the values. On error the arena is released
// before returning. A nil pool degrades to plain heap allocation.
func RunPooledContext(ctx context.Context, p *core.Program, st Storage, pool *vector.Pool) (*Result, error) {
	ar := pool.NewArena()
	res, _, err := runContext(ctx, p, st, nil, ar)
	if err != nil {
		ar.Release()
		return nil, err
	}
	res.arena = ar
	return res, nil
}

// RunTracedPooledContext is RunTracedContext with pooled intermediates;
// see RunPooledContext for the ownership contract.
func RunTracedPooledContext(ctx context.Context, p *core.Program, st Storage, pool *vector.Pool) (*Result, *trace.Trace, error) {
	ar := pool.NewArena()
	res, tr, err := runContext(ctx, p, st,
		&trace.Trace{Backend: "interpreted", OnStep: trace.ObserverFrom(ctx)}, ar)
	if err != nil {
		ar.Release()
		return nil, nil, err
	}
	res.arena = ar
	return res, tr, nil
}

// RunContext is Run with cooperative cancellation, checked at every
// statement boundary (the interpreter materializes per statement, so
// statements are its natural unit of work). Any panic escaping a
// statement's evaluation — a malformed program tripping an internal
// invariant — is recovered into a *exec.PanicError naming the statement,
// so a bad program fails its query instead of the process.
func RunContext(ctx context.Context, p *core.Program, st Storage) (res *Result, err error) {
	res, _, err = runContext(ctx, p, st, nil, nil)
	return res, err
}

// RunTracedContext is RunContext with per-statement tracing: every
// statement becomes one trace step carrying its wall time, output length,
// and materialized bytes — the bulk-processing profile the compiling
// backend's fused fragments are measured against. The returned trace is
// owned by the caller.
func RunTracedContext(ctx context.Context, p *core.Program, st Storage) (*Result, *trace.Trace, error) {
	// A context-carried observer receives each statement's step as it
	// completes (the diagnostics server's live query progress).
	return runContext(ctx, p, st, &trace.Trace{Backend: "interpreted", OnStep: trace.ObserverFrom(ctx)}, nil)
}

func runContext(ctx context.Context, p *core.Program, st Storage, tr *trace.Trace, ar *vector.Arena) (res *Result, _ *trace.Trace, err error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	// Verification cross-check (difftest's front line, and the -verify
	// daemon path): algebra-level Error diagnostics are sound — the
	// interpreter is guaranteed to reject such a program — so the program
	// still executes, and a clean run after an Error diagnostic indicts
	// the verifier itself.
	var verifyDiag *verify.Diagnostic
	if verify.Enabled() {
		for _, d := range verify.Program(p, st) {
			if d.Level == verify.Error {
				verifyDiag = &d
				break
			}
		}
	}
	defer func() {
		if err == nil && verifyDiag != nil {
			verify.FailuresTotal.Inc()
			res, err = nil, fmt.Errorf("interp: program executed cleanly despite verifier error (%s) — verifier false positive", verifyDiag)
		}
	}()
	trace.CountQuery()
	start := time.Now()
	defer func() { trace.ObserveQueryWall(time.Since(start)) }()
	cur := -1
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(evalErr); ok {
				res, err = nil, e.err
				return
			}
			res, err = nil, exec.NewPanicError(
				fmt.Sprintf("interp stmt %d", cur), r, debug.Stack())
		}
	}()
	e := &evaluator{st: st, vals: make([]*vector.Vector, len(p.Stmts)), ar: ar}
	for i := range p.Stmts {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		cur = i
		t0 := time.Now()
		e.vals[i] = e.eval(&p.Stmts[i])
		if tr != nil {
			tr.Add(traceStmt(&p.Stmts[i], e.vals[i], time.Since(t0)))
		}
	}
	if tr != nil {
		var alloc int64
		for _, v := range e.vals {
			alloc += vecBytes(v)
		}
		tr.AllocBytes = alloc
		tr.Finish(time.Since(start))
	}
	return &Result{Values: e.vals}, tr, nil
}

// traceStmt builds the trace record of one interpreted statement. The
// interpreter materializes every output in full, so each statement's
// materialized bytes are simply its output size — the bulk cost the
// compiler's fusion avoids.
func traceStmt(s *core.Stmt, out *vector.Vector, wall time.Duration) trace.Step {
	ts := trace.Step{
		Kind: trace.KindStmt, Name: s.Op.String(),
		Stmts: []int{int(s.ID)}, WallNS: wall.Nanoseconds(),
	}
	if out != nil {
		ts.Items = int64(out.Len())
		ts.MaterializedBytes = vecBytes(out)
		ts.AllocBytes = ts.MaterializedBytes
	}
	switch s.Op {
	case core.OpFoldSum, core.OpFoldMin, core.OpFoldMax, core.OpFoldSelect, core.OpFoldScan:
		ts.FoldRuns = countRuns(out)
	case core.OpScatter:
		ts.ScatterItems = ts.Items
	}
	return ts
}

// vecBytes is the materialized size of a vector: 8 bytes per scalar plus a
// validity byte per slot for columns that carry ε.
func vecBytes(v *vector.Vector) int64 {
	if v == nil {
		return 0
	}
	var b int64
	for _, name := range v.Names() {
		b += int64(v.Len()) * 8
		if c := v.Col(name); c != nil && !c.AllValid() {
			b += int64(v.Len())
		}
	}
	return b
}

// countRuns counts the non-ε slots of a fold output — one per produced
// run, since the interpreter writes each run's aggregate at the run start
// and leaves the rest ε.
func countRuns(v *vector.Vector) int64 {
	if v == nil || len(v.Names()) != 1 {
		return 0
	}
	c := v.Col(v.Names()[0])
	if c == nil {
		return 0
	}
	var runs int64
	for i := 0; i < c.Len(); i++ {
		if c.Valid(i) {
			runs++
		}
	}
	return runs
}

type evaluator struct {
	st   Storage
	vals []*vector.Vector
	// ar, when non-nil, backs every intermediate the evaluator
	// materializes. Persisted vectors are deep-copied off it (storage
	// outlives the run); loaded vectors are never owned by it.
	ar *vector.Arena
}

func (e *evaluator) arg(s *core.Stmt, i int) *vector.Vector { return e.vals[s.Args[i]] }

// col resolves operand i's keypath to a single column ("" = the operand's
// single attribute).
func (e *evaluator) col(s *core.Stmt, i int) *vector.Column {
	v := e.arg(s, i)
	kp := s.Kp[i]
	if kp == "" {
		return v.SingleCol()
	}
	c := v.Col(kp)
	if c == nil {
		errf("%s: operand %d has no attribute %q (have %v)", s.Op, i, kp, v.Names())
	}
	return c
}

func (e *evaluator) eval(s *core.Stmt) *vector.Vector {
	switch s.Op {
	case core.OpLoad:
		v, err := e.st.LoadVector(s.Name)
		if err != nil {
			errf("%v", err)
		}
		return v
	case core.OpPersist:
		v := e.arg(s, 0)
		if e.ar != nil {
			// Persisted vectors outlive the run; detach them from the
			// arena so Release cannot recycle storage under them.
			v = vector.UnpooledCopy(v)
		}
		if err := e.st.PersistVector(s.Name, v); err != nil {
			errf("%v", err)
		}
		return v
	case core.OpConstant:
		out := vector.New(1)
		if s.IsFloat {
			out.Set(s.Out[0], vector.NewFloat([]float64{s.FloatVal}))
		} else {
			out.Set(s.Out[0], vector.NewInt([]int64{s.IntVal}))
		}
		return out
	case core.OpRange:
		n := s.Size
		if len(s.Args) == 1 {
			n = e.arg(s, 0).Len()
		}
		meta := vector.Step(s.IntVal, s.Step)
		// The interpreter is a bulk processor: materialize even
		// generated vectors so every intermediate is inspectable.
		return vector.New(n).Set(s.Out[0], e.ar.Materialize(vector.NewGenerated(n, meta)))
	case core.OpCross:
		return e.evalCross(s)
	case core.OpZip:
		return e.evalZip(s)
	case core.OpProject:
		out := vector.New(e.arg(s, 0).Len())
		copySubtree(out, s.Out[0], e.arg(s, 0), s.Kp[0], s)
		return out
	case core.OpUpsert:
		return e.evalUpsert(s)
	case core.OpGather:
		return e.evalGather(s)
	case core.OpScatter:
		return e.evalScatter(s)
	case core.OpMaterialize, core.OpBreak:
		// Identity semantics; Break/Materialize only direct backends.
		out := vector.New(e.arg(s, 0).Len())
		for _, name := range e.arg(s, 0).Names() {
			out.Set(name, e.ar.Materialize(e.arg(s, 0).Col(name)))
		}
		return out
	case core.OpPartition:
		return e.evalPartition(s)
	case core.OpFoldSelect, core.OpFoldSum, core.OpFoldMin, core.OpFoldMax, core.OpFoldScan:
		return e.evalFold(s)
	default:
		if s.Op.IsArith() {
			return e.evalArith(s)
		}
		errf("unsupported op %v", s.Op)
		return nil
	}
}

// copySubtree copies the attribute(s) designated by src.kp into dst under
// the name out (nested attributes become out.<rel>).
func copySubtree(dst *vector.Vector, out string, src *vector.Vector, kp string, s *core.Stmt) {
	if kp == "" {
		if len(src.Names()) == 1 {
			dst.Set(out, src.Col(src.Names()[0]))
			return
		}
		for _, name := range src.Names() {
			dst.Set(out+"."+name, src.Col(name))
		}
		return
	}
	rel, cols, ok := src.Subtree(kp)
	if !ok {
		errf("%s: no attribute %q (have %v)", s.Op, kp, src.Names())
	}
	for i, r := range rel {
		name := out
		if r != "" {
			name = out + "." + r
		}
		dst.Set(name, cols[i])
	}
}

func (e *evaluator) evalZip(s *core.Stmt) *vector.Vector {
	v1, v2 := e.arg(s, 0), e.arg(s, 1)
	n := min(v1.Len(), v2.Len())
	out := vector.New(n)
	zipSide := func(outName string, src *vector.Vector, kp string) {
		tmp := vector.New(src.Len())
		copySubtree(tmp, outName, src, kp, s)
		for _, name := range tmp.Names() {
			c := tmp.Col(name)
			if c.Len() != n {
				c = c.Slice(0, n)
			}
			out.Set(name, c)
		}
	}
	zipSide(s.Out[0], v1, s.Kp[0])
	zipSide(s.Out[1], v2, s.Kp[1])
	return out
}

func (e *evaluator) evalUpsert(s *core.Stmt) *vector.Vector {
	v1 := e.arg(s, 0)
	src := e.col(s, 1)
	out := v1.Clone()
	switch {
	case src.Len() == v1.Len():
		out.Set(s.Out[0], src)
	case src.Len() == 1:
		// Broadcast the one-slot operand.
		if src.Kind() == vector.Int {
			out.Set(s.Out[0], vector.NewConst(v1.Len(), src.Int(0)))
		} else {
			vals := e.ar.Floats(v1.Len())
			for i := range vals {
				vals[i] = src.Float(0)
			}
			out.Set(s.Out[0], vector.NewFloat(vals))
		}
	default:
		errf("Upsert: attribute length %d does not match vector length %d", src.Len(), v1.Len())
	}
	return out
}

func (e *evaluator) evalCross(s *core.Stmt) *vector.Vector {
	n1, n2 := e.arg(s, 0).Len(), e.arg(s, 1).Len()
	n := n1 * n2
	a := e.ar.Ints(n)
	b := e.ar.Ints(n)
	for i := 0; i < n; i++ {
		a[i] = int64(i / n2)
		b[i] = int64(i % n2)
	}
	return vector.New(n).Set(s.Out[0], vector.NewInt(a)).Set(s.Out[1], vector.NewInt(b))
}

func (e *evaluator) evalArith(s *core.Stmt) *vector.Vector {
	a, b := e.col(s, 0), e.col(s, 1)
	n := arithLen(a.Len(), b.Len(), s)
	isFloat := a.Kind() == vector.Float || b.Kind() == vector.Float
	switch s.Op {
	case core.OpModulo, core.OpBitShift, core.OpLogicalAnd, core.OpLogicalOr:
		if isFloat {
			errf("%s: requires integer operands", s.Op)
		}
	}
	out := vector.New(n)
	ai := func(i int) int { return i % a.Len() }
	bi := func(i int) int { return i % b.Len() }

	valid := func(i int) bool { return a.Valid(ai(i)) && b.Valid(bi(i)) }
	anyEmpty := !a.AllValid() || !b.AllValid()

	if isFloat && !intResult(s.Op) {
		vals := e.ar.Floats(n)
		res := vector.NewFloat(vals)
		for i := 0; i < n; i++ {
			if anyEmpty && !valid(i) {
				res.SetEmpty(i)
				continue
			}
			vals[i] = floatArith(s.Op, a.Float(ai(i)), b.Float(bi(i)), s)
		}
		out.Set(s.Out[0], res)
		return out
	}
	vals := e.ar.Ints(n)
	res := vector.NewInt(vals)
	for i := 0; i < n; i++ {
		if anyEmpty && !valid(i) {
			res.SetEmpty(i)
			continue
		}
		if isFloat {
			// Comparison of floats yields an integer truth value.
			vals[i] = boolInt(cmpFloat(s.Op, a.Float(ai(i)), b.Float(bi(i))))
			continue
		}
		vals[i] = intArith(s.Op, a.Int(ai(i)), b.Int(bi(i)), s)
	}
	out.Set(s.Out[0], res)
	return out
}

func arithLen(n1, n2 int, s *core.Stmt) int {
	// Per Table 2 the output of data-parallel operators has the size of
	// the smaller input; one-slot vectors broadcast.
	if n1 == 1 {
		return n2
	}
	if n2 == 1 {
		return n1
	}
	return min(n1, n2)
}

func intResult(op core.Op) bool { return op == core.OpGreater || op == core.OpEquals }

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func cmpFloat(op core.Op, a, b float64) bool {
	if op == core.OpGreater {
		return a > b
	}
	return a == b
}

func floatArith(op core.Op, a, b float64, s *core.Stmt) float64 {
	switch op {
	case core.OpAdd:
		return a + b
	case core.OpSubtract:
		return a - b
	case core.OpMultiply:
		return a * b
	case core.OpDivide:
		if b == 0 {
			errf("Divide: division by zero")
		}
		return a / b
	}
	errf("%s: unsupported on floats", op)
	return 0
}

func intArith(op core.Op, a, b int64, s *core.Stmt) int64 {
	switch op {
	case core.OpAdd:
		return a + b
	case core.OpSubtract:
		return a - b
	case core.OpMultiply:
		return a * b
	case core.OpDivide:
		if b == 0 {
			errf("Divide: division by zero")
		}
		return a / b
	case core.OpModulo:
		if b == 0 {
			errf("Modulo: division by zero")
		}
		m := a % b
		if m < 0 {
			m += b
		}
		return m
	case core.OpBitShift:
		if b >= 0 {
			return a << uint(b)
		}
		return a >> uint(-b)
	case core.OpLogicalAnd:
		return boolInt(a != 0 && b != 0)
	case core.OpLogicalOr:
		return boolInt(a != 0 || b != 0)
	case core.OpGreater:
		return boolInt(a > b)
	case core.OpEquals:
		return boolInt(a == b)
	}
	errf("%s: not an arithmetic op", op)
	return 0
}

func (e *evaluator) evalGather(s *core.Stmt) *vector.Vector {
	v1 := e.arg(s, 0)
	pos := e.col(s, 1)
	n := pos.Len()
	out := vector.New(n)
	for _, name := range v1.Names() {
		src := v1.Col(name)
		var dst *vector.Column
		if src.Kind() == vector.Int {
			dst = e.ar.EmptyInt(n)
		} else {
			dst = e.ar.EmptyFloat(n)
		}
		for i := 0; i < n; i++ {
			if !pos.Valid(i) {
				continue
			}
			p := pos.Int(i)
			// Out-of-bounds positions produce empty slots (Table 2).
			if p < 0 || p >= int64(src.Len()) || !src.Valid(int(p)) {
				continue
			}
			if src.Kind() == vector.Int {
				dst.SetInt(i, src.Int(int(p)))
			} else {
				dst.SetFloat(i, src.Float(int(p)))
			}
		}
		out.Set(name, dst)
	}
	return out
}

func (e *evaluator) evalScatter(s *core.Stmt) *vector.Vector {
	v1 := e.arg(s, 0)
	n := e.arg(s, 1).Len()
	pos := e.col(s, 2)
	if pos.Len() < v1.Len() {
		errf("Scatter: %d positions for %d values", pos.Len(), v1.Len())
	}
	out := vector.New(n)
	for _, name := range v1.Names() {
		src := v1.Col(name)
		var dst *vector.Column
		if src.Kind() == vector.Int {
			dst = e.ar.EmptyInt(n)
		} else {
			dst = e.ar.EmptyFloat(n)
		}
		for i := 0; i < src.Len(); i++ {
			if !pos.Valid(i) || !src.Valid(i) {
				continue
			}
			p := pos.Int(i)
			if p < 0 || p >= int64(n) {
				continue
			}
			// In-order writes; later values win on conflict.
			if src.Kind() == vector.Int {
				dst.SetInt(int(p), src.Int(i))
			} else {
				dst.SetFloat(int(p), src.Float(i))
			}
		}
		out.Set(name, dst)
	}
	return out
}

func (e *evaluator) evalPartition(s *core.Stmt) *vector.Vector {
	vals := e.col(s, 0)
	pivots := e.col(s, 1)
	n := vals.Len()
	k := pivots.Len()
	pv := make([]int64, k)
	for i := 0; i < k; i++ {
		pv[i] = pivots.Int(i)
	}
	if !sort.SliceIsSorted(pv, func(i, j int) bool { return pv[i] < pv[j] }) {
		errf("Partition: pivot list must be sorted")
	}
	// Partition id = number of pivots strictly less than the value, so a
	// pivot list [0..card) maps a value in [0..card) to itself.
	pid := make([]int, n)
	counts := make([]int, k+1)
	for i := 0; i < n; i++ {
		x := vals.Int(i)
		p := sort.Search(k, func(j int) bool { return pv[j] >= x })
		pid[i] = p
		counts[p]++
	}
	starts := make([]int, k+1)
	sum := 0
	for p, c := range counts {
		starts[p] = sum
		sum += c
	}
	out := e.ar.Ints(n)
	for i := 0; i < n; i++ {
		out[i] = int64(starts[pid[i]])
		starts[pid[i]]++
	}
	return vector.New(n).Set(s.Out[0], vector.NewInt(out))
}

// runs decomposes the fold control attribute into maximal runs of adjacent
// equal values. An empty keypath means a single global run.
func runs(v *vector.Vector, foldKp string, n int, s *core.Stmt) [][2]int {
	if foldKp == "" {
		return [][2]int{{0, n}}
	}
	c := v.Col(foldKp)
	if c == nil {
		errf("%s: no fold attribute %q (have %v)", s.Op, foldKp, v.Names())
	}
	var rs [][2]int
	start := 0
	for i := 1; i < n; i++ {
		if c.Int(i) != c.Int(i-1) {
			rs = append(rs, [2]int{start, i})
			start = i
		}
	}
	if n > 0 {
		rs = append(rs, [2]int{start, n})
	}
	return rs
}

func (e *evaluator) evalFold(s *core.Stmt) *vector.Vector {
	v := e.arg(s, 0)
	n := v.Len()
	val := v.Col(s.FoldVal)
	if s.FoldVal == "" {
		val = v.SingleCol()
	}
	if val == nil {
		errf("%s: no value attribute %q (have %v)", s.Op, s.FoldVal, v.Names())
	}
	rs := runs(v, s.Kp[0], n, s)
	out := vector.New(n)

	if s.Op == core.OpFoldSelect {
		dst := e.ar.EmptyInt(n)
		for _, r := range rs {
			cursor := r[0]
			for i := r[0]; i < r[1]; i++ {
				if val.Valid(i) && val.Int(i) != 0 {
					dst.SetInt(cursor, int64(i))
					cursor++
				}
			}
		}
		return out.Set(s.Out[0], dst)
	}

	isFloat := val.Kind() == vector.Float
	var dst *vector.Column
	if isFloat {
		dst = e.ar.EmptyFloat(n)
	} else {
		dst = e.ar.EmptyInt(n)
	}

	if s.Op == core.OpFoldScan {
		for _, r := range rs {
			var accI int64
			var accF float64
			for i := r[0]; i < r[1]; i++ {
				if !val.Valid(i) {
					continue
				}
				if isFloat {
					accF += val.Float(i)
					dst.SetFloat(i, accF)
				} else {
					accI += val.Int(i)
					dst.SetInt(i, accI)
				}
			}
		}
		return out.Set(s.Out[0], dst)
	}

	for _, r := range rs {
		var accI int64
		var accF float64
		any := false
		for i := r[0]; i < r[1]; i++ {
			if !val.Valid(i) {
				continue
			}
			vi, vf := int64(0), 0.0
			if isFloat {
				vf = val.Float(i)
			} else {
				vi = val.Int(i)
			}
			if !any {
				accI, accF, any = vi, vf, true
				continue
			}
			switch s.Op {
			case core.OpFoldSum:
				accI += vi
				accF += vf
			case core.OpFoldMin:
				accI = min(accI, vi)
				accF = min(accF, vf)
			case core.OpFoldMax:
				accI = max(accI, vi)
				accF = max(accF, vf)
			}
		}
		if !any {
			continue // a run with no values leaves its slot ε
		}
		if isFloat {
			dst.SetFloat(r[0], accF)
		} else {
			dst.SetInt(r[0], accI)
		}
	}
	return out.Set(s.Out[0], dst)
}
