package interp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"voodoo/internal/core"
)

// TestFoldSumPartitionInvariant: for any data and any run length, the sum
// of the per-run folds equals the global fold — controlled folding
// decomposes aggregation (paper §2.2).
func TestFoldSumPartitionInvariant(t *testing.T) {
	f := func(raw []int16, runLen8 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int64, len(raw))
		var want int64
		for i, v := range raw {
			vals[i] = int64(v)
			want += int64(v)
		}
		runLen := int64(runLen8%32) + 1
		b := core.NewBuilder()
		in := b.Load("t")
		ids := b.Range(in)
		fold := b.Project("fold", b.Divide(ids, b.Constant(runLen)), "")
		withFold := b.Zip("v", in, "", "fold", fold, "fold")
		p := b.FoldSum(withFold, "fold", "v")
		total := b.GlobalSum(p, "")
		res, err := Run(b.Program(), MemStorage{"t": intVec("v", vals...)})
		if err != nil {
			t.Logf("run error: %v", err)
			return false
		}
		c := res.Value(total).SingleCol()
		return c.Valid(0) && c.Int(0) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFoldMinMaxInvariant: per-run min/max folds bound every run element.
func TestFoldMinMaxInvariant(t *testing.T) {
	f := func(raw []int16, runLen8 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
		}
		runLen := int(runLen8%16) + 1
		b := core.NewBuilder()
		in := b.Load("t")
		ids := b.Range(in)
		fold := b.Project("fold", b.Divide(ids, b.Constant(int64(runLen))), "")
		withFold := b.Zip("v", in, "", "fold", fold, "fold")
		mn := b.FoldMin(withFold, "fold", "v")
		mx := b.FoldMax(withFold, "fold", "v")
		res, err := Run(b.Program(), MemStorage{"t": intVec("v", vals...)})
		if err != nil {
			return false
		}
		mnc := res.Value(mn).SingleCol()
		mxc := res.Value(mx).SingleCol()
		for start := 0; start < len(vals); start += runLen {
			end := min(start+runLen, len(vals))
			lo, hi := vals[start], vals[start]
			for _, v := range vals[start:end] {
				lo, hi = min(lo, v), max(hi, v)
			}
			if !mnc.Valid(start) || mnc.Int(start) != lo {
				return false
			}
			if !mxc.Valid(start) || mxc.Int(start) != hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestScatterGatherInverse: scattering by a permutation and gathering back
// through the same permutation is the identity.
func TestScatterGatherInverse(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(100)
		vals := make([]int64, n)
		perm := r.Perm(n)
		pos := make([]int64, n)
		for i := range vals {
			vals[i] = r.Int63n(1000)
			pos[i] = int64(perm[i])
		}
		b := core.NewBuilder()
		data := b.Load("data")
		posV := b.Load("pos")
		scattered := b.Scatter(data, data, "", posV, "p")
		back := b.Gather(scattered, posV, "p")
		res, err := Run(b.Program(), MemStorage{
			"data": intVec("v", vals...),
			"pos":  intVec("p", pos...),
		})
		if err != nil {
			t.Fatal(err)
		}
		got := res.Value(back).Col("v")
		for i := range vals {
			if !got.Valid(i) || got.Int(i) != vals[i] {
				t.Fatalf("trial %d: slot %d = %v, want %d", trial, i, got, vals[i])
			}
		}
	}
}

// TestFoldSelectCountsMatchPredicate: the number of emitted positions per
// run equals the number of qualifying elements, and every emitted position
// qualifies.
func TestFoldSelectCountsMatchPredicate(t *testing.T) {
	f := func(raw []uint8, runLen8 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v % 4) // mixed selectivity
		}
		runLen := int64(runLen8%16) + 1
		b := core.NewBuilder()
		in := b.Load("t")
		pred := b.Greater(in, b.Constant(1))
		ids := b.Range(in)
		fold := b.Project("fold", b.Divide(ids, b.Constant(runLen)), "")
		withFold := b.Zip("p", pred, "", "fold", fold, "fold")
		sel := b.FoldSelect(withFold, "fold", "p")
		res, err := Run(b.Program(), MemStorage{"t": intVec("v", vals...)})
		if err != nil {
			return false
		}
		c := res.Value(sel).SingleCol()
		emitted := 0
		for i := 0; i < c.Len(); i++ {
			if c.Valid(i) {
				emitted++
				if vals[c.Int(i)] <= 1 {
					return false // a non-qualifying position was emitted
				}
			}
		}
		want := 0
		for _, v := range vals {
			if v > 1 {
				want++
			}
		}
		return emitted == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestBitShiftAndLogical covers the remaining arithmetic operators.
func TestBitShiftAndLogical(t *testing.T) {
	b := core.NewBuilder()
	in := b.Load("t")
	shl := b.BitShift(in, b.Constant(2))
	shr := b.BitShift(in, b.Constant(-1))
	band := b.And(in, b.Constant(1))
	res, err := Run(b.Program(), MemStorage{"t": intVec("v", 0, 1, 2, 3)})
	if err != nil {
		t.Fatal(err)
	}
	wantInts(t, res.Value(shl).SingleCol(), 0, 4, 8, 12)
	wantInts(t, res.Value(shr).SingleCol(), 0, 0, 1, 1)
	wantInts(t, res.Value(band).SingleCol(), 0, 1, 1, 1)
}

// TestUpsertReplacesExisting covers the replace branch of Upsert.
func TestUpsertReplacesExisting(t *testing.T) {
	b := core.NewBuilder()
	in := b.Load("t")
	doubled := b.Multiply(b.Project("v", in, "v"), b.Constant(2))
	replaced := b.Upsert(in, "v", doubled, "")
	res, err := Run(b.Program(), MemStorage{"t": intVec("v", 1, 2, 3)})
	if err != nil {
		t.Fatal(err)
	}
	wantInts(t, res.Value(replaced).Col("v"), 2, 4, 6)
	if len(res.Value(replaced).Names()) != 1 {
		t.Fatal("replace should not add attributes")
	}
}

// TestModuloOfNegativeIsNonNegative pins the mathematical-mod contract.
func TestModuloOfNegativeIsNonNegative(t *testing.T) {
	b := core.NewBuilder()
	in := b.Load("t")
	m := b.Modulo(in, b.Constant(5))
	res, err := Run(b.Program(), MemStorage{"t": intVec("v", -7, -1, 0, 12)})
	if err != nil {
		t.Fatal(err)
	}
	wantInts(t, res.Value(m).SingleCol(), 3, 4, 0, 2)
}
