package interp

import (
	"os"
	"testing"

	"voodoo/internal/verify"
)

// TestMain switches static verification on for every test in this package:
// the interpreter cross-checks each program against the algebra-level
// verifier, so a verifier Error on a program that then executes cleanly
// (a false positive) fails the run loudly.
func TestMain(m *testing.M) {
	verify.SetEnabled(true)
	os.Exit(m.Run())
}
