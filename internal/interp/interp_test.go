package interp

import (
	"testing"

	"voodoo/internal/core"
	"voodoo/internal/vector"
)

func intVec(name string, vals ...int64) *vector.Vector {
	return vector.New(len(vals)).Set(name, vector.NewInt(vals))
}

func mustRun(t *testing.T, b *core.Builder, st Storage) *Result {
	t.Helper()
	res, err := Run(b.Program(), st)
	if err != nil {
		t.Fatalf("Run: %v\nprogram:\n%s", err, b.Program())
	}
	return res
}

func wantInts(t *testing.T, c *vector.Column, want ...int64) {
	t.Helper()
	if c.Len() != len(want) {
		t.Fatalf("len = %d, want %d", c.Len(), len(want))
	}
	for i, w := range want {
		if !c.Valid(i) {
			t.Fatalf("slot %d is ε, want %d", i, w)
		}
		if c.Int(i) != w {
			t.Fatalf("slot %d = %d, want %d", i, c.Int(i), w)
		}
	}
}

// wantSparse checks a column against expected values where -1 entries in
// want mark slots that must be empty (ε).
func wantSparse(t *testing.T, c *vector.Column, want ...int64) {
	t.Helper()
	if c.Len() != len(want) {
		t.Fatalf("len = %d, want %d", c.Len(), len(want))
	}
	for i, w := range want {
		if w == -1 {
			if c.Valid(i) {
				t.Fatalf("slot %d = %d, want ε", i, c.Int(i))
			}
			continue
		}
		if !c.Valid(i) {
			t.Fatalf("slot %d is ε, want %d", i, w)
		}
		if c.Int(i) != w {
			t.Fatalf("slot %d = %d, want %d", i, c.Int(i), w)
		}
	}
}

// TestFigure3HierarchicalAggregation reproduces the paper's Figure 3: a
// multithreaded hierarchical summation with partition size 2.
func TestFigure3HierarchicalAggregation(t *testing.T) {
	st := MemStorage{"input": intVec("val", 1, 2, 3, 4, 5, 6, 7, 8)}
	b := core.NewBuilder()
	input := b.Load("input")
	ids := b.Range(input)
	partitionSize := b.Constant(2)
	partitionIDs := b.Project("partition", b.Divide(ids, partitionSize), "")
	positions := b.Range(input) // identity positions: input is in partition order
	inputWPart := b.Zip("val", input, "val", "partition", partitionIDs, "partition")
	posVec := b.Upsert(inputWPart, "pos", positions, "")
	partInput := b.Scatter(inputWPart, input, "", posVec, "pos")
	pSum := b.FoldSum(partInput, "partition", "val")
	totalSum := b.GlobalSum(pSum, "")

	res := mustRun(t, b, st)
	wantSparse(t, res.Value(pSum).SingleCol(), 3, -1, 7, -1, 11, -1, 15, -1)
	wantSparse(t, res.Value(totalSum).SingleCol(), 36, -1, -1, -1, -1, -1, -1, -1)
}

// TestFigure4SIMDVariant applies the paper's Figure 4 diff: partitioning by
// Modulo (lane ids) instead of Divide (block ids), with a round-robin
// scatter.
func TestFigure4SIMDVariant(t *testing.T) {
	st := MemStorage{"input": intVec("val", 1, 2, 3, 4, 5, 6, 7, 8)}
	b := core.NewBuilder()
	input := b.Load("input")
	ids := b.Range(input)
	laneCount := b.Constant(2)
	partitionIDs := b.Project("partition", b.Modulo(ids, laneCount), "")
	inputWPart := b.Zip("val", input, "val", "partition", partitionIDs, "partition")
	positions := b.Partition("pos", partitionIDs, "partition", b.RangeN(0, 2, 1), "")
	posVec := b.Upsert(inputWPart, "pos", positions, "pos")
	partInput := b.Scatter(inputWPart, input, "", posVec, "pos")
	pSum := b.FoldSum(partInput, "partition", "val")
	totalSum := b.GlobalSum(pSum, "")

	res := mustRun(t, b, st)
	// Lane 0 holds 1+3+5+7 = 16, lane 1 holds 2+4+6+8 = 20.
	wantSparse(t, res.Value(pSum).SingleCol(), 16, -1, -1, -1, 20, -1, -1, -1)
	wantSparse(t, res.Value(totalSum).SingleCol(), 36, -1, -1, -1, -1, -1, -1, -1)
}

// TestFigure7ControlledFold reproduces the paper's Figure 7 exactly:
// fold = [1 1 1 1 0 0 0 0], value = [2 0 4 1 3 1 5 0] → sum = [7 ε ε ε 9 ε ε ε].
func TestFigure7ControlledFold(t *testing.T) {
	v := vector.New(8).
		Set("fold", vector.NewInt([]int64{1, 1, 1, 1, 0, 0, 0, 0})).
		Set("value", vector.NewInt([]int64{2, 0, 4, 1, 3, 1, 5, 0}))
	st := MemStorage{"v": v}
	b := core.NewBuilder()
	in := b.Load("v")
	sum := b.FoldSum(in, "fold", "value")
	res := mustRun(t, b, st)
	wantSparse(t, res.Value(sum).SingleCol(), 7, -1, -1, -1, 9, -1, -1, -1)
}

func TestFoldSelectAlignsToRuns(t *testing.T) {
	v := vector.New(8).
		Set("fold", vector.NewInt([]int64{0, 0, 0, 0, 1, 1, 1, 1})).
		Set("s", vector.NewInt([]int64{1, 0, 1, 1, 0, 0, 1, 0}))
	b := core.NewBuilder()
	in := b.Load("v")
	sel := b.FoldSelect(in, "fold", "s")
	res := mustRun(t, b, MemStorage{"v": v})
	wantSparse(t, res.Value(sel).SingleCol(), 0, 2, 3, -1, 6, -1, -1, -1)
}

func TestFoldMinMax(t *testing.T) {
	v := vector.New(6).
		Set("fold", vector.NewInt([]int64{0, 0, 0, 1, 1, 1})).
		Set("x", vector.NewInt([]int64{5, -2, 9, 4, 4, 1}))
	b := core.NewBuilder()
	in := b.Load("v")
	mn := b.FoldMin(in, "fold", "x")
	mx := b.FoldMax(in, "fold", "x")
	res := mustRun(t, b, MemStorage{"v": v})
	wantSparse(t, res.Value(mn).SingleCol(), -2, -1, -1, 1, -1, -1)
	wantSparse(t, res.Value(mx).SingleCol(), 9, -1, -1, 4, -1, -1)
}

func TestFoldScan(t *testing.T) {
	v := vector.New(6).
		Set("fold", vector.NewInt([]int64{0, 0, 0, 1, 1, 1})).
		Set("x", vector.NewInt([]int64{1, 2, 3, 10, 10, 10}))
	b := core.NewBuilder()
	in := b.Load("v")
	scan := b.FoldScan(in, "fold", "x")
	res := mustRun(t, b, MemStorage{"v": v})
	wantInts(t, res.Value(scan).SingleCol(), 1, 3, 6, 10, 20, 30)
}

func TestFoldSkipsEmptySlots(t *testing.T) {
	col := vector.NewEmptyInt(4)
	col.SetInt(0, 5)
	col.SetInt(2, 7)
	v := vector.New(4).Set("x", col)
	b := core.NewBuilder()
	in := b.Load("v")
	sum := b.GlobalSum(in, "x")
	res := mustRun(t, b, MemStorage{"v": v})
	wantSparse(t, res.Value(sum).SingleCol(), 12, -1, -1, -1)
}

func TestFoldEmptyRunYieldsEpsilon(t *testing.T) {
	col := vector.NewEmptyInt(4)
	col.SetInt(2, 7)
	v := vector.New(4).
		Set("fold", vector.NewInt([]int64{0, 0, 1, 1})).
		Set("x", col)
	b := core.NewBuilder()
	in := b.Load("v")
	sum := b.FoldSum(in, "fold", "x")
	res := mustRun(t, b, MemStorage{"v": v})
	wantSparse(t, res.Value(sum).SingleCol(), -1, -1, 7, -1)
}

func TestGatherOutOfBoundsIsEmpty(t *testing.T) {
	b := core.NewBuilder()
	data := b.Load("data")
	pos := b.Load("pos")
	g := b.Gather(data, pos, "")
	st := MemStorage{
		"data": intVec("val", 10, 20, 30),
		"pos":  intVec("p", 2, 5, 0, -1),
	}
	res := mustRun(t, b, st)
	wantSparse(t, res.Value(g).Col("val"), 30, -1, 10, -1)
}

func TestScatterConflictLastWins(t *testing.T) {
	b := core.NewBuilder()
	data := b.Load("data")
	pos := b.Load("pos")
	sc := b.Scatter(data, data, "", pos, "p")
	st := MemStorage{
		"data": intVec("val", 1, 2, 3),
		"pos":  intVec("p", 0, 0, 2),
	}
	res := mustRun(t, b, st)
	wantSparse(t, res.Value(sc).Col("val"), 2, -1, 3)
}

// TestVirtualScatterExample reproduces the paper's Figure 11: a grouped
// count via Partition → Scatter → FoldSum over the partition attribute.
func TestVirtualScatterExample(t *testing.T) {
	// Groups a,b,c,d encoded as 0,1,2,3; same multiset as Figure 11.
	groups := []int64{0, 1, 0, 2, 2, 1, 2, 0, 3, 1}
	vals := []int64{2, 0, 1, 4, 6, 2, 0, 9, 2, 7}
	st := MemStorage{"t": vector.New(10).
		Set("g", vector.NewInt(groups)).
		Set("v", vector.NewInt(vals))}
	b := core.NewBuilder()
	in := b.Load("t")
	pivots := b.RangeN(0, 4, 1)
	pos := b.Partition("pos", in, "g", pivots, "")
	withPos := b.Upsert(in, "pos", pos, "pos")
	scattered := b.Scatter(in, in, "", withPos, "pos")
	sums := b.FoldSum(scattered, "g", "v")
	res := mustRun(t, b, st)
	// Partition counts: a=3 (2+1+9=12), b=3 (0+2+7=9), c=3 (4+6+0=10), d=1 (2).
	wantSparse(t, res.Value(sums).SingleCol(), 12, -1, -1, 9, -1, -1, 10, -1, -1, 2)
}

func TestArithBroadcastAndTypes(t *testing.T) {
	b := core.NewBuilder()
	x := b.Load("x")
	two := b.Constant(2)
	div := b.Divide(x, two)
	mod := b.Modulo(x, two)
	gt := b.Greater(x, two)
	res := mustRun(t, b, MemStorage{"x": intVec("v", 0, 1, 2, 3, 4)})
	wantInts(t, res.Value(div).SingleCol(), 0, 0, 1, 1, 2)
	wantInts(t, res.Value(mod).SingleCol(), 0, 1, 0, 1, 0)
	wantInts(t, res.Value(gt).SingleCol(), 0, 0, 0, 1, 1)
}

func TestArithFloat(t *testing.T) {
	b := core.NewBuilder()
	x := b.Load("x")
	c := b.ConstantF(1.5)
	sum := b.Add(x, c)
	gt := b.Greater(x, c)
	v := vector.New(3).Set("v", vector.NewFloat([]float64{1, 1.5, 2}))
	res := mustRun(t, b, MemStorage{"x": v})
	got := res.Value(sum).SingleCol()
	for i, want := range []float64{2.5, 3, 3.5} {
		if got.Float(i) != want {
			t.Errorf("sum[%d] = %g, want %g", i, got.Float(i), want)
		}
	}
	wantInts(t, res.Value(gt).SingleCol(), 0, 0, 1)
}

func TestArithMinLength(t *testing.T) {
	b := core.NewBuilder()
	x := b.Load("x")
	y := b.Load("y")
	sum := b.Add(x, y)
	st := MemStorage{"x": intVec("v", 1, 2, 3, 4), "y": intVec("w", 10, 20)}
	res := mustRun(t, b, st)
	wantInts(t, res.Value(sum).SingleCol(), 11, 22)
}

func TestZipTruncatesToSmaller(t *testing.T) {
	b := core.NewBuilder()
	x := b.Load("x")
	y := b.Load("y")
	z := b.Zip("a", x, "", "b", y, "")
	st := MemStorage{"x": intVec("v", 1, 2, 3), "y": intVec("w", 9, 8)}
	res := mustRun(t, b, st)
	v := res.Value(z)
	if v.Len() != 2 {
		t.Fatalf("zip len = %d, want 2", v.Len())
	}
	wantInts(t, v.Col("a"), 1, 2)
	wantInts(t, v.Col("b"), 9, 8)
}

func TestZipNestedSubtree(t *testing.T) {
	v := vector.New(2).
		Set("in.x", vector.NewInt([]int64{1, 2})).
		Set("in.y", vector.NewInt([]int64{3, 4}))
	b := core.NewBuilder()
	a := b.Load("t")
	z := b.Zip("l", a, "in", "r", a, "in.x")
	res := mustRun(t, b, MemStorage{"t": v})
	out := res.Value(z)
	wantInts(t, out.Col("l.x"), 1, 2)
	wantInts(t, out.Col("l.y"), 3, 4)
	wantInts(t, out.Col("r"), 1, 2)
}

func TestCross(t *testing.T) {
	b := core.NewBuilder()
	x := b.Load("x")
	y := b.Load("y")
	c := b.Cross("i", x, "j", y)
	st := MemStorage{"x": intVec("v", 0, 0, 0), "y": intVec("w", 0, 0)}
	res := mustRun(t, b, st)
	wantInts(t, res.Value(c).Col("i"), 0, 0, 1, 1, 2, 2)
	wantInts(t, res.Value(c).Col("j"), 0, 1, 0, 1, 0, 1)
}

func TestPartitionStable(t *testing.T) {
	b := core.NewBuilder()
	in := b.Load("t")
	pivots := b.RangeN(0, 3, 1)
	pos := b.Partition("pos", in, "g", pivots, "")
	st := MemStorage{"t": intVec("g", 2, 0, 1, 0, 2, 1)}
	res := mustRun(t, b, st)
	// Stable counting sort: zeros at 0..1, ones at 2..3, twos at 4..5.
	wantInts(t, res.Value(pos).SingleCol(), 4, 0, 2, 1, 5, 3)
}

func TestPersistRoundTrip(t *testing.T) {
	st := MemStorage{"in": intVec("v", 1, 2, 3)}
	b := core.NewBuilder()
	x := b.Load("in")
	doubled := b.Multiply(x, b.Constant(2))
	b.Persist("out", doubled)
	mustRun(t, b, st)
	out, err := st.LoadVector("out")
	if err != nil {
		t.Fatal(err)
	}
	wantInts(t, out.SingleCol(), 2, 4, 6)
}

func TestFoldCountMacro(t *testing.T) {
	b := core.NewBuilder()
	in := b.Load("t")
	cnt := b.FoldCount(in, "g")
	st := MemStorage{"t": intVec("g", 0, 0, 0, 1, 1, 2)}
	res := mustRun(t, b, st)
	wantSparse(t, res.Value(cnt).SingleCol(), 3, -1, -1, 2, -1, 1)
}

func TestErrorOnMissingAttribute(t *testing.T) {
	b := core.NewBuilder()
	in := b.Load("t")
	b.FoldSum(in, "nope", "v")
	_, err := Run(b.Program(), MemStorage{"t": intVec("v", 1)})
	if err == nil {
		t.Fatal("expected error for missing fold attribute")
	}
}

func TestErrorOnDivisionByZero(t *testing.T) {
	b := core.NewBuilder()
	in := b.Load("t")
	b.Divide(in, b.Constant(0))
	_, err := Run(b.Program(), MemStorage{"t": intVec("v", 1)})
	if err == nil {
		t.Fatal("expected division-by-zero error")
	}
}

func TestErrorOnUnknownTable(t *testing.T) {
	b := core.NewBuilder()
	b.Load("missing")
	_, err := Run(b.Program(), MemStorage{})
	if err == nil {
		t.Fatal("expected error for unknown table")
	}
}
