package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"math/rand/v2"
	"strings"
	"sync/atomic"
	"time"

	"voodoo/internal/metrics"
)

// The JSONL query-event log: one line per retained query, written off
// the serving path through a bounded buffer. Three properties matter:
//
//   - Sampling is the policy, not the mechanism: errors, shed requests
//     and slow queries are always retained; ordinary queries are
//     retained with probability SampleRate. An unsampled query costs one
//     branch and one rand draw — no marshalling, no channel send.
//   - Backpressure is absorbed by a drop counter, never by blocking:
//     when the buffer is full, Emit counts the loss and returns. A
//     stalled disk degrades the log, not the serving path.
//   - Close is flush-on-quiesce: every event accepted into the buffer is
//     written before Close returns, so a SIGTERM drain loses nothing.

// Event is one query's JSONL record.
type Event struct {
	Time    time.Time `json:"time"`
	QueryID string    `json:"query_id"`
	SQL     string    `json:"sql,omitempty"`
	// Status is the HTTP status code; Kind is the error kind label
	// ("parse", "canceled", "shed-memory", …), "" on success.
	Status int    `json:"status"`
	Kind   string `json:"kind,omitempty"`
	Error  string `json:"error,omitempty"`

	WallNS       int64 `json:"wall_ns"`
	QueueNS      int64 `json:"queue_ns,omitempty"`
	PlanLookupNS int64 `json:"plan_lookup_ns,omitempty"`
	CompileNS    int64 `json:"compile_ns,omitempty"`
	ExecNS       int64 `json:"exec_ns,omitempty"`
	Rows         int   `json:"rows,omitempty"`
	Cached       bool  `json:"cached,omitempty"`
	// DeadlineNS is the request's remaining deadline budget at arrival
	// (0 = no deadline).
	DeadlineNS int64 `json:"deadline_ns,omitempty"`
	// Sampled names why the event was retained: "error", "shed", "slow"
	// or "random".
	Sampled string `json:"sampled"`
}

// EventLogConfig configures an event log.
type EventLogConfig struct {
	// W receives the JSONL stream. Writes happen on the log's single
	// writer goroutine, so W needs no locking of its own.
	W io.Writer
	// Buffer is the bounded queue between Emit and the writer
	// (0 = 256). Events beyond it are dropped and counted.
	Buffer int
	// SampleRate is the retention probability for ordinary queries
	// (errors, shed requests and slow queries are always retained).
	// 0 retains none of them; DefaultSampleRate is the daemon default.
	SampleRate float64
	// SlowThreshold always retains queries at or above this wall time
	// (0 = the slowness rule is off).
	SlowThreshold time.Duration
	// Registry receives the sink's counters (nil = metrics.Default).
	Registry *metrics.Registry
}

// DefaultSampleRate retains 1% of ordinary queries — enough to keep the
// latency mix visible in the log while a storm of cheap queries stays
// cheap.
const DefaultSampleRate = 0.01

// EventLog is the async JSONL sink. The zero value is not usable; a nil
// *EventLog is (every method no-ops), so callers thread it without
// guards.
type EventLog struct {
	cfg  EventLogConfig
	ch   chan []byte
	quit chan struct{}
	done chan struct{}

	closed   atomic.Bool
	accepted atomic.Int64
	written  atomic.Int64
	dropped  atomic.Int64
	sampled  atomic.Int64 // sampled out (not retained)
}

// NewEventLog starts an event log writing to cfg.W.
func NewEventLog(cfg EventLogConfig) *EventLog {
	if cfg.Buffer <= 0 {
		cfg.Buffer = 256
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.Default
	}
	l := &EventLog{
		cfg:  cfg,
		ch:   make(chan []byte, cfg.Buffer),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	cfg.Registry.CounterFunc("voodoo_events_written_total",
		"Query events written to the JSONL event log.",
		func() float64 { return float64(l.written.Load()) })
	cfg.Registry.CounterFunc("voodoo_events_dropped_total",
		"Query events dropped because the event-log buffer was full.",
		func() float64 { return float64(l.dropped.Load()) })
	cfg.Registry.CounterFunc("voodoo_events_sampled_out_total",
		"Ordinary query events not retained by the sampling policy.",
		func() float64 { return float64(l.sampled.Load()) })
	go l.writer()
	return l
}

// sampleReason decides retention: errors, shed requests and slow
// queries always; ordinary queries probabilistically.
func (l *EventLog) sampleReason(e *Event) (string, bool) {
	switch {
	case strings.HasPrefix(e.Kind, "shed"):
		return "shed", true
	case e.Error != "" || e.Status >= 400:
		return "error", true
	case l.cfg.SlowThreshold > 0 && e.WallNS >= l.cfg.SlowThreshold.Nanoseconds():
		return "slow", true
	case l.cfg.SampleRate > 0 && rand.Float64() < l.cfg.SampleRate:
		return "random", true
	}
	return "", false
}

// Emit offers one event to the log. It never blocks: unsampled events
// return after one branch, and a full buffer drops the event into the
// drop counter. Nil-safe.
func (l *EventLog) Emit(e Event) {
	if l == nil || l.closed.Load() {
		return
	}
	reason, keep := l.sampleReason(&e)
	if !keep {
		l.sampled.Add(1)
		return
	}
	e.Sampled = reason
	b, err := json.Marshal(&e)
	if err != nil {
		l.dropped.Add(1)
		return
	}
	b = append(b, '\n')
	select {
	case l.ch <- b:
		l.accepted.Add(1)
	default:
		l.dropped.Add(1)
	}
}

// writer is the single consumer: it writes lines as they arrive and
// flushes whenever the buffer goes idle, so the file tails usefully
// without paying a flush per line under load.
func (l *EventLog) writer() {
	defer close(l.done)
	bw := bufio.NewWriter(l.cfg.W)
	write := func(b []byte) {
		if _, err := bw.Write(b); err == nil {
			l.written.Add(1)
		} else {
			l.dropped.Add(1)
		}
	}
	for {
		select {
		case b := <-l.ch:
			write(b)
			if len(l.ch) == 0 {
				bw.Flush() //nolint:errcheck // write errors already counted
			}
		case <-l.quit:
			// Flush-on-quiesce: drain whatever Emit already accepted,
			// then flush. Nothing accepted is ever lost to shutdown.
			for {
				select {
				case b := <-l.ch:
					write(b)
				default:
					bw.Flush() //nolint:errcheck
					return
				}
			}
		}
	}
}

// Close stops accepting events, drains the buffer to the writer, and
// flushes. Safe to call more than once; nil-safe. Call it only after
// the emitters have quiesced (the daemon closes the log after its HTTP
// drain completes).
func (l *EventLog) Close() error {
	if l == nil || !l.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(l.quit)
	<-l.done
	if c, ok := l.cfg.W.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Accepted returns the events accepted into the buffer so far.
func (l *EventLog) Accepted() int64 {
	if l == nil {
		return 0
	}
	return l.accepted.Load()
}

// Written returns the events written to the underlying writer.
func (l *EventLog) Written() int64 {
	if l == nil {
		return 0
	}
	return l.written.Load()
}

// Dropped returns the events lost to buffer backpressure (or write
// errors).
func (l *EventLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.dropped.Load()
}

// SampledOut returns the ordinary events the sampling policy skipped.
func (l *EventLog) SampledOut() int64 {
	if l == nil {
		return 0
	}
	return l.sampled.Load()
}
