// Package telemetry correlates every query's observability signals —
// structured logs, exportable spans, Prometheus metrics, the slow-query
// ring, and the JSONL event log — under one identity. A query's identity
// is a W3C trace context: inbound requests carrying a `traceparent`
// header keep their trace id (so the daemon's spans join a distributed
// trace), everything else gets one minted at admission, and the id is
// echoed on the response so clients can quote it back to operators.
//
// The package is pure stdlib. Its pieces:
//
//   - QueryID (this file): trace identity — parse, mint, render.
//   - log.go: a context-threaded *slog.Logger so every layer of the
//     stack (serve, rel, compile, exec, storage) emits records carrying
//     query_id without new parameter plumbing.
//   - span.go / store.go: converts the execution stack's trace.Trace
//     records into exportable spans and retains recent span trees for
//     the /debug/spans endpoint.
//   - events.go: the sampled JSONL query-event log behind an async
//     bounded buffer whose backpressure is absorbed by a drop counter,
//     never by blocking the serving path.
package telemetry

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
)

// QueryID is one query's trace identity. TraceID is the W3C trace-id
// (shared with the caller when the request arrived with a traceparent);
// SpanID is the id of this process's root span for the query; Parent is
// the caller's span id, zero when the trace was minted locally.
type QueryID struct {
	TraceID [16]byte
	SpanID  [8]byte
	Parent  [8]byte
}

// IsZero reports whether the id is unset.
func (q QueryID) IsZero() bool { return q.TraceID == [16]byte{} }

// String renders the query id as the 32-hex-digit trace id — the form
// that appears in logs, ring entries, span exports and the event log.
func (q QueryID) String() string { return hex.EncodeToString(q.TraceID[:]) }

// SpanIDString renders the root span id as 16 hex digits.
func (q QueryID) SpanIDString() string { return hex.EncodeToString(q.SpanID[:]) }

// ParentString renders the inbound parent span id, "" when none.
func (q QueryID) ParentString() string {
	if q.Parent == ([8]byte{}) {
		return ""
	}
	return hex.EncodeToString(q.Parent[:])
}

// Traceparent renders the outbound W3C traceparent header for this
// query: the shared trace id with this process's root span as parent.
func (q QueryID) Traceparent() string {
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	b = hex.AppendEncode(b, q.TraceID[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, q.SpanID[:])
	b = append(b, "-01"...)
	return string(b)
}

// ParseTraceparent parses a W3C traceparent header
// (version-traceid-parentid-flags). It accepts version 00 with a
// non-zero trace id and parent id; the returned QueryID keeps the
// caller's trace id, records the caller's span id as Parent, and mints
// a fresh root span id for this process.
func ParseTraceparent(s string) (QueryID, bool) {
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return QueryID{}, false
	}
	if s[:2] != "00" {
		return QueryID{}, false
	}
	var q QueryID
	if _, err := hex.Decode(q.TraceID[:], []byte(s[3:35])); err != nil {
		return QueryID{}, false
	}
	if _, err := hex.Decode(q.Parent[:], []byte(s[36:52])); err != nil {
		return QueryID{}, false
	}
	if _, err := hex.Decode(make([]byte, 1), []byte(s[53:55])); err != nil {
		return QueryID{}, false
	}
	if q.TraceID == ([16]byte{}) || q.Parent == ([8]byte{}) {
		return QueryID{}, false
	}
	q.SpanID = mintSpanID()
	return q, true
}

// MintQueryID mints a fresh query identity (no inbound trace context).
func MintQueryID() QueryID {
	var q QueryID
	fill(q.TraceID[:])
	q.SpanID = mintSpanID()
	return q
}

// mintSpanID returns a fresh non-zero span id.
func mintSpanID() [8]byte {
	var s [8]byte
	fill(s[:])
	return s
}

// idCounter de-correlates ids minted in the same fallback batch if the
// system randomness source ever fails (it realistically cannot).
var idCounter atomic.Uint64

// fill fills b with randomness and guarantees it is non-zero.
func fill(b []byte) {
	if _, err := cryptorand.Read(b); err != nil {
		binary.BigEndian.PutUint64(b[len(b)-8:], idCounter.Add(1)|1<<63)
	}
	allZero := true
	for _, c := range b {
		if c != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		b[len(b)-1] = 1
	}
}

type queryIDKey struct{}

// WithQueryID returns a context carrying id; LoggerFrom and the engine
// layers read it back to correlate their records.
func WithQueryID(ctx context.Context, id QueryID) context.Context {
	return context.WithValue(ctx, queryIDKey{}, id)
}

// QueryIDFrom extracts the query id carried by ctx (zero when absent).
func QueryIDFrom(ctx context.Context) QueryID {
	id, _ := ctx.Value(queryIDKey{}).(QueryID)
	return id
}
