package telemetry

import (
	"encoding/binary"
	"encoding/hex"
	"hash/fnv"
	"time"

	"voodoo/internal/trace"
)

// Span is one exportable span: flat, OTLP-shaped JSON (ids as lowercase
// hex, times as unix nanoseconds) so the output of /debug/spans or the
// voodoo-trace tool can be mapped onto any tracing backend without a
// vendor SDK in the build.
type Span struct {
	TraceID      string         `json:"trace_id"`
	SpanID       string         `json:"span_id"`
	ParentSpanID string         `json:"parent_span_id,omitempty"`
	Name         string         `json:"name"`
	StartUnixNS  int64          `json:"start_unix_ns"`
	EndUnixNS    int64          `json:"end_unix_ns"`
	Status       string         `json:"status,omitempty"` // "" = ok
	Attrs        map[string]any `json:"attrs,omitempty"`
}

// QuerySpans is one query's full span tree, flattened parent-linked —
// the /debug/spans payload.
type QuerySpans struct {
	QueryID string `json:"query_id"`
	SQL     string `json:"sql,omitempty"`
	Spans   []Span `json:"spans"`
}

// QueryMeta describes the request-level phases of one query; BuildSpans
// combines it with the execution traces into the span tree.
type QueryMeta struct {
	ID    QueryID
	SQL   string
	Start time.Time // request arrival
	End   time.Time // response written

	QueueWait  time.Duration // admission-semaphore wait
	PlanLookup time.Duration // plan-cache probe
	Compile    time.Duration // parse+plan+compile (0 on a cache hit)
	Cached     bool

	Status string // "" on success, else the error kind + message
}

// BuildSpans converts a finished query — its admission/plan phases plus
// the execution traces the engine produced (one per lowered program) —
// into an exportable span tree rooted at the query's root span.
//
// trace.Step records carry durations, not timestamps; steps of one
// program run sequentially in plan order, so each step span's start is
// the cumulative wall of its predecessors. Parallelism inside a step
// (workers, morsels) stays attribute-level, which is exactly how the
// paper's figures reason about fragments too.
func BuildSpans(m QueryMeta, traces []*trace.Trace) QuerySpans {
	qs := QuerySpans{QueryID: m.ID.String(), SQL: m.SQL}
	tid := m.ID.String()
	root := m.ID.SpanIDString()
	start := m.Start.UnixNano()

	rootSpan := Span{
		TraceID: tid, SpanID: root, ParentSpanID: m.ID.ParentString(),
		Name: "query", StartUnixNS: start, EndUnixNS: m.End.UnixNano(),
		Status: m.Status,
		Attrs:  map[string]any{"sql": m.SQL, "cached_plan": m.Cached},
	}
	qs.Spans = append(qs.Spans, rootSpan)

	seq := 0
	child := func(name string, parent string, startNS, durNS int64, attrs map[string]any) string {
		seq++
		id := deriveSpanID(m.ID, seq)
		qs.Spans = append(qs.Spans, Span{
			TraceID: tid, SpanID: id, ParentSpanID: parent, Name: name,
			StartUnixNS: startNS, EndUnixNS: startNS + durNS, Attrs: attrs,
		})
		return id
	}

	cursor := start
	if m.QueueWait > 0 {
		child("admission.wait", root, cursor, m.QueueWait.Nanoseconds(), nil)
		cursor += m.QueueWait.Nanoseconds()
	}
	if m.PlanLookup > 0 || m.Compile > 0 {
		child("plan", root, cursor, (m.PlanLookup + m.Compile).Nanoseconds(),
			map[string]any{"cache_lookup_ns": m.PlanLookup.Nanoseconds(),
				"compile_ns": m.Compile.Nanoseconds(), "cached": m.Cached})
		cursor += (m.PlanLookup + m.Compile).Nanoseconds()
	}

	for pi, t := range traces {
		attrs := map[string]any{
			"backend": t.Backend, "fragments": t.Fragments, "bulk_steps": t.BulkSteps,
			"items": t.Items, "materialized_bytes": t.MaterializedBytes,
			"alloc_bytes": t.AllocBytes,
		}
		phase := child("exec", root, cursor, t.WallNS, attrs)
		if pi > 0 || len(traces) > 1 {
			qs.Spans[len(qs.Spans)-1].Attrs["phase"] = pi
		}
		stepCursor := cursor
		for i := range t.Steps {
			s := &t.Steps[i]
			sa := map[string]any{"kind": s.Kind, "items": s.Items}
			if s.Workers > 0 {
				sa["workers"] = s.Workers
			}
			if s.Morsels > 0 {
				sa["morsels"] = s.Morsels
				sa["imbalance"] = s.Imbalance
			}
			if s.MaterializedBytes > 0 {
				sa["materialized_bytes"] = s.MaterializedBytes
			}
			if s.FoldRuns > 0 {
				sa["fold_runs"] = s.FoldRuns
			}
			if s.ScatterItems > 0 {
				sa["scatter_items"] = s.ScatterItems
			}
			if s.Fused {
				sa["fused_stmts"] = len(s.Stmts)
			}
			if s.Virtual {
				sa["virtual_scatter"] = true
			}
			if s.Suppressed {
				sa["empty_slot_suppression"] = true
			}
			if s.Specialized != "" {
				sa["specialized"] = s.Specialized
			}
			child(s.Kind+" "+s.Name, phase, stepCursor, s.WallNS, sa)
			stepCursor += s.WallNS
		}
		cursor += t.WallNS
	}
	return qs
}

// deriveSpanID derives a deterministic non-zero child span id from the
// query's root span and a per-tree sequence number — rebuilding the same
// query's tree yields the same ids, which keeps tests and diffing sane.
func deriveSpanID(q QueryID, seq int) string {
	h := fnv.New64a()
	h.Write(q.TraceID[:])
	h.Write(q.SpanID[:])
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(seq))
	h.Write(n[:])
	binary.BigEndian.PutUint64(n[:], h.Sum64()|1) // never zero
	return hex.EncodeToString(n[:])
}
