package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// Structured logging, threaded via context. The rules:
//
//   - Every record a query emits carries query_id: the serve layer binds
//     the id once per request (WithLogger on a logger carrying the attr)
//     and the engine layers pick the logger up with LoggerFrom.
//   - Disabled logging is allocation-free: LoggerFrom falls back to a
//     discard logger whose handler reports Enabled() == false, and hot
//     paths guard record construction with Enabled checks.
//   - Long-running processes route everything through one process
//     default (SetDefault); libraries never construct their own output
//     handlers, so a daemon's log stream stays uniform JSON.

// discardHandler drops everything. (The stdlib gained an equivalent in a
// later Go release; this keeps the module's floor at go 1.22.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// Discard is a logger that drops every record without allocating.
var Discard = slog.New(discardHandler{})

// defaultLogger is the process-wide fallback (Discard until a daemon
// installs a real one).
var defaultLogger atomic.Pointer[slog.Logger]

func init() { defaultLogger.Store(Discard) }

// SetDefault installs the process-wide default logger that LoggerFrom
// falls back to when the context carries none. Daemons call it once at
// startup; nil restores the discard logger.
func SetDefault(l *slog.Logger) {
	if l == nil {
		l = Discard
	}
	defaultLogger.Store(l)
}

// Default returns the process-wide default logger (never nil).
func Default() *slog.Logger { return defaultLogger.Load() }

// InstallJSON installs the process-wide default logger as a JSON
// handler writing to w at the named level ("debug", "info", "warn",
// "error"; "off" keeps the discard logger). It is the one line every
// daemon's -log-level flag needs.
func InstallJSON(w io.Writer, level string) error {
	if strings.EqualFold(strings.TrimSpace(level), "off") {
		SetDefault(nil)
		return nil
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return fmt.Errorf("bad log level %q (want debug, info, warn, error or off)", level)
	}
	SetDefault(slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: lvl})))
	return nil
}

type loggerKey struct{}

// WithLogger returns a context carrying l. The serve layer binds the
// request's query_id attr onto l first, so every record logged through
// this context correlates.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey{}, l)
}

// LoggerFrom returns the logger carried by ctx, falling back to the
// process default. Never nil, so callers can guard hot paths with
// LoggerFrom(ctx).Enabled(ctx, level) — false on the discard fallback,
// and the guard itself does not allocate.
func LoggerFrom(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey{}).(*slog.Logger); ok && l != nil {
		return l
	}
	return defaultLogger.Load()
}
