package telemetry

import "sync"

// SpanStore retains the span trees of the most recent queries for the
// diagnostics server's /debug/spans?query_id= endpoint — the last hop of
// the metric → log line → span tree debugging walk. It is a fixed-size
// ring: the N+1th query evicts the oldest retained tree.
type SpanStore struct {
	mu    sync.Mutex
	ring  []QuerySpans
	index map[string]int // query id → ring slot
	next  int
}

// NewSpanStore returns a store retaining the n most recent span trees
// (n <= 0 defaults to 64).
func NewSpanStore(n int) *SpanStore {
	if n <= 0 {
		n = 64
	}
	return &SpanStore{ring: make([]QuerySpans, n), index: make(map[string]int, n)}
}

// Put retains qs, evicting the oldest retained tree once full.
func (s *SpanStore) Put(qs QuerySpans) {
	if s == nil || qs.QueryID == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	slot := s.next
	s.next = (s.next + 1) % len(s.ring)
	if old := s.ring[slot].QueryID; old != "" {
		delete(s.index, old)
	}
	s.ring[slot] = qs
	s.index[qs.QueryID] = slot
}

// Get returns the retained span tree of queryID.
func (s *SpanStore) Get(queryID string) (QuerySpans, bool) {
	if s == nil {
		return QuerySpans{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	slot, ok := s.index[queryID]
	if !ok {
		return QuerySpans{}, false
	}
	return s.ring[slot], true
}

// IDs lists the retained query ids, most recent first — the index page
// of /debug/spans.
func (s *SpanStore) IDs() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.index))
	n := len(s.ring)
	for i := 1; i <= n; i++ {
		slot := ((s.next-i)%n + n) % n
		if id := s.ring[slot].QueryID; id != "" {
			out = append(out, id)
		}
	}
	return out
}

// Len returns the number of retained trees.
func (s *SpanStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}
