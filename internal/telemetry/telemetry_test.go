package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"voodoo/internal/metrics"
	"voodoo/internal/trace"
)

// TestTraceparentRoundTrip: an inbound W3C traceparent keeps its trace
// id, records the caller's span as parent, mints a fresh root span, and
// renders an echo header carrying the same trace id.
func TestTraceparentRoundTrip(t *testing.T) {
	in := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	q, ok := ParseTraceparent(in)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected a valid header", in)
	}
	if got := q.String(); got != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("trace id %q not preserved", got)
	}
	if got := q.ParentString(); got != "b7ad6b7169203331" {
		t.Errorf("parent span %q not preserved", got)
	}
	if q.SpanIDString() == q.ParentString() || q.SpanID == ([8]byte{}) {
		t.Errorf("root span id not freshly minted: %q", q.SpanIDString())
	}
	echo := q.Traceparent()
	if !strings.HasPrefix(echo, "00-0af7651916cd43dd8448eb211c80319c-") || !strings.HasSuffix(echo, "-01") {
		t.Errorf("echo header %q does not carry the shared trace id", echo)
	}
	if len(echo) != 55 {
		t.Errorf("echo header %q has length %d, want 55", echo, len(echo))
	}
}

// TestTraceparentRejects: malformed headers mint nothing.
func TestTraceparentRejects(t *testing.T) {
	for _, bad := range []string{
		"",
		"00-short-b7ad6b7169203331-01",
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // unknown version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero parent
		"00-0af7651916cd43dd8448eb211c80319g-b7ad6b7169203331-01", // non-hex
		"00_0af7651916cd43dd8448eb211c80319c_b7ad6b7169203331_01", // wrong separators
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted a malformed header", bad)
		}
	}
}

// TestMintQueryID: minted ids are non-zero and distinct.
func TestMintQueryID(t *testing.T) {
	a, b := MintQueryID(), MintQueryID()
	if a.IsZero() || b.IsZero() {
		t.Fatal("minted a zero query id")
	}
	if a.String() == b.String() {
		t.Fatalf("two minted ids collide: %s", a)
	}
	if a.ParentString() != "" {
		t.Errorf("minted id has an inbound parent: %q", a.ParentString())
	}
}

// TestContextPlumbing: query id and logger travel via context, and the
// fallback logger is the allocation-free discard.
func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if got := QueryIDFrom(ctx); !got.IsZero() {
		t.Errorf("empty context carries query id %v", got)
	}
	if l := LoggerFrom(ctx); l != Discard {
		t.Errorf("empty context logger is not the discard fallback")
	}
	if LoggerFrom(ctx).Enabled(ctx, slog.LevelError) {
		t.Error("discard logger claims to be enabled")
	}

	id := MintQueryID()
	var buf bytes.Buffer
	lg := slog.New(slog.NewJSONHandler(&buf, nil)).With("query_id", id.String())
	ctx = WithQueryID(WithLogger(ctx, lg), id)
	if got := QueryIDFrom(ctx); got != id {
		t.Errorf("query id did not round-trip: %v", got)
	}
	LoggerFrom(ctx).Info("hello")
	if !strings.Contains(buf.String(), id.String()) {
		t.Errorf("log record missing query_id: %s", buf.String())
	}

	allocs := testing.AllocsPerRun(100, func() {
		l := LoggerFrom(context.Background())
		if l.Enabled(context.Background(), slog.LevelDebug) {
			t.Fatal("discard enabled")
		}
	})
	if allocs > 0 {
		t.Errorf("disabled logging path allocates %.0f/op", allocs)
	}
}

// TestBuildSpans: request phases and trace steps become a parent-linked
// span tree under the query's root span, with deterministic child ids.
func TestBuildSpans(t *testing.T) {
	q, _ := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	start := time.Unix(1000, 0)
	tr := &trace.Trace{Backend: "compiled", WallNS: 5e6}
	tr.Add(trace.Step{Kind: trace.KindBind, Name: "lineitem", WallNS: 1e6})
	tr.Add(trace.Step{Kind: trace.KindFragment, Name: "sel_fused", WallNS: 4e6,
		Items: 100, Workers: 2, Morsels: 4, Fused: true, Stmts: []int{1, 2}})
	tr.Finish(5 * time.Millisecond)

	m := QueryMeta{
		ID: q, SQL: "SELECT 1", Start: start, End: start.Add(10 * time.Millisecond),
		QueueWait: time.Millisecond, PlanLookup: time.Microsecond,
		Compile: 2 * time.Millisecond,
	}
	qs := BuildSpans(m, []*trace.Trace{tr})
	if qs.QueryID != q.String() {
		t.Fatalf("span tree query id %q", qs.QueryID)
	}
	// root + admission.wait + plan + exec + 2 steps
	if len(qs.Spans) != 6 {
		t.Fatalf("got %d spans, want 6: %+v", len(qs.Spans), qs.Spans)
	}
	root := qs.Spans[0]
	if root.Name != "query" || root.ParentSpanID != "b7ad6b7169203331" || root.TraceID != q.String() {
		t.Errorf("bad root span: %+v", root)
	}
	byName := map[string]Span{}
	for _, s := range qs.Spans {
		byName[s.Name] = s
		if s.TraceID != q.String() {
			t.Errorf("span %s has trace id %q", s.Name, s.TraceID)
		}
		if s.SpanID == "" || s.EndUnixNS < s.StartUnixNS {
			t.Errorf("span %s malformed: %+v", s.Name, s)
		}
	}
	if byName["admission.wait"].ParentSpanID != root.SpanID {
		t.Errorf("admission.wait not a child of the root")
	}
	frag := byName["fragment sel_fused"]
	if frag.ParentSpanID != byName["exec"].SpanID {
		t.Errorf("fragment span not under exec phase: %+v", frag)
	}
	if frag.Attrs["workers"] != 2 || frag.Attrs["fused_stmts"] != 2 {
		t.Errorf("fragment attrs lost: %+v", frag.Attrs)
	}
	// Steps are sequential: the fragment starts where the bind ended.
	bind := byName["bind lineitem"]
	if frag.StartUnixNS != bind.EndUnixNS {
		t.Errorf("fragment start %d != bind end %d", frag.StartUnixNS, bind.EndUnixNS)
	}

	// Determinism: rebuilding yields identical ids.
	qs2 := BuildSpans(m, []*trace.Trace{tr})
	for i := range qs.Spans {
		if qs.Spans[i].SpanID != qs2.Spans[i].SpanID {
			t.Errorf("span %d id not deterministic: %q vs %q", i, qs.Spans[i].SpanID, qs2.Spans[i].SpanID)
		}
	}
}

// TestSpanStore: ring retention with eviction of the oldest tree.
func TestSpanStore(t *testing.T) {
	st := NewSpanStore(2)
	st.Put(QuerySpans{QueryID: "a"})
	st.Put(QuerySpans{QueryID: "b"})
	st.Put(QuerySpans{QueryID: "c"}) // evicts a
	if _, ok := st.Get("a"); ok {
		t.Error("oldest tree not evicted")
	}
	for _, id := range []string{"b", "c"} {
		if got, ok := st.Get(id); !ok || got.QueryID != id {
			t.Errorf("tree %q lost", id)
		}
	}
	if st.Len() != 2 {
		t.Errorf("store holds %d, want 2", st.Len())
	}
	var nilStore *SpanStore
	nilStore.Put(QuerySpans{QueryID: "x"}) // must not panic
	if _, ok := nilStore.Get("x"); ok {
		t.Error("nil store returned a hit")
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for event-log tests.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestEventLogPolicy pins the sampling policy: errors, shed requests and
// slow queries always land; ordinary queries follow the rate (0 here, so
// never); and every accepted event is written by Close.
func TestEventLogPolicy(t *testing.T) {
	var buf syncBuffer
	l := NewEventLog(EventLogConfig{
		W: &buf, SampleRate: 0, SlowThreshold: 100 * time.Millisecond,
		Registry: metrics.NewRegistry(),
	})
	l.Emit(Event{QueryID: "q-ok", Status: 200, WallNS: 1e6})                                       // sampled out
	l.Emit(Event{QueryID: "q-err", Status: 500, Error: "boom", WallNS: 1e6})                       // error
	l.Emit(Event{QueryID: "q-shed", Status: 503, Kind: "shed-memory"})                             // shed
	l.Emit(Event{QueryID: "q-slow", Status: 200, WallNS: (200 * 1e6)})                             // slow
	l.Emit(Event{QueryID: "q-canceled", Status: 499, Kind: "canceled", Error: "context canceled"}) // error
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if l.Accepted() != 4 || l.Written() != 4 || l.Dropped() != 0 || l.SampledOut() != 1 {
		t.Fatalf("accounting: accepted=%d written=%d dropped=%d sampledOut=%d",
			l.Accepted(), l.Written(), l.Dropped(), l.SampledOut())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d JSONL lines, want 4:\n%s", len(lines), buf.String())
	}
	wantReason := map[string]string{"q-err": "error", "q-shed": "shed", "q-slow": "slow", "q-canceled": "error"}
	for _, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if want := wantReason[e.QueryID]; e.Sampled != want {
			t.Errorf("event %s sampled=%q, want %q", e.QueryID, e.Sampled, want)
		}
		delete(wantReason, e.QueryID)
	}
	if len(wantReason) != 0 {
		t.Errorf("events missing from the log: %v", wantReason)
	}
	// Emit after Close is a silent no-op, not a panic or a block.
	l.Emit(Event{QueryID: "late", Status: 500, Error: "x"})
}

// TestEventLogSampling: rate 1.0 retains everything with reason random.
func TestEventLogSampling(t *testing.T) {
	var buf syncBuffer
	l := NewEventLog(EventLogConfig{W: &buf, SampleRate: 1.0, Registry: metrics.NewRegistry()})
	for i := 0; i < 50; i++ {
		l.Emit(Event{QueryID: "q", Status: 200, WallNS: 1})
	}
	l.Close()
	if l.Written() != 50 {
		t.Fatalf("rate-1.0 log wrote %d of 50", l.Written())
	}
	if !strings.Contains(buf.String(), `"sampled":"random"`) {
		t.Errorf("missing random sample reason: %.200s", buf.String())
	}
}

// TestEventLogBackpressure: a stalled sink fills the buffer; Emit keeps
// returning immediately (drop counter, not a block), and once the sink
// recovers Close still writes everything that was accepted.
func TestEventLogBackpressure(t *testing.T) {
	release := make(chan struct{})
	gated := &gatedWriter{release: release}
	l := NewEventLog(EventLogConfig{
		W: gated, Buffer: 8, SampleRate: 1.0, Registry: metrics.NewRegistry(),
	})
	start := time.Now()
	const n = 100
	for i := 0; i < n; i++ {
		l.Emit(Event{QueryID: "q", Status: 500, Error: "x"})
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Emit blocked on a stalled sink: %v for %d emits", elapsed, n)
	}
	if l.Dropped() == 0 {
		t.Fatal("stalled sink dropped nothing — backpressure blocked instead")
	}
	if l.Accepted()+l.Dropped() != n {
		t.Fatalf("accounting leak: accepted=%d dropped=%d of %d", l.Accepted(), l.Dropped(), n)
	}
	close(release)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if l.Written() != l.Accepted() {
		t.Fatalf("flush-on-quiesce lost events: written=%d accepted=%d", l.Written(), l.Accepted())
	}
}

// gatedWriter blocks writes until released, then passes them through.
type gatedWriter struct {
	release <-chan struct{}
	mu      sync.Mutex
	buf     bytes.Buffer
}

func (g *gatedWriter) Write(p []byte) (int, error) {
	<-g.release
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.buf.Write(p)
}
