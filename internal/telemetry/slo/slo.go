// Package slo tracks latency objectives per route and turns them into
// the two numbers an operator actually pages on: the good/bad request
// counters (voodoo_slo_{good,bad}_total) and the error-budget burn rate
// over a sliding window. A request is "good" when it completes within
// its route's latency objective and without a server-side failure;
// everything else — too slow, 5xx, shed, panicked — burns budget.
//
// Burn rate is normalized to the objective: 1.0 means the route is
// failing exactly at its budgeted rate (e.g. 1% of requests bad for a
// 99% objective), below 1.0 the budget is accumulating, above it the
// budget is burning down — 10x burn on a 99% objective means 10% of the
// window's requests were bad. The serve layer surfaces the snapshot on
// /healthz so the budget state travels with the readiness probe.
package slo

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"voodoo/internal/metrics"
)

// Objective is one route's latency SLO.
type Objective struct {
	// Route names the request class ("query" for /query traffic).
	Route string `json:"route"`
	// Latency is the per-request objective: a request slower than this
	// is bad even when it succeeds.
	Latency time.Duration `json:"latency_ns"`
	// Target is the objective ratio, e.g. 0.99 — at most 1% of requests
	// may be bad before the budget exhausts.
	Target float64 `json:"target"`
}

// DefaultWindow is the sliding window burn rates are computed over.
const DefaultWindow = 5 * time.Minute

const windowBuckets = 30

// bucket holds one window slice's counts.
type bucket struct {
	start     time.Time
	good, bad int64
}

// routeState is one objective's tracking state.
type routeState struct {
	obj             Objective
	goodC, badC     *metrics.Counter
	burnG           *metrics.Gauge
	buckets         [windowBuckets]bucket
	cur             int
	totGood, totBad int64
}

// Tracker tracks a set of objectives. Safe for concurrent use; Observe
// is one mutex acquisition plus two atomic adds, far off any hot loop
// (once per HTTP request).
type Tracker struct {
	window time.Duration
	now    func() time.Time // injectable for tests

	mu     sync.Mutex
	routes map[string]*routeState
}

// New builds a tracker over the given objectives, registering their
// counters and burn-rate gauges on reg (nil = metrics.Default). window
// <= 0 uses DefaultWindow.
func New(reg *metrics.Registry, window time.Duration, objectives ...Objective) *Tracker {
	if reg == nil {
		reg = metrics.Default
	}
	if window <= 0 {
		window = DefaultWindow
	}
	goodV := reg.CounterVec("voodoo_slo_good_total",
		"Requests that met their route's latency objective.", "route")
	badV := reg.CounterVec("voodoo_slo_bad_total",
		"Requests that missed their route's latency objective (slow or failed).", "route")
	burnV := reg.GaugeVec("voodoo_slo_burn_rate",
		"Error-budget burn rate over the sliding window (1.0 = burning exactly at budget).", "route")
	t := &Tracker{window: window, now: time.Now, routes: map[string]*routeState{}}
	for _, o := range objectives {
		if o.Route == "" || o.Target <= 0 || o.Target >= 1 || o.Latency <= 0 {
			continue
		}
		t.routes[o.Route] = &routeState{
			obj:   o,
			goodC: goodV.With(o.Route),
			badC:  badV.With(o.Route),
			burnG: burnV.With(o.Route),
		}
	}
	return t
}

// Observe folds one finished request into its route's budget. failed
// marks server-side failures (5xx, shed, panic) — they are bad at any
// latency. Unknown routes are ignored; a nil tracker is a no-op.
func (t *Tracker) Observe(route string, latency time.Duration, failed bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rs, ok := t.routes[route]
	if !ok {
		return
	}
	t.rotate(rs, t.now())
	b := &rs.buckets[rs.cur]
	if !failed && latency <= rs.obj.Latency {
		b.good++
		rs.totGood++
		rs.goodC.Inc()
	} else {
		b.bad++
		rs.totBad++
		rs.badC.Inc()
	}
	rs.burnG.Set(burnRate(rs))
}

// rotate advances rs's ring so the current bucket covers now, zeroing
// buckets whose window slice has passed.
func (t *Tracker) rotate(rs *routeState, now time.Time) {
	slice := t.window / windowBuckets
	cur := &rs.buckets[rs.cur]
	if cur.start.IsZero() {
		cur.start = now
		return
	}
	for now.Sub(rs.buckets[rs.cur].start) >= slice {
		next := (rs.cur + 1) % windowBuckets
		rs.buckets[next] = bucket{start: rs.buckets[rs.cur].start.Add(slice)}
		rs.cur = next
		// Cap catch-up: after an idle gap longer than the window the
		// whole ring is stale; restart it at now.
		if now.Sub(rs.buckets[rs.cur].start) >= t.window {
			for i := range rs.buckets {
				rs.buckets[i] = bucket{}
			}
			rs.cur = 0
			rs.buckets[0].start = now
			return
		}
	}
}

// burnRate computes the window's burn rate for rs: the bad fraction
// divided by the budgeted bad fraction (1 - target). An empty window
// burns nothing.
func burnRate(rs *routeState) float64 {
	var good, bad int64
	for i := range rs.buckets {
		good += rs.buckets[i].good
		bad += rs.buckets[i].bad
	}
	total := good + bad
	if total == 0 {
		return 0
	}
	badFrac := float64(bad) / float64(total)
	return badFrac / (1 - rs.obj.Target)
}

// BudgetState is one route's budget snapshot — the /healthz payload.
type BudgetState struct {
	Route      string  `json:"route"`
	LatencyMS  float64 `json:"objective_latency_ms"`
	Target     float64 `json:"target"`
	WindowGood int64   `json:"window_good"`
	WindowBad  int64   `json:"window_bad"`
	TotalGood  int64   `json:"total_good"`
	TotalBad   int64   `json:"total_bad"`
	// BurnRate is the window's normalized burn: 1.0 = exactly at budget.
	BurnRate float64 `json:"burn_rate"`
	// Healthy is BurnRate <= 1: the route is inside its error budget.
	Healthy bool `json:"healthy"`
}

// Snapshot returns every route's budget state, route-sorted. Nil-safe.
func (t *Tracker) Snapshot() []BudgetState {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	out := make([]BudgetState, 0, len(t.routes))
	for _, rs := range t.routes {
		t.rotate(rs, now)
		var good, bad int64
		for i := range rs.buckets {
			good += rs.buckets[i].good
			bad += rs.buckets[i].bad
		}
		burn := burnRate(rs)
		rs.burnG.Set(burn)
		out = append(out, BudgetState{
			Route: rs.obj.Route, LatencyMS: float64(rs.obj.Latency) / 1e6,
			Target: rs.obj.Target, WindowGood: good, WindowBad: bad,
			TotalGood: rs.totGood, TotalBad: rs.totBad,
			// The epsilon keeps exactly-at-budget burns (1.0 up to the
			// float error in 1-target) on the healthy side of the line.
			BurnRate: burn, Healthy: burn <= 1+1e-9,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Route < out[j].Route })
	return out
}

// Parse parses a flag-friendly objective list:
//
//	"query=250ms:0.99"              one route
//	"query=250ms:0.99,admin=1s:0.999"  several
//
// Each entry is route=latency:target with latency in time.ParseDuration
// syntax and target in (0,1).
func Parse(s string) ([]Objective, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []Objective
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		route, spec, ok := strings.Cut(ent, "=")
		if !ok || route == "" {
			return nil, fmt.Errorf("slo: bad objective %q (want route=latency:target)", ent)
		}
		latStr, tgtStr, ok := strings.Cut(spec, ":")
		if !ok {
			return nil, fmt.Errorf("slo: bad objective %q (want route=latency:target)", ent)
		}
		lat, err := time.ParseDuration(latStr)
		if err != nil || lat <= 0 {
			return nil, fmt.Errorf("slo: bad latency in %q: %v", ent, err)
		}
		var tgt float64
		if _, err := fmt.Sscanf(tgtStr, "%g", &tgt); err != nil || tgt <= 0 || tgt >= 1 {
			return nil, fmt.Errorf("slo: bad target in %q (want a ratio in (0,1))", ent)
		}
		out = append(out, Objective{Route: route, Latency: lat, Target: tgt})
	}
	return out, nil
}
