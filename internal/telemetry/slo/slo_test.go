package slo

import (
	"strings"
	"testing"
	"time"

	"voodoo/internal/metrics"
)

// fixedClock advances only when told to.
type fixedClock struct{ t time.Time }

func (c *fixedClock) now() time.Time          { return c.t }
func (c *fixedClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestTracker(window time.Duration, objs ...Objective) (*Tracker, *fixedClock, *metrics.Registry) {
	reg := metrics.NewRegistry()
	tr := New(reg, window, objs...)
	clk := &fixedClock{t: time.Unix(1000, 0)}
	tr.now = clk.now
	return tr, clk, reg
}

// TestGoodBadClassification: within-latency successes are good; slow or
// failed requests burn budget; counters and burn gauge move accordingly.
func TestGoodBadClassification(t *testing.T) {
	tr, _, reg := newTestTracker(time.Minute, Objective{Route: "query", Latency: 100 * time.Millisecond, Target: 0.9})

	for i := 0; i < 9; i++ {
		tr.Observe("query", 10*time.Millisecond, false)
	}
	tr.Observe("query", 500*time.Millisecond, false) // slow = bad
	snap := tr.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("got %d routes", len(snap))
	}
	s := snap[0]
	if s.WindowGood != 9 || s.WindowBad != 1 {
		t.Fatalf("window good/bad = %d/%d, want 9/1", s.WindowGood, s.WindowBad)
	}
	// 10% bad against a 10% budget: burning exactly at budget.
	if s.BurnRate < 0.99 || s.BurnRate > 1.01 || !s.Healthy {
		t.Errorf("burn rate %.3f healthy=%v, want ~1.0 healthy", s.BurnRate, s.Healthy)
	}

	// A fast 5xx is still bad.
	tr.Observe("query", time.Millisecond, true)
	if s := tr.Snapshot()[0]; s.WindowBad != 2 {
		t.Errorf("failed request not counted bad: %+v", s)
	}

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	exp := sb.String()
	for _, want := range []string{
		`voodoo_slo_good_total{route="query"} 9`,
		`voodoo_slo_bad_total{route="query"} 2`,
		"# TYPE voodoo_slo_burn_rate gauge",
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q:\n%s", want, exp)
		}
	}

	// Unknown routes and nil trackers are no-ops.
	tr.Observe("nope", time.Millisecond, false)
	var nilT *Tracker
	nilT.Observe("query", 0, false)
	if nilT.Snapshot() != nil {
		t.Error("nil tracker snapshotted something")
	}
}

// TestWindowSlides: bad requests age out of the burn window while the
// cumulative counters keep them.
func TestWindowSlides(t *testing.T) {
	tr, clk, _ := newTestTracker(time.Minute, Objective{Route: "query", Latency: time.Millisecond, Target: 0.99})

	tr.Observe("query", time.Second, false) // bad
	if s := tr.Snapshot()[0]; s.Healthy {
		t.Fatalf("100%% bad window reads healthy: %+v", s)
	}

	// Slide past the whole window; the burn resets, totals persist.
	clk.advance(2 * time.Minute)
	for i := 0; i < 5; i++ {
		tr.Observe("query", 100*time.Microsecond, false)
	}
	s := tr.Snapshot()[0]
	if s.WindowBad != 0 || s.WindowGood != 5 {
		t.Fatalf("window did not slide: %+v", s)
	}
	if s.BurnRate != 0 || !s.Healthy {
		t.Errorf("aged-out burn still reads %v", s.BurnRate)
	}
	if s.TotalBad != 1 || s.TotalGood != 5 {
		t.Errorf("cumulative totals lost: %+v", s)
	}
}

// TestPartialSlide: within the window, old buckets retire one slice at a
// time rather than all at once.
func TestPartialSlide(t *testing.T) {
	tr, clk, _ := newTestTracker(time.Minute, Objective{Route: "query", Latency: time.Millisecond, Target: 0.5})
	tr.Observe("query", time.Second, false) // bad, t=0
	clk.advance(30 * time.Second)           // half the window
	tr.Observe("query", time.Microsecond, false)
	s := tr.Snapshot()[0]
	if s.WindowBad != 1 || s.WindowGood != 1 {
		t.Fatalf("mid-window slide dropped counts: %+v", s)
	}
}

// TestParse: the flag syntax round-trips and rejects garbage.
func TestParse(t *testing.T) {
	objs, err := Parse("query=250ms:0.99, admin=1s:0.999")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 || objs[0].Route != "query" || objs[0].Latency != 250*time.Millisecond ||
		objs[0].Target != 0.99 || objs[1].Route != "admin" || objs[1].Latency != time.Second {
		t.Fatalf("bad parse: %+v", objs)
	}
	if objs, err := Parse(""); err != nil || objs != nil {
		t.Errorf("empty spec: %v %v", objs, err)
	}
	for _, bad := range []string{"query", "query=250ms", "query=nope:0.99", "query=250ms:1.5", "query=250ms:0", "=250ms:0.9"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted garbage", bad)
		}
	}
}
