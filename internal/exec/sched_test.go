package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"voodoo/internal/faultinject"
	"voodoo/internal/kernel"
	"voodoo/internal/vector"
)

// staticChunkRun reimplements the pre-scheduler executor — one static
// chunk per worker, fresh goroutines — as the baseline the skew-stress
// test measures the morsel scheduler against.
func staticChunkRun(t *testing.T, f *kernel.Fragment, env *Env, workers int) {
	t.Helper()
	nregs := maxReg(f) + 1
	chunk := (f.Extent + workers - 1) / workers
	var stop atomic.Bool
	var wg sync.WaitGroup
	for lo := 0; lo < f.Extent; lo += chunk {
		hi := min(lo+chunk, f.Extent)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			w := newWorker(context.Background(), f, env, nregs, false, &stop, specAssign{})
			if err := protect(f.Name, func() error { return w.run(lo, hi) }); err != nil {
				t.Error(err)
			}
			w.release()
		}(lo, hi)
	}
	wg.Wait()
}

// TestSkewStressBeatsStaticChunking is the pathological-skew workload:
// every expensive work item lands in the first static chunk (the shape of
// a predicate whose matches are all in one range), so static chunking
// serializes the whole fragment behind worker 0 while the morsel
// scheduler spreads the expensive morsels over every participant. The
// morsel run must be at least 2× faster and produce bit-identical output.
func TestSkewStressBeatsStaticChunking(t *testing.T) {
	const (
		n       = 1 << 16
		workers = 4
		delay   = 5 * time.Millisecond
	)
	k := busyKernel(n, 1)
	f := k.Frags[0]
	env := NewEnv(k)
	bindIn(t, k, env, n)

	// All the cost sits in the first quarter — exactly static worker 0's
	// chunk. The hook fires at checkpoint cadence, so the expensive region
	// holds ~32 sleeps: ~160ms serialized, ~40ms spread over 4 workers.
	faultinject.With(t, faultinject.Hooks{
		Item: func(frag string, gid int) {
			if gid < n/4 {
				time.Sleep(delay)
			}
		},
	})

	start := time.Now()
	staticChunkRun(t, f, env, workers)
	staticElapsed := time.Since(start)
	want := append([]int64(nil), env.Bufs[1].I...)

	clear(env.Bufs[1].I)
	var fs FragStats
	start = time.Now()
	if err := RunFragmentPar(context.Background(), f, env, Par{Workers: workers, Morsel: 1024}, &fs); err != nil {
		t.Fatal(err)
	}
	morselElapsed := time.Since(start)

	for i, v := range env.Bufs[1].I {
		if v != want[i] {
			t.Fatalf("out[%d] = %d, want %d: morsel run not bit-identical to static run", i, v, want[i])
		}
	}
	t.Logf("static=%v morsel=%v (%.1fx) workers=%d morsels=%d imbalance=%.2f",
		staticElapsed, morselElapsed,
		float64(staticElapsed)/float64(morselElapsed), fs.Workers, fs.Morsels, fs.Imbalance)
	if 2*morselElapsed > staticElapsed {
		t.Errorf("morsel run %v vs static %v: want >= 2x speedup on skewed work",
			morselElapsed, staticElapsed)
	}
	if fs.Workers < 2 {
		t.Errorf("fs.Workers = %d: the pool never helped with the skewed fragment", fs.Workers)
	}
	if fs.Morsels != n/1024 {
		t.Errorf("fs.Morsels = %d, want %d", fs.Morsels, n/1024)
	}
}

// TestUniformLoadBalancesMorselCounts runs a fragment whose morsels all
// cost the same and asserts the per-participant morsel counts come out
// balanced (imbalance near 1), which static chunking only achieves by
// construction and the scheduler must achieve by claiming.
func TestUniformLoadBalancesMorselCounts(t *testing.T) {
	const (
		n       = 1 << 14
		workers = 4
	)
	k := busyKernel(n, 1)
	env := NewEnv(k)
	bindIn(t, k, env, n)

	// Uniform per-checkpoint cost so every morsel takes long enough that
	// no participant can race through the whole ticket space alone.
	faultinject.With(t, faultinject.Hooks{
		Item: func(frag string, gid int) { time.Sleep(2 * time.Millisecond) },
	})

	var fs FragStats
	if err := RunFragmentPar(context.Background(), k.Frags[0], env, Par{Workers: workers, Morsel: 1024}, &fs); err != nil {
		t.Fatal(err)
	}
	t.Logf("workers=%d morsels=%d imbalance=%.2f", fs.Workers, fs.Morsels, fs.Imbalance)
	if fs.Workers < 2 {
		t.Fatalf("fs.Workers = %d: pool never engaged", fs.Workers)
	}
	if fs.Imbalance > 2 {
		t.Errorf("imbalance = %.2f on uniform load, want <= 2 (balanced claims)", fs.Imbalance)
	}
}

// TestMorselSizeDeterminism runs the same kernel at pathological and
// default morsel sizes and asserts bit-identical output buffers: claim
// order must never leak into results.
func TestMorselSizeDeterminism(t *testing.T) {
	const n = 1 << 14
	k := busyKernel(n, 2)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i * 3)
	}

	var want []int64
	for _, morsel := range []int{1, 7, 1024, 0} {
		env := NewEnv(k)
		if err := env.Bind(k, "in", &Buffer{Kind: vector.Int, I: vals}); err != nil {
			t.Fatal(err)
		}
		if err := RunParContext(context.Background(), k, env, Par{Workers: 4, Morsel: morsel}, nil); err != nil {
			t.Fatalf("morsel=%d: %v", morsel, err)
		}
		got := env.Bufs[1].I
		if want == nil {
			want = append([]int64(nil), got...)
			continue
		}
		for i, v := range got {
			if v != want[i] {
				t.Fatalf("morsel=%d: out[%d] = %d, want %d", morsel, i, v, want[i])
			}
		}
	}
}

// TestConcurrentQueriesSharedPool hammers the shared pool with many
// concurrent runs (run under -race in CI): results must stay correct,
// every run must finish even when the pool is oversubscribed, and no job
// may be left published afterwards.
func TestConcurrentQueriesSharedPool(t *testing.T) {
	const (
		queries = 8
		iters   = 20
		n       = 1 << 13
	)
	var wg sync.WaitGroup
	errc := make(chan error, queries)
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			k := busyKernel(n, 2)
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = int64(i + q)
			}
			for it := 0; it < iters; it++ {
				env := NewEnv(k)
				if err := env.Bind(k, "in", &Buffer{Kind: vector.Int, I: vals}); err != nil {
					errc <- err
					return
				}
				if err := RunParContext(context.Background(), k, env, Par{Workers: 4, Morsel: 512}, nil); err != nil {
					errc <- err
					return
				}
				for i, v := range env.Bufs[1].I {
					if v != 2*int64(i+q) {
						errc <- fmt.Errorf("query %d iter %d: out[%d] = %d, want %d", q, it, i, v, 2*int64(i+q))
						return
					}
				}
			}
		}(q)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if st := SchedulerStats(); st.ActiveJobs != 0 {
		t.Errorf("SchedulerStats().ActiveJobs = %d after all runs returned, want 0", st.ActiveJobs)
	}
}

// TestQuiesceSchedulerStopsAndRestarts drains the shared pool, asserts
// zero worker goroutines remain, then verifies the pool restarts
// transparently at the next parallel fragment.
func TestQuiesceSchedulerStopsAndRestarts(t *testing.T) {
	const n = 1 << 15
	k := busyKernel(n, 1)
	run := func() {
		env := NewEnv(k)
		bindIn(t, k, env, n)
		if err := RunParContext(context.Background(), k, env, Par{Workers: 4, Morsel: 512}, nil); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if st := SchedulerStats(); st.Workers == 0 {
		t.Fatal("pool has no workers after a parallel fragment; expected lazy growth")
	}
	QuiesceScheduler()
	if st := SchedulerStats(); st.Workers != 0 {
		t.Fatalf("SchedulerStats().Workers = %d after quiesce, want 0", st.Workers)
	}
	// The pool must come back on demand.
	run()
	if st := SchedulerStats(); st.Workers == 0 {
		t.Fatal("pool did not restart after quiesce")
	}
	QuiesceScheduler()
}

// TestQuiesceDuringRun quiesces the scheduler while fragments are in
// flight: submitters keep claiming morsels themselves, so runs finish
// correctly without pool help.
func TestQuiesceDuringRun(t *testing.T) {
	const n = 1 << 15
	k := busyKernel(n, 1)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				QuiesceScheduler()
			}
		}
	}()
	for it := 0; it < 10; it++ {
		env := NewEnv(k)
		bindIn(t, k, env, n)
		if err := RunParContext(context.Background(), k, env, Par{Workers: 4, Morsel: 512}, nil); err != nil {
			t.Fatal(err)
		}
		for i, v := range env.Bufs[1].I {
			if v != 0 {
				t.Fatalf("out[%d] = %d, want 0 (zero input)", i, v)
			}
		}
	}
	close(stop)
	wg.Wait()
	QuiesceScheduler()
	if st := SchedulerStats(); st.Workers != 0 {
		t.Fatalf("SchedulerStats().Workers = %d after final quiesce, want 0", st.Workers)
	}
}

// TestMorselClaimFaultHook exercises the fault hook at the morsel-claim
// boundary: a panic raised there is isolated into a *PanicError naming
// the fragment, and sibling participants abort.
func TestMorselClaimFaultHook(t *testing.T) {
	const n = 1 << 15
	k := busyKernel(n, 1)
	env := NewEnv(k)
	bindIn(t, k, env, n)
	var claims atomic.Int64
	faultinject.With(t, faultinject.Hooks{
		MorselClaim: func(frag string, morsel int) {
			claims.Add(1)
			if morsel == 3 {
				panic("injected claim-boundary bug")
			}
		},
	})
	err := RunParContext(context.Background(), k, env, Par{Workers: 4, Morsel: 1024}, nil)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Fragment != "f0" {
		t.Errorf("panic attributed to %q, want f0", pe.Fragment)
	}
	if claims.Load() == 0 {
		t.Error("morsel-claim hook never fired")
	}
	if claims.Load() >= n/1024 {
		t.Errorf("all %d morsels were claimed despite the morsel-3 panic; abort did not propagate", claims.Load())
	}
}
