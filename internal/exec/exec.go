// Package exec executes kernel IR natively: each fragment's Extent work
// items are distributed over goroutine workers, with an implicit global
// barrier between fragments (the paper's kernel boundaries).
//
// The executor doubles as the measurement probe of the reproduction: when
// given a *Stats, it counts instructions by class (integer ALU, float ALU,
// sequential and random memory traffic, data-dependent branch outcomes),
// which the device cost models (package device) convert into simulated
// times for hardware this host does not have.
package exec

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"voodoo/internal/faultinject"
	"voodoo/internal/kernel"
	"voodoo/internal/metrics"
	"voodoo/internal/telemetry"
	"voodoo/internal/trace"
	"voodoo/internal/vector"
)

// Governor and panic-isolation visibility: operators watching /metrics
// see *degradation* (queries rejected per limit kind, kernels panicking),
// not just errors in logs. Counters are touched only on failure paths, so
// the hot path pays nothing. All three limit kinds are pre-created so the
// series exist at zero.
var (
	exhaustedVec = metrics.NewCounterVec("voodoo_resource_exhausted_total",
		"Executions aborted by the per-query resource governor, by exhausted limit.", "kind")
	exhaustedBytes    = exhaustedVec.With("bytes")
	exhaustedExtent   = exhaustedVec.With("extent")
	exhaustedDeadline = exhaustedVec.With("deadline")

	panicsRecovered = metrics.NewCounter("voodoo_panics_recovered_total",
		"Panics recovered into *PanicError at worker, plan-step and interpreter boundaries.")
)

// NoteDeadline counts err against the governor's deadline counter when
// the governor had a wall-clock deadline installed and the run timed
// out. Each entry point that installs Limits.Deadline calls it exactly
// once per failed run (compile plans for the compiling backends, the
// relational engine for the interpreter, RunContext for direct executor
// users), so a query is never double-counted.
func NoteDeadline(lim Limits, err error) {
	if !lim.Deadline.IsZero() && errors.Is(err, context.DeadlineExceeded) {
		exhaustedDeadline.Inc()
	}
}

// ErrResourceExhausted is wrapped by every error the resource governor
// returns; match it with errors.Is.
var ErrResourceExhausted = errors.New("resource limit exhausted")

// errAborted is what a worker returns when it stops because a sibling
// worker already failed; it never surfaces to callers.
var errAborted = errors.New("exec: aborted after sibling worker failure")

// Limits is the per-query resource governor. The zero value imposes no
// limits.
type Limits struct {
	// MaxBytes bounds the query's total buffer allocation (kernel buffers
	// plus bulk-step outputs); exceeding it fails the allocating step with
	// ErrResourceExhausted before the memory is committed.
	MaxBytes int64
	// MaxExtent bounds the extent (work-item count) of any single
	// fragment.
	MaxExtent int
	// Deadline, when non-zero, bounds the query's wall-clock time; the
	// context-taking entry points enforce it as a context deadline.
	Deadline time.Time
}

// PanicError is a panic recovered at a worker-goroutine or plan-step
// boundary: one bad kernel or bulk step fails its query instead of
// killing the process.
type PanicError struct {
	Fragment string // fragment or step name
	Value    any    // the recovered panic value
	Stack    []byte // the panicking goroutine's stack
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: panic in %s: %v", e.Fragment, e.Value)
}

// NewPanicError builds the *PanicError for a freshly recovered panic and
// counts it in voodoo_panics_recovered_total. Every recovery boundary
// (executor workers, plan steps, interpreter statements) constructs
// through here so the counter sees each recovery exactly once; re-thrown
// *PanicError values must be passed through, not rewrapped.
func NewPanicError(frag string, value any, stack []byte) *PanicError {
	panicsRecovered.Inc()
	return &PanicError{Fragment: frag, Value: value, Stack: stack}
}

// protect runs fn, converting a panic into a *PanicError attributed to
// frag.
func protect(frag string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*PanicError); ok {
				err = pe
				return
			}
			err = NewPanicError(frag, r, debug.Stack())
		}
	}()
	return fn()
}

// Buffer is the runtime storage behind one kernel buffer.
type Buffer struct {
	Kind  vector.Kind
	I     []int64
	F     []float64
	Valid []bool // nil = every slot valid
}

// Len returns the buffer's slot count.
func (b *Buffer) Len() int {
	if b.Kind == vector.Int {
		return len(b.I)
	}
	return len(b.F)
}

// FromColumn converts a vector column into an executable buffer,
// materializing generated columns.
func FromColumn(c *vector.Column) *Buffer {
	return FromColumnArena(c, nil)
}

// FromColumnArena is FromColumn drawing any materialization it needs —
// the expansion of a generated column, the validity mask — from ar (nil =
// the Go heap). Materialized slices are adopted either way; they belong
// to the column's owner, not the arena.
func FromColumnArena(c *vector.Column, ar *vector.Arena) *Buffer {
	b := &Buffer{Kind: c.Kind()}
	if c.Kind() == vector.Int {
		if m, gen := c.Generated(); gen {
			out := ar.Ints(c.Len())
			for i := range out {
				out[i] = m.Value(i)
			}
			b.I = out
		} else {
			b.I = c.Ints()
		}
	} else {
		b.F = c.Floats()
	}
	if !c.AllValid() {
		b.Valid = ar.Bools(c.Len())
		for i := range b.Valid {
			b.Valid[i] = c.Valid(i)
		}
	}
	return b
}

// Column converts the buffer back into a vector column. The value slice
// and the validity mask are adopted, not copied, so the column aliases
// the buffer (and, for pooled runs, becomes invalid when the run's arena
// is released).
func (b *Buffer) Column() *vector.Column {
	if b.Kind == vector.Int {
		return vector.NewIntWithValid(b.I, b.Valid)
	}
	return vector.NewFloatWithValid(b.F, b.Valid)
}

// Bytes returns the buffer's storage footprint (8-byte scalars plus a
// byte per validity slot), the unit the resource governor accounts in.
func (b *Buffer) Bytes() int64 {
	n := int64(b.Len()) * 8
	if b.Valid != nil {
		n += int64(len(b.Valid))
	}
	return n
}

// Env binds runtime buffers to a kernel's buffer declarations.
type Env struct {
	Bufs []*Buffer

	lim       Limits
	allocated int64
}

// NewEnv allocates an environment for k with all non-input buffers
// allocated (input buffers must be bound with Bind before Run). It
// imposes no resource limits; use NewEnvLimited for a governed query.
func NewEnv(k *kernel.Kernel) *Env {
	e, err := NewEnvLimited(k, Limits{})
	if err != nil {
		// Only reachable when a fault-injection alloc hook is active;
		// hook-using tests must allocate through NewEnvLimited.
		panic(err)
	}
	return e
}

// NewEnvLimited is NewEnv under a resource governor: every buffer
// allocation is charged against lim.MaxBytes first, and an over-budget
// kernel fails with ErrResourceExhausted before its memory is committed.
func NewEnvLimited(k *kernel.Kernel, lim Limits) (*Env, error) {
	return NewEnvPooled(k, lim, nil)
}

// NewEnvPooled is NewEnvLimited drawing the kernel buffers from a
// per-query arena (nil = the Go heap). Pooled acquisitions are charged
// against the governor exactly like heap allocations — recycled memory is
// still this query's working set.
func NewEnvPooled(k *kernel.Kernel, lim Limits, ar *vector.Arena) (*Env, error) {
	e := &Env{Bufs: make([]*Buffer, len(k.Bufs)), lim: lim}
	for i, d := range k.Bufs {
		if d.Input {
			continue
		}
		bytes := int64(d.Size) * 8
		if d.Valid {
			bytes += int64(d.Size)
		}
		if err := e.Charge(bytes); err != nil {
			return nil, fmt.Errorf("exec: buffer %q: %w", d.Name, err)
		}
		b := &Buffer{Kind: d.Kind}
		if d.Kind == vector.Int {
			b.I = ar.Ints(d.Size)
		} else {
			b.F = ar.Floats(d.Size)
		}
		if d.Valid {
			b.Valid = ar.Bools(d.Size)
		}
		e.Bufs[i] = b
	}
	return e, nil
}

// Limits returns the governor limits the environment was created with.
func (e *Env) Limits() Limits { return e.lim }

// Allocated returns the total buffer bytes charged against this
// environment so far (static kernel buffers plus runtime bulk outputs).
func (e *Env) Allocated() int64 { return e.allocated }

// Charge accounts bytes of query-local allocation against the
// environment's budget, failing with ErrResourceExhausted once the
// MaxBytes limit is crossed. Steps that allocate buffers at runtime (bulk
// steps) must charge before committing the allocation. Not safe for
// concurrent use; all allocation happens on the plan goroutine.
func (e *Env) Charge(bytes int64) error {
	if err := faultinject.Alloc(bytes); err != nil {
		return err
	}
	e.allocated += bytes
	if e.lim.MaxBytes > 0 && e.allocated > e.lim.MaxBytes {
		exhaustedBytes.Inc()
		return fmt.Errorf("exec: query needs %d buffer bytes, budget is %d: %w",
			e.allocated, e.lim.MaxBytes, ErrResourceExhausted)
	}
	return nil
}

// Bind attaches buf to the declaration named name and returns an error if
// no such input exists or the size or kind disagrees.
func (e *Env) Bind(k *kernel.Kernel, name string, buf *Buffer) error {
	for i, d := range k.Bufs {
		if d.Name != name {
			continue
		}
		if buf.Kind != d.Kind {
			return fmt.Errorf("exec: buffer %q is %v, declaration wants %v", name, buf.Kind, d.Kind)
		}
		if buf.Len() != d.Size {
			return fmt.Errorf("exec: buffer %q has %d slots, declaration wants %d", name, buf.Len(), d.Size)
		}
		e.Bufs[i] = buf
		return nil
	}
	return fmt.Errorf("exec: no buffer declaration %q", name)
}

// Stats accumulates per-class event counts across all fragments of a run.
// All byte figures assume the algebra's 8-byte scalars.
type Stats struct {
	Frags []FragStats
}

// FragStats counts the events of one fragment execution.
type FragStats struct {
	Name       string
	Extent     int
	Intent     int
	Sequential bool

	// Wall is the fragment's measured wall-clock time; Workers is the
	// number of goroutines that actually executed morsels of it (the
	// submitter plus any pool workers that claimed work). Both are set by
	// RunFragmentPar (not merged from workers).
	Wall    time.Duration
	Workers int
	// Morsels is the number of scheduling morsels the fragment was split
	// into (1 for sequential and single-morsel runs); Imbalance is the
	// busiest participant's morsel count over an even share (1.0 =
	// perfectly balanced, higher = skew absorbed unevenly).
	Morsels   int
	Imbalance float64

	// Specialized records the execution path this run took ("fused",
	// "batch" or "interp"); set by RunFragmentPar, not merged from
	// workers.
	Specialized string

	Items int64 // loop iterations executed
	// StoreBytes counts bytes written to global buffers — the
	// materialization at this fragment's seam (8 per scalar store plus a
	// validity byte when the buffer carries a mask).
	StoreBytes   int64
	IntOps       int64
	FloatOps     int64
	SeqBytes     int64 // coalesced loads+stores
	RandAccesses int64 // gather/scatter accesses landing far from the last
	// NearAccesses counts random accesses within a cache line or two of
	// the previous access to the same buffer: repeated hot slots
	// (predicated lookups to position zero) and row-wise colocated
	// fields both show up here, priced at L1 latency.
	NearAccesses int64
	// RandByBuf histograms far random accesses per touched buffer (keyed
	// by buffer identity); cost models price them against the fragment's
	// total random working set.
	RandByBuf  map[int]RandCount
	Guards     int64 // data-dependent branch executions
	GuardsPass int64 // branches that fell through (predicate true)
	LocalOps   int64 // per-work-item scratch array accesses
	LocalBytes int64 // scratch array size per work item
	// StaticIntOps/StaticFloatOps are the per-iteration ALU counts of the
	// full loop body, for SIMT divergence pricing.
	StaticIntOps   int64
	StaticFloatOps int64
}

// RandCount is the per-buffer random access tally.
type RandCount struct {
	Bytes int64 // buffer size
	Count int64
}

func (fs *FragStats) merge(o *FragStats) {
	fs.Items += o.Items
	fs.StoreBytes += o.StoreBytes
	fs.IntOps += o.IntOps
	fs.FloatOps += o.FloatOps
	fs.SeqBytes += o.SeqBytes
	fs.RandAccesses += o.RandAccesses
	fs.NearAccesses += o.NearAccesses
	fs.Guards += o.Guards
	fs.GuardsPass += o.GuardsPass
	fs.LocalOps += o.LocalOps
	fs.StaticIntOps = max(fs.StaticIntOps, o.StaticIntOps)
	fs.StaticFloatOps = max(fs.StaticFloatOps, o.StaticFloatOps)
	for k, v := range o.RandByBuf {
		if fs.RandByBuf == nil {
			fs.RandByBuf = map[int]RandCount{}
		}
		e := fs.RandByBuf[k]
		e.Bytes = v.Bytes
		e.Count += v.Count
		fs.RandByBuf[k] = e
	}
}

// gomaxprocs is the default worker count for the zero Par.Workers.
func gomaxprocs() int { return runtime.GOMAXPROCS(0) }

// Run executes every fragment of k against env using up to workers
// goroutines (0 = GOMAXPROCS). When st is non-nil, event counts are
// accumulated into it.
func Run(k *kernel.Kernel, env *Env, workers int, st *Stats) error {
	return RunContext(context.Background(), k, env, workers, st)
}

// RunContext is Run with cooperative cancellation: the context is checked
// at every fragment boundary and every checkInterval work items inside
// fragment loops, so a cancelled or deadline-expired query aborts
// promptly instead of finishing all morsels. A non-zero env Deadline
// limit is enforced as a context deadline.
func RunContext(ctx context.Context, k *kernel.Kernel, env *Env, workers int, st *Stats) error {
	return RunParContext(ctx, k, env, Par{Workers: workers}, st)
}

// RunPar is Run with explicit parallelism knobs (worker cap and morsel
// size).
func RunPar(k *kernel.Kernel, env *Env, par Par, st *Stats) error {
	return RunParContext(context.Background(), k, env, par, st)
}

// RunParContext is RunContext with explicit parallelism knobs.
func RunParContext(ctx context.Context, k *kernel.Kernel, env *Env, par Par, st *Stats) error {
	if d := env.lim.Deadline; !d.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, d)
		defer cancel()
	}
	for _, f := range k.Frags {
		var fs *FragStats
		if st != nil {
			si, sf := f.StaticBodyOps()
			st.Frags = append(st.Frags, FragStats{
				Name: f.Name, Extent: f.Extent, Intent: f.Intent,
				Sequential: f.Sequential(), LocalBytes: int64(f.Locals) * 8,
				StaticIntOps: si, StaticFloatOps: sf,
			})
			fs = &st.Frags[len(st.Frags)-1]
		}
		if err := RunFragmentPar(ctx, f, env, par, fs); err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				NoteDeadline(env.lim, err)
				return err
			}
			// The guard keeps the disabled path allocation-free; fragment
			// failures are rare enough to log unconditionally when enabled.
			if lg := telemetry.LoggerFrom(ctx); lg.Enabled(ctx, slog.LevelWarn) {
				lg.LogAttrs(ctx, slog.LevelWarn, "exec: fragment failed",
					slog.String("fragment", f.Name),
					slog.Int("extent", f.Extent),
					slog.String("error", err.Error()))
			}
			return fmt.Errorf("exec: fragment %s: %w", f.Name, err)
		}
	}
	return nil
}

// RunFragment executes a single fragment against env, accumulating event
// counts into fs when non-nil. Used by Run and by the compiled plans, which
// interleave fragments with bulk steps.
func RunFragment(f *kernel.Fragment, env *Env, workers int, fs *FragStats) error {
	return RunFragmentContext(context.Background(), f, env, workers, fs)
}

// RunFragmentContext is RunFragment with cancellation, panic isolation
// and extent limiting. A panic in a worker goroutine is recovered into a
// *PanicError instead of killing the process, and once one worker fails —
// by error, panic or cancellation — the remaining workers stop at their
// next checkpoint and no further morsels are claimed.
func RunFragmentContext(ctx context.Context, f *kernel.Fragment, env *Env, workers int, fs *FragStats) error {
	return RunFragmentPar(ctx, f, env, Par{Workers: workers}, fs)
}

// RunFragmentPar is RunFragmentContext with explicit parallelism knobs.
// Non-sequential fragments wider than one morsel run through the shared
// morsel scheduler (see sched.go); the submitting goroutine always
// participates, so progress never depends on pool availability.
func RunFragmentPar(ctx context.Context, f *kernel.Fragment, env *Env, par Par, fs *FragStats) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	trace.CountFragment()
	if fs != nil {
		start := time.Now()
		defer func() { fs.Wall = time.Since(start) }()
	}
	if env.lim.MaxExtent > 0 && f.Extent > env.lim.MaxExtent {
		exhaustedExtent.Inc()
		if lg := telemetry.LoggerFrom(ctx); lg.Enabled(ctx, slog.LevelWarn) {
			lg.LogAttrs(ctx, slog.LevelWarn, "exec: extent limit exceeded",
				slog.String("fragment", f.Name),
				slog.Int("extent", f.Extent),
				slog.Int("max_extent", env.lim.MaxExtent))
		}
		return fmt.Errorf("exec: fragment %s extent %d exceeds MaxExtent %d: %w",
			f.Name, f.Extent, env.lim.MaxExtent, ErrResourceExhausted)
	}
	if faultinject.Enabled() {
		if err := protect(f.Name, func() error { faultinject.FragmentStart(f.Name); return nil }); err != nil {
			return err
		}
	}
	par = par.norm()
	nregs := maxReg(f) + 1
	spec, path := resolveSpec(f, par.Spec, fs != nil, faultinject.Enabled())
	if fs != nil {
		fs.Specialized = path
	}
	if f.Sequential() || par.Workers == 1 {
		w := newWorker(ctx, f, env, nregs, fs != nil, nil, spec)
		if err := protect(f.Name, func() error { return w.run(0, max(f.Extent, 1)) }); err != nil {
			w.release()
			return err
		}
		if fs != nil {
			fs.Workers, fs.Morsels, fs.Imbalance = 1, 1, 1
			fs.merge(&w.stats)
		}
		w.release()
		return nil
	}
	if f.Extent == 0 {
		if fs != nil {
			fs.Workers = 0
		}
		return nil
	}
	if f.Extent <= par.Morsel {
		// A single morsel: the pool could not help, so run it inline and
		// skip the publish/withdraw round trip.
		w := newWorker(ctx, f, env, nregs, fs != nil, nil, spec)
		err := protect(f.Name, func() error { return w.run(0, f.Extent) })
		if err == nil && fs != nil {
			fs.Workers, fs.Morsels, fs.Imbalance = 1, 1, 1
			fs.merge(&w.stats)
		}
		w.release()
		return err
	}
	return runMorselParallel(ctx, f, env, par, nregs, spec, fs)
}

func maxReg(f *kernel.Fragment) kernel.Reg {
	m := kernel.FirstFree
	scan := func(instrs []kernel.Instr) {
		for _, in := range instrs {
			for _, r := range [4]kernel.Reg{in.Dst, in.A, in.B, in.C} {
				if r > m {
					m = r
				}
			}
		}
	}
	scan(f.Pre)
	for _, l := range f.Loops {
		scan(l.Body)
	}
	scan(f.Post)
	scan(f.PostLoopBody)
	return m
}

// checkInterval is how many work items a worker executes between
// cooperative checkpoints (context cancellation, sibling-failure abort,
// fault-injection hooks). Items are nanosecond-scale, so 1024 items keeps
// cancellation latency in the microseconds while amortizing the check.
const checkInterval = 1024

// worker executes a contiguous range of work items of one fragment.
type worker struct {
	f       *kernel.Fragment
	env     *Env
	ri      []int64
	rf      []float64
	locI    []int64
	locF    []float64
	scratch *scratch
	count   bool
	stats   FragStats
	// batch/fused select the specialized execution path for this run (both
	// nil = interpret); bst is the batch register-column state.
	batch *batchProg
	fused fusedRunner
	bst   bstate
	// checks gates the checkpoint machinery: false means the fast path
	// pays a single predictable branch per item and nothing else.
	checks bool
	ctx    context.Context // nil when the context can never be cancelled
	stop   *atomic.Bool    // shared abort flag of the parallel run, or nil
	budget int             // items until the next checkpoint
	// lines remembers the last few cache lines touched per buffer (a tiny
	// LRU), so hot-line accesses — repeated slots, sequential gathers,
	// colocated row fields — are told from far random ones.
	lines map[int]*lineRing
}

// lineRing is an 8-entry ring of recently touched cache lines; it also
// remembers the highest line so ascending streams are recognized.
type lineRing struct {
	lines    [8]int64
	pos      int
	n        int
	lastLine int64
}

// touch classifies an access: 0 = hot (line recently touched), 1 = stream
// (the next line of an ascending walk: a prefetched miss, bandwidth not
// latency), 2 = far random.
func (r *lineRing) touch(line int64) int {
	kind := 2
	if r.n > 0 && line == r.lastLine+1 {
		kind = 1
	}
	for i := 0; i < r.n; i++ {
		if r.lines[i] == line {
			kind = 0
			break
		}
	}
	if kind != 0 {
		r.lines[r.pos] = line
		r.pos = (r.pos + 1) % len(r.lines)
		if r.n < len(r.lines) {
			r.n++
		}
	}
	r.lastLine = line
	return kind
}

// scratchPool recycles the per-worker register and local-scratch slices:
// every fragment spawns one worker per chunk goroutine, so at steady
// state these small slices would otherwise dominate the allocation count.
// Registers are zeroed on reuse (make() semantics); locals are fully
// initialized by resetLocals before every work item.
var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

type scratch struct {
	ri   []int64
	rf   []float64
	locI []int64
	locF []float64
	// Batch-primitive state: register-column slabs, the selection mask and
	// the per-register column tables. Slabs are not zeroed on reuse — the
	// batch compiler proves def-before-use (see specialize.go).
	bcols  []int64
	bfcols []float64
	bsel   []int32
	bri    [][]int64
	brf    [][]float64
}

// grow returns a slice of exactly n elements backed by *buf, reusing its
// capacity without clearing (unlike intSlice/floatSlice, whose make()
// semantics the register file needs but batch columns do not).
func grow[T int64 | float64](buf *[]T, n int) []T {
	v := *buf
	if cap(v) < n {
		v = make([]T, n)
	} else {
		v = v[:n]
	}
	*buf = v
	return v
}

func (s *scratch) intSlice(which *[]int64, n int) []int64 {
	v := *which
	if cap(v) < n {
		v = make([]int64, n)
	} else {
		v = v[:n]
		clear(v)
	}
	*which = v
	return v
}

func (s *scratch) floatSlice(which *[]float64, n int) []float64 {
	v := *which
	if cap(v) < n {
		v = make([]float64, n)
	} else {
		v = v[:n]
		clear(v)
	}
	*which = v
	return v
}

// release hands the worker's scratch back for reuse; the worker must not
// run again afterwards.
func (w *worker) release() {
	if w.scratch == nil {
		return
	}
	scratchPool.Put(w.scratch)
	w.scratch = nil
	w.ri, w.rf, w.locI, w.locF = nil, nil, nil, nil
}

func newWorker(ctx context.Context, f *kernel.Fragment, env *Env, nregs kernel.Reg, count bool, stop *atomic.Bool, spec specAssign) *worker {
	sc := scratchPool.Get().(*scratch)
	w := &worker{f: f, env: env, scratch: sc,
		ri: sc.intSlice(&sc.ri, int(nregs)), rf: sc.floatSlice(&sc.rf, int(nregs)), count: count,
		stop: stop, batch: spec.batch, fused: spec.fused}
	if ctx.Done() != nil {
		w.ctx = ctx
	}
	w.checks = w.ctx != nil || stop != nil || faultinject.Enabled()
	// The first item checkpoints immediately, so an already-cancelled
	// context aborts before any work happens.
	w.budget = 1
	if f.Locals > 0 {
		if f.LocalsFloat {
			w.locF = sc.floatSlice(&sc.locF, f.Locals)
		} else {
			w.locI = sc.intSlice(&sc.locI, f.Locals)
		}
	}
	if w.batch != nil {
		w.attachBatch(w.batch)
	}
	return w
}

// tick counts down to the next checkpoint; called once per work item when
// checks are enabled.
func (w *worker) tick(gid int) error {
	w.budget--
	if w.budget > 0 {
		return nil
	}
	w.budget = checkInterval
	if w.stop != nil && w.stop.Load() {
		return errAborted
	}
	if w.ctx != nil {
		if err := w.ctx.Err(); err != nil {
			return err
		}
	}
	faultinject.Item(w.f.Name, gid)
	return nil
}

func (w *worker) resetLocals() {
	for i := range w.locI {
		w.locI[i] = int64(w.f.LocalsInit)
	}
	for i := range w.locF {
		w.locF[i] = w.f.LocalsInit
	}
}

// run executes work items [lo, hi) through the path resolved for this
// fragment run: a fused closure, batch primitives, or the per-element
// interpreter.
func (w *worker) run(lo, hi int) error {
	if w.fused != nil {
		return w.fused(w, lo, hi)
	}
	if w.batch != nil {
		return w.runBatch(lo, hi)
	}
	return w.runInterp(lo, hi)
}

// runInterp is the per-element instruction interpreter — the fallback for
// exotic fragment shapes and the oracle the specialized paths are
// differentially tested against.
func (w *worker) runInterp(lo, hi int) error {
	f := w.f
	for gid := lo; gid < hi; gid++ {
		if w.checks {
			if err := w.tick(gid); err != nil {
				return err
			}
		}
		w.ri[kernel.RegGID] = int64(gid)
		if f.Locals > 0 {
			w.resetLocals()
		}
		if err := w.exec(f.Pre); err != nil {
			return err
		}
		for _, loop := range f.Loops {
			bound := loop.Bound
			if bound <= 0 {
				bound = f.Intent
			}
			if loop.BoundReg > 0 {
				if dyn := int(w.ri[loop.BoundReg]); dyn < bound {
					bound = dyn
				}
			}
			for iv := 0; iv < bound; iv++ {
				w.ri[kernel.RegIV] = int64(iv)
				var idx int
				if f.Strided {
					idx = iv*f.Extent + gid
				} else {
					idx = gid*f.Intent + iv
				}
				if f.N > 0 && idx >= f.N {
					break
				}
				w.ri[kernel.RegIdx] = int64(idx)
				if w.checks {
					if err := w.tick(gid); err != nil {
						return err
					}
				}
				if err := w.exec(loop.Body); err != nil {
					return err
				}
				if w.count {
					w.stats.Items++
				}
			}
		}
		if err := w.exec(f.Post); err != nil {
			return err
		}
		if len(f.PostLoopBody) > 0 {
			for j := 0; j < f.Locals; j++ {
				w.ri[kernel.RegJ] = int64(j)
				if err := w.exec(f.PostLoopBody); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// exec interprets a straight-line instruction sequence. IGuard with a zero
// predicate aborts the sequence (the rest of the loop body is skipped).
func (w *worker) exec(instrs []kernel.Instr) error {
	ri, rf := w.ri, w.rf
	for _, in := range instrs {
		switch in.Op {
		case kernel.IConstI:
			ri[in.Dst] = in.Imm
		case kernel.IConstF:
			rf[in.Dst] = in.FImm
		case kernel.IMov:
			if in.Float {
				rf[in.Dst] = rf[in.A]
			} else {
				ri[in.Dst] = ri[in.A]
			}
		case kernel.IBin:
			if in.Float {
				v, err := fbin(in.BOp, rf[in.A], rf[in.B])
				if err != nil {
					return err
				}
				rf[in.Dst] = v
				if w.count {
					w.stats.FloatOps++
				}
			} else {
				v, err := ibin(in.BOp, ri[in.A], ri[in.B])
				if err != nil {
					return err
				}
				ri[in.Dst] = v
				if w.count {
					w.stats.IntOps++
				}
			}
		case kernel.ISel:
			if in.Float {
				if ri[in.A] != 0 {
					rf[in.Dst] = rf[in.B]
				} else {
					rf[in.Dst] = rf[in.C]
				}
			} else {
				if ri[in.A] != 0 {
					ri[in.Dst] = ri[in.B]
				} else {
					ri[in.Dst] = ri[in.C]
				}
			}
			if w.count {
				w.stats.IntOps++
			}
		case kernel.ILoad:
			buf := w.env.Bufs[in.Buf]
			i := ri[in.A]
			if i < 0 || i >= int64(buf.Len()) {
				return fmt.Errorf("load out of bounds: buf %d idx %d len %d", in.Buf, i, buf.Len())
			}
			if in.Float {
				rf[in.Dst] = buf.F[i]
			} else {
				ri[in.Dst] = buf.I[i]
			}
			w.countAccess(in, buf)
		case kernel.ILoadValid:
			buf := w.env.Bufs[in.Buf]
			i := ri[in.A]
			if i < 0 || i >= int64(buf.Len()) {
				ri[in.Dst] = 0
			} else if buf.Valid == nil || buf.Valid[i] {
				ri[in.Dst] = 1
			} else {
				ri[in.Dst] = 0
			}
			w.countAccess(in, buf)
		case kernel.IStore:
			buf := w.env.Bufs[in.Buf]
			i := ri[in.A]
			if i < 0 || i >= int64(buf.Len()) {
				return fmt.Errorf("store out of bounds: buf %d idx %d len %d", in.Buf, i, buf.Len())
			}
			val := ri[in.B]
			fval := rf[in.B]
			valid := true
			if buf.Valid != nil && in.C > 0 {
				// C > 0 selects conditional validity: the slot holds a
				// value only if the register is non-zero (predicated
				// stores mark the cursor slot tentatively). Empty slots
				// hold the reserved zero representation, exactly as the
				// data model's ε reads back.
				valid = ri[in.C] != 0
				if !valid {
					val, fval = 0, 0
				}
			}
			if in.Float {
				buf.F[i] = fval
			} else {
				buf.I[i] = val
			}
			if buf.Valid != nil {
				buf.Valid[i] = valid
			}
			w.countAccess(in, buf)
		case kernel.IGuard:
			if w.count {
				w.stats.Guards++
				if ri[in.A] != 0 {
					w.stats.GuardsPass++
				}
			}
			if ri[in.A] == 0 {
				return nil
			}
		case kernel.ICastIF:
			rf[in.Dst] = float64(ri[in.A])
		case kernel.ICastFI:
			ri[in.Dst] = int64(rf[in.A])
		case kernel.ILoadLoc:
			i := ri[in.A]
			if i < 0 || i >= int64(w.f.Locals) {
				return fmt.Errorf("local load out of bounds: idx %d size %d", i, w.f.Locals)
			}
			if in.Float {
				rf[in.Dst] = w.locF[i]
			} else {
				ri[in.Dst] = w.locI[i]
			}
			if w.count {
				w.stats.LocalOps++
			}
		case kernel.IStoreLoc:
			i := ri[in.A]
			if i < 0 || i >= int64(w.f.Locals) {
				return fmt.Errorf("local store out of bounds: idx %d size %d", i, w.f.Locals)
			}
			if in.Float {
				w.locF[i] = rf[in.B]
			} else {
				w.locI[i] = ri[in.B]
			}
			if w.count {
				w.stats.LocalOps++
			}
		default:
			return fmt.Errorf("unknown instruction %v", in.Op)
		}
	}
	return nil
}

func (w *worker) countAccess(in kernel.Instr, buf *Buffer) {
	if !w.count {
		return
	}
	if in.Op == kernel.IStore {
		// Bytes materialized at this fragment's seam.
		w.stats.StoreBytes += 8
		if buf.Valid != nil {
			w.stats.StoreBytes++
		}
	}
	// Validity masks are byte-sized; a validity probe against a buffer
	// with no mask is just a bounds check — pure arithmetic the paper's
	// compiler emits inline (or removes with static knowledge).
	width := int64(8)
	if in.Op == kernel.ILoadValid {
		if buf.Valid == nil {
			w.stats.IntOps += 2
			return
		}
		width = 1
	}
	if in.Seq {
		w.stats.SeqBytes += width
		return
	}
	idx := w.ri[in.A]
	if w.lines == nil {
		w.lines = map[int]*lineRing{}
	}
	// Mask bytes live apart from the data; track their lines separately.
	ringKey := in.Buf
	if in.Op == kernel.ILoadValid {
		ringKey |= 1 << 24
	}
	r := w.lines[ringKey]
	if r == nil {
		r = &lineRing{}
		w.lines[ringKey] = r
	}
	switch r.touch(idx >> 3) {
	case 0:
		// A recently touched line: hot slots (predicated position-zero
		// lookups) and row-wise colocated fields stay cache resident.
		w.stats.NearAccesses++
		return
	case 1:
		// An ascending stream: the hardware prefetcher turns the miss
		// into bandwidth (a cache line per stride for data, a byte per
		// element for masks).
		w.stats.SeqBytes += width * 8
		w.stats.NearAccesses++
		return
	}
	w.stats.RandAccesses++
	if w.stats.RandByBuf == nil {
		w.stats.RandByBuf = map[int]RandCount{}
	}
	e := w.stats.RandByBuf[ringKey]
	e.Bytes = int64(buf.Len()) * width
	e.Count++
	w.stats.RandByBuf[ringKey] = e
}

func ibin(op kernel.BinOp, a, b int64) (int64, error) {
	switch op {
	case kernel.BAdd:
		return a + b, nil
	case kernel.BSub:
		return a - b, nil
	case kernel.BMul:
		return a * b, nil
	case kernel.BDiv:
		if b == 0 {
			return 0, fmt.Errorf("integer division by zero")
		}
		return a / b, nil
	case kernel.BMod:
		if b == 0 {
			return 0, fmt.Errorf("integer modulo by zero")
		}
		m := a % b
		if m < 0 {
			m += b
		}
		return m, nil
	case kernel.BShl:
		if b >= 0 {
			return a << uint(b), nil
		}
		return a >> uint(-b), nil
	case kernel.BAnd:
		return b2i(a != 0 && b != 0), nil
	case kernel.BOr:
		return b2i(a != 0 || b != 0), nil
	case kernel.BGt:
		return b2i(a > b), nil
	case kernel.BGe:
		return b2i(a >= b), nil
	case kernel.BEq:
		return b2i(a == b), nil
	case kernel.BMin:
		return min(a, b), nil
	case kernel.BMax:
		return max(a, b), nil
	}
	return 0, fmt.Errorf("unknown int binop %v", op)
}

func fbin(op kernel.BinOp, a, b float64) (float64, error) {
	switch op {
	case kernel.BAdd:
		return a + b, nil
	case kernel.BSub:
		return a - b, nil
	case kernel.BMul:
		return a * b, nil
	case kernel.BDiv:
		if b == 0 {
			return 0, fmt.Errorf("float division by zero")
		}
		return a / b, nil
	case kernel.BGt:
		return float64(b2i(a > b)), nil
	case kernel.BGe:
		return float64(b2i(a >= b)), nil
	case kernel.BEq:
		return float64(b2i(a == b)), nil
	case kernel.BMin:
		return min(a, b), nil
	case kernel.BMax:
		return max(a, b), nil
	}
	return 0, fmt.Errorf("unsupported float binop %v", op)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
