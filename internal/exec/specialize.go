// Fragment specialization: compiled batch primitives and fused fast paths.
//
// The interpreter in exec.go dispatches through a switch statement once per
// instruction per element — O(items × instrs) dispatches. The paper's whole
// point is that fragments are fused, function-call-free kernels, so this
// file compiles each fragment once (cached on the *kernel.Fragment,
// concurrency-safe) into one of two faster forms:
//
//   - batch primitives: one tight Go loop per instruction over a
//     morsel-sized batch of register columns. Dispatch cost drops to
//     O(batches × instrs); the loops are bounds-check-friendly and
//     auto-vectorizable. IGuard is handled by compacting a selection mask,
//     so predication never branches on data inside a primitive.
//   - fused fast paths: single hand-fused closures for the hottest shapes
//     mined from TPC-H traces — load→compare→guard→store selection,
//     load→arith→store maps, and the FoldSum/FoldMin/FoldMax accumulate
//     loops.
//
// The per-element interpreter remains as the fallback for exotic sequences
// and as the oracle for differential testing (difftest combo #7 sweeps all
// modes against it).
//
// Contracts preserved exactly: cancellation checkpoints each ~1024 items
// (tickN retires a batch's budget at once), governor Limits, panics →
// *PanicError with cross-worker abort, arena ownership, and bit-identical
// results at any morsel size and worker count (def-before-use analysis
// rejects fragments whose registers carry values across work items, and
// a single-store-per-buffer rule rejects load/store interleaving hazards).
//
// Measurement fidelity: the interpreter's Near/Rand access classification
// is execution-order-sensitive (an 8-line LRU per buffer), and batch
// execution visits memory instruction-major instead of element-major. A
// specialized path is therefore only used for a *counted* run when every
// memory access it compiles is sequential, where the counts are
// order-independent; otherwise counted runs fall back to the interpreter
// so simulated device times never drift. Fault-injection hooks replay
// per-item state the compiled paths do not model, so any enabled hook also
// forces the interpreter.
package exec

import (
	"fmt"
	"sync/atomic"

	"voodoo/internal/kernel"
	"voodoo/internal/metrics"
	"voodoo/internal/verify"
)

// SpecMode selects how much fragment specialization the executor applies.
type SpecMode uint8

const (
	// SpecializeAuto (the zero value) uses fused fast paths where a shape
	// matches, batch primitives where eligible, and the interpreter
	// otherwise.
	SpecializeAuto SpecMode = iota
	// SpecializeOff always interprets — the -no-specialize escape hatch
	// and the differential-test oracle.
	SpecializeOff
	// SpecializeBatchOnly uses batch primitives but never fused closures;
	// difftest uses it to exercise the batch compiler on hot shapes that
	// would otherwise take the fused path.
	SpecializeBatchOnly
)

// specDefaultOff, when set, resolves SpecializeAuto to SpecializeOff
// process-wide. It backs the -no-specialize flag of binaries that call
// the executor through APIs without a per-run mode (voodoo-bench).
var specDefaultOff atomic.Bool

// SetSpecializeDefault turns fragment specialization on (the default) or
// off process-wide for runs that leave Par.Spec at SpecializeAuto.
// Explicit per-run modes are unaffected.
func SetSpecializeDefault(on bool) { specDefaultOff.Store(!on) }

// Specialization observability: every fragment execution counts the path
// it actually took. All three series are pre-created so they exist at
// zero.
var (
	specializedVec = metrics.NewCounterVec("voodoo_fragments_specialized_total",
		"Fragment executions by execution path: fused closure, batch primitives, or the per-element interpreter.", "path")
	specFusedC  = specializedVec.With("fused")
	specBatchC  = specializedVec.With("batch")
	specInterpC = specializedVec.With("interp")
)

// specBatchN is the lane count of one register-column batch. It equals
// checkInterval so every batch boundary is a cancellation checkpoint,
// preserving the interpreter's cancellation latency.
const specBatchN = checkInterval

// specProgram is the cached compilation of one fragment, stored on the
// Fragment via kernel.StoreSpec.
type specProgram struct {
	batch *batchProg  // nil when the fragment is not batch-eligible
	fused fusedRunner // nil when no fused shape matched
	// fusedCountable / batch.countable report whether the path's event
	// counts are exact (all accesses sequential); counted runs of
	// non-countable fragments use the interpreter.
	fusedCountable bool
}

// fusedRunner executes work items [lo, hi) of a fragment as a single
// hand-fused loop.
type fusedRunner func(w *worker, lo, hi int) error

// specAssign is the path resolution for one fragment run, threaded to
// every participating worker (the submitter and all pool helpers claim
// morsels of the same job, so all must run the same code).
type specAssign struct {
	batch *batchProg
	fused fusedRunner
}

// specFor returns the fragment's cached specialization, compiling it on
// first use. Racing first executions compile redundantly but store
// identical content.
func specFor(f *kernel.Fragment) *specProgram {
	if v := f.LoadSpec(); v != nil {
		return v.(*specProgram)
	}
	sp := &specProgram{batch: compileBatch(f)}
	sp.fused, sp.fusedCountable = matchFused(f)
	f.StoreSpec(sp)
	return sp
}

// resolveSpec picks the execution path for one fragment run and counts it.
// counting reports whether this run accumulates FragStats (which demands
// exact event counts from the chosen path).
func resolveSpec(f *kernel.Fragment, mode SpecMode, counting, faults bool) (specAssign, string) {
	if mode == SpecializeOff || faults {
		specInterpC.Inc()
		return specAssign{}, "interp"
	}
	sp := specFor(f)
	if sp.fused != nil && mode != SpecializeBatchOnly && (!counting || sp.fusedCountable) {
		specFusedC.Inc()
		return specAssign{fused: sp.fused}, "fused"
	}
	if sp.batch != nil && (!counting || sp.batch.countable) {
		specBatchC.Inc()
		return specAssign{batch: sp.batch}, "batch"
	}
	specInterpC.Inc()
	return specAssign{}, "interp"
}

// ---------------------------------------------------------------------------
// Batch primitives

// batchPrim executes one instruction over the active lanes of a batch.
type batchPrim func(w *worker, b *bstate) error

// batchProg is a fragment compiled to batch primitives: one primitive
// sequence (segment) per loop, executed over batches of up to specBatchN
// consecutive work items.
type batchProg struct {
	segs [][]batchPrim
	// intRegs/fltRegs are the registers needing a column in each file;
	// nregs bounds both index spaces.
	intRegs []kernel.Reg
	fltRegs []kernel.Reg
	nregs   int
	// countable marks every compiled memory access sequential, making the
	// batch's event counts exact (see the package comment).
	countable bool
}

// bstate is a worker's per-batch register-column state. Columns live in
// the worker's pooled scratch; sel == nil means all n lanes are active,
// otherwise sel lists active lane offsets in ascending order.
type bstate struct {
	n      int
	sel    []int32
	selBuf []int32
	ri     [][]int64
	rf     [][]float64
}

// active returns the live lane count of the batch.
func (b *bstate) active() int {
	if b.sel == nil {
		return b.n
	}
	return len(b.sel)
}

// compileBatch translates the fragment into batch primitives, or returns
// nil when it is not eligible. Eligibility is decided entirely by the
// verifier's fragment facts (verify.BatchFacts) — the single source of
// truth for def-before-use, store/load disjointness and loop-shape rules —
// so the specializer only translates instructions; it no longer re-derives
// the analysis. Eligibility is conservative: every rejected fragment
// simply interprets.
func compileBatch(f *kernel.Fragment) *batchProg {
	facts := verify.BatchFacts(f)
	if !facts.BatchEligible {
		return nil
	}
	bp := &batchProg{
		countable: facts.Countable,
		intRegs:   facts.IntRegs,
		fltRegs:   facts.FltRegs,
		nregs:     facts.NRegs,
	}
	for _, l := range f.Loops {
		var seg []batchPrim
		for _, in := range l.Body {
			p := compilePrim(in)
			if p == nil {
				// Unreachable for fact-eligible fragments (the whitelist
				// matches compilePrim's coverage); kept as a belt against
				// the two drifting apart.
				return nil
			}
			seg = append(seg, p)
		}
		bp.segs = append(bp.segs, seg)
	}
	return bp
}

// attachBatch wires the worker's pooled scratch up as register columns for
// bp. Columns are not zeroed: compileBatch proved every read is preceded
// by a definition in the same segment.
func (w *worker) attachBatch(bp *batchProg) {
	sc := w.scratch
	ints := grow(&sc.bcols, len(bp.intRegs)*specBatchN)
	flts := grow(&sc.bfcols, len(bp.fltRegs)*specBatchN)
	if cap(sc.bri) < bp.nregs {
		sc.bri = make([][]int64, bp.nregs)
		sc.brf = make([][]float64, bp.nregs)
	}
	sc.bri = sc.bri[:bp.nregs]
	sc.brf = sc.brf[:bp.nregs]
	clear(sc.bri)
	clear(sc.brf)
	for i, r := range bp.intRegs {
		sc.bri[r] = ints[i*specBatchN : (i+1)*specBatchN]
	}
	for i, r := range bp.fltRegs {
		sc.brf[r] = flts[i*specBatchN : (i+1)*specBatchN]
	}
	if cap(sc.bsel) < specBatchN {
		sc.bsel = make([]int32, specBatchN)
	}
	w.bst = bstate{ri: sc.bri, rf: sc.brf, selBuf: sc.bsel[:0]}
}

// tickN retires n items' worth of checkpoint budget at once — the batch
// paths' replacement for per-item tick. Specialized paths never run with
// fault injection enabled (resolveSpec falls back to the interpreter), so
// the per-item hook is not replayed here.
func (w *worker) tickN(n int) error {
	w.budget -= n
	if w.budget > 0 {
		return nil
	}
	w.budget = checkInterval
	if w.stop != nil && w.stop.Load() {
		return errAborted
	}
	if w.ctx != nil {
		if err := w.ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// runBatch executes work items [lo, hi) through the batch primitives.
func (w *worker) runBatch(lo, hi int) error {
	bp := w.batch
	b := &w.bst
	f := w.f
	if f.N > 0 && hi > f.N {
		// Lanes with idx >= N skip their (single) loop iteration, and
		// eligible fragments have no prologue or epilogue, so the whole
		// lane is a no-op.
		hi = f.N
	}
	for base := lo; base < hi; base += specBatchN {
		n := min(specBatchN, hi-base)
		if w.checks {
			if err := w.tickN(n); err != nil {
				return err
			}
		}
		gidc, ivc, idxc := b.ri[kernel.RegGID], b.ri[kernel.RegIV], b.ri[kernel.RegIdx]
		for i := 0; i < n; i++ {
			g := int64(base + i)
			gidc[i] = g
			ivc[i] = 0
			idxc[i] = g
		}
		b.n = n
		for _, seg := range bp.segs {
			b.sel = nil
			for _, p := range seg {
				if err := p(w, b); err != nil {
					return err
				}
				if b.sel != nil && len(b.sel) == 0 {
					break // every lane guarded off: skip the rest of the segment
				}
			}
			if w.count {
				w.stats.Items += int64(n)
			}
		}
	}
	return nil
}

// countSeqAccess mirrors the interpreter's countAccess for the sequential
// accesses the countable batch paths compile, over lanes active lanes.
func (w *worker) countSeqAccess(in kernel.Instr, buf *Buffer, lanes int64) {
	if !w.count {
		return
	}
	if in.Op == kernel.IStore {
		w.stats.StoreBytes += 8 * lanes
		if buf.Valid != nil {
			w.stats.StoreBytes += lanes
		}
	}
	width := int64(8)
	if in.Op == kernel.ILoadValid {
		if buf.Valid == nil {
			w.stats.IntOps += 2 * lanes
			return
		}
		width = 1
	}
	w.stats.SeqBytes += width * lanes
}

// compilePrim builds the batch primitive for one instruction, or nil when
// the instruction cannot be compiled.
func compilePrim(in kernel.Instr) batchPrim {
	switch in.Op {
	case kernel.IConstI:
		dst, imm := in.Dst, in.Imm
		return func(_ *worker, b *bstate) error {
			d := b.ri[dst]
			if s := b.sel; s != nil {
				for _, i := range s {
					d[i] = imm
				}
			} else {
				for i := 0; i < b.n; i++ {
					d[i] = imm
				}
			}
			return nil
		}
	case kernel.IConstF:
		dst, imm := in.Dst, in.FImm
		return func(_ *worker, b *bstate) error {
			d := b.rf[dst]
			if s := b.sel; s != nil {
				for _, i := range s {
					d[i] = imm
				}
			} else {
				for i := 0; i < b.n; i++ {
					d[i] = imm
				}
			}
			return nil
		}
	case kernel.IMov:
		dst, a, flt := in.Dst, in.A, in.Float
		return func(_ *worker, b *bstate) error {
			if flt {
				d, src := b.rf[dst], b.rf[a]
				if s := b.sel; s != nil {
					for _, i := range s {
						d[i] = src[i]
					}
				} else {
					copy(d[:b.n], src[:b.n])
				}
			} else {
				d, src := b.ri[dst], b.ri[a]
				if s := b.sel; s != nil {
					for _, i := range s {
						d[i] = src[i]
					}
				} else {
					copy(d[:b.n], src[:b.n])
				}
			}
			return nil
		}
	case kernel.IBin:
		if in.Float {
			return primBinF(in)
		}
		return primBinI(in)
	case kernel.ISel:
		dst, a, bb, cc, flt := in.Dst, in.A, in.B, in.C, in.Float
		return func(w *worker, b *bstate) error {
			cond := b.ri[a]
			if w.count {
				w.stats.IntOps += int64(b.active())
			}
			if flt {
				d, x, y := b.rf[dst], b.rf[bb], b.rf[cc]
				if s := b.sel; s != nil {
					for _, i := range s {
						if cond[i] != 0 {
							d[i] = x[i]
						} else {
							d[i] = y[i]
						}
					}
				} else {
					for i := 0; i < b.n; i++ {
						if cond[i] != 0 {
							d[i] = x[i]
						} else {
							d[i] = y[i]
						}
					}
				}
			} else {
				d, x, y := b.ri[dst], b.ri[bb], b.ri[cc]
				if s := b.sel; s != nil {
					for _, i := range s {
						if cond[i] != 0 {
							d[i] = x[i]
						} else {
							d[i] = y[i]
						}
					}
				} else {
					for i := 0; i < b.n; i++ {
						if cond[i] != 0 {
							d[i] = x[i]
						} else {
							d[i] = y[i]
						}
					}
				}
			}
			return nil
		}
	case kernel.ILoad:
		return primLoad(in)
	case kernel.ILoadValid:
		return primLoadValid(in)
	case kernel.IStore:
		return primStore(in)
	case kernel.IGuard:
		a := in.A
		return func(w *worker, b *bstate) error {
			cond := b.ri[a]
			if w.count {
				w.stats.Guards += int64(b.active())
			}
			if s := b.sel; s != nil {
				// In-place compaction: writes trail reads.
				out := s[:0]
				for _, i := range s {
					if cond[i] != 0 {
						out = append(out, i)
					}
				}
				b.sel = out
			} else {
				out := b.selBuf[:0]
				for i := 0; i < b.n; i++ {
					if cond[i] != 0 {
						out = append(out, int32(i))
					}
				}
				b.sel = out
			}
			if w.count {
				w.stats.GuardsPass += int64(len(b.sel))
			}
			return nil
		}
	case kernel.ICastIF:
		dst, a := in.Dst, in.A
		return func(_ *worker, b *bstate) error {
			d, src := b.rf[dst], b.ri[a]
			if s := b.sel; s != nil {
				for _, i := range s {
					d[i] = float64(src[i])
				}
			} else {
				for i := 0; i < b.n; i++ {
					d[i] = float64(src[i])
				}
			}
			return nil
		}
	case kernel.ICastFI:
		dst, a := in.Dst, in.A
		return func(_ *worker, b *bstate) error {
			d, src := b.ri[dst], b.rf[a]
			if s := b.sel; s != nil {
				for _, i := range s {
					d[i] = int64(src[i])
				}
			} else {
				for i := 0; i < b.n; i++ {
					d[i] = int64(src[i])
				}
			}
			return nil
		}
	}
	return nil
}

// primBinI compiles an integer IBin. The hot arithmetic and comparison
// operators get dedicated loops (bounds-check-friendly, vectorizable);
// trapping and rare operators share a per-element loop through ibin so
// error messages match the interpreter exactly.
func primBinI(in kernel.Instr) batchPrim {
	op, dr, ar, br := in.BOp, in.Dst, in.A, in.B
	return func(w *worker, b *bstate) error {
		d, x, y := b.ri[dr], b.ri[ar], b.ri[br]
		if w.count {
			w.stats.IntOps += int64(b.active())
		}
		s := b.sel
		switch op {
		case kernel.BAdd:
			if s != nil {
				for _, i := range s {
					d[i] = x[i] + y[i]
				}
			} else {
				for i := 0; i < b.n; i++ {
					d[i] = x[i] + y[i]
				}
			}
		case kernel.BSub:
			if s != nil {
				for _, i := range s {
					d[i] = x[i] - y[i]
				}
			} else {
				for i := 0; i < b.n; i++ {
					d[i] = x[i] - y[i]
				}
			}
		case kernel.BMul:
			if s != nil {
				for _, i := range s {
					d[i] = x[i] * y[i]
				}
			} else {
				for i := 0; i < b.n; i++ {
					d[i] = x[i] * y[i]
				}
			}
		case kernel.BGt:
			if s != nil {
				for _, i := range s {
					d[i] = b2i(x[i] > y[i])
				}
			} else {
				for i := 0; i < b.n; i++ {
					d[i] = b2i(x[i] > y[i])
				}
			}
		case kernel.BGe:
			if s != nil {
				for _, i := range s {
					d[i] = b2i(x[i] >= y[i])
				}
			} else {
				for i := 0; i < b.n; i++ {
					d[i] = b2i(x[i] >= y[i])
				}
			}
		case kernel.BEq:
			if s != nil {
				for _, i := range s {
					d[i] = b2i(x[i] == y[i])
				}
			} else {
				for i := 0; i < b.n; i++ {
					d[i] = b2i(x[i] == y[i])
				}
			}
		case kernel.BMin:
			if s != nil {
				for _, i := range s {
					d[i] = min(x[i], y[i])
				}
			} else {
				for i := 0; i < b.n; i++ {
					d[i] = min(x[i], y[i])
				}
			}
		case kernel.BMax:
			if s != nil {
				for _, i := range s {
					d[i] = max(x[i], y[i])
				}
			} else {
				for i := 0; i < b.n; i++ {
					d[i] = max(x[i], y[i])
				}
			}
		case kernel.BAnd:
			if s != nil {
				for _, i := range s {
					d[i] = b2i(x[i] != 0 && y[i] != 0)
				}
			} else {
				for i := 0; i < b.n; i++ {
					d[i] = b2i(x[i] != 0 && y[i] != 0)
				}
			}
		case kernel.BOr:
			if s != nil {
				for _, i := range s {
					d[i] = b2i(x[i] != 0 || y[i] != 0)
				}
			} else {
				for i := 0; i < b.n; i++ {
					d[i] = b2i(x[i] != 0 || y[i] != 0)
				}
			}
		default:
			if s != nil {
				for _, i := range s {
					v, err := ibin(op, x[i], y[i])
					if err != nil {
						return err
					}
					d[i] = v
				}
			} else {
				for i := 0; i < b.n; i++ {
					v, err := ibin(op, x[i], y[i])
					if err != nil {
						return err
					}
					d[i] = v
				}
			}
		}
		return nil
	}
}

// primBinF compiles a float IBin, with the same hot/rare split as
// primBinI.
func primBinF(in kernel.Instr) batchPrim {
	op, dr, ar, br := in.BOp, in.Dst, in.A, in.B
	return func(w *worker, b *bstate) error {
		d, x, y := b.rf[dr], b.rf[ar], b.rf[br]
		if w.count {
			w.stats.FloatOps += int64(b.active())
		}
		s := b.sel
		switch op {
		case kernel.BAdd:
			if s != nil {
				for _, i := range s {
					d[i] = x[i] + y[i]
				}
			} else {
				for i := 0; i < b.n; i++ {
					d[i] = x[i] + y[i]
				}
			}
		case kernel.BSub:
			if s != nil {
				for _, i := range s {
					d[i] = x[i] - y[i]
				}
			} else {
				for i := 0; i < b.n; i++ {
					d[i] = x[i] - y[i]
				}
			}
		case kernel.BMul:
			if s != nil {
				for _, i := range s {
					d[i] = x[i] * y[i]
				}
			} else {
				for i := 0; i < b.n; i++ {
					d[i] = x[i] * y[i]
				}
			}
		default:
			if s != nil {
				for _, i := range s {
					v, err := fbin(op, x[i], y[i])
					if err != nil {
						return err
					}
					d[i] = v
				}
			} else {
				for i := 0; i < b.n; i++ {
					v, err := fbin(op, x[i], y[i])
					if err != nil {
						return err
					}
					d[i] = v
				}
			}
		}
		return nil
	}
}

// primLoad compiles ILoad. Loads indexed directly by RegIdx over a dense
// batch reduce to a bounds-checked copy.
func primLoad(in kernel.Instr) batchPrim {
	dr, ar, bi, flt := in.Dst, in.A, in.Buf, in.Float
	instr := in
	return func(w *worker, b *bstate) error {
		buf := w.env.Bufs[bi]
		ln := int64(buf.Len())
		a := b.ri[ar]
		s := b.sel
		if flt {
			d := b.rf[dr]
			if s == nil && ar == kernel.RegIdx && b.n > 0 && a[0] >= 0 && a[b.n-1] < ln {
				// A dense batch loading at RegIdx reads consecutive slots:
				// one range check, then a straight copy. Out-of-range
				// batches take the generic loop so the error names the
				// first offending index, as the interpreter would.
				lo := a[0]
				copy(d[:b.n], buf.F[lo:lo+int64(b.n)])
			} else if s != nil {
				for _, i := range s {
					ix := a[i]
					if ix < 0 || ix >= ln {
						return fmt.Errorf("load out of bounds: buf %d idx %d len %d", bi, ix, buf.Len())
					}
					d[i] = buf.F[ix]
				}
			} else {
				for i := 0; i < b.n; i++ {
					ix := a[i]
					if ix < 0 || ix >= ln {
						return fmt.Errorf("load out of bounds: buf %d idx %d len %d", bi, ix, buf.Len())
					}
					d[i] = buf.F[ix]
				}
			}
		} else {
			d := b.ri[dr]
			if s == nil && ar == kernel.RegIdx && b.n > 0 && a[0] >= 0 && a[b.n-1] < ln {
				lo := a[0]
				copy(d[:b.n], buf.I[lo:lo+int64(b.n)])
			} else if s != nil {
				for _, i := range s {
					ix := a[i]
					if ix < 0 || ix >= ln {
						return fmt.Errorf("load out of bounds: buf %d idx %d len %d", bi, ix, buf.Len())
					}
					d[i] = buf.I[ix]
				}
			} else {
				for i := 0; i < b.n; i++ {
					ix := a[i]
					if ix < 0 || ix >= ln {
						return fmt.Errorf("load out of bounds: buf %d idx %d len %d", bi, ix, buf.Len())
					}
					d[i] = buf.I[ix]
				}
			}
		}
		w.countSeqAccess(instr, buf, int64(b.active()))
		return nil
	}
}

// primLoadValid compiles ILoadValid: out-of-bounds probes yield 0, maskless
// buffers yield 1, exactly like the interpreter.
func primLoadValid(in kernel.Instr) batchPrim {
	dr, ar, bi := in.Dst, in.A, in.Buf
	instr := in
	return func(w *worker, b *bstate) error {
		buf := w.env.Bufs[bi]
		ln := int64(buf.Len())
		a := b.ri[ar]
		d := b.ri[dr]
		valid := buf.Valid
		if s := b.sel; s != nil {
			for _, i := range s {
				ix := a[i]
				if ix < 0 || ix >= ln {
					d[i] = 0
				} else if valid == nil || valid[ix] {
					d[i] = 1
				} else {
					d[i] = 0
				}
			}
		} else {
			for i := 0; i < b.n; i++ {
				ix := a[i]
				if ix < 0 || ix >= ln {
					d[i] = 0
				} else if valid == nil || valid[ix] {
					d[i] = 1
				} else {
					d[i] = 0
				}
			}
		}
		w.countSeqAccess(instr, buf, int64(b.active()))
		return nil
	}
}

// primStore compiles IStore, including the C-register conditional-validity
// protocol (empty slots store the reserved zero representation).
func primStore(in kernel.Instr) batchPrim {
	ar, br, cr, bi, flt := in.A, in.B, in.C, in.Buf, in.Float
	instr := in
	return func(w *worker, b *bstate) error {
		buf := w.env.Bufs[bi]
		ln := int64(buf.Len())
		a := b.ri[ar]
		var cond []int64
		if buf.Valid != nil && cr > 0 {
			cond = b.ri[cr]
		}
		s := b.sel
		if flt {
			src := b.rf[br]
			if s == nil && ar == kernel.RegIdx && cond == nil && buf.Valid == nil &&
				b.n > 0 && a[0] >= 0 && a[b.n-1] < ln {
				// Dense contiguous store without a validity mask: one range
				// check, then a straight copy.
				lo := a[0]
				copy(buf.F[lo:lo+int64(b.n)], src[:b.n])
			} else if s != nil {
				for _, i := range s {
					ix := a[i]
					if ix < 0 || ix >= ln {
						return fmt.Errorf("store out of bounds: buf %d idx %d len %d", bi, ix, buf.Len())
					}
					v, valid := src[i], true
					if cond != nil && cond[i] == 0 {
						v, valid = 0, false
					}
					buf.F[ix] = v
					if buf.Valid != nil {
						buf.Valid[ix] = valid
					}
				}
			} else {
				for i := 0; i < b.n; i++ {
					ix := a[i]
					if ix < 0 || ix >= ln {
						return fmt.Errorf("store out of bounds: buf %d idx %d len %d", bi, ix, buf.Len())
					}
					v, valid := src[i], true
					if cond != nil && cond[i] == 0 {
						v, valid = 0, false
					}
					buf.F[ix] = v
					if buf.Valid != nil {
						buf.Valid[ix] = valid
					}
				}
			}
		} else {
			src := b.ri[br]
			if s == nil && ar == kernel.RegIdx && cond == nil && buf.Valid == nil &&
				b.n > 0 && a[0] >= 0 && a[b.n-1] < ln {
				lo := a[0]
				copy(buf.I[lo:lo+int64(b.n)], src[:b.n])
			} else if s != nil {
				for _, i := range s {
					ix := a[i]
					if ix < 0 || ix >= ln {
						return fmt.Errorf("store out of bounds: buf %d idx %d len %d", bi, ix, buf.Len())
					}
					v, valid := src[i], true
					if cond != nil && cond[i] == 0 {
						v, valid = 0, false
					}
					buf.I[ix] = v
					if buf.Valid != nil {
						buf.Valid[ix] = valid
					}
				}
			} else {
				for i := 0; i < b.n; i++ {
					ix := a[i]
					if ix < 0 || ix >= ln {
						return fmt.Errorf("store out of bounds: buf %d idx %d len %d", bi, ix, buf.Len())
					}
					v, valid := src[i], true
					if cond != nil && cond[i] == 0 {
						v, valid = 0, false
					}
					buf.I[ix] = v
					if buf.Valid != nil {
						buf.Valid[ix] = valid
					}
				}
			}
		}
		w.countSeqAccess(instr, buf, int64(b.active()))
		return nil
	}
}
