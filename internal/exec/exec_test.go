package exec

import (
	"testing"

	"voodoo/internal/kernel"
	"voodoo/internal/vector"
)

// addKernel builds: out[i] = a[i] + b[i], blocked over extent work items.
func addKernel(n, extent int) *kernel.Kernel {
	k := &kernel.Kernel{}
	a := k.AddBuf(kernel.BufDecl{Name: "a", Kind: vector.Int, Size: n, Input: true})
	b := k.AddBuf(kernel.BufDecl{Name: "b", Kind: vector.Int, Size: n, Input: true})
	out := k.AddBuf(kernel.BufDecl{Name: "out", Kind: vector.Int, Size: n})
	intent := (n + extent - 1) / extent
	r0, r1, r2 := kernel.FirstFree, kernel.FirstFree+1, kernel.FirstFree+2
	k.Frags = append(k.Frags, &kernel.Fragment{
		Name: "add", Extent: extent, Intent: intent, N: n,
		Loops: []kernel.Loop{{Body: []kernel.Instr{
			{Op: kernel.ILoad, Dst: r0, A: kernel.RegIdx, Buf: a, Seq: true},
			{Op: kernel.ILoad, Dst: r1, A: kernel.RegIdx, Buf: b, Seq: true},
			{Op: kernel.IBin, BOp: kernel.BAdd, Dst: r2, A: r0, B: r1},
			{Op: kernel.IStore, A: kernel.RegIdx, B: r2, Buf: out, Seq: true},
		}}},
	})
	return k
}

func runKernel(t *testing.T, k *kernel.Kernel, inputs map[string][]int64, workers int, st *Stats) *Env {
	t.Helper()
	env := NewEnv(k)
	for name, vals := range inputs {
		if err := env.Bind(k, name, &Buffer{Kind: vector.Int, I: vals}); err != nil {
			t.Fatal(err)
		}
	}
	if err := Run(k, env, workers, st); err != nil {
		t.Fatal(err)
	}
	return env
}

func TestElementwiseAdd(t *testing.T) {
	for _, extent := range []int{1, 3, 7, 10} {
		k := addKernel(10, extent)
		env := runKernel(t, k, map[string][]int64{
			"a": {0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
			"b": {10, 10, 10, 10, 10, 10, 10, 10, 10, 10},
		}, 2, nil)
		for i, want := range []int64{10, 11, 12, 13, 14, 15, 16, 17, 18, 19} {
			if got := env.Bufs[2].I[i]; got != want {
				t.Fatalf("extent %d: out[%d] = %d, want %d", extent, i, got, want)
			}
		}
	}
}

// foldSumKernel builds a blocked hierarchical sum: each of extent work items
// sums its run of intent elements into partial[gid].
func foldSumKernel(n, extent int) *kernel.Kernel {
	k := &kernel.Kernel{}
	in := k.AddBuf(kernel.BufDecl{Name: "in", Kind: vector.Int, Size: n, Input: true})
	out := k.AddBuf(kernel.BufDecl{Name: "partial", Kind: vector.Int, Size: extent})
	intent := (n + extent - 1) / extent
	acc, v := kernel.FirstFree, kernel.FirstFree+1
	k.Frags = append(k.Frags, &kernel.Fragment{
		Name: "foldsum", Extent: extent, Intent: intent, N: n,
		Pre: []kernel.Instr{{Op: kernel.IConstI, Dst: acc, Imm: 0}},
		Loops: []kernel.Loop{{Body: []kernel.Instr{
			{Op: kernel.ILoad, Dst: v, A: kernel.RegIdx, Buf: in, Seq: true},
			{Op: kernel.IBin, BOp: kernel.BAdd, Dst: acc, A: acc, B: v},
		}}},
		Post: []kernel.Instr{
			{Op: kernel.IStore, A: kernel.RegGID, B: acc, Buf: out, Seq: true},
		},
	})
	return k
}

func TestBlockedFoldSum(t *testing.T) {
	in := make([]int64, 100)
	var want int64
	for i := range in {
		in[i] = int64(i)
		want += int64(i)
	}
	for _, extent := range []int{1, 4, 7} {
		k := foldSumKernel(100, extent)
		env := runKernel(t, k, map[string][]int64{"in": in}, 3, nil)
		var got int64
		for _, p := range env.Bufs[1].I {
			got += p
		}
		if got != want {
			t.Fatalf("extent %d: sum = %d, want %d", extent, got, want)
		}
	}
}

func TestStridedIndexing(t *testing.T) {
	// Strided sum with extent 4: lane g sums elements g, g+4, g+8, ...
	n, extent := 16, 4
	k := &kernel.Kernel{}
	in := k.AddBuf(kernel.BufDecl{Name: "in", Kind: vector.Int, Size: n, Input: true})
	out := k.AddBuf(kernel.BufDecl{Name: "partial", Kind: vector.Int, Size: extent})
	acc, v := kernel.FirstFree, kernel.FirstFree+1
	k.Frags = append(k.Frags, &kernel.Fragment{
		Name: "strided", Extent: extent, Intent: n / extent, N: n, Strided: true,
		Pre: []kernel.Instr{{Op: kernel.IConstI, Dst: acc, Imm: 0}},
		Loops: []kernel.Loop{{Body: []kernel.Instr{
			{Op: kernel.ILoad, Dst: v, A: kernel.RegIdx, Buf: in},
			{Op: kernel.IBin, BOp: kernel.BAdd, Dst: acc, A: acc, B: v},
		}}},
		Post: []kernel.Instr{{Op: kernel.IStore, A: kernel.RegGID, B: acc, Buf: out, Seq: true}},
	})
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % extent) // lane id: lane g sums only value g
	}
	env := runKernel(t, k, map[string][]int64{"in": vals}, 1, nil)
	for g := 0; g < extent; g++ {
		if got := env.Bufs[out].I[g]; got != int64(g*n/extent) {
			t.Fatalf("lane %d = %d, want %d", g, got, g*n/extent)
		}
	}
	_ = in
}

// TestGuardAndDynamicBound exercises the branching select pattern: loop 1
// emits matching positions into locals with a cursor; loop 2 sums the
// gathered values using the cursor as a dynamic bound.
func TestGuardAndDynamicBound(t *testing.T) {
	n := 12
	k := &kernel.Kernel{}
	in := k.AddBuf(kernel.BufDecl{Name: "in", Kind: vector.Int, Size: n, Input: true})
	out := k.AddBuf(kernel.BufDecl{Name: "sum", Kind: vector.Int, Size: 1})
	cur, v, pred, acc, pos := kernel.FirstFree, kernel.FirstFree+1, kernel.FirstFree+2, kernel.FirstFree+3, kernel.FirstFree+4
	five := kernel.FirstFree + 5
	k.Frags = append(k.Frags, &kernel.Fragment{
		Name: "selectsum", Extent: 1, Intent: n, N: n, Locals: n,
		Pre: []kernel.Instr{
			{Op: kernel.IConstI, Dst: cur, Imm: 0},
			{Op: kernel.IConstI, Dst: acc, Imm: 0},
			{Op: kernel.IConstI, Dst: five, Imm: 5},
		},
		Loops: []kernel.Loop{
			{Body: []kernel.Instr{
				{Op: kernel.ILoad, Dst: v, A: kernel.RegIdx, Buf: in, Seq: true},
				{Op: kernel.IBin, BOp: kernel.BGt, Dst: pred, A: v, B: five},
				{Op: kernel.IGuard, A: pred},
				{Op: kernel.IStoreLoc, A: cur, B: kernel.RegIdx},
				{Op: kernel.IConstI, Dst: v, Imm: 1},
				{Op: kernel.IBin, BOp: kernel.BAdd, Dst: cur, A: cur, B: v},
			}},
			{BoundReg: cur, Body: []kernel.Instr{
				{Op: kernel.ILoadLoc, Dst: pos, A: kernel.RegIV},
				{Op: kernel.ILoad, Dst: v, A: pos, Buf: in},
				{Op: kernel.IBin, BOp: kernel.BAdd, Dst: acc, A: acc, B: v},
			}},
		},
		Post: []kernel.Instr{{Op: kernel.IConstI, Dst: v, Imm: 0},
			{Op: kernel.IStore, A: v, B: acc, Buf: out, Seq: true}},
	})
	vals := []int64{1, 9, 2, 8, 3, 7, 4, 6, 5, 10, 0, 11}
	var want int64
	for _, x := range vals {
		if x > 5 {
			want += x
		}
	}
	var st Stats
	env := runKernel(t, k, map[string][]int64{"in": vals}, 1, &st)
	if got := env.Bufs[out].I[0]; got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	fs := st.Frags[0]
	if fs.Guards != int64(n) {
		t.Errorf("guards = %d, want %d", fs.Guards, n)
	}
	if fs.GuardsPass != 6 {
		t.Errorf("guards passed = %d, want 6", fs.GuardsPass)
	}
	_ = in
}

// TestGroupedLocalsPostLoop exercises the virtual-scatter grouped
// aggregation: per-work-item local accumulator array flushed by PostLoop.
func TestGroupedLocalsPostLoop(t *testing.T) {
	n, groups, extent := 12, 3, 2
	k := &kernel.Kernel{}
	g := k.AddBuf(kernel.BufDecl{Name: "g", Kind: vector.Int, Size: n, Input: true})
	v := k.AddBuf(kernel.BufDecl{Name: "v", Kind: vector.Int, Size: n, Input: true})
	part := k.AddBuf(kernel.BufDecl{Name: "part", Kind: vector.Int, Size: extent * groups})
	rg, rv, racc, rslot, rk := kernel.FirstFree, kernel.FirstFree+1, kernel.FirstFree+2, kernel.FirstFree+3, kernel.FirstFree+4
	k.Frags = append(k.Frags, &kernel.Fragment{
		Name: "grouped", Extent: extent, Intent: n / extent, N: n,
		Locals: groups,
		Loops: []kernel.Loop{{Body: []kernel.Instr{
			{Op: kernel.ILoad, Dst: rg, A: kernel.RegIdx, Buf: g, Seq: true},
			{Op: kernel.ILoad, Dst: rv, A: kernel.RegIdx, Buf: v, Seq: true},
			{Op: kernel.ILoadLoc, Dst: racc, A: rg},
			{Op: kernel.IBin, BOp: kernel.BAdd, Dst: racc, A: racc, B: rv},
			{Op: kernel.IStoreLoc, A: rg, B: racc},
		}}},
		PostLoopBody: []kernel.Instr{
			// part[gid*groups + j] = loc[j]
			{Op: kernel.IConstI, Dst: rk, Imm: int64(groups)},
			{Op: kernel.IBin, BOp: kernel.BMul, Dst: rslot, A: kernel.RegGID, B: rk},
			{Op: kernel.IBin, BOp: kernel.BAdd, Dst: rslot, A: rslot, B: kernel.RegJ},
			{Op: kernel.ILoadLoc, Dst: racc, A: kernel.RegJ},
			{Op: kernel.IStore, A: rslot, B: racc, Buf: part, Seq: true},
		},
	})
	gs := []int64{0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2}
	vs := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	env := runKernel(t, k, map[string][]int64{"g": gs, "v": vs}, 2, nil)
	want := []int64{1 + 4 + 7 + 10, 2 + 5 + 8 + 11, 3 + 6 + 9 + 12}
	for grp := 0; grp < groups; grp++ {
		var got int64
		for e := 0; e < extent; e++ {
			got += env.Bufs[part].I[e*groups+grp]
		}
		if got != want[grp] {
			t.Fatalf("group %d = %d, want %d", grp, got, want[grp])
		}
	}
}

func TestStatsCounting(t *testing.T) {
	k := addKernel(8, 2)
	var st Stats
	runKernel(t, k, map[string][]int64{
		"a": {1, 2, 3, 4, 5, 6, 7, 8},
		"b": {1, 1, 1, 1, 1, 1, 1, 1},
	}, 2, &st)
	fs := st.Frags[0]
	if fs.Items != 8 {
		t.Errorf("items = %d, want 8", fs.Items)
	}
	if fs.IntOps != 8 {
		t.Errorf("intops = %d, want 8", fs.IntOps)
	}
	if fs.SeqBytes != 8*3*8 { // 2 loads + 1 store per item, 8 bytes each
		t.Errorf("seqbytes = %d, want %d", fs.SeqBytes, 8*3*8)
	}
}

func TestRandomAccessHistogram(t *testing.T) {
	n := 4
	k := &kernel.Kernel{}
	pos := k.AddBuf(kernel.BufDecl{Name: "pos", Kind: vector.Int, Size: n, Input: true})
	data := k.AddBuf(kernel.BufDecl{Name: "data", Kind: vector.Int, Size: 100, Input: true})
	out := k.AddBuf(kernel.BufDecl{Name: "out", Kind: vector.Int, Size: n})
	p, v := kernel.FirstFree, kernel.FirstFree+1
	k.Frags = append(k.Frags, &kernel.Fragment{
		Name: "gather", Extent: 1, Intent: n, N: n,
		Loops: []kernel.Loop{{Body: []kernel.Instr{
			{Op: kernel.ILoad, Dst: p, A: kernel.RegIdx, Buf: pos, Seq: true},
			{Op: kernel.ILoad, Dst: v, A: p, Buf: data}, // random
			{Op: kernel.IStore, A: kernel.RegIdx, B: v, Buf: out, Seq: true},
		}}},
	})
	env := NewEnv(k)
	if err := env.Bind(k, "pos", &Buffer{Kind: vector.Int, I: []int64{99, 0, 50, 3}}); err != nil {
		t.Fatal(err)
	}
	big := make([]int64, 100)
	big[99], big[0], big[50], big[3] = 9, 1, 5, 3
	if err := env.Bind(k, "data", &Buffer{Kind: vector.Int, I: big}); err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := Run(k, env, 1, &st); err != nil {
		t.Fatal(err)
	}
	fs := st.Frags[0]
	// Positions 99, 0, 50, 3: the access at 3 shares the cache line of the
	// earlier access at 0, so it counts as near.
	if fs.RandAccesses != 3 || fs.NearAccesses != 1 {
		t.Errorf("rand/near = %d/%d, want 3/1", fs.RandAccesses, fs.NearAccesses)
	}
	if e := fs.RandByBuf[1]; e.Bytes != 800 || e.Count != 3 {
		t.Errorf("rand histogram = %v, want buf1 {800, 3}", fs.RandByBuf)
	}
	for i, want := range []int64{9, 1, 5, 3} {
		if env.Bufs[2].I[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, env.Bufs[2].I[i], want)
		}
	}
}

func TestOutOfBoundsLoadErrors(t *testing.T) {
	n := 2
	k := &kernel.Kernel{}
	in := k.AddBuf(kernel.BufDecl{Name: "in", Kind: vector.Int, Size: n, Input: true})
	r := kernel.FirstFree
	k.Frags = append(k.Frags, &kernel.Fragment{
		Name: "oob", Extent: 1, Intent: 1, N: 1,
		Loops: []kernel.Loop{{Body: []kernel.Instr{
			{Op: kernel.IConstI, Dst: r, Imm: 5},
			{Op: kernel.ILoad, Dst: r, A: r, Buf: in},
		}}},
	})
	env := NewEnv(k)
	if err := env.Bind(k, "in", &Buffer{Kind: vector.Int, I: []int64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := Run(k, env, 1, nil); err == nil {
		t.Fatal("expected out-of-bounds error")
	}
}

func TestBufferColumnRoundTrip(t *testing.T) {
	c := vector.NewEmptyInt(3)
	c.SetInt(1, 42)
	b := FromColumn(c)
	back := b.Column()
	if !c.Equal(back) {
		t.Fatal("column -> buffer -> column round trip changed data")
	}
}

func TestBindErrors(t *testing.T) {
	k := addKernel(4, 2)
	env := NewEnv(k)
	if err := env.Bind(k, "nope", &Buffer{Kind: vector.Int, I: make([]int64, 4)}); err == nil {
		t.Error("expected error for unknown buffer")
	}
	if err := env.Bind(k, "a", &Buffer{Kind: vector.Int, I: make([]int64, 3)}); err == nil {
		t.Error("expected error for size mismatch")
	}
}
