package exec_test

import (
	"sort"
	"testing"

	"voodoo/internal/compile"
	"voodoo/internal/difftest"
	"voodoo/internal/kernel"
	"voodoo/internal/verify"
)

// legacyBatchEligibility is a verbatim copy of the eligibility analysis
// compileBatch performed before the duplicated logic was deleted in favor
// of verify.BatchFacts. It pins that the verifier-computed facts make
// exactly the decisions the specializer historically made.
func legacyBatchEligibility(f *kernel.Fragment) (eligible, countable bool, intRegs, fltRegs []kernel.Reg, nregs int) {
	if f.Locals != 0 || len(f.Pre) != 0 || len(f.Post) != 0 || len(f.PostLoopBody) != 0 {
		return false, false, nil, nil, 0
	}
	if len(f.Loops) == 0 {
		return false, false, nil, nil, 0
	}
	if f.Intent != 1 && !f.Strided {
		return false, false, nil, nil, 0
	}
	for _, l := range f.Loops {
		if l.BoundReg > 0 {
			return false, false, nil, nil, 0
		}
		bound := l.Bound
		if bound <= 0 {
			bound = f.Intent
		}
		if bound != 1 {
			return false, false, nil, nil, 0
		}
	}
	countable = true
	usedI := map[kernel.Reg]bool{kernel.RegGID: true, kernel.RegIV: true, kernel.RegIdx: true}
	usedF := map[kernel.Reg]bool{}
	loaded := map[int]bool{}
	stored := map[int]bool{}
	for _, l := range f.Loops {
		defI := map[kernel.Reg]bool{kernel.RegGID: true, kernel.RegIV: true, kernel.RegIdx: true}
		defF := map[kernel.Reg]bool{}
		for _, in := range l.Body {
			switch in.Op {
			case kernel.IConstI, kernel.IConstF, kernel.IMov, kernel.IBin, kernel.ISel,
				kernel.ILoad, kernel.ILoadValid, kernel.IStore, kernel.IGuard,
				kernel.ICastIF, kernel.ICastFI:
			default:
				return false, false, nil, nil, 0
			}
			for _, u := range in.Uses() {
				if u.R < 0 {
					return false, false, nil, nil, 0
				}
				if u.Float {
					if !defF[u.R] {
						return false, false, nil, nil, 0
					}
				} else if !defI[u.R] {
					return false, false, nil, nil, 0
				}
			}
			switch in.Op {
			case kernel.ILoad, kernel.ILoadValid:
				if stored[in.Buf] {
					return false, false, nil, nil, 0
				}
				loaded[in.Buf] = true
				if !in.Seq {
					countable = false
				}
			case kernel.IStore:
				if stored[in.Buf] || loaded[in.Buf] {
					return false, false, nil, nil, 0
				}
				stored[in.Buf] = true
				if !in.Seq {
					countable = false
				}
			}
			if r, flt, ok := in.Def(); ok {
				if r < kernel.FirstFree {
					return false, false, nil, nil, 0
				}
				if flt {
					defF[r], usedF[r] = true, true
				} else {
					defI[r], usedI[r] = true, true
				}
			}
		}
	}
	for r := range usedI {
		intRegs = append(intRegs, r)
		if int(r)+1 > nregs {
			nregs = int(r) + 1
		}
	}
	for r := range usedF {
		fltRegs = append(fltRegs, r)
		if int(r)+1 > nregs {
			nregs = int(r) + 1
		}
	}
	sort.Slice(intRegs, func(i, j int) bool { return intRegs[i] < intRegs[j] })
	sort.Slice(fltRegs, func(i, j int) bool { return fltRegs[i] < fltRegs[j] })
	return true, countable, intRegs, fltRegs, nregs
}

func regsEqual(a, b []kernel.Reg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBatchFactsMatchLegacyEligibility sweeps the difftest corpus through
// the compiler under the fragment-shaping option combos and asserts
// verify.BatchFacts reproduces the legacy eligibility decision — and the
// derived register/countability facts — for every generated fragment.
func TestBatchFactsMatchLegacyEligibility(t *testing.T) {
	seeds := int64(200)
	if testing.Short() {
		seeds = 50
	}
	opts := []compile.Options{{}, {Predication: true}}
	frags, eligibleFrags := 0, 0
	for seed := int64(1); seed <= seeds; seed++ {
		p := difftest.Generate(seed)
		for _, opt := range opts {
			plan, err := compile.Compile(p.Prog, p.St, opt)
			if err != nil {
				continue
			}
			for _, f := range plan.Kernel().Frags {
				frags++
				facts := verify.BatchFacts(f)
				eligible, countable, intRegs, fltRegs, nregs := legacyBatchEligibility(f)
				if facts.BatchEligible != eligible {
					t.Fatalf("seed %d frag %s: eligibility %v, legacy says %v (reason %q)\n%s",
						seed, f.Name, facts.BatchEligible, eligible, facts.Reason, f.Fingerprint())
				}
				if !eligible {
					continue
				}
				eligibleFrags++
				if facts.Countable != countable {
					t.Fatalf("seed %d frag %s: countable %v, legacy says %v", seed, f.Name, facts.Countable, countable)
				}
				if !regsEqual(facts.IntRegs, intRegs) || !regsEqual(facts.FltRegs, fltRegs) || facts.NRegs != nregs {
					t.Fatalf("seed %d frag %s: regs int=%v flt=%v n=%d, legacy int=%v flt=%v n=%d",
						seed, f.Name, facts.IntRegs, facts.FltRegs, facts.NRegs, intRegs, fltRegs, nregs)
				}
			}
		}
	}
	if frags < 100 || eligibleFrags == 0 {
		t.Fatalf("corpus too thin to pin eligibility: %d fragments, %d eligible", frags, eligibleFrags)
	}
	t.Logf("pinned %d fragments (%d batch-eligible)", frags, eligibleFrags)
}
