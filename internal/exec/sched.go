// Morsel-driven fragment scheduling.
//
// The paper makes the *degree* of parallelism declarative — extent × intent
// — but how those work items map onto OS threads is the executor's
// business. The original executor cut every fragment into one static chunk
// per worker and spawned fresh goroutines for each fragment, which has two
// production problems: a skewed chunk (all the expensive work items landing
// in one contiguous range) serializes the whole fragment behind one worker,
// and a daemon running thousands of fragments per second pays goroutine
// spawn/teardown per fragment while concurrent queries oversubscribe the
// machine with workers × queries goroutines.
//
// This file replaces that with morsel-driven scheduling (à la HyPer's
// morsel-driven parallelism): a process-wide persistent worker pool whose
// workers park when idle, and fragments published as jobs whose work items
// are claimed in fixed-size morsels from an atomic ticket counter. Fast
// workers absorb skew by simply claiming more morsels; concurrent queries
// share one pool instead of each spawning their own workers.
//
// Determinism: a fragment's work items write disjoint output slots (that is
// the algebra's data-parallel contract — folds combine *within* a work item
// along the intent axis, never across work items), so results are
// bit-identical for every morsel size and claim order. The only cross-
// morsel combining is of measurement partials (FragStats), which are merged
// in first-claimed-morsel order so even traces are reproducible.
//
// Lifecycle: the pool starts lazily at the first parallel fragment and is
// sized by demand up to GOMAXPROCS-sized jobs (an explicit Par.Workers
// above GOMAXPROCS grows it, preserving the old "up to N goroutines"
// contract that sleep-bound tests rely on). QuiesceScheduler parks nothing
// — it stops every pool worker and waits for them to exit, which is what a
// draining daemon calls so the process leaves no goroutines behind; the
// next parallel fragment restarts the pool transparently.
package exec

import (
	"context"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"voodoo/internal/faultinject"
	"voodoo/internal/kernel"
	"voodoo/internal/metrics"
)

// DefaultMorsel is the default morsel size in work items. Items are
// nanosecond-scale, so 16K items keeps a morsel in the tens of
// microseconds: coarse enough that the ticket-counter atomics and the
// per-morsel bookkeeping disappear in the noise, fine enough that a
// GOMAXPROCS-wide pool balances even a fragment whose cost is concentrated
// in one narrow range of work items.
const DefaultMorsel = 16384

// Par are the per-run parallelism knobs of the executor.
type Par struct {
	// Workers caps the goroutines executing one fragment, the submitting
	// goroutine included (0 = GOMAXPROCS). Values above GOMAXPROCS grow
	// the shared pool, preserving the historical Run contract.
	Workers int
	// Morsel is the scheduling granularity in work items (0 =
	// DefaultMorsel). Results are bit-identical for every value; the knob
	// trades scheduling overhead (small morsels) against skew absorption
	// (large morsels).
	Morsel int
	// Spec selects how much fragment specialization applies (see
	// SpecMode). Results are bit-identical across every mode; SpecializeOff
	// is the -no-specialize escape hatch and the differential-test oracle.
	Spec SpecMode
}

// norm resolves the zero values.
func (p Par) norm() Par {
	if p.Workers <= 0 {
		p.Workers = gomaxprocs()
	}
	if p.Morsel <= 0 {
		p.Morsel = DefaultMorsel
	}
	if p.Spec == SpecializeAuto && specDefaultOff.Load() {
		p.Spec = SpecializeOff
	}
	return p
}

// Scheduler observability: morsel throughput, pool-saturation wait, and a
// per-fragment imbalance histogram (1.0 = perfectly balanced; the bucket
// bounds are ratios of the busiest participant's morsel count to an even
// share). All three are cheap: one atomic add per morsel, one clock read
// per helper attach, one histogram observation per parallel fragment.
var (
	morselsTotal = metrics.NewCounter("voodoo_morsels_total",
		"Morsels claimed and executed by the shared worker pool.")
	morselWaitNS = metrics.NewCounter("voodoo_morsel_wait_ns",
		"Cumulative nanoseconds between a fragment's publication and each pool worker's first morsel claim on it — a pool saturation signal.")
	fragImbalance = metrics.NewHistogram("voodoo_fragment_imbalance",
		"Per parallel fragment: busiest participant's morsel count over an even share (1 = balanced).",
		[]float64{1, 1.1, 1.25, 1.5, 2, 3, 5, 8})
)

// sched is the process-wide scheduler instance.
var sched = newScheduler()

// scheduler is the persistent worker pool plus the queue of published jobs.
type scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	jobs    []*job // published jobs that may still have unclaimed morsels
	workers int    // pool goroutines alive (serving or parked)
	idle    int    // pool goroutines parked on cond
	active  int    // jobs published and not yet withdrawn
	quiesce bool   // workers exit instead of parking; no helpers attach
}

func newScheduler() *scheduler {
	s := &scheduler{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// SchedStats is a point-in-time snapshot of the shared worker pool, for
// goroutine accounting (the chaos harness asserts Workers == 0 after a
// quiesced drain and ActiveJobs == 0 after any drain).
type SchedStats struct {
	Workers    int   // pool goroutines alive (parked or serving)
	Idle       int   // pool goroutines parked waiting for work
	ActiveJobs int   // fragments currently published to the pool
	Morsels    int64 // morsels executed through the pool since process start
}

// SchedulerStats snapshots the shared pool.
func SchedulerStats() SchedStats {
	sched.mu.Lock()
	defer sched.mu.Unlock()
	return SchedStats{
		Workers:    sched.workers,
		Idle:       sched.idle,
		ActiveJobs: sched.active,
		Morsels:    morselsTotal.Value(),
	}
}

// QuiesceScheduler stops every pool worker and waits for them to exit.
// In-flight fragments finish correctly — their submitting goroutines keep
// claiming morsels — they just lose pool help for the moment. The pool
// restarts lazily at the next parallel fragment, so quiescing is safe at
// any time; a draining daemon calls it last so the process exits without
// leaked scheduler goroutines.
func QuiesceScheduler() {
	s := sched
	s.mu.Lock()
	s.quiesce = true
	s.cond.Broadcast()
	for s.workers > 0 {
		s.cond.Wait()
	}
	s.quiesce = false
	s.mu.Unlock()
}

func init() {
	metrics.NewGaugeFunc("voodoo_sched_workers",
		"Worker goroutines in the shared morsel pool (parked or serving).",
		func() float64 { return float64(SchedulerStats().Workers) })
	metrics.NewGaugeFunc("voodoo_sched_active_jobs",
		"Fragments currently published to the shared morsel pool.",
		func() float64 { return float64(SchedulerStats().ActiveJobs) })
}

// job is one parallel fragment published to the pool: an atomic ticket
// counter over ceil(extent/morsel) morsels, claimed by the submitting
// goroutine and up to maxHelpers pool workers.
type job struct {
	f      *kernel.Fragment
	env    *Env
	nregs  kernel.Reg
	count  bool
	ctx    context.Context
	morsel int
	// spec is the fragment's resolved execution path; every participant
	// (submitter and helpers) runs the same code.
	spec specAssign
	// nMorsels is the ticket space; next is the claim counter.
	nMorsels int64
	next     atomic.Int64
	// stop aborts the job: claims stop being handed out and running
	// workers bail at their next checkpoint (same cadence as before).
	stop       atomic.Bool
	published  time.Time
	maxHelpers int
	helpers    int            // pool workers ever attached; guarded by sched.mu
	wg         sync.WaitGroup // attached helpers still running

	mu       sync.Mutex
	firstErr error
	parts    []partial
}

// partial is one participant's share of a job, for deterministic stats
// merging (ordered by first claimed morsel) and imbalance accounting.
type partial struct {
	first   int64 // first morsel this participant claimed
	morsels int   // morsels it executed
	stats   FragStats
}

// claim hands out the next morsel index, or -1 when the job is exhausted
// or aborted. The morsel-claim boundary is a fault-injection point.
func (j *job) claim() int64 {
	if j.stop.Load() {
		return -1
	}
	t := j.next.Add(1) - 1
	if t >= j.nMorsels {
		return -1
	}
	morselsTotal.Inc()
	return t
}

// fail aborts the job with err; the first real failure wins and sibling
// aborts (errAborted) are never surfaced.
func (j *job) fail(err error) {
	j.stop.Store(true)
	j.mu.Lock()
	if j.firstErr == nil && err != errAborted {
		j.firstErr = err
	}
	j.mu.Unlock()
}

// runMorsels is the claim loop every participant runs: claim a ticket,
// execute its work-item range under panic isolation, repeat. The worker w
// accumulates stats across all morsels it executes; the per-participant
// partial is attached to the job at the end.
func (j *job) runMorsels(w *worker, isHelper bool) {
	p := partial{first: -1}
	for {
		m := j.claim()
		if m < 0 {
			break
		}
		if p.first < 0 {
			p.first = m
			if isHelper {
				morselWaitNS.Add(time.Since(j.published).Nanoseconds())
			}
		}
		p.morsels++
		lo := int(m) * j.morsel
		hi := min(lo+j.morsel, j.f.Extent)
		err := protect(j.f.Name, func() error {
			faultinject.MorselClaim(j.f.Name, int(m))
			return w.run(lo, hi)
		})
		if err != nil {
			j.fail(err)
			break
		}
	}
	if p.morsels > 0 {
		p.stats = w.stats
		j.mu.Lock()
		j.parts = append(j.parts, p)
		j.mu.Unlock()
	}
	w.release()
}

// publish enqueues j and makes sure enough pool workers exist to help.
// The pool grows on demand and never shrinks outside QuiesceScheduler;
// parked workers cost nothing but a goroutine's stack.
func (s *scheduler) publish(j *job) {
	s.mu.Lock()
	j.published = time.Now()
	s.jobs = append(s.jobs, j)
	s.active++
	if !s.quiesce {
		for s.workers < j.maxHelpers {
			s.workers++
			go s.workerLoop()
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// withdraw removes j from the queue so no further helper attaches; after
// it returns, j.wg.Wait() covers every helper that will ever touch j.
func (s *scheduler) withdraw(j *job) {
	s.mu.Lock()
	for i, q := range s.jobs {
		if q == j {
			s.jobs = append(s.jobs[:i], s.jobs[i+1:]...)
			break
		}
	}
	s.active--
	s.mu.Unlock()
}

// pick selects a published job that still has unclaimed morsels and helper
// capacity. Called with s.mu held.
func (s *scheduler) pick() *job {
	for _, j := range s.jobs {
		if j.helpers < j.maxHelpers && !j.stop.Load() && j.next.Load() < j.nMorsels {
			return j
		}
	}
	return nil
}

// workerLoop is one pool goroutine: serve jobs while there are any, park
// when there are none, exit when the scheduler quiesces.
func (s *scheduler) workerLoop() {
	s.mu.Lock()
	//lint:ignore checkpointloop dispatch loop: it parks on the condvar and exits on quiesce; morsel cancellation is the claim loop inside runMorsels
	for {
		if !s.quiesce {
			if j := s.pick(); j != nil {
				j.helpers++
				j.wg.Add(1)
				s.mu.Unlock()
				w := newWorker(j.ctx, j.f, j.env, j.nregs, j.count, &j.stop, j.spec)
				// CPU profiles served from /debug/pprof attribute helper
				// samples to the fragment being executed.
				pprof.Do(j.ctx, pprof.Labels("fragment", j.f.Name), func(context.Context) {
					j.runMorsels(w, true)
				})
				j.wg.Done()
				s.mu.Lock()
				continue
			}
		}
		if s.quiesce {
			s.workers--
			s.cond.Broadcast() // wake the QuiesceScheduler waiter
			s.mu.Unlock()
			return
		}
		s.idle++
		s.cond.Wait()
		s.idle--
	}
}

// runMorselParallel executes one non-sequential fragment through the
// shared pool: the submitting goroutine claims morsels itself (so progress
// never depends on pool availability) while up to par.Workers-1 pool
// workers join it. Caller guarantees par is normalized, par.Workers > 1
// and the fragment spans more than one morsel.
func runMorselParallel(ctx context.Context, f *kernel.Fragment, env *Env, par Par, nregs kernel.Reg, spec specAssign, fs *FragStats) error {
	nMorsels := int64((f.Extent + par.Morsel - 1) / par.Morsel)
	j := &job{
		f: f, env: env, nregs: nregs, count: fs != nil, ctx: ctx,
		morsel: par.Morsel, nMorsels: nMorsels, spec: spec,
	}
	// The submitter occupies one worker slot; helpers beyond the morsel
	// count could never claim anything.
	j.maxHelpers = min(par.Workers-1, int(nMorsels)-1)
	if j.maxHelpers > 0 {
		sched.publish(j)
	}

	w := newWorker(ctx, f, env, nregs, fs != nil, &j.stop, spec)
	// Label the submitter's share too, so profiles attribute parallel
	// fragment execution per fragment regardless of who claims the morsel.
	pprof.Do(ctx, pprof.Labels("fragment", f.Name), func(context.Context) {
		j.runMorsels(w, false)
	})

	if j.maxHelpers > 0 {
		sched.withdraw(j)
	}
	j.wg.Wait()

	// Merge measurement partials in first-claimed-morsel order: the counts
	// are additive so any order yields the same totals, but a fixed order
	// makes traces reproducible run to run.
	j.mu.Lock()
	parts := j.parts
	j.mu.Unlock()
	sort.Slice(parts, func(a, b int) bool { return parts[a].first < parts[b].first })
	busiest := 0
	for i := range parts {
		if parts[i].morsels > busiest {
			busiest = parts[i].morsels
		}
		if fs != nil {
			fs.merge(&parts[i].stats)
		}
	}
	imb := 1.0
	if len(parts) > 0 && nMorsels > 0 {
		imb = float64(busiest) * float64(len(parts)) / float64(nMorsels)
	}
	fragImbalance.Observe(imb)
	if fs != nil {
		fs.Workers = len(parts)
		fs.Morsels = int(nMorsels)
		fs.Imbalance = imb
	}
	return j.firstErr
}
