package exec

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"voodoo/internal/faultinject"
	"voodoo/internal/kernel"
	"voodoo/internal/vector"
)

// busyKernel builds nfrags fragments that each run n work items of a few
// int ops over extent-parallel workers.
func busyKernel(n, nfrags int) *kernel.Kernel {
	k := &kernel.Kernel{}
	in := k.AddBuf(kernel.BufDecl{Name: "in", Kind: vector.Int, Size: n, Input: true})
	out := k.AddBuf(kernel.BufDecl{Name: "out", Kind: vector.Int, Size: n})
	r0, r1 := kernel.FirstFree, kernel.FirstFree+1
	names := []string{"f0", "f1", "f2", "f3", "f4", "f5", "f6", "f7"}
	for i := 0; i < nfrags; i++ {
		k.Frags = append(k.Frags, &kernel.Fragment{
			Name: names[i], Extent: n, Intent: 1, N: n,
			Loops: []kernel.Loop{{Body: []kernel.Instr{
				{Op: kernel.ILoad, Dst: r0, A: kernel.RegIdx, Buf: in, Seq: true},
				{Op: kernel.IBin, BOp: kernel.BAdd, Dst: r1, A: r0, B: r0},
				{Op: kernel.IStore, A: kernel.RegIdx, B: r1, Buf: out, Seq: true},
			}}},
		})
	}
	return k
}

func bindIn(t *testing.T, k *kernel.Kernel, env *Env, n int) {
	t.Helper()
	if err := env.Bind(k, "in", &Buffer{Kind: vector.Int, I: make([]int64, n)}); err != nil {
		t.Fatal(err)
	}
}

func TestCancelledContextAbortsBeforeWork(t *testing.T) {
	k := busyKernel(1024, 1)
	env := NewEnv(k)
	bindIn(t, k, env, 1024)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := RunContext(ctx, k, env, 4, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCancelAbortsMultiFragmentRunEarly cancels the context from inside
// the first fragment's loop and asserts the run stops with
// context.Canceled before the later fragments start.
func TestCancelAbortsMultiFragmentRunEarly(t *testing.T) {
	n := 1 << 16
	k := busyKernel(n, 4)
	env := NewEnv(k)
	bindIn(t, k, env, n)

	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	faultinject.With(t, faultinject.Hooks{
		FragmentStart: func(frag string) { started.Add(1) },
		Item: func(frag string, gid int) {
			if frag == "f0" && gid > 0 {
				cancel()
			}
		},
	})
	err := RunContext(ctx, k, env, 4, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := started.Load(); got != 1 {
		t.Fatalf("%d fragments started, want only f0", got)
	}
}

func TestDeadlineLimitExpires(t *testing.T) {
	// Slow the loop down so the deadline trips mid-fragment. Install the
	// hooks first: With may wait for other hook-setting tests, and the
	// deadline below must not start ticking until the lock is held.
	faultinject.With(t, faultinject.Hooks{
		Item: func(frag string, gid int) { time.Sleep(3 * time.Millisecond) },
	})
	n := 1 << 12
	k := busyKernel(n, 1)
	env, err := NewEnvLimited(k, Limits{Deadline: time.Now().Add(5 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	bindIn(t, k, env, n)
	if err := RunContext(context.Background(), k, env, 2, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestPanicIsolatedToPanicError injects a panic mid-fragment in a worker
// goroutine and asserts the process survives with a *PanicError naming
// the fragment (run under -race in CI).
func TestPanicIsolatedToPanicError(t *testing.T) {
	n := 1 << 16
	k := busyKernel(n, 2)
	env := NewEnv(k)
	bindIn(t, k, env, n)
	faultinject.With(t, faultinject.Hooks{
		Item: func(frag string, gid int) {
			if frag == "f1" {
				panic("injected kernel bug")
			}
		},
	})
	err := RunContext(context.Background(), k, env, 4, nil)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Fragment != "f1" {
		t.Errorf("panic attributed to %q, want f1", pe.Fragment)
	}
	if pe.Value != "injected kernel bug" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "faultinject") {
		t.Errorf("stack does not show the panic site:\n%s", pe.Stack)
	}
}

func TestPanicIsolatedSequentialFragment(t *testing.T) {
	k := &kernel.Kernel{}
	in := k.AddBuf(kernel.BufDecl{Name: "in", Kind: vector.Int, Size: 8, Input: true})
	k.Frags = append(k.Frags, &kernel.Fragment{
		Name: "seq", Extent: 1, Intent: 8, N: 8,
		Loops: []kernel.Loop{{Body: []kernel.Instr{
			{Op: kernel.ILoad, Dst: kernel.FirstFree, A: kernel.RegIdx, Buf: in, Seq: true},
		}}},
	})
	env := NewEnv(k)
	bindIn(t, k, env, 8)
	faultinject.With(t, faultinject.Hooks{
		Item: func(frag string, gid int) { panic("seq bug") },
	})
	err := RunContext(context.Background(), k, env, 1, nil)
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Fragment != "seq" {
		t.Fatalf("err = %v, want *PanicError in seq", err)
	}
}

// TestParallelStopsAfterFailure checks that once one worker fails, the
// sibling workers abort at their next checkpoint instead of running their
// chunks to completion: with one worker panicking immediately and every
// other checkpoint sleeping, a full run would take minutes.
func TestParallelStopsAfterFailure(t *testing.T) {
	n := 1 << 20
	k := busyKernel(n, 1)
	env := NewEnv(k)
	bindIn(t, k, env, n)
	faultinject.With(t, faultinject.Hooks{
		Item: func(frag string, gid int) {
			if gid == 0 {
				panic("first chunk fails")
			}
			time.Sleep(time.Millisecond)
		},
	})
	start := time.Now()
	err := RunContext(context.Background(), k, env, 4, nil)
	elapsed := time.Since(start)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	// Each surviving worker has ~256 checkpoints in its chunk; without
	// the abort the sleeps alone would exceed 750ms.
	if elapsed > 750*time.Millisecond {
		t.Fatalf("run took %v; sibling workers did not abort after failure", elapsed)
	}
}

func TestResourceGovernorMaxBytes(t *testing.T) {
	k := busyKernel(1024, 1) // wants a 1024-slot output buffer = 8KiB
	if _, err := NewEnvLimited(k, Limits{MaxBytes: 4096}); !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("err = %v, want ErrResourceExhausted", err)
	}
	env, err := NewEnvLimited(k, Limits{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	bindIn(t, k, env, 1024)
	if err := RunContext(context.Background(), k, env, 2, nil); err != nil {
		t.Fatalf("within budget: %v", err)
	}
}

func TestResourceGovernorMaxExtent(t *testing.T) {
	k := busyKernel(1024, 1)
	env, err := NewEnvLimited(k, Limits{MaxExtent: 512})
	if err != nil {
		t.Fatal(err)
	}
	bindIn(t, k, env, 1024)
	if err := RunContext(context.Background(), k, env, 2, nil); !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("err = %v, want ErrResourceExhausted", err)
	}
}

func TestInjectedAllocFailure(t *testing.T) {
	boom := errors.New("injected alloc failure")
	faultinject.With(t, faultinject.Hooks{
		Alloc: func(bytes int64) error { return boom },
	})
	k := busyKernel(16, 1)
	if _, err := NewEnvLimited(k, Limits{}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected failure", err)
	}
}

func TestBindKindMismatch(t *testing.T) {
	k := busyKernel(4, 1) // declares "in" as an int buffer
	env := NewEnv(k)
	err := env.Bind(k, "in", &Buffer{Kind: vector.Float, F: make([]float64, 4)})
	if err == nil {
		t.Fatal("binding a float buffer to an int declaration succeeded")
	}
	if !strings.Contains(err.Error(), "declaration wants") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestRunUnchangedWithoutLimits(t *testing.T) {
	// The old entry points still work and still compute the right thing.
	k := busyKernel(128, 1)
	env := NewEnv(k)
	vals := make([]int64, 128)
	for i := range vals {
		vals[i] = int64(i)
	}
	if err := env.Bind(k, "in", &Buffer{Kind: vector.Int, I: vals}); err != nil {
		t.Fatal(err)
	}
	if err := Run(k, env, 3, nil); err != nil {
		t.Fatal(err)
	}
	for i, v := range env.Bufs[1].I {
		if v != int64(2*i) {
			t.Fatalf("out[%d] = %d, want %d", i, v, 2*i)
		}
	}
}
