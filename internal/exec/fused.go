// Fused fast paths: single hand-fused closures for the hottest fragment
// shapes (see specialize.go for the layer overview). Each matcher is
// deliberately conservative — anything that does not match exactly falls
// back to batch primitives or the interpreter — and each runner pre-flights
// its buffer bounds once, delegating to the interpreter when a bound could
// fail mid-run so error reporting stays identical.
package exec

import (
	"voodoo/internal/kernel"
)

// matchFused tries the fused shape matchers in specificity order and
// returns the runner plus whether its event counts are exact (countable).
func matchFused(f *kernel.Fragment) (fusedRunner, bool) {
	if fr, countable := matchFusedFold(f); fr != nil {
		return fr, countable
	}
	if fr := matchFusedSelect(f); fr != nil {
		return fr, true
	}
	if fr := matchFusedMap(f); fr != nil {
		return fr, true
	}
	return nil, false
}

// flatLane reports whether the fragment is a flat one-iteration-per-item
// loop with idx == gid: no prologue, epilogue or scratch, a single loop
// running exactly once per work item.
func flatLane(f *kernel.Fragment) bool {
	if f.Locals != 0 || len(f.Pre) != 0 || len(f.Post) != 0 || len(f.PostLoopBody) != 0 {
		return false
	}
	if len(f.Loops) != 1 {
		return false
	}
	l := f.Loops[0]
	if l.BoundReg > 0 {
		return false
	}
	bound := l.Bound
	if bound <= 0 {
		bound = f.Intent
	}
	if bound != 1 {
		return false
	}
	return f.Intent == 1 || f.Strided
}

// splitConsts separates a leading run of constant loads from the rest of
// the body, returning their values per register. Constants interleaved
// with the core sequence defeat the match (nil core) so a mid-sequence
// redefinition can never change meaning.
func splitConsts(body []kernel.Instr) (ci map[kernel.Reg]int64, cf map[kernel.Reg]float64, core []kernel.Instr) {
	ci = map[kernel.Reg]int64{}
	cf = map[kernel.Reg]float64{}
	i := 0
	for ; i < len(body); i++ {
		if body[i].Op == kernel.IConstI {
			ci[body[i].Dst] = body[i].Imm
		} else if body[i].Op == kernel.IConstF {
			cf[body[i].Dst] = body[i].FImm
		} else {
			break
		}
	}
	for _, in := range body[i:] {
		if in.Op == kernel.IConstI || in.Op == kernel.IConstF {
			return nil, nil, nil
		}
	}
	return ci, cf, body[i:]
}

// matchFusedSelect recognizes the canonical branching selection —
// load → compare-against-constant → guard → store — over the integer
// domain with sequential accesses.
func matchFusedSelect(f *kernel.Fragment) fusedRunner {
	if !flatLane(f) {
		return nil
	}
	ci, _, core := splitConsts(f.Loops[0].Body)
	if len(core) != 4 {
		return nil
	}
	ld, cmp, grd, st := core[0], core[1], core[2], core[3]
	if ld.Op != kernel.ILoad || ld.Float || !ld.Seq || ld.A != kernel.RegIdx {
		return nil
	}
	v := ld.Dst
	if cmp.Op != kernel.IBin || cmp.Float || cmp.A != v {
		return nil
	}
	k, isConst := ci[cmp.B]
	if !isConst {
		return nil
	}
	switch cmp.BOp {
	case kernel.BGt, kernel.BGe, kernel.BEq:
	default:
		return nil
	}
	if grd.Op != kernel.IGuard || grd.A != cmp.Dst {
		return nil
	}
	if st.Op != kernel.IStore || st.Float || !st.Seq || st.A != kernel.RegIdx || st.C > 0 {
		return nil
	}
	storeV := st.B == v
	storeK, isStoreConst := ci[st.B]
	if !storeV && !isStoreConst {
		return nil
	}
	inBuf, outBuf, op := ld.Buf, st.Buf, cmp.BOp
	return func(w *worker, lo, hi int) error {
		f := w.f
		if f.N > 0 && hi > f.N {
			hi = f.N
		}
		in, out := w.env.Bufs[inBuf], w.env.Bufs[outBuf]
		if hi > in.Len() || hi > out.Len() {
			// A bound would fail mid-run; the interpreter reports it with
			// the exact index and side-effect order.
			return w.runInterp(lo, hi)
		}
		ov := out.Valid
		for base := lo; base < hi; base += specBatchN {
			n := min(specBatchN, hi-base)
			if w.checks {
				if err := w.tickN(n); err != nil {
					return err
				}
			}
			seg := in.I[base : base+n]
			var pass int64
			switch op {
			case kernel.BGt:
				for i, v := range seg {
					if v > k {
						sv := v
						if !storeV {
							sv = storeK
						}
						out.I[base+i] = sv
						if ov != nil {
							ov[base+i] = true
						}
						pass++
					}
				}
			case kernel.BGe:
				for i, v := range seg {
					if v >= k {
						sv := v
						if !storeV {
							sv = storeK
						}
						out.I[base+i] = sv
						if ov != nil {
							ov[base+i] = true
						}
						pass++
					}
				}
			case kernel.BEq:
				for i, v := range seg {
					if v == k {
						sv := v
						if !storeV {
							sv = storeK
						}
						out.I[base+i] = sv
						if ov != nil {
							ov[base+i] = true
						}
						pass++
					}
				}
			}
			if w.count {
				nn := int64(n)
				w.stats.Items += nn
				w.stats.IntOps += nn
				w.stats.Guards += nn
				w.stats.GuardsPass += pass
				w.stats.SeqBytes += 8*nn + 8*pass
				w.stats.StoreBytes += 8 * pass
				if ov != nil {
					w.stats.StoreBytes += pass
				}
			}
		}
		return nil
	}
}

// matchFusedMap recognizes the canonical map — load → one binary op with a
// constant → store — in either domain with sequential accesses.
func matchFusedMap(f *kernel.Fragment) fusedRunner {
	if !flatLane(f) {
		return nil
	}
	ci, cf, core := splitConsts(f.Loops[0].Body)
	if len(core) != 3 {
		return nil
	}
	ld, bin, st := core[0], core[1], core[2]
	if ld.Op != kernel.ILoad || !ld.Seq || ld.A != kernel.RegIdx {
		return nil
	}
	if bin.Op != kernel.IBin || bin.Float != ld.Float || bin.A != ld.Dst {
		return nil
	}
	if st.Op != kernel.IStore || st.Float != ld.Float || !st.Seq ||
		st.A != kernel.RegIdx || st.B != bin.Dst || st.C > 0 {
		return nil
	}
	switch bin.BOp {
	case kernel.BAdd, kernel.BSub, kernel.BMul, kernel.BMin, kernel.BMax,
		kernel.BGt, kernel.BGe, kernel.BEq:
	default:
		return nil // trapping or rare operators take the batch path
	}
	inBuf, outBuf, op := ld.Buf, st.Buf, bin.BOp
	if ld.Float {
		k, isConst := cf[bin.B]
		if !isConst {
			return nil
		}
		return func(w *worker, lo, hi int) error {
			f := w.f
			if f.N > 0 && hi > f.N {
				hi = f.N
			}
			in, out := w.env.Bufs[inBuf], w.env.Bufs[outBuf]
			if hi > in.Len() || hi > out.Len() {
				return w.runInterp(lo, hi)
			}
			for base := lo; base < hi; base += specBatchN {
				n := min(specBatchN, hi-base)
				if w.checks {
					if err := w.tickN(n); err != nil {
						return err
					}
				}
				seg := in.F[base : base+n]
				dst := out.F[base : base+n]
				switch op {
				case kernel.BAdd:
					for i, v := range seg {
						dst[i] = v + k
					}
				case kernel.BSub:
					for i, v := range seg {
						dst[i] = v - k
					}
				case kernel.BMul:
					for i, v := range seg {
						dst[i] = v * k
					}
				case kernel.BMin:
					for i, v := range seg {
						dst[i] = min(v, k)
					}
				case kernel.BMax:
					for i, v := range seg {
						dst[i] = max(v, k)
					}
				case kernel.BGt:
					for i, v := range seg {
						dst[i] = float64(b2i(v > k))
					}
				case kernel.BGe:
					for i, v := range seg {
						dst[i] = float64(b2i(v >= k))
					}
				case kernel.BEq:
					for i, v := range seg {
						dst[i] = float64(b2i(v == k))
					}
				}
				fusedMapFinish(w, out, base, n, true)
			}
			return nil
		}
	}
	k, isConst := ci[bin.B]
	if !isConst {
		return nil
	}
	return func(w *worker, lo, hi int) error {
		f := w.f
		if f.N > 0 && hi > f.N {
			hi = f.N
		}
		in, out := w.env.Bufs[inBuf], w.env.Bufs[outBuf]
		if hi > in.Len() || hi > out.Len() {
			return w.runInterp(lo, hi)
		}
		for base := lo; base < hi; base += specBatchN {
			n := min(specBatchN, hi-base)
			if w.checks {
				if err := w.tickN(n); err != nil {
					return err
				}
			}
			seg := in.I[base : base+n]
			dst := out.I[base : base+n]
			switch op {
			case kernel.BAdd:
				for i, v := range seg {
					dst[i] = v + k
				}
			case kernel.BSub:
				for i, v := range seg {
					dst[i] = v - k
				}
			case kernel.BMul:
				for i, v := range seg {
					dst[i] = v * k
				}
			case kernel.BMin:
				for i, v := range seg {
					dst[i] = min(v, k)
				}
			case kernel.BMax:
				for i, v := range seg {
					dst[i] = max(v, k)
				}
			case kernel.BGt:
				for i, v := range seg {
					dst[i] = b2i(v > k)
				}
			case kernel.BGe:
				for i, v := range seg {
					dst[i] = b2i(v >= k)
				}
			case kernel.BEq:
				for i, v := range seg {
					dst[i] = b2i(v == k)
				}
			}
			fusedMapFinish(w, out, base, n, false)
		}
		return nil
	}
}

// fusedMapFinish marks the stored range valid and counts one map chunk:
// one ALU op, one sequential load and one sequential store per element.
func fusedMapFinish(w *worker, out *Buffer, base, n int, float bool) {
	if out.Valid != nil {
		ov := out.Valid[base : base+n]
		for i := range ov {
			ov[i] = true
		}
	}
	if !w.count {
		return
	}
	nn := int64(n)
	w.stats.Items += nn
	if float {
		w.stats.FloatOps += nn
	} else {
		w.stats.IntOps += nn
	}
	w.stats.SeqBytes += 16 * nn
	w.stats.StoreBytes += 8 * nn
	if out.Valid != nil {
		w.stats.StoreBytes += nn
	}
}

// matchFusedFold recognizes the FoldSum/FoldMin/FoldMax accumulate loop:
// Pre seeds an accumulator with a constant, the single intent-bounded loop
// loads in[idx] and combines it into the accumulator, Post stores the
// accumulator at gid. Covers global folds (Extent 1) and grouped/windowed
// folds (Extent = runs), blocked or strided.
func matchFusedFold(f *kernel.Fragment) (fusedRunner, bool) {
	if f.Locals != 0 || len(f.PostLoopBody) != 0 || len(f.Loops) != 1 || f.Intent <= 1 {
		return nil, false
	}
	l := f.Loops[0]
	if l.Bound > 0 || l.BoundReg > 0 {
		return nil, false
	}
	if len(f.Pre) != 1 || len(l.Body) != 2 || len(f.Post) != 1 {
		return nil, false
	}
	pre, ld, bin, st := f.Pre[0], l.Body[0], l.Body[1], f.Post[0]
	float := pre.Op == kernel.IConstF
	if !float && pre.Op != kernel.IConstI {
		return nil, false
	}
	acc := pre.Dst
	if ld.Op != kernel.ILoad || ld.Float != float || ld.A != kernel.RegIdx {
		return nil, false
	}
	if bin.Op != kernel.IBin || bin.Float != float || bin.Dst != acc || bin.A != acc || bin.B != ld.Dst {
		return nil, false
	}
	switch bin.BOp {
	case kernel.BAdd, kernel.BMin, kernel.BMax:
	default:
		return nil, false
	}
	if st.Op != kernel.IStore || st.Float != float || st.A != kernel.RegGID || st.B != acc || st.C > 0 {
		return nil, false
	}
	countable := ld.Seq && st.Seq
	inBuf, outBuf, op := ld.Buf, st.Buf, bin.BOp
	initI, initF := pre.Imm, pre.FImm
	runner := func(w *worker, lo, hi int) error {
		f := w.f
		in, out := w.env.Bufs[inBuf], w.env.Bufs[outBuf]
		// effN bounds the global element index exactly as the loop's N
		// guard would; if any touched index could still escape the input
		// (or any gid the output), the interpreter handles the range.
		effN := f.Extent * f.Intent
		if f.N > 0 && f.N < effN {
			effN = f.N
		}
		if effN > in.Len() || hi > out.Len() {
			return w.runInterp(lo, hi)
		}
		seqLd, seqSt := ld.Seq, st.Seq
		for gid := lo; gid < hi; gid++ {
			var it int
			if f.Strided {
				if gid < effN {
					it = (effN-1-gid)/f.Extent + 1
				}
			} else {
				start := gid * f.Intent
				it = min(max(effN-start, 0), f.Intent)
			}
			if w.checks {
				// One tick for the work item itself, like the interpreter's
				// outer loop.
				if err := w.tickN(1); err != nil {
					return err
				}
			}
			accI, accF := initI, initF
			if f.Strided {
				ix := gid
				done := 0
				for done < it {
					m := min(specBatchN, it-done)
					if w.checks {
						if err := w.tickN(m); err != nil {
							return err
						}
					}
					if float {
						switch op {
						case kernel.BAdd:
							for c := 0; c < m; c++ {
								accF += in.F[ix]
								ix += f.Extent
							}
						case kernel.BMin:
							for c := 0; c < m; c++ {
								accF = min(accF, in.F[ix])
								ix += f.Extent
							}
						case kernel.BMax:
							for c := 0; c < m; c++ {
								accF = max(accF, in.F[ix])
								ix += f.Extent
							}
						}
					} else {
						switch op {
						case kernel.BAdd:
							for c := 0; c < m; c++ {
								accI += in.I[ix]
								ix += f.Extent
							}
						case kernel.BMin:
							for c := 0; c < m; c++ {
								accI = min(accI, in.I[ix])
								ix += f.Extent
							}
						case kernel.BMax:
							for c := 0; c < m; c++ {
								accI = max(accI, in.I[ix])
								ix += f.Extent
							}
						}
					}
					done += m
				}
			} else {
				start := gid * f.Intent
				done := 0
				for done < it {
					m := min(specBatchN, it-done)
					if w.checks {
						if err := w.tickN(m); err != nil {
							return err
						}
					}
					if float {
						seg := in.F[start+done : start+done+m]
						switch op {
						case kernel.BAdd:
							for _, v := range seg {
								accF += v
							}
						case kernel.BMin:
							for _, v := range seg {
								accF = min(accF, v)
							}
						case kernel.BMax:
							for _, v := range seg {
								accF = max(accF, v)
							}
						}
					} else {
						seg := in.I[start+done : start+done+m]
						switch op {
						case kernel.BAdd:
							for _, v := range seg {
								accI += v
							}
						case kernel.BMin:
							for _, v := range seg {
								accI = min(accI, v)
							}
						case kernel.BMax:
							for _, v := range seg {
								accI = max(accI, v)
							}
						}
					}
					done += m
				}
			}
			if float {
				out.F[gid] = accF
			} else {
				out.I[gid] = accI
			}
			if out.Valid != nil {
				out.Valid[gid] = true
			}
			if w.count {
				itn := int64(it)
				w.stats.Items += itn
				if float {
					w.stats.FloatOps += itn
				} else {
					w.stats.IntOps += itn
				}
				if seqLd {
					w.stats.SeqBytes += 8 * itn
				}
				w.stats.StoreBytes += 8
				if out.Valid != nil {
					w.stats.StoreBytes++
				}
				if seqSt {
					w.stats.SeqBytes += 8
				}
			}
		}
		return nil
	}
	return runner, countable
}
