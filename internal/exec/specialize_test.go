package exec

import (
	"context"
	"errors"
	"math"
	"testing"

	"voodoo/internal/kernel"
	"voodoo/internal/vector"
)

// specKernel is one differential case: a kernel builder plus its inputs.
// Builders return fresh kernels so each mode run starts from an
// uncompiled fragment cache where the test wants that.
type specKernel struct {
	name  string
	build func() *kernel.Kernel
	in    map[string]*Buffer
}

// selectKernel is the canonical TPC-H selection shape the fused path
// targets: load → compare against a constant → guard → store.
func selectKernel(n int, cut int64) *kernel.Kernel {
	k := &kernel.Kernel{}
	in := k.AddBuf(kernel.BufDecl{Name: "in", Kind: vector.Int, Size: n, Input: true})
	out := k.AddBuf(kernel.BufDecl{Name: "out", Kind: vector.Int, Size: n})
	rc, r0, r1 := kernel.FirstFree, kernel.FirstFree+1, kernel.FirstFree+2
	k.Frags = append(k.Frags, &kernel.Fragment{
		Name: "sel", Extent: n, Intent: 1, N: n,
		Prov: kernel.Prov{Kind: "select"},
		Loops: []kernel.Loop{{Body: []kernel.Instr{
			{Op: kernel.IConstI, Dst: rc, Imm: cut},
			{Op: kernel.ILoad, Dst: r0, A: kernel.RegIdx, Buf: in, Seq: true},
			{Op: kernel.IBin, BOp: kernel.BGt, Dst: r1, A: r0, B: rc},
			{Op: kernel.IGuard, A: r1},
			{Op: kernel.IStore, A: kernel.RegIdx, B: r0, Buf: out, Seq: true},
		}}},
	})
	return k
}

// mapFloatKernel is the fused map shape in the float domain.
func mapFloatKernel(n int) *kernel.Kernel {
	k := &kernel.Kernel{}
	in := k.AddBuf(kernel.BufDecl{Name: "in", Kind: vector.Float, Size: n, Input: true})
	out := k.AddBuf(kernel.BufDecl{Name: "out", Kind: vector.Float, Size: n})
	rc, r0, r1 := kernel.FirstFree, kernel.FirstFree+1, kernel.FirstFree+2
	k.Frags = append(k.Frags, &kernel.Fragment{
		Name: "mapf", Extent: n, Intent: 1, N: n,
		Loops: []kernel.Loop{{Body: []kernel.Instr{
			{Op: kernel.IConstF, Dst: rc, FImm: 1.5, Float: true},
			{Op: kernel.ILoad, Dst: r0, A: kernel.RegIdx, Buf: in, Seq: true, Float: true},
			{Op: kernel.IBin, BOp: kernel.BMul, Dst: r1, A: r0, B: rc, Float: true},
			{Op: kernel.IStore, A: kernel.RegIdx, B: r1, Buf: out, Seq: true, Float: true},
		}}},
	})
	return k
}

// foldKernel is the fused fold shape: Pre seeds an accumulator, the loop
// accumulates with op, Post stores one partial per work item. With
// strided set, lane g visits g, g+extent, ...; otherwise runs are
// blocked. n need not divide evenly (the ragged tail exercises the effN
// clamp).
func foldKernel(n, extent int, op kernel.BinOp, strided bool) *kernel.Kernel {
	k := &kernel.Kernel{}
	in := k.AddBuf(kernel.BufDecl{Name: "in", Kind: vector.Int, Size: n, Input: true})
	out := k.AddBuf(kernel.BufDecl{Name: "partial", Kind: vector.Int, Size: extent})
	intent := (n + extent - 1) / extent
	acc, v := kernel.FirstFree, kernel.FirstFree+1
	seed := int64(0)
	if op == kernel.BMin {
		seed = math.MaxInt64
	}
	k.Frags = append(k.Frags, &kernel.Fragment{
		Name: "fold", Extent: extent, Intent: intent, N: n, Strided: strided,
		Pre: []kernel.Instr{{Op: kernel.IConstI, Dst: acc, Imm: seed}},
		Loops: []kernel.Loop{{Body: []kernel.Instr{
			{Op: kernel.ILoad, Dst: v, A: kernel.RegIdx, Buf: in, Seq: !strided},
			{Op: kernel.IBin, BOp: op, Dst: acc, A: acc, B: v},
		}}},
		Post: []kernel.Instr{{Op: kernel.IStore, A: kernel.RegGID, B: acc, Buf: out, Seq: true}},
	})
	return k
}

// gatherKernel loads through an index column — a non-sequential access
// the batch compiler accepts but must mark non-countable.
func gatherKernel(n int) *kernel.Kernel {
	k := &kernel.Kernel{}
	idx := k.AddBuf(kernel.BufDecl{Name: "idx", Kind: vector.Int, Size: n, Input: true})
	in := k.AddBuf(kernel.BufDecl{Name: "in", Kind: vector.Int, Size: n, Input: true})
	out := k.AddBuf(kernel.BufDecl{Name: "out", Kind: vector.Int, Size: n})
	r0, r1 := kernel.FirstFree, kernel.FirstFree+1
	k.Frags = append(k.Frags, &kernel.Fragment{
		Name: "gather", Extent: n, Intent: 1, N: n,
		Loops: []kernel.Loop{{Body: []kernel.Instr{
			{Op: kernel.ILoad, Dst: r0, A: kernel.RegIdx, Buf: idx, Seq: true},
			{Op: kernel.ILoad, Dst: r1, A: r0, Buf: in},
			{Op: kernel.IStore, A: kernel.RegIdx, B: r1, Buf: out, Seq: true},
		}}},
	})
	return k
}

// mixedKernel chains validity loads, predicates, branch-free selection,
// both cast directions, and a second guarded store — a batch-eligible
// sequence no fused shape matches.
func mixedKernel(n int) *kernel.Kernel {
	k := &kernel.Kernel{}
	in := k.AddBuf(kernel.BufDecl{Name: "in", Kind: vector.Int, Size: n, Input: true})
	out := k.AddBuf(kernel.BufDecl{Name: "out", Kind: vector.Int, Size: n})
	hits := k.AddBuf(kernel.BufDecl{Name: "hits", Kind: vector.Int, Size: n})
	rc := kernel.FirstFree
	r0, rv, r1, r2, r3, r4 := rc+1, rc+2, rc+3, rc+4, rc+5, rc+6
	f0, f1 := kernel.FirstFree, kernel.FirstFree+1 // float file
	k.Frags = append(k.Frags, &kernel.Fragment{
		Name: "mixed", Extent: n, Intent: 1, N: n,
		Loops: []kernel.Loop{{Body: []kernel.Instr{
			{Op: kernel.IConstI, Dst: rc, Imm: 50},
			{Op: kernel.ILoad, Dst: r0, A: kernel.RegIdx, Buf: in, Seq: true},
			{Op: kernel.ILoadValid, Dst: rv, A: kernel.RegIdx, Buf: in, Seq: true},
			{Op: kernel.IBin, BOp: kernel.BGt, Dst: r1, A: r0, B: rc},
			{Op: kernel.IBin, BOp: kernel.BAnd, Dst: r2, A: r1, B: rv},
			{Op: kernel.ISel, Dst: r3, A: r2, B: r0, C: rc},
			{Op: kernel.ICastIF, Dst: f0, A: r3},
			{Op: kernel.IBin, BOp: kernel.BAdd, Dst: f1, A: f0, B: f0, Float: true},
			{Op: kernel.ICastFI, Dst: r4, A: f1},
			{Op: kernel.IStore, A: kernel.RegIdx, B: r4, Buf: out, Seq: true},
			{Op: kernel.IGuard, A: r2},
			{Op: kernel.IStore, A: kernel.RegIdx, B: r0, Buf: hits, Seq: true},
		}}},
	})
	return k
}

func seqInts(n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(i*7%113 - 19)
	}
	return v
}

// runSpecMode executes k with par on fresh output buffers and returns the
// environment.
func runSpecMode(t *testing.T, k *kernel.Kernel, in map[string]*Buffer, par Par) *Env {
	t.Helper()
	env := NewEnv(k)
	for name, buf := range in {
		if err := env.Bind(k, name, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := RunPar(k, env, par, nil); err != nil {
		t.Fatal(err)
	}
	return env
}

// requireSameBufs asserts every non-input buffer (values and validity) is
// bit-identical between the two environments.
func requireSameBufs(t *testing.T, k *kernel.Kernel, want, got *Env, label string) {
	t.Helper()
	for bi, d := range k.Bufs {
		if d.Input {
			continue
		}
		w, g := want.Bufs[bi], got.Bufs[bi]
		for i := 0; i < w.Len(); i++ {
			if d.Kind == vector.Int && w.I[i] != g.I[i] {
				t.Fatalf("%s: buf %q[%d] = %d, want %d", label, d.Name, i, g.I[i], w.I[i])
			}
			if d.Kind == vector.Float {
				// Compare bit patterns so NaNs and signed zeros count.
				if math.Float64bits(w.F[i]) != math.Float64bits(g.F[i]) {
					t.Fatalf("%s: buf %q[%d] = %v, want %v", label, d.Name, i, g.F[i], w.F[i])
				}
			}
			wv := w.Valid == nil || w.Valid[i]
			gv := g.Valid == nil || g.Valid[i]
			if wv != gv {
				t.Fatalf("%s: buf %q[%d] valid = %v, want %v", label, d.Name, i, gv, wv)
			}
		}
	}
}

// TestSpecializeModesBitIdentical is the in-package half of difftest
// combo #7: for every representative fragment shape, every specialization
// mode × morsel size × worker count produces buffers bit-identical to the
// interpreter's.
func TestSpecializeModesBitIdentical(t *testing.T) {
	n := 3000 // spans multiple 1024-lane batches with a ragged tail
	withValid := &Buffer{Kind: vector.Int, I: seqInts(n), Valid: make([]bool, n)}
	for i := range withValid.Valid {
		withValid.Valid[i] = i%3 != 0
	}
	floats := make([]float64, n)
	for i := range floats {
		floats[i] = float64(i) * 0.25
	}
	floats[17] = math.NaN()
	idx := make([]int64, n)
	for i := range idx {
		idx[i] = int64((i * 379) % n)
	}
	cases := []specKernel{
		{"select", func() *kernel.Kernel { return selectKernel(n, 40) },
			map[string]*Buffer{"in": {Kind: vector.Int, I: seqInts(n)}}},
		{"map-float", func() *kernel.Kernel { return mapFloatKernel(n) },
			map[string]*Buffer{"in": {Kind: vector.Float, F: floats}}},
		{"fold-sum-blocked", func() *kernel.Kernel { return foldKernel(n, 7, kernel.BAdd, false) },
			map[string]*Buffer{"in": {Kind: vector.Int, I: seqInts(n)}}},
		{"fold-min-strided", func() *kernel.Kernel { return foldKernel(n, 4, kernel.BMin, true) },
			map[string]*Buffer{"in": {Kind: vector.Int, I: seqInts(n)}}},
		{"gather", func() *kernel.Kernel { return gatherKernel(n) },
			map[string]*Buffer{"idx": {Kind: vector.Int, I: idx}, "in": {Kind: vector.Int, I: seqInts(n)}}},
		{"mixed", func() *kernel.Kernel { return mixedKernel(n) },
			map[string]*Buffer{"in": withValid}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := tc.build()
			oracle := runSpecMode(t, k, tc.in, Par{Workers: 1, Spec: SpecializeOff})
			for _, spec := range []SpecMode{SpecializeBatchOnly, SpecializeAuto} {
				for _, morsel := range []int{1, 7, 0} {
					for _, workers := range []int{1, 4} {
						got := runSpecMode(t, k, tc.in, Par{Workers: workers, Morsel: morsel, Spec: spec})
						requireSameBufs(t, k, oracle, got, tc.name)
					}
				}
			}
		})
	}
}

// TestResolveSpecPaths pins the path-resolution policy: fused beats batch
// beats interp, BatchOnly skips fused, Off and fault injection force the
// interpreter, and counted runs refuse paths with inexact event counts.
func TestResolveSpecPaths(t *testing.T) {
	sel := selectKernel(64, 10).Frags[0]
	gather := gatherKernel(64).Frags[0]
	fold := foldKernel(64, 4, kernel.BAdd, false).Frags[0]
	for _, tc := range []struct {
		name     string
		f        *kernel.Fragment
		mode     SpecMode
		counting bool
		faults   bool
		want     string
	}{
		{"select-auto", sel, SpecializeAuto, false, false, "fused"},
		{"select-batch-only", sel, SpecializeBatchOnly, false, false, "batch"},
		{"select-off", sel, SpecializeOff, false, false, "interp"},
		{"select-faults", sel, SpecializeAuto, false, true, "interp"},
		{"select-counted", sel, SpecializeAuto, true, false, "fused"}, // all-seq: counts exact
		{"gather-auto", gather, SpecializeAuto, false, false, "batch"},
		{"gather-counted", gather, SpecializeAuto, true, false, "interp"}, // random access: counts order-sensitive
		{"fold-auto", fold, SpecializeAuto, false, false, "fused"},
		{"fold-batch-only", fold, SpecializeBatchOnly, false, false, "interp"}, // accumulator carries across items
	} {
		if _, got := resolveSpec(tc.f, tc.mode, tc.counting, tc.faults); got != tc.want {
			t.Errorf("%s: path = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestSpecializeBatchEligibility pins the conservative rejections of the
// batch compiler: locals, register carry across work items, store/load
// aliasing, and multi-iteration loops all fall back to the interpreter.
func TestSpecializeBatchEligibility(t *testing.T) {
	base := func() *kernel.Fragment { return selectKernel(64, 10).Frags[0] }
	if compileBatch(base()) == nil {
		t.Fatal("canonical selection should be batch-eligible")
	}

	locals := base()
	locals.Locals = 4
	if compileBatch(locals) != nil {
		t.Error("fragment with locals must not batch")
	}

	carry := base()
	// Read a register never defined in the body: the interpreter would
	// observe a sibling item's leftover value.
	carry.Loops[0].Body[2].A = kernel.FirstFree + 9
	if compileBatch(carry) != nil {
		t.Error("read-before-def register carry must not batch")
	}

	alias := base()
	// Store to the buffer the fragment also loads: batch order differs.
	alias.Loops[0].Body[4].Buf = alias.Loops[0].Body[1].Buf
	if compileBatch(alias) != nil {
		t.Error("store aliasing a loaded buffer must not batch")
	}

	multi := foldKernel(64, 4, kernel.BAdd, false).Frags[0]
	if compileBatch(multi) != nil {
		t.Error("multi-iteration blocked loop must not batch")
	}
}

// TestSpecializeCacheOnFragment: the compiled program is cached on the
// fragment after first use and reused verbatim.
func TestSpecializeCacheOnFragment(t *testing.T) {
	f := selectKernel(64, 10).Frags[0]
	if f.LoadSpec() != nil {
		t.Fatal("fresh fragment should have no cached spec")
	}
	sp1 := specFor(f)
	sp2 := specFor(f)
	if sp1 != sp2 {
		t.Error("specFor should return the cached program on reuse")
	}
	if f.LoadSpec() == nil {
		t.Error("spec not stored on the fragment")
	}
	if sp1.fused == nil || sp1.batch == nil {
		t.Error("canonical selection should compile both fused and batch forms")
	}
}

// TestFragmentFingerprint: structurally identical fragments fingerprint
// identically; changing one opcode changes the fingerprint.
func TestFragmentFingerprint(t *testing.T) {
	a := selectKernel(64, 10).Frags[0]
	b := selectKernel(64, 99).Frags[0] // different constant, same structure
	if a.Fingerprint() != a.Fingerprint() {
		t.Error("fingerprint not deterministic")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("same-shape fragments should share a fingerprint")
	}
	c := selectKernel(64, 10).Frags[0]
	c.Loops[0].Body[2].BOp = kernel.BGe
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different comparison op should change the fingerprint")
	}
}

// TestSpecializeCancellation: specialized paths honor cancellation at the
// same checkpoints as the interpreter.
func TestSpecializeCancellation(t *testing.T) {
	n := 1 << 16
	k := selectKernel(n, 40)
	env := NewEnv(k)
	if err := env.Bind(k, "in", &Buffer{Kind: vector.Int, I: seqInts(n)}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := RunParContext(ctx, k, env, Par{Workers: 2, Spec: SpecializeAuto}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSpecializeErrorParity: a mid-run bounds fault reports the same
// error from the batch path as from the interpreter.
func TestSpecializeErrorParity(t *testing.T) {
	n := 100
	build := func() *kernel.Kernel {
		k := &kernel.Kernel{}
		in := k.AddBuf(kernel.BufDecl{Name: "in", Kind: vector.Int, Size: n, Input: true})
		out := k.AddBuf(kernel.BufDecl{Name: "out", Kind: vector.Int, Size: n})
		rc, ri, r0 := kernel.FirstFree, kernel.FirstFree+1, kernel.FirstFree+2
		k.Frags = append(k.Frags, &kernel.Fragment{
			Name: "oob", Extent: n, Intent: 1, N: n,
			Loops: []kernel.Loop{{Body: []kernel.Instr{
				{Op: kernel.IConstI, Dst: rc, Imm: 60},
				{Op: kernel.IBin, BOp: kernel.BAdd, Dst: ri, A: kernel.RegIdx, B: rc},
				{Op: kernel.ILoad, Dst: r0, A: ri, Buf: in},
				{Op: kernel.IStore, A: kernel.RegIdx, B: r0, Buf: out, Seq: true},
			}}},
		})
		return k
	}
	run := func(spec SpecMode) error {
		k := build()
		env := NewEnv(k)
		if err := env.Bind(k, "in", &Buffer{Kind: vector.Int, I: seqInts(n)}); err != nil {
			t.Fatal(err)
		}
		return RunPar(k, env, Par{Workers: 1, Spec: spec}, nil)
	}
	want, got := run(SpecializeOff), run(SpecializeAuto)
	if want == nil || got == nil {
		t.Fatalf("both paths should fail: interp=%v batch=%v", want, got)
	}
	if want.Error() != got.Error() {
		t.Errorf("error mismatch:\ninterp: %v\nbatch:  %v", want, got)
	}
}

// TestSpecializeCountedRunsMatchInterpreter: when a counted run does take
// a specialized path (all accesses sequential), every event count matches
// the interpreter's exactly — the device cost models depend on it.
func TestSpecializeCountedRunsMatchInterpreter(t *testing.T) {
	n := 3000
	run := func(spec SpecMode) FragStats {
		k := selectKernel(n, 40)
		env := NewEnv(k)
		if err := env.Bind(k, "in", &Buffer{Kind: vector.Int, I: seqInts(n)}); err != nil {
			t.Fatal(err)
		}
		var st Stats
		if err := RunPar(k, env, Par{Workers: 2, Spec: spec}, &st); err != nil {
			t.Fatal(err)
		}
		return st.Frags[0]
	}
	want, got := run(SpecializeOff), run(SpecializeAuto)
	if got.Specialized != "fused" {
		t.Fatalf("counted all-sequential selection ran %q, want fused", got.Specialized)
	}
	type counts struct {
		Items, StoreBytes, IntOps, FloatOps, SeqBytes, Rand, Near, Guards, GuardsPass int64
	}
	c := func(fs FragStats) counts {
		return counts{fs.Items, fs.StoreBytes, fs.IntOps, fs.FloatOps,
			fs.SeqBytes, fs.RandAccesses, fs.NearAccesses, fs.Guards, fs.GuardsPass}
	}
	if c(want) != c(got) {
		t.Errorf("event counts diverged:\ninterp: %+v\nfused:  %+v", c(want), c(got))
	}
}

// TestSetSpecializeDefault: the process-wide default only rewrites
// SpecializeAuto; explicit modes are untouched.
func TestSetSpecializeDefault(t *testing.T) {
	SetSpecializeDefault(false)
	defer SetSpecializeDefault(true)
	if got := (Par{}).norm().Spec; got != SpecializeOff {
		t.Errorf("norm Spec = %v with default off, want SpecializeOff", got)
	}
	if got := (Par{Spec: SpecializeBatchOnly}).norm().Spec; got != SpecializeBatchOnly {
		t.Errorf("norm rewrote an explicit mode to %v", got)
	}
	SetSpecializeDefault(true)
	if got := (Par{}).norm().Spec; got != SpecializeAuto {
		t.Errorf("norm Spec = %v with default on, want SpecializeAuto", got)
	}
}
