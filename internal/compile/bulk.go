package compile

import (
	"fmt"
	"sort"

	"voodoo/internal/core"
	"voodoo/internal/exec"
	"voodoo/internal/interp"
	"voodoo/internal/kernel"
	"voodoo/internal/vector"
)

// eOpaque is a schema placeholder for attributes of special (pending)
// descriptors; it can never be emitted — plainify resolves the special form
// before any emission.
type eOpaque struct{ k vector.Kind }

func (e *eOpaque) kind() vector.Kind { return e.k }

// emittable reports whether an expression tree contains only nodes the
// fragment emitter can lower.
func emittable(e expr) bool {
	switch x := e.(type) {
	case *ePartRef, *eOpaque, *ePos:
		return false
	case *eBin:
		return emittable(x.a) && emittable(x.b)
	case *eSel:
		return emittable(x.c) && emittable(x.a) && emittable(x.b)
	case *eCast:
		return emittable(x.a)
	case *eLoad:
		return emittable(x.idx)
	case *eLoadValid:
		return emittable(x.idx)
	}
	return true
}

// plainify resolves pending special forms (unmaterialized selects, filtered
// gathers, virtual scatters) into ordinary expression-backed descriptors,
// emitting spill fragments or bulk steps as needed.
func (c *compiler) plainify(d *desc) *desc {
	if d.plainCache != nil {
		return d.plainCache
	}
	out := d
	switch {
	case d.sel != nil:
		out = c.spillSel(d.sel)
	case d.filt != nil:
		out = c.spillFilt(d.filt)
	case d.gpend != nil:
		out = c.materializeGrouped(d.gpend)
	case d.layout == layoutScattered:
		out = c.materializeScattered(d)
	}
	d.plainCache = out
	return out
}

// emitReady plainifies d and replaces any remaining non-emittable attribute
// (Partition provenance markers) with loads from spilled buffers.
func (c *compiler) emitReady(d *desc) *desc {
	d = c.plainify(d)
	dirty := false
	for _, a := range d.attrs {
		if !emittable(a.ex) || (a.validEx != nil && !emittable(a.validEx)) {
			dirty = true
			break
		}
	}
	if !dirty {
		return d
	}
	out := &desc{n: d.n, layout: d.layout, logicalN: d.logicalN,
		runLen: d.runLen, countsBuf: d.countsBuf}
	for _, a := range d.attrs {
		na := attr{name: a.name, ex: c.substSpecial(a.ex), validEx: a.validEx}
		if na.validEx != nil {
			na.validEx = c.substSpecial(na.validEx)
		}
		out.attrs = append(out.attrs, na)
	}
	return out
}

// substSpecial rewrites ePartRef leaves to loads from the spilled partition
// position buffer.
func (c *compiler) substSpecial(e expr) expr {
	switch x := e.(type) {
	case *ePartRef:
		buf := c.spillPartition(x.info)
		return &eLoad{buf: buf, k: vector.Int, idx: theIdx}
	case *eOpaque, *ePos:
		cerrf("internal: unexpected %T outside its pipeline", e)
	case *eBin:
		return &eBin{op: x.op, a: c.substSpecial(x.a), b: c.substSpecial(x.b)}
	case *eSel:
		return &eSel{c: c.substSpecial(x.c), a: c.substSpecial(x.a), b: c.substSpecial(x.b)}
	case *eCast:
		return &eCast{toF: x.toF, a: c.substSpecial(x.a)}
	case *eLoad:
		return &eLoad{buf: x.buf, k: x.k, idx: c.substSpecial(x.idx)}
	case *eLoadValid:
		return &eLoadValid{buf: x.buf, idx: c.substSpecial(x.idx)}
	}
	return e
}

// bufferize materializes every attribute of d into a buffer, emitting one
// fragment that evaluates all attribute expressions (sharing subexpressions)
// unless the attributes already are direct buffer loads.
func (c *compiler) bufferize(d *desc) *desc {
	return c.bufferizeWithCtrl(d, foldCtrl{unknown: true})
}

func (c *compiler) bufferizeWithCtrl(d *desc, ctrl foldCtrl) *desc {
	d = c.emitReady(d)
	direct := true
	for _, a := range d.attrs {
		ld, ok := a.ex.(*eLoad)
		if !ok || ld.idx != expr(theIdx) || c.kern.Bufs[ld.buf].Size != d.n {
			direct = false
			break
		}
		if a.validEx != nil {
			lv, ok := a.validEx.(*eLoadValid)
			if !ok || lv.buf != ld.buf || lv.idx != expr(theIdx) {
				direct = false
				break
			}
		}
	}
	if direct {
		return d
	}

	extent := min(c.opt.defaultExtent(), max(1, d.n))
	if !ctrl.unknown {
		extent = ctrl.numRuns(d.n)
	}
	f := &kernel.Fragment{
		Name:   fmt.Sprintf("mat_%d", len(c.kern.Frags)),
		Extent: extent, Intent: (d.n + extent - 1) / extent, N: d.n,
		Prov: kernel.Prov{Kind: "mat", Stmts: []int{c.cur}},
	}
	var body []kernel.Instr
	em := newEmitter(&body)
	out := &desc{n: d.n, layout: d.layout, logicalN: d.logicalN,
		runLen: d.runLen, countsBuf: d.countsBuf}
	for _, a := range d.attrs {
		hasValid := a.validEx != nil
		buf := c.addBuf("mat."+a.name, a.kind(), d.n, hasValid, false)
		v := em.emit(a.ex)
		st := kernel.Instr{Op: kernel.IStore, Buf: buf, A: kernel.RegIdx, B: v,
			Float: a.kind() == vector.Float, Seq: true}
		na := attr{name: a.name, ex: &eLoad{buf: buf, k: a.kind(), idx: theIdx}}
		if hasValid {
			st.C = em.emit(a.validEx)
			na.validEx = &eLoadValid{buf: buf, idx: theIdx}
		}
		em.push(st)
		out.attrs = append(out.attrs, na)
	}
	f.Loops = []kernel.Loop{{Body: body}}
	c.addFrag(f)
	return out
}

// spillSel materializes a pending FoldSelect into a padded positions buffer
// (positions aligned to run starts, ε beyond each run's count), honoring the
// predication option.
func (c *compiler) spillSel(si *selInfo) *desc {
	ctrl := si.ctrl
	if ctrl.global {
		ctrl.runLen = si.srcN
	}
	numRuns := ctrl.numRuns(si.srcN)
	posBuf := c.addBuf("selpos", vector.Int, si.srcN, true, false)
	out := &desc{n: si.srcN, attrs: []attr{{
		name:    si.outName,
		ex:      &eLoad{buf: posBuf, k: vector.Int, idx: theIdx},
		validEx: &eLoadValid{buf: posBuf, idx: theIdx},
	}}}
	if c.pruneEmpty(si.pred) {
		// Zone maps prove the predicate never passes: the positions buffer
		// stays zeroed with all-false validity — bit-identical to running
		// the selection — and the fragment is never emitted.
		c.plan.steps = append(c.plan.steps, &prunedStep{
			name: fmt.Sprintf("sel_%d", len(c.kern.Frags)), stmts: []int{si.stmt},
			outBufs: []int{posBuf}})
		return out
	}
	f := &kernel.Fragment{
		Name:   fmt.Sprintf("sel_%d", len(c.kern.Frags)),
		Extent: numRuns, Intent: ctrl.runLen, N: si.srcN,
		Prov: kernel.Prov{Kind: "select", Stmts: []int{si.stmt},
			Predicated: c.opt.Predication},
	}
	var body []kernel.Instr
	em := newEmitter(&body)
	cursor := em.alloc()
	f.Pre = []kernel.Instr{{Op: kernel.IConstI, Dst: cursor, Imm: 0}}
	pred := em.emit(si.pred)
	base := em.emit(binExpr(kernel.BMul, &eGID{}, constI(int64(ctrl.runLen))))
	addr := em.alloc()
	em.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BAdd, Dst: addr, A: base, B: cursor})
	if c.opt.Predication {
		// Unconditional write; validity = predicate; cursor advances by
		// the predicate. Slots beyond the final cursor end up invalid.
		em.push(kernel.Instr{Op: kernel.IStore, Buf: posBuf, A: addr, B: kernel.RegIdx, C: pred})
		em.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BAdd, Dst: cursor, A: cursor, B: pred})
	} else {
		em.push(kernel.Instr{Op: kernel.IGuard, A: pred})
		em.push(kernel.Instr{Op: kernel.IStore, Buf: posBuf, A: addr, B: kernel.RegIdx})
		one := em.emit(constI(1))
		em.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BAdd, Dst: cursor, A: cursor, B: one})
	}
	f.Loops = []kernel.Loop{{Body: body}}
	c.addFrag(f)
	return out
}

// spillFilt materializes a gather-through-select: the paper's Figure 1
// selection, writing the selected values themselves (branching or
// predicated).
func (c *compiler) spillFilt(fi *filtInfo) *desc {
	ctrl := fi.sel.ctrl
	if ctrl.global {
		ctrl.runLen = fi.sel.srcN
	}
	numRuns := ctrl.numRuns(fi.sel.srcN)
	if c.pruneEmpty(fi.sel.pred) {
		// Zone maps prove the selection never passes: every filtered
		// column arrives zeroed and all-invalid, exactly as the fragment
		// would leave it, so only the plan-time step record remains.
		out := &desc{n: fi.sel.srcN}
		var outBufs []int
		for _, a := range fi.attrs {
			buf := c.addBuf("filt."+a.name, a.kind(), fi.sel.srcN, true, false)
			outBufs = append(outBufs, buf)
			out.attrs = append(out.attrs, attr{name: a.name,
				ex:      &eLoad{buf: buf, k: a.kind(), idx: theIdx},
				validEx: &eLoadValid{buf: buf, idx: theIdx}})
		}
		c.plan.steps = append(c.plan.steps, &prunedStep{
			name: fmt.Sprintf("filt_%d", len(c.kern.Frags)), stmts: []int{fi.sel.stmt, fi.stmt},
			outBufs: outBufs})
		return out
	}
	f := &kernel.Fragment{
		Name:   fmt.Sprintf("filt_%d", len(c.kern.Frags)),
		Extent: numRuns, Intent: ctrl.runLen, N: fi.sel.srcN,
		Prov: kernel.Prov{Kind: "filter", Stmts: []int{fi.sel.stmt, fi.stmt},
			Predicated: c.opt.Predication},
	}
	var body []kernel.Instr
	em := newEmitter(&body)
	cursor := em.alloc()
	f.Pre = []kernel.Instr{{Op: kernel.IConstI, Dst: cursor, Imm: 0}}
	pred := em.emit(fi.sel.pred)
	base := em.emit(binExpr(kernel.BMul, &eGID{}, constI(int64(ctrl.runLen))))
	addr := em.alloc()
	em.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BAdd, Dst: addr, A: base, B: cursor})
	out := &desc{n: fi.sel.srcN}
	if !c.opt.Predication {
		em.push(kernel.Instr{Op: kernel.IGuard, A: pred})
	}
	em.memo[expr(thePos)] = kernel.RegIdx
	for _, a := range fi.attrs {
		buf := c.addBuf("filt."+a.name, a.kind(), fi.sel.srcN, true, false)
		v := em.emitAs(a.ex, a.kind())
		st := kernel.Instr{Op: kernel.IStore, Buf: buf, A: addr, B: v,
			Float: a.kind() == vector.Float}
		if c.opt.Predication {
			cond := pred
			if a.validEx != nil {
				av := em.emit(a.validEx)
				both := em.alloc()
				em.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BAnd, Dst: both, A: pred, B: av})
				cond = both
			}
			st.C = cond
		} else if a.validEx != nil {
			st.C = em.emit(a.validEx)
		}
		em.push(st)
		out.attrs = append(out.attrs, attr{name: a.name,
			ex:      &eLoad{buf: buf, k: a.kind(), idx: theIdx},
			validEx: &eLoadValid{buf: buf, idx: theIdx}})
	}
	if c.opt.Predication {
		em.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BAdd, Dst: cursor, A: cursor, B: pred})
	} else {
		one := em.emit(constI(1))
		em.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BAdd, Dst: cursor, A: cursor, B: one})
	}
	f.Loops = []kernel.Loop{{Body: body}}
	c.addFrag(f)
	return out
}

// spillPartition computes a Partition's stable counting-sort positions as a
// bulk step and returns the buffer holding them. The result is cached on
// the partInfo so multiple consumers share one sort.
func (c *compiler) spillPartition(pi *partInfo) int {
	if pi.spilled {
		return pi.buf
	}
	vals := c.bufferize(&desc{n: pi.srcN, attrs: []attr{{name: "v", ex: pi.valEx}}})
	valsConv := c.converter(vals)
	pivConv := pi.pivots
	posBuf := c.addBuf("part", vector.Int, pi.srcN, false, true)
	c.plan.steps = append(c.plan.steps, &bulkStep{
		name:    "partition",
		stmts:   []int{pi.stmt},
		inputs:  []converter{valsConv, pivConv},
		outBufs: []int{posBuf},
		attrs:   []string{"pos"},
		evalFn: func(args []*vector.Vector, ar *vector.Arena) (*vector.Vector, error) {
			return countingSortPositions(args[0].SingleCol(), args[1].SingleCol(), ar)
		},
		statsFn: func(args []*vector.Vector, out *vector.Vector) exec.FragStats {
			n := int64(args[0].Len())
			return exec.FragStats{Name: "partition", Extent: 1, Intent: args[0].Len(),
				Sequential: true, Items: 2 * n, IntOps: 4 * n, SeqBytes: 4 * 8 * n,
				StoreBytes: 8 * n}
		},
	})
	pi.spilled, pi.buf = true, posBuf
	return posBuf
}

// countingSortPositions implements Partition's semantics: stable positions
// that group values by "number of pivots strictly below".
func countingSortPositions(vals, pivots *vector.Column, ar *vector.Arena) (*vector.Vector, error) {
	k := pivots.Len()
	pv := make([]int64, k)
	for i := range pv {
		pv[i] = pivots.Int(i)
	}
	if !sort.SliceIsSorted(pv, func(i, j int) bool { return pv[i] < pv[j] }) {
		return nil, fmt.Errorf("partition: pivot list must be sorted")
	}
	n := vals.Len()
	pid := make([]int, n)
	counts := make([]int, k+1)
	for i := 0; i < n; i++ {
		x := vals.Int(i)
		p := sort.Search(k, func(j int) bool { return pv[j] >= x })
		pid[i] = p
		counts[p]++
	}
	starts := make([]int, k+1)
	sum := 0
	for p, cnt := range counts {
		starts[p] = sum
		sum += cnt
	}
	out := ar.Ints(n)
	for i := 0; i < n; i++ {
		out[i] = int64(starts[pid[i]])
		starts[pid[i]]++
	}
	return vector.New(n).Set("pos", vector.NewInt(out)), nil
}

// materializeGrouped turns a pending data-grouped virtual scatter into a
// real scattered vector: spill the partition positions, then scatter the
// source attributes through them.
func (c *compiler) materializeGrouped(gp *groupPending) *desc {
	posBuf := c.spillPartition(gp.part)
	src := c.emitReady(gp.src)
	pos := attr{name: "pos", ex: &eLoad{buf: posBuf, k: vector.Int, idx: theIdx}}
	return c.scatterFragment(src, pos, gp.n, true /* permutation: parallel-safe */)
}

// materializeScattered lowers a virtual strided scatter into a fragment
// that evaluates the source expressions at σ(idx).
func (c *compiler) materializeScattered(d *desc) *desc {
	k, L := d.lanes, d.runLen
	// σ(j) = (j mod L)*k + j/L
	sigma := binExpr(kernel.BAdd,
		binExpr(kernel.BMul, binExpr(kernel.BMod, theIdx, constI(int64(L))), constI(int64(k))),
		binExpr(kernel.BDiv, theIdx, constI(int64(L))))
	out := &desc{n: d.logicalN}
	for _, a := range d.attrs {
		na := attr{name: a.name, ex: subIdx(a.ex, sigma)}
		if a.validEx != nil {
			na.validEx = subIdx(a.validEx, sigma)
		}
		out.attrs = append(out.attrs, na)
	}
	return c.bufferize(out)
}

// subIdx substitutes the index leaf of an expression tree.
func subIdx(e, repl expr) expr {
	switch x := e.(type) {
	case *eIdx:
		return repl
	case *eGen:
		// A generated value evaluated at a substituted index loses its
		// closed form; keep it symbolic via the explicit formula.
		return subIdx(genFormula(x.m), repl)
	case *eBin:
		return &eBin{op: x.op, a: subIdx(x.a, repl), b: subIdx(x.b, repl)}
	case *eSel:
		return &eSel{c: subIdx(x.c, repl), a: subIdx(x.a, repl), b: subIdx(x.b, repl)}
	case *eCast:
		return &eCast{toF: x.toF, a: subIdx(x.a, repl)}
	case *eLoad:
		return &eLoad{buf: x.buf, k: x.k, idx: subIdx(x.idx, repl)}
	case *eLoadValid:
		return &eLoadValid{buf: x.buf, idx: subIdx(x.idx, repl)}
	}
	return e
}

// genFormula expands run metadata into explicit integer index arithmetic:
// from + floor(idx*num/den), optionally mod cap. Indices are non-negative,
// so for a non-negative numerator plain integer division is the floor; a
// negative numerator floors via -ceil(-x).
func genFormula(m vector.RunMeta) expr {
	var e expr = theIdx
	num, den := m.StepNum, m.Den()
	switch {
	case num == 0:
		return capped(constI(m.From), m.Cap)
	case num > 0:
		if num != 1 {
			e = binExpr(kernel.BMul, e, constI(num))
		}
		if den != 1 {
			e = binExpr(kernel.BDiv, e, constI(den))
		}
	default: // num < 0: prod ≤ 0, floor(prod/den) = -((-prod + den-1)/den)
		prod := binExpr(kernel.BMul, e, constI(-num))
		if den == 1 {
			e = binExpr(kernel.BSub, constI(0), prod)
		} else {
			up := binExpr(kernel.BAdd, prod, constI(den-1))
			e = binExpr(kernel.BSub, constI(0), binExpr(kernel.BDiv, up, constI(den)))
		}
	}
	if m.From != 0 {
		e = binExpr(kernel.BAdd, e, constI(m.From))
	}
	return capped(e, m.Cap)
}

// capped applies the modulo cap (the kernel's BMod is non-negative).
func capped(e expr, cap int64) expr {
	if cap > 0 {
		return binExpr(kernel.BMod, e, constI(cap))
	}
	return e
}

// realScatter lowers a materialized scatter: positions and values are
// evaluated per source element and written randomly into the output.
func (c *compiler) realScatter(s *core.Stmt) *desc {
	src := c.emitReady(c.plainify(c.desc(s.Args[0])))
	posD := c.emitReady(c.plainify(c.desc(s.Args[2])))
	if src.layout != layoutDense || posD.layout != layoutDense {
		return c.bulk(s)
	}
	pos, ok := posD.single(s.Kp[2])
	if !ok {
		cerrf("Scatter: position keypath %q does not name a single attribute", s.Kp[2])
	}
	n2 := c.desc(s.Args[1]).logical()
	return c.scatterFragment(src, pos, n2, c.opt.ScatterParallel)
}

// scatterFragment emits the scatter loop. Parallel execution is only
// race-free when positions are unique.
//
// Source attributes may carry validity: an ε source value stores its slot
// as ε. With duplicate positions this deviates from the interpreter (which
// skips the write, keeping the previous value) — the frontends only scatter
// unique positions, where both behaviors coincide.
func (c *compiler) scatterFragment(src *desc, pos attr, n2 int, parallel bool) *desc {
	extent := 1
	if parallel {
		extent = min(c.opt.defaultExtent(), max(1, src.n))
	}
	f := &kernel.Fragment{
		Name:   fmt.Sprintf("scatter_%d", len(c.kern.Frags)),
		Extent: extent, Intent: (src.n + extent - 1) / extent, N: src.n,
		Prov: kernel.Prov{Kind: "scatter", Stmts: []int{c.cur}},
	}
	var body []kernel.Instr
	em := newEmitter(&body)
	if pos.validEx != nil {
		pv := em.emit(pos.validEx)
		em.push(kernel.Instr{Op: kernel.IGuard, A: pv})
	}
	p := em.emit(pos.ex)
	// In-bounds guard: out-of-range positions are silently dropped.
	inb := em.emit(&eBin{op: kernel.BAnd,
		a: &eBin{op: kernel.BGe, a: pos.ex, b: constI(0)},
		b: &eBin{op: kernel.BGt, a: constI(int64(n2)), b: pos.ex}})
	em.push(kernel.Instr{Op: kernel.IGuard, A: inb})
	out := &desc{n: n2}
	for _, a := range src.attrs {
		buf := c.addBuf("scat."+a.name, a.kind(), n2, true, false)
		v := em.emitAs(a.ex, a.kind())
		st := kernel.Instr{Op: kernel.IStore, Buf: buf, A: p, B: v,
			Float: a.kind() == vector.Float}
		if a.validEx != nil {
			st.C = em.emit(a.validEx)
		}
		em.push(st)
		out.attrs = append(out.attrs, attr{name: a.name,
			ex:      &eLoad{buf: buf, k: a.kind(), idx: theIdx},
			validEx: &eLoadValid{buf: buf, idx: theIdx}})
	}
	f.Loops = []kernel.Loop{{Body: body}}
	c.addFrag(f)
	return out
}

// miniInterp evaluates one operator with interpreter semantics over
// in-memory vectors. The arena, when non-nil, is the surrounding plan
// run's: the mini-program's output is adopted into kernel buffers, so its
// storage must live exactly as long as the run.
func miniInterp(op core.Op, kp []string, outNames []string, stmtTmpl *core.Stmt, ar *vector.Arena, args ...*vector.Vector) (*vector.Vector, error) {
	var p core.Program
	st := interp.MemStorage{}
	refs := make([]core.Ref, len(args))
	for i, a := range args {
		name := fmt.Sprintf("$%d", i)
		st[name] = a
		refs[i] = p.Add(core.Stmt{Op: core.OpLoad, Name: name})
	}
	s := core.Stmt{Op: op, Args: refs, Kp: kp, Out: outNames}
	if stmtTmpl != nil {
		s = *stmtTmpl
		s.Args = refs
	}
	target := p.Add(s)
	res, err := interp.RunArena(&p, st, ar)
	if err != nil {
		return nil, err
	}
	return res.Value(target), nil
}

// bulkStats synthesizes the cost profile of a bulk (fully materializing)
// step: every input is read and the output written through memory, which is
// exactly the bulk-processing cost the paper attributes to Ocelot.
func bulkStats(name string, random bool) func(args []*vector.Vector, out *vector.Vector) exec.FragStats {
	return func(args []*vector.Vector, out *vector.Vector) exec.FragStats {
		fs := exec.FragStats{Name: "bulk:" + name, Sequential: false}
		var n int64
		for _, a := range args {
			bytes := int64(a.Len()) * int64(len(a.Names())) * 8
			fs.SeqBytes += bytes
			if int64(a.Len()) > n {
				n = int64(a.Len())
			}
		}
		outBytes := int64(out.Len()) * int64(len(out.Names())) * 8
		fs.SeqBytes += outBytes
		fs.StoreBytes = outBytes
		fs.Items = n
		fs.IntOps = n
		fs.Extent = out.Len()
		fs.Intent = 1
		if random {
			fs.RandAccesses = int64(out.Len())
			fs.RandByBuf = map[int]exec.RandCount{0: {Bytes: outBytes, Count: int64(out.Len())}}
		}
		return fs
	}
}

// bulk compiles a statement as a materializing bulk step (the semantic
// fallback, and the whole execution model under Options.ForceBulk).
func (c *compiler) bulk(s *core.Stmt) *desc {
	schema, n := c.bulkSchema(s)
	inputs := make([]converter, len(s.Args))
	for i, a := range s.Args {
		inputs[i] = c.converter(c.desc(a))
	}
	out := &desc{n: n}
	var outBufs []int
	var names []string
	for _, a := range schema {
		buf := c.addBuf("bulk."+a.name, a.kind, n, false, true)
		outBufs = append(outBufs, buf)
		names = append(names, a.name)
		out.attrs = append(out.attrs, attr{name: a.name,
			ex:      &eLoad{buf: buf, k: a.kind, idx: theIdx},
			validEx: &eLoadValid{buf: buf, idx: theIdx}})
	}
	tmpl := *s
	random := s.Op == core.OpGather || s.Op == core.OpScatter || s.Op == core.OpPartition
	c.plan.steps = append(c.plan.steps, &bulkStep{
		name:    s.Op.String(),
		stmts:   []int{int(s.ID)},
		inputs:  inputs,
		outBufs: outBufs,
		attrs:   names,
		evalFn: func(args []*vector.Vector, ar *vector.Arena) (*vector.Vector, error) {
			return miniInterp(s.Op, nil, nil, &tmpl, ar, args...)
		},
		statsFn: bulkStats(s.Op.String(), random),
	})
	return out
}

type attrSchema struct {
	name string
	kind vector.Kind
}

// bulkSchema statically infers the output schema and size of a statement —
// Voodoo's determinism makes every size a compile-time constant.
func (c *compiler) bulkSchema(s *core.Stmt) ([]attrSchema, int) {
	// Pending special forms (an undissolved Partition scatter, an
	// unmaterialized fold-select) carry no resolvable attributes of their
	// own; the bulk fallback consumes materialized operands, so resolve
	// schemas against the plainified descriptors the converters will use.
	argN := func(i int) int { return c.plainify(c.desc(s.Args[i])).logical() }
	argSchema := func(i int, kp, out string) []attrSchema {
		d := c.plainify(c.desc(s.Args[i]))
		names, idx, ok := d.resolve(kp)
		if !ok {
			cerrf("%s: cannot resolve keypath %q for bulk schema", s.Op, kp)
		}
		var res []attrSchema
		for j, rel := range names {
			name := out
			if rel != "" {
				if out != "" {
					name = out + "." + rel
				} else {
					name = rel
				}
			}
			res = append(res, attrSchema{name: name, kind: d.attrs[idx[j]].kind()})
		}
		return res
	}
	switch s.Op {
	case core.OpConstant:
		k := vector.Int
		if s.IsFloat {
			k = vector.Float
		}
		return []attrSchema{{s.Out[0], k}}, 1
	case core.OpRange:
		n := s.Size
		if len(s.Args) == 1 {
			n = argN(0)
		}
		return []attrSchema{{s.Out[0], vector.Int}}, n
	case core.OpCross:
		return []attrSchema{{s.Out[0], vector.Int}, {s.Out[1], vector.Int}}, argN(0) * argN(1)
	case core.OpZip:
		n := min(argN(0), argN(1))
		return append(argSchema(0, s.Kp[0], s.Out[0]), argSchema(1, s.Kp[1], s.Out[1])...), n
	case core.OpProject:
		return argSchema(0, s.Kp[0], s.Out[0]), argN(0)
	case core.OpUpsert:
		d := c.desc(s.Args[0])
		var res []attrSchema
		replaced := false
		newKind := argSchema(1, s.Kp[1], s.Out[0])[0].kind
		for _, a := range d.attrs {
			if a.name == s.Out[0] {
				res = append(res, attrSchema{s.Out[0], newKind})
				replaced = true
				continue
			}
			res = append(res, attrSchema{a.name, a.kind()})
		}
		if !replaced {
			res = append(res, attrSchema{s.Out[0], newKind})
		}
		return res, argN(0)
	case core.OpGather:
		d := c.desc(s.Args[0])
		var res []attrSchema
		for _, a := range d.attrs {
			res = append(res, attrSchema{a.name, a.kind()})
		}
		return res, argN(1)
	case core.OpScatter:
		d := c.desc(s.Args[0])
		var res []attrSchema
		for _, a := range d.attrs {
			res = append(res, attrSchema{a.name, a.kind()})
		}
		return res, argN(1)
	case core.OpMaterialize, core.OpBreak:
		d := c.desc(s.Args[0])
		var res []attrSchema
		for _, a := range d.attrs {
			res = append(res, attrSchema{a.name, a.kind()})
		}
		return res, argN(0)
	case core.OpPartition:
		return []attrSchema{{s.Out[0], vector.Int}}, argN(0)
	case core.OpFoldSelect:
		return []attrSchema{{s.Out[0], vector.Int}}, argN(0)
	case core.OpFoldSum, core.OpFoldMin, core.OpFoldMax, core.OpFoldScan:
		d := c.desc(s.Args[0])
		k := vector.Int
		if a, ok := d.single(s.FoldVal); ok {
			k = a.kind()
		}
		return []attrSchema{{s.Out[0], k}}, argN(0)
	default:
		if s.Op.IsArith() {
			k := vector.Int
			a1 := argSchema(0, s.Kp[0], "x")[0].kind
			a2 := argSchema(1, s.Kp[1], "x")[0].kind
			if (a1 == vector.Float || a2 == vector.Float) &&
				s.Op != core.OpGreater && s.Op != core.OpEquals {
				k = vector.Float
			}
			n1, n2 := argN(0), argN(1)
			n := min(n1, n2)
			if n1 == 1 {
				n = n2
			} else if n2 == 1 {
				n = n1
			}
			return []attrSchema{{s.Out[0], k}}, n
		}
	}
	cerrf("%s: no bulk schema", s.Op)
	return nil, 0
}

// eGID is the work-item id as an expression (used for run base addresses).
type eGID struct{}

func (eGID) kind() vector.Kind { return vector.Int }
