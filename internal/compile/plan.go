package compile

import (
	"context"
	"fmt"
	"runtime/debug"

	"voodoo/internal/core"
	"voodoo/internal/exec"
	"voodoo/internal/kernel"
	"voodoo/internal/vector"
)

// Plan is a compiled, executable Voodoo program.
type Plan struct {
	prog *core.Program
	st   Storage
	opt  Options
	kern *kernel.Kernel

	steps   []step
	outputs []output

	// CollectStats makes Run count instruction/memory/branch events,
	// which device cost models convert into simulated times.
	CollectStats bool

	// Limits is the per-query resource governor: buffer allocations are
	// charged against MaxBytes, fragment extents checked against
	// MaxExtent, and Deadline enforced as a context deadline.
	Limits exec.Limits
}

// Kernel exposes the generated kernel (fragment listing, OpenCL source
// generation).
func (p *Plan) Kernel() *kernel.Kernel { return p.kern }

type output struct {
	ref  core.Ref
	conv converter
}

// Result holds root values (in the interpreter's padded layout) and, when
// requested, the execution event counts.
type Result struct {
	Values map[core.Ref]*vector.Vector
	Stats  exec.Stats
}

// runtime is the mutable state of one plan execution.
type runtime struct {
	plan  *Plan
	ctx   context.Context
	env   *exec.Env
	stats *exec.Stats
}

type step interface {
	run(rt *runtime) error
	// stepName labels the step in errors and recovered panics.
	stepName() string
}

// bindStep attaches a storage column to an input buffer.
type bindStep struct {
	buf int
	col *vector.Column
}

func (s *bindStep) run(rt *runtime) error {
	rt.env.Bufs[s.buf] = exec.FromColumn(s.col)
	return nil
}

func (s *bindStep) stepName() string { return "bind" }

// fragStep executes one kernel fragment.
type fragStep struct {
	f *kernel.Fragment
}

func (s *fragStep) run(rt *runtime) error {
	var fs *exec.FragStats
	if rt.stats != nil {
		si, sf := s.f.StaticBodyOps()
		rt.stats.Frags = append(rt.stats.Frags, exec.FragStats{
			Name: s.f.Name, Extent: s.f.Extent, Intent: s.f.Intent,
			Sequential: s.f.Sequential(), LocalBytes: int64(s.f.Locals) * 8,
			StaticIntOps: si, StaticFloatOps: sf,
		})
		fs = &rt.stats.Frags[len(rt.stats.Frags)-1]
	}
	return exec.RunFragmentContext(rt.ctx, s.f, rt.env, rt.plan.opt.Workers, fs)
}

func (s *fragStep) stepName() string { return "fragment " + s.f.Name }

// bulkStep evaluates one statement with interpreter semantics: inputs are
// converted to vectors, the mini-program runs, and output columns are bound
// to pre-declared buffers. Bulk steps are the compiler's semantic safety
// net and the execution model of the Ocelot baseline.
type bulkStep struct {
	name    string
	inputs  []converter
	outBufs []int    // one per output attribute, in attrs order
	attrs   []string // output attribute names
	evalFn  func(args []*vector.Vector) (*vector.Vector, error)
	statsFn func(args []*vector.Vector, out *vector.Vector) exec.FragStats
}

func (s *bulkStep) run(rt *runtime) error {
	args := make([]*vector.Vector, len(s.inputs))
	for i, conv := range s.inputs {
		v, err := conv(rt)
		if err != nil {
			return err
		}
		args[i] = v
	}
	out, err := s.evalFn(args)
	if err != nil {
		return fmt.Errorf("bulk %s: %w", s.name, err)
	}
	for i, name := range s.attrs {
		col := out.Col(name)
		if col == nil {
			return fmt.Errorf("bulk %s: missing output attribute %q", s.name, name)
		}
		b := exec.FromColumn(col)
		if err := rt.env.Charge(b.Bytes()); err != nil {
			return fmt.Errorf("bulk %s: %w", s.name, err)
		}
		rt.env.Bufs[s.outBufs[i]] = b
	}
	if rt.stats != nil && s.statsFn != nil {
		rt.stats.Frags = append(rt.stats.Frags, s.statsFn(args, out))
	}
	return nil
}

func (s *bulkStep) stepName() string { return "bulk " + s.name }

// persistStep writes a converted value back to storage.
type persistStep struct {
	name string
	conv converter
}

func (s *persistStep) run(rt *runtime) error {
	v, err := s.conv(rt)
	if err != nil {
		return err
	}
	return rt.plan.st.PersistVector(s.name, v)
}

func (s *persistStep) stepName() string { return "persist " + s.name }

// Run executes the plan and returns the root values.
func (p *Plan) Run() (*Result, error) {
	return p.RunContext(context.Background())
}

// RunContext is Run under the hardening contract: the context (and the
// plan's Deadline limit) cancels between steps and inside fragment loops,
// buffer allocations are charged against the Limits budget, and a panic
// in any step is recovered into a *exec.PanicError so one bad kernel
// fails its query instead of the process.
func (p *Plan) RunContext(ctx context.Context) (*Result, error) {
	if d := p.Limits.Deadline; !d.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, d)
		defer cancel()
	}
	env, err := exec.NewEnvLimited(p.kern, p.Limits)
	if err != nil {
		return nil, err
	}
	rt := &runtime{plan: p, ctx: ctx, env: env}
	res := &Result{Values: map[core.Ref]*vector.Vector{}}
	if p.CollectStats {
		rt.stats = &res.Stats
	}
	for _, s := range p.steps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := runStep(s, rt); err != nil {
			return nil, err
		}
	}
	for _, o := range p.outputs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		v, err := convertProtected(o, rt)
		if err != nil {
			return nil, err
		}
		res.Values[o.ref] = v
	}
	return res, nil
}

// runStep executes one plan step with panic isolation: a panic inside the
// step (a bulk evaluator, a converter, a fragment run on this goroutine)
// becomes a *exec.PanicError naming the step.
func runStep(s step, rt *runtime) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*exec.PanicError); ok {
				err = pe
				return
			}
			err = &exec.PanicError{Fragment: s.stepName(), Value: r, Stack: stack()}
		}
	}()
	return s.run(rt)
}

// convertProtected materializes one root output with the same panic
// isolation as plan steps.
func convertProtected(o output, rt *runtime) (v *vector.Vector, err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*exec.PanicError); ok {
				v, err = nil, pe
				return
			}
			v, err = nil, &exec.PanicError{Fragment: fmt.Sprintf("output v%d", o.ref), Value: r, Stack: stack()}
		}
	}()
	return o.conv(rt)
}

func stack() []byte { return debug.Stack() }

// converter produces the interpreter-layout vector for a compiled value at
// runtime.
type converter func(rt *runtime) (*vector.Vector, error)

// converter builds the conversion closure for a descriptor, emitting any
// materialization fragments needed (at compile time).
func (c *compiler) converter(d *desc) converter {
	d = c.bufferize(c.emitReady(d))
	type slot struct {
		name  string
		buf   int
		valid bool
	}
	var slots []slot
	for _, a := range d.attrs {
		ld := a.ex.(*eLoad)
		slots = append(slots, slot{name: a.name, buf: ld.buf, valid: a.validEx != nil})
	}
	layout, logicalN, stride, countsBuf := d.layout, d.logicalN, d.runLen, d.countsBuf
	n := d.n

	return func(rt *runtime) (*vector.Vector, error) {
		switch layout {
		case layoutDense:
			out := vector.New(n)
			for _, s := range slots {
				out.Set(s.name, rt.env.Bufs[s.buf].Column())
			}
			return out, nil
		case layoutFoldCompact:
			// Expand the suppressed layout: run r sits at padded
			// position r*stride (paper §3.1.2 in reverse).
			out := vector.New(logicalN)
			for _, s := range slots {
				compact := rt.env.Bufs[s.buf]
				var col *vector.Column
				if compact.Kind == vector.Int {
					col = vector.NewEmptyInt(logicalN)
				} else {
					col = vector.NewEmptyFloat(logicalN)
				}
				for r := 0; r < compact.Len(); r++ {
					pos := r * stride
					if pos >= logicalN {
						break
					}
					if compact.Valid != nil && !compact.Valid[r] {
						continue
					}
					if compact.Kind == vector.Int {
						col.SetInt(pos, compact.I[r])
					} else {
						col.SetFloat(pos, compact.F[r])
					}
				}
				out.Set(s.name, col)
			}
			return out, nil
		case layoutGroupCompact:
			// Partition p sits at the prefix sum of the counts.
			counts := rt.env.Bufs[countsBuf].I
			out := vector.New(logicalN)
			for _, s := range slots {
				compact := rt.env.Bufs[s.buf]
				var col *vector.Column
				if compact.Kind == vector.Int {
					col = vector.NewEmptyInt(logicalN)
				} else {
					col = vector.NewEmptyFloat(logicalN)
				}
				pos := 0
				for p := 0; p < compact.Len(); p++ {
					if counts[p] > 0 && pos < logicalN &&
						(compact.Valid == nil || compact.Valid[p]) {
						if compact.Kind == vector.Int {
							col.SetInt(pos, compact.I[p])
						} else {
							col.SetFloat(pos, compact.F[p])
						}
					}
					pos += int(counts[p])
				}
				out.Set(s.name, col)
			}
			return out, nil
		}
		return nil, fmt.Errorf("compile: cannot convert layout %d", layout)
	}
}
