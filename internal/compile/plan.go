package compile

import (
	"context"
	"fmt"
	"log/slog"
	"runtime/debug"
	"time"

	"voodoo/internal/core"
	"voodoo/internal/exec"
	"voodoo/internal/kernel"
	"voodoo/internal/telemetry"
	"voodoo/internal/trace"
	"voodoo/internal/vector"
)

// Plan is a compiled, executable Voodoo program.
type Plan struct {
	prog *core.Program
	st   Storage
	opt  Options
	kern *kernel.Kernel

	steps   []step
	outputs []output

	// CollectStats makes Run count instruction/memory/branch events,
	// which device cost models convert into simulated times.
	CollectStats bool

	// Limits is the per-query resource governor: buffer allocations are
	// charged against MaxBytes, fragment extents checked against
	// MaxExtent, and Deadline enforced as a context deadline.
	Limits exec.Limits
}

// Kernel exposes the generated kernel (fragment listing, OpenCL source
// generation).
func (p *Plan) Kernel() *kernel.Kernel { return p.kern }

type output struct {
	ref  core.Ref
	conv converter
}

// RunOpts are the per-run execution options of a plan. Plans are
// immutable after Compile and safe to run concurrently; everything that
// varies per execution — the governor limits, the buffer pool, stats
// collection — travels here instead of in plan fields, which is what
// makes a cached plan shareable across requests.
type RunOpts struct {
	// Limits is the per-run resource governor (see exec.Limits).
	Limits exec.Limits
	// Pool, when non-nil, supplies the run's kernel buffers and seam
	// materializations from recycled memory; the run's arena is attached
	// to the Result and returned to the pool by Result.Release.
	Pool *vector.Pool
	// CollectStats enables instruction/memory/branch event counting.
	CollectStats bool
	// MorselSize overrides the scheduling granularity of parallel
	// fragments in work items (0 = exec.DefaultMorsel). Results are
	// bit-identical for every value; the knob trades scheduling overhead
	// against skew absorption.
	MorselSize int
	// Specialize selects how much fragment specialization the executor
	// applies (default SpecializeAuto: fused fast paths plus batch
	// primitives). Results are bit-identical across every mode;
	// exec.SpecializeOff is the -no-specialize escape hatch.
	Specialize exec.SpecMode
}

// Result holds root values (in the interpreter's padded layout) and, when
// requested, the execution event counts.
type Result struct {
	Values map[core.Ref]*vector.Vector
	Stats  exec.Stats

	arena *vector.Arena
}

// Release returns the run's pooled buffers to the pool. Values becomes
// invalid — callers must finish reading (or copy out) the root vectors
// first. Release is nil-safe, idempotent, and a no-op for unpooled runs.
func (r *Result) Release() {
	if r == nil || r.arena == nil {
		return
	}
	r.arena.Release()
	r.arena = nil
	r.Values = nil // reads after Release should fail loudly, not read recycled memory
}

// runtime is the mutable state of one plan execution.
type runtime struct {
	plan   *Plan
	ctx    context.Context
	env    *exec.Env
	stats  *exec.Stats
	arena  *vector.Arena
	morsel int
	spec   exec.SpecMode
}

type step interface {
	run(rt *runtime) error
	// stepName labels the step in errors and recovered panics.
	stepName() string
}

// bindStep attaches a storage column to an input buffer.
type bindStep struct {
	buf int
	col *vector.Column
}

func (s *bindStep) run(rt *runtime) error {
	rt.env.Bufs[s.buf] = exec.FromColumnArena(s.col, rt.arena)
	return nil
}

func (s *bindStep) stepName() string { return "bind" }

// fragStep executes one kernel fragment.
type fragStep struct {
	f *kernel.Fragment
}

func (s *fragStep) run(rt *runtime) error {
	var fs *exec.FragStats
	if rt.stats != nil {
		si, sf := s.f.StaticBodyOps()
		rt.stats.Frags = append(rt.stats.Frags, exec.FragStats{
			Name: s.f.Name, Extent: s.f.Extent, Intent: s.f.Intent,
			Sequential: s.f.Sequential(), LocalBytes: int64(s.f.Locals) * 8,
			StaticIntOps: si, StaticFloatOps: sf,
		})
		fs = &rt.stats.Frags[len(rt.stats.Frags)-1]
	}
	return exec.RunFragmentPar(rt.ctx, s.f, rt.env,
		exec.Par{Workers: rt.plan.opt.Workers, Morsel: rt.morsel, Spec: rt.spec}, fs)
}

func (s *fragStep) stepName() string { return "fragment " + s.f.Name }

// bulkStep evaluates one statement with interpreter semantics: inputs are
// converted to vectors, the mini-program runs, and output columns are bound
// to pre-declared buffers. Bulk steps are the compiler's semantic safety
// net and the execution model of the Ocelot baseline.
type bulkStep struct {
	name    string
	stmts   []int // SSA ids this step computes, for provenance
	inputs  []converter
	outBufs []int    // one per output attribute, in attrs order
	attrs   []string // output attribute names
	evalFn  func(args []*vector.Vector, ar *vector.Arena) (*vector.Vector, error)
	statsFn func(args []*vector.Vector, out *vector.Vector) exec.FragStats
}

func (s *bulkStep) run(rt *runtime) error {
	args := make([]*vector.Vector, len(s.inputs))
	for i, conv := range s.inputs {
		v, err := conv.run(rt)
		if err != nil {
			return err
		}
		args[i] = v
	}
	out, err := s.evalFn(args, rt.arena)
	if err != nil {
		return fmt.Errorf("bulk %s: %w", s.name, err)
	}
	for i, name := range s.attrs {
		col := out.Col(name)
		if col == nil {
			return fmt.Errorf("bulk %s: missing output attribute %q", s.name, name)
		}
		b := exec.FromColumnArena(col, rt.arena)
		if err := rt.env.Charge(b.Bytes()); err != nil {
			return fmt.Errorf("bulk %s: %w", s.name, err)
		}
		rt.env.Bufs[s.outBufs[i]] = b
	}
	if rt.stats != nil && s.statsFn != nil {
		rt.stats.Frags = append(rt.stats.Frags, s.statsFn(args, out))
	}
	return nil
}

func (s *bulkStep) stepName() string { return "bulk " + s.name }

// prunedStep records a selection fragment elided at plan time because
// zone-map statistics prove its predicate never passes. Running it is a
// no-op: the output buffers stay zeroed with all-false validity, which is
// bit-identical to executing the fragment.
type prunedStep struct {
	name  string
	stmts []int
	// outBufs are the buffers the elided fragment would have written.
	// They must be declared with a validity mask and left unallocated by
	// no one (non-input), so the zeroed state reads as all-ε; the plan
	// verifier checks exactly that (rule VP004).
	outBufs []int
}

func (s *prunedStep) run(rt *runtime) error { return nil }

func (s *prunedStep) stepName() string { return "pruned " + s.name }

// persistStep writes a converted value back to storage.
type persistStep struct {
	name string
	conv converter
}

func (s *persistStep) run(rt *runtime) error {
	v, err := s.conv.run(rt)
	if err != nil {
		return err
	}
	if rt.arena != nil {
		// Persisted vectors outlive the run; copy them off the arena so
		// releasing the query's buffers cannot corrupt storage.
		v = vector.UnpooledCopy(v)
	}
	return rt.plan.st.PersistVector(s.name, v)
}

func (s *persistStep) stepName() string { return "persist " + s.name }

// Run executes the plan and returns the root values.
func (p *Plan) Run() (*Result, error) {
	return p.RunContext(context.Background())
}

// RunContext is Run under the hardening contract: the context (and the
// plan's Deadline limit) cancels between steps and inside fragment loops,
// buffer allocations are charged against the Limits budget, and a panic
// in any step is recovered into a *exec.PanicError so one bad kernel
// fails its query instead of the process.
func (p *Plan) RunContext(ctx context.Context) (*Result, error) {
	return p.RunWith(ctx, RunOpts{Limits: p.Limits, CollectStats: p.CollectStats})
}

// RunWith executes the plan under per-run options, leaving the plan
// itself untouched — the entry point for shared (cached) plans, which may
// run concurrently with different limits, pools and stats settings.
func (p *Plan) RunWith(ctx context.Context, ro RunOpts) (*Result, error) {
	res, _, err := p.run(ctx, nil, ro)
	return res, err
}

// RunTracedContext is RunContext with per-step tracing: each plan step is
// timed and annotated with its fragment provenance and measured work
// (items, materialized bytes, fold runs, scatter items). The returned
// trace is owned by the caller; tracing forces stats collection for this
// run regardless of CollectStats.
func (p *Plan) RunTracedContext(ctx context.Context) (*Result, *trace.Trace, error) {
	return p.RunTracedWith(ctx, RunOpts{Limits: p.Limits, CollectStats: p.CollectStats})
}

// RunTracedWith is RunWith with per-step tracing.
func (p *Plan) RunTracedWith(ctx context.Context, ro RunOpts) (*Result, *trace.Trace, error) {
	backend := "compiled"
	if p.opt.ForceBulk {
		backend = "bulk-compiled"
	}
	tr := &trace.Trace{Backend: backend, Options: map[string]bool{
		"predication":     p.opt.Predication,
		"forcebulk":       p.opt.ForceBulk,
		"scatterparallel": p.opt.ScatterParallel,
	}}
	// A context-carried observer receives each step as it completes (the
	// diagnostics server's live query progress).
	tr.OnStep = trace.ObserverFrom(ctx)
	return p.run(ctx, tr, ro)
}

func (p *Plan) run(ctx context.Context, tr *trace.Trace, ro RunOpts) (_ *Result, _ *trace.Trace, err error) {
	trace.CountQuery()
	start := time.Now()
	defer func() {
		trace.ObserveQueryWall(time.Since(start))
		exec.NoteDeadline(ro.Limits, err)
	}()
	// Deferred so the one debug record carries the outcome; the Enabled
	// guard keeps the disabled path allocation-free on the hot loop.
	if lg := telemetry.LoggerFrom(ctx); lg.Enabled(ctx, slog.LevelDebug) {
		defer func() {
			attrs := []slog.Attr{
				slog.Int("steps", len(p.steps)),
				slog.Duration("wall", time.Since(start)),
			}
			if err != nil {
				attrs = append(attrs, slog.String("error", err.Error()))
			}
			lg.LogAttrs(ctx, slog.LevelDebug, "compile: plan run", attrs...)
		}()
	}
	if d := ro.Limits.Deadline; !d.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, d)
		defer cancel()
	}
	arena := ro.Pool.NewArena()
	defer func() {
		// A failed run has no Result to release through; recycle its
		// buffers here so errors do not bleed the pool dry.
		if err != nil {
			arena.Release()
		}
	}()
	env, err := exec.NewEnvPooled(p.kern, ro.Limits, arena)
	if err != nil {
		return nil, nil, err
	}
	rt := &runtime{plan: p, ctx: ctx, env: env, arena: arena, morsel: ro.MorselSize, spec: ro.Specialize}
	res := &Result{Values: map[core.Ref]*vector.Vector{}, arena: arena}
	if ro.CollectStats || tr != nil {
		rt.stats = &res.Stats
	}
	for _, s := range p.steps {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		base := len(res.Stats.Frags)
		t0 := time.Now()
		if err := runStep(s, rt); err != nil {
			return nil, nil, err
		}
		if tr != nil {
			tr.Add(p.traceStep(s, res.Stats.Frags[base:], time.Since(t0)))
		}
	}
	for _, o := range p.outputs {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		t0 := time.Now()
		v, err := convertProtected(o, rt)
		if err != nil {
			return nil, nil, err
		}
		res.Values[o.ref] = v
		if tr != nil {
			tr.Add(trace.Step{
				Kind: trace.KindOutput, Name: fmt.Sprintf("v%d", o.ref),
				Stmts: []int{int(o.ref)}, WallNS: time.Since(t0).Nanoseconds(),
				Items:             int64(v.Len()),
				MaterializedBytes: int64(v.Len()) * int64(len(v.Names())) * 8,
			})
		}
	}
	if tr != nil {
		tr.AllocBytes = env.Allocated()
		tr.Finish(time.Since(start))
	}
	return res, tr, nil
}

// traceStep converts one executed step plus the fragment stats it appended
// into a trace record.
func (p *Plan) traceStep(s step, frags []exec.FragStats, wall time.Duration) trace.Step {
	ts := trace.Step{WallNS: wall.Nanoseconds()}
	var fs *exec.FragStats
	if len(frags) > 0 {
		fs = &frags[0]
	}
	switch x := s.(type) {
	case *bindStep:
		ts.Kind, ts.Name = trace.KindBind, p.kern.Bufs[x.buf].Name
	case *persistStep:
		ts.Kind, ts.Name = trace.KindPersist, x.name
	case *prunedStep:
		ts.Kind, ts.Name = trace.KindPruned, x.name
		ts.Stmts = x.stmts
	case *fragStep:
		ts.Kind, ts.Name = trace.KindFragment, x.f.Name
		pv := x.f.Prov
		ts.Stmts, ts.Fused = pv.Stmts, len(pv.Stmts) > 1
		ts.Suppressed, ts.Virtual, ts.Predicated = pv.Suppressed, pv.Virtual, pv.Predicated
		ts.Extent, ts.Intent, ts.N, ts.Strided = x.f.Extent, x.f.Intent, x.f.N, x.f.Strided
		if fs != nil {
			if fs.Wall > 0 {
				ts.WallNS = fs.Wall.Nanoseconds()
			}
			ts.Workers = fs.Workers
			ts.Morsels = int64(fs.Morsels)
			ts.Imbalance = fs.Imbalance
			ts.Specialized = fs.Specialized
			ts.Items = fs.Items
			ts.MaterializedBytes = fs.StoreBytes
			ts.IntOps, ts.FloatOps = fs.IntOps, fs.FloatOps
			ts.SeqBytes, ts.RandAccesses = fs.SeqBytes, fs.RandAccesses
		}
		switch pv.Kind {
		case "fold", "filter-fold", "scan", "group-reduce":
			// One aggregation run per work item.
			ts.FoldRuns = int64(x.f.Extent)
		case "scatter":
			if fs != nil {
				ts.ScatterItems = fs.Items
			}
		}
	case *bulkStep:
		ts.Kind, ts.Name = trace.KindBulk, x.name
		ts.Stmts = x.stmts
		if fs != nil {
			ts.Items = fs.Items
			ts.MaterializedBytes = fs.StoreBytes
			ts.AllocBytes = fs.StoreBytes
			ts.IntOps, ts.FloatOps = fs.IntOps, fs.FloatOps
			ts.SeqBytes, ts.RandAccesses = fs.SeqBytes, fs.RandAccesses
			if x.name == core.OpScatter.String() {
				ts.ScatterItems = fs.Items
			}
			if x.name == core.OpFoldSum.String() || x.name == core.OpFoldMin.String() ||
				x.name == core.OpFoldMax.String() || x.name == core.OpFoldSelect.String() ||
				x.name == core.OpFoldScan.String() {
				ts.FoldRuns = 1
			}
		}
	default:
		ts.Kind, ts.Name = "step", s.stepName()
	}
	return ts
}

// runStep executes one plan step with panic isolation: a panic inside the
// step (a bulk evaluator, a converter, a fragment run on this goroutine)
// becomes a *exec.PanicError naming the step.
func runStep(s step, rt *runtime) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*exec.PanicError); ok {
				err = pe
				return
			}
			err = exec.NewPanicError(s.stepName(), r, stack())
		}
	}()
	return s.run(rt)
}

// convertProtected materializes one root output with the same panic
// isolation as plan steps.
func convertProtected(o output, rt *runtime) (v *vector.Vector, err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*exec.PanicError); ok {
				v, err = nil, pe
				return
			}
			v, err = nil, exec.NewPanicError(fmt.Sprintf("output v%d", o.ref), r, stack())
		}
	}()
	return o.conv.run(rt)
}

func stack() []byte { return debug.Stack() }

// converter produces the interpreter-layout vector for a compiled value at
// runtime. bufs records the kernel buffers the closure reads — provenance
// the plan verifier needs and an opaque function cannot expose.
type converter struct {
	bufs []int
	fn   func(rt *runtime) (*vector.Vector, error)
}

func (c converter) run(rt *runtime) (*vector.Vector, error) { return c.fn(rt) }

// converter builds the conversion closure for a descriptor, emitting any
// materialization fragments needed (at compile time).
func (c *compiler) converter(d *desc) converter {
	d = c.bufferize(c.emitReady(d))
	type slot struct {
		name  string
		buf   int
		valid bool
	}
	var slots []slot
	for _, a := range d.attrs {
		ld := a.ex.(*eLoad)
		slots = append(slots, slot{name: a.name, buf: ld.buf, valid: a.validEx != nil})
	}
	layout, logicalN, stride, countsBuf := d.layout, d.logicalN, d.runLen, d.countsBuf
	n := d.n

	var bufs []int
	for _, s := range slots {
		bufs = append(bufs, s.buf)
	}
	if layout == layoutGroupCompact && countsBuf >= 0 {
		bufs = append(bufs, countsBuf)
	}

	fn := func(rt *runtime) (*vector.Vector, error) {
		switch layout {
		case layoutDense:
			out := vector.New(n)
			for _, s := range slots {
				out.Set(s.name, rt.env.Bufs[s.buf].Column())
			}
			return out, nil
		case layoutFoldCompact:
			// Expand the suppressed layout: run r sits at padded
			// position r*stride (paper §3.1.2 in reverse).
			out := vector.New(logicalN)
			for _, s := range slots {
				compact := rt.env.Bufs[s.buf]
				var col *vector.Column
				if compact.Kind == vector.Int {
					col = rt.arena.EmptyInt(logicalN)
				} else {
					col = rt.arena.EmptyFloat(logicalN)
				}
				for r := 0; r < compact.Len(); r++ {
					pos := r * stride
					if pos >= logicalN {
						break
					}
					if compact.Valid != nil && !compact.Valid[r] {
						continue
					}
					if compact.Kind == vector.Int {
						col.SetInt(pos, compact.I[r])
					} else {
						col.SetFloat(pos, compact.F[r])
					}
				}
				out.Set(s.name, col)
			}
			return out, nil
		case layoutGroupCompact:
			// Partition p sits at the prefix sum of the counts.
			counts := rt.env.Bufs[countsBuf].I
			out := vector.New(logicalN)
			for _, s := range slots {
				compact := rt.env.Bufs[s.buf]
				var col *vector.Column
				if compact.Kind == vector.Int {
					col = rt.arena.EmptyInt(logicalN)
				} else {
					col = rt.arena.EmptyFloat(logicalN)
				}
				pos := 0
				for p := 0; p < compact.Len(); p++ {
					if counts[p] > 0 && pos < logicalN &&
						(compact.Valid == nil || compact.Valid[p]) {
						if compact.Kind == vector.Int {
							col.SetInt(pos, compact.I[p])
						} else {
							col.SetFloat(pos, compact.F[p])
						}
					}
					pos += int(counts[p])
				}
				out.Set(s.name, col)
			}
			return out, nil
		}
		return nil, fmt.Errorf("compile: cannot convert layout %d", layout)
	}
	return converter{bufs: bufs, fn: fn}
}
