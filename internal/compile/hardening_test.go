package compile_test

import (
	"context"
	"errors"
	"testing"

	"voodoo/internal/compile"
	"voodoo/internal/core"
	"voodoo/internal/exec"
	"voodoo/internal/faultinject"
	"voodoo/internal/interp"
	"voodoo/internal/vector"
)

// sumPlan compiles the Figure-3-style hierarchical sum over n values.
func sumPlan(t *testing.T, n int, lim exec.Limits) *compile.Plan {
	t.Helper()
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = 1
	}
	st := interp.MemStorage{
		"input": vector.New(n).Set("val", vector.NewInt(vals)),
	}
	b := core.NewBuilder()
	input := b.Load("input")
	ids := b.Range(input)
	part := b.Project("partition", b.Divide(ids, b.Constant(16)), "")
	withPart := b.Zip("val", input, "val", "partition", part, "partition")
	pSum := b.FoldSum(withPart, "partition", "val")
	b.GlobalSum(pSum, "")
	plan, err := compile.Compile(b.Program(), st, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan.Limits = lim
	return plan
}

func TestPlanRunContextCancelled(t *testing.T) {
	plan := sumPlan(t, 1024, exec.Limits{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := plan.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPlanGovernorMaxBytes(t *testing.T) {
	// The kernel needs several n-slot buffers; a budget far below n*8
	// must fail before any work runs.
	plan := sumPlan(t, 1<<16, exec.Limits{MaxBytes: 1024})
	_, err := plan.RunContext(context.Background())
	if !errors.Is(err, exec.ErrResourceExhausted) {
		t.Fatalf("err = %v, want ErrResourceExhausted", err)
	}
	// A generous budget runs to completion.
	plan = sumPlan(t, 1<<16, exec.Limits{MaxBytes: 1 << 26})
	if _, err := plan.RunContext(context.Background()); err != nil {
		t.Fatalf("within budget: %v", err)
	}
}

// TestPlanFragmentPanicIsolated injects a mid-fragment panic through the
// full compiled-plan path and asserts it surfaces as *exec.PanicError.
func TestPlanFragmentPanicIsolated(t *testing.T) {
	faultinject.With(t, faultinject.Hooks{
		Item: func(frag string, gid int) { panic("injected plan bug") },
	})
	plan := sumPlan(t, 1024, exec.Limits{})
	_, err := plan.RunContext(context.Background())
	var pe *exec.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *exec.PanicError", err, err)
	}
	if pe.Value != "injected plan bug" {
		t.Errorf("panic value = %v", pe.Value)
	}
}

// TestBulkPlanChargesAllocations runs the ForceBulk (Ocelot-style) path,
// whose steps allocate output buffers at runtime, under a tiny budget.
func TestBulkPlanChargesAllocations(t *testing.T) {
	n := 1 << 14
	vals := make([]int64, n)
	st := interp.MemStorage{
		"input": vector.New(n).Set("val", vector.NewInt(vals)),
	}
	b := core.NewBuilder()
	input := b.Load("input")
	ids := b.Range(input)
	b.GlobalSum(b.Project("x", b.Add(ids, ids), ""), "x")
	plan, err := compile.Compile(b.Program(), st, compile.Options{ForceBulk: true})
	if err != nil {
		t.Fatal(err)
	}
	plan.Limits = exec.Limits{MaxBytes: 2048}
	if _, err := plan.RunContext(context.Background()); !errors.Is(err, exec.ErrResourceExhausted) {
		t.Fatalf("err = %v, want ErrResourceExhausted", err)
	}
}
