package compile

import (
	"voodoo/internal/kernel"
	"voodoo/internal/vector"
)

// densify converts a compact (empty-slot-suppressed) value back into the
// padded dense layout. Position-sensitive consumers — Gather sources and
// positions, FoldSelect, FoldScan, folds with non-global control — need the
// padded index space the interpreter defines.
//
// For fold-compact layouts the expansion is pure index arithmetic (slot i
// holds run i/stride iff i lands on a run start), so no data moves; for
// group-compact layouts the run starts depend on data (partition counts)
// and a runtime expansion step materializes the padded buffers.
func (c *compiler) densify(d *desc) *desc {
	d = c.emitReady(d)
	switch d.layout {
	case layoutDense:
		return d
	case layoutFoldCompact:
		d = c.bufferize(d)
		stride := max(d.runLen, 1)
		out := &desc{n: d.logicalN}
		runIdx := binExpr(kernel.BDiv, theIdx, constI(int64(stride)))
		onStart := &eBin{op: kernel.BEq,
			a: binExpr(kernel.BMod, theIdx, constI(int64(stride))),
			b: constI(0)}
		for _, a := range d.attrs {
			ld := a.ex.(*eLoad)
			var valid expr = onStart
			if a.validEx != nil {
				valid = &eBin{op: kernel.BAnd, a: onStart,
					b: &eLoadValid{buf: ld.buf, idx: runIdx}}
			}
			out.attrs = append(out.attrs, attr{
				name:    a.name,
				ex:      &eLoad{buf: ld.buf, k: ld.k, idx: runIdx},
				validEx: valid,
			})
		}
		return out
	default:
		// Group-compact (data-dependent run starts) and anything else:
		// expand through the converter at runtime.
		return c.expandAtRuntime(d)
	}
}

// expandAtRuntime emits a bulk identity step that converts the value to its
// padded vector form and binds the padded columns to fresh buffers.
func (c *compiler) expandAtRuntime(d *desc) *desc {
	conv := c.converter(d)
	n := d.logical()
	out := &desc{n: n}
	var outBufs []int
	var names []string
	for _, a := range d.attrs {
		buf := c.addBuf("expand."+a.name, a.kind(), n, false, true)
		outBufs = append(outBufs, buf)
		names = append(names, a.name)
		out.attrs = append(out.attrs, attr{name: a.name,
			ex:      &eLoad{buf: buf, k: a.kind(), idx: theIdx},
			validEx: &eLoadValid{buf: buf, idx: theIdx}})
	}
	c.plan.steps = append(c.plan.steps, &bulkStep{
		name:    "expand",
		inputs:  []converter{conv},
		outBufs: outBufs,
		attrs:   names,
		evalFn: func(args []*vector.Vector, _ *vector.Arena) (*vector.Vector, error) {
			return args[0], nil
		},
		statsFn: bulkStats("expand", false),
	})
	return out
}
