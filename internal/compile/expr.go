// Package compile is the Voodoo compiling backend (paper §3.1): it lowers
// Voodoo programs into kernel IR fragments, fusing operator chains into
// fully inlined loop nests and materializing only at fragment seams.
//
// The compiler implements the paper's key backend techniques:
//
//   - fragment formation with Extent/Intent derived from control-vector
//     run metadata (§3.1.1, "Controlling Parallelism");
//   - run metadata propagation through Divide/Modulo/Add (§3.1.1,
//     "Maintaining Run Metadata");
//   - empty-slot suppression: fold outputs occupy one slot per run plus
//     count metadata instead of ε-padded full-size vectors (§3.1.2);
//   - virtual scatter: a scatter whose positions derive from a Partition of
//     a generated control vector dissolves into index arithmetic (§3.1.3);
//   - predication as a compile-time flag on selection folds, and chunked
//     (vectorized) selection via the control vector's run length.
//
// Operator shapes outside the fused fast paths fall back to bulk steps
// (interpreter-style materializing evaluation), preserving semantics for
// arbitrary programs; the differential tests in this package rely on that.
package compile

import (
	"fmt"

	"voodoo/internal/kernel"
	"voodoo/internal/vector"
)

// expr is a per-element scalar expression over the logical index of a
// vector. Expression nodes are shared (the dataflow is a DAG), and the
// per-fragment emitter memoizes by node identity, which yields common
// subexpression elimination inside each fragment.
type expr interface {
	kind() vector.Kind
}

// eIdx is the logical element index itself.
type eIdx struct{}

func (eIdx) kind() vector.Kind { return vector.Int }

// theIdx is the shared index leaf; using one instance maximizes CSE hits.
var theIdx = &eIdx{}

// eConst is a literal.
type eConst struct {
	isF bool
	i   int64
	f   float64
}

func (e *eConst) kind() vector.Kind {
	if e.isF {
		return vector.Float
	}
	return vector.Int
}

func constI(v int64) *eConst   { return &eConst{i: v} }
func constF(v float64) *eConst { return &eConst{isF: true, f: v} }

// eGen is a generated control-vector value: meta.Value(idx). The run
// metadata rides along so folds can derive their loop structure from it.
type eGen struct {
	m vector.RunMeta
}

func (e *eGen) kind() vector.Kind { return vector.Int }

// eLoad reads buf[idx].
type eLoad struct {
	buf int
	k   vector.Kind
	idx expr
}

func (e *eLoad) kind() vector.Kind { return e.k }

// eLoadValid reads the validity of buf[idx] as 0/1 and treats out-of-bounds
// indices as invalid (matching Gather's ε semantics).
type eLoadValid struct {
	buf int
	idx expr
}

func (e *eLoadValid) kind() vector.Kind { return vector.Int }

// eBin applies a binary ALU op; comparisons yield Int regardless of operand
// kinds.
type eBin struct {
	op   kernel.BinOp
	a, b expr
}

func (e *eBin) kind() vector.Kind {
	switch e.op {
	case kernel.BGt, kernel.BGe, kernel.BEq:
		return vector.Int
	}
	if e.a.kind() == vector.Float || e.b.kind() == vector.Float {
		return vector.Float
	}
	return vector.Int
}

// eSel is branch-free selection: c != 0 ? a : b.
type eSel struct {
	c, a, b expr
}

func (e *eSel) kind() vector.Kind {
	if e.a.kind() == vector.Float || e.b.kind() == vector.Float {
		return vector.Float
	}
	return vector.Int
}

// eCast converts between the two scalar kinds.
type eCast struct {
	toF bool
	a   expr
}

func (e *eCast) kind() vector.Kind {
	if e.toF {
		return vector.Float
	}
	return vector.Int
}

// metaBounds returns the inclusive value range a generated attribute takes
// over indices [0, n).
func metaBounds(m vector.RunMeta, n int) (int64, int64) {
	if n <= 0 {
		return 0, -1
	}
	if m.Cap > 0 {
		return 0, m.Cap - 1
	}
	last := m.Value(n - 1)
	first := m.From
	if m.StepNum < 0 {
		return last, first
	}
	return first, last
}

// genMetaOf returns the run metadata of an expression if it is a generated
// control vector (possibly behind metadata-preserving arithmetic).
func genMetaOf(e expr) (vector.RunMeta, bool) {
	g, ok := e.(*eGen)
	if !ok {
		return vector.RunMeta{}, false
	}
	return g.m, true
}

// binExpr builds a binary expression, folding control-vector metadata
// through the operation when possible (paper §3.1: "Dividing a vector by a
// constant x is equivalent to dividing step by x. A modulo by x is setting
// the cap to x.").
func binExpr(op kernel.BinOp, a, b expr) expr {
	if g, ok := a.(*eGen); ok {
		if c, ok2 := b.(*eConst); ok2 && !c.isF {
			if m, ok3 := propagateMeta(op, g.m, c.i); ok3 {
				return &eGen{m: m}
			}
		}
	}
	// Constant folding keeps emitted kernels lean.
	if ca, ok := a.(*eConst); ok && !ca.isF {
		if cb, ok2 := b.(*eConst); ok2 && !cb.isF {
			if v, ok3 := foldConstI(op, ca.i, cb.i); ok3 {
				return constI(v)
			}
		}
	}
	return &eBin{op: op, a: a, b: b}
}

func propagateMeta(op kernel.BinOp, m vector.RunMeta, c int64) (vector.RunMeta, bool) {
	switch op {
	case kernel.BDiv:
		return m.Divide(c)
	case kernel.BMod:
		return m.Modulo(c)
	case kernel.BAdd:
		if m.Cap == 0 {
			out := m
			out.From += c
			return out, true
		}
	case kernel.BSub:
		if m.Cap == 0 {
			out := m
			out.From -= c
			return out, true
		}
	case kernel.BMul:
		// floor(i*n/d)*c folds into the step only for integral steps.
		if m.Cap == 0 && m.Den() == 1 {
			return vector.RunMeta{From: m.From * c, StepNum: m.StepNum * c, StepDen: 1}, true
		}
	}
	return vector.RunMeta{}, false
}

func foldConstI(op kernel.BinOp, a, b int64) (int64, bool) {
	switch op {
	case kernel.BAdd:
		return a + b, true
	case kernel.BSub:
		return a - b, true
	case kernel.BMul:
		return a * b, true
	case kernel.BDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case kernel.BMod:
		if b == 0 {
			return 0, false
		}
		m := a % b
		if m < 0 {
			m += b
		}
		return m, true
	}
	return 0, false
}

// emitter lowers expressions into a fragment's instruction stream with
// node-identity memoization (per-fragment CSE).
type emitter struct {
	next  kernel.Reg
	memo  map[expr]kernel.Reg
	out   *[]kernel.Instr
	idxAt kernel.Reg // register holding the logical index (usually RegIdx)
}

func newEmitter(out *[]kernel.Instr) *emitter {
	return &emitter{next: kernel.FirstFree, memo: map[expr]kernel.Reg{}, out: out, idxAt: kernel.RegIdx}
}

// alloc reserves a fresh virtual register.
func (em *emitter) alloc() kernel.Reg {
	r := em.next
	em.next++
	return r
}

// to redirects emission into a different instruction list (e.g. the second
// loop of a fragment); the register space and memo persist, but memoized
// values computed in earlier loops remain visible only because loop bodies
// of a fragment share the work item's register file.
func (em *emitter) to(out *[]kernel.Instr) {
	em.out = out
}

func (em *emitter) push(in kernel.Instr) {
	*em.out = append(*em.out, in)
}

// emit lowers e and returns the register holding its value.
func (em *emitter) emit(e expr) kernel.Reg {
	if r, ok := em.memo[e]; ok {
		return r
	}
	r := em.emitNew(e)
	em.memo[e] = r
	return r
}

// invalidateIdx must be called when the meaning of the index register
// changes (new loop over a different index space): all memoized values are
// dropped because they may depend on it.
func (em *emitter) invalidateIdx() {
	em.memo = map[expr]kernel.Reg{}
}

func (em *emitter) emitNew(e expr) kernel.Reg {
	switch x := e.(type) {
	case *eIdx:
		return em.idxAt
	case *eGID:
		return kernel.RegGID
	case *ePos:
		// thePos must have been bound in the memo by the fold emitter;
		// reaching here means a pipeline leaf escaped its pipeline.
		cerrf("internal: unbound selected-position leaf")
	case *ePartRef, *eOpaque:
		cerrf("internal: %T must be resolved before emission", e)
	case *eConst:
		r := em.alloc()
		if x.isF {
			em.push(kernel.Instr{Op: kernel.IConstF, Dst: r, FImm: x.f})
		} else {
			em.push(kernel.Instr{Op: kernel.IConstI, Dst: r, Imm: x.i})
		}
		return r
	case *eGen:
		return em.emitGen(x)
	case *eLoad:
		idx := em.emit(x.idx)
		r := em.alloc()
		em.push(kernel.Instr{Op: kernel.ILoad, Dst: r, A: idx, Buf: x.buf,
			Float: x.k == vector.Float, Seq: x.idx == expr(theIdx)})
		return r
	case *eLoadValid:
		idx := em.emit(x.idx)
		r := em.alloc()
		em.push(kernel.Instr{Op: kernel.ILoadValid, Dst: r, A: idx, Buf: x.buf,
			Seq: x.idx == expr(theIdx)})
		return r
	case *eBin:
		return em.emitBin(x)
	case *eSel:
		c := em.emitAs(x.c, vector.Int)
		isF := e.kind() == vector.Float
		a := em.emitAs(x.a, e.kind())
		b := em.emitAs(x.b, e.kind())
		r := em.alloc()
		em.push(kernel.Instr{Op: kernel.ISel, Dst: r, A: c, B: a, C: b, Float: isF})
		return r
	case *eCast:
		a := em.emit(x.a)
		r := em.alloc()
		if x.toF {
			em.push(kernel.Instr{Op: kernel.ICastIF, Dst: r, A: a})
		} else {
			em.push(kernel.Instr{Op: kernel.ICastFI, Dst: r, A: a})
		}
		return r
	}
	// Invariant violation: expr is a closed set of types this package
	// constructs itself; an unknown type is a compiler bug, recovered into
	// *exec.PanicError at the plan-step boundary.
	panic(fmt.Sprintf("compile: unknown expr %T", e))
}

// emitAs emits e and converts it to kind k if necessary.
func (em *emitter) emitAs(e expr, k vector.Kind) kernel.Reg {
	if e.kind() == k {
		return em.emit(e)
	}
	return em.emit(&eCast{toF: k == vector.Float, a: e})
}

// emitGen computes (from + floor(idx*num/den)) mod cap from the run
// metadata — exact integer arithmetic throughout, matching the hand-written
// code the paper compares against.
func (em *emitter) emitGen(g *eGen) kernel.Reg {
	return em.emit(genFormula(g.m))
}

func (em *emitter) emitBin(x *eBin) kernel.Reg {
	resKind := x.kind()
	opKind := resKind
	// Comparisons produce Int but may compare floats.
	if x.a.kind() == vector.Float || x.b.kind() == vector.Float {
		opKind = vector.Float
	}
	a := em.emitAs(x.a, opKind)
	b := em.emitAs(x.b, opKind)
	r := em.alloc()
	em.push(kernel.Instr{Op: kernel.IBin, BOp: x.op, Dst: r, A: a, B: b,
		Float: opKind == vector.Float})
	if opKind == vector.Float && resKind == vector.Int {
		c := em.alloc()
		em.push(kernel.Instr{Op: kernel.ICastFI, Dst: c, A: r})
		return c
	}
	return r
}
