package compile

import (
	"math"

	"voodoo/internal/kernel"
	"voodoo/internal/vector"
)

// Zone-map pruning: storage column statistics (min/max per column) flow
// into the compiler, which runs interval analysis over selection
// predicates. A predicate whose value range is provably [0, 0] can never
// pass its guard, so the selection fragment is elided at plan time and
// replaced by a prunedStep: the output buffers stay declared (and arrive
// zeroed with all-false validity, bit-identical to what the fragment
// would have produced), but no work items ever run.
//
// Statistics describe the catalog the plan was compiled against; plan
// caches must evict on catalog swaps (they already must — data sizes are
// compile-time constants too).

// StatsProvider is the optional interface a Storage may implement to
// expose per-column value ranges to the compiler. vec is the LoadVector
// name, col the column within it; the returned range is inclusive and
// must cover every raw stored value (including in-band null sentinels).
// ok must be false whenever the range is unknown or not exactly
// representable in float64.
type StatsProvider interface {
	ColumnRange(vec, col string) (lo, hi float64, ok bool)
}

// valRange is an inclusive interval over the values an expression can
// take. Bounds are float64 but exact for integer-valued expressions: the
// analysis gives up past 2^52, so interval arithmetic never rounds (and
// never needs to reason about int64 wraparound).
type valRange struct{ lo, hi float64 }

// rangeExact bounds the magnitude below which float64 holds every
// integer exactly and int64 arithmetic on in-range operands cannot wrap.
const rangeExact = 1 << 52

func (r valRange) exact() bool {
	return math.Abs(r.lo) < rangeExact && math.Abs(r.hi) < rangeExact
}

// recordRange remembers the value range of an input buffer when the
// storage provides statistics for it.
func (c *compiler) recordRange(buf int, vec, col string) {
	sp, ok := c.st.(StatsProvider)
	if !ok {
		return
	}
	lo, hi, ok := sp.ColumnRange(vec, col)
	if !ok || math.IsNaN(lo) || math.IsNaN(hi) || lo > hi {
		return
	}
	if c.ranges == nil {
		c.ranges = map[int]valRange{}
	}
	c.ranges[buf] = valRange{lo, hi}
}

// pruneEmpty reports whether interval analysis proves pred is always
// zero, i.e. the guarded selection can never pass.
func (c *compiler) pruneEmpty(pred expr) bool {
	r, ok := c.rangeOf(pred)
	return ok && r.lo == 0 && r.hi == 0
}

// rangeOf computes a sound inclusive interval for e, or ok=false when no
// finite bound is known. All arithmetic stays below the float64 exactness
// limit, so integer intervals are exact; float intervals rely on the
// monotonicity of IEEE rounding for soundness.
func (c *compiler) rangeOf(e expr) (valRange, bool) {
	switch x := e.(type) {
	case *eConst:
		v := x.f
		if !x.isF {
			if x.i >= rangeExact || x.i <= -rangeExact {
				return valRange{}, false
			}
			v = float64(x.i)
		}
		if math.IsNaN(v) {
			return valRange{}, false
		}
		return valRange{v, v}, true
	case *eLoad:
		r, ok := c.ranges[x.buf]
		return r, ok
	case *eLoadValid:
		return valRange{0, 1}, true
	case *eGen:
		// A capped generator cycles through [0, Cap); uncapped metadata
		// depends on the vector length, which this node does not carry.
		if x.m.Cap > 0 && x.m.Cap <= rangeExact {
			return valRange{0, float64(x.m.Cap - 1)}, true
		}
		return valRange{}, false
	case *eBin:
		return c.rangeOfBin(x)
	case *eSel:
		// A decided condition selects one branch; otherwise the value is
		// the union of both. Float conditions stay undecided: NaN evades
		// any interval yet is nonzero after the int cast.
		if cr, ok := c.rangeOf(x.c); ok && x.c.kind() != vector.Float {
			if cr.lo > 0 || cr.hi < 0 {
				return c.rangeOf(x.a)
			}
			if cr.lo == 0 && cr.hi == 0 {
				return c.rangeOf(x.b)
			}
		}
		a, ok := c.rangeOf(x.a)
		if !ok {
			return valRange{}, false
		}
		b, ok := c.rangeOf(x.b)
		if !ok {
			return valRange{}, false
		}
		return valRange{min(a.lo, b.lo), max(a.hi, b.hi)}, true
	case *eCast:
		a, ok := c.rangeOf(x.a)
		if !ok {
			return valRange{}, false
		}
		if x.toF {
			return a, true // int to float is exact below 2^52
		}
		// Float-to-int is unbounded on NaN operands, which column
		// statistics cannot rule out — no claim.
		return valRange{}, false
	}
	// eIdx, eGID, ePos, ePartRef, eOpaque: index-dependent or pipeline
	// placeholders — no value bound.
	return valRange{}, false
}

func (c *compiler) rangeOfBin(x *eBin) (valRange, bool) {
	a, ok := c.rangeOf(x.a)
	if !ok {
		return valRange{}, false
	}
	b, ok := c.rangeOf(x.b)
	if !ok {
		return valRange{}, false
	}
	// Column statistics cannot rule out NaN in float columns, and every
	// comparison on NaN yields 0 — so "provably 0" stays sound on float
	// operands, but "provably 1" does not and is never claimed for them.
	float := x.a.kind() == vector.Float || x.b.kind() == vector.Float
	switch x.op {
	case kernel.BAdd:
		r := valRange{a.lo + b.lo, a.hi + b.hi}
		return r, r.exact()
	case kernel.BSub:
		r := valRange{a.lo - b.hi, a.hi - b.lo}
		return r, r.exact()
	case kernel.BMul:
		p1, p2, p3, p4 := a.lo*b.lo, a.lo*b.hi, a.hi*b.lo, a.hi*b.hi
		r := valRange{min(p1, p2, p3, p4), max(p1, p2, p3, p4)}
		return r, r.exact()
	case kernel.BMin:
		return valRange{min(a.lo, b.lo), min(a.hi, b.hi)}, true
	case kernel.BMax:
		return valRange{max(a.lo, b.lo), max(a.hi, b.hi)}, true
	case kernel.BGt:
		if a.lo > b.hi && !float {
			return valRange{1, 1}, true
		}
		if a.hi <= b.lo {
			return valRange{0, 0}, true
		}
		return valRange{0, 1}, true
	case kernel.BGe:
		if a.lo >= b.hi && !float {
			return valRange{1, 1}, true
		}
		if a.hi < b.lo {
			return valRange{0, 0}, true
		}
		return valRange{0, 1}, true
	case kernel.BEq:
		if a.hi < b.lo || b.hi < a.lo {
			return valRange{0, 0}, true
		}
		if a.lo == a.hi && b.lo == b.hi && a.lo == b.lo && !float {
			return valRange{1, 1}, true
		}
		return valRange{0, 1}, true
	case kernel.BAnd, kernel.BOr:
		// Only meaningful as logical combinators over 0/1 predicates;
		// arbitrary bitwise operands stay unknown.
		if a.lo < 0 || a.hi > 1 || b.lo < 0 || b.hi > 1 {
			return valRange{}, false
		}
		if x.op == kernel.BAnd {
			return valRange{min(a.lo, b.lo) * min(a.hi, b.hi), min(a.hi, b.hi)}, true
		}
		return valRange{max(a.lo, b.lo), max(a.hi, b.hi)}, true
	}
	// Division, modulo, shifts: trapping or wrap-prone — unknown.
	return valRange{}, false
}
