package compile

import (
	"math/rand"
	"testing"

	"voodoo/internal/core"
	"voodoo/internal/interp"
	"voodoo/internal/vector"
)

// TestBoundedCuckooTable demonstrates the paper's §6 claim: cuckoo hashing
// "can only be approximated in Voodoo because each cuckoo iteration needs
// to (logically) create a new data structure ... the program grows linearly
// with the number of cuckoo-iterations", which "bounds the number of
// possible iterations to a (reasonably small) constant".
//
// Each round scatters every key at its current hash choice into a brand-new
// table (write-once, no hidden state); keys that lost their slot flip to
// their other hash function for the next round. After a bounded number of
// rounds every key owns its slot — verified by a gather at the assigned
// position. Both backends must agree bit-for-bit.
func TestBoundedCuckooTable(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	n := 64
	m := int64(4 * n) // load factor 1/4: a handful of rounds settles all keys
	seen := map[int64]bool{}
	keys := make([]int64, 0, n)
	for len(keys) < n {
		k := 1 + r.Int63n(100000)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}

	st := interp.MemStorage{"keys": vector.New(n).Set("k", vector.NewInt(keys))}
	b := core.NewBuilder()
	ks := b.Load("keys")
	keyCol := b.Project("k", ks, "k")

	// The two hash choices.
	h1 := b.Modulo(keyCol, b.Constant(m))
	h2 := b.Modulo(b.BitShift(
		b.Multiply(keyCol, b.Constant(2654435761)), b.Constant(-11)),
		b.Constant(m))

	sizeVec := b.RangeN(0, int(m), 1)
	one := b.Constant(1)
	two := b.Constant(2)

	// choice[k] ∈ {0, 1} selects h1 or h2; start with h1 for everyone.
	choice := b.Multiply(keyCol, b.Constant(0))

	const rounds = 8
	var won core.Ref
	for round := 0; round < rounds; round++ {
		// p = h1*(1-choice) + h2*choice — pure arithmetic choice.
		p := b.Add(
			b.Multiply(h1, b.Subtract(one, choice)),
			b.Multiply(h2, choice))
		// A logically new table every round: scatter all keys at their
		// current choice. Conflicting writes: the later key wins.
		src := b.Zip("k", keyCol, "", "p", p, "")
		table := b.Scatter(b.Project("k", src, "k"), sizeVec, "", src, "p")
		// Who owns their slot?
		check := b.Gather(table, src, "p")
		won = b.Arith(core.OpEquals, "w", check, "", keyCol, "")
		if round == rounds-1 {
			break
		}
		// Losers flip to the other hash for the next (re-created) table.
		lost := b.Subtract(one, won)
		choice = b.Modulo(b.Add(choice, lost), two)
	}
	total := b.FoldSum(won, "", "")

	prog := b.Program()

	// The two backends must agree exactly.
	want, err := interp.Run(prog, st)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	plan, err := Compile(prog, st, Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	got, err := plan.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for ref, gv := range got.Values {
		if !gv.Equal(want.Value(ref)) {
			t.Fatalf("backends disagree on v%d", ref)
		}
	}

	// Nearly every key settles within the bounded rounds. A perfect
	// cuckoo build displaces the incumbent on conflict; the write-once
	// approximation can leave a small residue of keys whose both slots
	// are owned — precisely the limitation the paper describes ("the
	// former can be implemented ... the latter can only be approximated").
	foundCount := want.Value(total).SingleCol()
	if !foundCount.Valid(0) || foundCount.Int(0) < int64(n)-2 {
		t.Fatalf("cuckoo placement settled only %d of %d keys", foundCount.Int(0), n)
	}

	// The claimed growth: statically bounded, linear in the round count.
	if len(prog.Stmts) > 20*rounds {
		t.Errorf("program should stay linear in rounds: %d statements", len(prog.Stmts))
	}
}
