package compile

import (
	"fmt"
	"strings"

	"voodoo/internal/kernel"
)

// Explain renders the static execution plan: the step sequence with each
// fragment's control-vector shape (extent × intent), the SSA statements
// fused into it, and the fusion decisions (empty-slot suppression, virtual
// scatter, predication) the compiler took — the EXPLAIN view, no execution.
func (p *Plan) Explain() string {
	var sb strings.Builder
	backend := "compiled"
	if p.opt.ForceBulk {
		backend = "bulk-compiled"
	}
	var opts []string
	if p.opt.Predication {
		opts = append(opts, "predication")
	}
	if p.opt.ScatterParallel {
		opts = append(opts, "scatterparallel")
	}
	fmt.Fprintf(&sb, "plan: %s backend", backend)
	if len(opts) > 0 {
		fmt.Fprintf(&sb, " (%s)", strings.Join(opts, ", "))
	}
	sb.WriteString("\n")

	var inBufs, tmpBufs int
	var bufBytes int64
	for _, b := range p.kern.Bufs {
		if b.Input {
			inBufs++
		} else {
			tmpBufs++
		}
		sz := int64(b.Size) * 8
		if b.Valid {
			sz += int64(b.Size)
		}
		bufBytes += sz
	}
	fmt.Fprintf(&sb, "buffers: %d (%d input, %d temp), %dB\n",
		len(p.kern.Bufs), inBufs, tmpBufs, bufBytes)

	for i, s := range p.steps {
		fmt.Fprintf(&sb, "%3d. ", i)
		switch x := s.(type) {
		case *bindStep:
			fmt.Fprintf(&sb, "bind     %s", p.kern.Bufs[x.buf].Name)
		case *persistStep:
			fmt.Fprintf(&sb, "persist  %s", x.name)
		case *fragStep:
			f := x.f
			mode := "blocked"
			if f.Strided {
				mode = "strided"
			}
			fmt.Fprintf(&sb, "fragment %-14s shape=%dx%d/%s n=%d",
				f.Name, f.Extent, f.Intent, mode, f.N)
			if f.Locals > 0 {
				fmt.Fprintf(&sb, " locals=%d", f.Locals)
			}
			writeProvenance(&sb, f.Prov.Stmts, provFlags(f))
		case *bulkStep:
			fmt.Fprintf(&sb, "bulk     %-14s", x.name)
			writeProvenance(&sb, x.stmts, nil)
		default:
			fmt.Fprintf(&sb, "step     %s", s.stepName())
		}
		sb.WriteString("\n")
	}
	var outs []string
	for _, o := range p.outputs {
		outs = append(outs, fmt.Sprintf("v%d", o.ref))
	}
	fmt.Fprintf(&sb, "outputs: %s\n", strings.Join(outs, ", "))
	return sb.String()
}

// provFlags lists a fragment's fusion-decision flags for display.
func provFlags(f *kernel.Fragment) []string {
	var flags []string
	if f.Prov.Kind != "" {
		flags = append(flags, f.Prov.Kind)
	}
	if f.Prov.Suppressed {
		flags = append(flags, "suppress")
	}
	if f.Prov.Virtual {
		flags = append(flags, "virtual")
	}
	if f.Prov.Predicated {
		flags = append(flags, "predicated")
	}
	return flags
}

// writeProvenance appends " stmts=[...]" and " [flags]" when present.
func writeProvenance(sb *strings.Builder, stmts []int, flags []string) {
	if len(stmts) > 0 {
		parts := make([]string, len(stmts))
		for i, id := range stmts {
			parts[i] = fmt.Sprintf("v%d", id)
		}
		fmt.Fprintf(sb, " stmts=[%s]", strings.Join(parts, " "))
		if len(stmts) > 1 {
			fmt.Fprintf(sb, " fused:%d", len(stmts))
		}
	}
	if len(flags) > 0 {
		fmt.Fprintf(sb, " [%s]", strings.Join(flags, " "))
	}
}
