// Plan-level verification (package verify's second level, implemented here
// because the step structure is private to the compiler): every step's
// buffer inputs must be resolved before they are read, bulk steps must keep
// their attribute/buffer schemas aligned across the fragment boundary,
// zone-map pruned steps must leave outputs that read back as all-ε, and
// scatter provenance must match the access patterns actually emitted.
package compile

import (
	"fmt"

	"voodoo/internal/kernel"
	"voodoo/internal/verify"
)

// Verify statically checks the compiled plan and its kernel. It returns
// the combined kernel-, fragment- and plan-level diagnostics; an empty
// slice means the plan is well-formed. Plans produced by Compile are
// expected to verify clean — difftest and the TPC-H golden tests pin that.
func (p *Plan) Verify() []verify.Diagnostic {
	diags := verify.Kernel(p.kern)
	nbufs := len(p.kern.Bufs)
	// written tracks buffers bound or produced by an earlier step. Buffers
	// that are not declared Input are pre-allocated (zeroed) by the
	// executor, so reading them early is suspicious but defined; reading
	// an unbound Input buffer dereferences a nil buffer.
	written := make([]bool, nbufs)

	stepPos := func(s step) verify.Pos {
		return verify.Pos{Stmt: -1, Index: -1, Step: s.stepName()}
	}
	checkRead := func(pos verify.Pos, buf int, what string) {
		if buf < 0 || buf >= nbufs {
			diags = append(diags, verify.Diagnostic{Level: verify.Error, Pos: pos, Rule: verify.RulePlanBufRange,
				Msg: fmt.Sprintf("%s reads buf %d outside the kernel's %d declarations", what, buf, nbufs)})
			return
		}
		if written[buf] {
			return
		}
		if p.kern.Bufs[buf].Input {
			diags = append(diags, verify.Diagnostic{Level: verify.Error, Pos: pos, Rule: verify.RuleInputUnbound,
				Msg: fmt.Sprintf("%s reads input buf %d (%s) before any bind or producing step", what, buf, p.kern.Bufs[buf].Name)})
		} else {
			diags = append(diags, verify.Diagnostic{Level: verify.Warn, Pos: pos, Rule: verify.RuleUseBeforeProd,
				Msg: fmt.Sprintf("%s reads buf %d (%s) before any producing step", what, buf, p.kern.Bufs[buf].Name)})
		}
	}
	markWritten := func(pos verify.Pos, buf int, what string) {
		if buf < 0 || buf >= nbufs {
			diags = append(diags, verify.Diagnostic{Level: verify.Error, Pos: pos, Rule: verify.RulePlanBufRange,
				Msg: fmt.Sprintf("%s writes buf %d outside the kernel's %d declarations", what, buf, nbufs)})
			return
		}
		written[buf] = true
	}

	for _, s := range p.steps {
		pos := stepPos(s)
		switch x := s.(type) {
		case *bindStep:
			markWritten(pos, x.buf, "bind")
		case *fragStep:
			reads, writes := fragBufAccess(x.f)
			for _, b := range reads {
				checkRead(pos, b, "fragment load")
			}
			for _, b := range writes {
				markWritten(pos, b, "fragment store")
			}
			diags = append(diags, checkScatterProv(x.f)...)
		case *bulkStep:
			if len(x.attrs) != len(x.outBufs) {
				diags = append(diags, verify.Diagnostic{Level: verify.Error, Pos: pos, Rule: verify.RulePlanSchema,
					Msg: fmt.Sprintf("bulk step has %d output attrs but %d output buffers", len(x.attrs), len(x.outBufs))})
			}
			for _, conv := range x.inputs {
				for _, b := range conv.bufs {
					checkRead(pos, b, "bulk input")
				}
			}
			for _, b := range x.outBufs {
				markWritten(pos, b, "bulk output")
			}
		case *prunedStep:
			for _, b := range x.outBufs {
				if b < 0 || b >= nbufs {
					diags = append(diags, verify.Diagnostic{Level: verify.Error, Pos: pos, Rule: verify.RulePlanBufRange,
						Msg: fmt.Sprintf("pruned output buf %d outside the kernel's %d declarations", b, nbufs)})
					continue
				}
				decl := p.kern.Bufs[b]
				// A pruned output is never written at run time: it must be
				// executor-allocated (non-input) and carry a validity mask
				// so its zeroed state reads back as all-ε.
				if decl.Input || !decl.Valid {
					diags = append(diags, verify.Diagnostic{Level: verify.Error, Pos: pos, Rule: verify.RulePrunedOutput,
						Msg: fmt.Sprintf("pruned output buf %d (%s) cannot represent all-ε (input=%v valid=%v)", b, decl.Name, decl.Input, decl.Valid)})
				}
				written[b] = true
			}
		case *persistStep:
			for _, b := range x.conv.bufs {
				checkRead(pos, b, "persist input")
			}
		}
	}
	for _, o := range p.outputs {
		pos := verify.Pos{Stmt: -1, Index: -1, Step: fmt.Sprintf("output v%d", o.ref)}
		for _, b := range o.conv.bufs {
			checkRead(pos, b, "output")
		}
	}
	return diags
}

// fragBufAccess returns the buffers a fragment loads and stores, each in
// first-touch order without duplicates.
func fragBufAccess(f *kernel.Fragment) (reads, writes []int) {
	seenR := map[int]bool{}
	seenW := map[int]bool{}
	scan := func(body []kernel.Instr) {
		for _, in := range body {
			switch in.Op {
			case kernel.ILoad, kernel.ILoadValid:
				if !seenR[in.Buf] {
					seenR[in.Buf] = true
					reads = append(reads, in.Buf)
				}
			case kernel.IStore:
				if !seenW[in.Buf] {
					seenW[in.Buf] = true
					writes = append(writes, in.Buf)
				}
			}
		}
	}
	scan(f.Pre)
	for _, l := range f.Loops {
		scan(l.Body)
	}
	scan(f.Post)
	scan(f.PostLoopBody)
	return reads, writes
}

// checkScatterProv audits the fragment's scatter provenance against the
// stores it actually emits: a Virtual fragment dissolved its scatter into
// index arithmetic, so every remaining store must be sequential (VP005); a
// fragment the compiler labels a real scatter moves data to data-dependent
// positions, so at least one store must be random (VP006).
func checkScatterProv(f *kernel.Fragment) []verify.Diagnostic {
	var diags []verify.Diagnostic
	var stores, random int
	scan := func(section string, body []kernel.Instr) {
		for i, in := range body {
			if in.Op != kernel.IStore {
				continue
			}
			stores++
			if !in.Seq {
				random++
				if f.Prov.Virtual {
					diags = append(diags, verify.Diagnostic{Level: verify.Error,
						Pos:  verify.Pos{Stmt: -1, Frag: f.Name, Section: section, Index: i},
						Rule: verify.RuleVirtualStore,
						Msg:  fmt.Sprintf("virtual fragment stores randomly: %s", in)})
				}
			}
		}
	}
	scan("pre", f.Pre)
	for li, l := range f.Loops {
		scan(fmt.Sprintf("loop%d", li), l.Body)
	}
	scan("post", f.Post)
	scan("postloop", f.PostLoopBody)
	if f.Prov.Kind == "scatter" && stores > 0 && random == 0 {
		diags = append(diags, verify.Diagnostic{Level: verify.Error,
			Pos:  verify.Pos{Stmt: -1, Index: -1, Frag: f.Name},
			Rule: verify.RuleScatterSeq,
			Msg:  "scatter fragment emits only sequential stores"})
	}
	return diags
}
