package compile

import (
	"testing"

	"voodoo/internal/core"
	"voodoo/internal/interp"
	"voodoo/internal/kernel"
	"voodoo/internal/vector"
	"voodoo/internal/verify"
)

// Mutation testing for the static verifier: each case compiles a known-good
// plan, corrupts exactly one field (swap a register, drop a schema column,
// break a loop bound, ...), and requires the verifier to flag the corruption
// with the documented rule ID. The suite closes with a catch-rate gate: at
// least 95% of the single-field corruptions must be caught statically.

// mutSelectPlan compiles Figure 1's selection (FoldSelect + Materialize),
// which yields bind steps, a select fragment with a cursor store, and a
// persist step. Predication adds a masked (C > 0) store.
func mutSelectPlan(t *testing.T, opt Options) *Plan {
	t.Helper()
	st := interp.MemStorage{"t": intVec("v", 5, 0, 3, 0, 0, 9, 1, 0, 0, 2, 8, 0)}
	b := core.NewBuilder()
	in := b.Load("t")
	pred := b.Greater(in, b.Constant(2))
	sel := b.FoldSelect(pred, "", "")
	b.Materialize(sel, sel, "")
	return mutCompile(t, b, st, opt)
}

// mutGroupByPlan compiles a grouped aggregation (Partition + Scatter +
// grouped FoldSum), which yields a bulk partition step, a virtual group-fold
// fragment with locals and a post-loop body, and a group-reduce fragment.
func mutGroupByPlan(t *testing.T) *Plan {
	t.Helper()
	n := 40
	groups := make([]int64, n)
	vals := make([]float64, n)
	for i := range groups {
		groups[i] = int64(i % 5)
		vals[i] = float64(i)
	}
	st := interp.MemStorage{"t": vector.New(n).
		Set("g", vector.NewInt(groups)).
		Set("v", vector.NewFloat(vals))}
	b := core.NewBuilder()
	in := b.Load("t")
	pivots := b.RangeN(0, 5, 1)
	pos := b.Partition("pos", in, "g", pivots, "")
	withPos := b.Upsert(in, "pos", pos, "pos")
	scattered := b.Scatter(in, in, "", withPos, "pos")
	b.FoldSum(scattered, "g", "v")
	return mutCompile(t, b, st, Options{})
}

// mutScatterPlan materializes the scattered vector so the compiler must
// emit a real scatter fragment (Prov.Kind == "scatter", random stores)
// instead of dissolving it into the grouped fold.
func mutScatterPlan(t *testing.T) *Plan {
	t.Helper()
	n := 40
	groups := make([]int64, n)
	vals := make([]int64, n)
	for i := range groups {
		groups[i] = int64(i % 5)
		vals[i] = int64(i)
	}
	st := interp.MemStorage{"t": vector.New(n).
		Set("g", vector.NewInt(groups)).
		Set("v", vector.NewInt(vals))}
	b := core.NewBuilder()
	in := b.Load("t")
	pivots := b.RangeN(0, 5, 1)
	pos := b.Partition("pos", in, "g", pivots, "")
	withPos := b.Upsert(in, "pos", pos, "pos")
	scattered := b.Scatter(in, in, "", withPos, "pos")
	b.Materialize(scattered, scattered, "")
	return mutCompile(t, b, st, Options{})
}

// mutPartitionPlan materializes partition positions directly, forcing the
// compiler to spill the partition through a bulk step (the histogram /
// prefix-sum evaluation crosses the fragment boundary as attrs + outBufs).
func mutPartitionPlan(t *testing.T) *Plan {
	t.Helper()
	n := 40
	groups := make([]int64, n)
	for i := range groups {
		groups[i] = int64(i % 5)
	}
	st := interp.MemStorage{"t": vector.New(n).Set("g", vector.NewInt(groups))}
	b := core.NewBuilder()
	in := b.Load("t")
	pivots := b.RangeN(0, 5, 1)
	pos := b.Partition("pos", in, "g", pivots, "")
	b.Materialize(pos, pos, "")
	return mutCompile(t, b, st, Options{})
}

// mutPrunedPlan compiles a selection the zone map proves empty, yielding a
// pruned step whose output buffers must read back as all-ε.
func mutPrunedPlan(t *testing.T) *Plan {
	t.Helper()
	cat := zoneCatalog(100)
	b := core.NewBuilder()
	in := b.Load("t")
	pred := b.Greater(in, b.Constant(1000))
	sel := b.FoldSelect(pred, "", "")
	b.Materialize(sel, sel, "")
	return mutCompile(t, b, cat, Options{})
}

func mutCompile(t *testing.T, b *core.Builder, st Storage, opt Options) *Plan {
	t.Helper()
	p, err := Compile(b.Program(), st, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

// eachInstr visits every instruction of every fragment (pre, loop bodies,
// post, post-loop body) with a mutable pointer, stopping after the first
// visit for which fn reports the mutation was applied.
func eachInstr(k *kernel.Kernel, fn func(f *kernel.Fragment, in *kernel.Instr) bool) bool {
	for _, f := range k.Frags {
		secs := [][]kernel.Instr{f.Pre}
		for i := range f.Loops {
			secs = append(secs, f.Loops[i].Body)
		}
		secs = append(secs, f.Post, f.PostLoopBody)
		for _, sec := range secs {
			for i := range sec {
				if fn(f, &sec[i]) {
					return true
				}
			}
		}
	}
	return false
}

// floatDefs collects every register the fragment defines in the float
// domain, so a domain-flip mutation can pick operands guaranteed undefined
// as floats.
func floatDefs(f *kernel.Fragment) map[kernel.Reg]bool {
	defs := map[kernel.Reg]bool{}
	scan := func(body []kernel.Instr) {
		for _, in := range body {
			if r, flt, ok := in.Def(); ok && flt {
				defs[r] = true
			}
		}
	}
	scan(f.Pre)
	for _, l := range f.Loops {
		scan(l.Body)
	}
	scan(f.Post)
	scan(f.PostLoopBody)
	return defs
}

func hasRule(ds []verify.Diagnostic, rule string) bool {
	for _, d := range ds {
		if d.Rule == rule {
			return true
		}
	}
	return false
}

type mutation struct {
	name string
	rule string
	plan func(t *testing.T) *Plan
	// mutate corrupts exactly one field; it reports false when the plan
	// offers no applicable site (which fails the test — the fixture
	// programs are chosen to exercise every rule).
	mutate func(p *Plan) bool
}

func mutations() []mutation {
	sel := func(t *testing.T) *Plan { return mutSelectPlan(t, Options{}) }
	selPred := func(t *testing.T) *Plan { return mutSelectPlan(t, Options{Predication: true}) }
	return []mutation{
		{"swap-register-undefined", verify.RuleUseBeforeDef, sel,
			func(p *Plan) bool {
				return eachInstr(p.kern, func(f *kernel.Fragment, in *kernel.Instr) bool {
					if in.Op != kernel.IBin {
						return false
					}
					in.A = 200
					return true
				})
			}},
		{"write-special-register", verify.RuleSpecialWrite, sel,
			func(p *Plan) bool {
				return eachInstr(p.kern, func(f *kernel.Fragment, in *kernel.Instr) bool {
					if in.Op != kernel.IBin || in.Dst < kernel.FirstFree {
						return false
					}
					in.Dst = kernel.RegIdx
					return true
				})
			}},
		{"domain-flip", verify.RuleUseBeforeDef, sel,
			func(p *Plan) bool {
				return eachInstr(p.kern, func(f *kernel.Fragment, in *kernel.Instr) bool {
					if in.Op != kernel.IBin || in.Float {
						return false
					}
					fd := floatDefs(f)
					if fd[in.A] || fd[in.B] || in.A == in.Dst || in.B == in.Dst {
						return false
					}
					in.Float = true
					return true
				})
			}},
		{"buffer-out-of-range", verify.RuleBufRange, sel,
			func(p *Plan) bool {
				return eachInstr(p.kern, func(f *kernel.Fragment, in *kernel.Instr) bool {
					if in.Op != kernel.ILoad && in.Op != kernel.ILoadValid && in.Op != kernel.IStore {
						return false
					}
					in.Buf = 999
					return true
				})
			}},
		{"kind-mismatch", verify.RuleKindMismatch, sel,
			func(p *Plan) bool {
				return eachInstr(p.kern, func(f *kernel.Fragment, in *kernel.Instr) bool {
					if in.Op != kernel.ILoad {
						return false
					}
					in.Float = !in.Float
					return true
				})
			}},
		{"drop-validity-mask", verify.RuleStoreValid, selPred,
			func(p *Plan) bool {
				return eachInstr(p.kern, func(f *kernel.Fragment, in *kernel.Instr) bool {
					if in.Op != kernel.IStore || in.C <= 0 {
						return false
					}
					p.kern.Bufs[in.Buf].Valid = false
					return true
				})
			}},
		{"drop-locals", verify.RuleLocals, mutGroupByPlan,
			func(p *Plan) bool {
				for _, f := range p.kern.Frags {
					if f.Locals > 0 {
						f.Locals = 0
						return true
					}
				}
				return false
			}},
		{"negative-loop-bound", verify.RuleLoopBound, sel,
			func(p *Plan) bool {
				for _, f := range p.kern.Frags {
					if len(f.Loops) > 0 {
						f.Loops[0].Bound = -3
						return true
					}
				}
				return false
			}},
		{"reserved-bound-register", verify.RuleLoopBound, sel,
			func(p *Plan) bool {
				for _, f := range p.kern.Frags {
					if len(f.Loops) > 0 {
						f.Loops[0].BoundReg = kernel.RegIdx
						return true
					}
				}
				return false
			}},
		{"negative-extent", verify.RuleGeometry, sel,
			func(p *Plan) bool {
				for _, f := range p.kern.Frags {
					f.Extent = -5
					return true
				}
				return false
			}},
		{"n-overflows-geometry", verify.RuleGeometry, sel,
			func(p *Plan) bool {
				for _, f := range p.kern.Frags {
					if f.Extent <= 0 || f.Intent <= 0 {
						continue
					}
					ok := true
					for _, l := range f.Loops {
						if l.BoundReg > 0 || l.Bound > f.Intent {
							ok = false
							break
						}
					}
					if !ok {
						continue
					}
					f.N = f.Extent*f.Intent + 7
					return true
				}
				return false
			}},
		{"seq-on-random-store", verify.RuleSeqClass, mutScatterPlan,
			func(p *Plan) bool {
				return eachInstr(p.kern, func(f *kernel.Fragment, in *kernel.Instr) bool {
					if f.Prov.Kind != "scatter" || in.Op != kernel.IStore || in.Seq {
						return false
					}
					in.Seq = true
					return true
				})
			}},
		{"unknown-opcode", verify.RuleBadInstr, sel,
			func(p *Plan) bool {
				return eachInstr(p.kern, func(f *kernel.Fragment, in *kernel.Instr) bool {
					if in.Op != kernel.IBin {
						return false
					}
					in.Op = 99
					return true
				})
			}},
		{"negative-buffer-size", verify.RuleBufDecl, sel,
			func(p *Plan) bool {
				if len(p.kern.Bufs) == 0 {
					return false
				}
				p.kern.Bufs[0].Size = -1
				return true
			}},
		{"unnamed-buffer", verify.RuleBufDecl, sel,
			func(p *Plan) bool {
				if len(p.kern.Bufs) == 0 {
					return false
				}
				p.kern.Bufs[0].Name = ""
				return true
			}},
		{"drop-binding", verify.RuleInputUnbound, sel,
			func(p *Plan) bool {
				for i, s := range p.steps {
					if _, ok := s.(*bindStep); ok {
						p.steps = append(p.steps[:i:i], p.steps[i+1:]...)
						return true
					}
				}
				return false
			}},
		{"binding-out-of-range", verify.RulePlanBufRange, sel,
			func(p *Plan) bool {
				for _, s := range p.steps {
					if b, ok := s.(*bindStep); ok {
						b.buf = 999
						return true
					}
				}
				return false
			}},
		{"drop-schema-column", verify.RulePlanSchema, mutPartitionPlan,
			func(p *Plan) bool {
				for _, s := range p.steps {
					if b, ok := s.(*bulkStep); ok && len(b.attrs) > 0 {
						b.attrs = b.attrs[:len(b.attrs)-1]
						return true
					}
				}
				return false
			}},
		{"bulk-output-out-of-range", verify.RulePlanBufRange, mutPartitionPlan,
			func(p *Plan) bool {
				for _, s := range p.steps {
					if b, ok := s.(*bulkStep); ok && len(b.outBufs) > 0 {
						b.outBufs[0] = 999
						return true
					}
				}
				return false
			}},
		{"pruned-output-unmasked", verify.RulePrunedOutput, mutPrunedPlan,
			func(p *Plan) bool {
				for _, s := range p.steps {
					if ps, ok := s.(*prunedStep); ok && len(ps.outBufs) > 0 {
						p.kern.Bufs[ps.outBufs[0]].Valid = false
						return true
					}
				}
				return false
			}},
		{"virtual-random-store", verify.RuleVirtualStore, mutGroupByPlan,
			func(p *Plan) bool {
				return eachInstr(p.kern, func(f *kernel.Fragment, in *kernel.Instr) bool {
					if !f.Prov.Virtual || in.Op != kernel.IStore || !in.Seq {
						return false
					}
					in.Seq = false
					return true
				})
			}},
		{"scatter-all-sequential", verify.RuleScatterSeq, mutScatterPlan,
			func(p *Plan) bool {
				applied := false
				for _, f := range p.kern.Frags {
					if f.Prov.Kind != "scatter" {
						continue
					}
					eachInstr(&kernel.Kernel{Frags: []*kernel.Fragment{f}},
						func(_ *kernel.Fragment, in *kernel.Instr) bool {
							if in.Op == kernel.IStore {
								in.Seq = true
								applied = true
							}
							return false
						})
				}
				return applied
			}},
		{"step-before-producer", verify.RuleUseBeforeProd, mutGroupByPlan,
			func(p *Plan) bool {
				for i, s := range p.steps {
					fs, ok := s.(*fragStep)
					if !ok || i == 0 {
						continue
					}
					reads, _ := fragBufAccess(fs.f)
					for _, b := range reads {
						if b >= 0 && b < len(p.kern.Bufs) && !p.kern.Bufs[b].Input {
							rest := append([]step{}, p.steps[:i]...)
							p.steps = append([]step{fs}, append(rest, p.steps[i+1:]...)...)
							return true
						}
					}
				}
				return false
			}},
	}
}

// TestVerifierCatchesMutations corrupts valid plans one field at a time and
// checks each corruption is caught statically with the right rule ID. The
// acceptance gate requires a catch rate of at least 95%.
func TestVerifierCatchesMutations(t *testing.T) {
	muts := mutations()
	total, caught := 0, 0
	for _, m := range muts {
		m := m
		t.Run(m.name, func(t *testing.T) {
			p := m.plan(t)
			if ds := p.Verify(); len(ds) != 0 {
				t.Fatalf("baseline plan does not verify clean: %v", ds)
			}
			if !m.mutate(p) {
				t.Fatalf("no applicable mutation site in fixture plan\nkernel:\n%s", p.kern)
			}
			total++
			ds := p.Verify()
			if !hasRule(ds, m.rule) {
				t.Errorf("corruption not flagged with %s; diagnostics: %v\nkernel:\n%s", m.rule, ds, p.kern)
				return
			}
			caught++
			for _, d := range ds {
				if d.Rule == "" {
					t.Errorf("diagnostic missing rule ID: %v", d)
				}
				if d.Msg == "" {
					t.Errorf("diagnostic missing message: %v", d)
				}
			}
		})
	}
	if total == 0 {
		t.Fatal("no mutations ran")
	}
	rate := float64(caught) / float64(total)
	t.Logf("mutation catch rate: %d/%d (%.1f%%)", caught, total, 100*rate)
	if rate < 0.95 {
		t.Fatalf("mutation catch rate %.1f%% below the 95%% acceptance gate", 100*rate)
	}
}
