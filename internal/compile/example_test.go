package compile_test

import (
	"fmt"

	"voodoo/internal/compile"
	"voodoo/internal/core"
	"voodoo/internal/interp"
	"voodoo/internal/vector"
)

// Example builds the paper's Figure 3 (hierarchical aggregation), compiles
// it, and prints the total.
func Example() {
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i + 1)
	}
	st := interp.MemStorage{
		"input": vector.New(100).Set("val", vector.NewInt(vals)),
	}

	b := core.NewBuilder()
	input := b.Load("input")
	ids := b.Range(input)
	part := b.Project("partition", b.Divide(ids, b.Constant(10)), "")
	withPart := b.Zip("val", input, "val", "partition", part, "partition")
	pSum := b.FoldSum(withPart, "partition", "val")
	total := b.GlobalSum(pSum, "")

	plan, err := compile.Compile(b.Program(), st, compile.Options{})
	if err != nil {
		panic(err)
	}
	res, err := plan.Run()
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Values[total].SingleCol().Int(0))
	// Output: 5050
}

// ExampleOptions_predication shows the same selection compiled branching
// and branch-free: identical results, different kernels.
func ExampleOptions_predication() {
	st := interp.MemStorage{
		"t": vector.New(8).Set("v", vector.NewInt([]int64{5, 1, 7, 2, 9, 3, 8, 0})),
	}
	build := func() (*core.Program, core.Ref) {
		b := core.NewBuilder()
		in := b.Load("t")
		pred := b.Greater(in, b.Constant(4))
		sel := b.FoldSelect(pred, "", "")
		g := b.Gather(in, sel, "")
		sum := b.FoldSum(g, "", "")
		return b.Program(), sum
	}
	for _, predication := range []bool{false, true} {
		prog, root := build()
		plan, err := compile.Compile(prog, st, compile.Options{Predication: predication})
		if err != nil {
			panic(err)
		}
		res, err := plan.Run()
		if err != nil {
			panic(err)
		}
		fmt.Println(res.Values[root].SingleCol().Int(0))
	}
	// Output:
	// 29
	// 29
}

// ExamplePlan_Kernel prints the fragment structure of a compiled program.
func ExamplePlan_Kernel() {
	st := interp.MemStorage{
		"t": vector.New(16).Set("v", vector.NewInt(make([]int64, 16))),
	}
	b := core.NewBuilder()
	in := b.Load("t")
	ids := b.Range(in)
	fold := b.Project("fold", b.Divide(ids, b.Constant(4)), "")
	withFold := b.Zip("v", in, "", "fold", fold, "fold")
	b.FoldSum(withFold, "fold", "v")
	plan, err := compile.Compile(b.Program(), st, compile.Options{})
	if err != nil {
		panic(err)
	}
	for _, f := range plan.Kernel().Frags {
		fmt.Printf("%s: extent=%d intent=%d\n", f.Name, f.Extent, f.Intent)
	}
	// Output: fold_6: extent=4 intent=4
}
