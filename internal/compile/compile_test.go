package compile

import (
	"fmt"
	"math/rand"
	"testing"

	"voodoo/internal/core"
	"voodoo/internal/interp"
	"voodoo/internal/vector"
)

// diffTest runs the program through the interpreter and the compiler (with
// the given options) and requires identical root values.
func diffTest(t *testing.T, b *core.Builder, st interp.MemStorage, opt Options) {
	t.Helper()
	p := b.Program()
	want, err := interp.Run(p, st)
	if err != nil {
		t.Fatalf("interp: %v\nprogram:\n%s", err, p)
	}
	plan, err := Compile(p, st, opt)
	if err != nil {
		t.Fatalf("compile: %v\nprogram:\n%s", err, p)
	}
	got, err := plan.Run()
	if err != nil {
		t.Fatalf("run: %v\nprogram:\n%s\nkernel:\n%s", err, p, plan.Kernel())
	}
	for ref, gv := range got.Values {
		wv := want.Value(ref)
		if !gv.Equal(wv) {
			t.Fatalf("root v%d differs\nprogram:\n%s\nkernel:\n%s\nwant:\n%s\ngot:\n%s",
				ref, p, plan.Kernel(), wv, gv)
		}
	}
	if len(got.Values) == 0 {
		t.Fatalf("no root values produced\nprogram:\n%s", p)
	}
}

func bothModes(t *testing.T, name string, f func(t *testing.T, opt Options)) {
	t.Helper()
	for _, tc := range []struct {
		label string
		opt   Options
	}{
		{"branching", Options{}},
		{"predicated", Options{Predication: true}},
		{"bulk", Options{ForceBulk: true}},
	} {
		t.Run(name+"/"+tc.label, func(t *testing.T) { f(t, tc.opt) })
	}
}

func intVec(name string, vals ...int64) *vector.Vector {
	return vector.New(len(vals)).Set(name, vector.NewInt(vals))
}

func seqVec(name string, n int) *vector.Vector {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	return vector.New(n).Set(name, vector.NewInt(vals))
}

func TestCompileElementwise(t *testing.T) {
	bothModes(t, "elementwise", func(t *testing.T, opt Options) {
		st := interp.MemStorage{"t": seqVec("v", 100)}
		b := core.NewBuilder()
		in := b.Load("t")
		x := b.Add(in, b.Constant(10))
		y := b.Multiply(x, x)
		z := b.Subtract(y, in)
		b.Materialize(z, z, "")
		diffTest(t, b, st, opt)
	})
}

func TestCompileFigure3Hierarchical(t *testing.T) {
	bothModes(t, "fig3", func(t *testing.T, opt Options) {
		st := interp.MemStorage{"input": seqVec("val", 64)}
		b := core.NewBuilder()
		input := b.Load("input")
		ids := b.Range(input)
		partitionIDs := b.Project("partition", b.Divide(ids, b.Constant(8)), "")
		inputWPart := b.Zip("val", input, "val", "partition", partitionIDs, "partition")
		pSum := b.FoldSum(inputWPart, "partition", "val")
		b.GlobalSum(pSum, "")
		diffTest(t, b, st, opt)
	})
}

func TestCompileFigure4SIMD(t *testing.T) {
	bothModes(t, "fig4", func(t *testing.T, opt Options) {
		st := interp.MemStorage{"input": seqVec("val", 64)}
		b := core.NewBuilder()
		input := b.Load("input")
		ids := b.Range(input)
		laneIDs := b.Project("partition", b.Modulo(ids, b.Constant(4)), "")
		inputWPart := b.Zip("val", input, "val", "partition", laneIDs, "partition")
		positions := b.Partition("pos", laneIDs, "partition", b.RangeN(0, 4, 1), "")
		posVec := b.Upsert(inputWPart, "pos", positions, "pos")
		scattered := b.Scatter(inputWPart, input, "", posVec, "pos")
		pSum := b.FoldSum(scattered, "partition", "val")
		b.GlobalSum(pSum, "")
		diffTest(t, b, st, opt)
	})
}

func TestCompileSelectGatherSum(t *testing.T) {
	// The fused selection pipeline of Figure 8: filter, gather, aggregate.
	bothModes(t, "selectsum", func(t *testing.T, opt Options) {
		vals := make([]int64, 200)
		quantity := make([]float64, 200)
		r := rand.New(rand.NewSource(7))
		for i := range vals {
			vals[i] = r.Int63n(100)
			quantity[i] = float64(r.Intn(50))
		}
		st := interp.MemStorage{"lineitem": vector.New(200).
			Set("shipdate", vector.NewInt(vals)).
			Set("quantity", vector.NewFloat(quantity))}
		for _, runLen := range []int{200, 50, 8} {
			b := core.NewBuilder()
			li := b.Load("lineitem")
			ids := b.Range(li)
			fold := b.Project("fold", b.Divide(ids, b.Constant(int64(runLen))), "")
			withFold := b.Zip("shipdate", li, "shipdate", "fold", fold, "fold")
			pred := b.Arith(core.OpGreater, "v", withFold, "shipdate", b.Constant(42), "")
			predWithFold := b.Zip("v", pred, "v", "fold", fold, "fold")
			positions := b.FoldSelect(predWithFold, "fold", "v")
			gathered := b.Gather(li, positions, "")
			b.FoldSum(gathered, "", "quantity")
			diffTest(t, b, st, opt)
		}
	})
}

func TestCompileSelectPositionsMaterialized(t *testing.T) {
	bothModes(t, "selpos", func(t *testing.T, opt Options) {
		st := interp.MemStorage{"t": intVec("v", 5, 0, 3, 0, 0, 9, 1, 0, 0, 2, 8, 0)}
		b := core.NewBuilder()
		in := b.Load("t")
		pred := b.Greater(in, b.Constant(2))
		sel := b.FoldSelect(pred, "", "")
		b.Materialize(sel, sel, "")
		diffTest(t, b, st, opt)
	})
}

func TestCompileFilteredValuesMaterialized(t *testing.T) {
	// Figure 1's selection: copy qualifying values out.
	bothModes(t, "filtermat", func(t *testing.T, opt Options) {
		vals := make([]int64, 64)
		r := rand.New(rand.NewSource(3))
		for i := range vals {
			vals[i] = r.Int63n(10)
		}
		st := interp.MemStorage{"t": intVec("v", vals...)}
		for _, runLen := range []int{64, 16} {
			b := core.NewBuilder()
			in := b.Load("t")
			ids := b.Range(in)
			fold := b.Project("fold", b.Divide(ids, b.Constant(int64(runLen))), "")
			pred := b.Greater(in, b.Constant(4))
			withFold := b.Zip("v", pred, "", "fold", fold, "fold")
			sel := b.FoldSelect(withFold, "fold", "v")
			b.Gather(in, sel, "")
			diffTest(t, b, st, opt)
		}
	})
}

func TestCompileGroupedAggregation(t *testing.T) {
	// Figure 10/11: group by a data attribute via Partition + Scatter +
	// FoldSum.
	bothModes(t, "groupby", func(t *testing.T, opt Options) {
		n := 120
		groups := make([]int64, n)
		vals := make([]float64, n)
		r := rand.New(rand.NewSource(11))
		for i := range groups {
			groups[i] = r.Int63n(5)
			vals[i] = float64(r.Intn(100))
		}
		st := interp.MemStorage{"t": vector.New(n).
			Set("g", vector.NewInt(groups)).
			Set("v", vector.NewFloat(vals))}
		b := core.NewBuilder()
		in := b.Load("t")
		pivots := b.RangeN(0, 5, 1)
		pos := b.Partition("pos", in, "g", pivots, "")
		withPos := b.Upsert(in, "pos", pos, "pos")
		scattered := b.Scatter(in, in, "", withPos, "pos")
		b.FoldSum(scattered, "g", "v")
		diffTest(t, b, st, opt)
	})
}

func TestCompileGroupedMinMax(t *testing.T) {
	bothModes(t, "groupminmax", func(t *testing.T, opt Options) {
		n := 60
		groups := make([]int64, n)
		vals := make([]int64, n)
		r := rand.New(rand.NewSource(13))
		for i := range groups {
			groups[i] = r.Int63n(4)
			vals[i] = r.Int63n(1000) - 500
		}
		st := interp.MemStorage{"t": vector.New(n).
			Set("g", vector.NewInt(groups)).
			Set("v", vector.NewInt(vals))}
		for _, agg := range []string{"min", "max"} {
			b := core.NewBuilder()
			in := b.Load("t")
			pivots := b.RangeN(0, 4, 1)
			pos := b.Partition("pos", in, "g", pivots, "")
			withPos := b.Upsert(in, "pos", pos, "pos")
			scattered := b.Scatter(in, in, "", withPos, "pos")
			if agg == "min" {
				b.FoldMin(scattered, "g", "v")
			} else {
				b.FoldMax(scattered, "g", "v")
			}
			diffTest(t, b, st, opt)
		}
	})
}

func TestCompileGatherWithDataPositions(t *testing.T) {
	// An indexed FK join: positions are data, some out of bounds.
	bothModes(t, "fkgather", func(t *testing.T, opt Options) {
		st := interp.MemStorage{
			"fact":   intVec("fk", 3, 1, 4, 1, 5, 9, 2, 6, 99, -1),
			"target": intVec("v", 100, 101, 102, 103, 104, 105, 106, 107, 108, 109),
		}
		b := core.NewBuilder()
		fact := b.Load("fact")
		target := b.Load("target")
		g := b.Gather(target, fact, "fk")
		b.FoldSum(g, "", "")
		diffTest(t, b, st, opt)
	})
}

func TestCompileFoldMinMaxPlain(t *testing.T) {
	bothModes(t, "minmax", func(t *testing.T, opt Options) {
		st := interp.MemStorage{"t": intVec("v", 5, -2, 9, 4, 4, 1, 0, 7)}
		b := core.NewBuilder()
		in := b.Load("t")
		ids := b.Range(in)
		fold := b.Project("fold", b.Divide(ids, b.Constant(4)), "")
		withFold := b.Zip("v", in, "", "fold", fold, "fold")
		b.FoldMin(withFold, "fold", "v")
		b.FoldMax(withFold, "fold", "v")
		diffTest(t, b, st, opt)
	})
}

func TestCompileFoldScan(t *testing.T) {
	bothModes(t, "scan", func(t *testing.T, opt Options) {
		st := interp.MemStorage{"t": intVec("v", 1, 2, 3, 4, 5, 6)}
		b := core.NewBuilder()
		in := b.Load("t")
		ids := b.Range(in)
		fold := b.Project("fold", b.Divide(ids, b.Constant(3)), "")
		withFold := b.Zip("v", in, "", "fold", fold, "fold")
		b.FoldScan(withFold, "fold", "v")
		diffTest(t, b, st, opt)
	})
}

func TestCompileRealScatter(t *testing.T) {
	bothModes(t, "scatter", func(t *testing.T, opt Options) {
		st := interp.MemStorage{
			"t":   intVec("v", 10, 20, 30, 40),
			"pos": intVec("p", 3, 0, 2, 9), // 9 is out of bounds: dropped
		}
		b := core.NewBuilder()
		in := b.Load("t")
		pos := b.Load("pos")
		sc := b.Scatter(in, in, "", pos, "p")
		b.Materialize(sc, sc, "")
		diffTest(t, b, st, opt)
	})
}

func TestCompileCrossViaBulk(t *testing.T) {
	bothModes(t, "cross", func(t *testing.T, opt Options) {
		st := interp.MemStorage{"a": seqVec("v", 3), "b": seqVec("w", 4)}
		b := core.NewBuilder()
		x := b.Load("a")
		y := b.Load("b")
		cr := b.Cross("i", x, "j", y)
		b.Materialize(cr, cr, "")
		diffTest(t, b, st, opt)
	})
}

func TestCompilePersist(t *testing.T) {
	st := interp.MemStorage{"t": seqVec("v", 10)}
	b := core.NewBuilder()
	in := b.Load("t")
	doubled := b.Multiply(in, b.Constant(2))
	b.Persist("out", doubled)
	plan, err := Compile(b.Program(), st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Run(); err != nil {
		t.Fatal(err)
	}
	out, err := st.LoadVector("out")
	if err != nil {
		t.Fatal(err)
	}
	if out.SingleCol().Int(4) != 8 {
		t.Fatalf("persisted value wrong: %v", out)
	}
}

func TestCompileStatsCollected(t *testing.T) {
	st := interp.MemStorage{"t": seqVec("v", 100)}
	b := core.NewBuilder()
	in := b.Load("t")
	b.GlobalSum(b.Multiply(in, in), "")
	plan, err := Compile(b.Program(), st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan.CollectStats = true
	res, err := plan.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Frags) == 0 {
		t.Fatal("expected fragment stats")
	}
	var items int64
	for _, fs := range res.Stats.Frags {
		items += fs.Items
	}
	if items < 100 {
		t.Fatalf("items = %d, want >= 100", items)
	}
}

// TestCompileRandomPrograms differentially tests randomly generated
// programs against the interpreter in all three compiler modes.
func TestCompileRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			b, st := randomProgram(rand.New(rand.NewSource(seed)))
			for _, opt := range []Options{{}, {Predication: true}, {ForceBulk: true}} {
				diffTest(t, b, st, opt)
			}
		})
	}
}

// randomProgram builds a random but well-formed single-attribute pipeline.
func randomProgram(r *rand.Rand) (*core.Builder, interp.MemStorage) {
	n := 16 + r.Intn(100)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = r.Int63n(64)
	}
	st := interp.MemStorage{"t": intVec("v", vals...)}
	b := core.NewBuilder()
	cur := b.Load("t")
	depth := 2 + r.Intn(6)
	for d := 0; d < depth; d++ {
		switch r.Intn(8) {
		case 0:
			cur = b.Add(cur, b.Constant(r.Int63n(10)))
		case 1:
			cur = b.Multiply(cur, b.Constant(1+r.Int63n(4)))
		case 2:
			cur = b.Greater(cur, b.Constant(r.Int63n(64)))
		case 3:
			cur = b.Modulo(cur, b.Constant(1+r.Int63n(16)))
		case 4:
			ids := b.Range(cur)
			runLen := int64(1 + r.Intn(n))
			fold := b.Project("fold", b.Divide(ids, b.Constant(runLen)), "")
			withFold := b.Zip("v", cur, "", "fold", fold, "fold")
			cur = b.FoldSum(withFold, "fold", "v")
			cur = b.Project("v", cur, "")
		case 5:
			pred := b.Greater(cur, b.Constant(r.Int63n(64)))
			sel := b.FoldSelect(pred, "", "")
			cur = b.Gather(cur, sel, "")
		case 6:
			cur = b.Materialize(cur, cur, "")
		case 7:
			ids := b.Range(cur)
			rev := b.Subtract(b.Constant(int64(n-1)), ids)
			cur = b.Gather(cur, rev, "")
		}
	}
	// Always end with a global fold so the root is small and meaningful.
	b.FoldSum(cur, "", "")
	return b, st
}

// TestCompileGatherThroughFilteredGather exercises the fused FK-lookup
// chain of Figure 16's branching variant: select rows, gather their foreign
// keys, gather the target through those keys, aggregate — one fragment.
func TestCompileGatherThroughFilteredGather(t *testing.T) {
	bothModes(t, "fkchain", func(t *testing.T, opt Options) {
		r := rand.New(rand.NewSource(21))
		n, m := 120, 40
		fk := make([]int64, n)
		v := make([]int64, n)
		tv := make([]float64, m)
		for i := range fk {
			fk[i] = r.Int63n(int64(m))
			v[i] = r.Int63n(100)
		}
		for i := range tv {
			tv[i] = float64(i) * 1.5
		}
		st := interp.MemStorage{
			"fact": vector.New(n).
				Set("fk", vector.NewInt(fk)).
				Set("v", vector.NewInt(v)),
			"target": vector.New(m).Set("tv", vector.NewFloat(tv)),
		}
		for _, runLen := range []int{120, 30} {
			b := core.NewBuilder()
			fact := b.Load("fact")
			target := b.Load("target")
			ids := b.Range(fact)
			fold := b.Project("fold", b.Divide(ids, b.Constant(int64(runLen))), "")
			pred := b.Arith(core.OpGreater, "p", fact, "v", b.Constant(50), "")
			withFold := b.Zip("p", pred, "p", "fold", fold, "fold")
			sel := b.FoldSelect(withFold, "fold", "p")
			fkSel := b.Gather(fact, sel, "")
			tvals := b.Gather(target, fkSel, "fk")
			b.FoldSum(tvals, "", "tv")
			diffTest(t, b, st, opt)
		}
	})
}

// TestCompileRandomMultiColumnPrograms extends the differential fuzzing to
// float columns, grouped aggregation, virtual scatters and multi-attribute
// pipelines.
func TestCompileRandomMultiColumnPrograms(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			b, st := randomRichProgram(rand.New(rand.NewSource(seed + 1000)))
			for _, opt := range []Options{{}, {Predication: true}, {ForceBulk: true}} {
				diffTest(t, b, st, opt)
			}
		})
	}
}

// randomRichProgram builds a random pipeline over a two-column (int group,
// float value) table, exercising grouping, lane scatters and filtered
// aggregation.
func randomRichProgram(r *rand.Rand) (*core.Builder, interp.MemStorage) {
	n := 16 + r.Intn(120)
	k := int64(2 + r.Intn(6))
	groups := make([]int64, n)
	vals := make([]float64, n)
	for i := range groups {
		groups[i] = r.Int63n(k)
		vals[i] = float64(r.Intn(2000)-1000) / 16
	}
	st := interp.MemStorage{"t": vector.New(n).
		Set("g", vector.NewInt(groups)).
		Set("v", vector.NewFloat(vals))}
	b := core.NewBuilder()
	cur := b.Load("t")

	switch r.Intn(4) {
	case 0:
		// Filtered grouped aggregation (the TPC-H shape).
		pred := b.Arith(core.OpGreater, "p", cur, "v", b.ConstantF(0), "")
		ids := b.Range(cur)
		runLen := int64(1 + r.Intn(n))
		fold := b.Project("fold", b.Divide(ids, b.Constant(runLen)), "")
		pf := b.Zip("p", pred, "p", "fold", fold, "fold")
		sel := b.FoldSelect(pf, "fold", "p")
		cur = b.Gather(cur, sel, "")
		fallthrough
	case 1:
		// Grouped aggregation via Partition + Scatter + folds.
		pivots := b.RangeN(0, int(k), 1)
		pos := b.Partition("pos", cur, "g", pivots, "")
		withPos := b.Upsert(cur, "pos", pos, "pos")
		scattered := b.Scatter(cur, cur, "", withPos, "pos")
		b.FoldSum(scattered, "g", "v")
		if r.Intn(2) == 0 {
			b.FoldMax(scattered, "g", "v")
		}
		b.FoldCount(scattered, "g")
	case 2:
		// Lane (SIMD-style) aggregation via virtual scatter.
		lanes := int64(2 + r.Intn(4))
		ids := b.Range(cur)
		laneIDs := b.Project("lane", b.Modulo(ids, b.Constant(lanes)), "")
		withLane := b.Zip("v", cur, "v", "lane", laneIDs, "lane")
		positions := b.Partition("pos", laneIDs, "lane", b.RangeN(0, int(lanes), 1), "")
		posVec := b.Upsert(withLane, "pos", positions, "pos")
		scattered := b.Scatter(withLane, cur, "", posVec, "pos")
		p := b.FoldSum(scattered, "lane", "v")
		b.GlobalSum(p, "")
	case 3:
		// Arithmetic pipeline with a float fold and a scan.
		e := b.Arith(core.OpMultiply, "x", cur, "v", b.ConstantF(1.5), "")
		e2 := b.Arith(core.OpAdd, "x", e, "", cur, "g")
		ids := b.Range(cur)
		runLen := int64(1 + r.Intn(16))
		fold := b.Project("fold", b.Divide(ids, b.Constant(runLen)), "")
		withFold := b.Zip("x", e2, "", "fold", fold, "fold")
		b.FoldSum(withFold, "fold", "x")
		b.FoldScan(withFold, "fold", "x")
	}
	return b, st
}

// TestBreakForcesLoopFission: the paper switches Figure 14's Single Loop to
// Separate Loops by inserting a Break between the two gathers — a pure
// tuning hint that forces a fragment seam.
func TestBreakForcesLoopFission(t *testing.T) {
	n, m := 64, 16
	pos := make([]int64, n)
	c1 := make([]float64, m)
	c2 := make([]float64, m)
	r := rand.New(rand.NewSource(44))
	for i := range pos {
		pos[i] = r.Int63n(int64(m))
	}
	for i := range c1 {
		c1[i] = float64(i)
		c2[i] = float64(i) * 2
	}
	st := interp.MemStorage{
		"pos": vector.New(n).Set("p", vector.NewInt(pos)),
		"c1":  vector.New(m).Set("v", vector.NewFloat(c1)),
		"c2":  vector.New(m).Set("v", vector.NewFloat(c2)),
	}
	build := func(withBreak bool) (*core.Program, core.Ref) {
		b := core.NewBuilder()
		p := b.Load("pos")
		t1 := b.Load("c1")
		t2 := b.Load("c2")
		g1 := b.Gather(t1, p, "p")
		if withBreak {
			g1 = b.Break(g1, g1, "")
		}
		g2 := b.Gather(t2, p, "p")
		sum := b.Add(g1, g2)
		root := b.FoldSum(sum, "", "")
		return b.Program(), root
	}

	fused, rootA := build(false)
	fissioned, rootB := build(true)
	planA, err := Compile(fused, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	planB, err := Compile(fissioned, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(len(planB.Kernel().Frags) > len(planA.Kernel().Frags)) {
		t.Errorf("Break should add a fragment seam: %d vs %d fragments",
			len(planB.Kernel().Frags), len(planA.Kernel().Frags))
	}
	resA, err := planA.Run()
	if err != nil {
		t.Fatal(err)
	}
	resB, err := planB.Run()
	if err != nil {
		t.Fatal(err)
	}
	a := resA.Values[rootA].SingleCol().Float(0)
	bv := resB.Values[rootB].SingleCol().Float(0)
	if a != bv {
		t.Errorf("Break changed the result: %g vs %g", a, bv)
	}
}

// TestCompileErrors covers the compiler's error surfaces.
func TestCompileErrors(t *testing.T) {
	st := interp.MemStorage{"t": seqVec("v", 8)}

	// Unknown table at compile time (sizes are compile-time constants).
	b := core.NewBuilder()
	b.Load("missing")
	if _, err := Compile(b.Program(), st, Options{}); err == nil {
		t.Error("expected unknown-table error")
	}

	// Missing attribute in arithmetic.
	b = core.NewBuilder()
	in := b.Load("t")
	b.Arith(core.OpAdd, "x", in, "nope", in, "v")
	if _, err := Compile(b.Program(), st, Options{}); err == nil {
		t.Error("expected missing-attribute error")
	}

	// Missing fold value attribute.
	b = core.NewBuilder()
	in = b.Load("t")
	b.FoldSum(in, "", "nope")
	if _, err := Compile(b.Program(), st, Options{}); err == nil {
		t.Error("expected missing-fold-value error")
	}

	// Structurally invalid program (forward reference).
	var p core.Program
	p.Add(core.Stmt{Op: core.OpProject, Args: []core.Ref{7}, Kp: []string{""}, Out: []string{"x"}})
	if _, err := Compile(&p, st, Options{}); err == nil {
		t.Error("expected validation error")
	}

	// Runtime error surfaces from Plan.Run (division by zero).
	b = core.NewBuilder()
	in = b.Load("t")
	z := b.Subtract(in, in)
	b.Divide(in, z)
	plan, err := Compile(b.Program(), st, Options{})
	if err != nil {
		t.Fatalf("compile should succeed, run should fail: %v", err)
	}
	if _, err := plan.Run(); err == nil {
		t.Error("expected division-by-zero at run time")
	}
}

// TestCompilePersistUnderBulk exercises Persist in the Ocelot execution
// mode (bulk steps around maintenance ops).
func TestCompilePersistUnderBulk(t *testing.T) {
	st := interp.MemStorage{"t": seqVec("v", 12)}
	b := core.NewBuilder()
	in := b.Load("t")
	tripled := b.Multiply(in, b.Constant(3))
	b.Persist("out", tripled)
	plan, err := Compile(b.Program(), st, Options{ForceBulk: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Run(); err != nil {
		t.Fatal(err)
	}
	v, err := st.LoadVector("out")
	if err != nil {
		t.Fatal(err)
	}
	if v.SingleCol().Int(4) != 12 {
		t.Fatalf("persisted wrong value: %v", v)
	}
}

// TestGroupCompactFeedsGather exercises the runtime expansion path: a
// grouped fold result consumed by a position-sensitive operator.
func TestGroupCompactFeedsGather(t *testing.T) {
	bothModes(t, "groupexpand", func(t *testing.T, opt Options) {
		n := 40
		groups := make([]int64, n)
		vals := make([]int64, n)
		r := rand.New(rand.NewSource(5))
		for i := range groups {
			groups[i] = r.Int63n(4)
			vals[i] = r.Int63n(50)
		}
		st := interp.MemStorage{"t": vector.New(n).
			Set("g", vector.NewInt(groups)).
			Set("v", vector.NewInt(vals))}
		b := core.NewBuilder()
		in := b.Load("t")
		pivots := b.RangeN(0, 4, 1)
		pos := b.Partition("pos", in, "g", pivots, "")
		withPos := b.Upsert(in, "pos", pos, "pos")
		scattered := b.Scatter(in, in, "", withPos, "pos")
		sums := b.FoldSum(scattered, "g", "v")
		// Gather the padded fold output at fixed positions — forces the
		// group-compact layout to expand.
		probe := b.Load("probe")
		b.Gather(sums, probe, "p")
		st["probe"] = intVec("p", 0, 5, 10, 39)
		diffTest(t, b, st, opt)
	})
}

// TestScatteredValueMaterialized exercises materializeScattered: a virtual
// lane scatter whose value is consumed element-wise (not folded).
func TestScatteredValueMaterialized(t *testing.T) {
	bothModes(t, "scatmat", func(t *testing.T, opt Options) {
		st := interp.MemStorage{"t": seqVec("v", 24)}
		b := core.NewBuilder()
		in := b.Load("t")
		ids := b.Range(in)
		lanes := b.Project("lane", b.Modulo(ids, b.Constant(4)), "")
		withLane := b.Zip("v", in, "", "lane", lanes, "lane")
		positions := b.Partition("pos", lanes, "lane", b.RangeN(0, 4, 1), "")
		posVec := b.Upsert(withLane, "pos", positions, "pos")
		scattered := b.Scatter(withLane, in, "", posVec, "pos")
		// Element-wise consumption forces σ(idx) materialization.
		b.Arith(core.OpAdd, "x", scattered, "v", b.Constant(100), "")
		diffTest(t, b, st, opt)
	})
}

// TestFoldOverFoldCompactWithRuns exercises a second-level fold with its
// own run structure over a compact first-level result.
func TestFoldOverFoldCompactWithRuns(t *testing.T) {
	bothModes(t, "twolevel", func(t *testing.T, opt Options) {
		st := interp.MemStorage{"t": seqVec("v", 64)}
		b := core.NewBuilder()
		in := b.Load("t")
		ids := b.Range(in)
		fold1 := b.Project("fold", b.Divide(ids, b.Constant(4)), "")
		with1 := b.Zip("v", in, "", "fold", fold1, "fold")
		p1 := b.FoldSum(with1, "fold", "v") // 16 partials, stride 4
		// Second level: fold the padded partial vector in runs of 16
		// (i.e. 4 compact slots per run).
		ids2 := b.Range(p1)
		fold2 := b.Project("fold", b.Divide(ids2, b.Constant(16)), "")
		with2 := b.Zip("v", p1, "", "fold", fold2, "fold")
		b.FoldSum(with2, "fold", "v")
		diffTest(t, b, st, opt)
	})
}

// TestNonDyadicRunLengthsFuse pins the fix for a latent float-metadata bug:
// with the step held as an exact rational, a Divide by 3 (or any
// non-power-of-two) still yields a statically known run length, so the fold
// compiles into a fused fragment instead of silently falling back to bulk.
func TestNonDyadicRunLengthsFuse(t *testing.T) {
	st := interp.MemStorage{"t": seqVec("v", 90)}
	for _, runLen := range []int64{3, 7, 30, 50} {
		b := core.NewBuilder()
		in := b.Load("t")
		ids := b.Range(in)
		fold := b.Project("fold", b.Divide(ids, b.Constant(runLen)), "")
		withFold := b.Zip("v", in, "", "fold", fold, "fold")
		b.FoldSum(withFold, "fold", "v")
		plan, err := Compile(b.Program(), st, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Kernel().Frags) != 1 {
			t.Errorf("runLen %d: %d fragments, want 1 fused fold",
				runLen, len(plan.Kernel().Frags))
			continue
		}
		f := plan.Kernel().Frags[0]
		wantExtent := (90 + int(runLen) - 1) / int(runLen)
		if f.Extent != wantExtent || f.Intent != int(runLen) {
			t.Errorf("runLen %d: extent=%d intent=%d, want %d/%d",
				runLen, f.Extent, f.Intent, wantExtent, runLen)
		}
		diffTest(t, b, st, Options{})
	}
}
