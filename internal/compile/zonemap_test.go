package compile

import (
	"context"
	"testing"

	"voodoo/internal/core"
	"voodoo/internal/interp"
	"voodoo/internal/storage"
	"voodoo/internal/trace"
)

// zoneCatalog builds a catalog whose single int column v holds [0, 99],
// so its zone map proves predicates like v > 1000 empty.
func zoneCatalog(n int) *storage.Catalog {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	return storage.NewCatalog().Add(storage.NewTable("t").AddInt("v", vals))
}

// zoneDiff compiles and runs the program against the catalog (which
// provides statistics) and requires root values identical to the
// interpreter's; it returns the plan for structural assertions.
func zoneDiff(t *testing.T, b *core.Builder, cat *storage.Catalog, opt Options) *Plan {
	t.Helper()
	p := b.Program()
	want, err := interp.Run(p, cat)
	if err != nil {
		t.Fatalf("interp: %v\nprogram:\n%s", err, p)
	}
	plan, err := Compile(p, cat, opt)
	if err != nil {
		t.Fatalf("compile: %v\nprogram:\n%s", err, p)
	}
	got, err := plan.Run()
	if err != nil {
		t.Fatalf("run: %v\nprogram:\n%s\nkernel:\n%s", err, p, plan.Kernel())
	}
	if len(got.Values) == 0 {
		t.Fatalf("no root values produced\nprogram:\n%s", p)
	}
	for ref, gv := range got.Values {
		if wv := want.Value(ref); !gv.Equal(wv) {
			t.Fatalf("root v%d differs\nprogram:\n%s\nkernel:\n%s\nwant:\n%s\ngot:\n%s",
				ref, p, plan.Kernel(), wv, gv)
		}
	}
	return plan
}

func prunedSteps(p *Plan) int {
	n := 0
	for _, s := range p.steps {
		if _, ok := s.(*prunedStep); ok {
			n++
		}
	}
	return n
}

// TestZoneMapPrunesImpossibleSelection: a selection whose predicate the
// column statistics prove unsatisfiable compiles to a pruned step (no
// fragment) in both branching and predicated modes, with results still
// bit-identical to the interpreter.
func TestZoneMapPrunesImpossibleSelection(t *testing.T) {
	for _, tc := range []struct {
		label string
		opt   Options
	}{
		{"branching", Options{}},
		{"predicated", Options{Predication: true}},
	} {
		t.Run(tc.label, func(t *testing.T) {
			cat := zoneCatalog(100)
			b := core.NewBuilder()
			in := b.Load("t")
			pred := b.Greater(in, b.Constant(1000))
			sel := b.FoldSelect(pred, "", "")
			b.Materialize(sel, sel, "")
			plan := zoneDiff(t, b, cat, tc.opt)
			if got := prunedSteps(plan); got != 1 {
				t.Errorf("pruned steps = %d, want 1", got)
			}
			for _, f := range plan.kern.Frags {
				if f.Prov.Kind == "select" {
					t.Errorf("selection fragment %s emitted despite provably-empty predicate", f.Name)
				}
			}
		})
	}
}

// TestZoneMapPrunesImpossibleFilter: the gather-through-select fast path
// (Figure 1's selection) is pruned the same way.
func TestZoneMapPrunesImpossibleFilter(t *testing.T) {
	cat := zoneCatalog(64)
	b := core.NewBuilder()
	in := b.Load("t")
	pred := b.Greater(in, b.Constant(500))
	sel := b.FoldSelect(pred, "", "")
	b.Gather(in, sel, "")
	plan := zoneDiff(t, b, cat, Options{})
	if got := prunedSteps(plan); got != 1 {
		t.Errorf("pruned steps = %d, want 1", got)
	}
}

// TestZoneMapKeepsSatisfiableSelection: a predicate the statistics cannot
// refute compiles to a real fragment — pruning must never fire on a
// selection that can pass.
func TestZoneMapKeepsSatisfiableSelection(t *testing.T) {
	cat := zoneCatalog(100)
	b := core.NewBuilder()
	in := b.Load("t")
	pred := b.Greater(in, b.Constant(50))
	sel := b.FoldSelect(pred, "", "")
	b.Materialize(sel, sel, "")
	plan := zoneDiff(t, b, cat, Options{})
	if got := prunedSteps(plan); got != 0 {
		t.Errorf("pruned steps = %d, want 0 (predicate is satisfiable)", got)
	}
}

// TestZoneMapInertWithoutStats: storage that provides no statistics (the
// plain MemStorage used everywhere else) never prunes.
func TestZoneMapInertWithoutStats(t *testing.T) {
	st := interp.MemStorage{"t": seqVec("v", 100)}
	b := core.NewBuilder()
	in := b.Load("t")
	pred := b.Greater(in, b.Constant(1000))
	sel := b.FoldSelect(pred, "", "")
	b.Materialize(sel, sel, "")
	plan, err := Compile(b.Program(), st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := prunedSteps(plan); got != 0 {
		t.Errorf("pruned steps = %d, want 0 (no statistics available)", got)
	}
}

// TestZoneMapPrunedTrace: the elided step surfaces in the execution trace
// with kind "pruned" and its statement provenance.
func TestZoneMapPrunedTrace(t *testing.T) {
	cat := zoneCatalog(100)
	b := core.NewBuilder()
	in := b.Load("t")
	pred := b.Greater(in, b.Constant(1000))
	sel := b.FoldSelect(pred, "", "")
	b.Materialize(sel, sel, "")
	plan, err := Compile(b.Program(), cat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, tr, err := plan.RunTracedWith(context.Background(), RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range tr.Steps {
		if s.Kind == trace.KindPruned {
			found = true
			if len(s.Stmts) == 0 {
				t.Error("pruned step lost its statement provenance")
			}
		}
	}
	if !found {
		t.Fatalf("no pruned step in trace:\n%s", tr)
	}
}

// TestCatalogColumnRange pins the storage-side zone-map contract: kind-
// aware ranges, dictionary code ranges, the single-column "table.col"
// naming, and refusal past float64's integer-exact window.
func TestCatalogColumnRange(t *testing.T) {
	cat := storage.NewCatalog().Add(storage.NewTable("t").
		AddInt("i", []int64{-3, 7, 5}).
		AddFloat("f", []float64{1.5, -2.5, 0}).
		AddString("s", []string{"b", "a", "c"}).
		AddInt("big", []int64{1 << 60, 0, 0}))
	check := func(vec, col string, wantLo, wantHi float64, wantOK bool) {
		t.Helper()
		lo, hi, ok := cat.ColumnRange(vec, col)
		if ok != wantOK || (ok && (lo != wantLo || hi != wantHi)) {
			t.Errorf("ColumnRange(%q, %q) = (%g, %g, %v), want (%g, %g, %v)",
				vec, col, lo, hi, ok, wantLo, wantHi, wantOK)
		}
	}
	check("t", "i", -3, 7, true)
	check("t", "f", -2.5, 1.5, true)
	check("t", "s", 0, 2, true) // dictionary codes, sorted
	check("t", "big", 0, 0, false)
	check("t.i", "i", -3, 7, true)
	check("t", "missing", 0, 0, false)
	check("nope", "i", 0, 0, false)
}
