package compile

import (
	"os"
	"testing"

	"voodoo/internal/verify"
)

// TestMain switches static verification on for every test in this package:
// each compiled plan is verified before it is returned, so any compiler
// change that emits an ill-formed plan fails here even when the dynamic
// tests would not notice.
func TestMain(m *testing.M) {
	verify.SetEnabled(true)
	os.Exit(m.Run())
}
