package compile

import (
	"fmt"

	"voodoo/internal/core"
	"voodoo/internal/interp"
	"voodoo/internal/kernel"
	"voodoo/internal/vector"
	"voodoo/internal/verify"
)

// Storage provides persistent vectors; it is the same contract the
// interpreter uses, so both backends run against identical catalogs.
type Storage = interp.Storage

// Options tune the compiling backend. The zero value is the default
// configuration used by the macro benchmarks.
type Options struct {
	// Predication replaces the data-dependent branch of selection folds
	// with cursor arithmetic (paper Figure 1 and §5.3): every element is
	// written and the write cursor advances by the predicate value.
	Predication bool
	// ForceBulk disables operator fusion entirely: every statement
	// becomes a materializing bulk step. This reproduces the
	// bulk-processing execution model of MonetDB/Ocelot and backs the
	// Ocelot baseline in the evaluation.
	ForceBulk bool
	// ScatterParallel executes materialized scatters data-parallel. Only
	// safe when scatter positions are unique (e.g. building a unique-key
	// join table); the relational frontend enables it for such plans.
	ScatterParallel bool
	// DefaultExtent bounds the parallelism of fragments whose extent is
	// not dictated by a control vector (materializations, scatters).
	// 0 means the package default (4096).
	DefaultExtent int
	// GroupExtent is the number of parallel work items (each with a
	// private accumulator array) used for grouped aggregations.
	// 0 means the package default (64).
	GroupExtent int
	// Workers caps the goroutines used at execution time (0 = GOMAXPROCS).
	Workers int
}

func (o Options) defaultExtent() int {
	if o.DefaultExtent > 0 {
		return o.DefaultExtent
	}
	return 4096
}

func (o Options) groupExtent() int {
	if o.GroupExtent > 0 {
		return o.GroupExtent
	}
	return 64
}

// Compile lowers p into an executable Plan. Storage is consulted at compile
// time: as in the paper, data sizes are compile-time constants.
func Compile(p *core.Program, st Storage, opt Options) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if verify.Enabled() {
		if diags := verify.Program(p, st); verify.HasErrors(diags) {
			verify.FailuresTotal.Inc()
			return nil, fmt.Errorf("compile: program failed verification: %s", firstError(diags))
		}
	}
	c := &compiler{
		prog: p, st: st, opt: opt,
		kern:      &kernel.Kernel{},
		descs:     make([]*desc, len(p.Stmts)),
		plan:      &Plan{prog: p, st: st, opt: opt},
		foldCache: map[core.Ref]*desc{},
	}
	c.plan.kern = c.kern
	if err := c.run(); err != nil {
		return nil, err
	}
	if verify.Enabled() {
		if diags := c.plan.Verify(); verify.HasErrors(diags) {
			verify.FailuresTotal.Inc()
			return nil, fmt.Errorf("compile: plan failed verification: %s", firstError(diags))
		}
	}
	return c.plan, nil
}

// firstError returns the first Error-level diagnostic.
func firstError(diags []verify.Diagnostic) verify.Diagnostic {
	for _, d := range diags {
		if d.Level == verify.Error {
			return d
		}
	}
	return verify.Diagnostic{}
}

type compiler struct {
	prog  *core.Program
	st    Storage
	opt   Options
	kern  *kernel.Kernel
	descs []*desc
	plan  *Plan
	nbuf  int
	// cur is the SSA id of the statement being compiled, attributed to
	// fragments and bulk steps as provenance for EXPLAIN and tracing.
	cur int
	// foldCache holds the results of fused multi-aggregate folds, keyed
	// by fold statement id.
	foldCache map[core.Ref]*desc
	// ranges holds zone-map value intervals for input buffers whose
	// storage exposes column statistics (see zonemap.go); nil when the
	// storage provides none.
	ranges map[int]valRange
}

type compileErr struct{ err error }

func cerrf(format string, args ...any) {
	panic(compileErr{fmt.Errorf("compile: "+format, args...)})
}

func (c *compiler) run() (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(compileErr); ok {
				err = e.err
				return
			}
			panic(r)
		}
	}()
	uses := c.prog.Uses()
	for i := range c.prog.Stmts {
		s := &c.prog.Stmts[i]
		c.cur = i
		c.descs[i] = c.compileStmt(s)
	}
	// Materialize roots so Plan.Run can hand back vectors.
	for i := range c.prog.Stmts {
		s := &c.prog.Stmts[i]
		c.cur = i
		if len(uses[i]) == 0 && s.Op != core.OpPersist {
			c.plan.outputs = append(c.plan.outputs, output{
				ref: core.Ref(i), conv: c.converter(c.descs[i]),
			})
		}
	}
	return nil
}

func (c *compiler) desc(r core.Ref) *desc { return c.descs[r] }

func (c *compiler) compileStmt(s *core.Stmt) *desc {
	if c.opt.ForceBulk && s.Op != core.OpLoad && s.Op != core.OpPersist {
		return c.bulk(s)
	}
	switch s.Op {
	case core.OpLoad:
		return c.compileLoad(s)
	case core.OpPersist:
		d := c.desc(s.Args[0])
		c.plan.steps = append(c.plan.steps, &persistStep{name: s.Name, conv: c.converter(d)})
		return d
	case core.OpConstant:
		var e expr
		if s.IsFloat {
			e = constF(s.FloatVal)
		} else {
			e = constI(s.IntVal)
		}
		return &desc{n: 1, attrs: []attr{{name: s.Out[0], ex: e}}}
	case core.OpRange:
		n := s.Size
		if len(s.Args) == 1 {
			n = c.desc(s.Args[0]).logical()
		}
		m := vector.Step(s.IntVal, s.Step)
		return &desc{n: n, attrs: []attr{{name: s.Out[0], ex: &eGen{m: m}}}}
	case core.OpZip:
		return c.compileZip(s)
	case core.OpProject:
		return c.compileProject(s)
	case core.OpUpsert:
		return c.compileUpsert(s)
	case core.OpGather:
		return c.compileGather(s)
	case core.OpScatter:
		return c.compileScatter(s)
	case core.OpMaterialize, core.OpBreak:
		d := c.plainify(c.desc(s.Args[0]))
		ctrl := c.ctrlOf(c.desc(s.Args[1]), s.Kp[1], d.logical())
		return c.bufferizeWithCtrl(d, ctrl)
	case core.OpPartition:
		return c.compilePartition(s)
	case core.OpFoldSelect, core.OpFoldSum, core.OpFoldMin, core.OpFoldMax, core.OpFoldScan:
		return c.compileFold(s)
	case core.OpCross:
		return c.bulk(s)
	default:
		if s.Op.IsArith() {
			return c.compileArith(s)
		}
		return c.bulk(s)
	}
}

func (c *compiler) compileLoad(s *core.Stmt) *desc {
	v, err := c.st.LoadVector(s.Name)
	if err != nil {
		cerrf("%v", err)
	}
	d := &desc{n: v.Len()}
	for _, name := range v.Names() {
		col := v.Col(name)
		buf := c.kern.AddBuf(kernel.BufDecl{
			Name: s.Name + "." + name, Kind: col.Kind(), Size: col.Len(),
			Valid: !col.AllValid(), Input: true,
		})
		c.plan.steps = append(c.plan.steps, &bindStep{buf: buf, col: col})
		c.recordRange(buf, s.Name, name)
		a := attr{name: name, ex: &eLoad{buf: buf, k: col.Kind(), idx: theIdx}}
		if !col.AllValid() {
			a.validEx = &eLoadValid{buf: buf, idx: theIdx}
		}
		// Generated (control) columns keep their metadata symbolic.
		if m, ok := col.Generated(); ok {
			a.ex = &eGen{m: m}
			a.validEx = nil
		}
		d.attrs = append(d.attrs, a)
	}
	return d
}

// attrsAt resolves a keypath on a plainified operand, returning copies of
// the designated attributes renamed under out.
func (c *compiler) attrsAt(d *desc, kp, out string, op core.Op) []attr {
	names, idx, ok := d.resolve(kp)
	if !ok {
		cerrf("%s: no attribute %q", op, kp)
	}
	var res []attr
	for i, rel := range names {
		a := d.attrs[idx[i]]
		name := out
		if rel != "" {
			if out != "" {
				name = out + "." + rel
			} else {
				name = rel
			}
		}
		res = append(res, attr{name: name, ex: a.ex, validEx: a.validEx})
	}
	return res
}

// compatible merges two operands into a common index space, or falls back.
// Scalars (n == 1) are broadcast by using their expressions directly.
func (c *compiler) compileZip(s *core.Stmt) *desc {
	d1 := c.plainify(c.desc(s.Args[0]))
	d2 := c.plainify(c.desc(s.Args[1]))
	if d1.layout != layoutDense || d2.layout != layoutDense {
		return c.bulk(s)
	}
	n := min(d1.n, d2.n)
	out := &desc{n: n}
	out.attrs = append(out.attrs, c.attrsAt(d1, s.Kp[0], s.Out[0], s.Op)...)
	out.attrs = append(out.attrs, c.attrsAt(d2, s.Kp[1], s.Out[1], s.Op)...)
	return out
}

func (c *compiler) compileProject(s *core.Stmt) *desc {
	d := c.plainify(c.desc(s.Args[0]))
	out := &desc{n: d.n, layout: d.layout, logicalN: d.logicalN,
		runLen: d.runLen, countsBuf: d.countsBuf}
	out.attrs = c.attrsAt(d, s.Kp[0], s.Out[0], s.Op)
	return out
}

func (c *compiler) compileUpsert(s *core.Stmt) *desc {
	d1 := c.plainify(c.desc(s.Args[0]))
	d2 := c.plainify(c.desc(s.Args[1]))
	a, ok := d2.single(s.Kp[1])
	if !ok {
		cerrf("Upsert: keypath %q does not name a single attribute", s.Kp[1])
	}
	if !isScalar(d2) && (d1.layout != d2.layout || d1.n != d2.n) {
		return c.bulk(s)
	}
	out := &desc{n: d1.n, layout: d1.layout, logicalN: d1.logicalN,
		runLen: d1.runLen, countsBuf: d1.countsBuf}
	replaced := false
	for _, old := range d1.attrs {
		if old.name == s.Out[0] {
			out.attrs = append(out.attrs, attr{name: s.Out[0], ex: a.ex, validEx: a.validEx})
			replaced = true
			continue
		}
		out.attrs = append(out.attrs, old)
	}
	if !replaced {
		out.attrs = append(out.attrs, attr{name: s.Out[0], ex: a.ex, validEx: a.validEx})
	}
	return out
}

func (c *compiler) compileArith(s *core.Stmt) *desc {
	d1 := c.plainify(c.desc(s.Args[0]))
	d2 := c.plainify(c.desc(s.Args[1]))
	a1, ok1 := d1.single(s.Kp[0])
	a2, ok2 := d2.single(s.Kp[1])
	if !ok1 || !ok2 {
		cerrf("%s: operands must resolve to single attributes", s.Op)
	}
	// Determine the common index space. A one-slot vector broadcasts only
	// when it is truly scalar (dense): a one-slot *compact* fold result
	// still denotes a padded vector and must not broadcast.
	var n int
	out := &desc{}
	s1 := isScalar(d1)
	s2 := isScalar(d2)
	switch {
	case s1 && s2:
		n = 1
	case s1:
		n, out.layout, out.logicalN, out.runLen, out.countsBuf = d2.n, d2.layout, d2.logicalN, d2.runLen, d2.countsBuf
	case s2:
		n, out.layout, out.logicalN, out.runLen, out.countsBuf = d1.n, d1.layout, d1.logicalN, d1.runLen, d1.countsBuf
	case d1.layout == layoutDense && d2.layout == layoutDense:
		n = min(d1.n, d2.n)
	case d1.layout == layoutFoldCompact && d2.layout == layoutFoldCompact &&
		d1.runLen == d2.runLen && d1.logicalN == d2.logicalN:
		// Two compatible suppressed fold results (e.g. sum/count for an
		// average) combine slot-wise in the compact space.
		n, out.layout, out.logicalN, out.runLen, out.countsBuf = min(d1.n, d2.n),
			layoutFoldCompact, d1.logicalN, d1.runLen, -1
	default:
		return c.bulk(s)
	}
	out.n = n
	bop, ok := arithBinOp(s.Op)
	if !ok {
		cerrf("%s: no kernel lowering", s.Op)
	}
	ex := binExpr(bop, a1.ex, a2.ex)
	a := attr{name: s.Out[0], ex: ex}
	a.validEx = andValid(a1.validEx, a2.validEx)
	out.attrs = []attr{a}
	return out
}

func andValid(a, b expr) expr {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	default:
		return &eBin{op: kernel.BAnd, a: a, b: b}
	}
}

func arithBinOp(op core.Op) (kernel.BinOp, bool) {
	switch op {
	case core.OpAdd:
		return kernel.BAdd, true
	case core.OpSubtract:
		return kernel.BSub, true
	case core.OpMultiply:
		return kernel.BMul, true
	case core.OpDivide:
		return kernel.BDiv, true
	case core.OpModulo:
		return kernel.BMod, true
	case core.OpBitShift:
		return kernel.BShl, true
	case core.OpLogicalAnd:
		return kernel.BAnd, true
	case core.OpLogicalOr:
		return kernel.BOr, true
	case core.OpGreater:
		return kernel.BGt, true
	case core.OpEquals:
		return kernel.BEq, true
	}
	return 0, false
}

func (c *compiler) compileGather(s *core.Stmt) *desc {
	src := c.desc(s.Args[0])
	posD := c.desc(s.Args[1])

	// Gather through an unmaterialized FoldSelect: keep the pipeline
	// symbolic so a following fold fuses into one fragment (Figure 8).
	if posD.sel != nil {
		srcB := c.bufferize(c.densify(c.plainify(src)))
		var attrs []attr
		for _, a := range srcB.attrs {
			ld := a.ex.(*eLoad)
			na := attr{name: a.name, ex: &eLoad{buf: ld.buf, k: ld.k, idx: thePos}}
			if a.validEx != nil {
				na.validEx = &eLoadValid{buf: ld.buf, idx: thePos}
			}
			attrs = append(attrs, na)
		}
		return &desc{n: posD.sel.srcN, logicalN: posD.sel.srcN,
			filt: &filtInfo{sel: posD.sel, attrs: attrs, stmt: c.cur}}
	}

	// Gather through a *filtered* gather (an indexed FK lookup on selected
	// rows, Figure 16's branching variant): compose the position expression
	// over the selected-position leaf so the whole chain stays one loop.
	if posD.filt != nil {
		pos, ok := (&desc{n: posD.n, attrs: posD.filt.attrs}).single(s.Kp[1])
		if ok {
			srcB := c.bufferize(c.densify(c.plainify(src)))
			var attrs []attr
			for _, a := range srcB.attrs {
				ld := a.ex.(*eLoad)
				validity := &eLoadValid{buf: ld.buf, idx: pos.ex}
				var valid expr = validity
				if pos.validEx != nil {
					valid = &eBin{op: kernel.BAnd, a: pos.validEx, b: validity}
				}
				safe := &eSel{c: valid, a: pos.ex, b: constI(0)}
				attrs = append(attrs, attr{name: a.name,
					ex: &eLoad{buf: ld.buf, k: ld.k, idx: safe}, validEx: valid})
			}
			return &desc{n: posD.n, logicalN: posD.logical(),
				filt: &filtInfo{sel: posD.filt.sel, attrs: attrs, stmt: c.cur}}
		}
	}

	posD = c.densify(c.plainify(posD))
	pos, ok := posD.single(s.Kp[1])
	if !ok {
		cerrf("Gather: position keypath %q does not name a single attribute", s.Kp[1])
	}
	srcB := c.bufferize(c.densify(c.plainify(src)))
	out := &desc{n: posD.n}
	for _, a := range srcB.attrs {
		ld := a.ex.(*eLoad)
		// Generated positions with statically provable bounds load
		// unchecked — the compile-time knowledge the paper exploits.
		if m, ok := genMetaOf(pos.ex); ok && pos.validEx == nil && a.validEx == nil {
			if lo, hi := metaBounds(m, posD.n); lo >= 0 && hi < int64(c.kern.Bufs[ld.buf].Size) {
				out.attrs = append(out.attrs, attr{name: a.name,
					ex: &eLoad{buf: ld.buf, k: ld.k, idx: pos.ex}})
				continue
			}
		}
		// Out-of-bounds (and ε) positions produce ε slots: guard the
		// load with a validity probe and clamp the index.
		validity := &eLoadValid{buf: ld.buf, idx: pos.ex}
		var valid expr = validity
		if pos.validEx != nil {
			valid = &eBin{op: kernel.BAnd, a: pos.validEx, b: validity}
		}
		safe := &eSel{c: valid, a: pos.ex, b: constI(0)}
		load := &eLoad{buf: ld.buf, k: ld.k, idx: safe}
		out.attrs = append(out.attrs, attr{name: a.name, ex: load, validEx: valid})
	}
	return out
}

func (c *compiler) compilePartition(s *core.Stmt) *desc {
	d1 := c.plainify(c.desc(s.Args[0]))
	d2 := c.plainify(c.desc(s.Args[1]))
	val, ok := d1.single(s.Kp[0])
	if !ok {
		cerrf("Partition: keypath %q does not name a single attribute", s.Kp[0])
	}
	piv, okP := d2.single(s.Kp[1])
	if !okP {
		cerrf("Partition: pivot keypath %q does not name a single attribute", s.Kp[1])
	}
	pi := &partInfo{valEx: val.ex, srcN: d1.n, k: d2.logical() + 1, stmt: c.cur}
	pi.pivots = c.converter(&desc{n: d2.n, attrs: []attr{{name: "p", ex: piv.ex, validEx: piv.validEx}}})
	if m, ok := genMetaOf(val.ex); ok {
		pi.meta = &m
	}
	// The position attribute is a provenance marker: a following Scatter
	// dissolves it (virtual scatter); any other consumer forces a bulk
	// counting sort via ensureEmittable.
	return &desc{n: d1.n, part: pi,
		attrs: []attr{{name: s.Out[0], ex: &ePartRef{info: pi}}}}
}

func (c *compiler) compileScatter(s *core.Stmt) *desc {
	src := c.desc(s.Args[0])
	sizeD := c.desc(s.Args[1])
	posD := c.desc(s.Args[2])

	// Virtual scatter (paper §3.1.3): positions generated by a Partition.
	pi := c.partitionBehind(posD, s.Kp[2])
	if pi != nil && src.plain() && src.layout == layoutDense {
		n := sizeD.logical()
		if pi.meta != nil {
			m := *pi.meta
			if m.Cap > 1 && m.IntegralStep(1) && n == src.n {
				// Modulo control: round-robin lanes; partition p
				// holds source elements i ≡ p (mod k). The scatter
				// dissolves into strided index arithmetic.
				k := int(m.Cap)
				return &desc{
					n: n, layout: layoutScattered, logicalN: n,
					lanes: k, runLen: (n + k - 1) / k,
					partAttr: c.scatPartAttr(src, pi),
					attrs:    src.attrs,
				}
			}
			if rl, ok := m.RunLength(); ok && m.Cap == 0 && n == src.n {
				// Divide control: blocked partitions are already
				// contiguous — the scatter is the identity.
				_ = rl
				return &desc{n: src.n, attrs: src.attrs}
			}
		}
		// Data-controlled partition: defer to the grouped-aggregation
		// lowering if a fold consumes this (Figure 11); otherwise the
		// plainify fallback materializes it.
		return &desc{n: sizeD.logical(), logicalN: sizeD.logical(),
			gpend: &groupPending{part: pi, src: src, n: sizeD.logical(), stmt: c.cur}}
	}
	return c.realScatter(s)
}

// scatPartAttr finds the attribute of src that carries the partition id, so
// a fold keyed on it can be recognized.
func (c *compiler) scatPartAttr(src *desc, pi *partInfo) string {
	for _, a := range src.attrs {
		if m, ok := genMetaOf(a.ex); ok && pi.meta != nil && m == *pi.meta {
			return a.name
		}
	}
	return ""
}

// partitionBehind extracts Partition provenance from a position operand.
func (c *compiler) partitionBehind(posD *desc, kp string) *partInfo {
	if posD.part != nil {
		return posD.part
	}
	if a, ok := posD.single(kp); ok {
		if p, ok := a.ex.(*ePartRef); ok {
			return p.info
		}
	}
	return nil
}

// ePartRef lets Partition results travel through Upsert/Zip as ordinary
// attributes while retaining provenance. It cannot be emitted; consuming it
// in a plain expression forces bulk materialization.
type ePartRef struct{ info *partInfo }

func (ePartRef) kind() vector.Kind { return vector.Int }

// groupPending is a virtual scatter over a data-controlled partition,
// waiting for a fold to lower it as a grouped aggregation.
type groupPending struct {
	part *partInfo
	src  *desc
	n    int // output (scattered) size
	stmt int // SSA id of the Scatter, for fragment provenance
}

// ctrlOf derives the fold-loop structure from a control attribute.
func (c *compiler) ctrlOf(d *desc, kp string, n int) foldCtrl {
	if kp == "" {
		return foldCtrl{global: true, runLen: n}
	}
	a, ok := d.single(kp)
	if !ok {
		return foldCtrl{global: true, runLen: n}
	}
	if m, ok := genMetaOf(a.ex); ok {
		if m.IsConstant() {
			return foldCtrl{global: true, runLen: n}
		}
		if rl, ok := m.RunLength(); ok && m.Cap == 0 {
			return foldCtrl{runLen: rl}
		}
		if m.Cap > 1 && m.IntegralStep(1) {
			// Modulo control directly on an id vector: adjacent values
			// all differ, so every run has length 1.
			return foldCtrl{runLen: 1}
		}
	}
	return foldCtrl{unknown: true}
}
