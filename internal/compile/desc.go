package compile

import (
	"voodoo/internal/vector"
)

// layoutKind describes how a compiled value's storage relates to the
// ε-padded layout the interpreter produces.
type layoutKind uint8

const (
	// layoutDense: index space equals the logical space.
	layoutDense layoutKind = iota
	// layoutFoldCompact: a fold output with empty slots suppressed — one
	// slot per run; run r sits at logical position r*runLen (paper
	// §3.1.2). logicalN and runLen describe the padded form.
	layoutFoldCompact
	// layoutSelectPadded: a materialized fold-select — positions written
	// from each run's start, with a counts buffer recording how many
	// each run produced. Slots beyond the count are ε.
	layoutSelectPadded
	// layoutGroupCompact: a grouped (data-controlled) fold output — one
	// slot per partition; the padded position of partition p is the
	// prefix sum of the partition counts.
	layoutGroupCompact
	// layoutScattered: a virtual scatter (paper §3.1.3) — attribute
	// expressions are over the *source* index space; the mapping to the
	// logical (scattered) space is σ(j) = (j mod runLen)*lanes + j/runLen.
	layoutScattered
)

// attr is one compiled attribute: a per-element expression plus an optional
// validity expression (nil = always valid).
type attr struct {
	name    string
	ex      expr
	validEx expr
}

func (a attr) kind() vector.Kind { return a.ex.kind() }

// desc describes the compiled form of one statement's value.
type desc struct {
	n     int // length of the value in its own (possibly compact) index space
	attrs []attr

	layout   layoutKind
	logicalN int // padded length (layouts other than dense)
	runLen   int // layoutFoldCompact / layoutSelectPadded
	lanes    int // layoutScattered: partition count k
	// countsBuf holds per-run (or per-partition) element counts for
	// select and grouped layouts; -1 when absent.
	countsBuf int
	partAttr  string // layoutScattered: name of the partition attribute

	// sel carries an unmaterialized FoldSelect; filt an unmaterialized
	// gather through one. part carries Partition provenance for virtual
	// scatter; gpend a virtual scatter over a data-controlled partition
	// awaiting a grouped-fold consumer.
	sel   *selInfo
	filt  *filtInfo
	part  *partInfo
	gpend *groupPending

	// plainCache memoizes plainify so that several consumers of one
	// pending pipeline share a single spill.
	plainCache *desc
}

// Logical length as the interpreter would report it.
func (d *desc) logical() int {
	if d.layout == layoutDense {
		return d.n
	}
	return d.logicalN
}

func (d *desc) attrIdx(name string) int {
	for i := range d.attrs {
		if d.attrs[i].name == name {
			return i
		}
	}
	return -1
}

// resolve returns the attributes designated by keypath kp ("" = the single
// attribute; a prefix selects a nested subtree). Names come back relative
// to kp ("" for an exact match).
func (d *desc) resolve(kp string) (names []string, idx []int, ok bool) {
	if kp == "" {
		if len(d.attrs) == 1 {
			return []string{""}, []int{0}, true
		}
		for i := range d.attrs {
			names = append(names, d.attrs[i].name)
			idx = append(idx, i)
		}
		return names, idx, len(idx) > 0
	}
	if i := d.attrIdx(kp); i >= 0 {
		return []string{""}, []int{i}, true
	}
	prefix := kp + "."
	for i := range d.attrs {
		if len(d.attrs[i].name) > len(prefix) && d.attrs[i].name[:len(prefix)] == prefix {
			names = append(names, d.attrs[i].name[len(prefix):])
			idx = append(idx, i)
		}
	}
	return names, idx, len(names) > 0
}

// single returns the attribute at kp when kp names exactly one.
func (d *desc) single(kp string) (attr, bool) {
	if kp == "" {
		if len(d.attrs) == 1 {
			return d.attrs[0], true
		}
		return attr{}, false
	}
	if i := d.attrIdx(kp); i >= 0 {
		return d.attrs[i], true
	}
	return attr{}, false
}

// isScalar reports whether d is a genuine one-slot (broadcastable) value.
func isScalar(d *desc) bool { return d.layout == layoutDense && d.n == 1 }

// plain reports whether the value is an ordinary expression-backed vector
// (no pending special form).
func (d *desc) plain() bool {
	return d.sel == nil && d.filt == nil && d.part == nil && d.gpend == nil &&
		d.layout != layoutScattered
}

// selInfo is an unmaterialized FoldSelect: a predicate over the source
// index space plus the run structure of its control vector.
type selInfo struct {
	pred    expr
	srcN    int
	ctrl    foldCtrl
	outName string
	stmt    int // SSA id of the FoldSelect, for fragment provenance
}

// filtInfo is an unmaterialized Gather through a FoldSelect: source
// attribute expressions over the selected position (the ePos leaf).
type filtInfo struct {
	sel   *selInfo
	attrs []attr // exprs over ePos
	stmt  int    // SSA id of the Gather, for fragment provenance
}

// partInfo is the provenance of a Partition statement, kept symbolic so a
// following Scatter can dissolve into index arithmetic (virtual scatter).
type partInfo struct {
	valEx  expr            // partition id per source element
	meta   *vector.RunMeta // non-nil when the ids are a generated control vector
	srcN   int
	k      int       // number of partitions (pivot count + 1)
	pivots converter // produces the pivot vector when a bulk sort is needed
	stmt   int       // SSA id of the Partition, for step provenance

	// spill cache: set once the counting-sort positions materialize.
	spilled bool
	buf     int
}

// ePos is the "currently selected position" leaf used inside filtInfo
// expressions; the fold emitter binds it to the register holding the
// position produced by the select loop.
type ePos struct{}

func (ePos) kind() vector.Kind { return vector.Int }

var thePos = &ePos{}

// foldCtrl is the loop structure derived from a fold's control vector.
type foldCtrl struct {
	global  bool // one run covering the whole vector (fully sequential)
	runLen  int  // blocked runs of this length
	strided bool // runs map to lanes: element (iv, lane) at iv*lanes+lane
	lanes   int
	unknown bool // run structure not statically derivable: fall back to bulk
}

// numRuns returns the number of runs over n elements.
func (c foldCtrl) numRuns(n int) int {
	if c.global {
		return 1
	}
	if c.strided {
		return c.lanes
	}
	if c.runLen <= 0 {
		return n
	}
	return (n + c.runLen - 1) / c.runLen
}
