package compile

import (
	"fmt"
	"math"

	"voodoo/internal/core"
	"voodoo/internal/kernel"
	"voodoo/internal/vector"
)

// addBuf declares a kernel buffer and returns its index.
func (c *compiler) addBuf(name string, k vector.Kind, size int, valid, input bool) int {
	c.nbuf++
	return c.kern.AddBuf(kernel.BufDecl{
		Name: fmt.Sprintf("%s#%d", name, c.nbuf), Kind: k, Size: size,
		Valid: valid, Input: input,
	})
}

// addFrag appends a fragment both to the kernel (for listings and OpenCL
// generation) and to the plan's step sequence.
func (c *compiler) addFrag(f *kernel.Fragment) {
	c.kern.Frags = append(c.kern.Frags, f)
	c.plan.steps = append(c.plan.steps, &fragStep{f: f})
}

// foldOpBin maps a fold operator to its accumulation ALU op.
func foldOpBin(op core.Op) kernel.BinOp {
	switch op {
	case core.OpFoldMin:
		return kernel.BMin
	case core.OpFoldMax:
		return kernel.BMax
	default:
		return kernel.BAdd
	}
}

// foldIdentity returns the accumulator start value for a fold op: 0 for
// sums, and an absorbing sentinel for min/max so that masked-out lanes
// never win.
func foldIdentity(op core.Op, k vector.Kind) (int64, float64) {
	switch op {
	case core.OpFoldMin:
		if k == vector.Float {
			return 0, math.Inf(1)
		}
		return math.MaxInt64, 0
	case core.OpFoldMax:
		if k == vector.Float {
			return 0, math.Inf(-1)
		}
		return math.MinInt64, 0
	}
	return 0, 0
}

// foldSpec is one aggregate of a fused multi-aggregate fold fragment.
type foldSpec struct {
	stmt *core.Stmt
	op   core.Op
	val  attr
}

// specStmts returns the SSA ids of the fused aggregates, for provenance.
func specStmts(specs []foldSpec) []int {
	ids := make([]int, len(specs))
	for i, sp := range specs {
		ids[i] = int(sp.stmt.ID)
	}
	return ids
}

// accStmts is specStmts over the emission-time accumulator states.
func accStmts(accs []*accState) []int {
	ids := make([]int, len(accs))
	for i, st := range accs {
		ids[i] = int(st.spec.stmt.ID)
	}
	return ids
}

// siblingFolds collects every aggregation fold over the same input and
// control attribute as s (including s itself), so one fragment computes all
// of them — one scan instead of one per aggregate, as the paper's compiler
// fuses Figure 8's folds.
func (c *compiler) siblingFolds(s *core.Stmt) []*core.Stmt {
	var out []*core.Stmt
	for i := range c.prog.Stmts {
		t := &c.prog.Stmts[i]
		if t.Op.IsFold() && t.Op != core.OpFoldSelect && t.Op != core.OpFoldScan &&
			t.Args[0] == s.Args[0] && t.Kp[0] == s.Kp[0] {
			out = append(out, t)
		}
	}
	return out
}

func (c *compiler) compileFold(s *core.Stmt) *desc {
	if d, ok := c.foldCache[s.ID]; ok {
		return d
	}
	d := c.desc(s.Args[0])
	switch {
	case d.filt != nil:
		return c.fusedFilterFold(s, d)
	case d.gpend != nil:
		return c.groupedFold(s, d)
	case d.layout == layoutScattered:
		return c.scatteredFold(s, d)
	}
	d = c.emitReady(d)
	// Position-sensitive folds (select, scan) and folds with their own
	// run structure need the padded index space; value-only global folds
	// can run directly over the compact form (the suppression hot path).
	if d.layout != layoutDense &&
		(s.Op == core.OpFoldSelect || s.Op == core.OpFoldScan || s.Kp[0] != "") {
		d = c.densify(d)
	}
	ctrl := c.ctrlOf(d, s.Kp[0], d.n)
	if ctrl.unknown {
		return c.bulk(s)
	}
	if ctrl.global {
		ctrl.runLen = d.n
	}
	switch s.Op {
	case core.OpFoldSelect:
		sel, ok := d.single(s.FoldVal)
		if !ok {
			return c.bulk(s)
		}
		pred := selectedPred(sel)
		return &desc{n: d.n, logicalN: d.logical(),
			sel: &selInfo{pred: pred, srcN: d.n, ctrl: ctrl, outName: s.Out[0], stmt: c.cur}}
	case core.OpFoldScan:
		return c.plainScan(s, d, ctrl)
	default:
		specs := c.specsFor(c.siblingFolds(s), d)
		stride := ctrl.runLen
		if d.layout == layoutFoldCompact {
			stride *= d.runLen
		}
		c.multiFold(specs, ctrl.numRuns(d.n), ctrl.runLen, d.n, false,
			d.logical(), stride)
		return c.foldCache[s.ID]
	}
}

// specsFor resolves the value attribute of each sibling fold against view.
func (c *compiler) specsFor(stmts []*core.Stmt, view *desc) []foldSpec {
	var specs []foldSpec
	for _, t := range stmts {
		val, ok := view.single(t.FoldVal)
		if !ok {
			cerrf("%s: no value attribute %q", t.Op, t.FoldVal)
		}
		specs = append(specs, foldSpec{stmt: t, op: t.Op, val: val})
	}
	return specs
}

// selectedPred combines an attribute's value and validity into a single
// 0/1 predicate: selected iff valid and non-zero.
func selectedPred(a attr) expr {
	var nz expr
	if a.kind() == vector.Float {
		nz = &eBin{op: kernel.BEq, a: a.ex, b: constF(0)}
	} else {
		nz = &eBin{op: kernel.BEq, a: a.ex, b: constI(0)}
	}
	// selected = !(v == 0): (v==0) ? 0 : 1
	sel := &eSel{c: nz, a: constI(0), b: constI(1)}
	if a.validEx != nil {
		return &eBin{op: kernel.BAnd, a: a.validEx, b: sel}
	}
	return sel
}

// accState is one fused aggregate's register set during emission.
type accState struct {
	spec foldSpec
	kind vector.Kind
	acc  kernel.Reg
	any  kernel.Reg
	need bool // validity tracking needed
	iI   int64
	iF   float64
	bop  kernel.BinOp
	out  int // output buffer
}

// prepareAccs allocates accumulators and output buffers for a fused fold.
func (c *compiler) prepareAccs(em *emitter, f *kernel.Fragment, specs []foldSpec, slots int) []*accState {
	var accs []*accState
	for _, sp := range specs {
		st := &accState{spec: sp, kind: sp.val.kind(), bop: foldOpBin(sp.op)}
		st.iI, st.iF = foldIdentity(sp.op, st.kind)
		st.need = sp.val.validEx != nil || sp.op == core.OpFoldMin || sp.op == core.OpFoldMax
		st.acc = em.alloc()
		st.any = em.alloc()
		st.out = c.addBuf("fold", st.kind, slots, true, false)
		f.Pre = append(f.Pre, kernel.Instr{Op: kernel.IConstI, Dst: st.any, Imm: 0})
		if st.kind == vector.Float {
			f.Pre = append(f.Pre, kernel.Instr{Op: kernel.IConstF, Dst: st.acc, FImm: st.iF})
		} else {
			f.Pre = append(f.Pre, kernel.Instr{Op: kernel.IConstI, Dst: st.acc, Imm: st.iI})
		}
		accs = append(accs, st)
	}
	return accs
}

// emitAccumulate appends one aggregate's accumulation to the body.
func (em *emitter) emitAccumulate(st *accState) {
	ex := st.spec.val.ex
	if st.spec.val.validEx != nil {
		var ident expr = constI(st.iI)
		if st.kind == vector.Float {
			ident = constF(st.iF)
		}
		ex = &eSel{c: st.spec.val.validEx, a: st.spec.val.ex, b: ident}
	}
	v := em.emitAs(ex, st.kind)
	em.push(kernel.Instr{Op: kernel.IBin, BOp: st.bop, Dst: st.acc, A: st.acc, B: v,
		Float: st.kind == vector.Float})
	if st.need {
		var one kernel.Reg
		if st.spec.val.validEx != nil {
			one = em.emit(st.spec.val.validEx)
		} else {
			one = em.emit(constI(1))
		}
		em.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BAdd, Dst: st.any, A: st.any, B: one})
	}
}

// flushAccs stores each accumulator at out[gid] with its validity.
func flushAccs(f *kernel.Fragment, accs []*accState) {
	for _, st := range accs {
		store := kernel.Instr{Op: kernel.IStore, Buf: st.out, A: kernel.RegGID, B: st.acc,
			Float: st.kind == vector.Float, Seq: true}
		if st.need {
			store.C = st.any
		}
		f.Post = append(f.Post, store)
	}
}

// cacheFoldResults registers the per-statement compact output descriptors.
func (c *compiler) cacheFoldResults(accs []*accState, numRuns, logicalN, stride int) {
	for _, st := range accs {
		out := &desc{
			n: numRuns, layout: layoutFoldCompact,
			logicalN: logicalN, runLen: stride, countsBuf: -1,
		}
		a := attr{name: st.spec.stmt.Out[0],
			ex: &eLoad{buf: st.out, k: st.kind, idx: theIdx}}
		if st.need {
			a.validEx = &eLoadValid{buf: st.out, idx: theIdx}
		}
		out.attrs = []attr{a}
		c.foldCache[st.spec.stmt.ID] = out
	}
}

// multiFold emits one fragment computing every sibling aggregate: blocked
// (or strided) runs, one accumulator set per aggregate, one output slot per
// run (empty-slot suppression, §3.1.2).
func (c *compiler) multiFold(specs []foldSpec, numRuns, intent, n int, strided bool,
	logicalN, stride int) {

	f := &kernel.Fragment{
		Name:   fmt.Sprintf("fold_%d", specs[0].stmt.ID),
		Extent: numRuns, Intent: intent, N: n, Strided: strided,
		Prov: kernel.Prov{Kind: "fold", Stmts: specStmts(specs),
			Suppressed: numRuns < n, Virtual: strided},
	}
	var body []kernel.Instr
	em := newEmitter(&body)
	accs := c.prepareAccs(em, f, specs, numRuns)
	for _, st := range accs {
		em.emitAccumulate(st)
	}
	f.Loops = []kernel.Loop{{Body: body}}
	flushAccs(f, accs)
	c.addFrag(f)
	c.cacheFoldResults(accs, numRuns, logicalN, stride)
}

// plainScan lowers FoldScan: a running sum per run, one output per element.
func (c *compiler) plainScan(s *core.Stmt, d *desc, ctrl foldCtrl) *desc {
	val, ok := d.single(s.FoldVal)
	if !ok {
		cerrf("%s: no value attribute %q", s.Op, s.FoldVal)
	}
	kind := val.kind()
	numRuns := ctrl.numRuns(d.n)
	outBuf := c.addBuf("scan", kind, d.n, val.validEx != nil, false)
	f := &kernel.Fragment{
		Name:   fmt.Sprintf("scan_%d", s.ID),
		Extent: numRuns, Intent: ctrl.runLen, N: d.n,
		Prov: kernel.Prov{Kind: "scan", Stmts: []int{int(s.ID)}},
	}
	var body []kernel.Instr
	em := newEmitter(&body)
	acc := em.alloc()
	if kind == vector.Float {
		f.Pre = []kernel.Instr{{Op: kernel.IConstF, Dst: acc, FImm: 0}}
	} else {
		f.Pre = []kernel.Instr{{Op: kernel.IConstI, Dst: acc, Imm: 0}}
	}
	ex := val.ex
	var validR kernel.Reg = kernel.NoReg
	if val.validEx != nil {
		var zero expr = constI(0)
		if kind == vector.Float {
			zero = constF(0)
		}
		ex = &eSel{c: val.validEx, a: val.ex, b: zero}
		validR = em.emit(val.validEx)
	}
	v := em.emitAs(ex, kind)
	em.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BAdd, Dst: acc, A: acc, B: v, Float: kind == vector.Float})
	store := kernel.Instr{Op: kernel.IStore, Buf: outBuf, A: kernel.RegIdx, B: acc,
		Float: kind == vector.Float, Seq: true}
	if validR != kernel.NoReg {
		store.C = validR
	}
	em.push(store)
	f.Loops = []kernel.Loop{{Body: body}}
	c.addFrag(f)

	out := &desc{n: d.n, layout: d.layout, logicalN: d.logicalN, runLen: d.runLen, countsBuf: -1}
	a := attr{name: s.Out[0], ex: &eLoad{buf: outBuf, k: kind, idx: theIdx}}
	if val.validEx != nil {
		a.validEx = &eLoadValid{buf: outBuf, idx: theIdx}
	}
	out.attrs = []attr{a}
	return out
}

// scatteredFold lowers folds over a virtually scattered vector: work item =
// lane, iterations stride through the source (paper Figure 4's SIMD
// pattern). The fold control must be the partition attribute.
func (c *compiler) scatteredFold(s *core.Stmt, d *desc) *desc {
	if s.Kp[0] == "" || s.Kp[0] != d.partAttr ||
		s.Op == core.OpFoldSelect || s.Op == core.OpFoldScan {
		return c.compileFoldOn(s, c.plainify(d))
	}
	srcView := &desc{n: d.logicalN, attrs: d.attrs}
	specs := c.specsFor(c.siblingFolds(s), srcView)
	c.multiFold(specs, d.lanes, d.runLen, d.logicalN, true, d.logicalN, d.runLen)
	return c.foldCache[s.ID]
}

// compileFoldOn re-runs fold compilation against a replacement descriptor.
func (c *compiler) compileFoldOn(s *core.Stmt, d *desc) *desc {
	saved := c.descs[s.Args[0]]
	c.descs[s.Args[0]] = d
	out := c.compileFold(s)
	c.descs[s.Args[0]] = saved
	return out
}

// fusedFilterFold fuses FoldSelect → Gather → folds into a single fragment
// (paper Figures 8/9): each work item scans its run, selects qualifying
// positions, and aggregates the gathered values — with either a
// data-dependent branch (IGuard) or cursor arithmetic (predication). A
// second fragment reduces the per-run partials.
func (c *compiler) fusedFilterFold(s *core.Stmt, d *desc) *desc {
	if s.Op == core.OpFoldSelect || s.Op == core.OpFoldScan || s.Kp[0] != "" {
		return c.compileFoldOn(s, c.plainify(d))
	}
	fi := d.filt
	srcN := fi.sel.srcN
	ctrl := fi.sel.ctrl
	if ctrl.global {
		ctrl.runLen = srcN
	}
	numRuns := ctrl.numRuns(srcN)

	view := &desc{n: srcN, attrs: fi.attrs}
	specs := c.specsFor(c.siblingFolds(s), view)

	f := &kernel.Fragment{
		Name:   fmt.Sprintf("ffold_%d", s.ID),
		Extent: numRuns, Intent: ctrl.runLen, N: srcN,
		Prov: kernel.Prov{Kind: "filter-fold",
			Stmts:      append([]int{fi.sel.stmt, fi.stmt}, specStmts(specs)...),
			Suppressed: true, Predicated: c.opt.Predication},
	}
	var loop1 []kernel.Instr
	em := newEmitter(&loop1)
	accs := c.prepareAccs(em, f, specs, numRuns)
	cursor := em.alloc()
	f.Pre = append(f.Pre, kernel.Instr{Op: kernel.IConstI, Dst: cursor, Imm: 0})

	var loop2 []kernel.Instr
	var cursorBound kernel.Reg = kernel.NoReg
	if !c.opt.Predication {
		// Branching: guard on the predicate, then gather and fold the
		// qualifying element directly — no position list exists at all.
		pred := em.emit(fi.sel.pred)
		em.push(kernel.Instr{Op: kernel.IGuard, A: pred})
		em.memo[expr(thePos)] = kernel.RegIdx
		for _, st := range accs {
			em.emitAccumulate(st)
		}
	} else {
		// Predication: loop 1 unconditionally writes each position into
		// the run-local buffer and advances the cursor by the predicate
		// (Ross-style cursor arithmetic); loop 2 walks only the cursor
		// prefix, gathering and folding. The local buffer is the
		// intermediate whose size the control vector tunes — run length
		// = cache-sized chunks gives the paper's "vectorized" variant.
		f.Locals = ctrl.runLen
		pred := em.emit(fi.sel.pred)
		em.push(kernel.Instr{Op: kernel.IStoreLoc, A: cursor, B: kernel.RegIdx})
		em.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BAdd, Dst: cursor, A: cursor, B: pred})

		em.to(&loop2)
		em.invalidateIdx()
		pos := em.alloc()
		em.push(kernel.Instr{Op: kernel.ILoadLoc, Dst: pos, A: kernel.RegIV})
		em.memo[expr(thePos)] = pos
		for _, st := range accs {
			em.emitAccumulate(st)
		}
		cursorBound = cursor
	}
	// Per-run partials carry validity: runs that selected nothing stay ε.
	// Aggregates whose inputs carry their own validity keep their exact
	// counts; the rest share the selected-row count.
	var selCount kernel.Reg
	if c.opt.Predication {
		selCount = cursor // the cursor is the selected count
	} else {
		selCount = em.alloc()
		f.Pre = append(f.Pre, kernel.Instr{Op: kernel.IConstI, Dst: selCount, Imm: 0})
		one := em.emit(constI(1))
		em.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BAdd, Dst: selCount, A: selCount, B: one})
	}
	for _, st := range accs {
		if !st.need {
			st.need = true
			st.any = selCount
		}
	}
	// Assign loop bodies only now: earlier assignment would capture stale
	// slice headers while emission still appends.
	if cursorBound == kernel.NoReg {
		f.Loops = []kernel.Loop{{Body: loop1}}
	} else {
		f.Loops = []kernel.Loop{
			{Body: loop1},
			{BoundReg: cursorBound, Body: loop2},
		}
	}
	flushAccs(f, accs)
	c.addFrag(f)

	if numRuns == 1 {
		c.cacheFoldResults(accs, 1, srcN, srcN)
		return c.foldCache[s.ID]
	}
	c.reduceCompact(accs, numRuns, srcN)
	return c.foldCache[s.ID]
}

// reduceCompact emits one sequential fragment reducing every aggregate's
// per-run partials to a single slot (the paper's Fragment 2 in Figure 8).
func (c *compiler) reduceCompact(accs []*accState, numRuns, logicalN int) {
	f := &kernel.Fragment{
		Name:   fmt.Sprintf("reduce_%d", accs[0].spec.stmt.ID),
		Extent: 1, Intent: numRuns, N: numRuns,
		Prov: kernel.Prov{Kind: "reduce", Stmts: accStmts(accs), Suppressed: true},
	}
	var body []kernel.Instr
	em := newEmitter(&body)
	type rstate struct {
		acc, any kernel.Reg
		out      int
	}
	var rs []rstate
	for _, st := range accs {
		r := rstate{acc: em.alloc(), any: em.alloc()}
		r.out = c.addBuf("reduce", st.kind, 1, true, false)
		f.Pre = append(f.Pre, kernel.Instr{Op: kernel.IConstI, Dst: r.any, Imm: 0})
		if st.kind == vector.Float {
			f.Pre = append(f.Pre, kernel.Instr{Op: kernel.IConstF, Dst: r.acc, FImm: st.iF})
		} else {
			f.Pre = append(f.Pre, kernel.Instr{Op: kernel.IConstI, Dst: r.acc, Imm: st.iI})
		}
		rs = append(rs, r)
	}
	for i, st := range accs {
		valid := &eLoadValid{buf: st.out, idx: theIdx}
		var ident expr = constI(st.iI)
		if st.kind == vector.Float {
			ident = constF(st.iF)
		}
		ex := &eSel{c: valid, a: &eLoad{buf: st.out, k: st.kind, idx: theIdx}, b: ident}
		v := em.emitAs(ex, st.kind)
		em.push(kernel.Instr{Op: kernel.IBin, BOp: st.bop, Dst: rs[i].acc, A: rs[i].acc, B: v,
			Float: st.kind == vector.Float})
		vr := em.emit(valid)
		em.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BAdd, Dst: rs[i].any, A: rs[i].any, B: vr})
	}
	f.Loops = []kernel.Loop{{Body: body}}
	zero := em.alloc()
	f.Post = append(f.Post, kernel.Instr{Op: kernel.IConstI, Dst: zero, Imm: 0})
	for i, st := range accs {
		f.Post = append(f.Post, kernel.Instr{Op: kernel.IStore, Buf: rs[i].out, A: zero,
			B: rs[i].acc, C: rs[i].any, Float: st.kind == vector.Float, Seq: true})
	}
	c.addFrag(f)
	for i, st := range accs {
		out := &desc{n: 1, layout: layoutFoldCompact, logicalN: logicalN, runLen: logicalN, countsBuf: -1}
		out.attrs = []attr{{name: st.spec.stmt.Out[0],
			ex:      &eLoad{buf: rs[i].out, k: st.kind, idx: theIdx},
			validEx: &eLoadValid{buf: rs[i].out, idx: theIdx}}}
		c.foldCache[st.spec.stmt.ID] = out
	}
}

// groupedFold lowers folds over a virtual scatter with data-controlled
// partitions — the paper's Figure 11 grouped aggregation. Work items keep a
// private accumulator (and count) per partition and aggregate; a second
// fragment reduces the partials.
func (c *compiler) groupedFold(s *core.Stmt, d *desc) *desc {
	gp := d.gpend
	if s.Op == core.OpFoldSelect || s.Op == core.OpFoldScan {
		return c.compileFoldOn(s, c.plainify(d))
	}
	// An empty fold keypath means one global run, never the per-partition
	// run structure — without this guard, a source with a single attribute
	// that happens to be the partition control would be mistaken for a
	// partition-keyed grouped aggregation.
	ctrlAttr, ok := gp.src.single(s.Kp[0])
	if s.Kp[0] == "" || !ok || ctrlAttr.ex != gp.part.valEx {
		return c.compileFoldOn(s, c.plainify(d))
	}
	specs := c.specsFor(c.siblingFolds(s), gp.src)
	k := gp.part.k
	srcN := gp.part.srcN
	nA := len(specs)

	// Locals are float if any aggregate is (counts stay exact ≤ 2^53).
	anyFloat := false
	for _, sp := range specs {
		if sp.val.kind() == vector.Float {
			anyFloat = true
		}
	}
	lkind := vector.Int
	if anyFloat {
		lkind = vector.Float
	}

	P := min(c.opt.groupExtent(), max(1, srcN/max(k, 1)))
	if P < 1 {
		P = 1
	}
	// Per work item: for each aggregate, k sums then k counts; then k raw
	// occupancy slots counting every scattered row (including ε rows,
	// which the interpreter places in the zero-valued partition) so the
	// padded layout expands exactly as the interpreter's.
	width := 2*k*nA + k
	partials := c.addBuf("gpart", lkind, P*width, false, false)
	f := &kernel.Fragment{
		Name:   fmt.Sprintf("gfold_%d", s.ID),
		Extent: P, Intent: (srcN + P - 1) / P, N: srcN,
		Locals: width, LocalsFloat: anyFloat, LocalsInit: 0,
		Prov: kernel.Prov{Kind: "group-fold",
			Stmts:   append([]int{gp.part.stmt, gp.stmt}, specStmts(specs)...),
			Virtual: true},
	}
	var body []kernel.Instr
	em := newEmitter(&body)
	// Raw occupancy first (before any guard): ε rows read group zero, as
	// the interpreter's Partition does.
	g0ex := gp.part.valEx
	if ctrlAttr.validEx != nil {
		g0ex = &eSel{c: ctrlAttr.validEx, a: gp.part.valEx, b: constI(0)}
	}
	g0 := em.emitAs(g0ex, vector.Int)
	occBase := em.emit(constI(int64(2 * k * nA)))
	occIdx := em.alloc()
	em.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BAdd, Dst: occIdx, A: occBase, B: g0})
	occOld := em.alloc()
	em.push(kernel.Instr{Op: kernel.ILoadLoc, Dst: occOld, A: occIdx, Float: anyFloat})
	occOne := em.emit(constI(1))
	occInc := occOne
	if anyFloat {
		occInc = em.alloc()
		em.push(kernel.Instr{Op: kernel.ICastIF, Dst: occInc, A: occOne})
	}
	occNew := em.alloc()
	em.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BAdd, Dst: occNew, A: occOld, B: occInc, Float: anyFloat})
	em.push(kernel.Instr{Op: kernel.IStoreLoc, A: occIdx, B: occNew, Float: anyFloat})
	// Rows whose group id is ε (padding from an upstream selection, or a
	// missed join) belong to no group: skip them before touching the
	// aggregate accumulators.
	if ctrlAttr.validEx != nil {
		gv := em.emit(ctrlAttr.validEx)
		em.push(kernel.Instr{Op: kernel.IGuard, A: gv})
	}
	g := em.emit(gp.part.valEx)

	for ai, sp := range specs {
		iI, iF := foldIdentity(sp.op, lkind)
		bop := foldOpBin(sp.op)
		base := em.emit(constI(int64(2 * k * ai)))
		slot := em.alloc()
		em.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BAdd, Dst: slot, A: base, B: g})
		kOff := em.emit(constI(int64(k)))
		cntIdx := em.alloc()
		em.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BAdd, Dst: cntIdx, A: slot, B: kOff})
		cnt := em.alloc()
		em.push(kernel.Instr{Op: kernel.ILoadLoc, Dst: cnt, A: cntIdx, Float: anyFloat})

		validR := kernel.NoReg
		ex := sp.val.ex
		if sp.val.validEx != nil {
			validR = em.emit(sp.val.validEx)
			var ident expr = constI(iI)
			if lkind == vector.Float {
				ident = constF(iF)
			}
			ex = &eSel{c: sp.val.validEx, a: sp.val.ex, b: ident}
		}
		v := em.emitAs(ex, lkind)
		old := em.alloc()
		em.push(kernel.Instr{Op: kernel.ILoadLoc, Dst: old, A: slot, Float: anyFloat})
		merged := em.alloc()
		em.push(kernel.Instr{Op: kernel.IBin, BOp: bop, Dst: merged, A: old, B: v, Float: anyFloat})
		if sp.op != core.OpFoldSum {
			cntI := cnt
			if anyFloat {
				cntI = em.alloc()
				em.push(kernel.Instr{Op: kernel.ICastFI, Dst: cntI, A: cnt})
			}
			em.push(kernel.Instr{Op: kernel.ISel, Dst: merged, A: cntI, B: merged, C: v, Float: anyFloat})
		}
		em.push(kernel.Instr{Op: kernel.IStoreLoc, A: slot, B: merged, Float: anyFloat})
		inc := em.emit(constI(1))
		if validR != kernel.NoReg {
			inc = validR
		}
		if anyFloat {
			fi := em.alloc()
			em.push(kernel.Instr{Op: kernel.ICastIF, Dst: fi, A: inc})
			inc = fi
		}
		newCnt := em.alloc()
		em.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BAdd, Dst: newCnt, A: cnt, B: inc, Float: anyFloat})
		em.push(kernel.Instr{Op: kernel.IStoreLoc, A: cntIdx, B: newCnt, Float: anyFloat})
	}
	f.Loops = []kernel.Loop{{Body: body}}

	// Post-loop: partials[gid*width + j] = loc[j].
	var post []kernel.Instr
	pe := newEmitter(&post)
	wReg := pe.emit(constI(int64(width)))
	slot := pe.alloc()
	pe.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BMul, Dst: slot, A: kernel.RegGID, B: wReg})
	pe.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BAdd, Dst: slot, A: slot, B: kernel.RegJ})
	lv := pe.alloc()
	pe.push(kernel.Instr{Op: kernel.ILoadLoc, Dst: lv, A: kernel.RegJ, Float: anyFloat})
	pe.push(kernel.Instr{Op: kernel.IStore, Buf: partials, A: slot, B: lv, Float: anyFloat, Seq: true})
	f.PostLoopBody = post
	c.addFrag(f)

	// Reduction: one fragment, extent = k work items; each reduces its
	// group's P partials for every aggregate.
	rf := &kernel.Fragment{
		Name:   fmt.Sprintf("greduce_%d", s.ID),
		Extent: k, Intent: P,
		Prov: kernel.Prov{Kind: "group-reduce", Stmts: specStmts(specs), Virtual: true},
	}
	var rbody []kernel.Instr
	rem := newEmitter(&rbody)
	counts := c.addBuf("gcnt", vector.Int, k, false, false)
	type gout struct {
		acc, any kernel.Reg
		sums     int
		kind     vector.Kind
	}
	var gouts []gout
	for _, sp := range specs {
		o := gout{acc: rem.alloc(), any: rem.alloc(), kind: sp.val.kind()}
		o.sums = c.addBuf("gsum", o.kind, k, true, false)
		iI, iF := foldIdentity(sp.op, lkind)
		rf.Pre = append(rf.Pre, kernel.Instr{Op: kernel.IConstI, Dst: o.any, Imm: 0})
		if anyFloat {
			rf.Pre = append(rf.Pre, kernel.Instr{Op: kernel.IConstF, Dst: o.acc, FImm: iF})
		} else {
			rf.Pre = append(rf.Pre, kernel.Instr{Op: kernel.IConstI, Dst: o.acc, Imm: iI})
		}
		gouts = append(gouts, o)
	}
	// base = iv*width
	wR := rem.emit(constI(int64(width)))
	base := rem.alloc()
	rem.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BMul, Dst: base, A: kernel.RegIV, B: wR})
	for ai, sp := range specs {
		o := &gouts[ai]
		off := rem.emit(constI(int64(2 * k * ai)))
		vi := rem.alloc()
		rem.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BAdd, Dst: vi, A: base, B: off})
		rem.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BAdd, Dst: vi, A: vi, B: kernel.RegGID})
		rv := rem.alloc()
		rem.push(kernel.Instr{Op: kernel.ILoad, Dst: rv, A: vi, Buf: partials, Float: anyFloat, Seq: true})
		kR := rem.emit(constI(int64(k)))
		ci := rem.alloc()
		rem.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BAdd, Dst: ci, A: vi, B: kR})
		rc := rem.alloc()
		rem.push(kernel.Instr{Op: kernel.ILoad, Dst: rc, A: ci, Buf: partials, Float: anyFloat, Seq: true})
		rcI := rc
		if anyFloat {
			rcI = rem.alloc()
			rem.push(kernel.Instr{Op: kernel.ICastFI, Dst: rcI, A: rc})
		}
		rem.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BAdd, Dst: o.any, A: o.any, B: rcI})
		merged := rem.alloc()
		rem.push(kernel.Instr{Op: kernel.IBin, BOp: foldOpBin(sp.op), Dst: merged, A: o.acc, B: rv, Float: anyFloat})
		rem.push(kernel.Instr{Op: kernel.ISel, Dst: o.acc, A: rcI, B: merged, C: o.acc, Float: anyFloat})
	}
	for ai, sp := range specs {
		o := &gouts[ai]
		accOut := o.acc
		if sp.val.kind() != lkind {
			// Locals ran in float space; cast integer results back.
			cast := rem.alloc()
			rf.Post = append(rf.Post, kernel.Instr{Op: kernel.ICastFI, Dst: cast, A: o.acc})
			accOut = cast
		}
		rf.Post = append(rf.Post, kernel.Instr{Op: kernel.IStore, Buf: o.sums, A: kernel.RegGID,
			B: accOut, C: o.any, Float: sp.val.kind() == vector.Float, Seq: true})
	}
	// Occupancy reduce: counts[g] = Σ over work items of occ[g].
	occAcc := rem.alloc()
	rf.Pre = append(rf.Pre, kernel.Instr{Op: kernel.IConstI, Dst: occAcc, Imm: 0})
	occOff := rem.emit(constI(int64(2 * k * nA)))
	oi := rem.alloc()
	rem.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BAdd, Dst: oi, A: base, B: occOff})
	rem.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BAdd, Dst: oi, A: oi, B: kernel.RegGID})
	ov := rem.alloc()
	rem.push(kernel.Instr{Op: kernel.ILoad, Dst: ov, A: oi, Buf: partials, Float: anyFloat, Seq: true})
	ovI := ov
	if anyFloat {
		ovI = rem.alloc()
		rem.push(kernel.Instr{Op: kernel.ICastFI, Dst: ovI, A: ov})
	}
	rem.push(kernel.Instr{Op: kernel.IBin, BOp: kernel.BAdd, Dst: occAcc, A: occAcc, B: ovI})
	rf.Loops = []kernel.Loop{{Body: rbody}}
	rf.Post = append(rf.Post, kernel.Instr{Op: kernel.IStore, Buf: counts, A: kernel.RegGID,
		B: occAcc, Seq: true})
	c.addFrag(rf)

	for ai, sp := range specs {
		out := &desc{
			n: k, layout: layoutGroupCompact,
			logicalN: gp.n, countsBuf: counts,
		}
		out.attrs = []attr{{name: sp.stmt.Out[0],
			ex:      &eLoad{buf: gouts[ai].sums, k: sp.val.kind(), idx: theIdx},
			validEx: &eLoadValid{buf: gouts[ai].sums, idx: theIdx}}}
		c.foldCache[sp.stmt.ID] = out
	}
	return c.foldCache[s.ID]
}
