package rel

import (
	"context"
	"errors"
	"testing"
	"time"

	"voodoo/internal/exec"
	"voodoo/internal/faultinject"
)

func hardeningQuery() Query {
	return Query{Root: GroupAgg{
		In:   Scan{Table: "ord", Cols: []string{"total"}},
		Aggs: []AggSpec{{Func: Sum, E: C("total"), As: "s"}},
	}}
}

func TestEngineRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, e := range engines(testCatalog()) {
		if _, _, err := e.RunContext(ctx, hardeningQuery()); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

func TestEngineDeadlineLimit(t *testing.T) {
	faultinject.With(t, faultinject.Hooks{
		FragmentStart: func(frag string) { time.Sleep(5 * time.Millisecond) },
	})
	e := &Engine{Cat: testCatalog(), Backend: Compiled,
		Limits: exec.Limits{Deadline: time.Now().Add(time.Millisecond)}}
	// The deadline has passed before the first fragment boundary check.
	time.Sleep(2 * time.Millisecond)
	if _, _, err := e.Run(hardeningQuery()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestEngineGovernorMaxBytes(t *testing.T) {
	// A grouped aggregate allocates partition/fold buffers; a 64-byte
	// budget cannot hold them.
	q := Query{Root: GroupAgg{
		In:   Scan{Table: "ord", Cols: []string{"total", "prio"}},
		Keys: []string{"prio"},
		Aggs: []AggSpec{{Func: Sum, E: C("total"), As: "s"}},
	}}
	e := &Engine{Cat: testCatalog(), Backend: Compiled,
		Limits: exec.Limits{MaxBytes: 64}}
	if _, _, err := e.Run(q); !errors.Is(err, exec.ErrResourceExhausted) {
		t.Fatalf("err = %v, want ErrResourceExhausted", err)
	}
	// The same query under a generous budget succeeds.
	e.Limits = exec.Limits{MaxBytes: 1 << 24}
	if _, _, err := e.Run(q); err != nil {
		t.Fatalf("within budget: %v", err)
	}
}

func TestEnginePanicIsolated(t *testing.T) {
	faultinject.With(t, faultinject.Hooks{
		Item: func(frag string, gid int) { panic("injected engine bug") },
	})
	e := &Engine{Cat: testCatalog(), Backend: Compiled}
	_, _, err := e.Run(hardeningQuery())
	var pe *exec.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *exec.PanicError", err, err)
	}
}
