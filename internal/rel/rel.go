// Package rel is the relational frontend (paper §4): it lowers relational
// query plans to Voodoo programs the way the paper's MonetDB integration
// does — identity hashing on open tables sized from min/max metadata for
// joins and group-bys, selection via controlled fold-selects, and no
// order-by/limit inside the algebra (the paper omits those clauses in
// Voodoo; this frontend applies them to the tiny result table afterwards).
package rel

import (
	"fmt"
)

// Expr is a scalar expression over the columns of a relation.
type Expr interface{ isExpr() }

// Col references an input column.
type Col struct{ Name string }

// IntLit is an integer (or dictionary code / date) literal.
type IntLit struct{ V int64 }

// FloatLit is a float literal.
type FloatLit struct{ V float64 }

// BinOp enumerates scalar operators.
type BinOp uint8

const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Mod
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
	And
	Or
)

// Bin applies a binary operator.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// Not negates a boolean expression.
type Not struct{ E Expr }

// InList tests membership in a small literal set.
type InList struct {
	E  Expr
	Vs []int64
}

// Between tests lo <= e <= hi.
type Between struct {
	E      Expr
	Lo, Hi Expr
}

func (Col) isExpr()      {}
func (IntLit) isExpr()   {}
func (FloatLit) isExpr() {}
func (Bin) isExpr()      {}
func (Not) isExpr()      {}
func (InList) isExpr()   {}
func (Between) isExpr()  {}

// C, I, F and B are concise constructors for hand-written plans.
func C(name string) Expr { return Col{Name: name} }
func I(v int64) Expr     { return IntLit{V: v} }
func F(v float64) Expr   { return FloatLit{V: v} }
func B(op BinOp, l, r Expr) Expr {
	return Bin{Op: op, L: l, R: r}
}

// Node is a relational plan operator.
type Node interface{ isNode() }

// Scan reads the listed columns of a base table.
type Scan struct {
	Table string
	Cols  []string
}

// Filter keeps rows satisfying Pred.
type Filter struct {
	In   Node
	Pred Expr
}

// Map appends computed columns (existing columns stay available).
type Map struct {
	In   Node
	Outs []NamedExpr
}

// NamedExpr is one computed column.
type NamedExpr struct {
	Name string
	E    Expr
}

// IndexJoin is the paper's metadata join: the build side scatters into an
// open table addressed by key-min (identity hashing), the probe side
// gathers. Build keys must be unique (primary keys). When the build side is
// filtered, unmatched probe rows are filtered out (inner-join semantics).
type IndexJoin struct {
	Probe    Node
	ProbeKey string
	Build    Node
	BuildKey string
	// Cols are the build-side columns carried into the output (the key
	// itself need not be listed).
	Cols []string
	// Semi keeps only the probe columns (existence test).
	Semi bool
}

// GroupAgg groups by Keys (base columns with known domains) and computes
// Aggs. Empty Keys means a single global group. Domains optionally
// overrides the key domains (required when a key is a computed column with
// no base-table metadata).
type GroupAgg struct {
	In      Node
	Keys    []string
	Aggs    []AggSpec
	Domains []Domain
}

// Domain is an inclusive integer value range.
type Domain struct{ Min, Max int64 }

// AggFunc enumerates aggregate functions.
type AggFunc uint8

const (
	Sum AggFunc = iota
	Count
	Avg
	Min
	Max
)

// AggSpec is one aggregate column. A nil E with Count counts rows.
type AggSpec struct {
	Func AggFunc
	E    Expr
	As   string
}

func (Scan) isNode()      {}
func (Filter) isNode()    {}
func (Map) isNode()       {}
func (IndexJoin) isNode() {}
func (GroupAgg) isNode()  {}

// Query is a complete statement: a plan plus the post-algebra steps the
// paper keeps outside Voodoo.
type Query struct {
	Root Node
	// Name labels the query in execution traces.
	Name string
	// Having filters result rows (aggregate predicates).
	Having func(Row) bool
	// OrderBy sorts the result rows (less function); Limit truncates.
	OrderBy func(a, b Row) bool
	Limit   int
}

// Row is one result row, keyed by output column name.
type Row map[string]float64

// Result is a query result table.
type Result struct {
	Cols []string
	Rows []Row

	decoders map[string]decoder
}

func (r *Result) String() string {
	s := ""
	for _, c := range r.Cols {
		s += fmt.Sprintf("%-18s", c)
	}
	s += "\n"
	for _, row := range r.Rows {
		for _, c := range r.Cols {
			s += fmt.Sprintf("%-18.4f", row[c])
		}
		s += "\n"
	}
	return s
}
