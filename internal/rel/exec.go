package rel

import (
	"context"
	"fmt"
	"log/slog"
	"sort"

	"voodoo/internal/compile"
	"voodoo/internal/core"
	"voodoo/internal/exec"
	"voodoo/internal/interp"
	"voodoo/internal/storage"
	"voodoo/internal/telemetry"
	"voodoo/internal/trace"
	"voodoo/internal/vector"
)

// Backend selects how lowered plans execute.
type Backend uint8

const (
	// Compiled uses the Voodoo→kernel compiler (the paper's OpenCL
	// backend analog).
	Compiled Backend = iota
	// Interpreted uses the reference interpreter (§3.2).
	Interpreted
	// BulkCompiled disables fusion: every operator materializes. This is
	// the execution model of the Ocelot baseline.
	BulkCompiled
)

// Runner executes relational queries; the Voodoo engine and the baseline
// engines (HyPer-style, Ocelot-style) all satisfy it, so the TPC-H driver
// treats them interchangeably.
type Runner interface {
	Run(q Query) (*Result, *exec.Stats, error)
	Catalog() *storage.Catalog
}

// Engine executes relational queries against a catalog through a Voodoo
// backend.
type Engine struct {
	Cat     *storage.Catalog
	Backend Backend
	// Opt tunes the compiling backend (predication etc.).
	Opt compile.Options
	// Grain is the number of parallel runs selections expose (0 = 1024).
	Grain int
	// CollectStats enables event counting for the device cost models.
	CollectStats bool
	// MorselSize overrides the scheduling granularity of parallel
	// fragments in work items (0 = exec.DefaultMorsel); compiling
	// backends only.
	MorselSize int
	// NoSpecialize disables fragment specialization (batch primitives and
	// fused fast paths), forcing every fragment through the per-element
	// interpreter; compiling backends only.
	NoSpecialize bool
	// Limits is the per-query resource governor (memory budget, extent
	// cap, deadline); the zero value imposes no limits. The memory and
	// extent limits apply to the compiling backends; the deadline applies
	// to every backend.
	Limits exec.Limits
	// TraceSink, when set, receives the execution trace of every query
	// this engine runs (one call per lowered program, so multi-phase
	// queries deliver several traces). Engines are value-copied by
	// RunTraced to give each concurrent query its own sink, so shared
	// engines stay race-free.
	TraceSink func(*trace.Trace)
	// PlanSink, when set, receives every compiled plan just before it
	// executes (EXPLAIN tooling; multi-phase queries deliver one plan per
	// phase). Interpreted queries compile nothing and deliver none.
	PlanSink func(*compile.Plan)
	// BaseContext, when set, is the context Run (the context-less Runner
	// entry point) executes under. Callers that drive ctx-less call paths
	// — the TPC-H QueryFuncs, the benchmark drivers — set it on a
	// per-request engine copy so cancellation and deadlines still thread
	// through. RunContext ignores it: an explicit context wins.
	BaseContext context.Context
	// Pool, when set, recycles kernel buffers and interpreter
	// intermediates across queries: each run draws its working memory
	// from an arena of the pool and releases it when the result has been
	// assembled into rows. Result rows never alias pooled storage, so
	// callers see no difference beyond the allocation rate.
	Pool *vector.Pool
}

// Catalog implements Runner.
func (e *Engine) Catalog() *storage.Catalog { return e.Cat }

// Run lowers, executes and assembles one query. Stats is nil unless
// CollectStats is set and the backend is a compiling one.
func (e *Engine) Run(q Query) (res *Result, stats *exec.Stats, err error) {
	ctx := context.Background()
	if e.BaseContext != nil {
		ctx = e.BaseContext
	}
	return e.RunContext(ctx, q)
}

// RunContext is Run with cooperative cancellation and the engine's
// resource governor: the context (and the Limits deadline, when set)
// aborts execution at statement/fragment boundaries and inside fragment
// loops, buffer allocations are charged against Limits.MaxBytes, and
// panics below the engine surface as *exec.PanicError.
func (e *Engine) RunContext(ctx context.Context, q Query) (*Result, *exec.Stats, error) {
	pr, err := e.Prepare(q)
	if err != nil {
		return nil, nil, err
	}
	return e.RunPrepared(ctx, pr)
}

// Prepared is a query lowered and (for the compiling backends) compiled,
// ready to run any number of times. A Prepared is immutable after Prepare
// returns: every run-varying input — limits, the buffer pool, stats
// collection — travels per run through RunPrepared, so one Prepared is
// safe to share across concurrent queries. This is what the serve layer's
// plan cache stores.
type Prepared struct {
	q    Query
	prog *core.Program
	outs []aggOut
	plan *compile.Plan // nil for the interpreted backend
}

// Query returns the relational query this plan was prepared from.
func (pr *Prepared) Query() Query { return pr.q }

// Plan returns the compiled plan, nil when the backend interprets.
func (pr *Prepared) Plan() *compile.Plan { return pr.plan }

// Prepare lowers q and, unless the engine interprets, compiles it. The
// result depends only on the query, the catalog, and the engine's backend
// options — never on per-run state — so it may be cached and shared.
func (e *Engine) Prepare(q Query) (pr *Prepared, err error) {
	defer func() {
		if r := recover(); r != nil {
			if le, ok := r.(lowerErr); ok {
				pr, err = nil, le.err
				return
			}
			panic(r)
		}
	}()

	grain := e.Grain
	if grain <= 0 {
		grain = defaultGrain
	}
	l := &lowerer{b: core.NewBuilder(), cat: e.Cat, grain: grain}
	l.lower(q.Root)
	prog := l.b.Program()
	if len(l.outs) == 0 {
		return nil, fmt.Errorf("rel: query has no aggregate outputs (the root must be a GroupAgg)")
	}
	pr = &Prepared{q: q, prog: prog, outs: l.outs}
	if e.Backend != Interpreted {
		plan, cerr := e.Plan(prog)
		if cerr != nil {
			return nil, cerr
		}
		pr.plan = plan
	}
	return pr, nil
}

// RunPrepared executes a prepared query under the engine's per-run
// configuration (limits, pool, stats, sinks). The prepared plan itself is
// never mutated, so concurrent RunPrepared calls on one Prepared are safe.
func (e *Engine) RunPrepared(ctx context.Context, pr *Prepared) (res *Result, stats *exec.Stats, err error) {
	if d := e.Limits.Deadline; !d.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, d)
		defer cancel()
	}
	// The Enabled guard keeps the disabled-logging path allocation-free —
	// RunPrepared sits on the daemon's steady-state hot path.
	if lg := telemetry.LoggerFrom(ctx); lg.Enabled(ctx, slog.LevelDebug) {
		lg.LogAttrs(ctx, slog.LevelDebug, "rel: run prepared",
			slog.String("query", pr.q.Name),
			slog.Bool("compiled", pr.plan != nil))
	}

	// release recycles the run's pooled intermediates. It runs after
	// assemble, which copies every output value into plain Row maps, so
	// results never alias pooled storage.
	release := func() {}
	values := map[core.Ref]*vector.Vector{}
	if pr.plan == nil {
		var ires *interp.Result
		var ierr error
		if e.TraceSink != nil {
			var tr *trace.Trace
			ires, tr, ierr = interp.RunTracedPooledContext(ctx, pr.prog, e.Cat, e.Pool)
			if tr != nil {
				tr.Query = pr.q.Name
				e.TraceSink(tr)
			}
		} else {
			ires, ierr = interp.RunPooledContext(ctx, pr.prog, e.Cat, e.Pool)
		}
		if ierr != nil {
			// The compiling backends count governor-deadline aborts inside
			// the plan runner; the interpreter has no governor of its own,
			// so the engine accounts for it here.
			exec.NoteDeadline(e.Limits, ierr)
			if lg := telemetry.LoggerFrom(ctx); lg.Enabled(ctx, slog.LevelWarn) {
				lg.LogAttrs(ctx, slog.LevelWarn, "rel: interpreted run failed",
					slog.String("query", pr.q.Name), slog.String("error", ierr.Error()))
			}
			return nil, nil, ierr
		}
		release = ires.Release
		for _, o := range pr.outs {
			values[o.ref] = ires.Value(o.ref)
		}
	} else {
		if e.PlanSink != nil {
			e.PlanSink(pr.plan)
		}
		ro := compile.RunOpts{Limits: e.Limits, Pool: e.Pool, CollectStats: e.CollectStats, MorselSize: e.MorselSize}
		if e.NoSpecialize {
			ro.Specialize = exec.SpecializeOff
		}
		var pres *compile.Result
		var rerr error
		if e.TraceSink != nil {
			var tr *trace.Trace
			pres, tr, rerr = pr.plan.RunTracedWith(ctx, ro)
			if tr != nil {
				tr.Query = pr.q.Name
				e.TraceSink(tr)
			}
		} else {
			pres, rerr = pr.plan.RunWith(ctx, ro)
		}
		if rerr != nil {
			if lg := telemetry.LoggerFrom(ctx); lg.Enabled(ctx, slog.LevelWarn) {
				lg.LogAttrs(ctx, slog.LevelWarn, "rel: compiled run failed",
					slog.String("query", pr.q.Name), slog.String("error", rerr.Error()))
			}
			return nil, nil, rerr
		}
		release = pres.Release
		for _, o := range pr.outs {
			v, ok := pres.Values[o.ref]
			if !ok {
				pres.Release()
				return nil, nil, fmt.Errorf("rel: output v%d not produced", o.ref)
			}
			values[o.ref] = v
		}
		if e.CollectStats {
			stats = &pres.Stats
		}
	}

	q := pr.q
	res = assemble(pr.outs, values)
	release()
	if q.Having != nil {
		kept := res.Rows[:0]
		for _, r := range res.Rows {
			if q.Having(r) {
				kept = append(kept, r)
			}
		}
		res.Rows = kept
	}
	if q.OrderBy != nil {
		sort.SliceStable(res.Rows, func(i, j int) bool { return q.OrderBy(res.Rows[i], res.Rows[j]) })
	}
	if q.Limit > 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, stats, nil
}

// assemble turns the padded fold outputs into a result table: valid slots
// of the outputs are aligned (all folds share the grouping), keys first.
func assemble(outs []aggOut, values map[core.Ref]*vector.Vector) *Result {
	res := &Result{decoders: map[string]decoder{}}
	var keyOuts, aggOuts []aggOut
	for _, o := range outs {
		if o.isKey {
			keyOuts = append(keyOuts, o)
		} else {
			aggOuts = append(aggOuts, o)
		}
	}
	for _, o := range keyOuts {
		res.Cols = append(res.Cols, o.name)
		if o.table != nil {
			if d, ok := o.table.Def(o.col); ok && d.Dict != nil {
				tbl, col := o.table, o.col
				res.decoders[o.name] = func(v float64) string { return tbl.Decode(col, int64(v)) }
			}
		}
	}
	for _, o := range aggOuts {
		if !o.hidden {
			res.Cols = append(res.Cols, o.name)
		}
	}

	// Row positions come from the first output's validity. A global
	// aggregate always produces exactly one row — over an empty input its
	// sums read as zero (slot 0 is ε but still the row's position).
	first := values[outs[0].ref].SingleCol()
	if len(keyOuts) > 0 {
		first = values[keyOuts[0].ref].SingleCol()
	}
	for i := 0; i < first.Len(); i++ {
		if !first.Valid(i) && !(len(keyOuts) == 0 && i == 0) {
			continue
		}
		row := Row{}
		for _, o := range keyOuts {
			// The key fold aggregates the raw key values, so no shift
			// correction applies.
			c := values[o.ref].SingleCol()
			row[o.name] = c.Float(i)
		}
		for _, o := range aggOuts {
			c := values[o.ref].SingleCol()
			if c.Valid(i) {
				row[o.name] = c.Float(i)
			} else {
				row[o.name] = 0
			}
		}
		for _, o := range aggOuts {
			if o.divideBy != "" && row[o.divideBy] != 0 {
				row[o.name] /= row[o.divideBy]
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

type decoder func(float64) string

// Decode maps a numeric key value of column col back to its string, when
// the column is dictionary-encoded.
func (r *Result) Decode(col string, v float64) string {
	if d, ok := r.decoders[col]; ok {
		return d(v)
	}
	return fmt.Sprintf("%g", v)
}

// Plan compiles a lowered program with the engine's backend options — the
// same configuration RunContext executes, exposed so tools can EXPLAIN the
// exact plan a query would run.
func (e *Engine) Plan(prog *core.Program) (*compile.Plan, error) {
	opt := e.Opt
	opt.ScatterParallel = true // join builds scatter unique keys
	if e.Backend == BulkCompiled {
		opt.ForceBulk = true
	}
	plan, err := compile.Compile(prog, e.Cat, opt)
	if err != nil {
		return nil, err
	}
	plan.CollectStats = e.CollectStats
	plan.Limits = e.Limits
	return plan, nil
}

// RunTraced runs q and returns its execution traces — one per lowered
// program, so multi-phase queries deliver several. The engine is copied
// with a private sink, so concurrent RunTraced calls on one shared engine
// never share mutable trace state.
func (e *Engine) RunTraced(ctx context.Context, q Query) (*Result, []*trace.Trace, error) {
	eng := *e
	var traces []*trace.Trace
	eng.TraceSink = func(t *trace.Trace) { traces = append(traces, t) }
	res, _, err := eng.RunContext(ctx, q)
	return res, traces, err
}

// Lower exposes the Voodoo program a query lowers to, for inspection tools
// (kernel listings, OpenCL source) — execution goes through Engine.Run.
func Lower(q Query, cat *storage.Catalog) (prog *core.Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			if le, ok := r.(lowerErr); ok {
				prog, err = nil, le.err
				return
			}
			panic(r)
		}
	}()
	l := &lowerer{b: core.NewBuilder(), cat: cat, grain: defaultGrain}
	l.lower(q.Root)
	return l.b.Program(), nil
}
