package rel

import (
	"math"
	"math/rand"
	"testing"

	"voodoo/internal/compile"
	"voodoo/internal/storage"
)

// testCatalog builds a small orders/customers catalog with known contents.
func testCatalog() *storage.Catalog {
	cust := storage.NewTable("cust")
	cust.AddInt("ckey", []int64{100, 101, 102, 103})
	cust.AddInt("nation", []int64{0, 1, 0, 1})
	cust.AddString("name", []string{"ann", "bob", "cat", "dan"})

	ord := storage.NewTable("ord")
	ord.AddInt("okey", []int64{1, 2, 3, 4, 5, 6})
	ord.AddInt("ckey", []int64{100, 101, 100, 103, 102, 102})
	ord.AddFloat("total", []float64{10, 20, 30, 40, 50, 60})
	ord.AddInt("prio", []int64{1, 2, 1, 3, 2, 1})

	return storage.NewCatalog().Add(cust).Add(ord)
}

func engines(cat *storage.Catalog) map[string]*Engine {
	return map[string]*Engine{
		"compiled":   {Cat: cat, Backend: Compiled},
		"predicated": {Cat: cat, Backend: Compiled, Opt: compile.Options{Predication: true}},
		"interp":     {Cat: cat, Backend: Interpreted},
		"bulk":       {Cat: cat, Backend: BulkCompiled},
	}
}

// runAll executes q on every backend and checks they agree; returns the
// compiled result.
func runAll(t *testing.T, cat *storage.Catalog, q Query) *Result {
	t.Helper()
	var ref *Result
	for name, e := range engines(cat) {
		res, _, err := e.Run(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !sameResult(ref, res) {
			t.Fatalf("%s disagrees:\nref:\n%s\ngot:\n%s", name, ref, res)
		}
	}
	return ref
}

func sameResult(a, b *Result) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		for _, c := range a.Cols {
			if math.Abs(a.Rows[i][c]-b.Rows[i][c]) > 1e-9 {
				return false
			}
		}
	}
	return true
}

func wantRow(t *testing.T, r Row, want map[string]float64) {
	t.Helper()
	for k, v := range want {
		if math.Abs(r[k]-v) > 1e-9 {
			t.Errorf("row[%q] = %g, want %g (row %v)", k, r[k], v, r)
		}
	}
}

func TestGlobalAggregate(t *testing.T) {
	res := runAll(t, testCatalog(), Query{Root: GroupAgg{
		In:   Scan{Table: "ord", Cols: []string{"total"}},
		Aggs: []AggSpec{{Func: Sum, E: C("total"), As: "s"}, {Func: Count, As: "n"}},
	}})
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	wantRow(t, res.Rows[0], map[string]float64{"s": 210, "n": 6})
}

func TestFilteredAggregate(t *testing.T) {
	res := runAll(t, testCatalog(), Query{Root: GroupAgg{
		In: Filter{
			In:   Scan{Table: "ord", Cols: []string{"total", "prio"}},
			Pred: B(Eq, C("prio"), I(1)),
		},
		Aggs: []AggSpec{{Func: Sum, E: C("total"), As: "s"}, {Func: Count, As: "n"}},
	}})
	wantRow(t, res.Rows[0], map[string]float64{"s": 100, "n": 3})
}

func TestMapExpression(t *testing.T) {
	res := runAll(t, testCatalog(), Query{Root: GroupAgg{
		In: Map{
			In:   Scan{Table: "ord", Cols: []string{"total"}},
			Outs: []NamedExpr{{Name: "x", E: B(Mul, C("total"), F(0.5))}},
		},
		Aggs: []AggSpec{{Func: Sum, E: C("x"), As: "s"}},
	}})
	wantRow(t, res.Rows[0], map[string]float64{"s": 105})
}

func TestGroupBy(t *testing.T) {
	res := runAll(t, testCatalog(), Query{
		Root: GroupAgg{
			In:   Scan{Table: "ord", Cols: []string{"total", "prio"}},
			Keys: []string{"prio"},
			Aggs: []AggSpec{
				{Func: Sum, E: C("total"), As: "s"},
				{Func: Count, As: "n"},
				{Func: Min, E: C("total"), As: "lo"},
				{Func: Max, E: C("total"), As: "hi"},
				{Func: Avg, E: C("total"), As: "avg"},
			},
		},
		OrderBy: func(a, b Row) bool { return a["prio"] < b["prio"] },
	})
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3\n%s", len(res.Rows), res)
	}
	wantRow(t, res.Rows[0], map[string]float64{"prio": 1, "s": 100, "n": 3, "lo": 10, "hi": 60, "avg": 100.0 / 3})
	wantRow(t, res.Rows[1], map[string]float64{"prio": 2, "s": 70, "n": 2, "lo": 20, "hi": 50, "avg": 35})
	wantRow(t, res.Rows[2], map[string]float64{"prio": 3, "s": 40, "n": 1, "lo": 40, "hi": 40, "avg": 40})
}

func TestJoinGroup(t *testing.T) {
	// Sum of order totals per customer nation.
	res := runAll(t, testCatalog(), Query{
		Root: GroupAgg{
			In: IndexJoin{
				Probe:    Scan{Table: "ord", Cols: []string{"ckey", "total"}},
				ProbeKey: "ckey",
				Build:    Scan{Table: "cust", Cols: []string{"ckey", "nation"}},
				BuildKey: "ckey",
				Cols:     []string{"nation"},
			},
			Keys: []string{"nation"},
			Aggs: []AggSpec{{Func: Sum, E: C("total"), As: "s"}},
		},
		OrderBy: func(a, b Row) bool { return a["nation"] < b["nation"] },
	})
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2\n%s", len(res.Rows), res)
	}
	// nation 0: ann(10+30) + cat(50+60) = 150; nation 1: bob(20) + dan(40) = 60.
	wantRow(t, res.Rows[0], map[string]float64{"nation": 0, "s": 150})
	wantRow(t, res.Rows[1], map[string]float64{"nation": 1, "s": 60})
}

func TestJoinFilteredBuild(t *testing.T) {
	// Only nation-0 customers: inner join drops bob and dan's orders.
	res := runAll(t, testCatalog(), Query{Root: GroupAgg{
		In: IndexJoin{
			Probe:    Scan{Table: "ord", Cols: []string{"ckey", "total"}},
			ProbeKey: "ckey",
			Build: Filter{
				In:   Scan{Table: "cust", Cols: []string{"ckey", "nation"}},
				Pred: B(Eq, C("nation"), I(0)),
			},
			BuildKey: "ckey",
			Cols:     []string{"nation"},
		},
		Aggs: []AggSpec{{Func: Sum, E: C("total"), As: "s"}, {Func: Count, As: "n"}},
	}})
	wantRow(t, res.Rows[0], map[string]float64{"s": 150, "n": 4})
}

func TestSemiJoin(t *testing.T) {
	// Orders of customers that exist in nation 1 (semi join).
	res := runAll(t, testCatalog(), Query{Root: GroupAgg{
		In: IndexJoin{
			Probe:    Scan{Table: "ord", Cols: []string{"ckey", "total"}},
			ProbeKey: "ckey",
			Build: Filter{
				In:   Scan{Table: "cust", Cols: []string{"ckey", "nation"}},
				Pred: B(Eq, C("nation"), I(1)),
			},
			BuildKey: "ckey",
			Semi:     true,
		},
		Aggs: []AggSpec{{Func: Sum, E: C("total"), As: "s"}},
	}})
	wantRow(t, res.Rows[0], map[string]float64{"s": 60})
}

func TestHavingAndLimit(t *testing.T) {
	res := runAll(t, testCatalog(), Query{
		Root: GroupAgg{
			In:   Scan{Table: "ord", Cols: []string{"total", "prio"}},
			Keys: []string{"prio"},
			Aggs: []AggSpec{{Func: Sum, E: C("total"), As: "s"}},
		},
		Having:  func(r Row) bool { return r["s"] > 50 },
		OrderBy: func(a, b Row) bool { return a["s"] > b["s"] },
		Limit:   1,
	})
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	wantRow(t, res.Rows[0], map[string]float64{"prio": 1, "s": 100})
}

func TestBetweenInListNot(t *testing.T) {
	res := runAll(t, testCatalog(), Query{Root: GroupAgg{
		In: Filter{
			In: Scan{Table: "ord", Cols: []string{"total", "prio", "okey"}},
			Pred: B(And,
				Between{E: C("total"), Lo: F(15), Hi: F(55)},
				B(And,
					InList{E: C("prio"), Vs: []int64{1, 2}},
					Not{E: B(Eq, C("okey"), I(3))})),
		},
		Aggs: []AggSpec{{Func: Count, As: "n"}},
	}})
	// total in [15,55]: orders 2,3,4,5; prio in {1,2}: drops order 4;
	// not okey=3: drops order 3 → orders 2 and 5.
	wantRow(t, res.Rows[0], map[string]float64{"n": 2})
}

func TestDictionaryKeyDecode(t *testing.T) {
	cat := testCatalog()
	e := &Engine{Cat: cat, Backend: Compiled}
	res, _, err := e.Run(Query{
		Root: GroupAgg{
			In: IndexJoin{
				Probe:    Scan{Table: "ord", Cols: []string{"ckey", "total"}},
				ProbeKey: "ckey",
				Build:    Scan{Table: "cust", Cols: []string{"ckey", "name"}},
				BuildKey: "ckey",
				Cols:     []string{"name"},
			},
			Keys: []string{"name"},
			Aggs: []AggSpec{{Func: Sum, E: C("total"), As: "s"}},
		},
		OrderBy: func(a, b Row) bool { return a["name"] < b["name"] },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Decode("name", res.Rows[0]["name"]); got != "ann" {
		t.Fatalf("decoded first group = %q, want ann", got)
	}
}

func TestErrorOnUnknownTable(t *testing.T) {
	e := &Engine{Cat: testCatalog(), Backend: Compiled}
	_, _, err := e.Run(Query{Root: GroupAgg{
		In:   Scan{Table: "nope", Cols: []string{"x"}},
		Aggs: []AggSpec{{Func: Count, As: "n"}},
	}})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestErrorOnUnknownColumn(t *testing.T) {
	e := &Engine{Cat: testCatalog(), Backend: Compiled}
	_, _, err := e.Run(Query{Root: GroupAgg{
		In:   Scan{Table: "ord", Cols: []string{"nope"}},
		Aggs: []AggSpec{{Func: Count, As: "n"}},
	}})
	if err == nil {
		t.Fatal("expected error")
	}
}

// TestRandomGroupQueries cross-checks grouped aggregation over random data
// on all backends against a direct Go computation.
func TestRandomGroupQueries(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		n := 50 + r.Intn(200)
		groups := make([]int64, n)
		vals := make([]float64, n)
		want := map[int64]float64{}
		k := int64(2 + r.Intn(8))
		for i := range groups {
			groups[i] = r.Int63n(k)
			vals[i] = float64(r.Intn(1000)) / 10
			want[groups[i]] += vals[i]
		}
		tb := storage.NewTable("t")
		tb.AddInt("g", groups)
		tb.AddFloat("v", vals)
		cat := storage.NewCatalog().Add(tb)
		res := runAll(t, cat, Query{
			Root: GroupAgg{
				In:   Scan{Table: "t", Cols: []string{"g", "v"}},
				Keys: []string{"g"},
				Aggs: []AggSpec{{Func: Sum, E: C("v"), As: "s"}},
			},
			OrderBy: func(a, b Row) bool { return a["g"] < b["g"] },
		})
		if len(res.Rows) != len(want) {
			t.Fatalf("trial %d: %d groups, want %d", trial, len(res.Rows), len(want))
		}
		for _, row := range res.Rows {
			if math.Abs(row["s"]-want[int64(row["g"])]) > 1e-6 {
				t.Fatalf("trial %d: group %g sum %g, want %g", trial, row["g"], row["s"], want[int64(row["g"])])
			}
		}
	}
}

// TestRandomJoinQueriesAgainstHyper fuzzes join+group queries over random
// catalogs and cross-checks the Voodoo engines against the independent
// HyPer-style baseline... implemented here as a direct Go evaluation to
// avoid an import cycle with the baseline package.
func TestRandomJoinQueries(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		nDim := 4 + r.Intn(12)
		nFact := 40 + r.Intn(300)
		dimKey := make([]int64, nDim)
		dimGroup := make([]int64, nDim)
		k := int64(2 + r.Intn(5))
		for i := range dimKey {
			dimKey[i] = int64(i + 10) // offset keys exercise min-shifting
			dimGroup[i] = r.Int63n(k)
		}
		factFk := make([]int64, nFact)
		factV := make([]float64, nFact)
		for i := range factFk {
			factFk[i] = dimKey[r.Intn(nDim)]
			factV[i] = float64(r.Intn(100))
		}
		dim := storage.NewTable("dim")
		dim.AddInt("dkey", dimKey)
		dim.AddInt("grp", dimGroup)
		fact := storage.NewTable("fact")
		fact.AddInt("fk", factFk)
		fact.AddFloat("v", factV)
		cat := storage.NewCatalog().Add(dim).Add(fact)

		// Optionally filter the build side.
		var build Node = Scan{Table: "dim", Cols: []string{"dkey", "grp"}}
		buildFiltered := r.Intn(2) == 0
		if buildFiltered {
			build = Filter{In: build, Pred: B(Lt, C("grp"), I(k-1))}
		}
		q := Query{
			Root: GroupAgg{
				In: IndexJoin{
					Probe:    Scan{Table: "fact", Cols: []string{"fk", "v"}},
					ProbeKey: "fk",
					Build:    build,
					BuildKey: "dkey",
					Cols:     []string{"grp"},
				},
				Keys: []string{"grp"},
				Aggs: []AggSpec{
					{Func: Sum, E: C("v"), As: "s"},
					{Func: Count, As: "n"},
				},
			},
			OrderBy: func(a, b Row) bool { return a["grp"] < b["grp"] },
		}
		res := runAll(t, cat, q)

		// Direct Go evaluation.
		grpOf := map[int64]int64{}
		alive := map[int64]bool{}
		for i := range dimKey {
			grpOf[dimKey[i]] = dimGroup[i]
			alive[dimKey[i]] = !buildFiltered || dimGroup[i] < k-1
		}
		wantS := map[int64]float64{}
		wantN := map[int64]float64{}
		for i := range factFk {
			if !alive[factFk[i]] {
				continue
			}
			g := grpOf[factFk[i]]
			wantS[g] += factV[i]
			wantN[g]++
		}
		if len(res.Rows) != len(wantS) {
			t.Fatalf("trial %d: %d groups, want %d", trial, len(res.Rows), len(wantS))
		}
		for _, row := range res.Rows {
			g := int64(row["grp"])
			if math.Abs(row["s"]-wantS[g]) > 1e-9 || row["n"] != wantN[g] {
				t.Fatalf("trial %d group %d: got (%g,%g) want (%g,%g)",
					trial, g, row["s"], row["n"], wantS[g], wantN[g])
			}
		}
	}
}

// TestLowerExposesProgram checks the inspection entry point.
func TestLowerExposesProgram(t *testing.T) {
	q := Query{Root: GroupAgg{
		In:   Scan{Table: "ord", Cols: []string{"total"}},
		Aggs: []AggSpec{{Func: Sum, E: C("total"), As: "s"}},
	}}
	prog, err := Lower(q, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) == 0 {
		t.Fatal("empty program")
	}
	if _, err := Lower(Query{Root: Scan{Table: "nope", Cols: []string{"x"}}}, testCatalog()); err == nil {
		t.Fatal("expected error from Lower")
	}
}
