package rel

import (
	"context"
	"sync"
	"testing"

	"voodoo/internal/trace"
)

// traceQuery is a small grouped aggregation touching fold, gather and
// scatter machinery.
func traceQuery() Query {
	return Query{
		Name: "trace-test",
		Root: GroupAgg{
			In:   Scan{Table: "ord", Cols: []string{"total", "prio"}},
			Keys: []string{"prio"},
			Aggs: []AggSpec{{Func: Sum, E: C("total"), As: "sum_total"}},
		},
	}
}

func TestRunTracedCompiled(t *testing.T) {
	e := &Engine{Cat: testCatalog(), Backend: Compiled}
	before := trace.Snapshot()
	res, traces, err := e.RunTraced(context.Background(), traceQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no result rows")
	}
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Backend != "compiled" || tr.Query != "trace-test" {
		t.Fatalf("trace header wrong: backend=%q query=%q", tr.Backend, tr.Query)
	}
	if tr.Fragments == 0 {
		t.Fatalf("no fragment steps in trace:\n%s", tr)
	}
	if tr.Items == 0 || tr.MaterializedBytes == 0 {
		t.Fatalf("per-item numbers missing: items=%d mat=%d", tr.Items, tr.MaterializedBytes)
	}
	if tr.AllocBytes == 0 {
		t.Fatal("AllocBytes not recorded")
	}
	if tr.WallNS <= 0 {
		t.Fatal("wall time not recorded")
	}
	var fragWall bool
	for _, s := range tr.Steps {
		if s.Kind == trace.KindFragment && s.WallNS > 0 && s.Workers > 0 {
			fragWall = true
		}
	}
	if !fragWall {
		t.Fatalf("no fragment step carries wall time and workers:\n%s", tr)
	}

	// The trace must have folded into the cumulative counters.
	after := trace.Snapshot()
	if after["traced_queries"]-before["traced_queries"] < 1 {
		t.Error("traced_queries counter did not advance")
	}
	if after["queries"]-before["queries"] < 1 {
		t.Error("queries counter did not advance")
	}
	if after["fragments"]-before["fragments"] < int64(tr.Fragments) {
		t.Error("fragments counter did not advance by the traced fragments")
	}
	if after["items"]-before["items"] < tr.Items {
		t.Error("items counter did not absorb the trace totals")
	}
}

func TestRunTracedInterp(t *testing.T) {
	e := &Engine{Cat: testCatalog(), Backend: Interpreted}
	_, traces, err := e.RunTraced(context.Background(), traceQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Backend != "interpreted" {
		t.Fatalf("backend = %q", tr.Backend)
	}
	var stmts, folds int
	for _, s := range tr.Steps {
		if s.Kind == trace.KindStmt {
			stmts++
		}
		if s.FoldRuns > 0 {
			folds++
		}
	}
	if stmts == 0 {
		t.Fatal("interpreter trace has no stmt steps")
	}
	if folds == 0 {
		t.Fatal("grouped aggregation trace records no fold runs")
	}
	if tr.MaterializedBytes == 0 {
		t.Fatal("interpreter trace has no materialized bytes (it materializes everything)")
	}
}

// The backends must agree between traced and untraced execution.
func TestTracedMatchesUntraced(t *testing.T) {
	for name, e := range engines(testCatalog()) {
		plain, _, err := e.Run(traceQuery())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		traced, _, err := e.RunTraced(context.Background(), traceQuery())
		if err != nil {
			t.Fatalf("%s traced: %v", name, err)
		}
		if !sameResult(plain, traced) {
			t.Fatalf("%s: traced run disagrees with untraced:\n%s\nvs\n%s", name, plain, traced)
		}
	}
}

// Untraced runs without CollectStats must not accumulate per-fragment
// stats — the per-item counting stays off (the near-zero-overhead
// contract).
func TestUntracedCollectsNoStats(t *testing.T) {
	e := &Engine{Cat: testCatalog(), Backend: Compiled}
	_, stats, err := e.Run(traceQuery())
	if err != nil {
		t.Fatal(err)
	}
	if stats != nil {
		t.Fatalf("stats collected without CollectStats: %+v", stats)
	}
}

// Two goroutines tracing concurrently against one shared Engine must not
// race: traces are per-query objects and the process counters are atomic.
// Run under -race (the CI test job does).
func TestConcurrentTracedQueries(t *testing.T) {
	e := &Engine{Cat: testCatalog(), Backend: Compiled}
	const goroutines = 2
	const iters = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	results := make([]*Result, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, traces, err := e.RunTraced(context.Background(), traceQuery())
				if err != nil {
					errs <- err
					return
				}
				if len(traces) != 1 || traces[0].Fragments == 0 {
					errs <- errNoTrace
					return
				}
				results[g] = res
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if !sameResult(results[0], results[1]) {
		t.Fatalf("concurrent traced queries disagree:\n%s\nvs\n%s", results[0], results[1])
	}
}

var errNoTrace = errTrace("traced run produced no usable trace")

type errTrace string

func (e errTrace) Error() string { return string(e) }
