package rel

import (
	"fmt"

	"voodoo/internal/core"
	"voodoo/internal/storage"
)

// origin tracks which base-table column an attribute came from, so joins
// and group-bys can size their open tables from min/max metadata — the
// paper's "identity hashing on open hashtables ... derive their size from
// the input domain (using only min and max)".
type origin struct {
	table *storage.Table
	col   string
}

// lowered is the state of a lowered plan node.
type lowered struct {
	ref     core.Ref
	cols    []string
	origins map[string]origin
	n       int // algebra length (padded; constant through the pipeline)
	// live names a hidden match column whose ε slots mark rows dropped by
	// a filtered or semi join. Instead of running a physical match-filter
	// pass after such joins, dropped rows ride along as ε and aggregate
	// inputs are anchored on this column (ε contributes nothing) — one
	// full select+gather pass saved per join.
	live string
}

// aggOut describes one output column of the final aggregation for the
// result assembler.
type aggOut struct {
	name     string
	ref      core.Ref
	fn       AggFunc
	divideBy string // Avg: name of the hidden count column
	hidden   bool   // not shown in the result (Avg count companions)
	isKey    bool
	table    *storage.Table // key decoding (dictionary) — nil for plain values
	col      string
}

// lowerer lowers one query; it is single-use.
type lowerer struct {
	b     *core.Builder
	cat   *storage.Catalog
	grain int
	outs  []aggOut
	nLive int // match-column counter
}

// Grain is the default number of parallel work items selections expose.
const defaultGrain = 1024

func (l *lowerer) errf(format string, args ...any) {
	panic(lowerErr{fmt.Errorf("rel: "+format, args...)})
}

type lowerErr struct{ err error }

// lower produces the Voodoo statements for node n.
func (l *lowerer) lower(n Node) *lowered {
	switch x := n.(type) {
	case Scan:
		return l.lowerScan(x)
	case Filter:
		return l.lowerFilter(x)
	case Map:
		return l.lowerMap(x)
	case IndexJoin:
		return l.lowerJoin(x)
	case GroupAgg:
		return l.lowerGroupAgg(x)
	}
	l.errf("unknown node %T", n)
	return nil
}

func (l *lowerer) lowerScan(s Scan) *lowered {
	t := l.cat.Table(s.Table)
	if t == nil {
		if qe := l.cat.QuarantineErr(s.Table); qe != nil {
			panic(lowerErr{fmt.Errorf("rel: table %q is quarantined: %w", s.Table, qe)})
		}
		l.errf("no table %q", s.Table)
	}
	v := l.b.Load(s.Table)
	if len(s.Cols) == 0 {
		l.errf("scan of %s lists no columns", s.Table)
	}
	// Prune to the requested columns so joins and filters never move
	// unused attributes.
	cur := l.b.Project(s.Cols[0], v, s.Cols[0])
	for _, c := range s.Cols[1:] {
		if t.Col(c) == nil {
			l.errf("table %s has no column %q", s.Table, c)
		}
		cur = l.b.Upsert(cur, c, l.b.Project("val", v, c), "")
	}
	lo := &lowered{ref: cur, cols: s.Cols, origins: map[string]origin{}, n: t.N}
	for _, c := range s.Cols {
		lo.origins[c] = origin{table: t, col: c}
	}
	return lo
}

// expr lowers a scalar expression against the current relation, returning a
// single-attribute vector aligned with it.
func (l *lowerer) expr(cur *lowered, e Expr) core.Ref {
	b := l.b
	switch x := e.(type) {
	case Col:
		if !has(cur.cols, x.Name) {
			l.errf("no column %q (have %v)", x.Name, cur.cols)
		}
		return b.Project("val", cur.ref, x.Name)
	case IntLit:
		return b.Constant(x.V)
	case FloatLit:
		return b.ConstantF(x.V)
	case Not:
		return b.Equals(l.expr(cur, x.E), b.Constant(0))
	case InList:
		v := l.expr(cur, x.E)
		var acc core.Ref = -1
		for _, lit := range x.Vs {
			eq := b.Equals(v, b.Constant(lit))
			if acc < 0 {
				acc = eq
			} else {
				acc = b.Or(acc, eq)
			}
		}
		if acc < 0 {
			return b.Constant(0)
		}
		return acc
	case Between:
		v := l.expr(cur, x.E)
		lo := l.expr(cur, x.Lo)
		hi := l.expr(cur, x.Hi)
		ge := b.GreaterEqual(v, "", lo, "")
		le := b.GreaterEqual(hi, "", v, "")
		return b.And(ge, le)
	case Bin:
		lv := l.expr(cur, x.L)
		rv := l.expr(cur, x.R)
		switch x.Op {
		case Add:
			return b.Add(lv, rv)
		case Sub:
			return b.Subtract(lv, rv)
		case Mul:
			return b.Multiply(lv, rv)
		case Div:
			return b.Divide(lv, rv)
		case Mod:
			return b.Modulo(lv, rv)
		case Eq:
			return b.Equals(lv, rv)
		case Ne:
			return b.Equals(b.Equals(lv, rv), b.Constant(0))
		case Gt:
			return b.Greater(lv, rv)
		case Ge:
			return b.GreaterEqual(lv, "", rv, "")
		case Lt:
			return b.Greater(rv, lv)
		case Le:
			return b.GreaterEqual(rv, "", lv, "")
		case And:
			return b.And(lv, rv)
		case Or:
			return b.Or(lv, rv)
		}
	}
	l.errf("unknown expr %T", e)
	return -1
}

func (l *lowerer) lowerFilter(f Filter) *lowered {
	cur := l.lower(f.In)
	pred := l.expr(cur, f.Pred)
	return l.filterByPred(cur, pred)
}

// filterByPred applies a 0/1 predicate vector: controlled fold-select with
// a generated control vector exposing `grain` parallel runs, then a gather
// of every visible column (the compiler fuses these, paper Figure 8).
func (l *lowerer) filterByPred(cur *lowered, pred core.Ref) *lowered {
	b := l.b
	runLen := (cur.n + l.grain - 1) / l.grain
	if runLen < 1 {
		runLen = 1
	}
	ids := b.Range(pred)
	fold := b.Project("fold", b.Divide(ids, b.Constant(int64(runLen))), "")
	withFold := b.Zip("p", pred, "", "fold", fold, "fold")
	sel := b.FoldSelect(withFold, "fold", "p")
	out := b.Gather(cur.ref, sel, "")
	return &lowered{ref: out, cols: cur.cols, origins: cur.origins, n: cur.n, live: cur.live}
}

func (l *lowerer) lowerMap(m Map) *lowered {
	cur := l.lower(m.In)
	out := &lowered{ref: cur.ref, cols: cur.cols, origins: cur.origins, n: cur.n,
		live: cur.live}
	for _, ne := range m.Outs {
		v := l.expr(out, ne.E)
		out.ref = l.b.Upsert(out.ref, ne.Name, v, "")
		if !has(out.cols, ne.Name) {
			out.cols = append(out.cols, ne.Name)
		}
	}
	return out
}

// domain returns the [min, max] metadata of a base column.
func (l *lowerer) domain(cur *lowered, col string) (int64, int64) {
	o, ok := cur.origins[col]
	if !ok {
		l.errf("column %q has no base-table origin (needed for identity hashing)", col)
	}
	st, ok := o.table.Stats(o.col)
	if !ok {
		l.errf("no stats for %s.%s", o.table.Name, o.col)
	}
	return st.MinI, st.MaxI
}

func (l *lowerer) lowerJoin(j IndexJoin) *lowered {
	b := l.b
	build := l.lower(j.Build)
	probe := l.lower(j.Probe)
	if !has(build.cols, j.BuildKey) {
		l.errf("build side lacks key %q", j.BuildKey)
	}
	minK, maxK := l.domain(build, j.BuildKey)
	size := maxK - minK + 1
	if size <= 0 || size > 1<<28 {
		l.errf("join key domain of %q is unusable (%d..%d)", j.BuildKey, minK, maxK)
	}

	// Build: scatter carried columns plus a match flag into the open
	// table at position key-min (identity hashing). Rows the build side
	// dropped (ε liveness from its own filtered joins) must not enter the
	// table: anchoring every scattered value on the liveness column turns
	// their stores into ε slots.
	anchor := func(v core.Ref) core.Ref {
		if build.live == "" {
			return v
		}
		return b.Add(v, b.Arith(core.OpMultiply, "z", build.ref, build.live, b.Constant(0), ""))
	}
	keyVec := b.Project("val", build.ref, j.BuildKey)
	pos := b.Subtract(anchor(keyVec), b.Constant(minK))
	src := b.Project("__m", anchor(b.Multiply(keyVec, b.Constant(0))), "")
	src = b.Upsert(src, "__m", b.Add(b.Project("__m", src, "__m"), b.Constant(1)), "")
	for _, c := range j.Cols {
		if !has(build.cols, c) {
			l.errf("build side lacks column %q", c)
		}
		src = b.Upsert(src, c, anchor(b.Project("val", build.ref, c)), "")
	}
	withPos := b.Upsert(src, "__pos", pos, "")
	sizeVec := b.RangeN(0, int(size), 1)
	table := b.Scatter(src, sizeVec, "", withPos, "__pos")

	// Probe: gather through key-min.
	ppos := b.Subtract(b.Project("val", probe.ref, j.ProbeKey), b.Constant(minK))
	probeWithPos := b.Upsert(probe.ref, "__jp", ppos, "")
	joined := b.Gather(table, probeWithPos, "__jp")

	out := &lowered{ref: probe.ref, cols: probe.cols, origins: probe.origins,
		n: probe.n, live: probe.live}
	if !j.Semi {
		for _, c := range j.Cols {
			out.ref = b.Upsert(out.ref, c, joined, c)
			if !has(out.cols, c) {
				out.cols = append(out.cols, c)
			}
			out.origins[c] = build.origins[c]
		}
	}
	// A filtered (or semi) build side leaves unmatched probe rows as ε in
	// the gathered match flag. Rather than a physical match-filter pass,
	// carry the flag as the liveness column: ε propagates through every
	// expression and fold, so dead rows never contribute.
	if j.Semi || filtered(j.Build) {
		l.nLive++
		mcol := fmt.Sprintf("__live%d", l.nLive)
		if out.live == "" {
			out.ref = b.Upsert(out.ref, mcol, b.Project("m", joined, "__m"), "")
		} else {
			// Combine with the previous liveness: ε if either is ε.
			combined := b.Add(
				b.Arith(core.OpMultiply, "z", joined, "__m", l.b.Constant(0), ""),
				b.Arith(core.OpMultiply, "z", out.ref, out.live, l.b.Constant(0), ""))
			one := b.Add(combined, b.Constant(1))
			out.ref = b.Upsert(out.ref, mcol, one, "")
		}
		out.cols = append(out.cols, mcol)
		out.live = mcol
	}
	return out
}

// filtered reports whether the subtree can drop rows of its base table.
func filtered(n Node) bool {
	switch x := n.(type) {
	case Scan:
		return false
	case Map:
		return filtered(x.In)
	case Filter:
		return true
	case IndexJoin:
		return x.Semi || filtered(x.Probe) || filtered(x.Build)
	case GroupAgg:
		return true
	}
	return true
}

// firstDataCol finds a visible base column of a subtree, used to anchor
// count(*) expressions so that ε-padded rows never count.
func firstDataCol(n Node) string {
	switch x := n.(type) {
	case Scan:
		if len(x.Cols) == 0 {
			return ""
		}
		return x.Cols[0]
	case Filter:
		return firstDataCol(x.In)
	case Map:
		return firstDataCol(x.In)
	case IndexJoin:
		return firstDataCol(x.Probe)
	case GroupAgg:
		return firstDataCol(x.In)
	}
	return ""
}

func (l *lowerer) lowerGroupAgg(g GroupAgg) *lowered {
	b := l.b

	// Expand Avg into a Sum plus a hidden Count companion; rewrite every
	// count as an ε-aware sum (0*col + 1) so padding and missed joins
	// never count.
	type aggIn struct {
		spec     AggSpec
		col      string
		divideBy string
		hidden   bool
	}
	anchor := firstDataCol(g.In)
	var ins []aggIn
	for _, a := range g.Aggs {
		if a.Func == Avg {
			ins = append(ins,
				aggIn{spec: AggSpec{Func: Sum, E: a.E, As: a.As}, divideBy: a.As + "__cnt"},
				aggIn{spec: AggSpec{Func: Count, E: a.E, As: a.As + "__cnt"}, hidden: true})
			continue
		}
		ins = append(ins, aggIn{spec: a})
	}
	var named []NamedExpr
	for i := range ins {
		col := fmt.Sprintf("__a%d", i)
		a := ins[i].spec
		e := a.E
		if a.Func == Count {
			base := a.E
			if base == nil {
				if anchor == "" {
					// No base column anywhere under this aggregate (a
					// zero-column Scan): an error, not a crash — the sql
					// planner always seeds at least one scanned column.
					panic(lowerErr{fmt.Errorf("rel: count(*) over a scan with no columns")})
				}
				base = Col{Name: anchor}
			}
			e = Bin{Op: Add, L: Bin{Op: Mul, L: base, R: IntLit{V: 0}}, R: IntLit{V: 1}}
		}
		named = append(named, NamedExpr{Name: col, E: e})
		ins[i].col = col
	}

	// Push the aggregate input (and group id) computation below a
	// terminal filter: the compiler then fuses predicate evaluation,
	// selection and aggregation into one fragment (paper Figure 8).
	in := g.In
	if f, ok := in.(Filter); ok && len(g.Keys) == 0 {
		// Global aggregation: pushing the aggregate inputs below the
		// filter lets the compiler fuse predicate, selection and
		// aggregation into one fragment. For grouped aggregation the
		// filter output materializes anyway (the scatter seam), so the
		// inputs stay symbolic above it — materializing only the base
		// columns, not every derived expression.
		in = Filter{In: Map{In: f.In, Outs: named}, Pred: f.Pred}
		named = nil
	}
	cur := l.lower(in)
	for i := range named {
		v := l.expr(cur, named[i].E)
		cur = &lowered{ref: b.Upsert(cur.ref, named[i].Name, v, ""),
			cols: append(cur.cols, named[i].Name), origins: cur.origins,
			n: cur.n, live: cur.live}
	}
	// Anchor every aggregate input on the liveness column: rows a filtered
	// join dropped are ε there and must contribute nothing. (This also
	// covers inputs computed below a pushed-down filter.)
	if cur.live != "" {
		for _, in := range ins {
			anchored := b.Add(
				b.Project("val", cur.ref, in.col),
				b.Arith(core.OpMultiply, "z", cur.ref, cur.live, b.Constant(0), ""))
			cur = &lowered{ref: b.Upsert(cur.ref, in.col, anchored, ""),
				cols: cur.cols, origins: cur.origins, n: cur.n, live: cur.live}
		}
	}

	if len(g.Keys) == 0 {
		// Global aggregation: one controlled fold per aggregate.
		for _, in := range ins {
			ref := l.globalFold(cur, in.spec, in.col)
			l.outs = append(l.outs, aggOut{name: in.spec.As, ref: ref,
				fn: in.spec.Func, divideBy: in.divideBy, hidden: in.hidden})
		}
		return cur
	}

	// Grouped: identity-hash the keys into a dense group id.
	var gid core.Ref
	K := int64(1)
	shifts := make([]int64, len(g.Keys))
	cards := make([]int64, len(g.Keys))
	for i, k := range g.Keys {
		var minK, maxK int64
		if i < len(g.Domains) && g.Domains[i].Max >= g.Domains[i].Min && g.Domains[i] != (Domain{}) {
			minK, maxK = g.Domains[i].Min, g.Domains[i].Max
		} else {
			minK, maxK = l.domain(cur, k)
		}
		shifts[i] = minK
		cards[i] = maxK - minK + 1
		K *= cards[i]
	}
	if K <= 0 || K > 1<<26 {
		l.errf("group key domain too large (%d)", K)
	}
	for i, k := range g.Keys {
		part := b.Subtract(b.Project("val", cur.ref, k), b.Constant(shifts[i]))
		if i == 0 {
			gid = part
		} else {
			gid = b.Add(b.Multiply(gid, b.Constant(cards[i])), part)
		}
	}
	if cur.live != "" {
		// Dead rows must not land in any group.
		gid = b.Add(gid, b.Arith(core.OpMultiply, "z", cur.ref, cur.live, b.Constant(0), ""))
	}
	// Anchored key-recovery columns must exist before the scatter.
	keyCols := make([]string, len(g.Keys))
	copy(keyCols, g.Keys)
	if cur.live != "" {
		for i, k := range g.Keys {
			kc := fmt.Sprintf("__k%d", i)
			anchored := b.Add(
				b.Project("val", cur.ref, k),
				b.Arith(core.OpMultiply, "z", cur.ref, cur.live, b.Constant(0), ""))
			cur = &lowered{ref: b.Upsert(cur.ref, kc, anchored, ""),
				cols: append(cur.cols, kc), origins: cur.origins, n: cur.n, live: cur.live}
			keyCols[i] = kc
		}
	}
	withG := b.Upsert(cur.ref, "__g", gid, "")
	pivots := b.RangeN(0, int(K), 1)
	pos := b.Partition("__p", withG, "__g", pivots, "")
	withPos := b.Upsert(withG, "__p", pos, "__p")
	scattered := b.Scatter(withG, withG, "", withPos, "__p")

	// One controlled fold per aggregate over the (virtually) scattered
	// vector — the paper's Figure 10/11.
	for _, in := range ins {
		var ref core.Ref
		switch in.spec.Func {
		case Min:
			ref = b.FoldMin(scattered, "__g", in.col)
		case Max:
			ref = b.FoldMax(scattered, "__g", in.col)
		default: // Sum, Count, Avg(sum part)
			ref = b.FoldSum(scattered, "__g", in.col)
		}
		l.outs = append(l.outs, aggOut{name: in.spec.As, ref: ref,
			fn: in.spec.Func, divideBy: in.divideBy, hidden: in.hidden})
	}
	// Key recovery: fold the (liveness-anchored) key per group so dead
	// rows cannot conjure phantom groups.
	for i, k := range g.Keys {
		ref := b.FoldMin(scattered, "__g", keyCols[i])
		_ = k
		o := cur.origins[k]
		var tbl *storage.Table
		col := k
		if o.table != nil {
			tbl, col = o.table, o.col
		}
		l.outs = append(l.outs, aggOut{name: k, ref: ref, isKey: true,
			table: tbl, col: col})
	}
	return cur
}

// globalFold lowers one global aggregate.
func (l *lowerer) globalFold(cur *lowered, spec AggSpec, col string) core.Ref {
	b := l.b
	switch spec.Func {
	case Min:
		return b.FoldMin(cur.ref, "", col)
	case Max:
		return b.FoldMax(cur.ref, "", col)
	default:
		return b.FoldSum(cur.ref, "", col)
	}
}

func has(cols []string, c string) bool {
	for _, x := range cols {
		if x == c {
			return true
		}
	}
	return false
}
