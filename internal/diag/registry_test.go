package diag

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"voodoo/internal/trace"
)

// TestSlowRingRetainsWorst: the ring keeps exactly the N slowest entries,
// sorted slowest first, and evicts the fastest when full.
func TestSlowRingRetainsWorst(t *testing.T) {
	r := NewSlowRing(3)
	for _, w := range []int64{50, 10, 90, 30, 70} {
		r.Offer(SlowQuery{ID: w, WallNS: w})
	}
	got := r.Snapshot()
	if len(got) != 3 {
		t.Fatalf("retained %d entries, want 3", len(got))
	}
	for i, want := range []int64{90, 70, 50} {
		if got[i].WallNS != want {
			t.Errorf("slot %d: wall %d, want %d", i, got[i].WallNS, want)
		}
	}
	// An entry faster than everything retained is dropped.
	r.Offer(SlowQuery{WallNS: 1})
	if r.Len() != 3 || r.Snapshot()[2].WallNS != 50 {
		t.Errorf("fast entry displaced a slower one: %+v", r.Snapshot())
	}
}

// TestRegistryLifecycle: Begin/Observe/Finish move a query from the
// active view into the slow ring with its accumulated progress.
func TestRegistryLifecycle(t *testing.T) {
	r := NewQueryRegistry(4)
	q := r.Begin("SELECT 1", "", nil)
	if n := r.ActiveCount(); n != 1 {
		t.Fatalf("ActiveCount = %d, want 1", n)
	}
	q.Observe(trace.Step{Kind: trace.KindBind, Name: "lineitem.l_quantity"})
	q.Observe(trace.Step{Kind: trace.KindFragment, Name: "sel_0", Items: 100, MaterializedBytes: 800})

	act := r.Active()
	if len(act) != 1 {
		t.Fatalf("Active() returned %d queries", len(act))
	}
	a := act[0]
	if a.SQL != "SELECT 1" || a.StepsDone != 2 || a.Items != 100 ||
		a.MaterializedBytes != 800 || a.LastStep != "fragment sel_0" {
		t.Errorf("bad active snapshot: %+v", a)
	}
	if a.Cancel != fmt.Sprintf("POST /queries/cancel?id=%d", a.ID) {
		t.Errorf("bad cancel action %q", a.Cancel)
	}

	tr := &trace.Trace{Backend: "compiled"}
	r.Finish(q, []*trace.Trace{tr}, nil)
	if r.ActiveCount() != 0 {
		t.Errorf("query still active after Finish")
	}
	slow := r.Slow()
	if len(slow) != 1 || slow[0].SQL != "SELECT 1" || len(slow[0].Traces) != 1 {
		t.Errorf("slow ring did not retain the finished query: %+v", slow)
	}
}

// TestRegistryCancel: Cancel fires the registered CancelFunc exactly for
// the named id and reports unknown ids.
func TestRegistryCancel(t *testing.T) {
	r := NewQueryRegistry(4)
	ctx, cancel := context.WithCancel(context.Background())
	q := r.Begin("SELECT slow", "", cancel)
	if r.Cancel(q.ID() + 99) {
		t.Errorf("cancelling an unknown id reported success")
	}
	if !r.Cancel(q.ID()) {
		t.Fatalf("cancelling an active id reported failure")
	}
	select {
	case <-ctx.Done():
	default:
		t.Errorf("cancel action did not fire the CancelFunc")
	}
	// The query stays listed until its runner unwinds.
	if r.ActiveCount() != 1 {
		t.Errorf("cancelled query disappeared before Finish")
	}
	r.Finish(q, nil, ctx.Err())
	if got := r.Slow()[0].Error; got != "context canceled" {
		t.Errorf("slow entry error = %q", got)
	}
}

// TestRegistryConcurrent hammers the registry from many writer and
// reader goroutines — the -race gate demanded by the acceptance criteria.
func TestRegistryConcurrent(t *testing.T) {
	r := NewQueryRegistry(8)
	const workers, each = 8, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: snapshot active + slow views continuously.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					r.Active()
					r.Slow()
					r.ActiveCount()
				}
			}
		}()
	}
	// A canceller: fires cancel actions at whatever ids are live.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, q := range r.Active() {
					r.Cancel(q.ID)
				}
			}
		}
	}()

	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < each; i++ {
				_, cancel := context.WithCancel(context.Background())
				q := r.Begin(fmt.Sprintf("SELECT %d", w), "", cancel)
				q.Observe(trace.Step{Kind: trace.KindFragment, Name: "f", Items: 1, MaterializedBytes: 8})
				q.Observe(trace.Step{Kind: trace.KindOutput, Name: "v0", Items: 1})
				r.Finish(q, []*trace.Trace{{Backend: "compiled"}}, nil)
				cancel()
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	wg.Wait()

	if r.ActiveCount() != 0 {
		t.Errorf("%d queries leaked in the active set", r.ActiveCount())
	}
	if r.slow.Len() != 8 {
		t.Errorf("slow ring holds %d entries, want its capacity 8", r.slow.Len())
	}
}

// TestSlowRingConcurrent races Offer against Snapshot.
func TestSlowRingConcurrent(t *testing.T) {
	r := NewSlowRing(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Offer(SlowQuery{ID: int64(w*1000 + i), WallNS: int64(i * (w + 1))})
				if i%50 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	got := r.Snapshot()
	if len(got) != 16 {
		t.Fatalf("retained %d, want 16", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].WallNS > got[i-1].WallNS {
			t.Fatalf("ring not sorted at %d: %d > %d", i, got[i].WallNS, got[i-1].WallNS)
		}
	}
	// The slowest retained entry must be the global maximum offered:
	// 499 * 8 from the w=7 writer.
	if got[0].WallNS != 499*8 {
		t.Errorf("slowest retained = %d, want %d", got[0].WallNS, 499*8)
	}
}

// TestActiveElapsed: elapsed time in snapshots moves forward.
func TestActiveElapsed(t *testing.T) {
	r := NewQueryRegistry(2)
	q := r.Begin("SELECT now", "", nil)
	time.Sleep(10 * time.Millisecond)
	if e := r.Active()[0].ElapsedNS; e < int64(5*time.Millisecond) {
		t.Errorf("elapsed %dns implausibly small", e)
	}
	r.Finish(q, nil, nil)
}
