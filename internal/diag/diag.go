package diag

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"voodoo/internal/metrics"
)

// NewMux builds the diagnostics mux:
//
//	/metrics         Prometheus text exposition of reg
//	/debug/pprof/*   the standard pprof handlers (profile, heap, trace, …)
//	/debug/vars      expvar (the historical "voodoo" counter view)
//	/healthz         liveness probe
//	/queries         JSON: in-flight queries (live progress) + slow-query summaries
//	/queries/slow    JSON: the slow ring with full traces
//	/queries/cancel  POST ?id=N — cancel an in-flight query
//
// qr may be nil (one-shot tools expose metrics/pprof without a query
// registry); the /queries endpoints are mounted only when it is set.
func NewMux(reg *metrics.Registry, qr *QueryRegistry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if qr != nil {
		mux.HandleFunc("GET /queries", qr.handleList)
		mux.HandleFunc("GET /queries/slow", qr.handleSlow)
		mux.HandleFunc("POST /queries/cancel", qr.handleCancel)
	}
	return mux
}

// cancelPath renders the cancel action URL for query id.
func cancelPath(id int64) string {
	return fmt.Sprintf("POST /queries/cancel?id=%d", id)
}

// queriesResponse is the /queries payload: live in-flight queries plus
// summaries (no traces) of the retained slowest ones.
type queriesResponse struct {
	Active []QueryInfo `json:"active"`
	Slow   []SlowQuery `json:"slow"`
}

func (r *QueryRegistry) handleList(w http.ResponseWriter, _ *http.Request) {
	slow := r.Slow()
	for i := range slow {
		slow[i].Traces = nil // summaries here; /queries/slow has the full traces
	}
	resp := queriesResponse{Active: r.Active(), Slow: slow}
	if resp.Active == nil {
		resp.Active = []QueryInfo{}
	}
	if resp.Slow == nil {
		resp.Slow = []SlowQuery{}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (r *QueryRegistry) handleSlow(w http.ResponseWriter, _ *http.Request) {
	slow := r.Slow()
	if slow == nil {
		slow = []SlowQuery{}
	}
	writeJSON(w, http.StatusOK, slow)
}

func (r *QueryRegistry) handleCancel(w http.ResponseWriter, req *http.Request) {
	id, err := strconv.ParseInt(req.URL.Query().Get("id"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing or malformed id parameter"})
		return
	}
	if !r.Cancel(id) {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("no active query %d", id)})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"cancelled": id})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best effort to a dead client
}

// Server is a running diagnostics HTTP server.
type Server struct {
	// Addr is the bound address (resolved, so ":0" listeners report
	// their real port).
	Addr string
	srv  *http.Server
}

// Serve starts a diagnostics server on addr in the background and
// returns once the listener is bound — the -diag-addr entry point for
// one-shot tools, which want pprof and /metrics live while they run.
func Serve(addr string, reg *metrics.Registry, qr *QueryRegistry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{Addr: ln.Addr().String(), srv: &http.Server{Handler: NewMux(reg, qr)}}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return s, nil
}

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }
