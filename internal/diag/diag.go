package diag

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"voodoo/internal/metrics"
	"voodoo/internal/telemetry"
	"voodoo/internal/telemetry/slo"
)

// Health is the /healthz payload of a process with a lifecycle: its
// serving state plus the tables the storage layer quarantined at load
// time. State follows the daemon's life: "ready" (serving normally),
// "degraded" (serving, but some tables are quarantined after failing
// integrity checks), "draining" (shutting down; new queries are refused).
type Health struct {
	State         string             `json:"state"`
	ActiveQueries int                `json:"active_queries"`
	Quarantined   []QuarantinedTable `json:"quarantined,omitempty"`
	// Build identifies the binary answering the probe.
	Build metrics.BuildInfo `json:"build"`
	// SLO is the per-route error-budget state, present when the daemon
	// tracks objectives — a probe reads budget burn without scraping.
	SLO []slo.BudgetState `json:"slo,omitempty"`
}

// QuarantinedTable names one table withheld from serving and why.
type QuarantinedTable struct {
	Table string `json:"table"`
	Error string `json:"error"`
}

// NewMux builds the diagnostics mux:
//
//	/metrics         Prometheus text exposition of reg
//	/debug/pprof/*   the standard pprof handlers (profile, heap, trace, …)
//	/debug/vars      expvar (the historical "voodoo" counter view)
//	/healthz         liveness/readiness probe
//	/queries         JSON: in-flight queries (live progress) + slow-query summaries
//	/queries/slow    JSON: the slow ring with full traces
//	/queries/cancel  POST ?id=N — cancel an in-flight query
//	/debug/spans     JSON: ?query_id= one query's span tree; bare, the retained ids
//
// qr may be nil (one-shot tools expose metrics/pprof without a query
// registry); the /queries endpoints are mounted only when it is set.
// spans may be nil; /debug/spans is mounted only when it is set.
//
// health may be nil: /healthz then answers a plain 200 "ok" (pure
// liveness, the right shape for one-shot tools). When set, /healthz
// reports the process's Health as JSON — 200 while ready or degraded
// (still serving), 503 while draining so load balancers eject the
// instance before shutdown completes.
func NewMux(reg *metrics.Registry, qr *QueryRegistry, spans *telemetry.SpanStore, health func() Health) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if health == nil {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ok")
			return
		}
		h := health()
		code := http.StatusOK
		if h.State == "draining" {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, h)
	})
	if qr != nil {
		mux.HandleFunc("GET /queries", qr.handleList)
		mux.HandleFunc("GET /queries/slow", qr.handleSlow)
		mux.HandleFunc("POST /queries/cancel", qr.handleCancel)
	}
	if spans != nil {
		mux.HandleFunc("GET /debug/spans", func(w http.ResponseWriter, req *http.Request) {
			handleSpans(w, req, spans)
		})
	}
	return mux
}

// handleSpans serves one query's exportable span tree by query_id, or —
// without the parameter — the ids still retained, most recent first.
func handleSpans(w http.ResponseWriter, req *http.Request, spans *telemetry.SpanStore) {
	id := req.URL.Query().Get("query_id")
	if id == "" {
		ids := spans.IDs()
		if ids == nil {
			ids = []string{}
		}
		writeJSON(w, http.StatusOK, map[string]any{"retained": len(ids), "query_ids": ids})
		return
	}
	qs, ok := spans.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": fmt.Sprintf("no retained spans for query_id %q (the store keeps the most recent trees only)", id),
		})
		return
	}
	writeJSON(w, http.StatusOK, qs)
}

// cancelPath renders the cancel action URL for query id.
func cancelPath(id int64) string {
	return fmt.Sprintf("POST /queries/cancel?id=%d", id)
}

// queriesResponse is the /queries payload: live in-flight queries plus
// summaries (no traces) of the retained slowest ones.
type queriesResponse struct {
	Active []QueryInfo `json:"active"`
	Slow   []SlowQuery `json:"slow"`
}

func (r *QueryRegistry) handleList(w http.ResponseWriter, _ *http.Request) {
	slow := r.Slow()
	for i := range slow {
		slow[i].Traces = nil // summaries here; /queries/slow has the full traces
	}
	resp := queriesResponse{Active: r.Active(), Slow: slow}
	if resp.Active == nil {
		resp.Active = []QueryInfo{}
	}
	if resp.Slow == nil {
		resp.Slow = []SlowQuery{}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (r *QueryRegistry) handleSlow(w http.ResponseWriter, _ *http.Request) {
	slow := r.Slow()
	if slow == nil {
		slow = []SlowQuery{}
	}
	writeJSON(w, http.StatusOK, slow)
}

func (r *QueryRegistry) handleCancel(w http.ResponseWriter, req *http.Request) {
	id, err := strconv.ParseInt(req.URL.Query().Get("id"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing or malformed id parameter"})
		return
	}
	if !r.Cancel(id) {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("no active query %d", id)})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"cancelled": id})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best effort to a dead client
}

// Server is a running diagnostics HTTP server.
type Server struct {
	// Addr is the bound address (resolved, so ":0" listeners report
	// their real port).
	Addr string
	srv  *http.Server
}

// Serve starts a diagnostics server on addr in the background and
// returns once the listener is bound — the -diag-addr entry point for
// one-shot tools, which want pprof and /metrics live while they run.
// health may be nil (plain liveness /healthz).
func Serve(addr string, reg *metrics.Registry, qr *QueryRegistry, spans *telemetry.SpanStore, health func() Health) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{Addr: ln.Addr().String(), srv: &http.Server{Handler: NewMux(reg, qr, spans, health)}}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return s, nil
}

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }
