// Package diag is the always-on diagnostics surface of a Voodoo process:
// an HTTP server mounting Prometheus metrics, pprof, expvar, and a live
// view of in-flight queries with a cancel action and a retained ring of
// the slowest queries' full traces.
//
// The query registry is the piece the rest of the stack feeds: a query
// enters at Begin, streams completed trace steps into its entry (via the
// trace package's context-carried Observer), and leaves at Finish, at
// which point its full traces compete for a slot in the slow-query ring.
// Everything is safe for concurrent use; in-flight progress counters are
// atomics so the serving goroutine never contends with scrapers.
package diag

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"voodoo/internal/trace"
)

// QueryRegistry tracks in-flight queries and retains the slowest
// finished ones.
type QueryRegistry struct {
	mu     sync.Mutex
	nextID int64
	active map[int64]*ActiveQuery
	slow   *SlowRing
}

// NewQueryRegistry returns a registry whose slow-query ring retains the
// slowN worst queries by wall time (slowN <= 0 defaults to 16).
func NewQueryRegistry(slowN int) *QueryRegistry {
	if slowN <= 0 {
		slowN = 16
	}
	return &QueryRegistry{active: map[int64]*ActiveQuery{}, slow: NewSlowRing(slowN)}
}

// ActiveQuery is one in-flight query's registry entry. Its Observe
// method is a trace.Observer: attach it to the query's context with
// trace.WithObserver and the traced backends stream live progress here.
type ActiveQuery struct {
	id      int64
	queryID string // telemetry correlation id (trace-id hex), "" pre-telemetry
	sql     string
	start   time.Time
	cancel  context.CancelFunc

	steps    atomic.Int64
	items    atomic.Int64
	matBytes atomic.Int64
	lastStep atomic.Pointer[string]

	planLookupNS atomic.Int64
	compileNS    atomic.Int64
	cachedPlan   atomic.Bool

	queueNS    atomic.Int64
	deadlineNS atomic.Int64
}

// SetPlanTiming records how the query obtained its plan: the plan-cache
// lookup time, the parse+plan time (zero on a cache hit), and whether the
// plan came from the cache — so cached and uncached latencies stay
// distinguishable in /queries and the slow-query ring.
func (q *ActiveQuery) SetPlanTiming(lookupNS, compileNS int64, cached bool) {
	q.planLookupNS.Store(lookupNS)
	q.compileNS.Store(compileNS)
	q.cachedPlan.Store(cached)
}

// SetAdmission records what the query endured before execution began:
// the admission-queue wait and the remaining deadline budget at arrival
// (0 = no deadline) — the two numbers that distinguish "the query was
// slow" from "the query waited".
func (q *ActiveQuery) SetAdmission(queueWaitNS, deadlineNS int64) {
	q.queueNS.Store(queueWaitNS)
	q.deadlineNS.Store(deadlineNS)
}

// ID returns the registry-assigned query id (the cancel handle).
func (q *ActiveQuery) ID() int64 { return q.id }

// Observe records one completed trace step; it is the query's live
// progress feed and is safe against concurrent snapshot readers.
func (q *ActiveQuery) Observe(s trace.Step) {
	q.steps.Add(1)
	q.items.Add(s.Items)
	q.matBytes.Add(s.MaterializedBytes)
	name := s.Kind + " " + s.Name
	q.lastStep.Store(&name)
}

// Begin registers an in-flight query. queryID is the telemetry
// correlation id carried by the query's logs, spans and events ("" when
// the caller has none). cancel, when non-nil, is invoked by the
// registry's Cancel action (and never by the registry itself otherwise);
// the caller still owns the context.
func (r *QueryRegistry) Begin(sql, queryID string, cancel context.CancelFunc) *ActiveQuery {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	q := &ActiveQuery{id: r.nextID, queryID: queryID, sql: sql, start: time.Now(), cancel: cancel}
	r.active[q.id] = q
	return q
}

// Finish removes q from the active set and offers its record — full
// traces included — to the slow-query ring. err may be nil.
func (r *QueryRegistry) Finish(q *ActiveQuery, traces []*trace.Trace, err error) {
	wall := time.Since(q.start)
	r.mu.Lock()
	delete(r.active, q.id)
	r.mu.Unlock()
	e := SlowQuery{
		ID: q.id, QueryID: q.queryID, SQL: q.sql, StartedAt: q.start, WallNS: wall.Nanoseconds(),
		Items: q.items.Load(), MaterializedBytes: q.matBytes.Load(), Traces: traces,
		PlanLookupNS: q.planLookupNS.Load(), CompileNS: q.compileNS.Load(),
		CachedPlan: q.cachedPlan.Load(),
		QueueNS:    q.queueNS.Load(), DeadlineNS: q.deadlineNS.Load(),
	}
	if err != nil {
		e.Error = err.Error()
	}
	r.slow.Offer(e)
}

// Cancel invokes the cancel action of the active query id and reports
// whether such a query existed (the query stays listed as active until
// its runner actually unwinds and calls Finish).
func (r *QueryRegistry) Cancel(id int64) bool {
	r.mu.Lock()
	q, ok := r.active[id]
	r.mu.Unlock()
	if !ok {
		return false
	}
	if q.cancel != nil {
		q.cancel()
	}
	return true
}

// ActiveCount returns the number of in-flight queries (the
// voodoo_active_queries gauge).
func (r *QueryRegistry) ActiveCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.active)
}

// QueryInfo is the JSON snapshot of one in-flight query.
type QueryInfo struct {
	ID int64 `json:"id"`
	// QueryID is the telemetry correlation id — grep the event log or hit
	// /debug/spans?query_id= with it.
	QueryID   string    `json:"query_id,omitempty"`
	SQL       string    `json:"sql"`
	StartedAt time.Time `json:"started_at"`
	ElapsedNS int64     `json:"elapsed_ns"`
	// QueueNS is the admission-queue wait; DeadlineNS the remaining
	// deadline budget at arrival (0 = none).
	QueueNS    int64 `json:"queue_ns,omitempty"`
	DeadlineNS int64 `json:"deadline_ns,omitempty"`
	// StepsDone counts completed plan steps; LastStep names the most
	// recently completed one ("fragment sel_fused", "bulk FoldSum", …) —
	// together they are the query's live progress.
	StepsDone         int64  `json:"steps_done"`
	LastStep          string `json:"last_step,omitempty"`
	Items             int64  `json:"items"`
	MaterializedBytes int64  `json:"materialized_bytes"`
	// PlanLookupNS and CompileNS split plan acquisition: cache lookup
	// versus parse+plan. CachedPlan marks a plan-cache hit (CompileNS 0).
	PlanLookupNS int64 `json:"plan_lookup_ns"`
	CompileNS    int64 `json:"compile_ns"`
	CachedPlan   bool  `json:"cached_plan"`
	// Cancel is the ready-to-use cancel action for this query.
	Cancel string `json:"cancel"`
}

// Active snapshots the in-flight queries, oldest first.
func (r *QueryRegistry) Active() []QueryInfo {
	r.mu.Lock()
	qs := make([]*ActiveQuery, 0, len(r.active))
	for _, q := range r.active {
		qs = append(qs, q)
	}
	r.mu.Unlock()
	sort.Slice(qs, func(i, j int) bool { return qs[i].id < qs[j].id })
	out := make([]QueryInfo, len(qs))
	for i, q := range qs {
		out[i] = QueryInfo{
			ID: q.id, QueryID: q.queryID, SQL: q.sql, StartedAt: q.start,
			ElapsedNS: time.Since(q.start).Nanoseconds(),
			QueueNS:   q.queueNS.Load(), DeadlineNS: q.deadlineNS.Load(),
			StepsDone: q.steps.Load(), Items: q.items.Load(),
			MaterializedBytes: q.matBytes.Load(),
			PlanLookupNS:      q.planLookupNS.Load(),
			CompileNS:         q.compileNS.Load(),
			CachedPlan:        q.cachedPlan.Load(),
			Cancel:            cancelPath(q.id),
		}
		if p := q.lastStep.Load(); p != nil {
			out[i].LastStep = *p
		}
	}
	return out
}

// Slow returns the retained slowest queries, slowest first.
func (r *QueryRegistry) Slow() []SlowQuery { return r.slow.Snapshot() }

// SlowQuery is one finished query retained by the slow-query ring.
type SlowQuery struct {
	ID                int64          `json:"id"`
	QueryID           string         `json:"query_id,omitempty"`
	SQL               string         `json:"sql"`
	StartedAt         time.Time      `json:"started_at"`
	WallNS            int64          `json:"wall_ns"`
	QueueNS           int64          `json:"queue_ns,omitempty"`
	DeadlineNS        int64          `json:"deadline_ns,omitempty"`
	Items             int64          `json:"items"`
	MaterializedBytes int64          `json:"materialized_bytes"`
	PlanLookupNS      int64          `json:"plan_lookup_ns"`
	CompileNS         int64          `json:"compile_ns"`
	CachedPlan        bool           `json:"cached_plan"`
	Error             string         `json:"error,omitempty"`
	Traces            []*trace.Trace `json:"traces,omitempty"`
}

// SlowRing retains the N slowest finished queries by wall time: a
// fixed-capacity buffer where a new entry evicts the fastest retained
// one once full. Entries are kept sorted, slowest first.
type SlowRing struct {
	mu      sync.Mutex
	cap     int
	entries []SlowQuery
}

// NewSlowRing returns a ring retaining the n slowest queries.
func NewSlowRing(n int) *SlowRing { return &SlowRing{cap: n} }

// Offer inserts e if it ranks among the n slowest seen so far.
func (r *SlowRing) Offer(e SlowQuery) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].WallNS < e.WallNS })
	if i >= r.cap {
		return
	}
	r.entries = append(r.entries, SlowQuery{})
	copy(r.entries[i+1:], r.entries[i:])
	r.entries[i] = e
	if len(r.entries) > r.cap {
		r.entries = r.entries[:r.cap]
	}
}

// Snapshot copies the retained entries, slowest first.
func (r *SlowRing) Snapshot() []SlowQuery {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SlowQuery(nil), r.entries...)
}

// Len returns the number of retained entries.
func (r *SlowRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}
