package diag

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"voodoo/internal/metrics"
	"voodoo/internal/trace"
)

// get fetches a URL and returns status + body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// TestDiagEndpointsSmoke drives every diagnostics endpoint through a real
// HTTP round trip: metrics, pprof, expvar, health, and the query views.
func TestDiagEndpointsSmoke(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("smoke_total", "A counter for the smoke test.").Add(7)
	qr := NewQueryRegistry(4)
	srv := httptest.NewServer(NewMux(reg, qr, nil, nil))
	defer srv.Close()

	t.Run("metrics", func(t *testing.T) {
		code, body := get(t, srv.URL+"/metrics")
		if code != 200 {
			t.Fatalf("status %d", code)
		}
		for _, want := range []string{
			"# HELP smoke_total A counter for the smoke test.",
			"# TYPE smoke_total counter",
			"smoke_total 7",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("missing %q in:\n%s", want, body)
			}
		}
	})

	t.Run("healthz", func(t *testing.T) {
		code, body := get(t, srv.URL+"/healthz")
		if code != 200 || strings.TrimSpace(body) != "ok" {
			t.Errorf("got %d %q", code, body)
		}
	})

	t.Run("expvar", func(t *testing.T) {
		code, body := get(t, srv.URL+"/debug/vars")
		if code != 200 {
			t.Fatalf("status %d", code)
		}
		// The historical expvar "voodoo" map is still published (package
		// trace is linked into this test binary).
		if !strings.Contains(body, `"voodoo"`) {
			t.Errorf("expvar output lacks the voodoo map:\n%.500s", body)
		}
	})

	t.Run("pprof", func(t *testing.T) {
		for _, p := range []string{
			"/debug/pprof/",
			"/debug/pprof/cmdline",
			"/debug/pprof/goroutine?debug=1",
			"/debug/pprof/heap?debug=1",
		} {
			if code, _ := get(t, srv.URL+p); code != 200 {
				t.Errorf("%s: status %d", p, code)
			}
		}
	})

	t.Run("queries-empty", func(t *testing.T) {
		code, body := get(t, srv.URL+"/queries")
		if code != 200 {
			t.Fatalf("status %d", code)
		}
		var resp struct {
			Active []QueryInfo `json:"active"`
			Slow   []SlowQuery `json:"slow"`
		}
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, body)
		}
		if len(resp.Active) != 0 || len(resp.Slow) != 0 {
			t.Errorf("expected empty registry, got %s", body)
		}
	})

	t.Run("queries-live", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		q := qr.Begin("SELECT COUNT(*) FROM lineitem", "", cancel)
		q.Observe(trace.Step{Kind: trace.KindFragment, Name: "scan_0", Items: 42, MaterializedBytes: 336})

		code, body := get(t, srv.URL+"/queries")
		if code != 200 {
			t.Fatalf("status %d", code)
		}
		var resp struct {
			Active []QueryInfo `json:"active"`
		}
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		if len(resp.Active) != 1 || resp.Active[0].LastStep != "fragment scan_0" ||
			resp.Active[0].Items != 42 {
			t.Fatalf("live view wrong: %s", body)
		}

		// Cancel through the HTTP action, as an operator would.
		resp2, err := http.Post(srv.URL+fmt.Sprintf("/queries/cancel?id=%d", q.ID()), "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp2.Body.Close()
		if resp2.StatusCode != 200 {
			t.Fatalf("cancel status %d", resp2.StatusCode)
		}
		select {
		case <-ctx.Done():
		default:
			t.Errorf("HTTP cancel did not fire the context")
		}
		qr.Finish(q, []*trace.Trace{{Backend: "compiled", Query: "SELECT COUNT(*) FROM lineitem"}}, ctx.Err())
	})

	t.Run("queries-slow", func(t *testing.T) {
		code, body := get(t, srv.URL+"/queries/slow")
		if code != 200 {
			t.Fatalf("status %d", code)
		}
		var slow []SlowQuery
		if err := json.Unmarshal([]byte(body), &slow); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		if len(slow) != 1 || len(slow[0].Traces) != 1 || slow[0].Error == "" {
			t.Errorf("slow view lacks the finished query's trace: %s", body)
		}
	})

	t.Run("cancel-errors", func(t *testing.T) {
		resp, err := http.Post(srv.URL+"/queries/cancel", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("missing id: status %d, want 400", resp.StatusCode)
		}
		resp, err = http.Post(srv.URL+"/queries/cancel?id=12345", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown id: status %d, want 404", resp.StatusCode)
		}
	})
}

// TestServeBindsEphemeral: the background Serve helper binds :0, reports
// the real address and serves /metrics until closed.
func TestServeBindsEphemeral(t *testing.T) {
	s, err := Serve("127.0.0.1:0", metrics.NewRegistry(), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if code, _ := get(t, "http://"+s.Addr+"/metrics"); code != 200 {
		t.Errorf("metrics status %d", code)
	}
	if code, _ := get(t, "http://"+s.Addr+"/healthz"); code != 200 {
		t.Errorf("healthz status %d", code)
	}
}
