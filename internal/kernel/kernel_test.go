package kernel

import (
	"strings"
	"testing"

	"voodoo/internal/vector"
)

func TestStaticBodyOps(t *testing.T) {
	f := &Fragment{
		Loops: []Loop{
			{Body: []Instr{
				{Op: IBin, BOp: BAdd},
				{Op: IBin, BOp: BMul, Float: true},
				{Op: ISel},
				{Op: ICastIF},
				{Op: ILoad},  // memory, not ALU
				{Op: IStore}, // memory, not ALU
			}},
			{Body: []Instr{
				{Op: IBin, BOp: BSub},
			}},
		},
	}
	i, fl := f.StaticBodyOps()
	if i != 4 || fl != 1 {
		t.Fatalf("StaticBodyOps = (%d, %d), want (4, 1)", i, fl)
	}
}

func TestSequential(t *testing.T) {
	if !(&Fragment{Extent: 1}).Sequential() {
		t.Error("extent 1 should be sequential")
	}
	if (&Fragment{Extent: 2}).Sequential() {
		t.Error("extent 2 should not be sequential")
	}
}

func TestKernelString(t *testing.T) {
	k := &Kernel{}
	in := k.AddBuf(BufDecl{Name: "in", Kind: vector.Int, Size: 8, Input: true})
	out := k.AddBuf(BufDecl{Name: "out", Kind: vector.Float, Size: 2, Valid: true})
	k.Frags = append(k.Frags, &Fragment{
		Name: "f", Extent: 2, Intent: 4, N: 8, Strided: true, Locals: 3,
		Pre: []Instr{{Op: IConstF, Dst: FirstFree, FImm: 1.5}},
		Loops: []Loop{{BoundReg: FirstFree + 1, Body: []Instr{
			{Op: ILoad, Dst: FirstFree + 2, A: RegIdx, Buf: in, Seq: true},
			{Op: IGuard, A: FirstFree + 2},
			{Op: ILoadLoc, Dst: FirstFree + 3, A: RegIV},
			{Op: IStoreLoc, A: RegIV, B: FirstFree + 3},
			{Op: ISel, Dst: FirstFree + 4, A: FirstFree + 2, B: FirstFree + 3, C: FirstFree + 2},
			{Op: ICastFI, Dst: FirstFree + 5, A: FirstFree},
			{Op: IMov, Dst: FirstFree + 6, A: FirstFree + 5},
			{Op: ILoadValid, Dst: FirstFree + 7, A: RegIdx, Buf: out},
			{Op: IStore, A: RegGID, B: FirstFree, Buf: out, Float: true},
		}}},
	})
	s := k.String()
	for _, want := range []string{
		"buf 0 in int[8] (input)",
		"buf 1 out float[2] (temp)",
		"fragment f extent=2 intent=4 n=8 strided locals=3",
		"min r5", // dynamic bound
		"guard r6",
		"loc[",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("listing missing %q:\n%s", want, s)
		}
	}
}

func TestBinOpString(t *testing.T) {
	if BAdd.String() != "add" || BMax.String() != "max" {
		t.Error("binop names wrong")
	}
	if !strings.HasPrefix(BinOp(99).String(), "bin(") {
		t.Error("unknown binop should stringify as bin(n)")
	}
}

func TestInstrString(t *testing.T) {
	cases := map[string]Instr{
		"r4 = 7":       {Op: IConstI, Dst: FirstFree, Imm: 7},
		"r4 = 1.5":     {Op: IConstF, Dst: FirstFree, FImm: 1.5},
		"guard r4":     {Op: IGuard, A: FirstFree},
		"r4 = r5":      {Op: IMov, Dst: FirstFree, A: FirstFree + 1},
		"loc[r4] = r5": {Op: IStoreLoc, A: FirstFree, B: FirstFree + 1},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("Instr.String() = %q, want %q", got, want)
		}
	}
}
