// Package kernel defines the kernel intermediate representation that the
// Voodoo compiler (package compile) lowers programs into.
//
// A Kernel is a sequence of Fragments (paper §3.1): fully inlined,
// function-call-free loop nests, each with an Extent (degree of data
// parallelism; the OpenCL global work size) and an Intent (sequential
// iterations per parallel work item). Materialization happens only at the
// seams between fragments — the paper's global barriers.
//
// Three consumers share this IR:
//
//   - package exec runs fragments natively (work items = goroutine chunks);
//   - package device runs them under an instrumented interpreter that
//     charges a parametric hardware cost model (CPU or GPU presets);
//   - package opencl pretty-prints them as the OpenCL C the paper's
//     backend would ship to the driver.
package kernel

import (
	"fmt"
	"strings"
	"sync/atomic"

	"voodoo/internal/vector"
)

// Reg is a virtual register index. Registers are work-item local and typed
// statically by the compiler (int64 or float64).
type Reg int32

// Special registers available in fragment bodies.
const (
	// RegGID holds the parallel work-item id (0 ≤ gid < Extent).
	RegGID Reg = 0
	// RegIV holds the loop iteration variable of the current loop.
	RegIV Reg = 1
	// RegIdx holds the global element index derived from (gid, iv):
	// gid*Intent+iv for blocked fragments, iv*Extent+gid for strided.
	RegIdx Reg = 2
	// RegJ holds the post-loop index (0 ≤ j < Locals).
	RegJ Reg = 3
	// FirstFree is the first register available for allocation.
	FirstFree Reg = 4
)

// NoReg marks an absent optional register operand.
const NoReg Reg = -1

// BinOp enumerates binary ALU operations.
type BinOp uint8

const (
	BAdd BinOp = iota
	BSub
	BMul
	BDiv
	BMod
	BShl
	BAnd
	BOr
	BGt
	BGe
	BEq
	BMin
	BMax
)

var binNames = [...]string{"add", "sub", "mul", "div", "mod", "shl", "and", "or", "gt", "ge", "eq", "min", "max"}

// String returns the mnemonic of the operation.
func (b BinOp) String() string {
	if int(b) < len(binNames) {
		return binNames[b]
	}
	return fmt.Sprintf("bin(%d)", uint8(b))
}

// IOp enumerates instruction opcodes.
type IOp uint8

const (
	// IConstI: Dst ← Imm (integer).
	IConstI IOp = iota
	// IConstF: Dst ← FImm (float).
	IConstF
	// IMov: Dst ← A.
	IMov
	// IBin: Dst ← A ⟨BOp⟩ B; Float selects the ALU domain.
	IBin
	// ISel: Dst ← A != 0 ? B : C. Branch-free (predication).
	ISel
	// ILoad: Dst ← Buf[A]. Seq marks an affine (coalesced) access.
	ILoad
	// ILoadValid: Dst ← 1 if Buf[A] holds a value, else 0.
	ILoadValid
	// IStore: Buf[A] ← B (marks the slot valid). Seq as for ILoad.
	IStore
	// IGuard: if A == 0, skip the remainder of the loop body for this
	// iteration. This is the data-dependent branch of a "branching"
	// implementation; its cost is what predication trades away.
	IGuard
	// ICastIF: Dst ← float64(A).
	ICastIF
	// ICastFI: Dst ← int64(A) (truncating).
	ICastFI
	// ILoadLoc: Dst ← locals[A] (per-work-item scratch array).
	ILoadLoc
	// IStoreLoc: locals[A] ← B.
	IStoreLoc
)

// Instr is one three-address instruction.
type Instr struct {
	Op    IOp
	BOp   BinOp
	Float bool // IBin/ISel/ILoad/IStore operate on floats
	Dst   Reg
	A, B  Reg
	C     Reg // ISel only
	Buf   int
	Imm   int64
	FImm  float64
	// Seq marks memory accesses whose index is affine in RegIdx
	// (coalesced / prefetchable); non-Seq accesses are random (gathers
	// and scatters), which the device cost models price by working-set
	// size.
	Seq bool
}

// Loop is one sequential loop inside a fragment, executed per work item.
// The iteration count is min(Bound, value of BoundReg) where Bound == 0
// means the fragment's Intent and BoundReg <= 0 means "no dynamic bound"
// (dynamic bound registers therefore must be allocated at or above
// FirstFree, which the compiler's register allocator guarantees). Dynamic
// bounds implement the paper's empty-slot suppression: a fold-select
// records how many positions each run produced, and downstream loops
// iterate only those.
type Loop struct {
	Bound    int
	BoundReg Reg
	Body     []Instr
}

// Prov records why the compiler emitted a fragment: which SSA statements
// fused into it and which of the paper's fusion decisions shaped it. It is
// metadata for EXPLAIN and execution traces; execution ignores it.
type Prov struct {
	// Kind classifies the fragment: "fold", "scan", "filter-fold",
	// "reduce", "select", "filter", "mat", "scatter", "group-fold",
	// "group-reduce".
	Kind string
	// Stmts lists the SSA ids of the statements this fragment computes;
	// more than one means operators were fused.
	Stmts []int
	// Suppressed marks empty-slot suppression (§3.1.2): the output holds
	// one slot per run instead of one per element.
	Suppressed bool
	// Virtual marks a fragment that dissolved a scatter into index
	// arithmetic (§3.1.3) instead of moving data.
	Virtual bool
	// Predicated marks selection lowered as cursor arithmetic instead of
	// a data-dependent branch.
	Predicated bool
}

// Fragment is one generated kernel: Extent parallel work items each running
// the loop nest sequentially. N guards the global element index (the last
// work item may be ragged).
type Fragment struct {
	Name    string
	Extent  int
	Intent  int
	Strided bool // idx = iv*Extent + gid instead of gid*Intent + iv
	N       int  // iterations with idx >= N are skipped

	// Prov is compiler provenance for EXPLAIN and tracing.
	Prov Prov

	// Locals is the size of the per-work-item scratch array (0 = none);
	// LocalsFloat selects its type. Scratch arrays hold chunk-local
	// position lists (vectorized processing) and grouped-aggregation
	// accumulators (the paper's virtual scatter, §3.1.3).
	Locals      int
	LocalsFloat bool
	// LocalsInit is the value scratch slots start with (e.g. the
	// identity of a fold, or a "no value" sentinel).
	LocalsInit float64

	Pre   []Instr // once per work item, before the loops
	Loops []Loop
	Post  []Instr // once per work item, after the loops
	// PostLoopBody runs Locals times per work item with RegJ = 0..Locals-1,
	// flushing scratch arrays to global buffers.
	PostLoopBody []Instr

	// spec caches the executor's compiled specialization of this fragment
	// (opaque here; package exec owns the concrete type). Fragments are
	// immutable after compilation, so racing compilations store identical
	// content and the last store winning is benign.
	spec atomic.Value
}

// LoadSpec returns the cached specialization, or nil before the first
// StoreSpec. Safe for concurrent use.
func (f *Fragment) LoadSpec() any { return f.spec.Load() }

// StoreSpec caches a compiled specialization on the fragment. Safe for
// concurrent use; later stores overwrite earlier ones.
func (f *Fragment) StoreSpec(v any) { f.spec.Store(v) }

// Sequential reports whether the fragment runs on a single work item.
func (f *Fragment) Sequential() bool { return f.Extent <= 1 }

// StaticBodyOps counts the ALU instructions one full loop iteration
// executes (all loops combined), split by domain. SIMT cost models charge
// guard-divergent fragments the full body per iteration regardless of the
// guard outcome.
func (f *Fragment) StaticBodyOps() (intOps, floatOps int64) {
	for _, l := range f.Loops {
		for _, in := range l.Body {
			switch in.Op {
			case IBin, ISel:
				if in.Float {
					floatOps++
				} else {
					intOps++
				}
			case ICastIF, ICastFI:
				intOps++
			}
		}
	}
	return
}

// BufDecl declares one global buffer of a kernel.
type BufDecl struct {
	Name  string
	Kind  vector.Kind
	Size  int
	Valid bool // carries a validity (ε) mask
	Input bool // bound by the caller before execution
}

// Kernel is a compiled Voodoo program: buffers plus a fragment sequence
// with an implicit global barrier between consecutive fragments.
type Kernel struct {
	Bufs  []BufDecl
	Frags []*Fragment
}

// AddBuf appends a buffer declaration and returns its index.
func (k *Kernel) AddBuf(d BufDecl) int {
	k.Bufs = append(k.Bufs, d)
	return len(k.Bufs) - 1
}

// String renders a compact human-readable listing of the kernel.
func (k *Kernel) String() string {
	var sb strings.Builder
	for i, b := range k.Bufs {
		role := "temp"
		if b.Input {
			role = "input"
		}
		fmt.Fprintf(&sb, "buf %d %s %s[%d] (%s)\n", i, b.Name, b.Kind, b.Size, role)
	}
	for _, f := range k.Frags {
		mode := "blocked"
		if f.Strided {
			mode = "strided"
		}
		fmt.Fprintf(&sb, "fragment %s extent=%d intent=%d n=%d %s locals=%d\n",
			f.Name, f.Extent, f.Intent, f.N, mode, f.Locals)
		writeInstrs(&sb, "  pre ", f.Pre)
		for li, l := range f.Loops {
			bound := "intent"
			if l.Bound > 0 {
				bound = fmt.Sprintf("%d", l.Bound)
			}
			if l.BoundReg > 0 {
				bound += fmt.Sprintf(" min r%d", l.BoundReg)
			}
			fmt.Fprintf(&sb, "  loop%d bound=%s\n", li, bound)
			writeInstrs(&sb, "    ", l.Body)
		}
		writeInstrs(&sb, "  post ", f.Post)
		writeInstrs(&sb, "  postloop ", f.PostLoopBody)
	}
	return sb.String()
}

func writeInstrs(sb *strings.Builder, indent string, instrs []Instr) {
	for _, in := range instrs {
		fmt.Fprintf(sb, "%s%s\n", indent, in)
	}
}

// String renders one instruction.
func (in Instr) String() string {
	f := ""
	if in.Float {
		f = "f"
	}
	switch in.Op {
	case IConstI:
		return fmt.Sprintf("r%d = %d", in.Dst, in.Imm)
	case IConstF:
		return fmt.Sprintf("r%d = %g", in.Dst, in.FImm)
	case IMov:
		return fmt.Sprintf("r%d = r%d", in.Dst, in.A)
	case IBin:
		return fmt.Sprintf("r%d = %s%s r%d r%d", in.Dst, f, in.BOp, in.A, in.B)
	case ISel:
		return fmt.Sprintf("r%d = r%d ? r%d : r%d", in.Dst, in.A, in.B, in.C)
	case ILoad:
		return fmt.Sprintf("r%d = %sload buf%d[r%d] seq=%v", in.Dst, f, in.Buf, in.A, in.Seq)
	case ILoadValid:
		return fmt.Sprintf("r%d = valid buf%d[r%d]", in.Dst, in.Buf, in.A)
	case IStore:
		return fmt.Sprintf("%sstore buf%d[r%d] = r%d seq=%v", f, in.Buf, in.A, in.B, in.Seq)
	case IGuard:
		return fmt.Sprintf("guard r%d", in.A)
	case ICastIF:
		return fmt.Sprintf("r%d = float(r%d)", in.Dst, in.A)
	case ICastFI:
		return fmt.Sprintf("r%d = int(r%d)", in.Dst, in.A)
	case ILoadLoc:
		return fmt.Sprintf("r%d = loc[r%d]", in.Dst, in.A)
	case IStoreLoc:
		return fmt.Sprintf("loc[r%d] = r%d", in.A, in.B)
	}
	return fmt.Sprintf("instr(%d)", in.Op)
}

// RegUse is one register operand an instruction reads, with the register
// file it reads from (Float selects the float file).
type RegUse struct {
	R     Reg
	Float bool
}

// Uses returns the registers the instruction reads, with their domains.
// Guard conditions, load indices and select conditions always read the
// integer file; value operands follow the instruction's Float flag. Used
// by the executor's specializer for def-before-use analysis; not a hot
// path.
func (in Instr) Uses() []RegUse {
	switch in.Op {
	case IConstI, IConstF:
		return nil
	case IMov, IBin:
		if in.Op == IMov {
			return []RegUse{{in.A, in.Float}}
		}
		return []RegUse{{in.A, in.Float}, {in.B, in.Float}}
	case ISel:
		return []RegUse{{in.A, false}, {in.B, in.Float}, {in.C, in.Float}}
	case ILoad, ILoadValid, IGuard, ICastIF, ILoadLoc:
		return []RegUse{{in.A, false}}
	case ICastFI:
		return []RegUse{{in.A, true}}
	case IStore, IStoreLoc:
		u := []RegUse{{in.A, false}, {in.B, in.Float}}
		if in.Op == IStore && in.C > 0 {
			u = append(u, RegUse{in.C, false})
		}
		return u
	}
	return nil
}

// Def returns the register the instruction writes and its domain, or
// ok=false for instructions with no register result (stores, guards).
func (in Instr) Def() (r Reg, float bool, ok bool) {
	switch in.Op {
	case IConstI:
		return in.Dst, false, true
	case IConstF:
		return in.Dst, true, true
	case IMov, IBin, ISel, ILoad, ILoadLoc:
		return in.Dst, in.Float, true
	case ILoadValid, ICastFI:
		return in.Dst, false, true
	case ICastIF:
		return in.Dst, true, true
	}
	return NoReg, false, false
}

// opMnemos are the compact opcode names Fingerprint uses.
var opMnemos = [...]string{"ci", "cf", "mov", "bin", "sel", "ld", "ldv", "st", "grd", "i2f", "f2i", "ldl", "stl"}

// Fingerprint returns a compact structural signature of the fragment's
// instruction shape — opcode mnemonics per section, binops spelled out,
// sequential accesses marked — for fast-path diagnostics and tests. Two
// fragments with equal fingerprints have the same instruction skeleton
// (registers and buffer bindings may differ).
func (f *Fragment) Fingerprint() string {
	var sb strings.Builder
	section := func(tag string, instrs []Instr) {
		if len(instrs) == 0 {
			return
		}
		sb.WriteString(tag)
		sb.WriteByte(':')
		for i, in := range instrs {
			if i > 0 {
				sb.WriteByte(',')
			}
			if int(in.Op) < len(opMnemos) {
				sb.WriteString(opMnemos[in.Op])
			} else {
				fmt.Fprintf(&sb, "op%d", in.Op)
			}
			if in.Op == IBin {
				sb.WriteByte('.')
				sb.WriteString(in.BOp.String())
			}
			if (in.Op == ILoad || in.Op == IStore) && in.Seq {
				sb.WriteString(".s")
			}
			if in.Float {
				sb.WriteString(".f")
			}
		}
		sb.WriteByte(';')
	}
	section("pre", f.Pre)
	for _, l := range f.Loops {
		section("loop", l.Body)
	}
	section("post", f.Post)
	section("postloop", f.PostLoopBody)
	return sb.String()
}
