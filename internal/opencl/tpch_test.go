package opencl

import (
	"fmt"
	"strings"
	"testing"

	"voodoo/internal/compile"
	"voodoo/internal/exec"
	"voodoo/internal/rel"
	"voodoo/internal/storage"
	"voodoo/internal/tpch"
)

// capturingRunner records every rel.Query a TPC-H QueryFunc executes while
// delegating to a real engine (multi-phase queries run several plans).
type capturingRunner struct {
	inner   *rel.Engine
	queries []rel.Query
}

func (c *capturingRunner) Catalog() *storage.Catalog { return c.inner.Cat }

func (c *capturingRunner) Run(q rel.Query) (*rel.Result, *exec.Stats, error) {
	c.queries = append(c.queries, q)
	return c.inner.Run(q)
}

// TestTPCHPlansRenderValidOpenCL lowers every evaluated TPC-H query plan
// and checks the generated OpenCL is structurally sound: balanced braces,
// one kernel per fragment, and every referenced buffer declared as a
// parameter of its kernel.
func TestTPCHPlansRenderValidOpenCL(t *testing.T) {
	cat := tpch.Generate(tpch.Config{SF: 0.002, Seed: 42})
	for _, num := range tpch.QueryNumbers {
		num := num
		t.Run(fmt.Sprintf("q%d", num), func(t *testing.T) {
			qf, err := tpch.Query(num)
			if err != nil {
				t.Fatal(err)
			}
			cap := &capturingRunner{inner: &rel.Engine{Cat: cat, Backend: rel.Compiled}}
			if _, _, err := qf(cap); err != nil {
				t.Fatal(err)
			}
			if len(cap.queries) == 0 {
				t.Fatal("no plans captured")
			}
			for pi, q := range cap.queries {
				prog, err := rel.Lower(q, cat)
				if err != nil {
					t.Fatalf("phase %d: %v", pi, err)
				}
				plan, err := compile.Compile(prog, cat, compile.Options{ScatterParallel: true})
				if err != nil {
					t.Fatalf("phase %d: %v", pi, err)
				}
				src := Generate(plan.Kernel())
				checkKernelSource(t, src, len(plan.Kernel().Frags))
			}
		})
	}
}

func checkKernelSource(t *testing.T, src string, frags int) {
	t.Helper()
	if strings.Count(src, "{") != strings.Count(src, "}") {
		t.Error("unbalanced braces")
	}
	if nk := strings.Count(src, "__kernel"); nk != frags {
		t.Errorf("%d kernels for %d fragments", nk, frags)
	}
	for _, k := range strings.Split(src, "__kernel")[1:] {
		header, body, ok := strings.Cut(k, ") {")
		if !ok {
			t.Fatal("malformed kernel")
		}
		for i := 0; i+3 < len(body); i++ {
			if strings.HasPrefix(body[i:], "buf") && i > 0 && !isIdentChar(body[i-1]) {
				end := i + 3
				for end < len(body) && body[end] >= '0' && body[end] <= '9' {
					end++
				}
				name := body[i:end]
				if end == i+3 {
					continue // not a numbered buffer reference
				}
				if !strings.Contains(header, name+" ") && !strings.Contains(header, name+"_") {
					t.Fatalf("buffer %s used but not a parameter\nheader:%s", name, header)
				}
				i = end
			}
		}
	}
}

func isIdentChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}
