package tpch

import (
	"math"
	"testing"

	"voodoo/internal/rel"
	"voodoo/internal/storage"
)

var testCat = Generate(Config{SF: 0.002, Seed: 42})

func freshEngines() map[string]*rel.Engine {
	// Q20 registers a temp table; give each engine its own catalog view.
	return map[string]*rel.Engine{
		"compiled": {Cat: testCat, Backend: rel.Compiled},
		"interp":   {Cat: testCat, Backend: rel.Interpreted},
		"bulk":     {Cat: testCat, Backend: rel.BulkCompiled},
	}
}

func TestDateHelpers(t *testing.T) {
	if Date("1992-01-01") != 0 {
		t.Fatal("epoch should be day 0")
	}
	if Date("1992-01-31") != 30 {
		t.Fatalf("Jan 31 = %d", Date("1992-01-31"))
	}
	if DateAdd(Date("1994-01-01"), 1, 0, 0) != Date("1995-01-01") {
		t.Fatal("DateAdd year")
	}
	if DateAdd(Date("1993-07-01"), 0, 3, 0) != Date("1993-10-01") {
		t.Fatal("DateAdd months")
	}
	if YearOf(Date("1995-06-17")) != 1995 {
		t.Fatal("YearOf")
	}
}

func TestGeneratorShape(t *testing.T) {
	li := testCat.Table("lineitem")
	ord := testCat.Table("orders")
	if li == nil || ord == nil {
		t.Fatal("missing tables")
	}
	if li.N < ord.N {
		t.Fatalf("lineitem (%d) should outnumber orders (%d)", li.N, ord.N)
	}
	// Every lineitem (partkey, suppkey) pair must exist in partsupp via
	// the combo id.
	ps := testCat.Table("partsupp")
	nSupp := testCat.Table("supplier").N
	comboOK := map[int64]bool{}
	for i := 0; i < ps.N; i++ {
		comboOK[ps.Col("ps_comboid").Int(i)] = true
	}
	for i := 0; i < li.N; i += 17 {
		p := li.Col("l_partkey").Int(i)
		s := li.Col("l_suppkey").Int(i)
		combo := ComboOf(p, s, nSupp)
		if !comboOK[combo] {
			t.Fatalf("row %d: combo %d for (part %d, supp %d) not in partsupp", i, combo, p, s)
		}
		// And the combo row must actually name this part and supplier.
		if ps.Col("ps_partkey").Int(int(combo)) != p || ps.Col("ps_suppkey").Int(int(combo)) != s {
			t.Fatalf("combo %d resolves to (%d,%d), want (%d,%d)", combo,
				ps.Col("ps_partkey").Int(int(combo)), ps.Col("ps_suppkey").Int(int(combo)), p, s)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := Generate(Config{SF: 0.002, Seed: 42})
	b := Generate(Config{SF: 0.002, Seed: 42})
	if !a.Table("lineitem").Vector().Equal(b.Table("lineitem").Vector()) {
		t.Fatal("generator is not deterministic")
	}
	c := Generate(Config{SF: 0.002, Seed: 43})
	if a.Table("lineitem").Vector().Equal(c.Table("lineitem").Vector()) {
		t.Fatal("different seeds should give different data")
	}
}

func sameRows(t *testing.T, name string, a, b *rel.Result) {
	t.Helper()
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("%s: %d rows vs %d rows", name, len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		for _, c := range a.Cols {
			av, bv := a.Rows[i][c], b.Rows[i][c]
			tol := 1e-6 * math.Max(1, math.Abs(av))
			if math.Abs(av-bv) > tol {
				t.Fatalf("%s row %d col %s: %g vs %g", name, i, c, av, bv)
			}
		}
	}
}

// TestQueriesAgreeAcrossBackends is the macro differential test: every
// evaluated query must produce identical results on the compiling backend,
// the interpreter, and the bulk (Ocelot-style) backend.
func TestQueriesAgreeAcrossBackends(t *testing.T) {
	for _, num := range QueryNumbers {
		num := num
		t.Run(queryName(num), func(t *testing.T) {
			qf, err := Query(num)
			if err != nil {
				t.Fatal(err)
			}
			var ref *rel.Result
			for name, e := range freshEngines() {
				res, _, err := qf(e)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if ref == nil {
					ref = res
					continue
				}
				sameRows(t, name, ref, res)
			}
			if len(ref.Rows) == 0 {
				t.Fatalf("query %d returned no rows — parameters likely select nothing at this SF", num)
			}
		})
	}
}

func queryName(n int) string { return map[bool]string{true: "q"}[true] + itoa(n) }

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}

// TestQ1MatchesDirectComputation checks the headline query against a
// straight Go loop over the base data.
func TestQ1MatchesDirectComputation(t *testing.T) {
	li := testCat.Table("lineitem")
	cutoff := Date("1998-12-01") - 90
	type acc struct {
		qty, price, disc, charge, dsum float64
		n                              float64
	}
	want := map[[2]int64]*acc{}
	for i := 0; i < li.N; i++ {
		if li.Col("l_shipdate").Int(i) > cutoff {
			continue
		}
		k := [2]int64{li.Col("l_returnflag").Int(i), li.Col("l_linestatus").Int(i)}
		a := want[k]
		if a == nil {
			a = &acc{}
			want[k] = a
		}
		q := float64(li.Col("l_quantity").Int(i))
		p := li.Col("l_extendedprice").Float(i)
		d := li.Col("l_discount").Float(i)
		tax := li.Col("l_tax").Float(i)
		a.qty += q
		a.price += p
		a.disc += p * (1 - d)
		a.charge += p * (1 - d) * (1 + tax)
		a.dsum += d
		a.n++
	}
	e := &rel.Engine{Cat: testCat, Backend: rel.Compiled}
	res, _, err := Q1(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("groups = %d, want %d", len(res.Rows), len(want))
	}
	for _, r := range res.Rows {
		k := [2]int64{int64(r["l_returnflag"]), int64(r["l_linestatus"])}
		a := want[k]
		if a == nil {
			t.Fatalf("unexpected group %v", k)
		}
		checks := map[string]float64{
			"sum_qty": a.qty, "sum_base_price": a.price,
			"sum_disc_price": a.disc, "sum_charge": a.charge,
			"count_order": a.n, "avg_qty": a.qty / a.n,
			"avg_price": a.price / a.n, "avg_disc": a.dsum / a.n,
		}
		for col, w := range checks {
			if math.Abs(r[col]-w) > 1e-6*math.Max(1, math.Abs(w)) {
				t.Errorf("group %v %s = %g, want %g", k, col, r[col], w)
			}
		}
	}
}

// TestQ6MatchesDirectComputation checks the selection query directly.
func TestQ6MatchesDirectComputation(t *testing.T) {
	li := testCat.Table("lineitem")
	lo, hi := Date("1994-01-01"), Date("1995-01-01")
	var want float64
	for i := 0; i < li.N; i++ {
		sd := li.Col("l_shipdate").Int(i)
		d := li.Col("l_discount").Float(i)
		q := li.Col("l_quantity").Int(i)
		if sd >= lo && sd < hi && d >= 0.0499 && d <= 0.0701 && q < 24 {
			want += li.Col("l_extendedprice").Float(i) * d
		}
	}
	e := &rel.Engine{Cat: testCat, Backend: rel.Compiled}
	res, _, err := Q6(e)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Rows[0]["revenue"]
	if math.Abs(got-want) > 1e-6*math.Max(1, want) {
		t.Fatalf("revenue = %g, want %g", got, want)
	}
}

// TestQ4MatchesDirectComputation validates the semi-join query.
func TestQ4MatchesDirectComputation(t *testing.T) {
	li := testCat.Table("lineitem")
	ord := testCat.Table("orders")
	lo := Date("1993-07-01")
	hi := DateAdd(lo, 0, 3, 0)
	hasLate := map[int64]bool{}
	for i := 0; i < li.N; i++ {
		if li.Col("l_commitdate").Int(i) < li.Col("l_receiptdate").Int(i) {
			hasLate[li.Col("l_orderkey").Int(i)] = true
		}
	}
	want := map[int64]float64{}
	for i := 0; i < ord.N; i++ {
		od := ord.Col("o_orderdate").Int(i)
		if od >= lo && od < hi && hasLate[ord.Col("o_orderkey").Int(i)] {
			want[ord.Col("o_orderpriority").Int(i)]++
		}
	}
	e := &rel.Engine{Cat: testCat, Backend: rel.Compiled}
	res, _, err := Q4(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("groups = %d want %d", len(res.Rows), len(want))
	}
	for _, r := range res.Rows {
		if got, w := r["order_count"], want[int64(r["o_orderpriority"])]; got != w {
			t.Errorf("priority %g count = %g, want %g", r["o_orderpriority"], got, w)
		}
	}
}

func TestSaveLoadCatalog(t *testing.T) {
	dir := t.TempDir()
	if err := testCat.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := storage.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := &rel.Engine{Cat: back, Backend: rel.Compiled}
	res, _, err := Q6(e)
	if err != nil {
		t.Fatal(err)
	}
	orig, _, _ := Q6(&rel.Engine{Cat: testCat, Backend: rel.Compiled})
	if math.Abs(res.Rows[0]["revenue"]-orig.Rows[0]["revenue"]) > 1e-9 {
		t.Fatal("reloaded catalog gives different answer")
	}
}

// TestQ12MatchesDirectComputation validates the two-branch case sums.
func TestQ12MatchesDirectComputation(t *testing.T) {
	li := testCat.Table("lineitem")
	ord := testCat.Table("orders")
	lo := Date("1994-01-01")
	hi := DateAdd(lo, 1, 0, 0)
	mail, _ := li.Code("l_shipmode", "MAIL")
	ship, _ := li.Code("l_shipmode", "SHIP")
	urgent, _ := ord.Code("o_orderpriority", "1-URGENT")
	high, _ := ord.Code("o_orderpriority", "2-HIGH")
	prio := map[int64]int64{}
	for i := 0; i < ord.N; i++ {
		prio[ord.Col("o_orderkey").Int(i)] = ord.Col("o_orderpriority").Int(i)
	}
	type pair struct{ hi, lo float64 }
	want := map[int64]*pair{}
	for i := 0; i < li.N; i++ {
		m := li.Col("l_shipmode").Int(i)
		if m != mail && m != ship {
			continue
		}
		if !(li.Col("l_commitdate").Int(i) < li.Col("l_receiptdate").Int(i) &&
			li.Col("l_shipdate").Int(i) < li.Col("l_commitdate").Int(i) &&
			li.Col("l_receiptdate").Int(i) >= lo && li.Col("l_receiptdate").Int(i) < hi) {
			continue
		}
		p := want[m]
		if p == nil {
			p = &pair{}
			want[m] = p
		}
		op := prio[li.Col("l_orderkey").Int(i)]
		if op == urgent || op == high {
			p.hi++
		} else {
			p.lo++
		}
	}
	res, _, err := Q12(&rel.Engine{Cat: testCat, Backend: rel.Compiled})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(want))
	}
	for _, r := range res.Rows {
		w := want[int64(r["l_shipmode"])]
		if w == nil || r["high_line_count"] != w.hi || r["low_line_count"] != w.lo {
			t.Errorf("mode %g: got (%g, %g), want %+v",
				r["l_shipmode"], r["high_line_count"], r["low_line_count"], w)
		}
	}
}

// TestQ15MatchesDirectComputation validates the top-supplier view.
func TestQ15MatchesDirectComputation(t *testing.T) {
	li := testCat.Table("lineitem")
	lo := Date("1996-01-01")
	hi := DateAdd(lo, 0, 3, 0)
	rev := map[int64]float64{}
	for i := 0; i < li.N; i++ {
		sd := li.Col("l_shipdate").Int(i)
		if sd < lo || sd >= hi {
			continue
		}
		rev[li.Col("l_suppkey").Int(i)] +=
			li.Col("l_extendedprice").Float(i) * (1 - li.Col("l_discount").Float(i))
	}
	var best float64
	for _, v := range rev {
		if v > best {
			best = v
		}
	}
	res, _, err := Q15(&rel.Engine{Cat: testCat, Backend: rel.Compiled})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 1 {
		t.Fatal("no top supplier")
	}
	for _, r := range res.Rows {
		if math.Abs(r["total_revenue"]-best) > 1e-6 {
			t.Errorf("top revenue %g, want %g", r["total_revenue"], best)
		}
		if math.Abs(rev[int64(r["l_suppkey"])]-best) > 1e-6 {
			t.Errorf("supplier %g is not a top supplier", r["l_suppkey"])
		}
	}
}

// TestQ11ThresholdSemantics validates the two-phase having computation.
func TestQ11ThresholdSemantics(t *testing.T) {
	ps := testCat.Table("partsupp")
	sup := testCat.Table("supplier")
	germany := nationKey("GERMANY")
	german := map[int64]bool{}
	for i := 0; i < sup.N; i++ {
		if sup.Col("s_nationkey").Int(i) == germany {
			german[sup.Col("s_suppkey").Int(i)] = true
		}
	}
	perPart := map[int64]float64{}
	var total float64
	for i := 0; i < ps.N; i++ {
		if !german[ps.Col("ps_suppkey").Int(i)] {
			continue
		}
		v := ps.Col("ps_supplycost").Float(i) * float64(ps.Col("ps_availqty").Int(i))
		perPart[ps.Col("ps_partkey").Int(i)] += v
		total += v
	}
	wantRows := 0
	for _, v := range perPart {
		if v > total*0.0001 {
			wantRows++
		}
	}
	res, _, err := Q11(&rel.Engine{Cat: testCat, Backend: rel.Compiled})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(res.Rows), wantRows)
	}
	for _, r := range res.Rows {
		if math.Abs(r["value"]-perPart[int64(r["ps_partkey"])]) > 1e-6 {
			t.Errorf("part %g value %g, want %g", r["ps_partkey"], r["value"],
				perPart[int64(r["ps_partkey"])])
		}
	}
}

// TestComboExprMatchesGo cross-checks the algebraic combo-id recovery
// against the Go helper on every lineitem row.
func TestComboExprMatchesGo(t *testing.T) {
	li := testCat.Table("lineitem")
	nSupp := testCat.Table("supplier").N
	e := &rel.Engine{Cat: testCat, Backend: rel.Compiled}
	res, _, err := e.Run(rel.Query{Root: rel.GroupAgg{
		In: rel.Map{
			In:   rel.Scan{Table: "lineitem", Cols: []string{"l_partkey", "l_suppkey"}},
			Outs: []rel.NamedExpr{{Name: "combo", E: comboExpr(nSupp)}},
		},
		Aggs: []rel.AggSpec{{Func: rel.Sum, E: rel.C("combo"), As: "s"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i := 0; i < li.N; i++ {
		want += float64(ComboOf(li.Col("l_partkey").Int(i), li.Col("l_suppkey").Int(i), nSupp))
	}
	if math.Abs(res.Rows[0]["s"]-want) > 1e-3 {
		t.Fatalf("combo sum %g, want %g", res.Rows[0]["s"], want)
	}
}
