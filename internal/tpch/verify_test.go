package tpch

import (
	"context"
	"fmt"
	"testing"

	"voodoo/internal/compile"
	"voodoo/internal/exec"
	"voodoo/internal/rel"
	"voodoo/internal/storage"
)

// verifyingRunner wraps an Engine so that every plan a query compiles —
// including the several plans of multi-phase queries like Q11, Q15 and
// Q20 — passes through the static verifier before it executes.
type verifyingRunner struct {
	t     *testing.T
	e     *rel.Engine
	plans int
}

func (r *verifyingRunner) Catalog() *storage.Catalog { return r.e.Cat }

func (r *verifyingRunner) Run(q rel.Query) (*rel.Result, *exec.Stats, error) {
	pr, err := r.e.Prepare(q)
	if err != nil {
		return nil, nil, err
	}
	if plan := pr.Plan(); plan != nil {
		r.plans++
		for _, d := range plan.Verify() {
			r.t.Errorf("query %q: %s", q.Name, d)
		}
	}
	return r.e.RunPrepared(context.Background(), pr)
}

// TestGoldenPlansVerify compiles every TPC-H query under each compiled
// backend configuration and requires the verifier to accept every plan
// with zero diagnostics. This is the "golden plans" half of the CI
// verification gate: the difftest corpus covers generated programs, this
// covers the hand-lowered relational workload.
func TestGoldenPlansVerify(t *testing.T) {
	engines := map[string]*rel.Engine{
		"compiled":        {Cat: testCat, Backend: rel.Compiled},
		"predicated":      {Cat: testCat, Backend: rel.Compiled, Opt: compile.Options{Predication: true}},
		"bulk":            {Cat: testCat, Backend: rel.BulkCompiled},
		"bulk-predicated": {Cat: testCat, Backend: rel.BulkCompiled, Opt: compile.Options{Predication: true}},
	}
	for name, e := range engines {
		e := e
		t.Run(name, func(t *testing.T) {
			for _, num := range QueryNumbers {
				t.Run(fmt.Sprintf("q%d", num), func(t *testing.T) {
					qf, err := Query(num)
					if err != nil {
						t.Fatal(err)
					}
					vr := &verifyingRunner{t: t, e: e}
					if _, _, err := qf(vr); err != nil {
						t.Fatalf("q%d: %v", num, err)
					}
					if vr.plans == 0 {
						t.Fatalf("q%d compiled no plans; the verifier saw nothing", num)
					}
				})
			}
		})
	}
}
